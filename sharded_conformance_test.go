package nocout

import (
	"fmt"
	"reflect"
	"testing"

	"nocout/internal/chip"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// This file is the parallel kernel's correctness oracle: the sharded
// conservative kernel (chip.NewSharded, domains stepping concurrently
// under the horizon protocol) must be bit-identical to the single-engine
// scheduled kernel for every registered design, every hierarchy, and any
// domain count — the same state-hash discipline TestKernelConformance
// applies to scheduled-vs-naive, extended to sharded-vs-scheduled.

// TestShardedKernelConformance compares cycle-by-cycle state hashes of a
// 4-domain sharded chip against the single-engine scheduled kernel for
// every registered design, then the complete final Metrics.
func TestShardedKernelConformance(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d)
			cfg.Cores = 16

			ref := chip.New(cfg, w)
			ref.PrewarmCaches()
			sh := chip.NewSharded(cfg, w, 4)
			sh.PrewarmCaches()
			if d != Ideal && d != Crossbar && sh.NumDomains() != 4 {
				t.Fatalf("sharded chip runs %d domains, want 4", sh.NumDomains())
			}

			total := confQ.Warmup + confQ.Window
			for cy := sim.Cycle(1); cy <= total; cy++ {
				ref.Run(1)
				sh.Run(1)
				if hr, hs := ref.StateHash(), sh.StateHash(); hr != hs {
					t.Fatalf("state hash diverged at cycle %d: scheduled %#x sharded %#x (%d domains, %d cross links)",
						cy, hr, hs, sh.NumDomains(), sh.CrossLinks())
				}
			}
			mr, msh := ref.Metrics(), sh.Metrics()
			if !reflect.DeepEqual(mr, msh) {
				t.Fatalf("final metrics diverged:\nscheduled %+v\nsharded   %+v", mr, msh)
			}
		})
	}
}

// TestShardedHierarchyConformance runs the sharded kernel against every
// registered memory hierarchy: same full-measurement state hash and
// Metrics as the single-engine kernel.
func TestShardedHierarchyConformance(t *testing.T) {
	w, err := workload.Parse("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range Hierarchies() {
		h := h
		t.Run(h.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(Mesh)
			cfg.Cores = 16
			cfg.Hierarchy = h

			run := func(domains int) (uint64, chip.Metrics) {
				c := chip.NewSharded(cfg, w, domains)
				c.PrewarmCaches()
				c.Warmup(confQ.Warmup)
				c.Run(confQ.Window)
				return c.StateHash(), c.Metrics()
			}
			hr, mr := run(1)
			hs, msh := run(4)
			if hr != hs {
				t.Fatalf("state hash diverged: single %#x sharded %#x", hr, hs)
			}
			if !reflect.DeepEqual(mr, msh) {
				t.Fatalf("metrics diverged:\nsingle  %+v\nsharded %+v", mr, msh)
			}
		})
	}
}

// TestShardedDomainCountProperty is the domain-count invariance property:
// for the paper's two primary organizations at two core counts, every
// domain count in {1, 2, 4, 8} produces the same state hash and Metrics,
// and repeating a run reproduces it exactly — under -race this also
// proves the domain goroutines share no unsynchronized state.
func TestShardedDomainCountProperty(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{Mesh, NOCOut} {
		for _, cores := range []int{16, 64} {
			d, cores := d, cores
			t.Run(fmt.Sprintf("%s/%dcores", d, cores), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig(d)
				cfg.Cores = cores

				run := func(domains int) (uint64, chip.Metrics) {
					c := chip.NewSharded(cfg, w, domains)
					c.PrewarmCaches()
					c.Warmup(confQ.Warmup)
					c.Run(confQ.Window)
					return c.StateHash(), c.Metrics()
				}
				refH, refM := run(1)
				for _, domains := range []int{1, 2, 4, 8} {
					gotH, gotM := run(domains)
					if gotH != refH {
						t.Fatalf("%d domains: state hash %#x, want %#x", domains, gotH, refH)
					}
					if !reflect.DeepEqual(gotM, refM) {
						t.Fatalf("%d domains: metrics diverged:\n1 domain  %+v\n%d domains %+v",
							domains, refM, domains, gotM)
					}
					againH, _ := run(domains)
					if againH != gotH {
						t.Fatalf("%d domains: nondeterministic across runs: %#x then %#x",
							domains, gotH, againH)
					}
				}
			})
		}
	}
}
