package nocout

import (
	"nocout/internal/chip"
	"nocout/internal/noc"
	"nocout/internal/physic"
	"nocout/internal/topo"
)

// This file extends the design space beyond the paper's four
// organizations, registered through the same public RegisterDesign path a
// user organization takes (EXPERIMENTS.md walks through torusOrg as the
// worked example):
//
//   - Torus: the mesh's grid with folded wrap-around links — half the
//     diameter for twice the wire, a natural "what if we just shorten the
//     mesh" counterfactual to NOC-Out's specialization argument.
//   - CMesh: a 4:1 concentrated mesh — fewer, higher-radix routers, the
//     standard CMP answer to mesh hop count.
//   - Crossbar: the §2.2 background design — the Oracle T-series-style
//     central switch whose quadratic area is why scale-out parts stopped
//     at ~16 cores; resurrected here so the registry can sweep it against
//     the paper's fabrics.

// The extended organizations' Design handles, minted at package init in
// this order (after the builtin four).
var (
	Torus    = mustRegister(torusOrg{})
	CMesh    = mustRegister(cmeshOrg{})
	Crossbar = mustRegister(crossbarOrg{})
)

func mustRegister(o Organization) Design {
	d, err := RegisterDesign(o)
	if err != nil {
		panic(err)
	}
	return d
}

// --- Torus ------------------------------------------------------------------

// torusOrg is the folded 2-D torus organization: tiled like the mesh, with
// wrap-around rings kept deadlock-free by bubble flow control.
type torusOrg struct{}

func (torusOrg) Name() string          { return "Torus" }
func (torusOrg) Aliases() []string     { return []string{"2d-torus"} }
func (torusOrg) DefaultConfig() Config { return chip.Table1Config() }

func (torusOrg) Build(cfg Config) *chip.Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	p := topo.DefaultTorusParams(plan)
	// The bubble thresholds must cover the largest protocol packet: a
	// 64-byte line plus header at this link width.
	p.MaxPktFlits = noc.FlitsFor(64, cfg.LinkBits)
	p.AuxTiles = topo.MCTiles(plan, cfg.MemChannels)
	rn := topo.NewTorus(p)
	return chip.TiledFabric(cfg, plan, rn, rn.Routers)
}

func (torusOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return physic.TorusArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.FlipFlop
}

// --- CMesh ------------------------------------------------------------------

// cmeshOrg is the 4:1 concentrated mesh organization: 2x2 tile blocks
// share one router, so the 64-tile chip routes through a 4x4 mesh.
type cmeshOrg struct{}

func (cmeshOrg) Name() string          { return "CMesh" }
func (cmeshOrg) Aliases() []string     { return []string{"concentrated-mesh"} }
func (cmeshOrg) DefaultConfig() Config { return chip.Table1Config() }

func (cmeshOrg) Build(cfg Config) *chip.Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	p := topo.DefaultCMeshParams(plan)
	p.AuxTiles = topo.MCTiles(plan, cfg.MemChannels)
	rn := topo.NewCMesh(p)
	return chip.TiledFabric(cfg, plan, rn, rn.Routers)
}

func (cmeshOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return physic.CMeshArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.FlipFlop
}

// --- Crossbar ---------------------------------------------------------------

// crossbarOrg is the delay-optimized central crossbar of §2.2: every tile
// wired to one switch at the die center.
type crossbarOrg struct{}

func (crossbarOrg) Name() string          { return "Crossbar" }
func (crossbarOrg) Aliases() []string     { return []string{"xbar", "central-crossbar"} }
func (crossbarOrg) DefaultConfig() Config { return chip.Table1Config() }

func (crossbarOrg) Build(cfg Config) *chip.Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	p := topo.DefaultCrossbarParams(plan)
	p.AuxTiles = topo.MCTiles(plan, cfg.MemChannels)
	rn := topo.NewCrossbar(p)
	return chip.TiledFabric(cfg, plan, rn, rn.Routers)
}

func (crossbarOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return physic.CrossbarArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.FlipFlop
}
