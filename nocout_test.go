package nocout

import (
	"strings"
	"testing"
)

// tiny is a minimal-effort quality for unit tests.
var tiny = Quality{Warmup: 6000, Window: 8000, Seeds: 1}

func TestRunFacade(t *testing.T) {
	res, err := Run(DefaultConfig(NOCOut), "Web Search", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveCores != 16 {
		t.Fatalf("Web Search should run on 16 cores, got %d", res.ActiveCores)
	}
	if res.AggIPC <= 0 || res.PerCoreIPC <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.NoCPower.Total() <= 0 {
		t.Fatal("power must be positive")
	}
	if !strings.Contains(res.String(), "Web Search") {
		t.Fatal("String() should mention the workload")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(DefaultConfig(Mesh), "Quake", tiny); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	want := []string{"Data Serving", "MapReduce-C", "MapReduce-W", "SAT Solver", "Web Frontend", "Web Search",
		"Consolidated", "MapReduce-Phased"}
	if len(ws) < len(want) {
		t.Fatalf("suite = %v", ws)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("suite order = %v", ws)
		}
	}
}

func TestSeedAveraging(t *testing.T) {
	q := tiny
	q.Seeds = 2
	res, err := Run(DefaultConfig(Mesh), "SAT Solver", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggIPC <= 0 {
		t.Fatal("multi-seed run broken")
	}
}

func TestAreaFacade(t *testing.T) {
	am := Area(DefaultConfig(Mesh))
	af := Area(DefaultConfig(FBfly))
	an := Area(DefaultConfig(NOCOut))
	if !(an.Total() < am.Total() && am.Total() < af.Total()) {
		t.Fatalf("area ordering: nocout %.2f mesh %.2f fbfly %.2f", an.Total(), am.Total(), af.Total())
	}
	if Area(DefaultConfig(Ideal)).Total() != 0 {
		t.Fatal("ideal fabric has no modelled area")
	}
}

func TestTable1(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"64 cores", "8MB", "DDR3-1667", "Cortex-A15", "128 bits", "2-stage speculative"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure8Structure(t *testing.T) {
	r := Figure8()
	if len(r.Designs) != 3 || len(r.Breakdowns) != 3 {
		t.Fatalf("Figure8: %+v", r)
	}
	s := r.Table().String()
	if !strings.Contains(s, "NOC-Out") || !strings.Contains(s, "crossbar") {
		t.Fatalf("table malformed:\n%s", s)
	}
}

func TestFigure4QuickShape(t *testing.T) {
	r := Figure4(tiny)
	if len(r.SnoopPct) != 6 {
		t.Fatalf("Figure4: %+v", r)
	}
	// The paper's claim: coherence activity is rare (few % of accesses).
	for i, p := range r.SnoopPct {
		if p < 0 || p > 10 {
			t.Errorf("%s snoop%% = %.2f out of plausible range", r.Workloads[i], p)
		}
	}
	if r.MeanPct <= 0 || r.MeanPct > 6 {
		t.Fatalf("mean snoop%% = %.2f, want a small positive value (~2)", r.MeanPct)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	s := tb.String()
	if !strings.HasPrefix(s, "T\n") || !strings.Contains(s, "a") {
		t.Fatalf("table: %q", s)
	}
}

func TestFigure7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is exercised by the benchmarks")
	}
	r := Figure7(tiny)
	for _, d := range []string{"Mesh", "Flattened Butterfly", "NOC-Out"} {
		if len(r.Normalized[d]) != 6 {
			t.Fatalf("missing design %s: %+v", d, r)
		}
	}
	// Headline shape: both low-diameter designs beat the mesh on average,
	// and NOC-Out is in the flattened butterfly's performance class.
	if r.GMean["NOC-Out"] < 1.02 {
		t.Fatalf("NOC-Out gmean vs mesh = %.3f, should be a clear win", r.GMean["NOC-Out"])
	}
	if r.GMean["Flattened Butterfly"] < 1.02 {
		t.Fatalf("FBfly gmean vs mesh = %.3f, should be a clear win", r.GMean["Flattened Butterfly"])
	}
	ratio := r.GMean["NOC-Out"] / r.GMean["Flattened Butterfly"]
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("NOC-Out should match the flattened butterfly: ratio %.3f", ratio)
	}
}
