package nocout

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"nocout/internal/chip"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// This file is the checkpoint subsystem's correctness oracle: a chip
// restored from a post-warmup snapshot must be indistinguishable from the
// donor — StateHash-equal at the snapshot cycle, then cycle-for-cycle
// bit-identical through the measurement window, for every registered
// design, every hierarchy, and any domain count on either side of the
// snapshot. It is the same discipline the kernel conformance suites apply
// to scheduled-vs-naive and sharded-vs-scheduled, extended across a
// serialize/deserialize boundary.

// warmSnapshot builds a chip, warms it like Run does, snapshots it, and
// returns the donor (still runnable) plus the container bytes and the
// donor's state hash at the snapshot cycle.
func warmSnapshot(t *testing.T, cfg Config, w workload.Workload, domains int, warmup sim.Cycle) (*chip.Chip, []byte, uint64) {
	t.Helper()
	c := chip.NewSharded(cfg, w, domains)
	c.PrewarmCaches()
	c.Warmup(warmup)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return c, buf.Bytes(), c.StateHash()
}

// verifyRestore restores the snapshot under the given domain count and
// checks hash equality at the snapshot cycle, then lockstep bit-identity
// against the donor through window cycles, then final Metrics.
func verifyRestore(t *testing.T, donor *chip.Chip, snap []byte, cfg Config, w workload.Workload, domains int, window sim.Cycle) {
	t.Helper()
	r, err := chip.Restore(cfg, w, domains, bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if hd, hr := donor.StateHash(), r.StateHash(); hd != hr {
		t.Fatalf("restored hash %#x != donor hash %#x at snapshot cycle %d", hr, hd, donor.NowCycle())
	}
	for cy := sim.Cycle(1); cy <= window; cy++ {
		donor.Run(1)
		r.Run(1)
		if hd, hr := donor.StateHash(), r.StateHash(); hd != hr {
			t.Fatalf("state hash diverged %d cycles after restore: donor %#x restored %#x", cy, hd, hr)
		}
	}
	md, mr := donor.Metrics(), r.Metrics()
	if !reflect.DeepEqual(md, mr) {
		t.Fatalf("metrics diverged:\ndonor    %+v\nrestored %+v", md, mr)
	}
}

// TestCheckpointDesignConformance: every registered design at 16 and 64
// cores — snapshot after warmup, restore, and demand bit-identity through
// the measurement window.
func TestCheckpointDesignConformance(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			for _, n := range []int{16, 64} {
				cfg := DefaultConfig(d)
				cfg.Cores = n
				donor, snap, _ := warmSnapshot(t, cfg, w, 1, confQ.Warmup)
				verifyRestore(t, donor, snap, cfg, w, 1, confQ.Window)
			}
		})
	}
}

// TestCheckpointHierarchyConformance: every registered memory hierarchy
// under the same snapshot/restore bit-identity contract.
func TestCheckpointHierarchyConformance(t *testing.T) {
	w, err := workload.Parse("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range Hierarchies() {
		h := h
		t.Run(h.String(), func(t *testing.T) {
			t.Parallel()
			for _, n := range []int{16, 64} {
				cfg := DefaultConfig(Mesh)
				cfg.Cores = n
				cfg.Hierarchy = h
				donor, snap, _ := warmSnapshot(t, cfg, w, 1, confQ.Warmup)
				verifyRestore(t, donor, snap, cfg, w, 1, confQ.Window)
			}
		})
	}
}

// TestCheckpointShardedConformance: checkpoints are domain-count-agnostic.
// A snapshot taken under one sim-parallelism setting restores bit-identically
// under every other, on both a router-network design and NOC-Out.
func TestCheckpointShardedConformance(t *testing.T) {
	w, err := workload.Parse("Data Serving")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{Mesh, NOCOut} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d)
			cfg.Cores = 16
			for _, snapDomains := range []int{1, 4} {
				donor, snap, snapHash := warmSnapshot(t, cfg, w, snapDomains, confQ.Warmup)
				donor.Run(confQ.Window)
				endHash, endMetrics := donor.StateHash(), donor.Metrics()
				for _, domains := range []int{1, 2, 4, 8} {
					r, err := chip.Restore(cfg, w, domains, bytes.NewReader(snap))
					if err != nil {
						t.Fatalf("restore into %d domains: %v", domains, err)
					}
					if hr := r.StateHash(); hr != snapHash {
						t.Fatalf("snap@%d restore@%d: hash %#x != donor %#x", snapDomains, domains, hr, snapHash)
					}
					r.Run(confQ.Window)
					if hr := r.StateHash(); hr != endHash {
						t.Fatalf("snap@%d restore@%d: end hash %#x != donor %#x", snapDomains, domains, hr, endHash)
					}
					if mr := r.Metrics(); !reflect.DeepEqual(endMetrics, mr) {
						t.Fatalf("snap@%d restore@%d: metrics diverged:\ndonor    %+v\nrestored %+v", snapDomains, domains, endMetrics, mr)
					}
				}
			}
		})
	}
}

// TestCheckpointNOC3TraceConformance: a chip replaying a NOC3 streaming
// trace snapshots and restores mid-trace bit-identically — the (block,
// offset) stream cursors serialize, the restore seeks each core's block
// from its keyframe, and the window after the snapshot is
// cycle-for-cycle identical to the donor. The NOC2 capture of the same
// recording is held to the same contract, proving cursor semantics are
// format-independent.
func TestCheckpointNOC3TraceConformance(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	perCore := int(confQ.Warmup+confQ.Window) * 3
	src, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	noc3 := filepath.Join(dir, "mrc.noctrace")
	if err := workload.RecordFile(noc3, src, cfg.Cores, perCore, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	cap, err := workload.Record(src, cfg.Cores, perCore, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		w    workload.Workload
	}{
		{"noc2", cap},
		{"noc3", mustLoadTrace(t, noc3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			donor, snap, _ := warmSnapshot(t, cfg, tc.w, 1, confQ.Warmup)
			verifyRestore(t, donor, snap, cfg, tc.w, 1, confQ.Window)
		})
	}
}

func mustLoadTrace(t *testing.T, path string) workload.Workload {
	t.Helper()
	w, err := workload.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCheckpointOpenSystemConformance: the open-system request lifecycle
// (arrival RNG position, in-flight requests, queue) survives the
// snapshot boundary bit-identically.
func TestCheckpointOpenSystemConformance(t *testing.T) {
	w, err := workload.Parse("opensys:arrival=mmpp,base=web-search,rate=4,size=256,queue=64")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	donor, snap, _ := warmSnapshot(t, cfg, w, 1, confQ.Warmup)
	verifyRestore(t, donor, snap, cfg, w, 1, confQ.Window)
}

// TestCheckpointRejectsMismatchedSystem: a snapshot only restores into the
// exact system it was taken on.
func TestCheckpointRejectsMismatchedSystem(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	_, snap, _ := warmSnapshot(t, cfg, w, 1, 500)

	bad := cfg
	bad.Cores = 32
	if _, err := chip.Restore(bad, w, 1, bytes.NewReader(snap)); err == nil {
		t.Fatal("restore into a 32-core chip from a 16-core snapshot must fail")
	}
	bad = cfg
	bad.Seed++
	if _, err := chip.Restore(bad, w, 1, bytes.NewReader(snap)); err == nil {
		t.Fatal("restore under a different seed must fail")
	}
	bad = DefaultConfig(FBfly)
	bad.Cores = 16
	if _, err := chip.Restore(bad, w, 1, bytes.NewReader(snap)); err == nil {
		t.Fatal("restore into a different design must fail")
	}
}

// TestCheckpointTruncationRejected: every strict prefix of a valid
// container must fail to restore with an error, never a panic.
func TestCheckpointTruncationRejected(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	_, snap, _ := warmSnapshot(t, cfg, w, 1, 500)

	for _, cut := range []int{0, 1, 4, len(snap) / 2, len(snap) - 1} {
		if _, err := chip.Restore(cfg, w, 1, bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes restored successfully", cut)
		}
	}
	// A flipped payload byte must be caught by the section CRC.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := chip.Restore(cfg, w, 1, bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupted snapshot restored successfully")
	}
}
