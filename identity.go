package nocout

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"nocout/internal/workload"
)

// This file defines the engine's canonical point identity: Point.Key, a
// stable content hash over everything that determines a point's Result —
// the fully resolved Config (design, hierarchy, cores, seed, link and
// memory timing), the workload's *behavioral* fingerprint (calibration
// block, mix assignment, capture content — not just the display name),
// and the measurement Quality. The campaign subsystem addresses its
// result store by this key, so the hash carries a version prefix
// (KeyVersion) and a golden stability test: changing what the key covers
// means bumping the version, never silently remapping old caches.

// KeyVersion prefixes every Point.Key; it names the key schema, and bumps
// whenever the hashed content or canonicalization changes so stale cache
// entries can never alias fresh ones.
const KeyVersion = "pt1"

// Key returns the point's canonical content hash at measurement quality
// q: "pt1-" plus 64 hex digits of SHA-256 over the canonicalized point
// JSON, the workload fingerprint, and the quality. The hash is
// JSON-round-trip stable — a Point decoded from a report or campaign
// manifest keys identically to the original — and is the identity the
// campaign result cache and lease files are addressed by.
//
// Key resolves the point's workload (from the sweep expansion when run
// in-process, else through the registry / trace path recorded in
// WorkloadSpec), so it errors when the workload is unknown to this
// process or its fingerprint is unavailable.
func (p Point) Key(q Quality) (string, error) {
	w, err := p.resolveWorkload()
	if err != nil {
		return "", err
	}
	fp, err := workload.Fingerprint(w)
	if err != nil {
		return "", fmt.Errorf("nocout: point %s: %w", p, err)
	}
	pj, err := canonicalJSON(p)
	if err != nil {
		return "", fmt.Errorf("nocout: point %s: %w", p, err)
	}
	qj, err := canonicalJSON(q)
	if err != nil {
		return "", fmt.Errorf("nocout: quality: %w", err)
	}
	h := sha256.New()
	// Length-prefixed fields: no concatenation ambiguity between parts.
	for _, part := range [][]byte{[]byte(KeyVersion), pj, fp, qj} {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write(part)
	}
	return KeyVersion + "-" + hex.EncodeToString(h.Sum(nil)), nil
}

// canonicalJSON marshals v, then re-encodes through a generic value so
// the bytes are canonical: object keys sorted, no indentation, numbers
// kept as their literal digits (json.Number, so uint64 seeds survive).
// Any value that round-trips through encoding/json therefore yields the
// same canonical bytes before and after a round trip.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, err
	}
	return json.Marshal(generic)
}

// resolveWorkload returns the point's Workload: the value the sweep
// expansion bound when available, otherwise the registry resolution of
// WorkloadSpec (the parse spec, e.g. "trace:<path>") or the workload
// name, with the Unlimited cap-lift re-applied. This is how a campaign
// worker in another process rehydrates a manifest point; unregistered
// WithWorkloadValues workloads cannot be rehydrated and error here.
func (p Point) resolveWorkload() (workload.Workload, error) {
	if p.wl != nil {
		return p.wl, nil
	}
	spec := p.WorkloadSpec
	if spec == "" {
		spec = p.Workload
	}
	w, err := workload.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("nocout: point %s: %w (campaign workers need the workload registered in-process, or its trace file readable)", p, err)
	}
	if w.Name() != p.Workload {
		return nil, fmt.Errorf("nocout: point %s: spec %q resolves to workload %q, want %q", p, spec, w.Name(), p.Workload)
	}
	if p.Unlimited {
		w = workload.Unlimited(w)
	}
	return w, nil
}

// traceSpec reports whether a workload parse spec is the trace:<path>
// capture scheme (the one spec that is not just a registry name).
func traceSpec(s string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(s)), "trace:")
}
