package campaign_test

import (
	"context"
	"strings"
	"testing"

	"nocout"
	"nocout/campaign"
)

// TestCampaignOpenSystemRoundTrip: the opensys family survives the full
// campaign lifecycle — create persists derived spec-named points to the
// manifest, a worker process rehydrates them by name alone, results
// (latency histograms included) store and merge bit-identically, and a
// re-run is all cache hits.
func TestCampaignOpenSystemRoundTrip(t *testing.T) {
	sw, err := nocout.NewExperiment(
		nocout.WithTitle("open-system campaign"),
		nocout.WithDesigns(nocout.Mesh),
		nocout.WithWorkloads("opensys:arrival=mmpp,base=data-serving"),
		nocout.WithOfferedLoads(0.5, 4),
		nocout.WithCoreCounts(8),
		nocout.WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 2 {
		t.Fatalf("sweep has %d points, want one per load", sw.Len())
	}
	for _, p := range sw.Points {
		if !strings.HasPrefix(p.Workload, "opensys:") {
			t.Fatalf("point workload %q is not a rehydratable spec", p.Workload)
		}
	}

	single, err := (&nocout.Runner{}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, single)

	dir := t.TempDir()
	if _, err := campaign.Create(dir, sw); err != nil {
		t.Fatal(err)
	}
	// A fresh handle works the manifest the way a separate worker process
	// would: points rehydrate from their stored names, not live values.
	c2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.Work(context.Background(), campaign.Options{Owner: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != sw.Len() {
		t.Fatalf("worker computed %d of %d points", stats.Computed, sw.Len())
	}
	rep, err := c2.Merge()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Results {
		rl := pr.Result.ReqLatency
		if rl == nil || rl.Hist == nil || rl.Hist.Count() != rl.Completed {
			t.Fatalf("merged point %s lost its latency accounting: %+v", pr.Point, rl)
		}
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Fatalf("campaign result diverged from direct run:\n%s\nvs\n%s", got, want)
	}

	// Re-running the campaign recomputes nothing: every point is a
	// content-addressed cache hit.
	again, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = again.Work(context.Background(), campaign.Options{Owner: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != 0 || stats.Cached != sw.Len() {
		t.Fatalf("re-run computed %d / cached %d, want all %d cached", stats.Computed, stats.Cached, sw.Len())
	}
}
