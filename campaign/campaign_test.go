package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nocout"
	"nocout/campaign"
)

// tiny is the unit-test quality (the engine tests' idiom).
var tiny = nocout.Quality{Warmup: 6000, Window: 8000, Seeds: 1}

// testSweep is a small 2×2 sweep at tiny quality.
func testSweep(t *testing.T) nocout.Sweep {
	t.Helper()
	sw, err := nocout.NewExperiment(
		nocout.WithTitle("campaign test"),
		nocout.WithDesigns(nocout.Ideal, nocout.Mesh),
		nocout.WithWorkloads("SAT Solver", "Data Serving"),
		nocout.WithCoreCounts(8),
		nocout.WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func reportJSON(t *testing.T, rep *nocout.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignResume is the subsystem's acceptance test: an interrupted
// campaign, resumed by two concurrent workers with distinct lease
// identities, merges to a Report bit-identical to an uninterrupted
// single-process run — and a further re-run computes nothing at all.
func TestCampaignResume(t *testing.T) {
	sw := testSweep(t)

	single, err := (&nocout.Runner{}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, single)

	dir := t.TempDir()
	c, err := campaign.Create(dir, sw)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt the first worker after its first completed point.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stats, err := c.Work(ctx, campaign.Options{
		Workers: 1, Owner: "w0",
		Progress: func(done, total int, p nocout.Point, r nocout.Result) {
			if done == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted worker = %v, want context.Canceled", err)
	}
	if stats.Computed < 1 || stats.Computed >= sw.Len() {
		t.Fatalf("interrupted worker computed %d of %d points; the test needs a partial campaign", stats.Computed, sw.Len())
	}

	// Resume with two concurrent workers sharing the directory (a second
	// process joining is the same code path: Open + Work).
	c2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]campaign.Stats, 2)
	errs := make([]error, 2)
	for i, cc := range []*campaign.Campaign{c, c2} {
		wg.Add(1)
		go func(i int, cc *campaign.Campaign) {
			defer wg.Done()
			results[i], errs[i] = cc.Work(context.Background(), campaign.Options{
				Owner:     []string{"w1", "w2"}[i],
				PassDelay: 5 * time.Millisecond,
			})
		}(i, cc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("resumed worker %d: %v (stats %+v)", i, err, results[i])
		}
	}

	rep, err := c2.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("merged report not bit-identical to the single-shot run:\n--- merged\n%s\n--- single\n%s", got, want)
	}

	// A fully cached re-run executes zero simulations.
	again, err := c.Work(context.Background(), campaign.Options{Owner: "w3"})
	if err != nil {
		t.Fatal(err)
	}
	if again.Computed != 0 || again.Cached != sw.Len() || again.Passes != 1 {
		t.Fatalf("cached re-run = %+v, want 0 computed / %d cached in one pass", again, sw.Len())
	}
}

// TestCampaignRecompute: the -recompute override ignores every cached
// entry exactly once, recomputing and overwriting it.
func TestCampaignRecompute(t *testing.T) {
	sw := testSweep(t)
	dir := t.TempDir()
	c, err := campaign.Create(dir, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Work(context.Background(), campaign.Options{Owner: "a"}); err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, mustMerge(t, c))

	stats, err := c.Work(context.Background(), campaign.Options{Owner: "b", Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != sw.Len() {
		t.Fatalf("recompute ran %d of %d points", stats.Computed, sw.Len())
	}
	// Determinism: the overwritten entries merge to the same bytes.
	if got := reportJSON(t, mustMerge(t, c)); !bytes.Equal(got, want) {
		t.Fatal("recomputed campaign merged differently")
	}
}

func mustMerge(t *testing.T, c *campaign.Campaign) *nocout.Report {
	t.Helper()
	rep, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCampaignFailedPoint: a broken point (PrivateLLC needs a tiled
// organization; NOC-Out is not one) is recorded in the store — not
// retried forever, not fatal — and its error rides through Merge. An
// incomplete campaign refuses to merge.
func TestCampaignFailedPoint(t *testing.T) {
	bad := nocout.DefaultConfig(nocout.NOCOut)
	bad.Cores = 8
	bad.Hierarchy = nocout.PrivateLLC
	good := nocout.DefaultConfig(nocout.Mesh)
	good.Cores = 8
	sw, err := nocout.NewExperiment(
		nocout.WithVariant("Good", good),
		nocout.WithVariant("Bad", bad),
		nocout.WithWorkloads("SAT Solver"),
		nocout.WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c, err := campaign.Create(dir, sw)
	if err != nil {
		t.Fatal(err)
	}

	// FailFast surfaces the break instead of recording it...
	if _, err := c.Work(context.Background(), campaign.Options{Owner: "ff", FailFast: true}); err == nil {
		t.Fatal("FailFast must surface the broken point")
	}
	if _, err := c.Merge(); err == nil || !strings.Contains(err.Error(), "no stored result") {
		t.Fatalf("incomplete campaign must refuse to merge, got %v", err)
	}

	// ...the default records it and completes the campaign.
	stats, err := c.Work(context.Background(), campaign.Options{Owner: "kg"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 failed", stats)
	}
	rep := mustMerge(t, c)
	if rep.Results[1].Err == "" || !strings.Contains(rep.Results[1].Err, "tiled organization") {
		t.Fatalf("merged broken point: %+v", rep.Results[1])
	}
	if rep.Results[0].Err != "" || rep.Results[0].Result.AggIPC <= 0 {
		t.Fatalf("merged healthy point: %+v", rep.Results[0])
	}

	// The failure is cached: a re-run retries nothing.
	again, err := c.Work(context.Background(), campaign.Options{Owner: "kg2"})
	if err != nil {
		t.Fatal(err)
	}
	if again.Computed != 0 || again.Failed != 1 {
		t.Fatalf("failed point must not be retried: %+v", again)
	}
}

// TestCreateVerifiesIdentity: re-creating a campaign directory with the
// same sweep resumes it; any drift in the sweep's content identity is a
// hard error, never a silent cache mixup.
func TestCreateVerifiesIdentity(t *testing.T) {
	sw := testSweep(t)
	dir := t.TempDir()
	if _, err := campaign.Create(dir, sw); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Create(dir, sw); err != nil {
		t.Fatalf("same sweep must resume: %v", err)
	}

	drifted := sw
	drifted.Points = append([]nocout.Point(nil), sw.Points...)
	drifted.Points[0].Seed = 99
	drifted.Points[0].Config.Seed = 99
	if _, err := campaign.Create(dir, drifted); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("drifted sweep must be rejected, got %v", err)
	}

	if _, err := campaign.Open(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open on an empty dir = %v, want fs.ErrNotExist", err)
	}
	if _, err := campaign.Create(t.TempDir(), nocout.Sweep{}); err == nil {
		t.Fatal("empty sweep must not create a campaign")
	}
}

// TestLeaser exercises the claim-file protocol directly: exclusive
// acquisition, denial while live, owner-checked release, and stealing
// after expiry.
func TestLeaser(t *testing.T) {
	dir := t.TempDir()
	key := strings.Repeat("0", 64)
	key = "pt1-" + key
	a := &campaign.Leaser{Dir: dir, Owner: "a"}
	b := &campaign.Leaser{Dir: dir, Owner: "b"}

	release, ok, err := a.Acquire(key)
	if err != nil || !ok {
		t.Fatalf("first acquire = (%v, %v)", ok, err)
	}
	if _, ok, err := b.Acquire(key); err != nil || ok {
		t.Fatalf("live claim must deny: (%v, %v)", ok, err)
	}
	release()
	rel2, ok, err := b.Acquire(key)
	if err != nil || !ok {
		t.Fatalf("acquire after release = (%v, %v)", ok, err)
	}
	rel2()

	// Expired claims are stolen.
	fast := &campaign.Leaser{Dir: dir, Owner: "crashed", TTL: time.Nanosecond}
	if _, ok, err := fast.Acquire(key); err != nil || !ok {
		t.Fatalf("fast acquire = (%v, %v)", ok, err)
	}
	time.Sleep(10 * time.Millisecond)
	rel3, ok, err := a.Acquire(key)
	if err != nil || !ok {
		t.Fatalf("steal of an expired claim = (%v, %v)", ok, err)
	}
	rel3()

	if _, _, err := a.Acquire("not-a-key"); err == nil {
		t.Fatal("invalid keys must not touch the filesystem")
	}

	// Concurrent acquisition of one key admits exactly one winner.
	const racers = 16
	var wins int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := &campaign.Leaser{Dir: dir, Owner: "r" + strings.Repeat("x", i)}
			if _, ok, err := l.Acquire(key); err == nil && ok {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d racers acquired one key", wins)
	}
}

// TestValidKey pins the key shape the store and leaser trust for
// path-safety.
func TestValidKey(t *testing.T) {
	good := "pt1-" + strings.Repeat("ab12", 16)
	if !campaign.ValidKey(good) {
		t.Fatalf("ValidKey(%q) = false", good)
	}
	for _, bad := range []string{
		"", "pt1-", "pt2-" + strings.Repeat("a", 64),
		"pt1-" + strings.Repeat("A", 64), // upper-case hex
		"pt1-" + strings.Repeat("a", 63),
		"pt1-" + strings.Repeat("a", 65),
		"pt1-../" + strings.Repeat("a", 60) + "zzzz",
	} {
		if campaign.ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}

// TestCampaignTraceWorkload: a trace-backed campaign rehydrates in a
// "fresh process" (Open from the directory alone) to the *same* identity
// — the rejoining worker serves every point from the cache instead of
// silently re-simulating a same-named registry workload.
func TestCampaignTraceWorkload(t *testing.T) {
	src, err := nocout.ParseWorkload("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := nocout.RecordWorkload(src, 8, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(t.TempDir(), "ws.noctrace")
	if err := cap.Save(trace); err != nil {
		t.Fatal(err)
	}

	sw, err := nocout.NewExperiment(
		nocout.WithDesigns(nocout.Mesh),
		nocout.WithWorkloads("trace:"+trace),
		nocout.WithCoreCounts(8),
		nocout.WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Points[0].WorkloadSpec == "" {
		t.Fatal("sweep must record the trace spec on the point")
	}

	dir := t.TempDir()
	c, err := campaign.Create(dir, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Work(context.Background(), campaign.Options{Owner: "a"}); err != nil {
		t.Fatal(err)
	}

	// Rejoin from the directory alone, as a second process would.
	c2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.Work(context.Background(), campaign.Options{Owner: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != 0 || stats.Cached != sw.Len() {
		t.Fatalf("rehydrated trace campaign must be fully cached, got %+v", stats)
	}

	// The same capture passed by *value* cannot rehydrate — its name
	// resolves to the synthetic registry entry, a different workload —
	// and Create must refuse loudly rather than let a joining worker
	// silently simulate the wrong one.
	byValue, err := nocout.NewExperiment(
		nocout.WithDesigns(nocout.Mesh),
		nocout.WithWorkloadValues(cap),
		nocout.WithCoreCounts(8),
		nocout.WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Create(t.TempDir(), byValue); err == nil || !strings.Contains(err.Error(), "rehydrates to a different identity") {
		t.Fatalf("by-value capture must fail the rehydration check, got %v", err)
	}
}

// corruptEntry overwrites key's stored entry with garbage bytes.
func corruptEntry(dir, key string) error {
	return os.WriteFile(filepath.Join(dir, "results", key+".json"), []byte("{not json"), 0o644)
}

// TestDirStoreSelfHealing: corrupt or misplaced entries read as misses so
// the point recomputes and the next Put heals the file.
func TestDirStoreSelfHealing(t *testing.T) {
	sw := testSweep(t)
	dir := t.TempDir()
	c, err := campaign.Create(dir, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Work(context.Background(), campaign.Options{Owner: "a"}); err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, mustMerge(t, c))

	// Corrupt one entry on disk.
	key := c.Manifest().Keys[0]
	store := c.Store()
	if err := corruptEntry(dir, key); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("corrupt entry must read as a miss: (%v, %v)", ok, err)
	}
	stats, err := c.Work(context.Background(), campaign.Options{Owner: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != 1 {
		t.Fatalf("self-healing recompute ran %d points, want 1", stats.Computed)
	}
	if got := reportJSON(t, mustMerge(t, c)); !bytes.Equal(got, want) {
		t.Fatal("healed campaign merged differently")
	}
}

// TestCampaignCheckpoints: a campaign worked through the warm-state
// checkpoint cache merges to a Report byte-identical to a plain run, and
// the cache directory ends up holding one checkpoint per prefix.
func TestCampaignCheckpoints(t *testing.T) {
	sw, err := nocout.NewExperiment(
		nocout.WithTitle("checkpointed campaign"),
		nocout.WithDesigns(nocout.Mesh),
		nocout.WithWorkloads("SAT Solver", "Data Serving"),
		nocout.WithCoreCounts(8),
		nocout.WithQuality(nocout.Quality{Warmup: 2000, Window: 2500, Seeds: 1}),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}

	plain, err := (&nocout.Runner{}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, plain)

	ckDir := t.TempDir()
	c, err := campaign.Create(t.TempDir(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Work(context.Background(), campaign.Options{Owner: "a", CheckpointDir: ckDir}); err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, mustMerge(t, c)); !bytes.Equal(got, want) {
		t.Fatal("checkpointed campaign merged differently from the plain run")
	}

	st, err := nocout.NewCheckpointStore(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != sw.Len() {
		t.Fatalf("checkpoint cache holds %d entries, want one per point (%d)", len(infos), sw.Len())
	}

	// A recomputing second worker restores every prefix instead of
	// re-warming: the cache survives across campaigns.
	c2, err := campaign.Create(t.TempDir(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Work(context.Background(), campaign.Options{Owner: "b", CheckpointDir: ckDir}); err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, mustMerge(t, c2)); !bytes.Equal(got, want) {
		t.Fatal("second checkpointed campaign merged differently")
	}
}
