// Package campaign persists sweep execution across processes and
// machines: a design-space campaign (designs × hierarchies × workloads ×
// core counts × seeds) is thousands of points, and this package makes it
// survive interruption, resume from where it stopped, and spread over
// any number of cooperating nocout worker processes sharing a directory.
//
// Three layers build on the engine's canonical point identity
// (nocout.Point.Key, a content hash over the fully resolved point,
// workload fingerprint, and quality):
//
//   - a content-addressed result Store (DirStore): one JSON entry per
//     point key, written atomically, so already-computed points are
//     skipped on every re-run and concurrent writers are idempotent;
//   - a campaign Manifest: the sweep's full point list and key list,
//     written once at creation, so any process can rebuild the sweep,
//     verify it is working on the same campaign, and merge the final
//     Report in the original sweep order;
//   - point leasing (Leaser): claim files acquired by atomic exclusive
//     create, stolen by atomic rename after expiry, so workers partition
//     the sweep instead of duplicating it and a crashed worker's points
//     are reclaimed.
//
// The lifecycle: Create writes the manifest (or verifies and resumes an
// existing one), Work runs one worker until every point has a stored
// result, and Merge assembles the final Report — bit-identical to an
// uninterrupted single-process run, because points are deterministic and
// the manifest pins their identity and order. See EXPERIMENTS.md,
// "Running a resumable campaign".
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"nocout"
	"nocout/internal/cas"
)

// ManifestVersion is the manifest schema version ReadManifest accepts.
const ManifestVersion = 1

// Decode caps: corrupt or hostile campaign files must produce clean
// errors, not multi-gigabyte allocations (the ReadTrace/ReadCapture
// hardening contract, applied to the campaign formats).
const (
	maxManifestBytes  = 64 << 20 // manifest.json (a point encodes to ~1KB)
	maxManifestPoints = 1 << 20
)

// Manifest is a campaign's persistent identity: the fully resolved sweep
// and the content key of every point, in sweep order. It is written once
// at campaign creation; workers verify against it and the merge step
// orders the final Report by it.
type Manifest struct {
	Version int            `json:"version"`
	Title   string         `json:"title,omitempty"`
	Quality nocout.Quality `json:"quality"`
	Points  []nocout.Point `json:"points"`
	// Keys holds each point's nocout.Point.Key at the campaign quality,
	// pinned at creation so the store stays addressable even where a
	// point's workload cannot be resolved (merge needs no simulation
	// capability at all).
	Keys []string `json:"keys"`
}

// Validate checks the manifest's structural invariants; ReadManifest
// applies it, and Create trusts only validated manifests.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("campaign: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if len(m.Points) == 0 {
		return fmt.Errorf("campaign: manifest has no points")
	}
	if len(m.Points) > maxManifestPoints {
		return fmt.Errorf("campaign: manifest claims %d points, cap is %d", len(m.Points), maxManifestPoints)
	}
	if len(m.Keys) != len(m.Points) {
		return fmt.Errorf("campaign: manifest has %d keys for %d points", len(m.Keys), len(m.Points))
	}
	seen := make(map[string]bool, len(m.Keys))
	for i, k := range m.Keys {
		if !ValidKey(k) {
			return fmt.Errorf("campaign: manifest key %d is not a %s point key: %.80q", i, nocout.KeyVersion, k)
		}
		if seen[k] {
			return fmt.Errorf("campaign: manifest key %d duplicated: %s", i, k)
		}
		seen[k] = true
	}
	for i := range m.Points {
		if m.Points[i].Workload == "" {
			return fmt.Errorf("campaign: manifest point %d has no workload", i)
		}
	}
	return nil
}

// ReadManifest decodes and validates a campaign manifest, holding the
// no-unbounded-allocation contract on arbitrary input.
func ReadManifest(r io.Reader) (Manifest, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxManifestBytes+1))
	if err != nil {
		return Manifest{}, err
	}
	if len(data) > maxManifestBytes {
		return Manifest{}, fmt.Errorf("campaign: manifest exceeds the %dMB cap", maxManifestBytes>>20)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("campaign: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Campaign is an open campaign directory: the manifest plus the runnable
// sweep behind it.
type Campaign struct {
	dir string
	man Manifest
	sw  nocout.Sweep
}

// manifestPath, resultsDir, and leasesDir fix the directory layout.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func resultsDir(dir string) string   { return filepath.Join(dir, "results") }
func leasesDir(dir string) string    { return filepath.Join(dir, "leases") }

// Create opens dir as the campaign for sw, writing the manifest on first
// use. When dir already holds a manifest, Create verifies it describes
// the *same* campaign — identical title, quality, and point keys in
// order (the content hash catches any drift: a recalibrated workload, a
// changed config field, a different seed) — and resumes it; a mismatch
// is a hard error, never a silent cache mixup.
func Create(dir string, sw nocout.Sweep) (*Campaign, error) {
	if sw.Len() == 0 {
		return nil, fmt.Errorf("campaign: refusing to create a campaign with no points")
	}
	if sw.Len() > maxManifestPoints {
		return nil, fmt.Errorf("campaign: sweep has %d points, cap is %d", sw.Len(), maxManifestPoints)
	}
	keys := make([]string, sw.Len())
	for i := range sw.Points {
		k, err := sw.Points[i].Key(sw.Quality)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	for _, sub := range []string{dir, resultsDir(dir), leasesDir(dir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	if data, err := os.ReadFile(manifestPath(dir)); err == nil {
		man, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", manifestPath(dir), err)
		}
		if man.Title != sw.Title || man.Quality != sw.Quality || !slices.Equal(man.Keys, keys) {
			return nil, fmt.Errorf("campaign: %s already holds a different campaign (%q, %d points); use a fresh directory or matching flags", dir, man.Title, len(man.Keys))
		}
		return &Campaign{dir: dir, man: man, sw: sw}, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	man := Manifest{Version: ManifestVersion, Title: sw.Title, Quality: sw.Quality, Points: sw.Points, Keys: keys}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	// Rehydration check before anything is written: a campaign directory
	// is shared across processes, so every point must key identically
	// after the JSON round trip a joining worker performs. A mismatch
	// means the point's workload cannot be reconstructed from the
	// manifest (typically a WithWorkloadValues value shadowed by a
	// same-named registry entry) — a silent wrong-workload simulation if
	// allowed through, so it is a hard error here.
	rt, err := ReadManifest(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	for i := range rt.Points {
		k, err := rt.Points[i].Key(sw.Quality)
		if err != nil {
			return nil, fmt.Errorf("campaign: point %d (%s) cannot rehydrate from the manifest: %w (pass the workload by registered name or trace:<path> spec)", i, &sw.Points[i], err)
		}
		if k != keys[i] {
			return nil, fmt.Errorf("campaign: point %d (%s) rehydrates to a different identity (%s, want %s); pass the workload by registered name or trace:<path> spec so other workers reconstruct the same workload", i, &sw.Points[i], k, keys[i])
		}
	}
	if err := cas.WriteFileAtomic(manifestPath(dir), data); err != nil {
		return nil, err
	}
	return &Campaign{dir: dir, man: man, sw: sw}, nil
}

// Open opens an existing campaign from its directory alone — the
// manifest carries the full sweep — for joining workers and for the
// merge step. Points rehydrate their workloads through the registry (or
// their recorded trace path) when run.
func Open(dir string) (*Campaign, error) {
	f, err := os.Open(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("campaign: %s has no campaign: %w", dir, err)
	}
	defer f.Close()
	man, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", manifestPath(dir), err)
	}
	return &Campaign{
		dir: dir,
		man: man,
		sw:  nocout.Sweep{Title: man.Title, Quality: man.Quality, Points: man.Points},
	}, nil
}

// Dir returns the campaign directory.
func (c *Campaign) Dir() string { return c.dir }

// Manifest returns a copy of the campaign manifest.
func (c *Campaign) Manifest() Manifest { return c.man }

// Sweep returns the campaign's runnable sweep in manifest order.
func (c *Campaign) Sweep() nocout.Sweep { return c.sw }

// Store returns the campaign's content-addressed result store.
func (c *Campaign) Store() *DirStore { return NewDirStore(resultsDir(c.dir)) }

// Merge assembles the final Report from the store, in manifest order —
// the same Report an uninterrupted single-process Runner.Run of the
// sweep produces, bit for bit, regardless of how many workers computed
// it or how often they were interrupted. Points still missing from the
// store are an error naming how many remain.
func (c *Campaign) Merge() (*nocout.Report, error) {
	store := c.Store()
	rep := &nocout.Report{Title: c.man.Title, Quality: c.man.Quality, Results: make([]nocout.PointResult, len(c.man.Keys))}
	missing := 0
	for i, key := range c.man.Keys {
		pr, ok, err := store.Get(key)
		if err != nil {
			return nil, err
		}
		if !ok {
			missing++
			continue
		}
		rep.Results[i] = nocout.PointResult{Point: c.man.Points[i], Result: pr.Result, Err: pr.Err}
	}
	if missing > 0 {
		return nil, fmt.Errorf("campaign: %d of %d points have no stored result yet; run more workers (nocout -campaign %s)", missing, len(c.man.Keys), c.dir)
	}
	return rep, nil
}
