package campaign

import (
	"context"
	"sync"
	"time"

	"nocout"
)

// Options tunes one campaign worker. The zero value is a sensible
// worker: all CPUs, hostname-pid lease identity, DefaultTTL leases,
// cached results honoured, broken points recorded instead of fatal.
type Options struct {
	// Workers bounds the points measured concurrently (nocout.Runner
	// semantics; <= 0 means all CPUs).
	Workers int
	// SimParallelism shards each point's simulation across this many
	// concurrently stepping domains (nocout.Sweep.SimDomains). It is an
	// execution knob of this worker only — results and the campaign's
	// content keys are identical for any value, so workers at different
	// parallelism cooperate on one campaign freely.
	SimParallelism int
	// Owner is this worker's lease identity; "" means DefaultOwner()
	// (hostname-pid). It must be unique among cooperating workers.
	Owner string
	// LeaseTTL is the claim lifetime before other workers steal a
	// (presumed crashed) owner's points; <= 0 means DefaultTTL.
	LeaseTTL time.Duration
	// Recompute ignores existing cache entries once per key — the
	// re-run override policy — recomputing and overwriting them. It
	// extends to the checkpoint cache: with CheckpointDir set, warm
	// states are re-produced and overwritten too.
	Recompute bool
	// CheckpointDir, when non-empty, serves each point's warm state from
	// the content-addressed checkpoint cache rooted there
	// (nocout.CheckpointStore): points sharing a measurement prefix warm
	// up once per campaign instead of once per point, and cooperating
	// workers race to produce each prefix exactly once. Results are
	// byte-identical with or without it.
	CheckpointDir string
	// RecomputeCheckpoints re-produces warm states while keeping cached
	// results — the narrower override for a checkpoint cache under
	// suspicion. Recompute implies it.
	RecomputeCheckpoints bool
	// FailFast restores the Runner's abort-on-first-error contract.
	// The default (false) records a broken point's error in the store
	// and keeps going: one bad point must not kill a thousand-point
	// campaign.
	FailFast bool
	// PassDelay is the wait between passes while other workers hold
	// leases on the remaining points; <= 0 means 500ms.
	PassDelay time.Duration
	// Progress, when set, is called once per point as its result lands
	// (computed here, or observed in the shared store) with the
	// campaign-wide completion count seen by this worker.
	Progress func(done, total int, p nocout.Point, r nocout.Result)
}

// Stats summarizes one worker's Work call.
type Stats struct {
	// Points is the campaign size.
	Points int
	// Computed counts simulations this worker ran (failed runs
	// included) — zero on a fully cached re-run.
	Computed int
	// Cached counts points served from the store without simulation.
	Cached int
	// Failed counts points whose stored result carries an error.
	Failed int
	// Passes counts sweep passes; >1 means this worker waited on
	// points leased by others (or stole expired leases).
	Passes int
}

// Work runs one campaign worker until every point of the manifest has a
// stored result, the context is cancelled, or (with FailFast) a point
// fails. Any number of Work calls — across goroutines, processes, or
// machines sharing the campaign directory — cooperate through the store
// and leases; each pass skips points other workers hold, and between
// passes the worker waits for them to land or their leases to expire.
// Interrupt it freely: completed points are already durable, and the
// next Work resumes from the store.
func (c *Campaign) Work(ctx context.Context, opts Options) (Stats, error) {
	leaser := &Leaser{Dir: leasesDir(c.dir), Owner: opts.Owner, TTL: opts.LeaseTTL}
	if leaser.Owner == "" {
		leaser.Owner = DefaultOwner()
	}
	cache := &runnerCache{store: c.Store(), recompute: opts.Recompute}
	delay := opts.PassDelay
	if delay <= 0 {
		delay = 500 * time.Millisecond
	}
	var ckpts *nocout.CheckpointStore
	if opts.CheckpointDir != "" {
		st, err := nocout.NewCheckpointStore(opts.CheckpointDir)
		if err != nil {
			return Stats{Points: c.sw.Len()}, err
		}
		st.Recompute = opts.Recompute || opts.RecomputeCheckpoints
		ckpts = st
	}

	// The Runner re-reports cached points on every pass; the user's
	// Progress sees each point exactly once, with a campaign-wide count.
	var progMu sync.Mutex
	reported := map[string]bool{}
	progress := func(done, total int, p nocout.Point, r nocout.Result) {
		if opts.Progress == nil {
			return
		}
		key, err := p.Key(c.man.Quality)
		if err != nil {
			return
		}
		progMu.Lock()
		if reported[key] {
			progMu.Unlock()
			return
		}
		reported[key] = true
		n := len(reported)
		progMu.Unlock()
		opts.Progress(n, len(c.man.Keys), p, r)
	}

	sw := c.sw
	sw.SimDomains = opts.SimParallelism
	stats := Stats{Points: sw.Len()}
	for {
		rn := &nocout.Runner{
			Workers:     opts.Workers,
			KeepGoing:   !opts.FailFast,
			Cache:       cache,
			Lease:       leaserAdapter{leaser, c.man.Quality},
			Progress:    progress,
			Checkpoints: ckpts,
		}
		rep, err := rn.Run(ctx, sw)
		stats.Passes++
		cache.fill(&stats)
		if err != nil {
			return stats, err
		}
		skipped := 0
		for i := range rep.Results {
			if rep.Results[i].Skipped {
				skipped++
			}
		}
		if skipped == 0 {
			return stats, nil
		}
		// The remaining points are leased by other workers: wait for
		// their results to land (next pass hits the cache) or their
		// leases to expire (next pass steals them).
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// runnerCache adapts the campaign Store to the Runner's Cache hook,
// keying by canonical point identity and keeping per-key statistics
// across passes.
type runnerCache struct {
	store     Store
	recompute bool

	mu       sync.Mutex
	redone   map[string]bool // keys this worker recomputed (Recompute policy)
	cached   map[string]bool // keys first served from the store
	computed map[string]bool // keys this worker simulated
	failed   map[string]bool // keys whose entry carries an error
}

// Lookup implements nocout.Cache.
func (rc *runnerCache) Lookup(p nocout.Point, q nocout.Quality) (nocout.PointResult, bool, error) {
	key, err := p.Key(q)
	if err != nil {
		return nocout.PointResult{}, false, err
	}
	rc.mu.Lock()
	miss := rc.recompute && !rc.redone[key]
	rc.mu.Unlock()
	if miss {
		return nocout.PointResult{}, false, nil
	}
	pr, ok, err := rc.store.Get(key)
	if ok {
		rc.mu.Lock()
		if rc.cached == nil {
			rc.cached = map[string]bool{}
		}
		if !rc.cached[key] && !rc.computedLocked(key) {
			rc.cached[key] = true
		}
		if pr.Err != "" {
			rc.markFailedLocked(key)
		}
		rc.mu.Unlock()
	}
	return pr, ok, err
}

// Store implements nocout.Cache.
func (rc *runnerCache) Store(pr nocout.PointResult, q nocout.Quality) error {
	key, err := pr.Point.Key(q)
	if err != nil {
		return err
	}
	if err := rc.store.Put(key, pr, q); err != nil {
		return err
	}
	rc.mu.Lock()
	if rc.redone == nil {
		rc.redone = map[string]bool{}
	}
	rc.redone[key] = true
	if rc.computed == nil {
		rc.computed = map[string]bool{}
	}
	rc.computed[key] = true
	if pr.Err != "" {
		rc.markFailedLocked(key)
	}
	rc.mu.Unlock()
	return nil
}

func (rc *runnerCache) computedLocked(key string) bool { return rc.computed[key] }
func (rc *runnerCache) markFailedLocked(key string) {
	if rc.failed == nil {
		rc.failed = map[string]bool{}
	}
	rc.failed[key] = true
}

// fill copies the per-key tallies into st.
func (rc *runnerCache) fill(st *Stats) {
	rc.mu.Lock()
	st.Computed = len(rc.computed)
	st.Cached = len(rc.cached)
	st.Failed = len(rc.failed)
	rc.mu.Unlock()
}

// leaserAdapter adapts Leaser to the Runner's Lease hook.
type leaserAdapter struct {
	l *Leaser
	q nocout.Quality
}

// Acquire implements nocout.Lease.
func (a leaserAdapter) Acquire(p nocout.Point, q nocout.Quality) (func(), bool, error) {
	key, err := p.Key(q)
	if err != nil {
		return nil, false, err
	}
	return a.l.Acquire(key)
}
