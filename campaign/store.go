package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nocout"
	"nocout/internal/cas"
)

// EntryVersion is the cache-entry schema version ReadEntry accepts.
const EntryVersion = 1

// maxEntryBytes caps one cache entry's decode (a PointResult encodes to
// a few KB; the cap leaves room for large per-workload breakdowns).
const maxEntryBytes = 16 << 20

// Entry is one stored point result: the content key it is addressed by,
// the quality it was measured at (provenance — the key already encodes
// it), and the result itself, Err included for failed points.
type Entry struct {
	Version int                `json:"version"`
	Key     string             `json:"key"`
	Quality nocout.Quality     `json:"quality"`
	Result  nocout.PointResult `json:"result"`
}

// ValidKey reports whether s is a well-formed point key of the current
// schema: the KeyVersion prefix and 64 lowercase hex digits. Store and
// lease filenames derive from keys, so this is also the path-safety
// check.
func ValidKey(s string) bool {
	return cas.ValidKey(nocout.KeyVersion+"-", s)
}

// ReadEntry decodes and validates one cache entry, holding the
// no-unbounded-allocation contract on arbitrary input.
func ReadEntry(r io.Reader) (Entry, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxEntryBytes+1))
	if err != nil {
		return Entry{}, err
	}
	if len(data) > maxEntryBytes {
		return Entry{}, fmt.Errorf("campaign: cache entry exceeds the %dMB cap", maxEntryBytes>>20)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("campaign: decoding cache entry: %w", err)
	}
	if e.Version != EntryVersion {
		return Entry{}, fmt.Errorf("campaign: cache entry version %d, want %d", e.Version, EntryVersion)
	}
	if !ValidKey(e.Key) {
		return Entry{}, fmt.Errorf("campaign: cache entry carries an invalid key %.80q", e.Key)
	}
	return e, nil
}

// Store is the content-addressed result store a campaign appends
// completed points to: Get/Put by canonical point key. DirStore is the
// local-directory backend; the interface (flat string keys, whole-entry
// reads and writes, idempotent puts) is deliberately the S3 object-store
// shape so a remote backend can slot in without touching the worker.
type Store interface {
	// Get returns the stored result for key; a miss — including an
	// unreadable or corrupt entry, which a later Put self-heals — is
	// (zero, false, nil). Errors are real I/O failures.
	Get(key string) (nocout.PointResult, bool, error)
	// Put stores the result under key, atomically and idempotently:
	// points are deterministic, so concurrent writers of one key write
	// identical content and any winner is correct.
	Put(key string, pr nocout.PointResult, q nocout.Quality) error
}

// DirStore stores one JSON entry per point key in a flat directory,
// written atomically (temp file + rename).
type DirStore struct{ dir string }

// NewDirStore returns the directory-backed store rooted at dir.
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// path maps a key to its entry file; keys are ValidKey-shaped (hex), so
// the name is path-safe by construction.
func (s *DirStore) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Get implements Store.
func (s *DirStore) Get(key string) (nocout.PointResult, bool, error) {
	if !ValidKey(key) {
		return nocout.PointResult{}, false, fmt.Errorf("campaign: invalid point key %.80q", key)
	}
	f, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return nocout.PointResult{}, false, nil
	}
	if err != nil {
		return nocout.PointResult{}, false, err
	}
	defer f.Close()
	e, err := ReadEntry(f)
	if err != nil || e.Key != key {
		// Corrupt or misplaced entry: treat as a miss so the point is
		// recomputed and the next Put heals the file.
		return nocout.PointResult{}, false, nil
	}
	return e.Result, true, nil
}

// Put implements Store.
func (s *DirStore) Put(key string, pr nocout.PointResult, q nocout.Quality) error {
	if !ValidKey(key) {
		return fmt.Errorf("campaign: invalid point key %.80q", key)
	}
	data, err := json.MarshalIndent(Entry{Version: EntryVersion, Key: key, Quality: q, Result: pr}, "", "  ")
	if err != nil {
		return err
	}
	return cas.WriteFileAtomic(s.path(key), data)
}
