package campaign_test

import (
	"context"
	"testing"

	"nocout"
	"nocout/campaign"
)

// This file benchmarks the campaign layer against the plain Runner on one
// small sweep: the cold pass measures the full store/lease/manifest
// overhead on top of real simulations, and the cached pass measures the
// skip path alone — the cost of *not* recomputing a point, which is what
// a resumed thousand-point campaign mostly pays. CI archives the results
// as BENCH_campaign.json through the same converter as the other BENCH_*
// artifacts, so the subsystem's overhead and the cache-hit skip rate are
// tracked PR over PR.

// benchSweep is a 4-point Quick-quality sweep (two designs × two
// workloads at 16 cores).
func benchSweep(b *testing.B) nocout.Sweep {
	b.Helper()
	sw, err := nocout.NewExperiment(
		nocout.WithTitle("campaign bench"),
		nocout.WithDesigns(nocout.Mesh, nocout.Ideal),
		nocout.WithWorkloads("SAT Solver", "Web Search"),
		nocout.WithCoreCounts(16),
		nocout.WithQuality(nocout.Quick),
	).Sweep()
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// BenchmarkRunnerDirect is the baseline: the sweep through the plain
// Runner, no cache, no leases, no campaign directory.
func BenchmarkRunnerDirect(b *testing.B) {
	sw := benchSweep(b)
	for i := 0; i < b.N; i++ {
		if _, err := (&nocout.Runner{}).Run(context.Background(), sw); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sw.Len()), "ns/point")
}

// BenchmarkCampaignCold measures a fresh campaign end to end — manifest
// write, key hashing, leases, atomic result stores — on top of the same
// simulations BenchmarkRunnerDirect runs; the ns/point delta is the
// per-point campaign overhead.
func BenchmarkCampaignCold(b *testing.B) {
	sw := benchSweep(b)
	var computed int
	for i := 0; i < b.N; i++ {
		c, err := campaign.Create(b.TempDir(), sw)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := c.Work(context.Background(), campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		computed += stats.Computed
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sw.Len()), "ns/point")
	b.ReportMetric(float64(computed)/float64(b.N*sw.Len()), "computed-frac")
}

// BenchmarkCampaignCachedHit measures a fully cached re-run: every point
// is served from the store, zero simulations execute, and ns/point is the
// pure skip cost (key hash + entry decode).
func BenchmarkCampaignCachedHit(b *testing.B) {
	sw := benchSweep(b)
	c, err := campaign.Create(b.TempDir(), sw)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Work(context.Background(), campaign.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cached int
	for i := 0; i < b.N; i++ {
		stats, err := c.Work(context.Background(), campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Computed != 0 {
			b.Fatalf("cached re-run computed %d points", stats.Computed)
		}
		cached += stats.Cached
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sw.Len()), "ns/point")
	b.ReportMetric(float64(cached)/float64(b.N*sw.Len()), "hit-rate")
}
