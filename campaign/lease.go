package campaign

import (
	"time"

	"nocout"
	"nocout/internal/cas"
)

// Leaser partitions a campaign's points across worker processes with
// per-key claim files in a shared directory, delegating to the shared
// cas lease protocol (O_CREATE|O_EXCL claims, rename-arbitrated steal of
// expired claims). Leasing is purely an anti-duplication optimization:
// points are deterministic and the store is idempotent, so the worst
// case of any race is two workers computing the same point and storing
// identical results.
type Leaser struct {
	// Dir is the shared lease directory (the campaign's leases/).
	Dir string
	// Owner identifies this worker in claim files; it must be unique
	// among cooperating workers (DefaultOwner is hostname-pid).
	Owner string
	// TTL is how long a claim lives before any worker may steal it from
	// a (presumed crashed) owner.
	TTL time.Duration
}

// DefaultTTL is the claim lifetime when Leaser.TTL is zero: long enough
// for any Full-quality point, short enough that a crashed worker's
// points are reclaimed within a coffee break.
const DefaultTTL = cas.DefaultTTL

// DefaultOwner returns this process's default lease identity.
func DefaultOwner() string { return cas.DefaultOwner() }

// Acquire claims key for this worker. ok=false means another worker
// holds a live claim (or won a racing steal); release removes the claim
// and must be called once the point's result is stored.
func (l *Leaser) Acquire(key string) (release func(), ok bool, err error) {
	cl := cas.Leaser{Dir: l.Dir, Owner: l.Owner, TTL: l.TTL, KeyPrefix: nocout.KeyVersion + "-"}
	return cl.Acquire(key)
}
