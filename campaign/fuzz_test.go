package campaign_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nocout"
	"nocout/campaign"
)

// The fuzz targets hold the campaign file decoders to the no-panic,
// no-unbounded-allocation contract on arbitrary bytes — campaign
// directories are shared between processes and may be truncated by
// crashes mid-write or edited by hand. `go test` runs the seed corpus on
// every CI pass; `go test -fuzz FuzzReadManifest` (or FuzzReadEntry)
// explores further.

func fuzzKey(fill string) string {
	return nocout.KeyVersion + "-" + strings.Repeat(fill, 64/len(fill))
}

func validManifestBytes(f *testing.F) []byte {
	f.Helper()
	cfg := nocout.DefaultConfig(nocout.Mesh)
	cfg.Cores = 8
	man := campaign.Manifest{
		Version: campaign.ManifestVersion,
		Title:   "fuzz",
		Quality: tiny,
		Points: []nocout.Point{
			{Variant: "Mesh", Design: nocout.Mesh, Workload: "SAT Solver", Seed: 1, Config: cfg},
			{Variant: "Mesh2", Design: nocout.Mesh, Workload: "Data Serving", Seed: 1, Config: cfg},
		},
		Keys: []string{fuzzKey("0"), fuzzKey("1")},
	}
	data, err := json.Marshal(man)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzReadManifest(f *testing.F) {
	valid := validManifestBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                // truncated mid-object
	f.Add([]byte("{}"))                                                        // no version, no points
	f.Add([]byte(`{"version":99,"points":[{}]}`))                              // future version
	f.Add([]byte(`{"version":1,"points":[{}]}`))                               // point with no workload, no keys
	f.Add([]byte("not json at all"))                                           //
	f.Add(bytes.Replace(valid, []byte(fuzzKey("1")), []byte(fuzzKey("0")), 1)) // duplicate key
	f.Add(bytes.Replace(valid, []byte(fuzzKey("1")), []byte("../../etc"), 1))  // path-hostile key
	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := campaign.ReadManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must uphold the invariants the store and
		// leaser trust: validated version, matched lists, unique
		// path-safe keys, named workloads.
		if man.Version != campaign.ManifestVersion {
			t.Fatalf("decoded version %d", man.Version)
		}
		if len(man.Points) == 0 || len(man.Keys) != len(man.Points) {
			t.Fatalf("decoded %d points with %d keys", len(man.Points), len(man.Keys))
		}
		seen := map[string]bool{}
		for _, k := range man.Keys {
			if !campaign.ValidKey(k) || seen[k] {
				t.Fatalf("decoded invalid or duplicate key %q", k)
			}
			seen[k] = true
		}
		for i := range man.Points {
			if man.Points[i].Workload == "" {
				t.Fatalf("decoded point %d without a workload", i)
			}
		}
	})
}

func FuzzReadEntry(f *testing.F) {
	entry := campaign.Entry{
		Version: campaign.EntryVersion,
		Key:     fuzzKey("ab"),
		Quality: tiny,
		Result: nocout.PointResult{
			Point:  nocout.Point{Variant: "Mesh", Workload: "SAT Solver"},
			Result: nocout.Result{AggIPC: 4.5},
		},
	}
	valid, err := json.Marshal(entry)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"key":"pt1-zz"}`))
	f.Add([]byte(`{"version":2,"key":"` + fuzzKey("ab") + `"}`))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := campaign.ReadEntry(bytes.NewReader(data))
		if err != nil {
			return
		}
		if e.Version != campaign.EntryVersion {
			t.Fatalf("decoded version %d", e.Version)
		}
		if !campaign.ValidKey(e.Key) {
			t.Fatalf("decoded invalid key %q", e.Key)
		}
	})
}
