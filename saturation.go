package nocout

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"nocout/internal/workload"

	// Importing the opensys family from the root package guarantees the
	// "opensys:" scheme and the registered Open defaults are available in
	// every binary that links nocout — the CLI, campaign workers, tests.
	_ "nocout/opensys"
)

// This file is the open-system counterpart of the Figure* specs: a
// saturation study sweeps offered load and reports where each design's
// tail latency leaves the linear regime. It is the headline consumer of
// WithOfferedLoads and Result.ReqLatency.

// kneeFactor defines the saturation knee: the largest offered load
// whose p99 stays within this factor of the lowest load's p99. Beyond
// it the queueing delay dominates and the open system is saturating.
const kneeFactor = 2.0

// SaturationResult holds a saturation sweep: per-variant p99-vs-load
// curves, the detected knee, and the full Report for custom rendering.
type SaturationResult struct {
	// Workload is the swept open-system workload (name or opensys: spec).
	Workload string
	// Loads are the swept offered loads, ascending, in requests per 1000
	// cycles per core.
	Loads []float64
	// Variants lists the sweep's variant names in report order.
	Variants []string
	// P99 maps variant name to its p99 latency (cycles) per load, index-
	// aligned with Loads.
	P99 map[string][]int64
	// Knee maps variant name to the largest measured load whose p99 is
	// within kneeFactor of the lowest load's p99 — the last point before
	// the tail blows up. A variant saturated even at the lowest load
	// knees there.
	Knee map[string]float64
	// Report is the underlying sweep report (JSON/CSV encodable).
	Report *Report
}

// StudySaturation measures tail latency versus offered load: the named
// open-system workload (any "opensys:" spec or registered open default;
// empty means "Open Poisson") swept across loads (requests per 1000
// cycles per core; empty means a default 0.5→8 ramp) on one variant per
// design (default Mesh and NOC-Out), at quality q. The p99-vs-load
// curve rises monotonically toward saturation; Knee reports where each
// design leaves the linear regime.
func StudySaturation(ctx context.Context, workloadSpec string, loads []float64, q Quality, designs ...Design) (*SaturationResult, error) {
	if workloadSpec == "" {
		workloadSpec = "Open Poisson"
	}
	if len(loads) == 0 {
		loads = []float64{0.5, 1, 2, 4, 8}
	}
	loads = append([]float64(nil), loads...)
	sort.Float64s(loads)
	if len(designs) == 0 {
		designs = []Design{Mesh, NOCOut}
	}
	rep, err := NewExperiment(
		WithTitle("saturation: p99 latency vs offered load"),
		WithDesigns(designs...),
		WithWorkloads(workloadSpec),
		WithOfferedLoads(loads...),
		WithQuality(q),
	).Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &SaturationResult{
		Workload: workloadSpec,
		Loads:    loads,
		P99:      map[string][]int64{},
		Knee:     map[string]float64{},
		Report:   rep,
	}
	idx := map[float64]int{}
	for i, l := range loads {
		idx[l] = i
	}
	for _, pr := range rep.Results {
		v := pr.Point.Variant
		if _, seen := out.P99[v]; !seen {
			out.Variants = append(out.Variants, v)
			out.P99[v] = make([]int64, len(loads))
		}
		if pr.Err != "" {
			return nil, fmt.Errorf("nocout: saturation point %s failed: %s", pr.Point, pr.Err)
		}
		rl := pr.Result.ReqLatency
		if rl == nil {
			return nil, fmt.Errorf("nocout: saturation point %s returned no request latency (workload %q is not open-system?)", pr.Point, pr.Point.Workload)
		}
		load, err := loadOfPoint(pr.Point)
		if err != nil {
			return nil, err
		}
		i, ok := idx[load]
		if !ok {
			return nil, fmt.Errorf("nocout: saturation point %s reports unswept load %v", pr.Point, load)
		}
		out.P99[v][i] = rl.P99
	}
	for _, v := range out.Variants {
		curve := out.P99[v]
		// LogHist quantiles are inclusive bucket upper bounds of the form
		// m·2^k−1, so two p99s exactly kneeFactor apart would miss
		// `p99 ≤ kneeFactor·base` by one cycle; comparing against the
		// bucket's exclusive bound (base+1) keeps the knee test off that
		// knife edge.
		knee := loads[0]
		for i, p99 := range curve {
			if float64(p99) <= kneeFactor*float64(curve[0]+1) {
				knee = loads[i]
			}
		}
		out.Knee[v] = knee
	}
	return out, nil
}

// loadOfPoint recovers a sweep point's offered load from its workload
// name (the canonical spec carries the rate — the property that keys
// load-sweep cells and campaign cache entries).
func loadOfPoint(p Point) (float64, error) {
	w, err := workload.Parse(p.Workload)
	if err != nil {
		return 0, fmt.Errorf("nocout: resolving saturation point %s: %w", p, err)
	}
	rs, ok := workload.RateScaledOf(w)
	if !ok {
		return 0, fmt.Errorf("nocout: saturation point %s is not rate-scalable", p)
	}
	return rs.OfferedLoad(), nil
}

// Table renders the p99-vs-load curves with each variant's knee.
func (r *SaturationResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("saturation: %s — p99 latency (cycles) vs offered load (req/kcycle/core)", r.Workload)}
	t.Header = []string{"variant"}
	for _, l := range r.Loads {
		t.Header = append(t.Header, strconv.FormatFloat(l, 'g', -1, 64))
	}
	t.Header = append(t.Header, "knee")
	for _, v := range r.Variants {
		row := []string{v}
		for _, p99 := range r.P99[v] {
			row = append(row, strconv.FormatInt(p99, 10))
		}
		row = append(row, strconv.FormatFloat(r.Knee[v], 'g', -1, 64))
		t.AddRow(row...)
	}
	return t
}
