package nocout

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nocout/internal/chip"
	"nocout/internal/workload"
)

// This file is the cross-hierarchy conformance suite the memory-hierarchy
// API ships with: every registered hierarchy must be deterministic,
// round-trip through the registry and report JSON, route every line to
// exactly one home bank and one memory channel, and the SharedNUCA
// baseline must be state-hash-identical to the pre-refactor chip.

// TestHierarchyRegistryComplete pins the registered hierarchy space: the
// baseline plus the extension hierarchies, in stable handle order.
func TestHierarchyRegistryComplete(t *testing.T) {
	hs := Hierarchies()
	if len(hs) < 5 {
		t.Fatalf("registry has %d hierarchies, want >= 5", len(hs))
	}
	want := []HierarchyID{SharedNUCA, XORPlacement, RegionAffine, PrivateLLC, Clustered}
	names := []string{"SharedNUCA", "SharedNUCA-XOR", "SharedNUCA-Affine", "PrivateLLC", "Clustered"}
	for i, id := range want {
		if hs[i] != id {
			t.Errorf("Hierarchies()[%d] = %v, want %v", i, hs[i], id)
		}
		if id.String() != names[i] {
			t.Errorf("%v.String() = %q, want %q", id, id.String(), names[i])
		}
	}
}

// TestSharedNUCAStateHashIdentical pins the tentpole's bit-identity
// requirement: the refactored generic chip, built with the baseline
// hierarchy on a 16-tile mesh, reproduces the pre-refactor code's state
// hash cycle for cycle. The constants were recaptured when the shared
// packet-id counter left the digest (per-agent ids for the sharded
// kernel); behavioural identity with the seed is still pinned float-for-
// float by TestSharedNUCAQuickBitIdentical below.
func TestSharedNUCAStateHashIdentical(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	c := chip.New(cfg, w)
	c.PrewarmCaches()
	c.Engine.Step(3000)
	if h := c.StateHash(); h != 0xa92f40036baf40c4 {
		t.Fatalf("state hash at cycle 3000 = %#x, want %#x (pre-refactor)", h, uint64(0xa92f40036baf40c4))
	}
	c.Engine.Step(5000)
	if h := c.StateHash(); h != 0x9948890ee3c5c5f3 {
		t.Fatalf("state hash at cycle 8000 = %#x, want %#x (pre-refactor)", h, uint64(0x9948890ee3c5c5f3))
	}
}

// TestSharedNUCAQuickBitIdentical pins a full Quick-quality measurement
// (the Figure* studies' path) to the pre-refactor numbers, float for
// float.
func TestSharedNUCAQuickBitIdentical(t *testing.T) {
	res, err := Run(DefaultConfig(Mesh), "Web Search", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggIPC != 6.73645 ||
		res.PerCoreIPC != 0.421028125 ||
		res.AvgNetLatency != 20.8759917981635 ||
		res.LLCMissRate != 0.4320955595949104 ||
		res.L1IMPKI != 13.723845645703598 ||
		res.L1DMPKI != 14.84461400292439 {
		t.Fatalf("Quick measurement drifted from the pre-refactor baseline: %+v", res)
	}
}

// TestHierarchyConformance is the cross-hierarchy contract: every
// registered hierarchy round-trips through the name registry, reports a
// coherent physical model, builds on a 16-tile mesh, routes every line to
// exactly one in-range home bank and channel, and measures
// deterministically.
func TestHierarchyConformance(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range Hierarchies() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			t.Parallel()
			hier, err := HierarchyOf(id)
			if err != nil {
				t.Fatal(err)
			}

			// Name round-trips: display name, aliases, MarshalText.
			if got, err := ParseHierarchy(id.String()); err != nil || got != id {
				t.Fatalf("ParseHierarchy(%q) = (%v, %v)", id.String(), got, err)
			}
			for _, a := range hier.Aliases() {
				if got, err := ParseHierarchy(a); err != nil || got != id {
					t.Fatalf("alias %q = (%v, %v), want %v", a, got, err, id)
				}
			}
			txt, err := id.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			var back HierarchyID
			if err := back.UnmarshalText(txt); err != nil || back != id {
				t.Fatalf("text round-trip %q = (%v, %v)", txt, back, err)
			}

			// Physical model: every hierarchy contributes positive LLC
			// storage and directory silicon for the Table 1 capacity.
			cfg := hier.DefaultConfig(DefaultConfig(Mesh))
			cfg.Hierarchy = id
			cfg.Cores = 16
			if hp := hier.Physical(cfg); hp.StorageMM2 <= 0 || hp.DirMM2 <= 0 || hp.LeakageW <= 0 {
				t.Fatalf("implausible physical model: %+v", hp)
			}

			// Exhaustive small-address-space routing check over every
			// region class the workloads emit: each line maps to exactly
			// one in-range home bank whose node matches the layout's bank
			// placement, and one in-range memory channel — stably across
			// repeated probes and across two independently built chips.
			ca, cb := chip.New(cfg, w), chip.New(cfg, w)
			ml, ml2 := ca.Memory, cb.Memory
			if ml.NumBanks != len(ca.Banks) {
				t.Fatalf("NumBanks %d != built banks %d", ml.NumBanks, len(ca.Banks))
			}
			lay := w.Layout()
			probe := func(line uint64) {
				node, bank := ml.Home(line)
				if bank < 0 || bank >= ml.NumBanks {
					t.Fatalf("line %#x: bank %d out of range [0,%d)", line, bank, ml.NumBanks)
				}
				if node != ml.BankNode(bank) {
					t.Fatalf("line %#x: home node %v != BankNode(%d) %v", line, node, bank, ml.BankNode(bank))
				}
				if n2, b2 := ml.Home(line); n2 != node || b2 != bank {
					t.Fatalf("line %#x: home not stable", line)
				}
				if n2, b2 := ml2.Home(line); n2 != node || b2 != bank {
					t.Fatalf("line %#x: home differs across chip builds", line)
				}
				ch := ml.ChannelOf(line)
				if ch < 0 || ch >= cfg.MemChannels {
					t.Fatalf("line %#x: channel %d out of range", line, ch)
				}
				if ml.ChannelOf(line) != ch || ml2.ChannelOf(line) != ch {
					t.Fatalf("line %#x: channel not stable", line)
				}
			}
			for line := uint64(0); line < 1<<14; line++ {
				probe(line)
			}
			regions := []workload.Region{lay.Instr, lay.Hot}
			for i := 0; i < cfg.Cores; i++ {
				r := lay.Local(i)
				regions = append(regions, workload.Region{Base: r.Base, Size: r.Size + 64*256})
			}
			for _, r := range regions {
				for a := r.Base; a < r.Base+r.Size; a += 64 {
					probe(a / 64)
				}
			}

			// Same seed, same Result — bit for bit, through the full
			// measurement path.
			res, err := Run(cfg, "MapReduce-C", confQ)
			if err != nil {
				t.Fatal(err)
			}
			if res.ActiveCores != 16 || res.AggIPC <= 0 || res.AvgNetLatency <= 0 {
				t.Fatalf("implausible result: %+v", res)
			}
			again, err := Run(cfg, "MapReduce-C", confQ)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Fatalf("nondeterministic:\n%+v\n%+v", res, again)
			}
			if id == SharedNUCA {
				if res.Hierarchy != "" {
					t.Fatalf("baseline result must omit the hierarchy name, got %q", res.Hierarchy)
				}
			} else if res.Hierarchy != id.String() {
				t.Fatalf("result names hierarchy %q, want %q", res.Hierarchy, id.String())
			}
		})
	}
}

// TestHierarchySweepThroughEngine drives every hierarchy through the same
// declarative sweep path the Figure* studies use, and round-trips the
// report through JSON with the hierarchy dimension intact.
func TestHierarchySweepThroughEngine(t *testing.T) {
	rep, err := NewExperiment(
		WithTitle("hierarchy sweep"),
		WithDesigns(Mesh),
		WithHierarchies(Hierarchies()...),
		WithWorkloads("SAT Solver"),
		WithCoreCounts(16),
		WithQuality(confQ),
	).Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Results), len(Hierarchies()); got != want {
		t.Fatalf("sweep has %d points, want %d", got, want)
	}
	base, ok := rep.Get("Mesh/SharedNUCA", "SAT Solver", 16)
	if !ok {
		t.Fatal("sweep lost the baseline point")
	}
	for _, id := range Hierarchies() {
		res, ok := rep.Get("Mesh/"+id.String(), "SAT Solver", 16)
		if !ok {
			t.Fatalf("sweep lost hierarchy %v", id)
		}
		if res.AggIPC <= 0 {
			t.Fatalf("%v never ran: %+v", id, res)
		}
		_ = base
	}

	// JSON round-trip: the hierarchy survives in Point, Config, and
	// (for non-baseline points) Result.
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	for i, pr := range back.Results {
		orig := rep.Results[i]
		if pr.Point.Hierarchy != orig.Point.Hierarchy ||
			pr.Point.Config.Hierarchy != orig.Point.Config.Hierarchy ||
			pr.Result.Hierarchy != orig.Result.Hierarchy {
			t.Fatalf("JSON round-trip lost the hierarchy dimension: %+v vs %+v", pr, orig)
		}
		if pr.Result.AggIPC != orig.Result.AggIPC {
			t.Fatalf("JSON round-trip lost data: %+v", pr)
		}
	}

	// CSV carries the hierarchy column.
	var cs strings.Builder
	if err := rep.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.String(), "PrivateLLC") || !strings.Contains(strings.SplitN(cs.String(), "\n", 2)[0], "hierarchy") {
		t.Fatalf("CSV lost the hierarchy dimension:\n%s", cs.String())
	}
}

// TestHierarchyLocalityWins pins the architectural signal the new
// hierarchies exist to produce: region-affine placement keeps each core's
// dominant private traffic on its own tile, so its average network
// latency must undercut the baseline's all-banks stripe on the mesh.
func TestHierarchyLocalityWins(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	base, err := Run(cfg, "MapReduce-C", confQ)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hierarchy = RegionAffine
	affine, err := Run(cfg, "MapReduce-C", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if affine.AvgNetLatency >= base.AvgNetLatency {
		t.Fatalf("affine placement should cut net latency: affine %.2f vs shared %.2f",
			affine.AvgNetLatency, base.AvgNetLatency)
	}
}

// TestClusteredRequiresTiledFabric pins the hard error for hierarchies
// that re-place banks onto per-core tiles: NOC-Out's segregated LLC has
// no such tiles, so building must fail loudly, not silently misroute.
func TestClusteredRequiresTiledFabric(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []HierarchyID{PrivateLLC, Clustered} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%v on NOC-Out must panic", id)
					return
				}
				if msg, ok := r.(error); !ok || !strings.Contains(msg.Error(), "tiled organization") {
					t.Errorf("%v: unexpected panic %v", id, r)
				}
			}()
			cfg := DefaultConfig(NOCOut)
			cfg.Hierarchy = id
			chip.New(cfg, w)
		}()
	}
}

// TestIncompatibleHierarchySweepErrors pins the sweep-level hard error:
// a point whose hierarchy cannot inhabit its design (every name parsed
// fine, so only Build can catch it) must fail the sweep with an error
// naming the point — not kill the process from a worker goroutine.
func TestIncompatibleHierarchySweepErrors(t *testing.T) {
	rep, err := NewExperiment(
		WithDesigns(NOCOut),
		WithHierarchies(PrivateLLC),
		WithWorkloads("MapReduce-C"),
		WithQuality(confQ),
	).Run(t.Context())
	if err == nil {
		t.Fatalf("incompatible hierarchy/design must error, got report %+v", rep)
	}
	if !strings.Contains(err.Error(), "tiled organization") || !strings.Contains(err.Error(), "NOC-Out") {
		t.Fatalf("error should name the incompatibility and the point: %v", err)
	}
	if rep != nil {
		t.Fatal("failed sweep must not return a report")
	}
	// Run (the direct API) re-raises the panic on the caller's goroutine,
	// so library callers can recover it.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("direct Run must panic recoverably on the caller's goroutine")
			}
		}()
		cfg := DefaultConfig(NOCOut)
		cfg.Hierarchy = PrivateLLC
		_, _ = Run(cfg, "MapReduce-C", confQ)
	}()
}

// TestMemConfigPlumbing pins the satellite: chip.Config.Mem reaches the
// memory controllers (slower DRAM must slow the measured system) and
// round-trips through JSON.
func TestMemConfigPlumbing(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	fast, err := Run(cfg, "Web Search", confQ)
	if err != nil {
		t.Fatal(err)
	}
	slow := cfg
	slow.Mem.AccessLat = 400
	slow.Mem.LinePeriod = 40
	slowRes, err := Run(slow, "Web Search", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.AggIPC >= fast.AggIPC {
		t.Fatalf("4x slower DRAM must hurt: slow %.3f vs fast %.3f", slowRes.AggIPC, fast.AggIPC)
	}

	b, err := json.Marshal(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"access_lat":400`) {
		t.Fatalf("mem config missing from JSON: %s", b)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mem != slow.Mem {
		t.Fatalf("mem config round-trip: %+v vs %+v", back.Mem, slow.Mem)
	}
}
