package nocout

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PointResult pairs a sweep point with its measurement.
type PointResult struct {
	Point  Point  `json:"point"`
	Result Result `json:"result"`
	// Err records the point's failure when the Runner ran in KeepGoing
	// mode (or the entry was merged from a campaign store); empty for a
	// successful measurement. A failed point's Result is the zero value.
	Err string `json:"error,omitempty"`
	// Skipped marks a point this runner neither computed nor found
	// cached — another campaign worker held its lease; the campaign
	// merge step fills it in from the shared store.
	Skipped bool `json:"skipped,omitempty"`
}

// Report holds a sweep's structured results, keyed by point and stored in
// sweep order. It renders as a text Table, JSON, or CSV.
type Report struct {
	Title   string        `json:"title,omitempty"`
	Quality Quality       `json:"quality"`
	Results []PointResult `json:"results"`
}

// GetPoint returns the full point-result pair for a (variant, workload,
// cores) cell — use it when the point's resolved Config matters (e.g.
// feeding the area model). Cores follows Point.Cores (0 when the sweep
// did not set core counts).
func (r *Report) GetPoint(variant, workloadName string, cores int) (PointResult, bool) {
	for _, pr := range r.Results {
		p := pr.Point
		if p.Variant == variant && p.Workload == workloadName && p.Cores == cores {
			return pr, true
		}
	}
	return PointResult{}, false
}

// Get returns the result for a (variant, workload, cores) cell.
func (r *Report) Get(variant, workloadName string, cores int) (Result, bool) {
	pr, ok := r.GetPoint(variant, workloadName, cores)
	return pr.Result, ok
}

// MustGet is Get for cells the sweep is known to contain (its own specs).
func (r *Report) MustGet(variant, workloadName string, cores int) Result {
	res, ok := r.Get(variant, workloadName, cores)
	if !ok {
		panic(fmt.Sprintf("nocout: report %q has no point %s|%s|%d", r.Title, variant, workloadName, cores))
	}
	return res
}

// WriteJSON encodes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader is the flat per-point schema WriteCSV emits.
var csvHeader = []string{
	"variant", "design", "hierarchy", "workload", "cores", "link_bits", "seed",
	"active_cores", "agg_ipc", "per_core_ipc", "avg_net_latency_cy",
	"snoop_rate", "llc_miss_rate", "l1i_mpki", "l1d_mpki", "noc_power_w",
	"error",
}

// csvOpenHeader extends csvHeader with the request-latency columns.
// They appear only when some row is open-system, so every closed-loop
// report stays byte-identical to the pre-opensys schema.
var csvOpenHeader = []string{
	"req_offered", "req_completed", "req_dropped",
	"req_mean_cy", "req_p50_cy", "req_p95_cy", "req_p99_cy", "req_mean_queue",
}

// hasOpenRows reports whether any measured point is open-system.
func (r *Report) hasOpenRows() bool {
	for _, pr := range r.Results {
		if pr.Result.ReqLatency != nil {
			return true
		}
	}
	return false
}

// WriteCSV encodes the report as one CSV row per point.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	open := r.hasOpenRows()
	header := csvHeader
	if open {
		header = append(append([]string{}, csvHeader...), csvOpenHeader...)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, pr := range r.Results {
		p, res := pr.Point, pr.Result
		row := []string{
			p.Variant, p.Design.String(), p.Hierarchy.String(), p.Workload,
			strconv.Itoa(p.Config.Cores), strconv.Itoa(p.Config.LinkBits),
			strconv.FormatUint(p.Seed, 10),
			strconv.Itoa(res.ActiveCores), f(res.AggIPC), f(res.PerCoreIPC),
			f(res.AvgNetLatency), f(res.SnoopRate), f(res.LLCMissRate),
			f(res.L1IMPKI), f(res.L1DMPKI), f(res.NoCPower.Total()),
			pr.Err,
		}
		if open {
			if rl := res.ReqLatency; rl != nil {
				row = append(row,
					strconv.FormatInt(rl.Arrivals, 10),
					strconv.FormatInt(rl.Completed, 10),
					strconv.FormatInt(rl.Dropped, 10),
					f(rl.MeanCy),
					strconv.FormatInt(rl.P50, 10),
					strconv.FormatInt(rl.P95, 10),
					strconv.FormatInt(rl.P99, 10),
					f(rl.MeanQueue))
			} else {
				row = append(row, "", "", "", "", "", "", "", "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the report as a generic per-point text table. Request-
// latency columns appear only when some row is open-system; all-closed-
// loop reports render exactly as they always have.
func (r *Report) Table() *Table {
	title := r.Title
	if title == "" {
		title = "sweep report"
	}
	open := r.hasOpenRows()
	t := &Table{Title: title,
		Header: []string{"variant", "workload", "cores", "agg IPC", "IPC/core", "net lat", "NoC W"}}
	if open {
		t.Header = append(t.Header, "req p50", "req p95", "req p99", "drops")
	}
	for _, pr := range r.Results {
		p, res := pr.Point, pr.Result
		row := []string{p.Variant, p.Workload, strconv.Itoa(p.Config.Cores),
			f2(res.AggIPC), f3(res.PerCoreIPC), f2(res.AvgNetLatency),
			f2(res.NoCPower.Total())}
		if open {
			if rl := res.ReqLatency; rl != nil {
				row = append(row,
					strconv.FormatInt(rl.P50, 10),
					strconv.FormatInt(rl.P95, 10),
					strconv.FormatInt(rl.P99, 10),
					strconv.FormatInt(rl.Dropped, 10))
			} else {
				row = append(row, "", "", "", "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Table is a simple text table; one of the Report renderers and the shape
// every Figure*Result renders into.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
