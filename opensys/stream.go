package opensys

import (
	"math"

	"nocout/internal/cpu"
	"nocout/internal/sim"
	"nocout/internal/stats"
	"nocout/internal/workload"
)

// openStream drives one core: it releases base-workload instructions
// only while a request is being served, answers KindIdle otherwise, and
// timestamps every request through arrival → dispatch → completion.
//
// The lifecycle is exact, not modeled: dispatch happens when fetch pulls
// the request's first instruction, and completion when the core commits
// its last one (the RetireObserver callback), so a request's latency
// includes queueing delay, pipeline fill, and every memory stall its
// instructions suffer in the simulated hierarchy.
type openStream struct {
	o       *Open
	service cpu.Stream // base workload's instruction stream
	arr     *arrivalGen
	nextArr float64 // absolute cycle of the next (not yet offered) arrival

	queue   []int64 // arrival cycles of queued, undispatched requests
	serving bool    // a request currently owns the instruction stream
	remain  int     // instructions left in the serving request

	issued  int64     // service instructions handed to fetch since start
	retired int64     // service instructions committed since start
	pending []openReq // dispatched requests not yet fully committed

	st       workload.OpenStats
	fallback sim.Cycle // synthetic clock for untimed Next() callers
}

// openReq tracks one dispatched request: its arrival cycle and the
// issued-instruction count at which its last instruction will commit.
type openReq struct {
	arrival int64
	end     int64
}

func newOpenStream(o *Open, coreID int, seed uint64) *openStream {
	s := &openStream{
		o:       o,
		service: o.base.StreamFor(coreID, seed),
		arr:     newArrivalGen(o.cfg, coreID, seed, o.perCycleRate(coreID)),
		st:      workload.OpenStats{Hist: &stats.LogHist{}},
	}
	s.nextArr = s.arr.next()
	return s
}

// NextAt implements cpu.TimedStream. Arrivals due by now are offered to
// the bounded queue (queue length is sampled at each arrival instant —
// for Poisson arrivals PASTA makes that the time-average queue); then
// the head request, if any, is served one instruction at a time.
func (s *openStream) NextAt(now sim.Cycle) cpu.Instr {
	t := float64(now)
	for s.nextArr <= t {
		s.st.Arrivals++
		s.st.QueueSum += int64(len(s.queue))
		if len(s.queue) < s.o.cfg.Queue {
			s.queue = append(s.queue, int64(math.Ceil(s.nextArr)))
		} else {
			s.st.Dropped++
		}
		s.nextArr = s.arr.next()
	}
	if !s.serving {
		if len(s.queue) == 0 {
			return cpu.Instr{Kind: cpu.KindIdle}
		}
		arrival := s.queue[0]
		s.queue = append(s.queue[:0], s.queue[1:]...)
		s.serving = true
		s.remain = s.o.cfg.Size
		s.st.Dispatched++
		s.pending = append(s.pending, openReq{
			arrival: arrival,
			end:     s.issued + int64(s.o.cfg.Size),
		})
	}
	s.issued++
	if s.remain--; s.remain == 0 {
		s.serving = false
	}
	return s.service.Next()
}

// Next implements cpu.Stream for untimed callers (conformance checks,
// capture recording): each call advances a synthetic one-instruction-
// per-cycle clock. Cores never use this path — they see TimedStream.
func (s *openStream) Next() cpu.Instr {
	in := s.NextAt(s.fallback)
	s.fallback++
	return in
}

// OnRetire implements cpu.RetireObserver: commit-time completion
// timestamps. The core reports each batch of retired instructions;
// every pending request whose last instruction falls inside the batch
// completes now, recording arrival→completion latency.
func (s *openStream) OnRetire(now sim.Cycle, n int) {
	s.retired += int64(n)
	done := 0
	for _, r := range s.pending {
		if r.end > s.retired {
			break
		}
		s.st.Completed++
		lat := int64(now) - r.arrival
		if lat < 0 {
			lat = 0
		}
		s.st.Hist.Record(lat)
		done++
	}
	if done > 0 {
		s.pending = append(s.pending[:0], s.pending[done:]...)
	}
}

// OpenReset implements workload.OpenTracker: zero the measurement
// counters at the warm-up boundary. In-flight state (queue contents,
// pending requests, arrival clock) is untouched, so a request spanning
// the boundary still reports its true latency — its completion lands in
// the measured histogram with the full queueing delay it actually saw.
func (s *openStream) OpenReset() {
	s.st.Arrivals = 0
	s.st.Dispatched = 0
	s.st.Completed = 0
	s.st.Dropped = 0
	s.st.QueueSum = 0
	s.st.Hist.Reset()
}

// OpenSnapshot implements workload.OpenTracker.
func (s *openStream) OpenSnapshot() workload.OpenStats { return s.st }
