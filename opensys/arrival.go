package opensys

import (
	"math"

	"nocout/internal/sim"
)

// The arrival engine. All three processes are one mechanism: a Poisson
// process whose instantaneous rate is the configured mean rate times a
// product of piecewise-constant modulators. An inter-arrival is drawn as
// a unit-rate exponential amount of "work" and consumed through the
// piecewise-constant rate profile (the standard thinning-free inversion
// for nonhomogeneous Poisson with piecewise rates):
//
//   - poisson: no modulators — homogeneous.
//   - mmpp:    one modulator alternating lo/hi multipliers with
//     exponential dwells (a 2-state MMPP).
//   - burst:   one modulator alternating ON/OFF multipliers with
//     Pareto(α = 3−2H) epoch lengths — heavy-tailed ON/OFF, the
//     classical self-similar traffic construction.
//   - phases:  one deterministic modulator cycling the diurnal schedule.
//
// Everything draws from a single forked RNG in a fixed order, so a
// (workload spec, coreID, seed) triple always yields the identical
// arrival schedule regardless of kernel, worker pool, or host.

// modulator is a piecewise-constant rate multiplier: mult applies for
// left more cycles, then advance picks the next piece. A left of +Inf
// never advances (the constant modulator). All discrete process state
// lives in the phase field — advance closures capture only immutable
// parameters — so (mult, left, phase) plus the RNG position is the
// complete checkpointable state of any modulator.
type modulator struct {
	mult    float64
	left    float64
	phase   int // process-specific discrete state (MMPP hi/lo, ON/OFF, diurnal index)
	advance func(m *modulator)
}

// arrivalGen produces absolute arrival times (in cycles, strictly
// increasing) for one core.
type arrivalGen struct {
	rng  *sim.RNG
	rate float64 // per-cycle base rate for this core (skew applied)
	t    float64 // current absolute time
	mods []*modulator
}

// arrivalLane offsets the RNG fork lane so arrival draws never collide
// with base-workload stream forks (which use small per-core lanes).
const arrivalLane uint64 = 0xA11A << 32

// newArrivalGen builds the generator for coreID under cfg. perCycle is
// the skew-adjusted mean rate in requests per cycle.
func newArrivalGen(cfg Config, coreID int, seed uint64, perCycle float64) *arrivalGen {
	g := &arrivalGen{
		rng:  sim.NewRNG(seed).Fork(arrivalLane | uint64(coreID)),
		rate: perCycle,
	}
	switch cfg.Arrival {
	case "mmpp":
		g.mods = append(g.mods, newMMPP(cfg, g.rng))
	case "burst":
		g.mods = append(g.mods, newBurst(cfg, g.rng))
	}
	if len(cfg.Phases) > 0 {
		g.mods = append(g.mods, newDiurnal(cfg.Phases))
	}
	return g
}

// exp draws a unit-rate exponential (Log1p keeps precision near 0 and
// rng.Float64 in [0,1) keeps the argument away from the -1 pole).
func (g *arrivalGen) exp() float64 {
	return -math.Log1p(-g.rng.Float64())
}

// next returns the next absolute arrival time, or +Inf if the rate is
// (permanently) zero.
func (g *arrivalGen) next() float64 {
	if g.rate <= 0 {
		return math.Inf(1)
	}
	w := g.exp()
	for {
		mult := 1.0
		step := math.Inf(1)
		for _, m := range g.mods {
			mult *= m.mult
			if m.left < step {
				step = m.left
			}
		}
		if r := g.rate * mult; r > 0 {
			if need := w / r; need <= step {
				g.t += need
				for _, m := range g.mods {
					if !math.IsInf(m.left, 1) {
						m.left -= need
					}
				}
				return g.t
			}
			if !math.IsInf(step, 1) {
				w -= step * r
			}
		}
		if math.IsInf(step, 1) {
			// No modulator will ever change the (zero) rate again.
			return math.Inf(1)
		}
		g.t += step
		for _, m := range g.mods {
			if math.IsInf(m.left, 1) {
				continue
			}
			if m.left -= step; m.left <= 0 {
				m.advance(m)
			}
		}
	}
}

// newMMPP builds the 2-state Markov modulator. The lo/hi multipliers
// are normalized so the *stationary* mean multiplier is exactly 1 —
// Rate stays the true mean offered load at any Ratio:
//
//	loMult = (dwellHi + dwellLo) / (ratio*dwellHi + dwellLo)
//	hiMult = ratio * loMult
//
// The initial state is drawn from the stationary distribution, so the
// process starts in equilibrium rather than ramping in.
func newMMPP(cfg Config, rng *sim.RNG) *modulator {
	loMult := (cfg.DwellHi + cfg.DwellLo) / (cfg.Ratio*cfg.DwellHi + cfg.DwellLo)
	hiMult := cfg.Ratio * loMult
	hi := rng.Bool(cfg.DwellHi / (cfg.DwellHi + cfg.DwellLo))
	m := &modulator{}
	m.advance = func(m *modulator) {
		m.phase ^= 1
		if m.phase == 1 {
			m.mult, m.left = hiMult, -math.Log1p(-rng.Float64())*cfg.DwellHi
		} else {
			m.mult, m.left = loMult, -math.Log1p(-rng.Float64())*cfg.DwellLo
		}
	}
	// Materialize the drawn initial state (advance toggles into it).
	if hi {
		m.phase = 0
	} else {
		m.phase = 1
	}
	m.advance(m)
	return m
}

// Pareto epoch parameters for the burst modulator: the minimum epoch is
// a pipeline-scale 100 cycles, and a single epoch is capped at 1e6
// cycles so one heavy-tail draw cannot freeze a whole measurement
// window in a single state.
const (
	burstEpochMin = 100.0
	burstEpochCap = 1e6
)

// newBurst builds the self-similar ON/OFF modulator: epoch lengths are
// Pareto with tail index α = 3−2H (clamped to [1.05, 1.95] so the mean
// exists but the variance diverges — the long-range-dependence regime),
// ON epochs run at Peak and OFF at 2−Peak (mean 1 for equal expected
// ON/OFF time).
func newBurst(cfg Config, rng *sim.RNG) *modulator {
	alpha := 3 - 2*cfg.Hurst
	if alpha < 1.05 {
		alpha = 1.05
	}
	if alpha > 1.95 {
		alpha = 1.95
	}
	pareto := func() float64 {
		l := burstEpochMin * math.Pow(1-rng.Float64(), -1/alpha)
		return math.Min(l, burstEpochCap)
	}
	on := rng.Bool(0.5)
	m := &modulator{}
	m.advance = func(m *modulator) {
		m.phase ^= 1
		if m.phase == 1 {
			m.mult = cfg.Peak
		} else {
			m.mult = 2 - cfg.Peak
		}
		m.left = pareto()
	}
	if on {
		m.phase = 0
	} else {
		m.phase = 1
	}
	m.advance(m)
	return m
}

// newDiurnal builds the deterministic phase-schedule modulator, cycling
// the configured multipliers.
func newDiurnal(phases []RatePhase) *modulator {
	m := &modulator{phase: -1}
	m.advance = func(m *modulator) {
		m.phase = (m.phase + 1) % len(phases)
		m.mult = phases[m.phase].Mult
		m.left = float64(phases[m.phase].Cycles)
	}
	m.advance(m)
	return m
}

// ArrivalTimes returns the first n absolute arrival cycles the
// configured process generates for coreID under seed — the pure arrival
// schedule, independent of any simulation. Tests use it to check
// process statistics and determinism; the benchmark suite uses it to
// price arrival generation per request.
func (o *Open) ArrivalTimes(coreID int, seed uint64, n int) []float64 {
	g := newArrivalGen(o.cfg, coreID, seed, o.perCycleRate(coreID))
	out := make([]float64, 0, n)
	for len(out) < n {
		t := g.next()
		if math.IsInf(t, 1) {
			break
		}
		out = append(out, t)
	}
	return out
}

// perCycleRate is coreID's skew-adjusted arrival rate in requests per
// cycle (Rate is per 1000 cycles; weights wrap beyond the skew grid).
func (o *Open) perCycleRate(coreID int) float64 {
	w := o.weights[coreID%len(o.weights)]
	return o.cfg.Rate * w / 1000
}
