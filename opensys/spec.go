package opensys

import (
	"fmt"
	"strconv"
	"strings"
)

// The canonical spec is the family's serialized identity: a fixed-order
// comma-separated k=v string behind the "opensys:" scheme. It is what
// derived (rate-swept) instances use as their Name, what campaign
// manifests persist, and the prefix of the behavioral fingerprint — so
// encoding is deterministic and minimal: keys irrelevant to the
// configured arrival process or skew are omitted, floats use the
// shortest round-trip form, and parse(encode(cfg)) == cfg.

// Spec returns the canonical "opensys:..." spec for o's configuration.
func (o *Open) Spec() string {
	var b strings.Builder
	b.WriteString(Scheme)
	b.WriteByte(':')
	first := true
	put := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	cfg := o.cfg
	put("arrival", cfg.Arrival)
	put("base", cfg.Base)
	put("rate", f(cfg.Rate))
	put("size", strconv.Itoa(cfg.Size))
	put("queue", strconv.Itoa(cfg.Queue))
	switch cfg.Arrival {
	case "mmpp":
		put("ratio", f(cfg.Ratio))
		put("dwell-hi", f(cfg.DwellHi))
		put("dwell-lo", f(cfg.DwellLo))
	case "burst":
		put("hurst", f(cfg.Hurst))
		put("peak", f(cfg.Peak))
	}
	if len(cfg.Phases) > 0 {
		parts := make([]string, len(cfg.Phases))
		for i, p := range cfg.Phases {
			parts[i] = f(p.Mult) + "x" + strconv.FormatInt(p.Cycles, 10)
		}
		put("phases", strings.Join(parts, ";"))
	}
	if cfg.Skew != "uniform" {
		put("skew", cfg.Skew)
		put("grid", strconv.Itoa(cfg.Grid))
		if cfg.Skew == "hotspot" {
			put("hot", strconv.Itoa(cfg.Hot))
			put("hotfrac", f(cfg.HotFrac))
		}
	}
	return b.String()
}

// Parse builds an Open from a spec — either the full "opensys:..." name
// or just the k=v list after the colon (what the scheme registry hands
// over). Unknown keys are errors, not silently ignored: a typo must not
// quietly fall back to a default and poison a sweep.
func Parse(spec string) (*Open, error) {
	body := strings.TrimSpace(spec)
	if i := strings.IndexByte(body, ':'); i >= 0 && strings.EqualFold(strings.TrimSpace(body[:i]), Scheme) {
		body = body[i+1:]
	}
	cfg := Config{}
	seen := map[string]string{}
	for _, field := range strings.Split(body, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("opensys: spec field %q is not key=value", field)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("opensys: duplicate spec key %q", k)
		}
		seen[k] = v
		var err error
		switch k {
		case "arrival":
			cfg.Arrival = strings.ToLower(v)
		case "base":
			cfg.Base = v
		case "rate":
			cfg.Rate, err = parseFloat(k, v)
		case "size":
			cfg.Size, err = parseInt(k, v)
		case "queue":
			cfg.Queue, err = parseInt(k, v)
		case "ratio":
			cfg.Ratio, err = parseFloat(k, v)
		case "dwell-hi":
			cfg.DwellHi, err = parseFloat(k, v)
		case "dwell-lo":
			cfg.DwellLo, err = parseFloat(k, v)
		case "hurst":
			cfg.Hurst, err = parseFloat(k, v)
		case "peak":
			cfg.Peak, err = parseFloat(k, v)
		case "phases":
			cfg.Phases, err = parsePhases(v)
		case "skew":
			cfg.Skew = strings.ToLower(v)
		case "grid":
			cfg.Grid, err = parseInt(k, v)
		case "hot":
			cfg.Hot, err = parseInt(k, v)
		case "hotfrac":
			cfg.HotFrac, err = parseFloat(k, v)
		default:
			return nil, fmt.Errorf("opensys: unknown spec key %q (have %s)",
				k, strings.Join(sortedPhaseKeys(seen), ", "))
		}
		if err != nil {
			return nil, err
		}
	}
	return New(cfg)
}

// parsePhases decodes a "MULTxCYCLES;MULTxCYCLES" diurnal schedule.
func parsePhases(v string) ([]RatePhase, error) {
	var out []RatePhase
	for _, part := range strings.Split(v, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, c, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("opensys: phase %q is not MULTxCYCLES", part)
		}
		mult, err := strconv.ParseFloat(strings.TrimSpace(m), 64)
		if err != nil {
			return nil, fmt.Errorf("opensys: phase multiplier %q: %w", m, err)
		}
		cycles, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("opensys: phase length %q: %w", c, err)
		}
		out = append(out, RatePhase{Mult: mult, Cycles: cycles})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("opensys: phases %q holds no phases", v)
	}
	return out, nil
}

func parseFloat(k, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("opensys: key %s: %w", k, err)
	}
	return f, nil
}

func parseInt(k, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("opensys: key %s: %w", k, err)
	}
	return n, nil
}
