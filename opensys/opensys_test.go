package opensys

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nocout/internal/cpu"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// TestSpecCanonical: parse(encode(cfg)) is the identity and every
// spelling of a spec normalizes to one canonical string — the property
// that keys sweep cells and campaign cache entries.
func TestSpecCanonical(t *testing.T) {
	for _, spec := range []string{
		"opensys:arrival=poisson,base=data-serving,rate=2,size=256,queue=64",
		"opensys:arrival=mmpp,base=web-search,rate=4,size=256,queue=64,ratio=9,dwell-hi=2000,dwell-lo=8000",
		"opensys:arrival=burst,base=data-serving,rate=0.5,size=128,queue=32,hurst=0.9,peak=1.2",
		"opensys:arrival=poisson,base=data-serving,rate=2,size=256,queue=64,phases=1.5x4000;0.5x4000",
		"opensys:arrival=poisson,base=data-serving,rate=2,size=256,queue=64,skew=hotspot,grid=64,hot=4,hotfrac=0.5",
		"opensys:arrival=poisson,base=data-serving,rate=2,size=256,queue=64,skew=transpose,grid=64",
	} {
		o, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := o.Spec(); got != spec {
			t.Errorf("spec not canonical:\nin  %q\nout %q", spec, got)
		}
		if o.Name() != spec {
			t.Errorf("unnamed instance must Name() its spec, got %q", o.Name())
		}
	}
	// Spellings normalize: alias base, shuffled keys, defaults omitted.
	a, err := Parse("opensys:base=cassandra,arrival=poisson")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("opensys:arrival=poisson,base=Data Serving,rate=2,size=256,queue=64")
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec() != b.Spec() {
		t.Errorf("equivalent spellings diverge: %q vs %q", a.Spec(), b.Spec())
	}
}

// TestParseRejects: invalid specs fail loudly instead of defaulting.
func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"opensys:arrival=weird",
		"opensys:rate=-1",
		"opensys:rate=NaN",
		"opensys:size=0,size=1", // duplicate key
		"opensys:bogus=1",       // unknown key
		"opensys:ratio=0.5,arrival=mmpp",
		"opensys:hurst=0.3,arrival=burst",
		"opensys:peak=2.5,arrival=burst",
		"opensys:phases=",
		"opensys:phases=1.5@400",
		"opensys:skew=diag",
		"opensys:skew=hotspot,hot=80,grid=64",
		"opensys:base=trace:/tmp/x.noctrace",
		"opensys:base=open-poisson", // no nesting
		"opensys:rate",              // not key=value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", bad)
		}
	}
}

// TestSchemeRegistered: the workload registry resolves opensys: specs
// and the registered defaults by name and alias.
func TestSchemeRegistered(t *testing.T) {
	w, err := workload.Parse("opensys:arrival=mmpp,rate=4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(*Open); !ok {
		t.Fatalf("workload.Parse returned %T, want *Open", w)
	}
	for _, name := range []string{"Open Poisson", "open-mmpp", "OPEN BURST"} {
		if _, err := workload.Parse(name); err != nil {
			t.Errorf("registered default %q did not resolve: %v", name, err)
		}
	}
	// Round trip: the canonical spec resolves back through the registry.
	if back, err := workload.Parse(w.Name()); err != nil || back.Name() != w.Name() {
		t.Errorf("spec name did not round-trip: %v, %v", back, err)
	}
}

// TestArrivalDeterminism: the arrival schedule is a pure function of
// (spec, coreID, seed).
func TestArrivalDeterminism(t *testing.T) {
	for _, spec := range []string{"open-poisson", "open-mmpp", "open-burst"} {
		w, err := workload.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		o := w.(*Open)
		a := o.ArrivalTimes(3, 42, 500)
		b := o.ArrivalTimes(3, 42, 500)
		if len(a) != 500 {
			t.Fatalf("%s: got %d arrivals", spec, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d diverged: %v vs %v", spec, i, a[i], b[i])
			}
			if i > 0 && a[i] <= a[i-1] {
				t.Fatalf("%s: arrivals not strictly increasing at %d", spec, i)
			}
		}
		c := o.ArrivalTimes(3, 43, 500)
		d := o.ArrivalTimes(4, 42, 500)
		if a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
			t.Errorf("%s: seed does not decorrelate arrivals", spec)
		}
		if a[0] == d[0] && a[1] == d[1] && a[2] == d[2] {
			t.Errorf("%s: coreID does not decorrelate arrivals", spec)
		}
	}
}

// TestArrivalMeanRate: all three processes are mean-normalized — over a
// long horizon the empirical rate approaches the configured one (the
// MMPP stationary normalization and the burst ON/OFF symmetry).
func TestArrivalMeanRate(t *testing.T) {
	const n = 20000
	for _, spec := range []string{
		"opensys:arrival=poisson,rate=2",
		"opensys:arrival=mmpp,rate=2",
		"opensys:arrival=burst,rate=2",
		"opensys:arrival=poisson,rate=2,phases=1.5x3000;0.5x3000",
	} {
		o, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Average over several independent streams so mmpp/burst dwell
		// correlation does not dominate the estimate.
		var total, span float64
		for core := 0; core < 8; core++ {
			ts := o.ArrivalTimes(core, 7, n)
			total += float64(len(ts))
			span += ts[len(ts)-1]
		}
		got := total / span * 1000 // requests per kcycle
		if math.Abs(got-2) > 0.25 {
			t.Errorf("%s: empirical rate %.3f req/kcycle, want ~2", spec, got)
		}
	}
}

// TestBurstBurstiness: the burst process at high Hurst is more variable
// than Poisson — the index of dispersion of interval counts must be
// clearly above 1 (Poisson's value).
func TestBurstBurstiness(t *testing.T) {
	idc := func(spec string) float64 {
		o, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := o.ArrivalTimes(0, 11, 40000)
		const win = 1000.0
		counts := map[int]float64{}
		for _, x := range ts {
			counts[int(x/win)]++
		}
		last := int(ts[len(ts)-1] / win)
		var mean, m2 float64
		for i := 0; i < last; i++ {
			mean += counts[i]
		}
		mean /= float64(last)
		for i := 0; i < last; i++ {
			d := counts[i] - mean
			m2 += d * d
		}
		return m2 / float64(last) / mean
	}
	poisson := idc("opensys:arrival=poisson,rate=2")
	burst := idc("opensys:arrival=burst,rate=2,hurst=0.9")
	mmpp := idc("opensys:arrival=mmpp,rate=2")
	if poisson > 1.6 {
		t.Errorf("poisson dispersion %.2f, want ~1", poisson)
	}
	if burst < poisson*1.2 {
		t.Errorf("burst dispersion %.2f not above poisson %.2f", burst, poisson)
	}
	if mmpp < poisson*1.5 {
		t.Errorf("mmpp dispersion %.2f not clearly above poisson %.2f", mmpp, poisson)
	}
}

// TestSkewWeights: every skew is mean-1 over the grid, and hotspot
// concentrates the configured fraction.
func TestSkewWeights(t *testing.T) {
	for _, cfg := range []Config{
		{Skew: "uniform"},
		{Skew: "hotspot", Hot: 4, HotFrac: 0.5},
		{Skew: "transpose"},
	} {
		o, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, w := range o.weights {
			if w < 0 {
				t.Fatalf("%s: negative weight", cfg.Skew)
			}
			sum += w
		}
		if math.Abs(sum/float64(len(o.weights))-1) > 1e-9 {
			t.Errorf("%s: weights mean %.6f, want 1", cfg.Skew, sum/float64(len(o.weights)))
		}
	}
	hot, _ := New(Config{Skew: "hotspot", Hot: 4, HotFrac: 0.5})
	var hotSum float64
	for i := 0; i < 4; i++ {
		hotSum += hot.weights[i]
	}
	if math.Abs(hotSum/64-0.5) > 1e-9 {
		t.Errorf("hotspot cores carry %.3f of the load, want 0.5", hotSum/64)
	}
}

// TestStreamLifecycle drives one stream by hand through NextAt/OnRetire
// and checks the request accounting: dispatch order, completion
// latency, queue sampling, and drops under a full queue.
func TestStreamLifecycle(t *testing.T) {
	o, err := Parse("opensys:rate=5,size=4,queue=2,base=data-serving")
	if err != nil {
		t.Fatal(err)
	}
	s := o.StreamFor(0, 9).(*openStream)
	retired := int64(0)
	now := sim.Cycle(0)
	for ; now < 50000; now++ {
		in := s.NextAt(now)
		if in.Kind == cpu.KindIdle {
			continue
		}
		// Commit immediately: a zero-latency pipeline.
		retired++
		s.OnRetire(now, 1)
	}
	st := s.OpenSnapshot()
	if st.Arrivals == 0 {
		t.Fatal("no arrivals in 50k cycles at rate 5/kcycle")
	}
	if st.Dispatched == 0 || st.Completed == 0 {
		t.Fatalf("lifecycle stalled: %+v", st)
	}
	if st.Completed > st.Dispatched || st.Dispatched > st.Arrivals-st.Dropped {
		t.Fatalf("conservation violated: %+v", st)
	}
	if got := st.Hist.Count(); got != st.Completed {
		t.Fatalf("histogram holds %d samples, %d completed", got, st.Completed)
	}
	// With instant service and queue 2 at rate 5/kcycle, drops are
	// possible but rare; latency must be small and non-negative.
	if st.Hist.Max() > 10000 {
		t.Fatalf("implausible latency %d cy for instant service", st.Hist.Max())
	}

	// OpenReset zeroes counters but keeps in-flight state.
	s.OpenReset()
	st = s.OpenSnapshot()
	if st.Arrivals != 0 || st.Completed != 0 || st.Hist.Count() != 0 {
		t.Fatalf("reset left counters: %+v", st)
	}
}

// TestStreamDrops: a size-1 queue under overload drops and counts.
func TestStreamDrops(t *testing.T) {
	o, err := Parse("opensys:rate=50,size=512,queue=1")
	if err != nil {
		t.Fatal(err)
	}
	s := o.StreamFor(0, 1).(*openStream)
	for now := sim.Cycle(0); now < 20000; now++ {
		s.NextAt(now) // never retire: the server wedges after one request
	}
	st := s.OpenSnapshot()
	if st.Dropped == 0 {
		t.Fatalf("no drops under 25x overload with queue=1: %+v", st)
	}
	if st.Arrivals != st.Dropped+st.Dispatched+int64(len(s.queue)) {
		t.Fatalf("arrival conservation violated: %+v (queue %d)", st, len(s.queue))
	}
}

// TestUntimedNextFallback: Next() (conformance, capture recording) is
// deterministic and eventually produces service instructions.
func TestUntimedNextFallback(t *testing.T) {
	w, err := workload.Parse("open-poisson")
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.StreamFor(2, 5), w.StreamFor(2, 5)
	work := 0
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("untimed streams diverged at %d", i)
		}
		if x.Kind != cpu.KindIdle {
			work++
		}
	}
	if work == 0 {
		t.Fatal("untimed stream yielded no service instructions in 5000 cycles")
	}
}

// TestFingerprint: stable across instances, sensitive to every
// behavioral knob, and carries the base workload's fingerprint.
func TestFingerprint(t *testing.T) {
	fp := func(spec string) []byte {
		o, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.Fingerprint(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := "opensys:arrival=poisson,rate=2"
	if !bytes.Equal(fp(base), fp(base)) {
		t.Fatal("fingerprint not stable across instances")
	}
	for _, other := range []string{
		"opensys:arrival=mmpp,rate=2",
		"opensys:arrival=poisson,rate=4",
		"opensys:arrival=poisson,rate=2,size=128",
		"opensys:arrival=poisson,rate=2,base=web-search",
		"opensys:arrival=poisson,rate=2,skew=hotspot",
	} {
		if bytes.Equal(fp(base), fp(other)) {
			t.Errorf("fingerprint blind to %q", other)
		}
	}
	if !bytes.Contains(fp(base), []byte("synth:")) {
		t.Error("fingerprint must embed the base workload's structural fingerprint")
	}
}

// TestRateScaled: WithOfferedLoad derives spec-named copies and leaves
// the receiver untouched.
func TestRateScaled(t *testing.T) {
	w, err := workload.Parse("Open Poisson")
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := workload.RateScaledOf(w)
	if !ok {
		t.Fatal("registered Open default is not RateScaled")
	}
	if rs.OfferedLoad() != 2 {
		t.Fatalf("default offered load = %v, want 2", rs.OfferedLoad())
	}
	d := rs.WithOfferedLoad(7.5)
	if w.Name() != "Open Poisson" {
		t.Fatal("WithOfferedLoad mutated the registered instance")
	}
	if !strings.Contains(d.Name(), "rate=7.5") || !strings.HasPrefix(d.Name(), "opensys:") {
		t.Fatalf("derived name %q must be a spec carrying the rate", d.Name())
	}
	back, err := workload.Parse(d.Name())
	if err != nil {
		t.Fatalf("derived name does not rehydrate: %v", err)
	}
	if rs2, _ := workload.RateScaledOf(back); rs2.OfferedLoad() != 7.5 {
		t.Fatalf("rehydrated load = %v, want 7.5", rs2.OfferedLoad())
	}
}

// TestDelegation: core calibration, layout, and scalability come from
// the base workload.
func TestDelegation(t *testing.T) {
	o, err := Parse("opensys:base=web-search")
	if err != nil {
		t.Fatal(err)
	}
	base, err := workload.Parse("web-search")
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxCores() != base.MaxCores() {
		t.Errorf("MaxCores %d, want base's %d", o.MaxCores(), base.MaxCores())
	}
	if o.CoreParams(3, 9) != base.CoreParams(3, 9) {
		t.Error("CoreParams must delegate to the base")
	}
	if o.Layout().Instr != base.Layout().Instr {
		t.Error("Layout must delegate to the base")
	}
}
