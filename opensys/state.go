package opensys

import (
	"fmt"

	"nocout/internal/ckpt"
	"nocout/internal/sim"
)

// Checkpoint serialization of the open-system machinery. The process
// parameters (Config, skew weights, base workload) are structural; the
// state is the arrival engine's position (RNG, absolute clock, modulator
// pieces), the request lifecycle (queue, serving request, pending
// completions), and the nested base-workload stream cursor. Measurement
// OpenStats are excluded — the restore path re-zeroes them through the
// same OpenReset the warmup boundary uses.

func (g *arrivalGen) SaveState(e *ckpt.Enc) {
	e.U64(g.rng.State())
	e.F64(g.t)
	for _, m := range g.mods {
		e.F64(m.mult)
		e.F64(m.left)
		e.Int(m.phase)
	}
}

func (g *arrivalGen) LoadState(d *ckpt.Dec) {
	g.rng.SetState(d.U64())
	g.t = d.F64()
	for _, m := range g.mods {
		m.mult = d.F64()
		m.left = d.F64()
		m.phase = d.Int()
	}
}

// SaveState implements ckpt.Saver. The base workload's stream must itself
// be a ckpt.Saver (every registered workload's streams are); a custom
// stream that is not cannot be checkpointed.
func (s *openStream) SaveState(e *ckpt.Enc) {
	sv, ok := s.service.(ckpt.Saver)
	if !ok {
		panic(fmt.Sprintf("opensys: base stream %T does not support checkpointing", s.service))
	}
	sv.SaveState(e)
	s.arr.SaveState(e)
	e.F64(s.nextArr)
	e.U64(uint64(len(s.queue)))
	prev := int64(0)
	for _, at := range s.queue {
		e.I64(at - prev)
		prev = at
	}
	e.Bool(s.serving)
	e.Int(s.remain)
	e.I64(s.issued)
	e.I64(s.retired)
	e.U64(uint64(len(s.pending)))
	for _, r := range s.pending {
		e.I64(r.arrival)
		e.I64(r.end)
	}
	e.I64(int64(s.fallback))
}

// LoadState implements ckpt.Loader.
func (s *openStream) LoadState(d *ckpt.Dec) {
	ld, ok := s.service.(ckpt.Loader)
	if !ok {
		panic(fmt.Sprintf("opensys: base stream %T does not support checkpointing", s.service))
	}
	ld.LoadState(d)
	s.arr.LoadState(d)
	s.nextArr = d.F64()
	n := d.Count()
	if d.Err() != nil {
		return
	}
	if n > s.o.cfg.Queue {
		d.Corrupt("open queue occupancy %d exceeds bound %d", n, s.o.cfg.Queue)
		return
	}
	s.queue = s.queue[:0]
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += d.I64()
		s.queue = append(s.queue, prev)
	}
	s.serving = d.Bool()
	s.remain = d.Int()
	s.issued = d.I64()
	s.retired = d.I64()
	np := d.Count()
	s.pending = s.pending[:0]
	for i := 0; i < np && d.Err() == nil; i++ {
		s.pending = append(s.pending, openReq{arrival: d.I64(), end: d.I64()})
	}
	s.fallback = sim.Cycle(d.I64())
}
