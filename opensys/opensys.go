// Package opensys turns any registered closed-loop workload into an
// open-system one: instead of cores always having a next instruction,
// work arrives as fixed-size *requests* released by a pluggable seeded
// arrival process, queues per core, and is timestamped through its
// lifecycle (arrival → dispatch → completion) so runs report tail
// latency (p50/p95/p99) instead of just throughput.
//
// Three arrival processes are built in, all driven by one deterministic
// rate-modulated Poisson engine:
//
//   - "poisson"  — homogeneous Poisson arrivals at the configured rate;
//   - "mmpp"     — a 2-state Markov-modulated Poisson process: the rate
//     alternates between a low and a high state (Ratio apart, mean-1
//     normalized) with exponentially distributed dwell times, the classic
//     burstiness model for server traffic;
//   - "burst"    — a self-similar ON/OFF burst train: epoch lengths are
//     Pareto with tail index α = 3−2H for the configured Hurst parameter,
//     the standard construction whose superposition exhibits long-range
//     dependence (fractional-Brownian-like load).
//
// A Config may also carry a diurnal phase schedule (piecewise rate
// multipliers, composing with the process above it) and a spatial skew
// ("hotspot", "transpose") that scales per-core rates the way PR 4's
// traffic patterns skew destinations — so load imbalance across the die
// is expressible, not just mean load.
//
// The family registers the "opensys:" name scheme, so any spec like
//
//	opensys:arrival=mmpp,base=web-search,rate=4,size=256
//
// resolves through workload.Parse — from the CLI, sweep specs, and
// campaign manifests alike — and three registered defaults ("Open
// Poisson", "Open MMPP", "Open Burst") cover the common cases. Rates are
// mean requests per 1000 cycles per active core; multiply by Size for
// offered instructions per kilocycle.
package opensys

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nocout/internal/cpu"
	"nocout/internal/workload"
)

// Scheme is the workload-name scheme this package registers: every
// "opensys:<spec>" string parses through Parse.
const Scheme = "opensys"

// RatePhase is one segment of a diurnal load shape: the arrival rate is
// multiplied by Mult for Cycles cycles, then the schedule advances
// (cyclically) to the next phase.
type RatePhase struct {
	Mult   float64 // rate multiplier (>= 0)
	Cycles int64   // phase length in cycles (> 0)
}

// Config describes an open-system workload. The zero value is not
// useful; New applies the documented defaults to zero fields and
// validates the rest.
type Config struct {
	// Base names the registered workload whose streams serve requests and
	// whose calibration (CoreParams, Layout, MaxCores) the open system
	// inherits. Default "data-serving". Scheme-based names (trace:,
	// opensys:) are rejected — bases must be plain registry entries so the
	// canonical spec stays a flat string.
	Base string
	// Arrival selects the arrival process: "poisson" (default), "mmpp",
	// or "burst".
	Arrival string
	// Rate is the mean offered load in requests per 1000 cycles per
	// active core. Default 2. Zero is allowed only via WithOfferedLoad
	// sweeps, not in a parsed spec.
	Rate float64
	// Size is the request service demand in instructions. Default 256.
	Size int
	// Queue bounds each core's pending-request queue; arrivals beyond it
	// are dropped (and counted). Default 64.
	Queue int
	// Ratio is the mmpp high:low rate ratio (> 1). Default 9.
	Ratio float64
	// DwellHi and DwellLo are the mmpp mean state dwell times in cycles.
	// Defaults 2000 and 8000 (bursty one fifth of the time).
	DwellHi float64
	DwellLo float64
	// Hurst is the burst process's self-similarity parameter, in
	// [0.5, 0.95]. Default 0.8.
	Hurst float64
	// Peak is the burst process's ON-state rate multiplier, in (1, 2);
	// the OFF state runs at 2−Peak so the mean stays 1. Default 1.8.
	Peak float64
	// Phases is an optional diurnal schedule of rate multipliers; empty
	// means a flat profile.
	Phases []RatePhase
	// Skew spatially skews per-core arrival rates: "uniform" (default),
	// "hotspot" (Hot of Grid cores receive HotFrac of the load), or
	// "transpose" (rate grows with a core's distance from the tile-grid
	// diagonal, the skew that stresses NOC-Out's reduction trees least
	// evenly). Mean rate over Grid cores is always the configured Rate.
	Skew string
	// Grid is the number of cores the skew normalizes over. Default 64.
	Grid int
	// Hot and HotFrac parameterize the hotspot skew. Defaults 4 and 0.5.
	Hot     int
	HotFrac float64
}

// Open is the open-system workload family: a decorator that inherits
// core calibration from a registered base workload and drives it with
// request arrivals. Immutable after New; safe for concurrent StreamFor.
type Open struct {
	name    string
	aliases []string
	cfg     Config
	base    workload.Workload
	weights []float64 // per-core rate multipliers, mean 1 over cfg.Grid
}

// New validates cfg, applies defaults to zero fields, resolves the base
// workload, and returns the family instance. The returned workload's
// Name is its canonical spec (fixed key order, minimal keys) until
// Named gives it a display name.
func New(cfg Config) (*Open, error) {
	if cfg.Base == "" {
		cfg.Base = "data-serving"
	}
	if strings.Contains(cfg.Base, ":") {
		return nil, fmt.Errorf("opensys: base %q must be a plain registered name, not a scheme", cfg.Base)
	}
	base, err := workload.Parse(cfg.Base)
	if err != nil {
		return nil, fmt.Errorf("opensys: resolving base: %w", err)
	}
	if _, open := workload.RateScaledOf(base); open {
		return nil, fmt.Errorf("opensys: base %q is itself open-system; requests must serve a closed-loop workload", cfg.Base)
	}
	// Canonicalize the base to one registry key, so every spelling of one
	// base yields the same spec (and campaign cache entry): the first
	// registered alias when there is one (the kebab-case CLI spelling),
	// else the lowercased name — both are valid registry keys.
	if as := base.Aliases(); len(as) > 0 {
		cfg.Base = strings.ToLower(strings.TrimSpace(as[0]))
	} else {
		cfg.Base = strings.ToLower(base.Name())
	}
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	switch cfg.Arrival {
	case "poisson", "mmpp", "burst":
	default:
		return nil, fmt.Errorf("opensys: unknown arrival process %q (want poisson, mmpp, or burst)", cfg.Arrival)
	}
	if cfg.Rate == 0 {
		cfg.Rate = 2
	}
	if cfg.Rate < 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("opensys: rate %v must be a finite non-negative requests/kcycle", cfg.Rate)
	}
	if cfg.Size == 0 {
		cfg.Size = 256
	}
	if cfg.Size < 1 {
		return nil, fmt.Errorf("opensys: request size %d must be at least 1 instruction", cfg.Size)
	}
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.Queue < 1 {
		return nil, fmt.Errorf("opensys: queue bound %d must be at least 1", cfg.Queue)
	}
	if cfg.Ratio == 0 {
		cfg.Ratio = 9
	}
	if cfg.Ratio <= 1 {
		return nil, fmt.Errorf("opensys: mmpp ratio %v must exceed 1", cfg.Ratio)
	}
	if cfg.DwellHi == 0 {
		cfg.DwellHi = 2000
	}
	if cfg.DwellLo == 0 {
		cfg.DwellLo = 8000
	}
	if cfg.DwellHi <= 0 || cfg.DwellLo <= 0 {
		return nil, fmt.Errorf("opensys: mmpp dwell times %v/%v must be positive cycles", cfg.DwellHi, cfg.DwellLo)
	}
	if cfg.Hurst == 0 {
		cfg.Hurst = 0.8
	}
	if cfg.Hurst < 0.5 || cfg.Hurst > 0.95 {
		return nil, fmt.Errorf("opensys: hurst %v must lie in [0.5, 0.95]", cfg.Hurst)
	}
	if cfg.Peak == 0 {
		cfg.Peak = 1.8
	}
	if cfg.Peak <= 1 || cfg.Peak >= 2 {
		return nil, fmt.Errorf("opensys: burst peak %v must lie in (1, 2)", cfg.Peak)
	}
	for i, p := range cfg.Phases {
		if p.Mult < 0 || math.IsNaN(p.Mult) || math.IsInf(p.Mult, 0) {
			return nil, fmt.Errorf("opensys: phase %d multiplier %v must be finite and non-negative", i, p.Mult)
		}
		if p.Cycles < 1 {
			return nil, fmt.Errorf("opensys: phase %d length %d must be at least 1 cycle", i, p.Cycles)
		}
	}
	if cfg.Skew == "" {
		cfg.Skew = "uniform"
	}
	if cfg.Grid == 0 {
		cfg.Grid = 64
	}
	if cfg.Grid < 1 {
		return nil, fmt.Errorf("opensys: skew grid %d must be at least 1", cfg.Grid)
	}
	if cfg.Hot == 0 {
		cfg.Hot = 4
	}
	if cfg.HotFrac == 0 {
		cfg.HotFrac = 0.5
	}
	switch cfg.Skew {
	case "uniform", "transpose":
	case "hotspot":
		if cfg.Hot < 1 || cfg.Hot >= cfg.Grid {
			return nil, fmt.Errorf("opensys: hotspot needs 1 <= hot (%d) < grid (%d)", cfg.Hot, cfg.Grid)
		}
		if cfg.HotFrac <= 0 || cfg.HotFrac >= 1 {
			return nil, fmt.Errorf("opensys: hotfrac %v must lie in (0, 1)", cfg.HotFrac)
		}
	default:
		return nil, fmt.Errorf("opensys: unknown skew %q (want uniform, hotspot, or transpose)", cfg.Skew)
	}
	return &Open{cfg: cfg, base: base, weights: skewWeights(cfg)}, nil
}

// mustNew is New for the package's own init-time defaults.
func mustNew(cfg Config) *Open {
	o, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Named returns a copy carrying a display name and CLI aliases — how
// the registered defaults are built. The canonical spec (and the
// fingerprint) are unchanged; only Name reporting differs.
func (o *Open) Named(name string, aliases ...string) *Open {
	c := *o
	c.name = name
	c.aliases = append([]string(nil), aliases...)
	return &c
}

// Name implements workload.Workload: the display name when registered,
// otherwise the canonical spec — which workload.Parse resolves right
// back through the scheme, so derived instances rehydrate by name.
func (o *Open) Name() string {
	if o.name != "" {
		return o.name
	}
	return o.Spec()
}

// Aliases implements workload.Workload.
func (o *Open) Aliases() []string { return o.aliases }

// MaxCores implements workload.Workload by inheriting the base
// workload's software scalability limit.
func (o *Open) MaxCores() int { return o.base.MaxCores() }

// CoreParams implements workload.Workload; pipelines are calibrated
// exactly as the base workload calibrates them.
func (o *Open) CoreParams(coreID int, seed uint64) cpu.Params {
	return o.base.CoreParams(coreID, seed)
}

// Layout implements workload.Workload with the base's address map, so
// prewarming behaves identically to the closed-loop run.
func (o *Open) Layout() workload.Layout { return o.base.Layout() }

// Unwrap exposes the base workload (per-member attribution and tooling).
func (o *Open) Unwrap() workload.Workload { return o.base }

// Config returns the normalized configuration (defaults applied).
func (o *Open) Config() Config {
	c := o.cfg
	c.Phases = append([]RatePhase(nil), o.cfg.Phases...)
	return c
}

// OfferedLoad implements workload.RateScaled.
func (o *Open) OfferedLoad() float64 { return o.cfg.Rate }

// WithOfferedLoad implements workload.RateScaled: a copy at the given
// rate whose Name is its canonical spec (display names would collide
// across the points of a load sweep).
func (o *Open) WithOfferedLoad(rate float64) workload.Workload {
	c := *o
	c.cfg.Rate = rate
	c.name = ""
	c.aliases = nil
	return &c
}

// StreamFor implements workload.Workload: the base stream wrapped in
// the request lifecycle. The arrival process is forked from (seed,
// coreID) on a different lane than any base generator uses, so arrivals
// are decorrelated from service-instruction draws but both are fully
// determined by the chip seed.
func (o *Open) StreamFor(coreID int, seed uint64) cpu.Stream {
	return newOpenStream(o, coreID, seed)
}

// WorkloadFingerprint implements workload.Fingerprinter: the canonical
// spec plus the base's structural fingerprint, so the campaign cache
// key changes exactly when arrivals or the serving workload change.
func (o *Open) WorkloadFingerprint() ([]byte, error) {
	inner, err := workload.Fingerprint(o.base)
	if err != nil {
		return nil, err
	}
	return append([]byte(o.Spec()+"|"), inner...), nil
}

// skewWeights builds the per-core rate multipliers: mean 1 over
// cfg.Grid cores, so the chip-wide offered load is Rate regardless of
// skew. Cores beyond Grid wrap (coreID mod Grid).
func skewWeights(cfg Config) []float64 {
	w := make([]float64, cfg.Grid)
	switch cfg.Skew {
	case "hotspot":
		hot := cfg.HotFrac * float64(cfg.Grid) / float64(cfg.Hot)
		cold := (1 - cfg.HotFrac) * float64(cfg.Grid) / float64(cfg.Grid-cfg.Hot)
		for i := range w {
			if i < cfg.Hot {
				w[i] = hot
			} else {
				w[i] = cold
			}
		}
	case "transpose":
		// Load grows with distance from the tile-grid diagonal — the
		// placement that pairs with PR 4's transpose traffic pattern.
		side := int(math.Round(math.Sqrt(float64(cfg.Grid))))
		if side < 1 {
			side = 1
		}
		sum := 0.0
		for i := range w {
			r, c := (i/side)%side, i%side
			w[i] = 1 + float64(abs(r-c))/float64(max(side-1, 1))
			sum += w[i]
		}
		for i := range w {
			w[i] *= float64(cfg.Grid) / sum
		}
	default: // uniform
		for i := range w {
			w[i] = 1
		}
	}
	return w
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Defaults returns the registered default instances in registration
// order — handy for -list style tooling.
func Defaults() []*Open {
	out := make([]*Open, len(defaults))
	copy(out, defaults)
	return out
}

var defaults []*Open

func init() {
	workload.MustRegisterScheme(Scheme, func(spec string) (workload.Workload, error) {
		return Parse(spec)
	})
	for _, d := range []struct {
		name    string
		aliases []string
		cfg     Config
	}{
		{"Open Poisson", []string{"open-poisson"}, Config{Arrival: "poisson"}},
		{"Open MMPP", []string{"open-mmpp"}, Config{Arrival: "mmpp"}},
		{"Open Burst", []string{"open-burst"}, Config{Arrival: "burst"}},
	} {
		o := mustNew(d.cfg).Named(d.name, d.aliases...)
		if err := workload.Register(o); err != nil {
			panic(err)
		}
		defaults = append(defaults, o)
	}
}

// sortedPhaseKeys is a tiny helper for error messages listing spec keys.
func sortedPhaseKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
