package nocout

import (
	"testing"
)

// This file benchmarks the memory-hierarchy layer: a full Quick-quality
// chip measurement per registered hierarchy on Figure 1's 64-core mesh
// configuration (Data Serving, software scalability lifted — the
// configuration whose core-to-LLC distance sensitivity motivates the
// paper). CI archives the results as BENCH_hierarchy.json through the
// same converter as BENCH_kernel.json and BENCH_workload.json, so the
// hierarchy layer's perf and the hierarchies' relative system performance
// are tracked PR over PR.

// BenchmarkHierarchyQuick measures every registered hierarchy on the
// Figure 1 mesh system; agg-ipc is the hierarchy's Quick-quality system
// throughput and ns/simcycle the simulator cost of its memory system.
func BenchmarkHierarchyQuick(b *testing.B) {
	simCycles := int64(Quick.Warmup + Quick.Window)
	for _, id := range Hierarchies() {
		hier, err := HierarchyOf(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(hier.Name(), func(b *testing.B) {
			cfg := hier.DefaultConfig(DefaultConfig(Mesh))
			cfg.Hierarchy = id
			var res Result
			for i := 0; i < b.N; i++ {
				r, err := RunUnlimited(cfg, "Data Serving", Quick)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.AggIPC, "agg-ipc")
			b.ReportMetric(res.AvgNetLatency, "net-lat-cy")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles*int64(b.N)), "ns/simcycle")
		})
	}
}
