// Package nocout is a from-scratch reproduction of "NOC-Out:
// Microarchitecting a Scale-Out Processor" (Lotfi-Kamran, Grot, Falsafi,
// MICRO-45, 2012): a 64-core CMP timing simulator with interchangeable
// interconnect organizations — the tiled mesh and flattened-butterfly
// baselines, an idealized wire-only fabric, and the paper's NOC-Out
// organization (reduction/dispersion trees feeding a segregated LLC row) —
// plus the directory-coherent cache hierarchy, DDR3 memory channels,
// CloudSuite-like synthetic scale-out workloads, and calibrated area/energy
// models needed to regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := nocout.DefaultConfig(nocout.NOCOut)
//	res, err := nocout.Run(cfg, "Web Search", nocout.Quick)
//	fmt.Println(res)
//
// The Figure* functions regenerate the paper's evaluation; see
// EXPERIMENTS.md for paper-vs-measured results.
package nocout

import (
	"fmt"

	"nocout/internal/chip"
	"nocout/internal/core"
	"nocout/internal/physic"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// Design selects the interconnect organization (§5.1).
type Design = chip.Design

// The evaluated organizations.
const (
	Mesh   = chip.Mesh
	FBfly  = chip.FBfly
	NOCOut = chip.NOCOut
	Ideal  = chip.Ideal
)

// Config describes a CMP instance. The zero value is not valid; start from
// DefaultConfig.
type Config = chip.Config

// NOCOutOrg configures the NOC-Out organization's scalability features
// (§7.1); it is the type of Config.NOCOut.
type NOCOutOrg = core.Config

// DefaultConfig returns the paper's Table 1 64-core system for a design.
func DefaultConfig(d Design) Config { return chip.DefaultConfig(d) }

// Quality selects the simulation effort of an experiment.
type Quality struct {
	Warmup sim.Cycle
	Window sim.Cycle
	Seeds  int
}

// Standard effort levels. Quick is suitable for tests and benchmarks; Full
// mirrors the paper's measurement windows.
var (
	Quick = Quality{Warmup: 12000, Window: 20000, Seeds: 1}
	Full  = Quality{Warmup: 30000, Window: 50000, Seeds: 3}
)

// Workloads returns the names of the six evaluated scale-out workloads in
// the paper's figure order.
func Workloads() []string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// Result summarizes one measured run.
type Result struct {
	Design      Design
	Workload    string
	ActiveCores int

	AggIPC     float64 // system throughput: committed instructions / cycle
	PerCoreIPC float64

	AvgNetLatency float64 // cycles, all message classes
	SnoopRate     float64 // fraction of LLC accesses triggering a snoop
	LLCMissRate   float64
	L1IMPKI       float64
	L1DMPKI       float64

	NoCPower physic.Power
}

// String formats the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%v / %s: %d cores, IPC %.2f (%.3f/core), net latency %.1f cy, snoop %.2f%%, NoC %.2f W",
		r.Design, r.Workload, r.ActiveCores, r.AggIPC, r.PerCoreIPC,
		r.AvgNetLatency, r.SnoopRate*100, r.NoCPower.Total())
}

// Run measures cfg under the named workload, averaging AggIPC over
// q.Seeds independent runs.
func Run(cfg Config, workloadName string, q Quality) (Result, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	return runW(cfg, w, q), nil
}

// RunUnlimited is Run with the workload's software scalability cap lifted
// to the chip's core count, for §7.1-style scaling studies that assume
// software able to use every core.
func RunUnlimited(cfg Config, workloadName string, q Quality) (Result, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	w.MaxCores = cfg.Cores
	return runW(cfg, w, q), nil
}

// runW is the internal entry point used by the experiment harness.
func runW(cfg Config, w workload.Params, q Quality) Result {
	var agg, lat, snoop, miss, impki, dmpki float64
	var res Result
	for s := 0; s < q.Seeds; s++ {
		cfg.Seed = cfg.Seed + uint64(s)*7919
		c := chip.New(cfg, w)
		c.PrewarmCaches()
		c.Warmup(q.Warmup)
		c.Run(q.Window)
		m := c.Metrics()
		agg += m.AggIPC
		lat += m.AvgNetLatency
		snoop += m.Dir.SnoopRate()
		miss += m.Dir.MissRate()
		impki += m.L1IMPKI
		dmpki += m.L1DMPKI
		if s == 0 {
			res = Result{
				Design:      cfg.Design,
				Workload:    w.Name,
				ActiveCores: m.ActiveCores,
				NoCPower:    powerOf(c, cfg, int64(q.Window)),
			}
		}
	}
	n := float64(q.Seeds)
	res.AggIPC = agg / n
	res.PerCoreIPC = res.AggIPC / float64(res.ActiveCores)
	res.AvgNetLatency = lat / n
	res.SnoopRate = snoop / n
	res.LLCMissRate = miss / n
	res.L1IMPKI = impki / n
	res.L1DMPKI = dmpki / n
	return res
}

// powerOf computes the run's NoC power with the design's area and buffer
// technology.
func powerOf(c *chip.Chip, cfg Config, cycles int64) physic.Power {
	area, kind := designArea(cfg)
	return physic.NetworkPowerKind(*c.Net.Stats(), c.NetRouters(), cycles, cfg.LinkBits, area, kind)
}

// designArea returns the NoC area and buffer kind for a configuration.
func designArea(cfg Config) (physic.Breakdown, physic.BufferKind) {
	switch cfg.Design {
	case Mesh:
		return physic.MeshArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.FlipFlop
	case FBfly:
		return physic.FBflyArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.SRAM
	case NOCOut:
		org := cfg.NOCOut
		if org.Columns == 0 {
			org = core.DefaultConfig()
		}
		return physic.NOCOutTotalArea(org, cfg.LinkBits), physic.FlipFlop
	default:
		return physic.Breakdown{}, physic.FlipFlop
	}
}

// Area returns the configuration's NoC area breakdown (Figure 8's model).
func Area(cfg Config) physic.Breakdown {
	b, _ := designArea(cfg)
	return b
}
