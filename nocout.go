// Package nocout is a from-scratch reproduction of "NOC-Out:
// Microarchitecting a Scale-Out Processor" (Lotfi-Kamran, Grot, Falsafi,
// MICRO-45, 2012): a 64-core CMP timing simulator with interchangeable
// interconnect organizations — the tiled mesh and flattened-butterfly
// baselines, an idealized wire-only fabric, and the paper's NOC-Out
// organization (reduction/dispersion trees feeding a segregated LLC row) —
// plus the directory-coherent cache hierarchy, DDR3 memory channels,
// CloudSuite-like synthetic scale-out workloads, and calibrated area/energy
// models needed to regenerate every figure of the paper's evaluation.
//
// A single measurement:
//
//	cfg := nocout.DefaultConfig(nocout.NOCOut)
//	res, err := nocout.Run(cfg, "Web Search", nocout.Quick)
//	fmt.Println(res)
//
// Studies are declarative sweeps over the experiment engine: an
// Experiment (functional options) expands to a Sweep of Points, a Runner
// measures them on a bounded worker pool with context cancellation, and
// the structured Report renders as a text table, JSON, or CSV:
//
//	rep, err := nocout.NewExperiment(
//		nocout.WithDesigns(nocout.Mesh, nocout.NOCOut),
//		nocout.WithWorkloads("Data Serving"),
//		nocout.WithCoreCounts(16, 32, 64),
//		nocout.WithQuality(nocout.Quick),
//	).Run(ctx)
//	fmt.Println(rep.Table())
//
// The Figure* functions are such sweep specs and regenerate the paper's
// evaluation; see EXPERIMENTS.md for the catalog and paper-vs-measured
// results.
//
// Interconnect organizations are pluggable: a Design is a handle into a
// registry of self-describing Organization values (name, CLI aliases,
// default tuning, network construction, area/power model). The paper's
// four are builtin; Torus, CMesh, and Crossbar register through the same
// public RegisterDesign API that user organizations use, and every
// registered design works in sweeps, CLI flags, and JSON reports. See
// EXPERIMENTS.md's "writing a new Organization" walkthrough.
//
// Workload sources are pluggable the same way: a Workload is a
// behavioral value (name and aliases, software scalability limit,
// per-core pipeline parameters, per-core instruction streams, prewarm
// layout) resolved through its own registry — ParseWorkload accepts any
// registered name or alias, case-insensitively, plus the
// "trace:<path>" scheme for recorded captures. The paper's six
// synthetics are builtin; multiprogrammed mixes (NewMix, with a
// per-member IPC breakdown in Result), deterministic phase schedules
// (NewPhased), and whole-chip trace capture/replay (RecordWorkload,
// nocout -record-trace) ride the same RegisterWorkload path as user
// implementations. See EXPERIMENTS.md's "writing a custom Workload"
// walkthrough.
//
// Open-system traffic is the closed-loop model's complement: the
// "opensys:" workload scheme (and the registered "Open Poisson", "Open
// MMPP", "Open Burst" defaults) drives any registered base workload with
// request-sized work units released by a seeded arrival process —
// Poisson, a 2-state MMPP (rate ratio and dwell times), or a
// self-similar Hurst-parameterized burst train — optionally shaped by a
// diurnal phase schedule and a spatial skew (hotspot, transpose). Each
// request is timestamped arrival→dispatch→completion, so open-loop
// Results carry a ReqLatency block (p50/p95/p99, mean, drops, queue
// length) beside the throughput numbers. WithOfferedLoads sweeps the
// arrival rate and StudySaturation locates the p99 knee; see
// EXPERIMENTS.md's "finding the saturation point" walkthrough.
//
// The memory hierarchy is the third pluggable axis: a HierarchyID is a
// handle into a registry of self-describing Hierarchy values that decide
// LLC bank count and placement, the per-line home (directory) mapping,
// the memory-channel mapping, and the bank/L1/memory configurations. The
// paper's shared NUCA is builtin (and the default); XOR-hashed and
// region-affine placement policies, private per-tile slices (PrivateLLC),
// and clustered LLCs (Clustered) register through the same public
// RegisterHierarchy API that user hierarchies use, and every registered
// hierarchy works in WithHierarchies sweeps, CLI flags (-hierarchy,
// -hierarchies), and JSON reports. See EXPERIMENTS.md's "writing a
// custom Hierarchy" walkthrough.
package nocout

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"nocout/internal/chip"
	"nocout/internal/core"
	"nocout/internal/physic"
	"nocout/internal/sim"
	"nocout/internal/stats"
	"nocout/internal/workload"
)

// Design selects the interconnect organization (§5.1): a registry handle
// resolvable with ParseDesign and extensible with RegisterDesign.
type Design = chip.Design

// The paper's evaluated organizations. Torus, CMesh, and Crossbar
// (designs.go) extend the set through the registry.
const (
	Mesh   = chip.Mesh
	FBfly  = chip.FBfly
	NOCOut = chip.NOCOut
	Ideal  = chip.Ideal
)

// Breakdown is a NoC area report in mm² (Figure 8's split).
type Breakdown = physic.Breakdown

// Config describes a CMP instance. The zero value is not valid; start from
// DefaultConfig.
type Config = chip.Config

// NOCOutOrg configures the NOC-Out organization's scalability features
// (§7.1); it is the type of Config.NOCOut.
type NOCOutOrg = core.Config

// DefaultConfig returns the paper's Table 1 64-core system for a design.
func DefaultConfig(d Design) Config { return chip.DefaultConfig(d) }

// Quality selects the simulation effort of an experiment.
type Quality struct {
	Warmup sim.Cycle `json:"warmup"`
	Window sim.Cycle `json:"window"`
	Seeds  int       `json:"seeds"`
}

// Standard effort levels. Quick is suitable for tests and benchmarks; Full
// mirrors the paper's measurement windows.
var (
	Quick = Quality{Warmup: 12000, Window: 20000, Seeds: 1}
	Full  = Quality{Warmup: 30000, Window: 50000, Seeds: 3}
)

// Workloads returns the registered workload names: the paper's six
// scale-out workloads in figure order, then the builtin Mix/Phased
// examples, then RegisterWorkload-ed additions. The Figure* studies
// always sweep just the six (so registered workloads never shift
// regenerated paper numbers); a default Experiment with no
// WithWorkloads sweeps this full list.
func Workloads() []string { return workload.Names() }

// Result summarizes one measured run.
type Result struct {
	Design Design `json:"design"`
	// Hierarchy names the memory hierarchy; it is omitted for the
	// SharedNUCA baseline so pre-hierarchy reports stay byte-compatible.
	Hierarchy   string `json:"hierarchy,omitempty"`
	Workload    string `json:"workload"`
	ActiveCores int    `json:"active_cores"`

	AggIPC     float64 `json:"agg_ipc"` // system throughput: committed instructions / cycle
	PerCoreIPC float64 `json:"per_core_ipc"`

	AvgNetLatency float64 `json:"avg_net_latency_cy"` // cycles, all message classes
	SnoopRate     float64 `json:"snoop_rate"`         // fraction of LLC accesses triggering a snoop
	LLCMissRate   float64 `json:"llc_miss_rate"`
	L1IMPKI       float64 `json:"l1i_mpki"`
	L1DMPKI       float64 `json:"l1d_mpki"`

	NoCPower physic.Power `json:"noc_power"`

	// PerWorkloadIPC breaks AggIPC down by member workload when the
	// source is heterogeneous (a Mix, or a capture of one); nil for
	// homogeneous runs.
	PerWorkloadIPC map[string]float64 `json:"per_workload_ipc,omitempty"`

	// ReqLatency is the request-lifecycle summary for open-system
	// workloads (the "opensys:" family); nil for closed-loop runs, so
	// their JSON, CSV, and table output is byte-identical to before the
	// open-system subsystem existed.
	ReqLatency *ReqLatency `json:"req_latency,omitempty"`
}

// LatencyHist is the mergeable log-bucketed histogram request latencies
// aggregate in (≤12.5% relative quantile error, exact below 16 cycles).
type LatencyHist = stats.LogHist

// ReqLatency summarizes the request lifecycle of an open-system run:
// offered/completed/dropped counts, the latency distribution
// (arrival→completion, in cycles), and the mean queue length seen by
// arrivals. Multi-seed runs merge histograms across seeds before taking
// quantiles, so the tail reflects every measured request.
type ReqLatency struct {
	Arrivals  int64   `json:"arrivals"`
	Completed int64   `json:"completed"`
	Dropped   int64   `json:"dropped,omitempty"`
	MeanCy    float64 `json:"mean_cy"`
	P50       int64   `json:"p50_cy"`
	P95       int64   `json:"p95_cy"`
	P99       int64   `json:"p99_cy"`
	MeanQueue float64 `json:"mean_queue_len"`
	// Hist is the full latency histogram; omit-empty keeps summaries
	// small when callers strip it before encoding.
	Hist *LatencyHist `json:"hist,omitempty"`
}

// reqLatencyOf condenses merged open-system accounting into the Result
// block. A nil or empty input (closed-loop run) yields nil.
func reqLatencyOf(open *workload.OpenStats) *ReqLatency {
	if open == nil {
		return nil
	}
	r := &ReqLatency{
		Arrivals:  open.Arrivals,
		Completed: open.Completed,
		Dropped:   open.Dropped,
		MeanQueue: open.MeanQueueLen(),
		Hist:      open.Hist,
	}
	if open.Hist != nil && open.Hist.Count() > 0 {
		r.MeanCy = open.Hist.Mean()
		r.P50 = open.Hist.Quantile(0.50)
		r.P95 = open.Hist.Quantile(0.95)
		r.P99 = open.Hist.Quantile(0.99)
	}
	return r
}

// String formats the headline numbers, with the per-member breakdown
// appended for heterogeneous workloads.
func (r Result) String() string {
	s := fmt.Sprintf("%v / %s: %d cores, IPC %.2f (%.3f/core), net latency %.1f cy, snoop %.2f%%, NoC %.2f W",
		r.Design, r.Workload, r.ActiveCores, r.AggIPC, r.PerCoreIPC,
		r.AvgNetLatency, r.SnoopRate*100, r.NoCPower.Total())
	if len(r.PerWorkloadIPC) > 0 {
		names := make([]string, 0, len(r.PerWorkloadIPC))
		for name := range r.PerWorkloadIPC {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s %.2f", name, r.PerWorkloadIPC[name])
		}
		s += " [" + strings.Join(parts, ", ") + "]"
	}
	if rl := r.ReqLatency; rl != nil {
		s += fmt.Sprintf(", req p50/p95/p99 %d/%d/%d cy", rl.P50, rl.P95, rl.P99)
		if rl.Dropped > 0 {
			s += fmt.Sprintf(" (%d dropped)", rl.Dropped)
		}
	}
	return s
}

// Run measures cfg under the named workload — any registered name or
// alias (case-insensitive), or a recorded capture via "trace:<path>" —
// averaging over q.Seeds independent runs.
func Run(cfg Config, workloadName string, q Quality) (Result, error) {
	w, err := workload.Parse(workloadName)
	if err != nil {
		return Result{}, err
	}
	return RunWorkload(cfg, w, q), nil
}

// RunUnlimited is Run with the workload's software scalability cap
// lifted (the Unlimited wrapper), for §7.1-style scaling studies that
// assume software able to use every core.
func RunUnlimited(cfg Config, workloadName string, q Quality) (Result, error) {
	w, err := workload.Parse(workloadName)
	if err != nil {
		return Result{}, err
	}
	return RunWorkload(cfg, workload.Unlimited(w), q), nil
}

// RunWorkload is Run for a Workload value that need not be registered —
// a constructed Mix or Phased schedule, a loaded Capture, or any user
// implementation.
func RunWorkload(cfg Config, w Workload, q Quality) Result {
	res, _ := runSeeds(context.Background(), cfg, w, q, 1, nil)
	return res
}

// seedRun holds one seed's measurements.
type seedRun struct {
	agg, lat, snoop, miss, impki, dmpki float64
	members                             map[string]float64
	open                                *workload.OpenStats
	res                                 Result
	// complete marks a seed whose simulation ran to the end; a seed that
	// bailed on a cancelled context leaves it false, poisoning the
	// average (the aggregate result is only valid when every seed ran).
	complete bool
}

// isRuntimeError reports whether a recovered panic value is a Go runtime
// error (index out of range, nil dereference, ...) — an error by type,
// but a programming bug by nature, so it must carry its stack.
func isRuntimeError(r any) bool {
	_, ok := r.(runtime.Error)
	return ok
}

// simSlots bounds the number of simulation goroutines in flight across
// the whole process: the Runner's worker pool and runSeeds' per-seed
// fan-out both draw from it, so a Full-quality sweep (3 seeds/point)
// cannot oversubscribe the machine the way points × seeds goroutines
// would. The semaphore is weighted: a simulation sharded across D
// domains (SimDomains) runs D stepping goroutines and occupies D slots,
// keeping workers × domains bounded too.
var simSlots = newSlotSem(runtime.NumCPU())

// slotSem is a weighted semaphore. Grants are atomic — all n slots or
// none, under one lock — so concurrent wide requests cannot deadlock
// holding partial grants; requests wider than the capacity are clamped
// rather than wedged forever.
type slotSem struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newSlotSem(n int) *slotSem {
	if n < 1 {
		n = 1
	}
	s := &slotSem{cap: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until n slots (clamped to [1, cap]) are free, takes
// them, and returns how many were actually taken for the paired release.
func (s *slotSem) acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	for s.used+n > s.cap {
		s.cond.Wait()
	}
	s.used += n
	s.mu.Unlock()
	return n
}

func (s *slotSem) release(n int) {
	s.mu.Lock()
	s.used -= n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runSeeds is the engine's measurement kernel: it runs q.Seeds
// independent simulations of cfg under w in parallel (bounded by
// simSlots) and averages them. Seed s always runs with base+s*7919
// (derived from the configured base, not compounded across iterations),
// and the averaging order is fixed, so the result is deterministic for
// any scheduling. The second return is the result's validity: true when
// every seed's simulation ran to completion. Cancellation makes a seed
// bail *before* its simulation starts — an in-flight simulation always
// finishes — so a cancellation that lands after the last seed launched
// still yields a complete, valid result; callers must discard the result
// only when complete is false.
//
// Invalid configurations (an unregistered design, a hierarchy that
// cannot inhabit the fabric) panic inside chip.New on a worker; the
// first such panic is re-raised on the caller's goroutine, so it stays a
// recoverable hard error — Runner.Run converts it into a returned error
// — instead of killing the process from a goroutine nobody can recover.
func runSeeds(ctx context.Context, cfg Config, w workload.Workload, q Quality, domains int, ck *CheckpointStore) (Result, bool) {
	if q.Seeds < 1 {
		q.Seeds = 1
	}
	base := cfg.Seed
	outs := make([]seedRun, q.Seeds)
	var (
		panicMu  sync.Mutex
		panicked any
	)
	var wg sync.WaitGroup
	for s := 0; s < q.Seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				// Deliberate hard errors (chip.New panicking an error
				// value) re-raise clean; anything else — runtime errors
				// and other programming bugs — keeps the crash site,
				// which the caller-side re-raise would otherwise lose.
				if _, deliberate := r.(error); !deliberate || isRuntimeError(r) {
					r = fmt.Errorf("%v\n\nworker goroutine stack:\n%s", r, debug.Stack())
				}
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}()
			if ctx.Err() != nil {
				return
			}
			got := simSlots.acquire(domains)
			defer simSlots.release(got)
			if ctx.Err() != nil {
				return
			}
			scfg := cfg
			scfg.Seed = base + uint64(s)*seedStride
			// The warm state either restores from the checkpoint cache or
			// is built the ordinary way; both paths land at the same
			// measurement boundary, bit-identically (the checkpoint
			// conformance suite enforces it), so the Result cannot depend
			// on which one ran.
			var c *chip.Chip
			if ck != nil {
				c = ck.chipFor(scfg, w, domains, q.Warmup)
			} else {
				c = warmChip(scfg, w, domains, q.Warmup)
			}
			c.Run(q.Window)
			m := c.Metrics()
			o := &outs[s]
			o.agg = m.AggIPC
			o.lat = m.AvgNetLatency
			o.snoop = m.Dir.SnoopRate()
			o.miss = m.Dir.MissRate()
			o.impki = m.L1IMPKI
			o.dmpki = m.L1DMPKI
			o.members = m.PerMemberIPC
			o.open = m.Open
			if s == 0 {
				o.res = Result{
					Design:      cfg.Design,
					Workload:    w.Name(),
					ActiveCores: m.ActiveCores,
					NoCPower:    powerOf(c, scfg, int64(q.Window)),
				}
				if cfg.Hierarchy != chip.SharedNUCA {
					o.res.Hierarchy = cfg.Hierarchy.String()
				}
			}
			o.complete = true
		}(s)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	complete := true
	var agg, lat, snoop, miss, impki, dmpki float64
	for s := range outs {
		complete = complete && outs[s].complete
		agg += outs[s].agg
		lat += outs[s].lat
		snoop += outs[s].snoop
		miss += outs[s].miss
		impki += outs[s].impki
		dmpki += outs[s].dmpki
	}
	res := outs[0].res
	n := float64(q.Seeds)
	res.AggIPC = agg / n
	if res.ActiveCores > 0 {
		res.PerCoreIPC = res.AggIPC / float64(res.ActiveCores)
	}
	res.AvgNetLatency = lat / n
	res.SnoopRate = snoop / n
	res.LLCMissRate = miss / n
	res.L1IMPKI = impki / n
	res.L1DMPKI = dmpki / n
	if outs[0].members != nil {
		// Per-key accumulation follows seed order, so the average is
		// deterministic for any map iteration order.
		acc := make(map[string]float64, len(outs[0].members))
		for s := range outs {
			for name, ipc := range outs[s].members {
				acc[name] += ipc / n
			}
		}
		res.PerWorkloadIPC = acc
	}
	if outs[0].open != nil {
		// Seed merge order is fixed (histogram merge is commutative and
		// associative anyway), and counts sum across seeds: the tail
		// quantiles reflect every measured request, not a per-seed average
		// of quantiles (which would not be a quantile of anything).
		merged := workload.NewOpenStats()
		for s := range outs {
			merged.Merge(outs[s].open)
		}
		res.ReqLatency = reqLatencyOf(merged)
	}
	return res, complete
}

// powerOf computes the run's NoC power with the design's area and buffer
// technology.
func powerOf(c *chip.Chip, cfg Config, cycles int64) physic.Power {
	area, kind, err := AreaModel(cfg)
	if err != nil {
		// chip.New resolved the same organization to build c, so this is
		// unreachable for any run that produced a chip.
		panic(err)
	}
	return physic.NetworkPowerKind(*c.Net.Stats(), c.NetRouters(), cycles, cfg.LinkBits, area, kind)
}

// AreaModel returns the configuration's NoC area breakdown and buffer
// circuit from its organization's registered model. Unknown designs are a
// hard error — there is no silent zero-area fallback; the Ideal fabric's
// zero breakdown is its organization's explicit wire-only model.
func AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind, error) {
	org, err := chip.OrganizationOf(cfg.Design)
	if err != nil {
		return physic.Breakdown{}, physic.FlipFlop, err
	}
	b, kind := org.AreaModel(cfg)
	return b, kind, nil
}

// HierarchyPhysical returns the configuration's memory-hierarchy silicon
// contribution — LLC storage and directory area plus standby leakage —
// from its hierarchy's registered model. Unknown hierarchies are a hard
// error, exactly as unknown designs are for AreaModel.
func HierarchyPhysical(cfg Config) (HierPhysical, error) {
	h, err := chip.HierarchyOf(cfg.Hierarchy)
	if err != nil {
		return HierPhysical{}, err
	}
	return h.Physical(cfg), nil
}

// Area returns the configuration's NoC area breakdown (Figure 8's model).
// It panics on an unregistered design; use AreaModel to handle the error.
func Area(cfg Config) physic.Breakdown {
	b, _, err := AreaModel(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// SolveWidthForArea finds the widest link width (a multiple of 8 bits, at
// least 8) whose NoC area for design d does not exceed budget mm² —
// Figure 9's equal-area normalization. It reports the width and the
// achieved area.
func SolveWidthForArea(d Design, budgetMM2 float64) (linkBits int, area Breakdown) {
	cfg := DefaultConfig(d)
	at := func(w int) Breakdown {
		c := cfg
		c.LinkBits = w
		return Area(c)
	}
	best := 8
	bestArea := at(best)
	for w := 8; w <= 512; w += 8 {
		a := at(w)
		if a.Total() <= budgetMM2 {
			best, bestArea = w, a
		}
	}
	return best, bestArea
}
