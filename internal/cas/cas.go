// Package cas holds the content-addressed-store mechanics shared by the
// campaign result cache and the warm-state checkpoint cache: hex key
// validation, atomic file writes, and the cross-process lease protocol.
// Keys are "<schema-prefix>" + 64 lowercase hex digits (a SHA-256), so a
// valid key is path-safe by construction; each consumer supplies its own
// schema prefix ("pt1-" point results, "ck1-" checkpoint prefixes) and
// the stores can never alias each other's entries.
package cas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// ValidKey reports whether s is prefix followed by exactly 64 lowercase
// hex digits. Store and lease filenames derive from keys, so this is
// also the path-safety check.
func ValidKey(prefix, s string) bool {
	if len(s) != len(prefix)+64 || s[:len(prefix)] != prefix {
		return false
	}
	for _, c := range s[len(prefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a partial entry and concurrent
// writers of identical content are safe.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Leaser partitions content-addressed work across worker processes with
// per-key claim files in a shared directory. The two primitives are both
// atomic on a local filesystem:
//
//   - acquire: O_CREATE|O_EXCL — exactly one process creates the claim;
//   - steal:   rename of an expired claim — exactly one process wins the
//     rename, removes the stale file, and retries the exclusive create.
//
// A claim expires TTL after acquisition (there is no heartbeat — set TTL
// comfortably above the longest single unit of work). Leasing is purely
// an anti-duplication optimization: the protected work is deterministic
// and the store is idempotent, so the worst case of any race is two
// workers computing the same entry and storing identical results.
type Leaser struct {
	// Dir is the shared lease directory.
	Dir string
	// Owner identifies this worker in claim files; it must be unique
	// among cooperating workers (DefaultOwner is hostname-pid).
	Owner string
	// TTL is how long a claim lives before any worker may steal it from
	// a (presumed crashed) owner.
	TTL time.Duration
	// KeyPrefix is the key schema Acquire validates against.
	KeyPrefix string
}

// DefaultTTL is the claim lifetime when Leaser.TTL is zero: long enough
// for any single unit of work, short enough that a crashed worker's
// claims are reclaimed within a coffee break.
const DefaultTTL = 10 * time.Minute

// DefaultOwner returns this process's default lease identity.
func DefaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return host + "-" + strconv.Itoa(os.Getpid())
}

// claim is the JSON body of a lease file.
type claim struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_nano"`
}

// Acquire claims key for this worker. ok=false means another worker
// holds a live claim (or won a racing steal); release removes the claim
// and must be called once the key's result is stored.
func (l *Leaser) Acquire(key string) (release func(), ok bool, err error) {
	if !ValidKey(l.KeyPrefix, key) {
		return nil, false, fmt.Errorf("cas: invalid key %.80q", key)
	}
	ttl := l.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	path := filepath.Join(l.Dir, key+".lease")
	// Two attempts: the first may find an expired claim and steal it;
	// the second then races the exclusive create. Losing both means
	// another live worker owns the key this pass.
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			body, merr := json.Marshal(claim{Owner: l.Owner, Expires: time.Now().Add(ttl).UnixNano()})
			if merr == nil {
				_, merr = f.Write(body)
			}
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
			if merr != nil {
				os.Remove(path)
				return nil, false, merr
			}
			return func() { l.release(path) }, true, nil
		}
		if !os.IsExist(err) {
			return nil, false, err
		}
		body, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between create and read; retry create
			}
			return nil, false, rerr
		}
		var cl claim
		if json.Unmarshal(body, &cl) == nil && time.Now().UnixNano() < cl.Expires {
			return nil, false, nil // live claim held elsewhere
		}
		// Expired (or corrupt) claim: steal it. Rename is the arbiter —
		// one stealer wins, everyone else sees ENOENT and falls back to
		// racing the fresh exclusive create.
		stale := path + ".stale." + l.Owner + "." + strconv.FormatInt(time.Now().UnixNano(), 36)
		if rerr := os.Rename(path, stale); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return nil, false, rerr
		}
		os.Remove(stale)
	}
	return nil, false, nil
}

// release removes our claim, if it is still ours: an expired claim may
// have been stolen and re-issued to another worker, whose file must
// survive. Best-effort — expiry is the backstop for anything missed.
func (l *Leaser) release(path string) {
	body, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var cl claim
	if json.Unmarshal(body, &cl) == nil && cl.Owner == l.Owner {
		os.Remove(path)
	}
}
