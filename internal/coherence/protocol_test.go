package coherence_test

import (
	"testing"

	. "nocout/internal/coherence"

	"nocout/internal/mem"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
)

// rig is a minimal chip: nCores L1s (nodes 0..n-1), one LLC bank (node n),
// one memory channel (node n+1), connected by an ideal network.
type rig struct {
	e     *sim.Engine
	net   noc.Network
	l1s   []*L1
	bank  *Bank
	mc    *mem.Controller
	fills []int // per-core fill count
}

func newRig(t *testing.T, nCores int, l1Bytes, llcBytes int) *rig {
	t.Helper()
	bankNode := noc.NodeID(nCores)
	mcNode := noc.NodeID(nCores + 1)
	net := topo.NewIdealWithDelay(nCores+2, func(a, b noc.NodeID) sim.Cycle { return 3 })
	r := &rig{e: sim.NewEngine(), net: net, fills: make([]int, nCores)}

	home := func(line uint64) (noc.NodeID, int) { return bankNode, 0 }
	l1node := func(core int) noc.NodeID { return noc.NodeID(core) }

	l1cfg := DefaultL1Config()
	l1cfg.ISizeBytes, l1cfg.DSizeBytes = l1Bytes, l1Bytes
	for i := 0; i < nCores; i++ {
		i := i
		l1 := NewL1(i, noc.NodeID(i), net, l1cfg, nil, home, l1node)
		l1.SetFillListener(func(now sim.Cycle, line uint64, instr, write bool) { r.fills[i]++ })
		net.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) {
			l1.Deliver((*p.Payload.(*Msg)))
		})
		r.l1s = append(r.l1s, l1)
	}
	bcfg := BankConfig{SizeBytes: llcBytes, Ways: 4, AccessLat: 4, LinkBits: 128, NumCores: nCores}
	r.bank = NewBank(0, bankNode, net, bcfg, nil,
		func(line uint64) (noc.NodeID, int) { return mcNode, 0 },
		l1node)
	net.SetDeliver(bankNode, func(now sim.Cycle, p *noc.Packet) { r.bank.Deliver((*p.Payload.(*Msg))) })

	r.mc = mem.NewController(0, mcNode, net, mem.DefaultConfig(), nil,
		func(bank int) noc.NodeID { return bankNode })
	net.SetDeliver(mcNode, func(now sim.Cycle, p *noc.Packet) { r.mc.Deliver((*p.Payload.(*Msg))) })

	r.e.Register(net)
	for _, l1 := range r.l1s {
		r.e.Register(sim.TickFunc(l1.Tick))
	}
	r.e.Register(sim.TickFunc(r.bank.Tick), sim.TickFunc(r.mc.Tick))
	return r
}

// access issues one access and runs until the resulting miss (if any) fills.
func (r *rig) access(t *testing.T, core int, line uint64, kind AccessKind) Outcome {
	t.Helper()
	out := r.l1s[core].Access(r.e.Now(), line, kind)
	if out == Miss || out == MissMerged {
		before := r.fills[core]
		if !r.e.RunUntil(func() bool { return r.fills[core] > before }, 5000) {
			t.Fatalf("core %d miss on line %#x never filled", core, line)
		}
	}
	return out
}

// settle runs until all protocol agents drain.
func (r *rig) settle(t *testing.T) {
	t.Helper()
	idle := func() bool { return !r.bank.PendingWork() && !r.mc.PendingWork() }
	if !r.e.RunUntil(idle, 20000) {
		t.Fatal("protocol never drained")
	}
	r.e.Step(50) // let trailing acks land
}

func TestColdReadMissFillsFromMemory(t *testing.T) {
	r := newRig(t, 2, 32<<10, 1<<20)
	if out := r.access(t, 0, 100, Load); out != Miss {
		t.Fatalf("cold access = %v, want Miss", out)
	}
	if !r.bank.Resident(100) {
		t.Fatal("LLC should hold the line after the fill")
	}
	if r.bank.Stats.Misses != 1 || r.bank.Stats.MemReads != 1 {
		t.Fatalf("stats: %+v", r.bank.Stats)
	}
	if st, ok := r.l1s[0].StateOf(100); !ok || st != StateS {
		t.Fatalf("L1 state = %v,%v want S", st, ok)
	}
	// Re-access hits locally.
	if out := r.l1s[0].Access(r.e.Now(), 100, Load); out != Hit {
		t.Fatalf("warm access = %v, want Hit", out)
	}
}

func TestInstructionSharingNoSnoops(t *testing.T) {
	// All cores fetch the same instruction lines: everyone hits in the LLC
	// after the first fill and no snoops ever fire (read-only sharing).
	r := newRig(t, 4, 32<<10, 1<<20)
	for core := 0; core < 4; core++ {
		r.access(t, core, 42, Ifetch)
	}
	r.settle(t)
	if r.bank.SharerCount(42) != 4 {
		t.Fatalf("sharers = %d, want 4", r.bank.SharerCount(42))
	}
	if r.bank.Stats.SnoopMsgs != 0 {
		t.Fatalf("read-only sharing must not snoop: %+v", r.bank.Stats)
	}
	if r.bank.Stats.Misses != 1 {
		t.Fatalf("only the first fetch should miss: %+v", r.bank.Stats)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3, 32<<10, 1<<20)
	r.access(t, 0, 7, Load)
	r.access(t, 1, 7, Load)
	r.access(t, 2, 7, Store) // must invalidate cores 0 and 1
	r.settle(t)
	if r.bank.OwnerOf(7) != 2 {
		t.Fatalf("owner = %d, want 2", r.bank.OwnerOf(7))
	}
	if r.l1s[0].HasLine(7) || r.l1s[1].HasLine(7) {
		t.Fatal("sharers must be invalidated")
	}
	if st, _ := r.l1s[2].StateOf(7); st != StateM {
		t.Fatal("writer must hold the line in M")
	}
	if r.bank.Stats.SnoopAccesses != 1 || r.bank.Stats.SnoopMsgs != 2 {
		t.Fatalf("snoop accounting: %+v", r.bank.Stats)
	}
	if r.l1s[0].Stats.SnoopsReceived != 1 || r.l1s[1].Stats.SnoopsReceived != 1 {
		t.Fatal("both sharers should have seen an Inv")
	}
}

func TestReadOfModifiedLineForwards(t *testing.T) {
	r := newRig(t, 2, 32<<10, 1<<20)
	r.access(t, 0, 9, Store)
	r.settle(t)
	if r.bank.OwnerOf(9) != 0 {
		t.Fatalf("owner = %d", r.bank.OwnerOf(9))
	}
	r.access(t, 1, 9, Load) // FwdGetS path
	r.settle(t)
	if r.bank.OwnerOf(9) != -1 {
		t.Fatal("owner must be cleared after the copy-back")
	}
	if r.bank.SharerCount(9) != 2 {
		t.Fatalf("sharers = %d, want 2 (old owner + requester)", r.bank.SharerCount(9))
	}
	st0, _ := r.l1s[0].StateOf(9)
	st1, _ := r.l1s[1].StateOf(9)
	if st0 != StateS || st1 != StateS {
		t.Fatalf("states = %v,%v want S,S", st0, st1)
	}
	if r.l1s[0].Stats.SnoopsReceived != 1 {
		t.Fatal("owner should have received FwdGetS")
	}
}

func TestWriteOfModifiedLineTransfersOwnership(t *testing.T) {
	r := newRig(t, 2, 32<<10, 1<<20)
	r.access(t, 0, 11, Store)
	r.settle(t)
	r.access(t, 1, 11, Store) // FwdGetX path
	r.settle(t)
	if r.bank.OwnerOf(11) != 1 {
		t.Fatalf("owner = %d, want 1", r.bank.OwnerOf(11))
	}
	if r.l1s[0].HasLine(11) {
		t.Fatal("old owner must be invalidated")
	}
	if st, _ := r.l1s[1].StateOf(11); st != StateM {
		t.Fatal("new owner must be in M")
	}
}

func TestUpgradeFromSharedGetsAckEx(t *testing.T) {
	r := newRig(t, 2, 32<<10, 1<<20)
	r.access(t, 0, 13, Load)
	r.settle(t)
	// Store to an S line: upgrade; no other sharers, so AckEx and owner.
	out := r.access(t, 0, 13, Store)
	if out != Miss {
		t.Fatalf("upgrade should miss in L1 (needs GetX), got %v", out)
	}
	r.settle(t)
	if r.bank.OwnerOf(13) != 0 {
		t.Fatal("upgrade must set ownership")
	}
	if st, _ := r.l1s[0].StateOf(13); st != StateM {
		t.Fatal("upgraded line must be M")
	}
}

func TestDirtyL1EvictionWritesBack(t *testing.T) {
	// Tiny L1 (4 lines, 2-way) to force evictions quickly.
	r := newRig(t, 1, 4*64, 1<<20)
	r.access(t, 0, 0, Store) // set 0
	r.settle(t)
	r.access(t, 0, 2, Store) // set 0 again (2 sets: lines 0,2 collide)
	r.settle(t)
	r.access(t, 0, 4, Store) // evicts line 0 (LRU), must PutM
	r.settle(t)
	if r.l1s[0].Stats.Writebacks == 0 {
		t.Fatal("dirty eviction must send PutM")
	}
	if r.bank.Stats.Writebacks == 0 {
		t.Fatal("bank must receive the PutM")
	}
	if r.bank.OwnerOf(0) != -1 {
		t.Fatal("writeback must clear ownership")
	}
}

func TestMSHRLimitBlocks(t *testing.T) {
	r := newRig(t, 1, 32<<10, 1<<20)
	l1 := r.l1s[0]
	// Fill the 16-entry MSHR file with distinct misses without running the
	// simulation.
	for i := uint64(0); i < 16; i++ {
		if out := l1.Access(r.e.Now(), 1000+i, Load); out != Miss {
			t.Fatalf("access %d = %v, want Miss", i, out)
		}
	}
	if out := l1.Access(r.e.Now(), 2000, Load); out != Blocked {
		t.Fatalf("17th outstanding miss = %v, want Blocked", out)
	}
	// A merged miss is still accepted.
	if out := l1.Access(r.e.Now(), 1000, Load); out != MissMerged {
		t.Fatalf("merge = %v, want MissMerged", out)
	}
	if l1.OutstandingMisses() != 16 {
		t.Fatalf("outstanding = %d", l1.OutstandingMisses())
	}
}

func TestLLCEvictionRecallsModifiedVictim(t *testing.T) {
	// LLC with 4 lines (4-way, 1 set... need power-of-two sets: 4 lines,
	// 4 ways = 1 set). Write line 0 (owned M by core), then stream reads
	// until line 0 is evicted -> Recall -> MemWrite.
	r := newRig(t, 1, 32<<10, 4*64)
	r.access(t, 0, 0, Store)
	r.settle(t)
	for i := uint64(1); i <= 4; i++ {
		r.access(t, 0, 100+i, Load)
		r.settle(t)
	}
	if r.bank.Stats.Recalls == 0 {
		t.Fatalf("evicting an owned line must recall it: %+v", r.bank.Stats)
	}
	if r.bank.Stats.MemWrites == 0 {
		t.Fatal("recalled dirty line must be written to memory")
	}
	if r.l1s[0].HasLine(0) {
		t.Fatal("recalled line must leave the L1")
	}
}

func TestLLCEvictionBackInvalidatesSharers(t *testing.T) {
	r := newRig(t, 2, 32<<10, 4*64)
	r.access(t, 0, 0, Load)
	r.access(t, 1, 0, Load)
	r.settle(t)
	for i := uint64(1); i <= 4; i++ {
		r.access(t, 0, 100+i, Load)
		r.settle(t)
	}
	if r.bank.Stats.BackInvals == 0 {
		t.Fatal("evicting a shared line must back-invalidate")
	}
	// Back-invals are not demand snoops: Figure 4 accounting unaffected.
	if r.bank.Stats.SnoopAccesses != 0 {
		t.Fatalf("back-invals must not count as snoop-triggering accesses: %+v", r.bank.Stats)
	}
	r.e.Step(100)
	if r.l1s[0].HasLine(0) || r.l1s[1].HasLine(0) {
		t.Fatal("sharers should have dropped the line")
	}
}

func TestMemoryChannelBandwidth(t *testing.T) {
	// A burst of reads is serviced one line per LinePeriod.
	r := newRig(t, 1, 64*64, 1<<20)
	l1 := r.l1s[0]
	start := r.e.Now()
	for i := uint64(0); i < 8; i++ {
		l1.Access(r.e.Now(), 5000+i*64, Load) // distinct sets, all LLC misses
	}
	before := r.fills[0]
	if !r.e.RunUntil(func() bool { return r.fills[0] == before+8 }, 5000) {
		t.Fatalf("only %d/8 fills", r.fills[0]-before)
	}
	elapsed := int64(r.e.Now() - start)
	cfg := mem.DefaultConfig()
	minTime := int64(cfg.AccessLat) + 7*int64(cfg.LinePeriod)
	if elapsed < minTime {
		t.Fatalf("8 fills in %d cycles beats the channel's bandwidth floor %d", elapsed, minTime)
	}
	if r.mc.Stats.Reads != 8 {
		t.Fatalf("MC reads = %d", r.mc.Stats.Reads)
	}
}

func TestSnoopRateMetric(t *testing.T) {
	r := newRig(t, 2, 32<<10, 1<<20)
	// 1 snooping access (store to a line owned M elsewhere) among several
	// plain accesses.
	r.access(t, 0, 1, Store)
	r.settle(t)
	r.access(t, 1, 1, Store)
	r.settle(t)
	for i := uint64(10); i < 18; i++ {
		r.access(t, 0, i, Load)
		r.settle(t)
	}
	st := r.bank.Stats
	if st.SnoopAccesses != 1 {
		t.Fatalf("snoop accesses = %d, want 1", st.SnoopAccesses)
	}
	want := 1.0 / float64(st.Accesses)
	if got := st.SnoopRate(); got != want {
		t.Fatalf("SnoopRate = %v, want %v", got, want)
	}
}

func TestDirStatsAdd(t *testing.T) {
	a := DirStats{Accesses: 1, Hits: 2, Misses: 3, SnoopAccesses: 4, SnoopMsgs: 5, BackInvals: 6, Recalls: 7, Writebacks: 8, MemReads: 9, MemWrites: 10}
	var sum DirStats
	sum.Add(a)
	sum.Add(a)
	if sum.Accesses != 2 || sum.MemWrites != 20 || sum.SnoopMsgs != 10 {
		t.Fatalf("Add broken: %+v", sum)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, id := range []int{0, 63, 64, 129} {
		b.Set(id)
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Fatal("membership wrong")
	}
	var got []int
	b.ForEach(func(id int) { got = append(got, id) })
	want := []int{0, 63, 64, 129}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v", got)
		}
	}
	b.Clear(63)
	if b.Has(63) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}
