package coherence_test

import (
	"testing"

	. "nocout/internal/coherence"

	"nocout/internal/sim"
)

// TestProtocolInvariantsUnderRandomTraffic drives random reads/writes from
// four cores over a small line space, periodically letting the protocol
// settle, and checks directory/L1 agreement at each settle point.
func TestProtocolInvariantsUnderRandomTraffic(t *testing.T) {
	r := newRig(t, 4, 32<<10, 1<<20)
	rng := sim.NewRNG(2024)

	const lines = 32
	const rounds = 60
	for round := 0; round < rounds; round++ {
		// Fire a small batch of random accesses without waiting.
		for k := 0; k < 6; k++ {
			core := rng.Intn(4)
			line := uint64(rng.Intn(lines))
			kind := Load
			if rng.Bool(0.3) {
				kind = Store
			} else if rng.Bool(0.2) {
				kind = Ifetch
			}
			r.l1s[core].Access(r.e.Now(), line, kind)
		}
		r.settle(t)

		for line := uint64(0); line < lines; line++ {
			owner := r.bank.OwnerOf(line)
			sharers := r.bank.SharerCount(line)
			if owner >= 0 && sharers > 0 {
				t.Fatalf("round %d line %d: owner %d coexists with %d sharers", round, line, owner, sharers)
			}
			if owner >= 0 {
				// The recorded owner must actually hold the line in M
				// (settled state, no in-flight races).
				if st, ok := r.l1s[owner].StateOf(line); !ok || st != StateM {
					t.Fatalf("round %d line %d: directory says core %d owns it, L1 disagrees (st=%v ok=%v)",
						round, line, owner, st, ok)
				}
				// Nobody else may hold it.
				for c := 0; c < 4; c++ {
					if c != owner && r.l1s[c].HasLine(line) {
						t.Fatalf("round %d line %d: core %d holds a copy while core %d owns it", round, line, c, owner)
					}
				}
			}
		}
	}
	// The protocol processed a meaningful workload.
	if r.bank.Stats.Accesses == 0 {
		t.Fatal("no accesses processed")
	}
}

// TestNoDuplicateExclusiveOwners runs heavier write-sharing traffic and
// verifies single-writer semantics at every settle point.
func TestNoDuplicateExclusiveOwners(t *testing.T) {
	r := newRig(t, 3, 32<<10, 1<<20)
	const hotLine = uint64(5)
	for round := 0; round < 30; round++ {
		for c := 0; c < 3; c++ {
			r.l1s[c].Access(r.e.Now(), hotLine, Store)
		}
		r.settle(t)
		holders := 0
		for c := 0; c < 3; c++ {
			if st, ok := r.l1s[c].StateOf(hotLine); ok && st == StateM {
				holders++
			}
		}
		if holders > 1 {
			t.Fatalf("round %d: %d simultaneous M holders", round, holders)
		}
	}
	if r.bank.Stats.SnoopMsgs == 0 {
		t.Fatal("write sharing must produce snoops")
	}
}

// TestMessageClassAssignment pins the deadlock-freedom class split (§4.1).
func TestMessageClassAssignment(t *testing.T) {
	reqs := []MsgType{GetS, GetX, MemRead}
	snoops := []MsgType{FwdGetS, FwdGetX, Inv, Recall}
	resps := []MsgType{Data, DataEx, AckEx, FwdData, CopyBack, FwdAck, InvAck, PutM, RecallAck, MemWrite, MemData}
	for _, m := range reqs {
		if m.Class() != 0 {
			t.Errorf("%v should be a request", m)
		}
	}
	for _, m := range snoops {
		if m.Class() != 1 {
			t.Errorf("%v should be a snoop", m)
		}
	}
	for _, m := range resps {
		if m.Class() != 2 {
			t.Errorf("%v should be a response", m)
		}
	}
}

// TestDataCarryingTypes pins which messages serialize as multi-flit.
func TestDataCarryingTypes(t *testing.T) {
	carrying := map[MsgType]bool{
		Data: true, DataEx: true, FwdData: true, CopyBack: true,
		PutM: true, RecallAck: true, MemWrite: true, MemData: true,
	}
	for m := GetS; m <= MemData; m++ {
		if m.CarriesData() != carrying[m] {
			t.Errorf("%v CarriesData = %v", m, m.CarriesData())
		}
		want := 0
		if carrying[m] {
			want = 64
		}
		if (Msg{Type: m}).PacketBytes() != want {
			t.Errorf("%v PacketBytes wrong", m)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if GetS.String() != "GetS" || MemData.String() != "MemData" || Recall.String() != "Recall" {
		t.Fatal("message mnemonics wrong")
	}
}
