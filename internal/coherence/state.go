package coherence

import (
	"sort"

	"nocout/internal/ckpt"
)

// Checkpoint serialization of the protocol controllers. Wiring (network,
// pool, home/l1Node mapping, geometry) is structural and rebuilt by the
// restoring chip; only protocol state travels: tag arrays, MSI state,
// directory vectors, open transactions, queued messages, and packet
// sequence counters. Measurement Stats are excluded.

// EncodeMsg serializes a protocol message. Exported so the chip layer can
// use it as the packet-payload codec for in-flight network state (noc
// cannot import coherence).
func EncodeMsg(e *ckpt.Enc, m Msg) {
	e.U64(uint64(m.Type))
	e.U64(m.Addr)
	e.U64(uint64(m.Dst))
	e.Int(m.DstID)
	e.Int(m.SrcID)
	e.Int(m.Req)
}

// DecodeMsg is the inverse of EncodeMsg.
func DecodeMsg(d *ckpt.Dec) Msg {
	t := d.U64()
	if t > uint64(MemData) {
		d.Corrupt("invalid protocol message type %d", t)
		return Msg{}
	}
	m := Msg{Type: MsgType(t), Addr: d.U64()}
	dst := d.U64()
	if dst > uint64(AgentMC) {
		d.Corrupt("invalid protocol agent %d", dst)
		return Msg{}
	}
	m.Dst = Agent(dst)
	m.DstID = d.Int()
	m.SrcID = d.Int()
	m.Req = d.Int()
	return m
}

// lineStates packs an MSI state slice (values are only S/M) as a bit
// vector.
func saveLineStates(e *ckpt.Enc, st []LineState) {
	bits := make([]bool, len(st))
	for i, s := range st {
		bits[i] = s == StateM
	}
	e.Bools(bits)
}

func loadLineStates(d *ckpt.Dec, st []LineState) {
	bits := d.Bools()
	if d.Err() != nil {
		return
	}
	if len(bits) != len(st) {
		d.Corrupt("line-state length %d, built %d", len(bits), len(st))
		return
	}
	for i, b := range bits {
		if b {
			st[i] = StateM
		} else {
			st[i] = StateS
		}
	}
}

// SaveState implements ckpt.Saver for an L1 controller.
func (l *L1) SaveState(e *ckpt.Enc) {
	l.iArr.SaveState(e)
	saveLineStates(e, l.iState)
	l.dArr.SaveState(e)
	saveLineStates(e, l.dState)
	l.mshrs.SaveState(e)
	l.inbox.SaveState(e, EncodeMsg)
	e.U64(l.pktSeq)
}

// LoadState implements ckpt.Loader.
func (l *L1) LoadState(d *ckpt.Dec) {
	l.iArr.LoadState(d)
	loadLineStates(d, l.iState)
	l.dArr.LoadState(d)
	loadLineStates(d, l.dState)
	l.mshrs.LoadState(d)
	l.inbox.LoadState(d, DecodeMsg)
	l.pktSeq = d.U64()
}

func saveTrans(e *ckpt.Enc, tr *trans) {
	EncodeMsg(e, tr.origin)
	e.U64(uint64(tr.state))
	e.Int(tr.acksLeft)
	e.Bool(tr.reqWasSharer)
	e.U64(tr.victim)
	e.Bool(tr.hasVictim)
	e.U64(uint64(len(tr.pending)))
	for _, m := range tr.pending {
		EncodeMsg(e, m)
	}
}

func loadTrans(d *ckpt.Dec) *trans {
	tr := &trans{origin: DecodeMsg(d)}
	st := d.U64()
	if st > uint64(tWaitRecall) {
		d.Corrupt("invalid transaction state %d", st)
		return tr
	}
	tr.state = transState(st)
	tr.acksLeft = d.Int()
	tr.reqWasSharer = d.Bool()
	tr.victim = d.U64()
	tr.hasVictim = d.Bool()
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		tr.pending = append(tr.pending, DecodeMsg(d))
	}
	return tr
}

// SaveState implements ckpt.Saver for an LLC bank. Open transactions are
// serialized once each under their origin line in ascending order; the
// victim-key alias a recall holds (busy[victim] == busy[origin]) is
// reconstructed from the transaction state on load, so the double-keyed
// map round-trips exactly. The freeTr recycling pool is not state.
func (b *Bank) SaveState(e *ckpt.Enc) {
	b.arr.SaveState(e)
	// Directory vectors, flattened: all per-line bitsets share one width.
	words := make([]uint64, 0, len(b.sharers)*len(b.sharers[0].w))
	for _, s := range b.sharers {
		words = append(words, s.w...)
	}
	e.U64s(words)
	owners := make([]uint64, len(b.owner))
	for i, o := range b.owner {
		owners[i] = uint64(uint32(o))
	}
	e.U64s(owners)
	e.Bools(b.dirty)

	lines := make([]uint64, 0, len(b.busy))
	for line, tr := range b.busy {
		if line == tr.origin.Addr {
			lines = append(lines, line)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.U64(uint64(len(lines)))
	for _, line := range lines {
		saveTrans(e, b.busy[line])
	}

	b.reqQ.SaveState(e, EncodeMsg)
	b.inPipe.SaveState(e, EncodeMsg)
	b.inbox.SaveState(e, EncodeMsg)
	e.U64(b.pktSeq)
}

// LoadState implements ckpt.Loader.
func (b *Bank) LoadState(d *ckpt.Dec) {
	b.arr.LoadState(d)
	words := d.U64s()
	if d.Err() != nil {
		return
	}
	per := len(b.sharers[0].w)
	if len(words) != len(b.sharers)*per {
		d.Corrupt("directory vector length %d, built %d", len(words), len(b.sharers)*per)
		return
	}
	for i := range b.sharers {
		copy(b.sharers[i].w, words[i*per:(i+1)*per])
	}
	owners := d.U64s()
	dirty := d.Bools()
	if d.Err() != nil {
		return
	}
	if len(owners) != len(b.owner) || len(dirty) != len(b.dirty) {
		d.Corrupt("owner/dirty length %d/%d, built %d", len(owners), len(dirty), len(b.owner))
		return
	}
	for i, o := range owners {
		b.owner[i] = int32(uint32(o))
	}
	copy(b.dirty, dirty)

	clear(b.busy)
	n := d.Count()
	for i := 0; i < n && d.Err() == nil; i++ {
		tr := loadTrans(d)
		if d.Err() != nil {
			return
		}
		if _, dup := b.busy[tr.origin.Addr]; dup {
			d.Corrupt("duplicate transaction for line %#x", tr.origin.Addr)
			return
		}
		b.busy[tr.origin.Addr] = tr
		if tr.state == tWaitRecall {
			b.busy[tr.victim] = tr
		}
	}

	b.reqQ.LoadState(d, DecodeMsg)
	b.inPipe.LoadState(d, DecodeMsg)
	b.inbox.LoadState(d, DecodeMsg)
	b.pktSeq = d.U64()
}
