package coherence

import "math/bits"

// Bitset is a fixed-capacity sharer set (full-map directory vector).
type Bitset struct {
	w []uint64
}

// NewBitset returns a set able to hold ids in [0, n).
func NewBitset(n int) Bitset { return Bitset{w: make([]uint64, (n+63)/64)} }

// Set adds id.
func (b Bitset) Set(id int) { b.w[id/64] |= 1 << (uint(id) % 64) }

// Clear removes id.
func (b Bitset) Clear(id int) { b.w[id/64] &^= 1 << (uint(id) % 64) }

// Has reports membership.
func (b Bitset) Has(id int) bool { return b.w[id/64]&(1<<(uint(id)%64)) != 0 }

// Count returns the population count.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears all members.
func (b Bitset) Reset() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// ForEach calls fn for every member in ascending order.
func (b Bitset) ForEach(fn func(id int)) {
	for i, w := range b.w {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(i*64 + bit)
			w &^= 1 << uint(bit)
		}
	}
}
