package coherence

import (
	"fmt"

	"nocout/internal/cache"
	"nocout/internal/noc"
	"nocout/internal/sim"
)

// LineState is the MSI state of a line in an L1.
type LineState uint8

// L1 line states (Invalid is represented by absence from the array).
const (
	StateS LineState = iota
	StateM
)

// AccessKind distinguishes the core's three memory operations.
type AccessKind uint8

// Access kinds.
const (
	Ifetch AccessKind = iota
	Load
	Store
)

// Outcome is the immediate result of an L1 access.
type Outcome uint8

// Access outcomes.
const (
	Hit        Outcome = iota // serviced locally
	Miss                      // MSHR allocated, request sent
	MissMerged                // joined an outstanding miss to the same line
	Blocked                   // MSHR file full; retry later
)

// L1Stats counts controller activity.
type L1Stats struct {
	IfetchAccesses, IfetchMisses int64
	LoadAccesses, LoadMisses     int64
	StoreAccesses, StoreMisses   int64
	Writebacks                   int64
	SnoopsReceived               int64
	Fills                        int64
}

// L1 is a core's private cache controller: a 32KB L1-I and a 32KB L1-D
// (Table 1) in front of the network, with a bounded MSHR file providing the
// core's memory-level parallelism.
type L1 struct {
	CoreID int
	Node   noc.NodeID

	net      noc.Network
	linkBits int
	pool     *noc.PacketPool
	idBase   uint64
	pktSeq   uint64

	iArr, dArr     *cache.Array
	iState, dState []LineState
	mshrs          *cache.MSHRFile

	home   func(line uint64) (noc.NodeID, int)
	l1Node func(core int) noc.NodeID

	onFill func(now sim.Cycle, line uint64, instr, write bool)
	inbox  sim.Queue[Msg]

	Stats L1Stats
}

// L1Config sizes an L1 controller.
type L1Config struct {
	ISizeBytes, IWays int
	DSizeBytes, DWays int
	MSHRs             int
	LinkBits          int
}

// DefaultL1Config returns the Table 1 core cache configuration: 32KB L1-I,
// 32KB L1-D, and a 16-entry miss file matching the LSQ size.
func DefaultL1Config() L1Config {
	return L1Config{ISizeBytes: 32 << 10, IWays: 2, DSizeBytes: 32 << 10, DWays: 2, MSHRs: 16, LinkBits: 128}
}

// NewL1 builds a controller for core coreID attached at network node. pool
// recycles this node's delivered packets into the controller's sends; nil
// gives the controller a private pool.
func NewL1(coreID int, node noc.NodeID, net noc.Network, cfg L1Config, pool *noc.PacketPool,
	home func(line uint64) (noc.NodeID, int), l1Node func(core int) noc.NodeID) *L1 {
	ia := cache.NewArray(cfg.ISizeBytes, cfg.IWays)
	da := cache.NewArray(cfg.DSizeBytes, cfg.DWays)
	if pool == nil {
		pool = &noc.PacketPool{}
	}
	return &L1{
		CoreID:   coreID,
		Node:     node,
		net:      net,
		linkBits: cfg.LinkBits,
		pool:     pool,
		idBase:   noc.PacketIDBase(noc.PktTagL1, coreID),
		iArr:     ia,
		dArr:     da,
		iState:   make([]LineState, ia.Lines()),
		dState:   make([]LineState, da.Lines()),
		mshrs:    cache.NewMSHRFile(cfg.MSHRs),
		home:     home,
		l1Node:   l1Node,
	}
}

// SetFillListener registers the core's fill callback.
func (l *L1) SetFillListener(fn func(now sim.Cycle, line uint64, instr, write bool)) {
	l.onFill = fn
}

// Deliver is the network delivery callback for this controller.
func (l *L1) Deliver(m Msg) { l.inbox.Push(m) }

// OutstandingMisses returns the number of live MSHRs.
func (l *L1) OutstandingMisses() int { return l.mshrs.Len() }

// Access performs one memory operation against the L1 at cycle now.
func (l *L1) Access(now sim.Cycle, line uint64, kind AccessKind) Outcome {
	instr := kind == Ifetch
	arr, states := l.arrays(instr)
	switch kind {
	case Ifetch:
		l.Stats.IfetchAccesses++
	case Load:
		l.Stats.LoadAccesses++
	case Store:
		l.Stats.StoreAccesses++
	}
	if slot, hit := arr.Lookup(line); hit {
		if kind == Store && states[slot] != StateM {
			// Upgrade: needs exclusive ownership.
			return l.miss(now, line, kind)
		}
		return Hit
	}
	return l.miss(now, line, kind)
}

func (l *L1) miss(now sim.Cycle, line uint64, kind AccessKind) Outcome {
	if m, ok := l.mshrs.Get(line); ok {
		m.Waiters++
		return MissMerged
	}
	if l.mshrs.Full() {
		// Back-pressure retries must not inflate the miss counters.
		return Blocked
	}
	switch kind {
	case Ifetch:
		l.Stats.IfetchMisses++
	case Load:
		l.Stats.LoadMisses++
	case Store:
		l.Stats.StoreMisses++
	}
	write := kind == Store
	l.mshrs.Alloc(line, write, kind == Ifetch)
	t := GetS
	if write {
		t = GetX
	}
	node, bank := l.home(line)
	l.send(now, node, Msg{Type: t, Addr: line, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
	return Miss
}

// BindWaker implements sim.WakeBinder: the delivery inbox is the
// controller's wake source.
func (l *L1) BindWaker(w sim.Waker) { l.inbox.SetWaker(w) }

// NextWake implements sim.Sleeper: the controller is purely reactive — it
// only ever drains its inbox (core-driven Accesses run synchronously inside
// the core's tick and need no controller cycle).
func (l *L1) NextWake(now sim.Cycle) sim.Cycle {
	if l.inbox.Len() > 0 {
		return now + 1
	}
	return sim.NeverWake
}

// Tick drains delivered protocol messages.
func (l *L1) Tick(now sim.Cycle) {
	for {
		m, ok := l.inbox.Pop()
		if !ok {
			return
		}
		l.handle(now, m)
	}
}

func (l *L1) handle(now sim.Cycle, m Msg) {
	switch m.Type {
	case Data:
		l.fill(now, m.Addr, StateS)
	case DataEx, AckEx:
		l.fill(now, m.Addr, StateM)
	case FwdData:
		st := StateS
		if mshr, ok := l.mshrs.Get(m.Addr); ok && mshr.IsWrite {
			st = StateM
		}
		l.fill(now, m.Addr, st)
	case FwdGetS:
		l.Stats.SnoopsReceived++
		// Forward the line to the requester and write it back to the
		// directory; downgrade to S. Responds even if the line was lost to
		// a racing eviction (timing-only race tolerance; see package doc).
		l.send(now, l.l1Node(m.Req), Msg{Type: FwdData, Addr: m.Addr, Dst: AgentL1, DstID: m.Req, SrcID: l.CoreID})
		node, bank := l.home(m.Addr)
		l.send(now, node, Msg{Type: CopyBack, Addr: m.Addr, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
		if slot, hit := l.dArr.Probe(m.Addr); hit {
			l.dState[slot] = StateS
		}
	case FwdGetX:
		l.Stats.SnoopsReceived++
		l.send(now, l.l1Node(m.Req), Msg{Type: FwdData, Addr: m.Addr, Dst: AgentL1, DstID: m.Req, SrcID: l.CoreID})
		node, bank := l.home(m.Addr)
		l.send(now, node, Msg{Type: FwdAck, Addr: m.Addr, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
		l.invalidate(m.Addr)
	case Inv:
		l.Stats.SnoopsReceived++
		l.invalidate(m.Addr)
		node, bank := l.home(m.Addr)
		l.send(now, node, Msg{Type: InvAck, Addr: m.Addr, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
	case Recall:
		l.Stats.SnoopsReceived++
		l.invalidate(m.Addr)
		node, bank := l.home(m.Addr)
		l.send(now, node, Msg{Type: RecallAck, Addr: m.Addr, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
	default:
		panic(fmt.Sprintf("coherence: L1 %d received unexpected %v", l.CoreID, m.Type))
	}
}

// fill installs a line on miss completion and wakes the core.
func (l *L1) fill(now sim.Cycle, line uint64, st LineState) {
	mshr, ok := l.mshrs.Get(line)
	if !ok {
		// A fill for a line we no longer track (e.g. duplicate response
		// after a race): drop.
		return
	}
	instr := mshr.Instr
	write := mshr.IsWrite
	squashed := mshr.Squashed
	l.mshrs.Free(line)
	l.Stats.Fills++

	if squashed {
		// The line was invalidated while the fill was in flight: deliver
		// the data to the core (it consumes the value) but do not install.
		if l.onFill != nil {
			l.onFill(now, line, instr, write)
		}
		return
	}
	arr, states := l.arrays(instr)
	if slot, hit := arr.Probe(line); hit {
		// Upgrade completion: the S copy is already resident.
		states[slot] = st
	} else {
		slot, victim, evicted := arr.Insert(line)
		if evicted && states[slot] == StateM && !instr {
			// Dirty victim: write back. Instruction lines are read-only.
			node, bank := l.home(victim)
			l.send(now, node, Msg{Type: PutM, Addr: victim, Dst: AgentDir, DstID: bank, SrcID: l.CoreID})
			l.Stats.Writebacks++
		}
		states[slot] = st
	}
	if l.onFill != nil {
		l.onFill(now, line, instr, write)
	}
}

func (l *L1) invalidate(line uint64) {
	l.iArr.Invalidate(line)
	l.dArr.Invalidate(line)
	// An invalidation that races ahead of an outstanding fill must squash
	// the install, or the core would keep a copy the directory no longer
	// tracks.
	if mshr, ok := l.mshrs.Get(line); ok {
		mshr.Squashed = true
	}
}

func (l *L1) arrays(instr bool) (*cache.Array, []LineState) {
	if instr {
		return l.iArr, l.iState
	}
	return l.dArr, l.dState
}

func (l *L1) send(now sim.Cycle, dst noc.NodeID, m Msg) {
	l.pktSeq++
	p := l.pool.Get()
	cell, _ := p.Payload.(*Msg)
	if cell == nil {
		cell = new(Msg)
		p.Payload = cell
	}
	*cell = m
	p.ID = l.idBase | l.pktSeq
	p.Class = m.Type.Class()
	p.Src = l.Node
	p.Dst = dst
	p.Size = noc.FlitsFor(m.PacketBytes(), l.linkBits)
	l.net.Send(now, p)
}

// HasLine reports whether the controller holds line (either array), for
// tests and invariant checks.
func (l *L1) HasLine(line uint64) bool {
	return l.iArr.Contains(line) || l.dArr.Contains(line)
}

// StateOf returns the data-array state of line, for tests.
func (l *L1) StateOf(line uint64) (LineState, bool) {
	if slot, hit := l.dArr.Probe(line); hit {
		return l.dState[slot], true
	}
	return 0, false
}

// PrewarmData functionally installs line into the L1-D in state st
// (warmed-checkpoint methodology; call before simulation starts).
func (l *L1) PrewarmData(line uint64, st LineState) {
	if slot, hit := l.dArr.Probe(line); hit {
		l.dState[slot] = st
		return
	}
	slot, _, _ := l.dArr.Insert(line)
	l.dState[slot] = st
}

// PrewarmInstr functionally installs line into the L1-I (state S).
func (l *L1) PrewarmInstr(line uint64) {
	if _, hit := l.iArr.Probe(line); hit {
		return
	}
	slot, _, _ := l.iArr.Insert(line)
	l.iState[slot] = StateS
}
