package coherence

import (
	"fmt"

	"nocout/internal/cache"
	"nocout/internal/noc"
	"nocout/internal/sim"
)

// DirStats counts directory/LLC-bank activity; Figure 4's snoop rate is
// SnoopAccesses / Accesses.
type DirStats struct {
	Accesses      int64 // demand GetS+GetX processed
	Hits          int64
	Misses        int64
	SnoopAccesses int64 // demand accesses that triggered >= 1 snoop
	SnoopMsgs     int64 // demand snoop messages sent (Fwd*, Inv)
	BackInvals    int64 // fire-and-forget invalidations on LLC evictions
	Recalls       int64
	Writebacks    int64 // PutM received
	MemReads      int64
	MemWrites     int64
}

// Add accumulates o into s (for chip-level aggregation).
func (s *DirStats) Add(o DirStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.SnoopAccesses += o.SnoopAccesses
	s.SnoopMsgs += o.SnoopMsgs
	s.BackInvals += o.BackInvals
	s.Recalls += o.Recalls
	s.Writebacks += o.Writebacks
	s.MemReads += o.MemReads
	s.MemWrites += o.MemWrites
}

// SnoopRate returns the fraction of LLC accesses that triggered a snoop.
func (s *DirStats) SnoopRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.SnoopAccesses) / float64(s.Accesses)
}

// MissRate returns the LLC miss rate.
func (s *DirStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type transState uint8

const (
	tWaitMem transState = iota
	tWaitCopyBack
	tWaitFwdAck
	tWaitInvAcks
	tWaitRecall
)

type trans struct {
	origin       Msg
	state        transState
	acksLeft     int
	reqWasSharer bool
	victim       uint64 // line being recalled (tWaitRecall)
	hasVictim    bool
	pending      []Msg // demand requests queued behind this line
}

// Bank is one LLC bank with its slice of the directory. It services demand
// requests at one per cycle through an access pipeline of AccessLat cycles
// and serializes transactions per line.
type Bank struct {
	BankID int
	Node   noc.NodeID

	net      noc.Network
	linkBits int
	pool     *noc.PacketPool
	idBase   uint64
	pktSeq   uint64

	arr     *cache.Array
	sharers []Bitset
	owner   []int32
	dirty   []bool

	stride uint64 // bank interleave factor
	phase  uint64 // this bank's residue mod stride

	busy   map[uint64]*trans
	freeTr []*trans // recycled transactions (steady state allocates none)
	reqQ   sim.Queue[Msg]
	inPipe *sim.Pipe[Msg]
	inbox  sim.Queue[Msg]

	mcNode   func(line uint64) (noc.NodeID, int)
	l1Node   func(core int) noc.NodeID
	numCores int

	Stats DirStats
}

// BankConfig sizes an LLC bank. The bank no longer assumes a global
// modulo interleave: the memory hierarchy that places it injects the
// line-compaction parameters (Stride/Phase) to match its home mapping.
type BankConfig struct {
	SizeBytes int
	Ways      int
	AccessLat sim.Cycle // tag+data pipeline depth (default 4)
	LinkBits  int
	NumCores  int
	// Interleave is the number of banks lines are striped across
	// (bank = line mod Interleave). The bank strips those bits before set
	// indexing so its full set count is usable. Default 1.
	Interleave int
	// Stride/Phase, when Stride is non-zero, override the Interleave
	// derivation (stride = Interleave, phase = bankID mod Interleave): the
	// bank owns exactly the lines with line mod Stride == Phase and
	// compacts them by Stride before set indexing. Hierarchies whose home
	// mapping is not an arithmetic progression (XOR-hashed, region-affine,
	// private slices) set Stride 1 / Phase 0 so every line is accepted
	// as-is and the hashed set index does the spreading.
	Stride, Phase uint64
}

// NewBank builds an LLC bank/directory controller. pool recycles this
// node's delivered packets into the bank's sends; nil gives it a private
// pool.
func NewBank(bankID int, node noc.NodeID, net noc.Network, cfg BankConfig, pool *noc.PacketPool,
	mcNode func(line uint64) (noc.NodeID, int), l1Node func(core int) noc.NodeID) *Bank {
	if cfg.AccessLat < 1 {
		cfg.AccessLat = 4
	}
	if cfg.Interleave < 1 {
		cfg.Interleave = 1
	}
	stride, phase := cfg.Stride, cfg.Phase
	if stride == 0 {
		stride = uint64(cfg.Interleave)
		phase = uint64(bankID % cfg.Interleave)
	}
	if phase >= stride {
		panic(fmt.Sprintf("coherence: bank %d phase %d out of range for stride %d", bankID, phase, stride))
	}
	arr := cache.NewArray(cfg.SizeBytes, cfg.Ways)
	arr.SetHash(true)
	if pool == nil {
		pool = &noc.PacketPool{}
	}
	b := &Bank{
		BankID:   bankID,
		Node:     node,
		stride:   stride,
		phase:    phase,
		net:      net,
		linkBits: cfg.LinkBits,
		pool:     pool,
		idBase:   noc.PacketIDBase(noc.PktTagDir, bankID),
		arr:      arr,
		sharers:  make([]Bitset, arr.Lines()),
		owner:    make([]int32, arr.Lines()),
		dirty:    make([]bool, arr.Lines()),
		busy:     make(map[uint64]*trans),
		inPipe:   sim.NewPipe[Msg](fmt.Sprintf("llc.bank%d.access", bankID), cfg.AccessLat),
		mcNode:   mcNode,
		l1Node:   l1Node,
		numCores: cfg.NumCores,
	}
	for i := range b.sharers {
		b.sharers[i] = NewBitset(cfg.NumCores)
		b.owner[i] = -1
	}
	return b
}

// aline converts a chip-wide line address to this bank's array index space
// (stripping the interleave bits so all sets are usable).
func (b *Bank) aline(line uint64) uint64 {
	if line%b.stride != b.phase {
		panic(fmt.Sprintf("coherence: line %#x does not belong to bank %d (stride %d phase %d)",
			line, b.BankID, b.stride, b.phase))
	}
	return line / b.stride
}

// fullLine is the inverse of aline.
func (b *Bank) fullLine(aline uint64) uint64 { return aline*b.stride + b.phase }

// Deliver is the network delivery callback for this bank.
func (b *Bank) Deliver(m Msg) { b.inbox.Push(m) }

// PendingWork reports whether the bank still has queued or in-flight work.
func (b *Bank) PendingWork() bool {
	return b.inbox.Len() > 0 || b.reqQ.Len() > 0 || b.inPipe.Len() > 0 || len(b.busy) > 0
}

// BindWaker implements sim.WakeBinder: the delivery inbox, the per-line
// retry queue and the access pipeline are the bank's wake sources.
func (b *Bank) BindWaker(w sim.Waker) {
	b.inbox.SetWaker(w)
	b.reqQ.SetWaker(w)
	b.inPipe.SetWaker(w)
}

// NextWake implements sim.Sleeper: awake while queued messages wait to
// enter the access pipeline, then again when the pipeline's oldest access
// completes; otherwise the bank waits on the network (open transactions in
// busy have nothing to do until a response lands in the inbox).
func (b *Bank) NextWake(now sim.Cycle) sim.Cycle {
	if b.inbox.Len() > 0 || b.reqQ.Len() > 0 {
		return now + 1
	}
	if at, ok := b.inPipe.NextAt(); ok {
		return at
	}
	return sim.NeverWake
}

// BusyLines returns the number of lines with an open transaction (state
// hashing and diagnostics).
func (b *Bank) BusyLines() int { return len(b.busy) }

// Tick advances the bank: one new message enters the access pipeline per
// cycle; completed accesses run the protocol logic.
func (b *Bank) Tick(now sim.Cycle) {
	for {
		m, ok := b.inbox.Pop()
		if !ok {
			break
		}
		b.reqQ.Push(m)
	}
	if m, ok := b.reqQ.Pop(); ok {
		b.inPipe.Push(now, m)
	}
	for {
		m, ok := b.inPipe.Pop(now)
		if !ok {
			break
		}
		b.process(now, m)
	}
}

func isDemand(t MsgType) bool { return t == GetS || t == GetX || t == PutM }

func (b *Bank) process(now sim.Cycle, m Msg) {
	if isDemand(m.Type) {
		if tr, ok := b.busy[m.Addr]; ok {
			tr.pending = append(tr.pending, m)
			return
		}
	}
	switch m.Type {
	case GetS:
		b.Stats.Accesses++
		b.handleGetS(now, m)
	case GetX:
		b.Stats.Accesses++
		b.handleGetX(now, m)
	case PutM:
		b.Stats.Writebacks++
		if slot, hit := b.arr.Probe(b.aline(m.Addr)); hit {
			b.dirty[slot] = true
			if b.owner[slot] == int32(m.SrcID) {
				b.owner[slot] = -1
			}
		}
	case MemData:
		b.handleMemData(now, m)
	case CopyBack:
		tr := b.mustTrans(m.Addr, tWaitCopyBack)
		slot, hit := b.arr.Probe(b.aline(m.Addr))
		if hit {
			b.dirty[slot] = true
			b.owner[slot] = -1
			b.sharers[slot].Set(m.SrcID)
			b.sharers[slot].Set(tr.origin.SrcID)
		}
		// Requester's data comes via the owner's FwdData; nothing to send.
		b.finish(now, m.Addr, tr)
	case FwdAck:
		tr := b.mustTrans(m.Addr, tWaitFwdAck)
		if slot, hit := b.arr.Probe(b.aline(m.Addr)); hit {
			b.owner[slot] = int32(tr.origin.SrcID)
			b.sharers[slot].Reset()
			b.dirty[slot] = true // line is dirty somewhere off-chip view
		}
		b.finish(now, m.Addr, tr)
	case InvAck:
		tr, ok := b.busy[m.Addr]
		if !ok || tr.state != tWaitInvAcks {
			return // unsolicited ack from a fire-and-forget back-inval
		}
		tr.acksLeft--
		if tr.acksLeft > 0 {
			return
		}
		if slot, hit := b.arr.Probe(b.aline(m.Addr)); hit {
			b.owner[slot] = int32(tr.origin.SrcID)
			b.sharers[slot].Reset()
		}
		t := DataEx
		if tr.reqWasSharer {
			t = AckEx
		}
		b.reply(now, tr.origin.SrcID, Msg{Type: t, Addr: m.Addr, Dst: AgentL1, DstID: tr.origin.SrcID, SrcID: b.BankID})
		b.finish(now, m.Addr, tr)
	case RecallAck:
		b.handleRecallAck(now, m)
	default:
		panic(fmt.Sprintf("coherence: bank %d received unexpected %v", b.BankID, m.Type))
	}
}

func (b *Bank) handleGetS(now sim.Cycle, m Msg) {
	slot, hit := b.arr.Lookup(b.aline(m.Addr))
	if !hit {
		b.Stats.Misses++
		tr := b.newTrans()
		tr.origin, tr.state = m, tWaitMem
		b.busy[m.Addr] = tr
		b.sendMemRead(now, m.Addr)
		return
	}
	b.Stats.Hits++
	own := b.owner[slot]
	if own >= 0 && own != int32(m.SrcID) {
		b.Stats.SnoopAccesses++
		b.Stats.SnoopMsgs++
		tr := b.newTrans()
		tr.origin, tr.state = m, tWaitCopyBack
		b.busy[m.Addr] = tr
		b.reply(now, int(own), Msg{Type: FwdGetS, Addr: m.Addr, Dst: AgentL1, DstID: int(own), SrcID: b.BankID, Req: m.SrcID})
		return
	}
	if own == int32(m.SrcID) {
		// Racy re-request from the owner; regrant exclusivity.
		b.reply(now, m.SrcID, Msg{Type: DataEx, Addr: m.Addr, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
		return
	}
	b.sharers[slot].Set(m.SrcID)
	b.reply(now, m.SrcID, Msg{Type: Data, Addr: m.Addr, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
}

func (b *Bank) handleGetX(now sim.Cycle, m Msg) {
	slot, hit := b.arr.Lookup(b.aline(m.Addr))
	if !hit {
		b.Stats.Misses++
		tr := b.newTrans()
		tr.origin, tr.state = m, tWaitMem
		b.busy[m.Addr] = tr
		b.sendMemRead(now, m.Addr)
		return
	}
	b.Stats.Hits++
	own := b.owner[slot]
	if own >= 0 && own != int32(m.SrcID) {
		b.Stats.SnoopAccesses++
		b.Stats.SnoopMsgs++
		tr := b.newTrans()
		tr.origin, tr.state = m, tWaitFwdAck
		b.busy[m.Addr] = tr
		b.reply(now, int(own), Msg{Type: FwdGetX, Addr: m.Addr, Dst: AgentL1, DstID: int(own), SrcID: b.BankID, Req: m.SrcID})
		return
	}
	if own == int32(m.SrcID) {
		b.reply(now, m.SrcID, Msg{Type: AckEx, Addr: m.Addr, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
		return
	}
	wasSharer := b.sharers[slot].Has(m.SrcID)
	others := 0
	b.sharers[slot].ForEach(func(id int) {
		if id != m.SrcID {
			others++
		}
	})
	if others > 0 {
		b.Stats.SnoopAccesses++
		tr := b.newTrans()
		tr.origin, tr.state = m, tWaitInvAcks
		tr.acksLeft, tr.reqWasSharer = others, wasSharer
		b.busy[m.Addr] = tr
		b.sharers[slot].ForEach(func(id int) {
			if id == m.SrcID {
				return
			}
			b.Stats.SnoopMsgs++
			b.reply(now, id, Msg{Type: Inv, Addr: m.Addr, Dst: AgentL1, DstID: id, SrcID: b.BankID})
		})
		return
	}
	b.owner[slot] = int32(m.SrcID)
	b.sharers[slot].Reset()
	t := DataEx
	if wasSharer {
		t = AckEx
	}
	b.reply(now, m.SrcID, Msg{Type: t, Addr: m.Addr, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
}

func (b *Bank) handleMemData(now sim.Cycle, m Msg) {
	tr := b.mustTrans(m.Addr, tWaitMem)
	b.insertAndComplete(now, m.Addr, tr)
}

// insertAndComplete installs the filled line, recalling an owned victim
// first if necessary, then completes the original request.
func (b *Bank) insertAndComplete(now sim.Cycle, line uint64, tr *trans) {
	slotV, victimA, had := b.arr.VictimOf(b.aline(line))
	victim := b.fullLine(victimA)
	if had {
		if _, victimBusy := b.busy[victim]; victimBusy {
			// The victim is mid-transaction (being recalled by another
			// fill, or serving a forward). Claiming it now would corrupt
			// that transaction; retry this fill once the victim settles.
			tr.state = tWaitMem
			b.reqQ.Push(Msg{Type: MemData, Addr: line, Dst: AgentDir, DstID: b.BankID})
			return
		}
	}
	if had && b.owner[slotV] >= 0 {
		// The victim is dirty in some L1: recall it before dropping.
		b.Stats.Recalls++
		b.Stats.SnoopMsgs++
		own := int(b.owner[slotV])
		tr.state = tWaitRecall
		tr.victim = victim
		tr.hasVictim = true
		b.busy[victim] = tr
		b.reply(now, own, Msg{Type: Recall, Addr: victim, Dst: AgentL1, DstID: own, SrcID: b.BankID})
		return
	}
	if had {
		if b.dirty[slotV] {
			b.Stats.MemWrites++
			b.sendMC(now, Msg{Type: MemWrite, Addr: victim, SrcID: b.BankID})
		}
		if b.sharers[slotV].Count() > 0 {
			b.sharers[slotV].ForEach(func(id int) {
				b.Stats.BackInvals++
				b.reply(now, id, Msg{Type: Inv, Addr: victim, Dst: AgentL1, DstID: id, SrcID: b.BankID})
			})
		}
		b.arr.Invalidate(b.aline(victim))
	}
	slot, _, evicted := b.arr.Insert(b.aline(line))
	if evicted {
		panic("coherence: victim handling should have freed a way")
	}
	b.sharers[slot].Reset()
	b.owner[slot] = -1
	b.dirty[slot] = false

	// Complete the original request on the now-resident line.
	m := tr.origin
	switch m.Type {
	case GetS:
		b.sharers[slot].Set(m.SrcID)
		b.reply(now, m.SrcID, Msg{Type: Data, Addr: line, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
	case GetX:
		b.owner[slot] = int32(m.SrcID)
		b.reply(now, m.SrcID, Msg{Type: DataEx, Addr: line, Dst: AgentL1, DstID: m.SrcID, SrcID: b.BankID})
	default:
		panic(fmt.Sprintf("coherence: fill completing unexpected %v", m.Type))
	}
	b.finish(now, line, tr)
}

func (b *Bank) handleRecallAck(now sim.Cycle, m Msg) {
	tr, ok := b.busy[m.Addr]
	if !ok || tr.state != tWaitRecall || !tr.hasVictim || tr.victim != m.Addr {
		return
	}
	delete(b.busy, m.Addr) // release the victim key
	// The recalled data is dirty: write it back, then free the way.
	if _, hit := b.arr.Probe(b.aline(m.Addr)); hit {
		b.Stats.MemWrites++
		b.sendMC(now, Msg{Type: MemWrite, Addr: m.Addr, SrcID: b.BankID})
		b.arr.Invalidate(b.aline(m.Addr))
	}
	tr.state = tWaitMem // re-enter the insert path
	b.insertAndComplete(now, tr.origin.Addr, tr)
}

// mustTrans fetches the transaction for line, asserting its state.
func (b *Bank) mustTrans(line uint64, st transState) *trans {
	tr, ok := b.busy[line]
	if !ok || tr.state != st {
		panic(fmt.Sprintf("coherence: bank %d: no transaction in state %d for line %#x", b.BankID, st, line))
	}
	return tr
}

// newTrans returns a zeroed transaction from the bank's free list. finish
// recycles every transaction it closes, so misses in the steady state reuse
// the same handful of trans structs (and their pending-queue capacity)
// instead of allocating per miss.
func (b *Bank) newTrans() *trans {
	n := len(b.freeTr)
	if n == 0 {
		return &trans{}
	}
	tr := b.freeTr[n-1]
	b.freeTr[n-1] = nil
	b.freeTr = b.freeTr[:n-1]
	return tr
}

// finish closes a transaction, requeues any requests that piled up behind
// the line, and recycles the transaction struct.
func (b *Bank) finish(now sim.Cycle, line uint64, tr *trans) {
	delete(b.busy, line)
	if tr.hasVictim {
		if vt, ok := b.busy[tr.victim]; ok && vt == tr {
			delete(b.busy, tr.victim)
		}
	}
	for _, m := range tr.pending {
		b.reqQ.Push(m)
	}
	pending := tr.pending[:0]
	*tr = trans{pending: pending}
	b.freeTr = append(b.freeTr, tr)
}

func (b *Bank) sendMemRead(now sim.Cycle, line uint64) {
	b.Stats.MemReads++
	b.sendMC(now, Msg{Type: MemRead, Addr: line, SrcID: b.BankID})
}

func (b *Bank) sendMC(now sim.Cycle, m Msg) {
	node, ch := b.mcNode(m.Addr)
	m.Dst = AgentMC
	m.DstID = ch
	b.send(now, node, m)
}

func (b *Bank) reply(now sim.Cycle, core int, m Msg) {
	b.send(now, b.l1Node(core), m)
}

func (b *Bank) send(now sim.Cycle, dst noc.NodeID, m Msg) {
	b.pktSeq++
	p := b.pool.Get()
	cell, _ := p.Payload.(*Msg)
	if cell == nil {
		cell = new(Msg)
		p.Payload = cell
	}
	*cell = m
	p.ID = b.idBase | b.pktSeq
	p.Class = m.Type.Class()
	p.Src = b.Node
	p.Dst = dst
	p.Size = noc.FlitsFor(m.PacketBytes(), b.linkBits)
	b.net.Send(now, p)
}

// Resident reports whether line is in this bank (tests).
func (b *Bank) Resident(line uint64) bool { return b.arr.Contains(b.aline(line)) }

// OwnerOf returns the owning core of line, or -1 (tests).
func (b *Bank) OwnerOf(line uint64) int {
	if slot, hit := b.arr.Probe(b.aline(line)); hit {
		return int(b.owner[slot])
	}
	return -1
}

// SharerCount returns the number of recorded sharers of line (tests).
func (b *Bank) SharerCount(line uint64) int {
	if slot, hit := b.arr.Probe(b.aline(line)); hit {
		return b.sharers[slot].Count()
	}
	return 0
}

// StuckTransactions returns a debug description of live transactions
// (diagnostics for tests and tools).
func (b *Bank) StuckTransactions() []string {
	var out []string
	for line, tr := range b.busy {
		out = append(out, fmt.Sprintf("bank %d line %#x state %d acksLeft %d origin %v from core %d pending %d",
			b.BankID, line, tr.state, tr.acksLeft, tr.origin.Type, tr.origin.SrcID, len(tr.pending)))
	}
	return out
}

// PrewarmShared functionally installs line as a clean LLC-resident line
// with no sharers, modelling the paper's warmed-cache checkpoints. It must
// only be called before simulation starts. Lines whose set is already full
// are left cold (they will fault in during the timing warm-up) and the
// function reports false.
func (b *Bank) PrewarmShared(line uint64) bool {
	a := b.aline(line)
	if b.arr.Contains(a) {
		return true
	}
	if _, _, full := b.arr.VictimOf(a); full {
		return false
	}
	slot, _, _ := b.arr.Insert(a)
	b.sharers[slot].Reset()
	b.owner[slot] = -1
	b.dirty[slot] = false
	return true
}

// PrewarmOwned functionally installs line owned (M) by core, reporting
// false if the set had no free way.
func (b *Bank) PrewarmOwned(line uint64, core int) bool {
	if !b.PrewarmShared(line) {
		return false
	}
	slot, _ := b.arr.Probe(b.aline(line))
	b.owner[slot] = int32(core)
	return true
}
