// Package coherence implements the chip's directory-based cache-coherence
// protocol: per-core L1 controllers and per-bank LLC+directory controllers
// exchanging the paper's three message classes (data requests, snoop
// requests, responses) over any noc.Network.
//
// The protocol is MSI with a full bit-vector directory embedded in the LLC
// (an LLC "slice is composed of data, tags, and directory", §4.3). The
// directory serializes transactions per line. The simulator is timing-only:
// tags, states and message flows are exact; data values are not carried.
//
// Race tolerance: writeback/forward races that full protocols resolve with
// transient states are resolved here by making L1s respond to any snoop
// regardless of local state, which preserves message counts and timing
// while keeping the state machines small. Back-invalidations sent when the
// LLC evicts a line with sharers are fire-and-forget.
package coherence

import (
	"nocout/internal/noc"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// Requests (core -> directory, directory -> memory).
	GetS    MsgType = iota // read (instruction fetch or load)
	GetX                   // write / read-for-ownership
	MemRead                // LLC miss fill request to a memory channel

	// Snoops (directory -> core).
	FwdGetS // owner must forward data to requester and downgrade to S
	FwdGetX // owner must forward data to requester and invalidate
	Inv     // sharer must invalidate and ack
	Recall  // owner must write back and invalidate (LLC victim recall)

	// Responses.
	Data     // LLC data to requester (grants S)
	DataEx   // LLC data to requester (grants M)
	AckEx    // upgrade grant without data (requester already has S copy)
	FwdData  // owner's data to requester
	CopyBack // owner's data back to the directory after FwdGetS
	FwdAck   // owner's ack to the directory after FwdGetX
	InvAck   // sharer's ack after Inv
	PutM     // dirty L1 writeback to the directory
	RecallAck
	MemWrite // dirty LLC victim to memory
	MemData  // memory fill to the LLC
)

// String returns the message mnemonic.
func (t MsgType) String() string {
	names := [...]string{
		"GetS", "GetX", "MemRead",
		"FwdGetS", "FwdGetX", "Inv", "Recall",
		"Data", "DataEx", "AckEx", "FwdData", "CopyBack", "FwdAck",
		"InvAck", "PutM", "RecallAck", "MemWrite", "MemData",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return "Msg(?)"
}

// Class returns the virtual-channel class a message type travels in; the
// request/snoop/response split guarantees protocol deadlock freedom (§4.1).
func (t MsgType) Class() noc.Class {
	switch t {
	case GetS, GetX, MemRead:
		return noc.ClassReq
	case FwdGetS, FwdGetX, Inv, Recall:
		return noc.ClassSnoop
	default:
		return noc.ClassResp
	}
}

// CarriesData reports whether the message carries a full cache line (and
// therefore serializes as a multi-flit packet).
func (t MsgType) CarriesData() bool {
	switch t {
	case Data, DataEx, FwdData, CopyBack, PutM, RecallAck, MemWrite, MemData:
		return true
	}
	return false
}

// Agent identifies the kind of protocol endpoint a message targets;
// several agents can share one network node (e.g. a memory controller on an
// LLC tile).
type Agent uint8

// Agent kinds.
const (
	AgentL1  Agent = iota // a core's L1 controller (DstID = core id)
	AgentDir              // an LLC bank directory (DstID = bank id)
	AgentMC               // a memory channel (DstID = channel id)
)

// Msg is the protocol payload carried by network packets.
type Msg struct {
	Type  MsgType
	Addr  uint64 // line address
	Dst   Agent
	DstID int
	SrcID int // sender's agent id (core/bank/channel, by context)
	Req   int // original requesting core (forwards and fills)
}

// PacketBytes returns the payload bytes the message occupies on a link.
func (m Msg) PacketBytes() int {
	if m.Type.CarriesData() {
		return 64
	}
	return 0
}
