package chip

import (
	"fmt"
	"io"

	"nocout/internal/ckpt"
	"nocout/internal/coherence"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
	"nocout/internal/workload"
)

// Warm-state checkpointing: Snapshot serializes the complete behavioral
// state of a chip at a step boundary into a ckpt container; Restore
// rebuilds a runnable chip from the same (config, workload) pair and a
// snapshot, at the measurement boundary — all measurement counters are
// zeroed through the same resetMeasurementStats path Warmup uses, so a
// chip restored from a post-Warmup snapshot has a StateHash equal to the
// donor's and executes cycle-for-cycle bit-identically thereafter.
//
// Checkpoints are domain-count-agnostic: pipe state is serialized in
// consumer-visible order (staged cross-domain entries included), so a
// snapshot taken under one sim-parallelism setting restores under any
// other. Sharded donors snapshot at horizon barriers (between Steps),
// which is the only time their state is globally consistent.

// Section kinds of a chip checkpoint container.
const (
	secMeta  uint64 = 1
	secCores uint64 = 2
	secL1s   uint64 = 3
	secBanks uint64 = 4
	secMCs   uint64 = 5
	secNet   uint64 = 6
)

// putMsgPayload encodes a packet's protocol payload (nil or a
// *coherence.Msg cell).
func putMsgPayload(e *ckpt.Enc, payload any) {
	m, ok := payload.(*coherence.Msg)
	if !ok || m == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	coherence.EncodeMsg(e, *m)
}

func getMsgPayload(d *ckpt.Dec) any {
	if !d.Bool() {
		return nil
	}
	m := new(coherence.Msg)
	*m = coherence.DecodeMsg(d)
	return m
}

// netSaver matches network implementations whose in-flight state can be
// checkpointed with a payload codec.
type netSaver interface {
	SaveState(e *ckpt.Enc, put noc.PayloadEnc)
	LoadState(d *ckpt.Dec, get noc.PayloadDec)
}

// netState resolves the chip's network to its checkpointable form: the
// router network behind any RN()-exposing implementation (mesh, torus,
// cmesh, fbfly, NOC-Out), or the ideal fabric.
func (c *Chip) netState() (netSaver, error) {
	if v, ok := c.Net.(interface{ RN() *noc.RouterNetwork }); ok {
		return v.RN(), nil
	}
	if id, ok := c.Net.(*topo.Ideal); ok {
		return id, nil
	}
	return nil, fmt.Errorf("chip: network %T does not support checkpointing", c.Net)
}

// Snapshot writes the chip's complete behavioral state to w. The chip
// must be between steps (sharded chips: at a horizon barrier, which
// Warmup/Run always end on). Measurement statistics are not part of a
// snapshot — Restore re-zeroes them — so Snapshot is meant for the
// measurement boundary right after Warmup.
func (c *Chip) Snapshot(w io.Writer) error {
	ns, err := c.netState()
	if err != nil {
		return err
	}
	// Settle every component's lazy accounting at the snapshot cycle, so
	// each serialized lastSeen equals the snapshot cycle and the restored
	// chip's first (re-armed) tick replays no catch-up window.
	c.FlushAll()

	cw := ckpt.NewWriter(w)
	var e ckpt.Enc

	e.Reset()
	e.I64(int64(c.NowCycle()))
	e.U64(uint64(c.Cfg.Design))
	e.U64(uint64(c.Cfg.Hierarchy))
	e.Int(c.Cfg.Cores)
	e.U64(c.Cfg.Seed)
	e.Int(c.active)
	e.Int(len(c.Banks))
	e.Int(len(c.MCs))
	cw.Section(secMeta, e.Bytes())

	e.Reset()
	for _, co := range c.Cores {
		co.SaveState(&e)
		sv, ok := co.Stream().(ckpt.Saver)
		if !ok {
			return fmt.Errorf("chip: core %d stream %T does not support checkpointing", co.ID, co.Stream())
		}
		sv.SaveState(&e)
	}
	cw.Section(secCores, e.Bytes())

	e.Reset()
	for _, l1 := range c.L1s {
		l1.SaveState(&e)
	}
	cw.Section(secL1s, e.Bytes())

	e.Reset()
	for _, b := range c.Banks {
		b.SaveState(&e)
	}
	cw.Section(secBanks, e.Bytes())

	e.Reset()
	for _, mc := range c.MCs {
		mc.SaveState(&e)
	}
	cw.Section(secMCs, e.Bytes())

	e.Reset()
	ns.SaveState(&e, putMsgPayload)
	cw.Section(secNet, e.Bytes())

	return cw.Err()
}

// Restore builds a chip for (cfg, w, domains) — exactly as NewSharded
// would — and loads a snapshot into it. The snapshot must come from a
// chip built with the same config and workload; the domain count is free
// to differ (checkpoints are kernel-agnostic). The returned chip sits at
// the donor's snapshot cycle with measurement counters zeroed, ready for
// Run.
func Restore(cfg Config, wl workload.Workload, domains int, r io.Reader) (*Chip, error) {
	cont, err := ckpt.Read(r)
	if err != nil {
		return nil, err
	}
	c := NewSharded(cfg, wl, domains)
	if err := c.loadContainer(cont); err != nil {
		return nil, err
	}
	return c, nil
}

// Info is a checkpoint's decoded identity, for store listings and
// restore-time validation messages.
type Info struct {
	Design    Design      `json:"design"`
	Hierarchy HierarchyID `json:"hierarchy"`
	Cores     int         `json:"cores"`
	Seed      uint64      `json:"seed"`
	Active    int         `json:"active_cores"`
	Cycle     sim.Cycle   `json:"cycle"`
	Sections  int         `json:"sections"`
}

// Inspect decodes a checkpoint's meta section without building a chip —
// the cheap way to list a checkpoint store's contents.
func Inspect(r io.Reader) (Info, error) {
	cont, err := ckpt.Read(r)
	if err != nil {
		return Info{}, err
	}
	for i := 0; i < cont.Len(); i++ {
		if cont.Kind(i) != secMeta {
			continue
		}
		d, err := cont.Open(i)
		if err != nil {
			return Info{}, err
		}
		info := Info{
			Cycle:     sim.Cycle(d.I64()),
			Design:    Design(d.U64()),
			Hierarchy: HierarchyID(d.U64()),
			Cores:     d.Int(),
			Seed:      d.U64(),
			Active:    d.Int(),
			Sections:  cont.Len(),
		}
		d.Int() // bank count
		d.Int() // channel count
		if err := d.Err(); err != nil {
			return Info{}, err
		}
		return info, nil
	}
	return Info{}, fmt.Errorf("chip: checkpoint has no meta section")
}

// loadContainer loads a parsed snapshot into a freshly built chip.
func (c *Chip) loadContainer(cont *ckpt.Container) error {
	open := func(kind uint64) (*ckpt.Dec, error) {
		for i := 0; i < cont.Len(); i++ {
			if cont.Kind(i) == kind {
				return cont.Open(i)
			}
		}
		return nil, fmt.Errorf("chip: checkpoint has no section of kind %d", kind)
	}
	finish := func(kind uint64, d *ckpt.Dec) error {
		if err := d.Err(); err != nil {
			return fmt.Errorf("chip: section %d: %w", kind, err)
		}
		if d.Remaining() != 0 {
			return fmt.Errorf("chip: section %d has %d trailing bytes", kind, d.Remaining())
		}
		return nil
	}

	d, err := open(secMeta)
	if err != nil {
		return err
	}
	cycle := sim.Cycle(d.I64())
	design := Design(d.U64())
	hier := HierarchyID(d.U64())
	cores := d.Int()
	seed := d.U64()
	active := d.Int()
	banks := d.Int()
	mcs := d.Int()
	if err := finish(secMeta, d); err != nil {
		return err
	}
	if cycle < 0 {
		return fmt.Errorf("chip: checkpoint cycle %d is negative", cycle)
	}
	if design != c.Cfg.Design || hier != c.Cfg.Hierarchy || cores != c.Cfg.Cores ||
		seed != c.Cfg.Seed || active != c.active || banks != len(c.Banks) || mcs != len(c.MCs) {
		return fmt.Errorf("chip: checkpoint was taken on a different system "+
			"(design %d/%d, hierarchy %d/%d, cores %d/%d, seed %d/%d, active %d/%d, banks %d/%d, channels %d/%d)",
			design, c.Cfg.Design, hier, c.Cfg.Hierarchy, cores, c.Cfg.Cores,
			seed, c.Cfg.Seed, active, c.active, banks, len(c.Banks), mcs, len(c.MCs))
	}

	if d, err = open(secCores); err != nil {
		return err
	}
	for _, co := range c.Cores {
		co.LoadState(d)
		ld, ok := co.Stream().(ckpt.Loader)
		if !ok {
			return fmt.Errorf("chip: core %d stream %T does not support checkpointing", co.ID, co.Stream())
		}
		ld.LoadState(d)
		if d.Err() != nil {
			break
		}
	}
	if err := finish(secCores, d); err != nil {
		return err
	}

	if d, err = open(secL1s); err != nil {
		return err
	}
	for _, l1 := range c.L1s {
		l1.LoadState(d)
		if d.Err() != nil {
			break
		}
	}
	if err := finish(secL1s, d); err != nil {
		return err
	}

	if d, err = open(secBanks); err != nil {
		return err
	}
	for _, b := range c.Banks {
		b.LoadState(d)
		if d.Err() != nil {
			break
		}
	}
	if err := finish(secBanks, d); err != nil {
		return err
	}

	if d, err = open(secMCs); err != nil {
		return err
	}
	for _, mc := range c.MCs {
		mc.LoadState(d)
		if d.Err() != nil {
			break
		}
	}
	if err := finish(secMCs, d); err != nil {
		return err
	}

	ns, err := c.netState()
	if err != nil {
		return err
	}
	if d, err = open(secNet); err != nil {
		return err
	}
	ns.LoadState(d, getMsgPayload)
	if err := finish(secNet, d); err != nil {
		return err
	}

	// The restored chip sits at the measurement boundary: zero the
	// counters through the same path Warmup uses, then move the clock and
	// re-arm every component for the cycle after the snapshot.
	c.resetMeasurementStats()
	if c.Shard != nil {
		c.Shard.RestoreAt(cycle)
	} else {
		c.Engine.RestoreAt(cycle)
	}
	return nil
}
