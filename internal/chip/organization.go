package chip

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/physic"
	"nocout/internal/topo"
)

// Design selects the interconnect organization. It is a lightweight handle
// into the organization registry: the constants below name the paper's
// four, and RegisterOrganization mints handles for new ones.
type Design uint8

// The evaluated system organizations (§5.1), registered at init in this
// order so the handles are stable.
const (
	Mesh Design = iota
	FBfly
	NOCOut
	Ideal
)

// Organization is a self-describing interconnect organization: the unit of
// extension for the design space. An implementation bundles its naming,
// its default chip tuning, its network construction, and its physical
// (area + buffer-technology) model; registering it makes the design
// resolvable everywhere a Design is — CLI flags, sweeps, JSON reports.
// Implementations must be stateless: Build and AreaModel are called
// concurrently from experiment worker pools.
type Organization interface {
	// Name is the figure name ("Mesh", "NOC-Out"); it is how the design
	// prints, marshals, and is primarily parsed.
	Name() string
	// Aliases lists extra (lowercase) CLI spellings; the lowercased Name
	// is always accepted and need not be repeated.
	Aliases() []string
	// DefaultConfig returns the organization's baseline chip parameters
	// (the paper's Table 1 system); the registry fills in Config.Design.
	DefaultConfig() Config
	// Build constructs the interconnect for cfg: the network, its
	// floorplan, the auxiliary memory-channel endpoints, and the endpoint
	// layout the protocol agents attach to.
	Build(cfg Config) *Fabric
	// AreaModel returns the NoC area breakdown for cfg and the buffer
	// circuit the energy model should assume (Figure 8's accounting).
	AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind)
}

// Fabric is a built interconnect plus the endpoint layout a Chip needs to
// attach cores, LLC banks, and memory controllers to it.
type Fabric struct {
	Net     noc.Network
	Routers []*noc.Router // for area/energy accounting; nil for wire-only fabrics

	NumNodes int // delivery endpoints, memory channels included
	NumBanks int // LLC banks (directory slices)

	CoreNode func(coreID int) noc.NodeID
	BankNode func(bank int) noc.NodeID
	MCNodes  []noc.NodeID

	// CoreOrder ranks cores by preference when a workload's scalability
	// limit enables only a subset (§5.3: nearest the LLC first).
	CoreOrder []int

	// Plan is the tiled floorplan when the organization has one (zero
	// value otherwise); NocNet is set by the NOC-Out organization.
	Plan   topo.Floorplan
	NocNet *core.Network
}

// The registry. Registration is rare and reads are hot (every chip build,
// String, and ParseDesign), so it is guarded by a RWMutex and safe for
// concurrent use from experiment worker pools.
var (
	orgMu      sync.RWMutex
	orgs       []Organization
	orgAliases = map[string]Design{}
)

func init() {
	for _, o := range []Organization{meshOrg{}, fbflyOrg{}, nocoutOrg{}, idealOrg{}} {
		if _, err := RegisterOrganization(o); err != nil {
			panic(err)
		}
	}
}

// RegisterOrganization adds an organization to the design registry and
// returns its Design handle. The name and aliases must be non-empty and
// unique (case-insensitively) across the registry.
func RegisterOrganization(o Organization) (Design, error) {
	name := strings.TrimSpace(o.Name())
	if name == "" {
		return 0, fmt.Errorf("chip: RegisterOrganization needs a name")
	}
	keys := []string{strings.ToLower(name)}
	for _, a := range o.Aliases() {
		a = strings.ToLower(strings.TrimSpace(a))
		if a == "" {
			return 0, fmt.Errorf("chip: organization %q has an empty alias", name)
		}
		if a != keys[0] {
			keys = append(keys, a)
		}
	}
	orgMu.Lock()
	defer orgMu.Unlock()
	if len(orgs) >= 256 {
		return 0, fmt.Errorf("chip: design registry full")
	}
	for _, k := range keys {
		// The write lock is held: read the owner's name directly rather
		// than through Design.String, which would re-enter the lock.
		if d, dup := orgAliases[k]; dup {
			return 0, fmt.Errorf("chip: design name %q already registered by %s", k, orgs[d].Name())
		}
	}
	d := Design(len(orgs))
	orgs = append(orgs, o)
	for _, k := range keys {
		orgAliases[k] = d
	}
	return d, nil
}

// OrganizationOf resolves a Design handle to its registered organization;
// unknown designs are a hard error.
func OrganizationOf(d Design) (Organization, error) {
	orgMu.RLock()
	defer orgMu.RUnlock()
	if int(d) >= len(orgs) {
		return nil, fmt.Errorf("chip: design %d is not registered", uint8(d))
	}
	return orgs[d], nil
}

// Organizations returns every registered organization in Design order.
func Organizations() []Organization {
	orgMu.RLock()
	defer orgMu.RUnlock()
	out := make([]Organization, len(orgs))
	copy(out, orgs)
	return out
}

// String returns the design name as used in the paper's figures.
func (d Design) String() string {
	if org, err := OrganizationOf(d); err == nil {
		return org.Name()
	}
	return fmt.Sprintf("Design(%d)", uint8(d))
}

// ParseDesign resolves a design from any registered spelling: the figure
// names ("Mesh", "Flattened Butterfly", case-insensitively) and the CLI
// shorthands (mesh | fbfly | nocout | ideal | torus | cmesh | crossbar |
// ...).
func ParseDesign(s string) (Design, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	orgMu.RLock()
	d, ok := orgAliases[key]
	orgMu.RUnlock()
	if !ok {
		var names []string
		for _, o := range Organizations() {
			names = append(names, strings.ToLower(o.Name()))
		}
		return 0, fmt.Errorf("chip: unknown design %q (want %s)", s, strings.Join(names, " | "))
	}
	return d, nil
}

// MarshalText encodes the design by name, so JSON reports read
// "NOC-Out" instead of an opaque enum value.
func (d Design) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText decodes any spelling ParseDesign accepts.
func (d *Design) UnmarshalText(b []byte) error {
	v, err := ParseDesign(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// TiledFabric lays out the standard tiled CMP attachment over a built
// network: one core, LLC slice, and NI per tile (NodeID = tile index),
// memory channels as auxiliary endpoints NumTiles+ch, and the §5.3
// central-tiles-first core preference. All the conventional organizations
// (mesh, flattened butterfly, ideal, torus, cmesh, crossbar) share it.
func TiledFabric(cfg Config, plan topo.Floorplan, net noc.Network, routers []*noc.Router) *Fabric {
	n := cfg.Cores
	mcs := make([]noc.NodeID, cfg.MemChannels)
	for ch := range mcs {
		mcs[ch] = noc.NodeID(n + ch)
	}
	return &Fabric{
		Net:      net,
		Routers:  routers,
		NumNodes: n + cfg.MemChannels,
		NumBanks: n,
		CoreNode: func(i int) noc.NodeID { return noc.NodeID(i) },
		BankNode: func(b int) noc.NodeID { return noc.NodeID(b) },
		MCNodes:  mcs,
		// Chebyshev distance selects square central blocks ("the 16 tiles
		// in the center of the die", §5.3).
		CoreOrder: centerOrder(plan, n),
		Plan:      plan,
	}
}

// centerOrder ranks tiles by Chebyshev distance from the die center.
func centerOrder(plan topo.Floorplan, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	cx := float64(plan.Cols-1) / 2
	cy := float64(plan.Rows-1) / 2
	sort.SliceStable(order, func(a, b int) bool {
		ax, ay := plan.Coord(noc.NodeID(order[a]))
		bx, by := plan.Coord(noc.NodeID(order[b]))
		da := math.Max(math.Abs(float64(ax)-cx), math.Abs(float64(ay)-cy))
		db := math.Max(math.Abs(float64(bx)-cx), math.Abs(float64(by)-cy))
		return da < db
	})
	return order
}
