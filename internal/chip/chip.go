// Package chip assembles complete CMPs: cores with L1s, a distributed
// LLC with directory, memory channels, and one of the four interconnect
// organizations the paper evaluates (mesh, flattened butterfly, NOC-Out,
// ideal). It also owns the measurement loop (warm-up + measurement window)
// that stands in for the paper's SimFlex sampling.
package chip

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nocout/internal/coherence"
	"nocout/internal/core"
	"nocout/internal/cpu"
	"nocout/internal/mem"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
	"nocout/internal/workload"
)

// Design selects the interconnect organization.
type Design uint8

// The evaluated system organizations (§5.1).
const (
	Mesh Design = iota
	FBfly
	NOCOut
	Ideal
)

// String returns the design name as used in the paper's figures.
func (d Design) String() string {
	switch d {
	case Mesh:
		return "Mesh"
	case FBfly:
		return "Flattened Butterfly"
	case NOCOut:
		return "NOC-Out"
	case Ideal:
		return "Ideal"
	}
	return fmt.Sprintf("Design(%d)", uint8(d))
}

// ParseDesign resolves a design from its common spellings: the figure
// names ("Mesh", "Flattened Butterfly") and the CLI shorthands
// (mesh | fbfly | flattened-butterfly | nocout | noc-out | ideal).
func ParseDesign(s string) (Design, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mesh":
		return Mesh, nil
	case "fbfly", "flattened-butterfly", "flattened butterfly":
		return FBfly, nil
	case "nocout", "noc-out":
		return NOCOut, nil
	case "ideal":
		return Ideal, nil
	}
	return 0, fmt.Errorf("chip: unknown design %q (want mesh | fbfly | nocout | ideal)", s)
}

// MarshalText encodes the design by name, so JSON reports read
// "NOC-Out" instead of an opaque enum value.
func (d Design) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText decodes any spelling ParseDesign accepts.
func (d *Design) UnmarshalText(b []byte) error {
	v, err := ParseDesign(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// Config describes a CMP instance.
type Config struct {
	Design      Design    `json:"design"`
	Cores       int       `json:"cores"`  // total cores (power of two)
	LLCMB       int       `json:"llc_mb"` // total LLC capacity (8 in Table 1)
	LLCWays     int       `json:"llc_ways"`
	LinkBits    int       `json:"link_bits"` // NoC link width (128 in the fixed-budget study)
	MemChannels int       `json:"mem_channels"`
	BankLat     sim.Cycle `json:"bank_lat"` // LLC bank access pipeline
	Seed        uint64    `json:"seed"`

	// NOCOut overrides the NOC-Out organization (concentration, express
	// links, LLC rows, banks per tile); zero value uses the paper baseline.
	NOCOut core.Config `json:"nocout_org"`
	// BanksPerLLCTile sets NOC-Out's internal banking (2 in §5.1).
	BanksPerLLCTile int `json:"banks_per_llc_tile"`
}

// DefaultConfig returns the Table 1 64-core system for a design.
func DefaultConfig(d Design) Config {
	return Config{
		Design:          d,
		Cores:           64,
		LLCMB:           8,
		LLCWays:         16,
		LinkBits:        128,
		MemChannels:     4,
		BankLat:         4,
		BanksPerLLCTile: 2,
		Seed:            1,
	}
}

// Chip is a fully assembled CMP bound to one workload.
type Chip struct {
	Cfg      Config
	Workload workload.Params

	Engine *sim.Engine
	Net    noc.Network
	Cores  []*cpu.Core
	L1s    []*coherence.L1
	Banks  []*coherence.Bank
	MCs    []*mem.Controller

	// Tiled-design state.
	Plan topo.Floorplan
	// NOC-Out state.
	NocNet *core.Network

	active int
	pktID  uint64
}

// New builds a chip running workload w.
func New(cfg Config, w workload.Params) *Chip {
	if cfg.Cores < 1 {
		panic("chip: need at least one core")
	}
	if cfg.LinkBits == 0 {
		cfg.LinkBits = 128
	}
	if cfg.BanksPerLLCTile == 0 {
		cfg.BanksPerLLCTile = 2
	}
	c := &Chip{Cfg: cfg, Workload: w, Engine: sim.NewEngine()}
	switch cfg.Design {
	case Mesh, FBfly, Ideal:
		c.buildTiled()
	case NOCOut:
		c.buildNOCOut()
	default:
		panic("chip: unknown design")
	}
	c.buildCores()
	c.register()
	return c
}

// ActiveCores returns the number of enabled cores (the workload's
// scalability limit may disable some).
func (c *Chip) ActiveCores() int { return c.active }

// --- tiled designs (mesh, fbfly, ideal) -----------------------------------

func (c *Chip) buildTiled() {
	cfg := c.Cfg
	n := cfg.Cores
	plan := topo.TiledFloorplan(n, float64(cfg.LLCMB))
	c.Plan = plan
	auxTiles := c.tiledMCNodes(plan)
	switch cfg.Design {
	case Mesh:
		p := topo.DefaultMeshParams(plan)
		p.AuxTiles = auxTiles
		c.Net = topo.NewMesh(p)
	case FBfly:
		p := topo.DefaultFBflyParams(plan)
		p.AuxTiles = auxTiles
		c.Net = topo.NewFBfly(p)
	case Ideal:
		c.Net = topo.NewIdeal(plan, auxTiles...)
	}

	// One LLC bank (slice + directory) per tile.
	bankBytes := cfg.LLCMB << 20 / n
	ways := cfg.LLCWays
	for bankBytes/64/ways < 1 || (bankBytes/64/ways)&(bankBytes/64/ways-1) != 0 {
		ways /= 2 // tiny slices: shrink associativity to keep sets 2^k
		if ways == 0 {
			panic("chip: LLC slice too small")
		}
	}
	bcfg := coherence.BankConfig{
		SizeBytes: bankBytes, Ways: ways, AccessLat: cfg.BankLat,
		LinkBits: cfg.LinkBits, NumCores: n, Interleave: n,
	}
	// Memory channels are auxiliary endpoints numbered after the tiles.
	mcNodes := make([]noc.NodeID, cfg.MemChannels)
	for ch := range mcNodes {
		mcNodes[ch] = noc.NodeID(n + ch)
	}
	mcNode := func(line uint64) (noc.NodeID, int) {
		ch := channelOf(line, cfg.MemChannels)
		return mcNodes[ch], ch
	}
	l1Node := func(coreID int) noc.NodeID { return noc.NodeID(coreID) }
	bankNode := func(bank int) noc.NodeID { return noc.NodeID(bank) }
	for b := 0; b < n; b++ {
		c.Banks = append(c.Banks, coherence.NewBank(b, noc.NodeID(b), c.Net, bcfg, &c.pktID, mcNode, l1Node))
	}
	for ch := 0; ch < cfg.MemChannels; ch++ {
		mc := mem.NewController(ch, mcNodes[ch], c.Net, mem.DefaultConfig(), &c.pktID, bankNode)
		c.MCs = append(c.MCs, mc)
	}
	c.buildL1s(n, l1Node, func(line uint64) (noc.NodeID, int) {
		bank := int(line % uint64(n))
		return noc.NodeID(bank), bank
	})
	c.installDispatchers(n + cfg.MemChannels)
}

// channelOf interleaves lines across memory channels with a folded hash so
// that no address region (per-core local areas, instruction region) aliases
// onto a single channel.
func channelOf(line uint64, channels int) int {
	h := line ^ line>>6 ^ line>>13 ^ line>>19 ^ line>>27
	return int(h % uint64(channels))
}

// tiledMCNodes picks the memory-channel attach points: mid-height tiles on
// the left and right die edges.
func (c *Chip) tiledMCNodes(plan topo.Floorplan) []noc.NodeID {
	nodes := make([]noc.NodeID, c.Cfg.MemChannels)
	ys := []int{plan.Rows / 2, plan.Rows/2 - 1}
	if ys[1] < 0 {
		ys[1] = 0
	}
	xs := []int{0, plan.Cols - 1}
	for ch := range nodes {
		nodes[ch] = plan.Node(xs[ch%2], ys[(ch/2)%2])
	}
	return nodes
}

// --- NOC-Out ---------------------------------------------------------------

func (c *Chip) buildNOCOut() {
	cfg := c.Cfg
	ncfg := cfg.NOCOut
	if ncfg.Columns == 0 {
		ncfg = core.DefaultConfig()
	}
	ncfg = ncfg.WithDefaults()
	// Size the organization so core count matches.
	if ncfg.NumCores() != cfg.Cores {
		panic(fmt.Sprintf("chip: NOC-Out organization yields %d cores, config wants %d",
			ncfg.NumCores(), cfg.Cores))
	}
	ncfg.MCCount = cfg.MemChannels
	ncfg.BankPorts = cfg.BanksPerLLCTile
	net := core.Build(ncfg)
	c.Net = net
	c.NocNet = net
	ncfg = net.Cfg // with defaults filled

	nBanks := ncfg.NumLLCTiles() * cfg.BanksPerLLCTile
	bankBytes := cfg.LLCMB << 20 / nBanks
	bcfg := coherence.BankConfig{
		SizeBytes: bankBytes, Ways: cfg.LLCWays, AccessLat: cfg.BankLat,
		LinkBits: cfg.LinkBits, NumCores: cfg.Cores, Interleave: nBanks,
	}
	bankTile := func(bank int) int { return bank / cfg.BanksPerLLCTile }
	bankNodeOf := func(bank int) noc.NodeID {
		t := bankTile(bank)
		return ncfg.BankNode(t%ncfg.Columns, t/ncfg.Columns, bank%cfg.BanksPerLLCTile)
	}
	// Memory channels are dedicated-port endpoints on the LLC edge routers.
	mcNodes := make([]noc.NodeID, cfg.MemChannels)
	for ch := range mcNodes {
		mcNodes[ch] = ncfg.MCNode(ch)
	}
	mcNode := func(line uint64) (noc.NodeID, int) {
		ch := channelOf(line, cfg.MemChannels)
		return mcNodes[ch], ch
	}
	coreNodeOf := func(coreID int) noc.NodeID {
		return noc.NodeID(coreID / ncfg.Concentration)
	}
	for b := 0; b < nBanks; b++ {
		c.Banks = append(c.Banks, coherence.NewBank(b, bankNodeOf(b), c.Net, bcfg, &c.pktID, mcNode, coreNodeOf))
	}
	for ch := 0; ch < cfg.MemChannels; ch++ {
		mc := mem.NewController(ch, mcNodes[ch], c.Net, mem.DefaultConfig(), &c.pktID, bankNodeOf)
		c.MCs = append(c.MCs, mc)
	}
	c.buildL1s(cfg.Cores, coreNodeOf, func(line uint64) (noc.NodeID, int) {
		bank := int(line % uint64(nBanks))
		return bankNodeOf(bank), bank
	})
	c.installDispatchers(ncfg.TotalNodes())
}

// --- shared assembly --------------------------------------------------------

func (c *Chip) buildL1s(nCores int, l1Node func(int) noc.NodeID, home func(uint64) (noc.NodeID, int)) {
	l1cfg := coherence.DefaultL1Config()
	l1cfg.LinkBits = c.Cfg.LinkBits
	for i := 0; i < nCores; i++ {
		l1 := coherence.NewL1(i, l1Node(i), c.Net, l1cfg, &c.pktID, home, l1Node)
		c.L1s = append(c.L1s, l1)
	}
}

// installDispatchers wires every network node's delivery callback to the
// protocol agents (several agents can share a node).
func (c *Chip) installDispatchers(nNodes int) {
	for node := 0; node < nNodes; node++ {
		c.Net.SetDeliver(noc.NodeID(node), func(now sim.Cycle, p *noc.Packet) {
			m := p.Payload.(coherence.Msg)
			switch m.Dst {
			case coherence.AgentL1:
				c.L1s[m.DstID].Deliver(m)
			case coherence.AgentDir:
				c.Banks[m.DstID].Deliver(m)
			case coherence.AgentMC:
				c.MCs[m.DstID].Deliver(m)
			}
		})
	}
}

// buildCores instantiates the cores, enabling only the workload's
// scalable subset placed nearest the LLC (§5.3).
func (c *Chip) buildCores() {
	w := c.Workload
	c.active = c.Cfg.Cores
	if w.MaxCores > 0 && w.MaxCores < c.active {
		c.active = w.MaxCores
	}
	enabled := c.preferredCoreOrder()
	active := map[int]bool{}
	for i := 0; i < c.active; i++ {
		active[enabled[i]] = true
	}
	for i := 0; i < c.Cfg.Cores; i++ {
		gen := workload.NewGenerator(w, i, c.Cfg.Seed)
		cp := w.CoreParams(c.Cfg.Seed)
		co := cpu.New(i, cp, c.L1s[i], gen)
		co.SetEnabled(active[i])
		c.Cores = append(c.Cores, co)
	}
}

// preferredCoreOrder ranks cores by proximity to the LLC: central tiles for
// tiled designs (§5.3), LLC-adjacent rows for NOC-Out.
func (c *Chip) preferredCoreOrder() []int {
	n := c.Cfg.Cores
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	switch c.Cfg.Design {
	case Mesh, FBfly, Ideal:
		cx := float64(c.Plan.Cols-1) / 2
		cy := float64(c.Plan.Rows-1) / 2
		sort.SliceStable(order, func(a, b int) bool {
			ax, ay := c.Plan.Coord(noc.NodeID(order[a]))
			bx, by := c.Plan.Coord(noc.NodeID(order[b]))
			// Chebyshev distance selects square central blocks ("the 16
			// tiles in the center of the die", §5.3).
			da := math.Max(math.Abs(float64(ax)-cx), math.Abs(float64(ay)-cy))
			db := math.Max(math.Abs(float64(bx)-cx), math.Abs(float64(by)-cy))
			return da < db
		})
	case NOCOut:
		ncfg := c.NocNet.Cfg
		sort.SliceStable(order, func(a, b int) bool {
			_, _, ra := ncfg.CoreLoc(noc.NodeID(order[a] / ncfg.Concentration))
			_, _, rb := ncfg.CoreLoc(noc.NodeID(order[b] / ncfg.Concentration))
			return ra < rb
		})
	}
	return order
}

func (c *Chip) register() {
	c.Engine.Register(c.Net)
	for _, l1 := range c.L1s {
		c.Engine.Register(sim.TickFunc(l1.Tick))
	}
	for _, b := range c.Banks {
		c.Engine.Register(sim.TickFunc(b.Tick))
	}
	for _, mc := range c.MCs {
		c.Engine.Register(sim.TickFunc(mc.Tick))
	}
	for _, co := range c.Cores {
		c.Engine.Register(sim.TickFunc(co.Tick))
	}
}

// --- measurement ------------------------------------------------------------

// Warmup runs n cycles and clears all measurement counters, leaving caches,
// predictors-of-sorts and queues warm (the SimFlex-style methodology).
func (c *Chip) Warmup(n sim.Cycle) {
	c.Engine.Step(n)
	for _, co := range c.Cores {
		co.ResetStats()
	}
	for _, b := range c.Banks {
		b.Stats = coherence.DirStats{}
	}
	for _, l1 := range c.L1s {
		l1.Stats = coherence.L1Stats{}
	}
	for _, mc := range c.MCs {
		mc.Stats = mem.Stats{}
	}
	*c.Net.Stats() = noc.Stats{}
}

// Run advances the measurement window by n cycles.
func (c *Chip) Run(n sim.Cycle) { c.Engine.Step(n) }

// Metrics summarizes a finished measurement window.
type Metrics struct {
	Cycles      sim.Cycle
	Instrs      int64
	ActiveCores int

	AggIPC     float64 // total committed instructions per cycle
	PerCoreIPC float64 // AggIPC / active cores

	Dir coherence.DirStats
	Net noc.Stats

	AvgNetLatency  float64 // all classes, cycles
	AvgRespLatency float64
	IfetchStallPct float64 // fraction of active-core cycles stalled on I-fetch
	L1IMPKI        float64
	L1DMPKI        float64
}

// NetRouters returns the underlying routers of the chip's network (empty
// for the ideal fabric), for energy accounting.
func (c *Chip) NetRouters() []*noc.Router {
	switch n := c.Net.(type) {
	case *noc.RouterNetwork:
		return n.Routers
	case *core.Network:
		var out []*noc.Router
		out = append(out, n.RedNodes...)
		out = append(out, n.DispNodes...)
		out = append(out, n.LLCRouters...)
		return out
	}
	return nil
}

// Metrics gathers the chip's counters.
func (c *Chip) Metrics() Metrics {
	var m Metrics
	m.ActiveCores = c.active
	var cycles int64
	var ifetchStall int64
	var iMiss, dMiss int64
	for _, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		m.Instrs += co.Stats.Instrs
		if co.Stats.Cycles > cycles {
			cycles = co.Stats.Cycles
		}
		ifetchStall += co.Stats.IfetchStall
	}
	for _, l1 := range c.L1s {
		iMiss += l1.Stats.IfetchMisses
		dMiss += l1.Stats.LoadMisses + l1.Stats.StoreMisses
	}
	m.Cycles = sim.Cycle(cycles)
	if cycles > 0 {
		m.AggIPC = float64(m.Instrs) / float64(cycles)
		m.PerCoreIPC = m.AggIPC / float64(m.ActiveCores)
		m.IfetchStallPct = float64(ifetchStall) / float64(cycles*int64(m.ActiveCores))
	}
	if m.Instrs > 0 {
		m.L1IMPKI = float64(iMiss) / float64(m.Instrs) * 1000
		m.L1DMPKI = float64(dMiss) / float64(m.Instrs) * 1000
	}
	for _, b := range c.Banks {
		m.Dir.Add(b.Stats)
	}
	m.Net = *c.Net.Stats()
	m.AvgNetLatency = m.Net.AvgLatencyAll()
	m.AvgRespLatency = m.Net.AvgLatency(noc.ClassResp)
	return m
}

// Measure is the standard experiment: functional cache warm-up, a timing
// warm-up, then the measurement window.
func Measure(cfg Config, w workload.Params, warmup, window sim.Cycle) Metrics {
	ch := New(cfg, w)
	ch.PrewarmCaches()
	ch.Warmup(warmup)
	ch.Run(window)
	return ch.Metrics()
}

// PrewarmCaches functionally installs the workload's steady-state cache
// contents before timing starts, reproducing the paper's methodology of
// launching measurements "from checkpoints with warmed caches" (§5.4):
// the shared instruction footprint and hot region become LLC-resident, and
// each active core's local region is owned by its L1-D.
func (c *Chip) PrewarmCaches() {
	w := c.Workload
	nBanks := len(c.Banks)
	bankOf := func(line uint64) *coherence.Bank { return c.Banks[line%uint64(nBanks)] }

	base, size := w.InstrRegion()
	for a := base; a < base+size; a += 64 {
		bankOf(a / 64).PrewarmShared(a / 64)
	}
	base, size = w.HotRegion()
	for a := base; a < base+size; a += 64 {
		bankOf(a / 64).PrewarmShared(a / 64)
	}
	for i, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		base, size = w.LocalRegion(i)
		for a := base; a < base+size; a += 64 {
			line := a / 64
			if bankOf(line).PrewarmOwned(line, i) {
				c.L1s[i].PrewarmData(line, coherence.StateM)
			}
		}
	}
}
