// Package chip assembles complete CMPs: cores with L1s, a distributed
// LLC with directory, memory channels, an interchangeable interconnect
// organization resolved through the Organization registry (the paper's
// mesh, flattened butterfly, NOC-Out, and ideal fabrics are builtin;
// RegisterOrganization adds more), and an interchangeable memory
// hierarchy resolved through the Hierarchy registry (the paper's shared
// NUCA is builtin; RegisterHierarchy adds placement policies, private
// slices, clustered LLCs). It also owns the measurement loop (warm-up +
// measurement window) that stands in for the paper's SimFlex sampling.
package chip

import (
	"math"

	"nocout/internal/coherence"
	"nocout/internal/core"
	"nocout/internal/cpu"
	"nocout/internal/mem"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
	"nocout/internal/workload"
)

// Config describes a CMP instance.
type Config struct {
	Design      Design    `json:"design"`
	Cores       int       `json:"cores"`  // total cores (power of two)
	LLCMB       int       `json:"llc_mb"` // total LLC capacity (8 in Table 1)
	LLCWays     int       `json:"llc_ways"`
	LinkBits    int       `json:"link_bits"` // NoC link width (128 in the fixed-budget study)
	MemChannels int       `json:"mem_channels"`
	BankLat     sim.Cycle `json:"bank_lat"` // LLC bank access pipeline
	Seed        uint64    `json:"seed"`

	// Hierarchy selects the memory hierarchy (LLC organization, home
	// placement, channel mapping); the zero value is the paper's shared
	// NUCA baseline. Resolve names with ParseHierarchy.
	Hierarchy HierarchyID `json:"hierarchy,omitempty"`
	// Mem is the memory-channel timing; zero fields take the DDR3-1667
	// defaults (mem.DefaultConfig) via WithDefaults.
	Mem mem.Config `json:"mem"`
	// LLCClusterTiles sets the Clustered hierarchy's cluster size (tiles
	// per LLC cluster); 0 means the hierarchy's default.
	LLCClusterTiles int `json:"llc_cluster_tiles,omitempty"`

	// NOCOut overrides the NOC-Out organization (concentration, express
	// links, LLC rows, banks per tile); zero value uses the paper baseline.
	NOCOut core.Config `json:"nocout_org"`
	// BanksPerLLCTile sets NOC-Out's internal banking (2 in §5.1).
	BanksPerLLCTile int `json:"banks_per_llc_tile"`
}

// Table1Config returns the paper's Table 1 64-core CMP parameters with the
// Design left unset; organizations use it as their common baseline.
func Table1Config() Config {
	return Config{
		Cores:           64,
		LLCMB:           8,
		LLCWays:         16,
		LinkBits:        128,
		MemChannels:     4,
		BankLat:         4,
		BanksPerLLCTile: 2,
		Mem:             mem.DefaultConfig(),
		Seed:            1,
	}
}

// DefaultConfig returns a design's default system (Table 1 for the paper's
// organizations). Unregistered designs are a hard error.
func DefaultConfig(d Design) Config {
	org, err := OrganizationOf(d)
	if err != nil {
		panic(err)
	}
	cfg := org.DefaultConfig()
	cfg.Design = d
	return cfg
}

// Chip is a fully assembled CMP bound to one workload source.
type Chip struct {
	Cfg      Config
	Workload workload.Workload

	Engine *sim.Engine
	Net    noc.Network
	Cores  []*cpu.Core
	L1s    []*coherence.L1
	Banks  []*coherence.Bank
	MCs    []*mem.Controller

	// Fabric is the organization's built interconnect and endpoint layout.
	Fabric *Fabric
	// Memory is the hierarchy's built memory-system layout: bank
	// placement and the home/channel mapping functions the agents were
	// wired with (the conformance suite probes it directly).
	Memory *MemoryLayout
	// Plan is the tiled floorplan when the organization has one.
	Plan topo.Floorplan
	// NocNet is set by the NOC-Out organization.
	NocNet *core.Network

	// Shard is the conservative parallel coordinator when the chip was
	// built with NewSharded and more than one domain; nil otherwise.
	// Doms holds the per-domain engines (Doms[0] == Engine). Stepping a
	// sharded chip must go through Warmup/Run/FlushAll so every domain
	// advances under the synchronization protocol; Engine remains usable
	// directly only on single-domain chips.
	Shard *sim.Sharded
	Doms  []*sim.Engine

	plan   *noc.ShardPlan
	pools  []*noc.PacketPool
	active int

	// trackers are the enabled cores' open-system streams, when the
	// workload is an open one; empty for closed-loop workloads.
	trackers []workload.OpenTracker
}

// New builds a chip running workload w — any Workload implementation:
// a registered synthetic, a replayed capture, a mix, a phased schedule.
// The design's organization and the memory hierarchy are resolved through
// their registries; an unregistered design or hierarchy panics, as does a
// hierarchy that cannot inhabit the organization's fabric.
func New(cfg Config, w workload.Workload) *Chip { return NewSharded(cfg, w, 1) }

// NewSharded builds the same chip partitioned into domains tile-group
// domains that step concurrently under the conservative parallel kernel
// (sim.Sharded). Results are bit-identical to New for any domain count:
// only wall-clock behaviour differs. domains is clamped to what the fabric
// supports — router-network organizations shard down to one domain per
// router; the ideal fabric (one monolithic component) always runs single-
// domain. domains <= 1 is exactly New.
func NewSharded(cfg Config, w workload.Workload, domains int) *Chip {
	if cfg.Cores < 1 {
		panic("chip: need at least one core")
	}
	if cfg.LinkBits == 0 {
		cfg.LinkBits = 128
	}
	if cfg.BanksPerLLCTile == 0 {
		cfg.BanksPerLLCTile = 2
	}
	cfg.Mem = cfg.Mem.WithDefaults()
	org, err := OrganizationOf(cfg.Design)
	if err != nil {
		panic(err)
	}
	hier, err := HierarchyOf(cfg.Hierarchy)
	if err != nil {
		panic(err)
	}
	c := &Chip{Cfg: cfg, Workload: w}
	fab := org.Build(cfg)
	c.Fabric = fab
	c.Net = fab.Net
	c.Plan = fab.Plan
	c.NocNet = fab.NocNet
	ml, err := hier.Build(cfg, fab, w.Layout())
	if err != nil {
		panic(err)
	}
	c.Memory = ml

	var rn *noc.RouterNetwork
	if v, ok := c.Net.(interface{ RN() *noc.RouterNetwork }); ok {
		rn = v.RN()
	}
	if domains < 1 || rn == nil {
		domains = 1
	} else if domains > len(rn.Routers) {
		domains = len(rn.Routers)
	}
	c.Doms = make([]*sim.Engine, domains)
	for d := range c.Doms {
		c.Doms[d] = sim.NewEngine()
	}
	c.Engine = c.Doms[0]

	c.buildAgents(fab, ml)
	c.buildCores(fab.CoreOrder)
	if domains == 1 {
		c.register()
		return c
	}
	c.plan = rn.BuildShardPlan(routerDomains(rn, domains), domains)
	c.registerSharded(rn)
	c.Shard = sim.NewSharded(c.Doms, c.plan.InEdges, c.plan.Lookahead)
	return c
}

// NumDomains reports how many domains the chip actually runs on.
func (c *Chip) NumDomains() int { return len(c.Doms) }

// CrossLinks reports the number of staged cross-domain pipes (0 when
// single-domain), for diagnostics and tests.
func (c *Chip) CrossLinks() int {
	if c.plan == nil {
		return 0
	}
	return c.plan.CrossLinks
}

// routerDomains bands the routers into contiguous index ranges. Router
// construction order is spatial in every builtin organization (row-major
// tiles for the mesh/torus/cmesh, column trees then LLC routers for
// NOC-Out), so contiguous bands keep most links domain-internal.
func routerDomains(rn *noc.RouterNetwork, domains int) []int {
	dom := make([]int, len(rn.Routers))
	for i := range dom {
		dom[i] = i * domains / len(rn.Routers)
	}
	return dom
}

// ActiveCores returns the number of enabled cores (the workload's
// scalability limit may disable some).
func (c *Chip) ActiveCores() int { return c.active }

// buildAgents attaches the protocol agents — LLC banks with directory
// slices, memory controllers, and L1s — to the endpoint placement the
// hierarchy decided over the fabric. The chip is generic here: bank
// count, bank/L1/memory configs, and the home and channel mappings all
// come from the MemoryLayout.
func (c *Chip) buildAgents(fab *Fabric, ml *MemoryLayout) {
	cfg := c.Cfg
	// One packet pool per node: the agents sending from a node and the
	// dispatcher recycling delivered packets into it always run in that
	// node's scheduling domain, so pools never need locking.
	c.pools = make([]*noc.PacketPool, fab.NumNodes)
	for i := range c.pools {
		c.pools[i] = &noc.PacketPool{}
	}
	mcNode := func(line uint64) (noc.NodeID, int) {
		ch := ml.ChannelOf(line)
		return fab.MCNodes[ch], ch
	}
	for b := 0; b < ml.NumBanks; b++ {
		node := ml.BankNode(b)
		c.Banks = append(c.Banks, coherence.NewBank(b, node, c.Net, ml.BankConf(b), c.pools[node], mcNode, fab.CoreNode))
	}
	for ch := 0; ch < cfg.MemChannels; ch++ {
		mc := mem.NewController(ch, fab.MCNodes[ch], c.Net, ml.MemConf, c.pools[fab.MCNodes[ch]], ml.BankNode)
		c.MCs = append(c.MCs, mc)
	}
	for i := 0; i < cfg.Cores; i++ {
		node := fab.CoreNode(i)
		l1 := coherence.NewL1(i, node, c.Net, ml.L1Conf, c.pools[node], ml.Home, fab.CoreNode)
		c.L1s = append(c.L1s, l1)
	}
	c.installDispatchers(fab.NumNodes)
}

// installDispatchers wires every network node's delivery callback to the
// protocol agents (several agents can share a node).
func (c *Chip) installDispatchers(nNodes int) {
	for node := 0; node < nNodes; node++ {
		pool := c.pools[node]
		c.Net.SetDeliver(noc.NodeID(node), func(now sim.Cycle, p *noc.Packet) {
			// Copy the message out, then recycle the packet (and its
			// payload cell) into this node's pool before dispatching, so
			// a send the delivery triggers can reuse it immediately.
			m := *p.Payload.(*coherence.Msg)
			pool.Put(p)
			switch m.Dst {
			case coherence.AgentL1:
				c.L1s[m.DstID].Deliver(m)
			case coherence.AgentDir:
				c.Banks[m.DstID].Deliver(m)
			case coherence.AgentMC:
				c.MCs[m.DstID].Deliver(m)
			}
		})
	}
}

// buildCores instantiates the cores, enabling only the workload's
// scalable subset in the fabric's preference order (§5.3). The chip is
// generic over workload sources: it asks the workload for each core's
// stream and pipeline parameters instead of assuming a generator.
func (c *Chip) buildCores(order []int) {
	w := c.Workload
	c.active = c.Cfg.Cores
	if mc := w.MaxCores(); mc > 0 && mc < c.active {
		c.active = mc
	}
	active := map[int]bool{}
	for i := 0; i < c.active; i++ {
		active[order[i]] = true
	}
	for i := 0; i < c.Cfg.Cores; i++ {
		stream := w.StreamFor(i, c.Cfg.Seed)
		cp := w.CoreParams(i, c.Cfg.Seed)
		co := cpu.New(i, cp, c.L1s[i], stream)
		co.SetEnabled(active[i])
		c.Cores = append(c.Cores, co)
		if t, ok := stream.(workload.OpenTracker); ok && active[i] {
			c.trackers = append(c.trackers, t)
		}
	}
}

// register hands every component to the engine directly (not wrapped in
// TickFunc) so the scheduled kernel sees their Sleeper/WakeBinder
// contracts: router networks decompose into independently sleeping routers
// and NIs (sim.Registrar), and the protocol agents' inboxes and pipelines
// become wake sources at this point — which is why all wiring happens
// before this call. Registration order (network, L1s, banks, memory
// channels, cores) is part of the determinism contract.
func (c *Chip) register() {
	c.Engine.Register(c.Net)
	for _, l1 := range c.L1s {
		c.Engine.Register(l1)
	}
	for _, b := range c.Banks {
		c.Engine.Register(b)
	}
	for _, mc := range c.MCs {
		c.Engine.Register(mc)
	}
	for _, co := range c.Cores {
		c.Engine.Register(co)
	}
}

// registerSharded distributes the components of register() across the
// domain engines: every router and NI goes to its plan domain, and each
// protocol agent (and each core, which calls its L1 synchronously) goes to
// the domain owning its node's NI. Global construction order is preserved,
// so components co-located in one domain keep the relative tick order the
// single-engine kernel uses — part of the bit-identity argument.
func (c *Chip) registerSharded(rn *noc.RouterNetwork) {
	p := c.plan
	rn.RegisterSharded(c.Doms, p)
	for _, l1 := range c.L1s {
		c.Doms[p.NodeDomain(l1.Node)].Register(l1)
	}
	for _, b := range c.Banks {
		c.Doms[p.NodeDomain(b.Node)].Register(b)
	}
	for _, mc := range c.MCs {
		c.Doms[p.NodeDomain(mc.Node)].Register(mc)
	}
	for i, co := range c.Cores {
		c.Doms[p.NodeDomain(c.L1s[i].Node)].Register(co)
	}
}

// step advances the chip n cycles through whichever kernel it was built
// with; flush settles the lazily-accounted counters of sleeping components
// in every domain. Both are safe only between steps.
func (c *Chip) step(n sim.Cycle) {
	if c.Shard != nil {
		c.Shard.Step(n)
		return
	}
	c.Engine.Step(n)
}

// FlushAll settles lazy accounting across all domains (Engine.Flush on a
// single-domain chip). Exposed for tests that hash mid-run state.
func (c *Chip) FlushAll() {
	if c.Shard != nil {
		c.Shard.Flush()
		return
	}
	c.Engine.Flush()
}

// NowCycle returns the chip-wide clock: all domains agree on it whenever
// the chip is not mid-step.
func (c *Chip) NowCycle() sim.Cycle {
	if c.Shard != nil {
		return c.Shard.Now()
	}
	return c.Engine.Now()
}

// --- measurement ------------------------------------------------------------

// Warmup runs n cycles and clears all measurement counters, leaving caches,
// predictors-of-sorts and queues warm (the SimFlex-style methodology).
func (c *Chip) Warmup(n sim.Cycle) {
	c.step(n)
	// Sleeping components account stall/utilization counters lazily; settle
	// them against the warm-up before zeroing.
	c.FlushAll()
	c.resetMeasurementStats()
}

// resetMeasurementStats zeroes every measurement counter, defining the
// measurement boundary. Warmup and the checkpoint-restore path share it,
// so post-restore counter state cannot drift from the warmup path. Lazy
// accounting must be settled (FlushAll) before the call.
func (c *Chip) resetMeasurementStats() {
	for _, co := range c.Cores {
		co.ResetStats()
	}
	for _, b := range c.Banks {
		b.Stats = coherence.DirStats{}
	}
	for _, l1 := range c.L1s {
		l1.Stats = coherence.L1Stats{}
	}
	for _, mc := range c.MCs {
		mc.Stats = mem.Stats{}
	}
	*c.Net.Stats() = noc.Stats{}
	for _, t := range c.trackers {
		t.OpenReset()
	}
}

// Run advances the measurement window by n cycles.
func (c *Chip) Run(n sim.Cycle) { c.step(n) }

// Metrics summarizes a finished measurement window.
type Metrics struct {
	Cycles      sim.Cycle
	Instrs      int64
	ActiveCores int

	AggIPC     float64 // total committed instructions per cycle
	PerCoreIPC float64 // AggIPC / active cores

	Dir coherence.DirStats
	Net noc.Stats

	AvgNetLatency  float64 // all classes, cycles
	AvgRespLatency float64
	IfetchStallPct float64 // fraction of active-core cycles stalled on I-fetch
	L1IMPKI        float64
	L1DMPKI        float64

	// PerMemberIPC breaks AggIPC down by member workload when the source
	// is heterogeneous (a Mix, or a capture of one); nil otherwise.
	PerMemberIPC map[string]float64

	// Open is the merged request-lifecycle accounting across enabled
	// cores when the workload is open-system; nil for closed-loop runs.
	Open *workload.OpenStats
}

// NetRouters returns the underlying routers of the chip's network (empty
// for the ideal fabric), for energy accounting.
func (c *Chip) NetRouters() []*noc.Router { return c.Fabric.Routers }

// Metrics gathers the chip's counters.
func (c *Chip) Metrics() Metrics {
	c.FlushAll() // settle lazily-accounted counters of sleeping components
	var m Metrics
	m.ActiveCores = c.active
	var cycles int64
	var ifetchStall int64
	var iMiss, dMiss int64
	for _, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		m.Instrs += co.Stats.Instrs
		if co.Stats.Cycles > cycles {
			cycles = co.Stats.Cycles
		}
		ifetchStall += co.Stats.IfetchStall
	}
	for _, l1 := range c.L1s {
		iMiss += l1.Stats.IfetchMisses
		dMiss += l1.Stats.LoadMisses + l1.Stats.StoreMisses
	}
	m.Cycles = sim.Cycle(cycles)
	if cycles > 0 {
		m.AggIPC = float64(m.Instrs) / float64(cycles)
		m.PerCoreIPC = m.AggIPC / float64(m.ActiveCores)
		m.IfetchStallPct = float64(ifetchStall) / float64(cycles*int64(m.ActiveCores))
	}
	if m.Instrs > 0 {
		m.L1IMPKI = float64(iMiss) / float64(m.Instrs) * 1000
		m.L1DMPKI = float64(dMiss) / float64(m.Instrs) * 1000
	}
	for _, b := range c.Banks {
		m.Dir.Add(b.Stats)
	}
	m.Net = *c.Net.Stats()
	m.AvgNetLatency = m.Net.AvgLatencyAll()
	m.AvgRespLatency = m.Net.AvgLatency(noc.ClassResp)
	m.PerMemberIPC = c.perMemberIPC(cycles)
	if len(c.trackers) > 0 {
		open := workload.NewOpenStats()
		for _, t := range c.trackers {
			snap := t.OpenSnapshot()
			open.Merge(&snap)
		}
		m.Open = open
	}
	return m
}

// perMemberIPC attributes committed instructions to member workloads.
// Homogeneous sources (and single-member assignments) yield nil, so
// their Metrics — and Results — are unchanged by the breakdown.
func (c *Chip) perMemberIPC(cycles int64) map[string]float64 {
	if cycles <= 0 {
		return nil
	}
	if _, multi := workload.MemberNameOf(c.Workload, 0); !multi {
		return nil
	}
	instrs := map[string]int64{}
	for i, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		name, _ := workload.MemberNameOf(c.Workload, i)
		instrs[name] += co.Stats.Instrs
	}
	if len(instrs) < 2 {
		return nil
	}
	out := make(map[string]float64, len(instrs))
	for name, n := range instrs {
		out[name] = float64(n) / float64(cycles)
	}
	return out
}

// Measure is the standard experiment: functional cache warm-up, a timing
// warm-up, then the measurement window.
func Measure(cfg Config, w workload.Workload, warmup, window sim.Cycle) Metrics {
	ch := New(cfg, w)
	ch.PrewarmCaches()
	ch.Warmup(warmup)
	ch.Run(window)
	return ch.Metrics()
}

// StateHash digests the architecturally visible simulation state — the
// clock, network counters, and every agent's statistics and occupancy —
// into one FNV-1a word. The kernel conformance suite compares it
// cycle-by-cycle between the scheduled and naive kernels, and the sharded
// suite between domain counts: any divergence in timing or protocol
// behaviour shows up in these counters within a cycle or two of occurring.
func (c *Chip) StateHash() uint64 {
	c.FlushAll()
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mixI := func(vs ...int64) {
		for _, v := range vs {
			mix(uint64(v))
		}
	}
	mixI(int64(c.NowCycle()), int64(c.active))
	ns := c.Net.Stats()
	mixI(ns.Injected, ns.Delivered, ns.FlitHops, ns.PacketHops, ns.InjectFlits)
	mix(math.Float64bits(ns.FlitLinkMM))
	for cl := 0; cl < noc.NumClasses; cl++ {
		mixI(ns.LatencySum[cl], ns.Count[cl])
	}
	for _, co := range c.Cores {
		s := &co.Stats
		mixI(s.Instrs, s.Cycles, s.IfetchStall, s.DataStall, s.SerialStall,
			s.BackPressure, s.LoadsIssued, s.StoresIssued, s.IfetchMisses, s.PeakOutstand)
	}
	for _, l1 := range c.L1s {
		s := &l1.Stats
		mixI(s.IfetchAccesses, s.IfetchMisses, s.LoadAccesses, s.LoadMisses,
			s.StoreAccesses, s.StoreMisses, s.Writebacks, s.SnoopsReceived, s.Fills,
			int64(l1.OutstandingMisses()))
	}
	for _, b := range c.Banks {
		s := &b.Stats
		mixI(s.Accesses, s.Hits, s.Misses, s.SnoopAccesses, s.SnoopMsgs,
			s.BackInvals, s.Recalls, s.Writebacks, s.MemReads, s.MemWrites,
			int64(b.BusyLines()))
	}
	for _, mc := range c.MCs {
		s := &mc.Stats
		mixI(s.Reads, s.Writes, s.BusyCycles, s.QueueSum, s.Samples)
	}
	return h
}

// PrewarmCaches functionally installs the workload's steady-state cache
// contents before timing starts, reproducing the paper's methodology of
// launching measurements "from checkpoints with warmed caches" (§5.4):
// the layout's shared instruction footprint and hot region become
// LLC-resident, and each active core's local region is owned by its L1-D.
func (c *Chip) PrewarmCaches() {
	lay := c.Workload.Layout()
	bankOf := func(line uint64) *coherence.Bank {
		_, bank := c.Memory.Home(line)
		return c.Banks[bank]
	}

	for _, r := range []workload.Region{lay.Instr, lay.Hot} {
		for a := r.Base; a < r.Base+r.Size; a += 64 {
			bankOf(a / 64).PrewarmShared(a / 64)
		}
	}
	for i, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		r := lay.Local(i)
		for a := r.Base; a < r.Base+r.Size; a += 64 {
			line := a / 64
			if bankOf(line).PrewarmOwned(line, i) {
				c.L1s[i].PrewarmData(line, coherence.StateM)
			}
		}
	}
}
