package chip

import (
	"fmt"
	"sort"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/physic"
	"nocout/internal/topo"
)

// This file ports the paper's four organizations onto the Organization
// interface. Each is a stateless value registered in organization.go's
// init; extension designs (torus, cmesh, crossbar) live in the public
// package and register through the same API.

// --- Mesh (Figure 2) --------------------------------------------------------

type meshOrg struct{}

func (meshOrg) Name() string          { return "Mesh" }
func (meshOrg) Aliases() []string     { return nil }
func (meshOrg) DefaultConfig() Config { return Table1Config() }

func (meshOrg) Build(cfg Config) *Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	p := topo.DefaultMeshParams(plan)
	p.AuxTiles = topo.MCTiles(plan, cfg.MemChannels)
	rn := topo.NewMesh(p)
	return TiledFabric(cfg, plan, rn, rn.Routers)
}

func (meshOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return physic.MeshArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.FlipFlop
}

// --- Flattened Butterfly (Figure 3) -----------------------------------------

type fbflyOrg struct{}

func (fbflyOrg) Name() string          { return "Flattened Butterfly" }
func (fbflyOrg) Aliases() []string     { return []string{"fbfly", "flattened-butterfly"} }
func (fbflyOrg) DefaultConfig() Config { return Table1Config() }

func (fbflyOrg) Build(cfg Config) *Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	p := topo.DefaultFBflyParams(plan)
	p.AuxTiles = topo.MCTiles(plan, cfg.MemChannels)
	rn := topo.NewFBfly(p)
	return TiledFabric(cfg, plan, rn, rn.Routers)
}

func (fbflyOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	// Deep per-distance buffers make SRAM cells the right circuit (§5.2).
	return physic.FBflyArea(cfg.Cores, float64(cfg.LLCMB), cfg.LinkBits), physic.SRAM
}

// --- Ideal (Figure 1's wire-only fabric) ------------------------------------

type idealOrg struct{}

func (idealOrg) Name() string          { return "Ideal" }
func (idealOrg) Aliases() []string     { return nil }
func (idealOrg) DefaultConfig() Config { return Table1Config() }

func (idealOrg) Build(cfg Config) *Fabric {
	plan := topo.TiledFloorplan(cfg.Cores, float64(cfg.LLCMB))
	aux := topo.MCTiles(plan, cfg.MemChannels)
	return TiledFabric(cfg, plan, topo.NewIdeal(plan, aux...), nil)
}

func (idealOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	// The idealization exposes only wire delay: no routers, no buffers, no
	// switches, and its wires route over logic — zero modelled NoC area by
	// construction, not by fallback.
	return physic.Breakdown{}, physic.FlipFlop
}

// --- NOC-Out (§4) -----------------------------------------------------------

type nocoutOrg struct{}

func (nocoutOrg) Name() string          { return "NOC-Out" }
func (nocoutOrg) Aliases() []string     { return []string{"nocout"} }
func (nocoutOrg) DefaultConfig() Config { return Table1Config() }

// shape resolves the NOC-Out organization for cfg: an explicit Config.NOCOut
// wins (and must match the core count); otherwise the paper baseline for 64
// cores, or a near-square auto-shaped grid for other core counts.
func (nocoutOrg) shape(cfg Config) core.Config {
	ncfg := cfg.NOCOut
	if ncfg.Columns == 0 {
		ncfg = core.DefaultConfig()
		if def := ncfg.WithDefaults(); def.NumCores() != cfg.Cores {
			cols, rows := topo.GridFor(cfg.Cores)
			if rows < 2 {
				panic(fmt.Sprintf("chip: NOC-Out needs at least 4 cores, got %d", cfg.Cores))
			}
			ncfg.Columns = cols
			ncfg.RowsPerSide = rows / 2
		}
	}
	ncfg = ncfg.WithDefaults()
	if ncfg.NumCores() != cfg.Cores {
		panic(fmt.Sprintf("chip: NOC-Out organization yields %d cores, config wants %d",
			ncfg.NumCores(), cfg.Cores))
	}
	return ncfg
}

func (o nocoutOrg) Build(cfg Config) *Fabric {
	ncfg := o.shape(cfg)
	ncfg.MCCount = cfg.MemChannels
	ncfg.BankPorts = cfg.BanksPerLLCTile
	net := core.Build(ncfg)
	ncfg = net.Cfg // with defaults filled

	nBanks := ncfg.NumLLCTiles() * cfg.BanksPerLLCTile
	bankTile := func(bank int) int { return bank / cfg.BanksPerLLCTile }
	bankNode := func(bank int) noc.NodeID {
		t := bankTile(bank)
		return ncfg.BankNode(t%ncfg.Columns, t/ncfg.Columns, bank%cfg.BanksPerLLCTile)
	}
	// Memory channels are dedicated-port endpoints on the LLC edge routers.
	mcs := make([]noc.NodeID, cfg.MemChannels)
	for ch := range mcs {
		mcs[ch] = ncfg.MCNode(ch)
	}
	coreNode := func(coreID int) noc.NodeID {
		return noc.NodeID(coreID / ncfg.Concentration)
	}
	// LLC-adjacent rows first when a workload enables a core subset (§5.3).
	order := make([]int, cfg.Cores)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		_, _, ra := ncfg.CoreLoc(coreNode(order[a]))
		_, _, rb := ncfg.CoreLoc(coreNode(order[b]))
		return ra < rb
	})

	var routers []*noc.Router
	routers = append(routers, net.RedNodes...)
	routers = append(routers, net.DispNodes...)
	routers = append(routers, net.LLCRouters...)
	return &Fabric{
		Net:       net,
		Routers:   routers,
		NumNodes:  ncfg.TotalNodes(),
		NumBanks:  nBanks,
		CoreNode:  coreNode,
		BankNode:  bankNode,
		MCNodes:   mcs,
		CoreOrder: order,
		NocNet:    net,
	}
}

func (o nocoutOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return physic.NOCOutTotalArea(o.shape(cfg), cfg.LinkBits), physic.FlipFlop
}
