package chip

import (
	"testing"

	"nocout/internal/noc"
	"nocout/internal/workload"
)

func small(d Design) Config {
	cfg := DefaultConfig(d)
	cfg.Cores = 16
	if d == NOCOut {
		cfg.NOCOut.Columns = 4
		cfg.NOCOut.RowsPerSide = 2
	}
	return cfg
}

func TestAllDesignsExecute(t *testing.T) {
	for _, d := range []Design{Mesh, FBfly, NOCOut, Ideal} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			m := Measure(small(d), workload.Synth(workload.MapReduceC), 2000, 4000)
			if m.Instrs == 0 {
				t.Fatalf("%v: no instructions committed", d)
			}
			if m.AggIPC <= 0 || m.PerCoreIPC <= 0 {
				t.Fatalf("%v: IPC not positive: %+v", d, m)
			}
			if m.Dir.Accesses == 0 {
				t.Fatalf("%v: LLC never accessed", d)
			}
			if m.Net.Delivered == 0 {
				t.Fatalf("%v: network idle", d)
			}
		})
	}
}

func TestDefault64CoreConfigsExecute(t *testing.T) {
	for _, d := range []Design{Mesh, NOCOut} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			m := Measure(DefaultConfig(d), workload.Synth(workload.MapReduceW), 1500, 2500)
			if m.ActiveCores != 64 {
				t.Fatalf("active = %d", m.ActiveCores)
			}
			if m.Instrs == 0 || m.Dir.Accesses == 0 {
				t.Fatalf("64-core %v silent: %+v", d, m)
			}
		})
	}
}

func TestWorkloadScalingLimitDisablesCores(t *testing.T) {
	cfg := DefaultConfig(NOCOut)
	c := New(cfg, workload.Synth(workload.WebSearch)) // 16-core workload
	if c.ActiveCores() != 16 {
		t.Fatalf("active = %d, want 16", c.ActiveCores())
	}
	enabled := 0
	adjacent := 0
	for i, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		enabled++
		_, _, row := c.NocNet.Cfg.CoreLoc(noc.NodeID(i))
		if row == 0 {
			adjacent++
		}
	}
	if enabled != 16 {
		t.Fatalf("enabled = %d", enabled)
	}
	// §5.3: the 16 active cores are the tiles adjacent to the LLC.
	if adjacent != 16 {
		t.Fatalf("only %d/16 active cores adjacent to the LLC", adjacent)
	}
}

func TestCentralTilesChosenOnMesh(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	c := New(cfg, workload.Synth(workload.WebFrontend)) // 16-core workload
	if c.ActiveCores() != 16 {
		t.Fatalf("active = %d", c.ActiveCores())
	}
	for i, co := range c.Cores {
		if !co.Enabled() {
			continue
		}
		x, y := c.Plan.Coord(noc.NodeID(i))
		if x < 2 || x > 5 || y < 2 || y > 5 {
			t.Fatalf("active core %d at (%d,%d) is not central", i, x, y)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Measure(small(Mesh), workload.Synth(workload.SATSolver), 1000, 2000)
	b := Measure(small(Mesh), workload.Synth(workload.SATSolver), 1000, 2000)
	if a.Instrs != b.Instrs || a.Dir.Accesses != b.Dir.Accesses || a.Net.Delivered != b.Net.Delivered {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg := small(Mesh)
	cfg.Seed = 2
	c := Measure(cfg, workload.Synth(workload.SATSolver), 1000, 2000)
	if c.Instrs == a.Instrs && c.Net.Delivered == a.Net.Delivered {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestIdealBeatsMeshAt64Cores(t *testing.T) {
	// Figure 1's premise: interconnect delay costs real performance at 64
	// cores on latency-sensitive workloads.
	mi := Measure(DefaultConfig(Ideal), workload.Synth(workload.DataServing), 3000, 6000)
	mm := Measure(DefaultConfig(Mesh), workload.Synth(workload.DataServing), 3000, 6000)
	if mi.AggIPC <= mm.AggIPC {
		t.Fatalf("ideal (%.3f) should outperform mesh (%.3f)", mi.AggIPC, mm.AggIPC)
	}
}

func TestInstructionMissesHitInLLC(t *testing.T) {
	// The instruction footprint fits the LLC: after warm-up, LLC misses
	// should be dominated by data, and the ifetch stall share must be
	// meaningful (the paper's core observation).
	m := Measure(DefaultConfig(Mesh), workload.Synth(workload.DataServing), 5000, 10000)
	if m.L1IMPKI < 5 {
		t.Fatalf("L1-I MPKI = %.1f: instruction footprint should thrash the L1-I", m.L1IMPKI)
	}
	if m.IfetchStallPct < 0.05 {
		t.Fatalf("ifetch stall share = %.3f: instruction fetches should matter", m.IfetchStallPct)
	}
}

func TestSnoopsAreRare(t *testing.T) {
	// Figure 4: coherence activity is negligible (~2% of LLC accesses).
	m := Measure(DefaultConfig(Mesh), workload.Synth(workload.MapReduceC), 5000, 10000)
	rate := m.Dir.SnoopRate()
	if rate > 0.10 {
		t.Fatalf("snoop rate %.3f: should be rare", rate)
	}
}

func TestMemoryTrafficFlows(t *testing.T) {
	m := Measure(small(Mesh), workload.Synth(workload.WebSearch), 2000, 4000)
	if m.Dir.MemReads == 0 {
		t.Fatal("vast dataset must generate memory reads")
	}
}

func TestMetricsLatencyAccounting(t *testing.T) {
	m := Measure(small(NOCOut), workload.Synth(workload.MapReduceW), 2000, 4000)
	if m.AvgNetLatency <= 0 || m.AvgRespLatency <= 0 {
		t.Fatalf("latency accounting broken: %+v", m)
	}
}
