package chip

import (
	"strings"
	"sync"
	"testing"

	"nocout/internal/physic"
)

// stubOrg is a registrable organization that reuses the mesh's behaviour.
type stubOrg struct {
	name    string
	aliases []string
}

func (s stubOrg) Name() string          { return s.name }
func (s stubOrg) Aliases() []string     { return s.aliases }
func (s stubOrg) DefaultConfig() Config { return Table1Config() }
func (s stubOrg) Build(cfg Config) *Fabric {
	return meshOrg{}.Build(cfg)
}
func (s stubOrg) AreaModel(cfg Config) (physic.Breakdown, physic.BufferKind) {
	return meshOrg{}.AreaModel(cfg)
}

// resetRegistry snapshots the global registry and restores it on cleanup,
// so registration tests cannot leak designs into other tests.
func resetRegistry(t *testing.T) {
	t.Helper()
	orgMu.Lock()
	savedOrgs := append([]Organization(nil), orgs...)
	savedAliases := map[string]Design{}
	for k, v := range orgAliases {
		savedAliases[k] = v
	}
	orgMu.Unlock()
	t.Cleanup(func() {
		orgMu.Lock()
		orgs = savedOrgs
		orgAliases = savedAliases
		orgMu.Unlock()
	})
}

func TestRegisterOrganization(t *testing.T) {
	resetRegistry(t)

	if _, err := RegisterOrganization(stubOrg{name: ""}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if _, err := RegisterOrganization(stubOrg{name: "Mesh"}); err == nil {
		t.Fatal("duplicate of a builtin name must be rejected")
	}
	if _, err := RegisterOrganization(stubOrg{name: "Ring", aliases: []string{"ideal"}}); err == nil {
		t.Fatal("alias colliding with a builtin must be rejected")
	}
	if _, err := RegisterOrganization(stubOrg{name: "Ring", aliases: []string{""}}); err == nil {
		t.Fatal("empty alias must be rejected")
	}

	d, err := RegisterOrganization(stubOrg{name: "Ring", aliases: []string{"ring-1d"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "Ring" {
		t.Fatalf("String() = %q", d.String())
	}
	for _, s := range []string{"Ring", "ring", "ring-1d"} {
		got, err := ParseDesign(s)
		if err != nil || got != d {
			t.Fatalf("ParseDesign(%q) = (%v, %v), want %v", s, got, err, d)
		}
	}
	if _, err := RegisterOrganization(stubOrg{name: "ring"}); err == nil {
		t.Fatal("names are case-insensitively unique")
	}

	// The registered design is a first-class citizen of the build path.
	cfg := DefaultConfig(d)
	if cfg.Design != d || cfg.Cores != 64 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if _, err := OrganizationOf(d); err != nil {
		t.Fatal(err)
	}
}

func TestOrganizationOfUnknown(t *testing.T) {
	if _, err := OrganizationOf(Design(200)); err == nil {
		t.Fatal("unregistered design must be a hard error")
	}
	if _, err := ParseDesign("warp-drive"); err == nil {
		t.Fatal("unknown name must error")
	} else if !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("error should list known designs: %v", err)
	}
}

// TestRegistryConcurrentUse exercises the registry the way the experiment
// engine does — many goroutines resolving designs while another registers —
// so `go test -race` patrols the locking.
func TestRegistryConcurrentUse(t *testing.T) {
	resetRegistry(t)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				if _, err := ParseDesign("mesh"); err != nil {
					t.Error(err)
					return
				}
				_ = NOCOut.String()
				if _, err := OrganizationOf(FBfly); err != nil {
					t.Error(err)
					return
				}
				_ = Organizations()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := RegisterOrganization(stubOrg{name: "Concurrent Ring"}); err != nil {
			t.Error(err)
		}
	}()
	close(start)
	wg.Wait()

	if _, err := ParseDesign("concurrent ring"); err != nil {
		t.Fatal(err)
	}
}
