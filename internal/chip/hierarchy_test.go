package chip

import (
	"strings"
	"testing"

	"nocout/internal/workload"
)

// TestFitWays pins the associativity-shrinking rule buildAgents used to
// inline: ways halve until the set count is a power of two, and a slice
// too small for one direct-mapped set is an error.
func TestFitWays(t *testing.T) {
	cases := []struct {
		bytes, ways int
		want        int
		wantErr     bool
	}{
		{8 << 20 / 64, 16, 16, false}, // Table 1: 64 banks of 128KB, 16 ways, 128 sets
		{1 << 20, 16, 16, false},
		{64 * 16, 16, 16, false},   // exactly one 16-way set
		{64 * 8, 16, 8, false},     // 8 lines: halve once to 8 ways, 1 set
		{64, 16, 1, false},         // smallest legal slice: one line, direct-mapped
		{64 * 12, 16, 8, false},    // 12 lines: 16 ways fit no set; 8 ways give one
		{0, 16, 0, true},           // empty slice: no associativity fits
		{64 * 3 * 16, 16, 0, true}, // 48 lines: never a power-of-two set count
	}
	for _, c := range cases {
		got, err := FitWays(c.bytes, c.ways)
		if c.wantErr {
			if err == nil {
				t.Errorf("FitWays(%d, %d) = %d, want error", c.bytes, c.ways, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("FitWays(%d, %d): %v", c.bytes, c.ways, err)
			continue
		}
		if got != c.want {
			t.Errorf("FitWays(%d, %d) = %d, want %d", c.bytes, c.ways, got, c.want)
		}
		sets := c.bytes / 64 / got
		if sets < 1 || sets&(sets-1) != 0 {
			t.Errorf("FitWays(%d, %d) = %d yields %d sets (not 2^k)", c.bytes, c.ways, got, sets)
		}
	}
	if _, err := FitWays(1<<20, 0); err == nil {
		t.Error("FitWays must reject non-positive associativity")
	}
}

// TestLLCSliceTooSmallPanics pins the chip-level panic path the old
// inline loop had: a zero-capacity LLC cannot build.
func TestLLCSliceTooSmallPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New must panic when the LLC slice is too small")
		}
		if !strings.Contains(strings.ToLower(anyString(r)), "slice too small") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	cfg.LLCMB = 0
	New(cfg, workload.Synth(workload.MapReduceC))
}

func anyString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

// TestSmallestLegalSliceBuilds exercises the smallest slice FitWays
// accepts end to end: 64 cores dividing a 1MB LLC leaves 16KB slices
// whose 16 ways survive (256 sets... 16KB/64/16 = 16 sets), and the chip
// still measures.
func TestSmallestLegalSliceBuilds(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.LLCMB = 1 // 16KB per bank at 64 banks
	m := Measure(cfg, workload.Synth(workload.MapReduceC), 1000, 2000)
	if m.Instrs == 0 || m.Dir.Accesses == 0 {
		t.Fatalf("tiny-slice chip silent: %+v", m)
	}
}

// TestHierarchyRegistry covers the registry contract: handle 0 is
// SharedNUCA, unknown handles and names hard-error, duplicates are
// rejected.
func TestHierarchyRegistry(t *testing.T) {
	if SharedNUCA.String() != "SharedNUCA" {
		t.Fatalf("handle 0 = %q, want SharedNUCA", SharedNUCA.String())
	}
	if id, err := ParseHierarchy("shared-nuca"); err != nil || id != SharedNUCA {
		t.Fatalf("ParseHierarchy(shared-nuca) = (%v, %v)", id, err)
	}
	if _, err := ParseHierarchy("no-such-hierarchy"); err == nil {
		t.Fatal("unknown hierarchy name must hard-error")
	}
	if _, err := HierarchyOf(HierarchyID(250)); err == nil {
		t.Fatal("unknown hierarchy handle must hard-error")
	}
	if HierarchyID(250).String() == "" {
		t.Fatal("unknown handle should still format")
	}
	if _, err := RegisterHierarchy(sharedNUCA{}); err == nil {
		t.Fatal("duplicate hierarchy name must be rejected")
	}
}

// TestRegionOwner pins the region-affine classifier on the builtin
// synthetic layout and its fallback on irregular layouts.
func TestRegionOwner(t *testing.T) {
	lay := workload.Synth(workload.DataServing).Layout()
	owner := RegionOwner(16, lay)

	for core := 0; core < 16; core++ {
		r := lay.Local(core)
		for _, a := range []uint64{r.Base, r.Base + r.Size - 64, r.Base + r.Size + 4096} {
			// The window extends past the Local region to the inter-core
			// stride: streaming addresses beyond LocalB stay owned.
			c, ok := owner(a / 64)
			if !ok || c != core {
				t.Fatalf("line %#x: owner = (%d, %v), want (%d, true)", a/64, c, ok, core)
			}
		}
	}
	// Shared regions are owned by nobody.
	for _, r := range []workload.Region{lay.Instr, lay.Hot} {
		if _, ok := owner(r.Base / 64); ok {
			t.Fatalf("shared region %#x must not be owned", r.Base)
		}
	}
	// Below the first window: unowned.
	if _, ok := owner(0); ok {
		t.Fatal("line 0 must not be owned")
	}

	// Irregular layouts disable affinity instead of misrouting.
	irr := workload.Layout{Local: func(core int) workload.Region {
		return workload.Region{Base: uint64(core*core) << 30, Size: 1 << 20}
	}}
	iOwner := RegionOwner(16, irr)
	for _, line := range []uint64{0, 1 << 24, 1 << 30} {
		if _, ok := iOwner(line); ok {
			t.Fatal("irregular layout must own nothing")
		}
	}

	// Single core: everything at/after its base is its own.
	one := RegionOwner(1, lay)
	if c, ok := one(lay.Local(0).Base / 64); !ok || c != 0 {
		t.Fatal("single-core dataset must be owned by core 0")
	}
}

// TestChannelHashCoversAllChannels is the renamed home of the historical
// channelOf spreading test (the hash is now part of the hierarchy API).
func TestChannelHashCoversAllChannels(t *testing.T) {
	seen := map[int]bool{}
	for line := uint64(0); line < 4096; line++ {
		ch := ChannelHash(line, 4)
		if ch < 0 || ch > 3 {
			t.Fatalf("ChannelHash out of range: %d", ch)
		}
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d channels used", len(seen))
	}
}

// TestSharedNUCALayoutMatchesLegacy pins the baseline hierarchy's layout
// decisions to the pre-refactor constants: line-modulo homes over the
// fabric's banks, hash-interleaved channels, Table 1 bank sizing.
func TestSharedNUCALayoutMatchesLegacy(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	c := New(cfg, workload.Synth(workload.MapReduceC))
	ml := c.Memory
	if ml.NumBanks != 64 {
		t.Fatalf("NumBanks = %d, want 64", ml.NumBanks)
	}
	bc := ml.BankConf(0)
	if bc.SizeBytes != 8<<20/64 || bc.Ways != 16 || bc.Interleave != 64 {
		t.Fatalf("bank config changed: %+v", bc)
	}
	for line := uint64(0); line < 1<<14; line++ {
		node, bank := ml.Home(line)
		if want := int(line % 64); bank != want || node != c.Fabric.BankNode(want) {
			t.Fatalf("line %d: home (%v, %d), want (%v, %d)", line, node, bank, c.Fabric.BankNode(want), want)
		}
		if got, want := ml.ChannelOf(line), channelOf(line, cfg.MemChannels); got != want {
			t.Fatalf("line %d: channel %d, want %d", line, got, want)
		}
	}
}
