package chip

import (
	"fmt"
	"strings"
	"sync"

	"nocout/internal/coherence"
	"nocout/internal/mem"
	"nocout/internal/noc"
	"nocout/internal/physic"
	"nocout/internal/workload"
)

// This file defines the pluggable memory-hierarchy API, the third
// registry-backed extension axis after Organization (the interconnect) and
// Workload (the traffic source). A Hierarchy decides everything about the
// on-chip memory system that is not the interconnect itself: how many LLC
// banks exist and where they attach, which bank is the home (directory)
// for each line, which memory channel each line drains to, and how the
// banks, L1s, and memory channels are configured. The chip assembles
// agents generically against the MemoryLayout a hierarchy builds; the
// baseline SharedNUCA hierarchy reproduces the paper's shared
// address-interleaved NUCA bit-identically, and registered extensions
// (XOR-hashed and region-affine placement, private per-tile slices,
// clustered LLCs) open new scenario space through the same API.

// HierarchyID selects the memory hierarchy. Like Design, it is a
// lightweight handle into a registry: SharedNUCA below names the paper's
// baseline, and RegisterHierarchy mints handles for new ones.
type HierarchyID uint8

// SharedNUCA is the paper's baseline hierarchy: one shared NUCA LLC,
// banks striped line-modulo across the fabric's bank endpoints, memory
// channels interleaved by a folded hash. It is the zero value, so configs
// that never mention a hierarchy keep the Table 1 system.
const SharedNUCA HierarchyID = 0

// Hierarchy is a self-describing memory hierarchy: the unit of extension
// for the memory-system design space. An implementation bundles its
// naming, its preferred chip tuning, its memory-system construction, and
// its physical (area + leakage) contribution; registering it makes the
// hierarchy resolvable everywhere a HierarchyID is — CLI flags, sweeps,
// JSON reports. Implementations must be stateless: Build and Physical are
// called concurrently from experiment worker pools.
type Hierarchy interface {
	// Name is the display name ("SharedNUCA", "PrivateLLC"); it is how
	// the hierarchy prints, marshals, and is primarily parsed.
	Name() string
	// Aliases lists extra (lowercase) CLI spellings; the lowercased Name
	// is always accepted and need not be repeated.
	Aliases() []string
	// DefaultConfig applies the hierarchy's preferred tuning to a base
	// chip configuration (e.g. the cluster size for a clustered LLC);
	// hierarchies with no tuning of their own return base unchanged.
	DefaultConfig(base Config) Config
	// Build decides the memory system for cfg over the organization's
	// built fabric: bank count and placement, per-agent configurations,
	// the home (directory) mapping, and the memory-channel mapping. The
	// workload layout is available for region-affine placements. Build
	// fails when the hierarchy cannot inhabit the fabric (e.g. per-tile
	// slices on a non-tiled organization).
	Build(cfg Config, fab *Fabric, lay workload.Layout) (*MemoryLayout, error)
	// Physical returns the hierarchy's silicon contribution for cfg:
	// LLC storage and directory area plus standby leakage.
	Physical(cfg Config) HierPhysical
}

// MemoryLayout is a built memory system: the agent placement and mapping
// functions a Chip needs to instantiate and wire LLC banks, L1s, and
// memory controllers. All functions must be pure: the home and channel
// mappings in particular are part of the determinism contract and are
// probed exhaustively by the conformance suite.
type MemoryLayout struct {
	// NumBanks is the number of LLC banks (directory slices).
	NumBanks int
	// BankNode maps a bank index to its network attachment point.
	BankNode func(bank int) noc.NodeID
	// BankConf returns bank b's configuration (size, ways, line
	// compaction); banks may be heterogeneous (private slices plus
	// memory-side directory banks).
	BankConf func(bank int) coherence.BankConfig
	// L1Conf configures every core's L1 controller.
	L1Conf coherence.L1Config
	// MemConf configures every memory channel.
	MemConf mem.Config
	// Home maps a line to its home (directory) bank: the node the L1s
	// send demand requests to and the bank index at that node. Every
	// line has exactly one home.
	Home func(line uint64) (noc.NodeID, int)
	// ChannelOf maps a line to the memory channel that services its
	// fills and writebacks.
	ChannelOf func(line uint64) int
}

// HierPhysical is a hierarchy's physical contribution: LLC storage area,
// directory/control area, and their standby leakage (the NoC's own
// area/power stays with the organization's AreaModel).
type HierPhysical struct {
	StorageMM2 float64 `json:"storage_mm2"`
	DirMM2     float64 `json:"dir_mm2"`
	LeakageW   float64 `json:"leakage_w"`
}

// TotalMM2 returns the summed area.
func (p HierPhysical) TotalMM2() float64 { return p.StorageMM2 + p.DirMM2 }

// String formats the contribution.
func (p HierPhysical) String() string {
	return fmt.Sprintf("storage %.2f + directory %.2f = %.2f mm², leakage %.2f W",
		p.StorageMM2, p.DirMM2, p.TotalMM2(), p.LeakageW)
}

// The hierarchy registry. Registration is rare and reads are hot (every
// chip build, String, and ParseHierarchy), so it is guarded by a RWMutex
// and safe for concurrent use from experiment worker pools.
var (
	hierMu      sync.RWMutex
	hiers       []Hierarchy
	hierAliases = map[string]HierarchyID{}
)

func init() {
	if _, err := RegisterHierarchy(sharedNUCA{}); err != nil {
		panic(err)
	}
}

// RegisterHierarchy adds a hierarchy to the registry and returns its
// HierarchyID handle. The name and aliases must be non-empty and unique
// (case-insensitively) across the registry.
func RegisterHierarchy(h Hierarchy) (HierarchyID, error) {
	name := strings.TrimSpace(h.Name())
	if name == "" {
		return 0, fmt.Errorf("chip: RegisterHierarchy needs a name")
	}
	keys := []string{strings.ToLower(name)}
	for _, a := range h.Aliases() {
		a = strings.ToLower(strings.TrimSpace(a))
		if a == "" {
			return 0, fmt.Errorf("chip: hierarchy %q has an empty alias", name)
		}
		if a != keys[0] {
			keys = append(keys, a)
		}
	}
	hierMu.Lock()
	defer hierMu.Unlock()
	if len(hiers) >= 256 {
		return 0, fmt.Errorf("chip: hierarchy registry full")
	}
	for _, k := range keys {
		// The write lock is held: read the owner's name directly rather
		// than through HierarchyID.String, which would re-enter the lock.
		if id, dup := hierAliases[k]; dup {
			return 0, fmt.Errorf("chip: hierarchy name %q already registered by %s", k, hiers[id].Name())
		}
	}
	id := HierarchyID(len(hiers))
	hiers = append(hiers, h)
	for _, k := range keys {
		hierAliases[k] = id
	}
	return id, nil
}

// HierarchyOf resolves a HierarchyID to its registered hierarchy; unknown
// hierarchies are a hard error.
func HierarchyOf(id HierarchyID) (Hierarchy, error) {
	hierMu.RLock()
	defer hierMu.RUnlock()
	if int(id) >= len(hiers) {
		return nil, fmt.Errorf("chip: hierarchy %d is not registered", uint8(id))
	}
	return hiers[id], nil
}

// Hierarchies returns every registered hierarchy in HierarchyID order.
func Hierarchies() []Hierarchy {
	hierMu.RLock()
	defer hierMu.RUnlock()
	out := make([]Hierarchy, len(hiers))
	copy(out, hiers)
	return out
}

// String returns the hierarchy's display name.
func (id HierarchyID) String() string {
	if h, err := HierarchyOf(id); err == nil {
		return h.Name()
	}
	return fmt.Sprintf("Hierarchy(%d)", uint8(id))
}

// ParseHierarchy resolves a hierarchy from any registered spelling, the
// display names and the CLI shorthands, case-insensitively
// (shared-nuca | nuca-xor | private | clustered | ...).
func ParseHierarchy(s string) (HierarchyID, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	hierMu.RLock()
	id, ok := hierAliases[key]
	hierMu.RUnlock()
	if !ok {
		var names []string
		for _, h := range Hierarchies() {
			names = append(names, strings.ToLower(h.Name()))
		}
		return 0, fmt.Errorf("chip: unknown hierarchy %q (want %s)", s, strings.Join(names, " | "))
	}
	return id, nil
}

// MarshalText encodes the hierarchy by name, so JSON reports read
// "PrivateLLC" instead of an opaque enum value.
func (id HierarchyID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText decodes any spelling ParseHierarchy accepts.
func (id *HierarchyID) UnmarshalText(b []byte) error {
	v, err := ParseHierarchy(string(b))
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// FitWays shrinks a requested associativity until capacityBytes of
// storage yields a power-of-two set count (cache.NewArray's invariant),
// halving the ways each step. Tiny LLC slices — a large chip dividing a
// small LLC — land here; a slice too small to hold even one direct-mapped
// set is an error.
func FitWays(capacityBytes, ways int) (int, error) {
	if ways < 1 {
		return 0, fmt.Errorf("chip: associativity %d is not positive", ways)
	}
	for {
		sets := capacityBytes / 64 / ways
		if sets >= 1 && sets&(sets-1) == 0 {
			return ways, nil
		}
		ways /= 2
		if ways == 0 {
			return 0, fmt.Errorf("chip: LLC slice too small (%d bytes)", capacityBytes)
		}
	}
}

// ChannelHash interleaves lines across memory channels with a folded hash
// so that no address region (per-core local areas, instruction region)
// aliases onto a single channel. It is the default ChannelOf of every
// builtin hierarchy.
func ChannelHash(line uint64, channels int) int {
	h := line ^ line>>6 ^ line>>13 ^ line>>19 ^ line>>27
	return int(h % uint64(channels))
}

// channelOf is the historical name ChannelHash grew out of; the chip
// tests pin its spreading properties under this spelling.
func channelOf(line uint64, channels int) int { return ChannelHash(line, channels) }

// RegionOwner derives a line→owning-core classifier from a workload's
// address layout, for region-affine placements: each core's local dataset
// window (its Local region extended to the uniform inter-core stride)
// maps to that core; shared regions and anything outside the windows map
// to none. Layouts whose local bases are not a uniform ascending
// progression yield a classifier that owns nothing, so affine hierarchies
// degrade to their shared fallback instead of misrouting.
func RegionOwner(cores int, lay workload.Layout) func(line uint64) (owner int, ok bool) {
	noOwner := func(uint64) (int, bool) { return -1, false }
	if cores < 1 || lay.Local == nil {
		return noOwner
	}
	base := lay.Local(0).Base / 64
	var step uint64 // window stride in lines; 0 = single unbounded window
	if cores > 1 {
		b1 := lay.Local(1).Base / 64
		if b1 <= base {
			return noOwner
		}
		step = b1 - base
		for i := 2; i < cores; i++ {
			if lay.Local(i).Base/64 != base+uint64(i)*step {
				return noOwner
			}
		}
	}
	return func(line uint64) (int, bool) {
		if line < base {
			return -1, false
		}
		if step == 0 {
			return 0, true
		}
		c := (line - base) / step
		if c >= uint64(cores) {
			return -1, false
		}
		return int(c), true
	}
}

// --- SharedNUCA (the Table 1 baseline) --------------------------------------

// sharedNUCA is the paper's memory system: the fabric's banks form one
// shared NUCA LLC with lines striped bank = line mod NumBanks, and memory
// channels interleaved by ChannelHash. Registered at init as handle 0, it
// must reproduce the pre-refactor chip bit-identically — the conformance
// suite pins its state hash.
type sharedNUCA struct{}

func (sharedNUCA) Name() string                     { return "SharedNUCA" }
func (sharedNUCA) Aliases() []string                { return []string{"shared", "nuca", "shared-nuca"} }
func (sharedNUCA) DefaultConfig(base Config) Config { return base }

func (sharedNUCA) Build(cfg Config, fab *Fabric, _ workload.Layout) (*MemoryLayout, error) {
	nBanks := fab.NumBanks
	bcfg, err := BankConfigFor(cfg, cfg.LLCMB<<20/nBanks)
	if err != nil {
		return nil, err
	}
	bcfg.Interleave = nBanks // modulo homes: compact lines by the stripe
	return &MemoryLayout{
		NumBanks: nBanks,
		BankNode: fab.BankNode,
		BankConf: func(int) coherence.BankConfig { return bcfg },
		L1Conf:   L1ConfigFor(cfg),
		MemConf:  cfg.Mem,
		Home: func(line uint64) (noc.NodeID, int) {
			bank := int(line % uint64(nBanks))
			return fab.BankNode(bank), bank
		},
		ChannelOf: func(line uint64) int { return ChannelHash(line, cfg.MemChannels) },
	}, nil
}

func (sharedNUCA) Physical(cfg Config) HierPhysical {
	return LLCPhysicalFor(cfg, FabricBanks(cfg))
}

// FabricBanks returns the LLC bank count cfg's organization actually
// lays out — what a shared-family hierarchy (which adopts the fabric's
// banks rather than re-placing them) must charge per-bank silicon for.
// NOC-Out's segregated LLC row banks differently from one-slice-per-tile
// designs, so this builds the fabric to ask it (the same cost the
// organizations' own AreaModels pay). An unregistered design falls back
// to the tiled convention of one bank per core.
func FabricBanks(cfg Config) int {
	org, err := OrganizationOf(cfg.Design)
	if err != nil {
		return cfg.Cores
	}
	return org.Build(cfg).NumBanks
}

// BankConfigFor sizes one LLC bank of capacityBytes under cfg's common
// parameters: associativity via FitWays, the configured access latency,
// link width, and core count. No line compaction is set (any home
// mapping may feed the bank as-is); hierarchies with modulo-striped
// homes additionally set Interleave so the compaction matches.
func BankConfigFor(cfg Config, capacityBytes int) (coherence.BankConfig, error) {
	ways, err := FitWays(capacityBytes, cfg.LLCWays)
	if err != nil {
		return coherence.BankConfig{}, err
	}
	return coherence.BankConfig{
		SizeBytes: capacityBytes, Ways: ways, AccessLat: cfg.BankLat,
		LinkBits: cfg.LinkBits, NumCores: cfg.Cores,
	}, nil
}

// L1ConfigFor is the Table 1 L1 configuration at the chip's link width,
// shared by every builtin hierarchy.
func L1ConfigFor(cfg Config) coherence.L1Config {
	l1cfg := coherence.DefaultL1Config()
	l1cfg.LinkBits = cfg.LinkBits
	return l1cfg
}

// LLCPhysicalFor wraps the physic LLC model for a hierarchy splitting
// cfg's LLC across the given bank count.
func LLCPhysicalFor(cfg Config, banks int) HierPhysical {
	s, d, l := physic.LLCPhysical(float64(cfg.LLCMB), banks, cfg.Cores)
	return HierPhysical{StorageMM2: s, DirMM2: d, LeakageW: l}
}
