package chip

import (
	"testing"

	"nocout/internal/workload"
)

func TestMemoryChannelsBalanced(t *testing.T) {
	// The hashed channel interleave must spread traffic across all four
	// channels (a single saturated channel was a real bug during bring-up).
	c := New(DefaultConfig(Mesh), workload.Synth(workload.MapReduceC))
	c.PrewarmCaches()
	c.Warmup(5000)
	c.Run(15000)
	var total int64
	var min, max int64 = 1 << 62, 0
	for _, mc := range c.MCs {
		n := mc.Stats.Reads
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if total == 0 {
		t.Fatal("no memory traffic")
	}
	if min*4 < max {
		t.Fatalf("memory channels imbalanced: min %d, max %d", min, max)
	}
}

func TestPrewarmMakesInstructionsLLCResident(t *testing.T) {
	// With warmed checkpoints the LLC should serve instruction fetches
	// (high hit rate); without them, a short window measures a cold,
	// memory-bound system.
	warm := New(DefaultConfig(Mesh), workload.Synth(workload.SATSolver))
	warm.PrewarmCaches()
	warm.Warmup(5000)
	warm.Run(10000)
	wm := warm.Metrics()

	cold := New(DefaultConfig(Mesh), workload.Synth(workload.SATSolver))
	cold.Warmup(5000)
	cold.Run(10000)
	cm := cold.Metrics()

	if wm.AggIPC <= cm.AggIPC {
		t.Fatalf("prewarming should help: warm %.2f vs cold %.2f", wm.AggIPC, cm.AggIPC)
	}
	if wm.Dir.MissRate() >= cm.Dir.MissRate() {
		t.Fatalf("prewarm should cut LLC misses: warm %.2f vs cold %.2f",
			wm.Dir.MissRate(), cm.Dir.MissRate())
	}
}

func TestNOCOutBankPortsCarryTraffic(t *testing.T) {
	// Every LLC bank must see traffic through its dedicated port.
	c := New(DefaultConfig(NOCOut), workload.Synth(workload.MapReduceW))
	c.PrewarmCaches()
	c.Warmup(5000)
	c.Run(10000)
	for i, b := range c.Banks {
		if b.Stats.Accesses == 0 {
			t.Fatalf("bank %d idle: homing or port wiring broken", i)
		}
	}
	if len(c.Banks) != 16 {
		t.Fatalf("NOC-Out should have 16 banks (8 tiles x 2), got %d", len(c.Banks))
	}
}

func TestBankingSweepBuilds(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(NOCOut)
		cfg.BanksPerLLCTile = banks
		m := Measure(cfg, workload.Synth(workload.WebSearch), 2000, 3000)
		if m.Instrs == 0 {
			t.Fatalf("banks/tile=%d produced no work", banks)
		}
	}
}

func TestConcentrated128CoreChip(t *testing.T) {
	cfg := DefaultConfig(NOCOut)
	cfg.Cores = 128
	cfg.NOCOut.Columns = 8
	cfg.NOCOut.RowsPerSide = 4
	cfg.NOCOut.Concentration = 2
	w := workload.Unlimited(workload.Synth(workload.MapReduceC))
	m := Measure(cfg, w, 3000, 5000)
	if m.ActiveCores != 128 {
		t.Fatalf("active = %d", m.ActiveCores)
	}
	if m.Instrs == 0 {
		t.Fatal("concentrated chip silent")
	}
}

func TestExpressLink128CoreChip(t *testing.T) {
	cfg := DefaultConfig(NOCOut)
	cfg.Cores = 128
	cfg.NOCOut.Columns = 8
	cfg.NOCOut.RowsPerSide = 8
	cfg.NOCOut.ExpressFrom = 4
	w := workload.Unlimited(workload.Synth(workload.MapReduceC))
	m := Measure(cfg, w, 3000, 5000)
	if m.Instrs == 0 {
		t.Fatal("express chip silent")
	}
}

func TestNetRoutersAccessor(t *testing.T) {
	mesh := New(DefaultConfig(Mesh), workload.Synth(workload.WebSearch))
	if len(mesh.NetRouters()) != 64 {
		t.Fatalf("mesh routers = %d", len(mesh.NetRouters()))
	}
	no := New(DefaultConfig(NOCOut), workload.Synth(workload.WebSearch))
	// 64 reduction + 64 dispersion + 8 LLC routers.
	if len(no.NetRouters()) != 136 {
		t.Fatalf("NOC-Out routers = %d, want 136", len(no.NetRouters()))
	}
	ideal := New(DefaultConfig(Ideal), workload.Synth(workload.WebSearch))
	if len(ideal.NetRouters()) != 0 {
		t.Fatal("ideal fabric has no routers")
	}
}

func TestDesignString(t *testing.T) {
	if Mesh.String() != "Mesh" || FBfly.String() != "Flattened Butterfly" ||
		NOCOut.String() != "NOC-Out" || Ideal.String() != "Ideal" {
		t.Fatal("design names wrong")
	}
	if Design(99).String() == "" {
		t.Fatal("unknown design should still format")
	}
}

func TestChannelOfCoversAllChannels(t *testing.T) {
	seen := map[int]bool{}
	for line := uint64(0); line < 4096; line++ {
		ch := channelOf(line, 4)
		if ch < 0 || ch > 3 {
			t.Fatalf("channelOf out of range: %d", ch)
		}
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d channels used", len(seen))
	}
	// The pathological per-core local strides must spread too.
	seen = map[int]bool{}
	for core := uint64(0); core < 64; core++ {
		base := (uint64(0x0100_0000_0000) + core*0x0001_0000_0000) / 64
		seen[channelOf(base, 4)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("per-core bases alias onto %d channels", len(seen))
	}
}
