package tech

import (
	"math"
	"testing"
)

func TestWireCycles(t *testing.T) {
	// 125 ps/mm at 2 GHz: 1 cycle covers 4 mm.
	cases := []struct {
		mm   float64
		want int64
	}{
		{0, 1},   // latched minimum
		{1, 1},   // 125 ps < 500 ps
		{4, 1},   // exactly one cycle
		{4.1, 2}, // just over
		{8, 2},
		{16, 4},
	}
	for _, c := range cases {
		if got := WireCycles(c.mm); got != c.want {
			t.Errorf("WireCycles(%v) = %d, want %d", c.mm, got, c.want)
		}
	}
}

func TestCrossbarAreaGrowsQuadratically(t *testing.T) {
	a5 := CrossbarAreaMM2(5, 128)
	a15 := CrossbarAreaMM2(15, 128)
	if r := a15 / a5; math.Abs(r-9) > 1e-9 {
		t.Fatalf("3x the ports should cost 9x the area, got %vx", r)
	}
	w64 := CrossbarAreaMM2(5, 64)
	if r := a5 / w64; math.Abs(r-4) > 1e-9 {
		t.Fatalf("2x the width should cost 4x the area, got %vx", r)
	}
}

func TestMuxSpecialCase(t *testing.T) {
	mux := CrossbarAreaMM2(2, 128)
	xbar := CrossbarAreaMM2(3, 128)
	if mux >= xbar {
		t.Fatalf("a 2-input mux (%v) must be far cheaper than a 3-port crossbar (%v)", mux, xbar)
	}
	if mux <= 0 {
		t.Fatal("mux area must be positive")
	}
	// Mux area is linear in width.
	if r := CrossbarAreaMM2(2, 256) / mux; math.Abs(r-2) > 1e-9 {
		t.Fatalf("mux width scaling = %v, want 2", r)
	}
}

func TestPaperAnchors(t *testing.T) {
	// §5.2 constants the models are built on.
	if WirePsPerMM != 125 || WireFJPerBitMM != 50 {
		t.Fatal("wire constants diverged from the paper")
	}
	if CacheMM2PerMB != 3.2 || CoreMM2 != 2.9 {
		t.Fatal("macro areas diverged from the paper")
	}
	if ClockGHz != 2.0 || VoltageV != 0.9 || NodeNM != 32.0 {
		t.Fatal("operating point diverged from Table 1")
	}
	if SRAMMM2PerBit >= FlipFlopMM2PerBit {
		t.Fatal("SRAM must be denser than flip-flops (§5.2)")
	}
}
