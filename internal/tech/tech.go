// Package tech centralizes the 32 nm technology parameters the paper's
// methodology section (§5.2) publishes. Both the timing models (wire
// latencies) and the physical models (area, energy) read from here so the
// two views can never drift apart.
package tech

import "math"

// Operating point (Table 1).
const (
	ClockGHz = 2.0  // 2 GHz
	VoltageV = 0.9  // 0.9 V
	NodeNM   = 32.0 // 32 nm
)

// Wires: semi-global, 200 nm pitch, power-delay-optimized repeaters
// (§5.2): 125 ps/mm latency, 50 fJ/bit/mm on random data, repeaters are
// 19% of link energy.
const (
	WirePsPerMM        = 125.0
	WireFJPerBitMM     = 50.0
	RepeaterEnergyFrac = 0.19
	WirePitchMM        = 200e-6 // 200 nm in mm
)

// Repeater area per bit per mm of link. Wires route over logic; only the
// repeaters consume die area. Calibrated so the flattened butterfly's link
// budget lands near the paper's Figure 8 (links dominate its 23 mm²).
const RepeaterMM2PerBitMM = 2.3e-5

// Buffer cell areas (mm² per bit). ORION-style: flip-flop buffers for
// shallow mesh/NOC-Out queues, denser SRAM for the flattened butterfly's
// deep buffers (§5.2).
const (
	FlipFlopMM2PerBit = 3.0e-6
	SRAMMM2PerBit     = 0.6e-6
)

// Crossbar area model: a matrix crossbar's side grows with ports × flit
// width × wire pitch; area is the square of the side (ORION's w²n² form).
// CrossbarAreaMM2 returns the switch area for an n-port, widthBits-wide
// router.
func CrossbarAreaMM2(ports int, widthBits int) float64 {
	if ports <= 2 {
		// A 2-input mux, not a matrix crossbar (the NOC-Out tree nodes'
		// whole point, §4.1): linear in width.
		return float64(widthBits) * WirePitchMM * MuxHeightMM
	}
	side := float64(ports) * float64(widthBits) * WirePitchMM
	return xbarEfficiency * side * side
}

// xbarEfficiency derates the naive (ports·width·pitch)² matrix bound for
// layout efficiency; fitted to the §6.2 area anchors.
const xbarEfficiency = 0.75

// MuxHeightMM is the cell height of a 2:1 mux column.
const MuxHeightMM = 0.02

// Buffer energy per flit write+read, picojoules, per bit (ORION-flavoured
// small constants; the NoC power story is link-dominated as in §6.4).
const (
	BufferPJPerBit = 0.043 // flip-flop write + read per bit
	SRAMPJFactor   = 0.6   // SRAM buffers are more energy-efficient (§5.2)
	XbarPJPerBit   = 0.040 // per bit for a 5-port switch; scales ~sqrt(ports)
	ArbiterPJ      = 1.0
)

// Static (leakage) power per mm² of NoC logic, watts. Keeps idle networks
// from reporting zero power.
const LeakageWPerMM2 = 0.01

// Cache macros (CACTI-derived, §5.2): 3.2 mm² and ~500 mW per MB.
const (
	CacheMM2PerMB = 3.2
	CacheWPerMB   = 0.5
)

// Core (scaled Cortex-A15, §5.2): 2.9 mm² with L1s, 1.05 W at 2 GHz.
const (
	CoreMM2 = 2.9
	CoreW   = 1.05
)

// WireCycles converts a physical distance to whole clock cycles at the
// 2 GHz operating point (minimum 1 cycle: any real wire is latched).
func WireCycles(mm float64) int64 {
	ps := mm * WirePsPerMM
	cycles := int64(math.Ceil(ps * ClockGHz / 1000.0))
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}
