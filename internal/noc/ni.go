package noc

import (
	"fmt"

	"nocout/internal/sim"
)

// NI is a network interface: the boundary between a protocol agent (core,
// LLC bank, memory controller) and the network. It serializes packets into
// flits on the inject side (one flit per cycle through the local port,
// credit-gated) and reassembles flits into packets on the eject side.
type NI struct {
	Node NodeID

	injectQ [NumClasses]sim.Queue[*Packet]
	nextSeq [NumClasses]int
	out     OutPort // local port into the router's local input

	eject       *sim.Pipe[Flit]
	ejectCredit *sim.Pipe[Credit]

	deliver func(now sim.Cycle, p *Packet)
	stats   *Stats
	rr      int
}

// NewNI returns an unconnected network interface for node n.
func NewNI(n NodeID, stats *Stats) *NI {
	return &NI{Node: n, stats: stats}
}

// SetDeliver registers the packet delivery callback.
func (ni *NI) SetDeliver(fn func(now sim.Cycle, p *Packet)) { ni.deliver = fn }

// SetStats retargets the NI's counter sink. The shard planner points every
// NI at its domain's private shard so concurrent domains never write one
// Stats struct; RouterNetwork.fold drains the shards back into the shared
// counters (integer adds, so the merge is exact in any order).
func (ni *NI) SetStats(s *Stats) { ni.stats = s }

// ConnectNI wires an NI to its router: the NI's inject side feeds router
// input port in (injDelay cycles of wire), and router output port out feeds
// the NI's eject side (router pipeline + ejDelay cycles). ejectBuf is the
// eject-side buffering per VC the router sees as credits.
func ConnectNI(ni *NI, r *Router, in, out int, injDelay, ejDelay sim.Cycle, ejectBuf int) {
	ConnectNIInject(ni, r, in, injDelay)
	ConnectNIEject(ni, r, out, ejDelay, ejectBuf)
}

// ConnectNIInject wires only the NI's inject side into router input port in.
func ConnectNIInject(ni *NI, r *Router, in int, injDelay sim.Cycle) {
	inj := sim.NewPipe[Flit](fmt.Sprintf("ni%d->%s", ni.Node, r.Name), injDelay)
	injCr := sim.NewPipe[Credit](fmt.Sprintf("%s->ni%d.credit", r.Name, ni.Node), 1)
	ip := r.ins[in]
	ip.in = inj
	ip.creditOut = injCr
	ni.out.link = inj
	ni.out.creditIn = injCr
	for c := range ni.out.credits {
		ni.out.credits[c] = ip.cap
	}
}

// ConnectNIEject wires only the NI's eject side to router output port out.
func ConnectNIEject(ni *NI, r *Router, out int, ejDelay sim.Cycle, ejectBuf int) {
	if ejectBuf < 1 {
		ejectBuf = 1
	}
	ej := sim.NewPipe[Flit](fmt.Sprintf("%s->ni%d", r.Name, ni.Node), r.PipeDelay+ejDelay)
	ejCr := sim.NewPipe[Credit](fmt.Sprintf("ni%d->%s.credit", ni.Node, r.Name), 1)
	op := r.outs[out]
	op.link = ej
	op.creditIn = ejCr
	for c := range op.credits {
		op.credits[c] = ejectBuf
	}
	ni.eject = ej
	ni.ejectCredit = ejCr
}

// Send enqueues a packet for injection. The inject queue is unbounded; real
// back-pressure comes from the protocol agents' MSHR limits.
func (ni *NI) Send(now sim.Cycle, p *Packet) {
	p.InjectedAt = now
	if ni.stats != nil {
		ni.stats.Injected++
	}
	ni.injectQ[p.Class].Push(p)
}

// Pending returns the number of packets waiting or partially injected.
func (ni *NI) Pending() int {
	n := 0
	for c := range ni.injectQ {
		n += ni.injectQ[c].Len()
	}
	return n
}

// Tick drains credits and ejected flits, then injects at most one flit.
func (ni *NI) Tick(now sim.Cycle) {
	if ni.out.creditIn != nil {
		for {
			c, ok := ni.out.creditIn.Pop(now)
			if !ok {
				break
			}
			ni.out.credits[c.VC]++
		}
	}
	if ni.eject != nil {
		for {
			f, ok := ni.eject.Pop(now)
			if !ok {
				break
			}
			ni.ejectCredit.Push(now, Credit{VC: f.Pkt.Class})
			p := f.Pkt
			p.arrived++
			if p.arrived == p.Size {
				p.DeliveredAt = now
				if ni.stats != nil {
					ni.stats.RecordDelivery(p)
				}
				if ni.deliver == nil {
					panic(fmt.Sprintf("noc: node %d has no delivery callback", ni.Node))
				}
				ni.deliver(now, p)
			}
		}
	}
	ni.inject(now)
}

// BindWaker implements sim.WakeBinder: the inject queues and the eject
// pipe become wake sources. Inject-side credit returns are not wake events
// for the same reason as the router's (they enable no work while the
// inject queues are empty, and a non-empty inject queue keeps the NI
// awake). The NI must be fully connected before registration.
func (ni *NI) BindWaker(w sim.Waker) {
	for c := range ni.injectQ {
		ni.injectQ[c].SetWaker(w)
	}
	if ni.eject != nil {
		ni.eject.SetWaker(w)
	}
}

// NextWake implements sim.Sleeper: awake every cycle while packets wait to
// inject (injection may be credit-gated, and credits drain at tick start),
// asleep until the next in-flight ejecting flit otherwise.
func (ni *NI) NextWake(now sim.Cycle) sim.Cycle {
	for c := range ni.injectQ {
		if ni.injectQ[c].Len() > 0 {
			return now + 1
		}
	}
	if ni.eject != nil {
		if at, ok := ni.eject.NextAt(); ok {
			return at
		}
	}
	return sim.NeverWake
}

// inject sends at most one flit through the local port, rotating across
// classes for fairness.
func (ni *NI) inject(now sim.Cycle) {
	if ni.out.link == nil {
		return
	}
	for k := 0; k < NumClasses; k++ {
		c := Class((ni.rr + k) % NumClasses)
		p, ok := ni.injectQ[c].Peek()
		if !ok || ni.out.credits[c] <= 0 {
			continue
		}
		seq := ni.nextSeq[c]
		ni.out.link.Push(now, Flit{Pkt: p, Seq: seq})
		ni.out.credits[c]--
		if ni.stats != nil {
			ni.stats.InjectFlits++
		}
		if seq == p.Size-1 {
			ni.injectQ[c].Pop()
			ni.nextSeq[c] = 0
		} else {
			ni.nextSeq[c] = seq + 1
		}
		ni.rr = (int(c) + 1) % NumClasses
		return
	}
}

// RouterNetwork is a generic network built from Routers and NIs; the
// concrete topologies (mesh, flattened butterfly, NOC-Out's LLC network)
// are constructed by the topo and core packages.
type RouterNetwork struct {
	Name    string
	Routers []*Router
	NIs     []*NI // indexed by NodeID; entries may be nil for internal nodes
	stats   Stats

	// shards are the per-domain NI counter sinks when the network is
	// sharded (see BuildShardPlan); empty for single-domain use, where
	// every NI writes rn.stats directly.
	shards []Stats
}

// NewRouterNetwork returns an empty network shell with n NI slots.
func NewRouterNetwork(name string, n int) *RouterNetwork {
	return &RouterNetwork{Name: name, NIs: make([]*NI, n)}
}

// StatsRef returns the shared counters for builders to hand to NIs.
func (rn *RouterNetwork) StatsRef() *Stats { return &rn.stats }

// RN exposes the underlying router network; wrappers (NOC-Out's Network)
// forward it so the shard planner can reach the fabric behind any
// noc.Network implementation that has one.
func (rn *RouterNetwork) RN() *RouterNetwork { return rn }

// Stats implements Network. It folds the routers' (and, when sharded, the
// per-domain NI shards') local accounting into the shared counters first,
// so callers always see up-to-date totals; callers that reset the
// counters with *Stats() = Stats{} therefore discard exactly the activity
// up to this call.
func (rn *RouterNetwork) Stats() *Stats {
	rn.fold()
	return &rn.stats
}

// fold drains local accounting deltas into rn.stats: router flit/link
// counters in router order (the FlitLinkMM float accumulation order is
// fixed, so it is bit-identical across kernels and domain counts), then
// the per-domain NI shards in domain order (integer counters, exact).
// It must only run while no domain is stepping.
func (rn *RouterNetwork) fold() {
	for _, r := range rn.Routers {
		r.foldInto(&rn.stats)
	}
	for d := range rn.shards {
		sh := &rn.shards[d]
		rn.stats.Injected += sh.Injected
		rn.stats.Delivered += sh.Delivered
		rn.stats.PacketHops += sh.PacketHops
		rn.stats.InjectFlits += sh.InjectFlits
		for c := 0; c < NumClasses; c++ {
			rn.stats.LatencySum[c] += sh.LatencySum[c]
			rn.stats.Count[c] += sh.Count[c]
		}
		*sh = Stats{}
	}
}

// Send implements Network.
func (rn *RouterNetwork) Send(now sim.Cycle, p *Packet) {
	ni := rn.NIs[p.Src]
	if ni == nil {
		panic(fmt.Sprintf("noc: %s: node %d has no NI", rn.Name, p.Src))
	}
	ni.Send(now, p)
}

// SetDeliver implements Network.
func (rn *RouterNetwork) SetDeliver(n NodeID, fn func(now sim.Cycle, p *Packet)) {
	if rn.NIs[n] == nil {
		panic(fmt.Sprintf("noc: %s: node %d has no NI", rn.Name, n))
	}
	rn.NIs[n].SetDeliver(fn)
}

// Tick advances all routers then all NIs by one cycle. Because every
// connection is a latched pipe, the relative order is immaterial.
func (rn *RouterNetwork) Tick(now sim.Cycle) {
	for _, r := range rn.Routers {
		r.Tick(now)
	}
	for _, ni := range rn.NIs {
		if ni != nil {
			ni.Tick(now)
		}
	}
}

// RegisterInto implements sim.Registrar: instead of ticking the whole
// network as one component, every router and NI registers individually (in
// the same order whole-network ticking uses, so results are unchanged) and
// becomes an independent sleeper — quiescent regions of the fabric drop
// out of the simulation loop entirely. The network must be fully built
// before registration: pipes wired afterwards would miss their wakers.
func (rn *RouterNetwork) RegisterInto(e *sim.Engine) {
	for _, r := range rn.Routers {
		e.Register(r)
	}
	for _, ni := range rn.NIs {
		if ni != nil {
			e.Register(ni)
		}
	}
}

var _ Network = (*RouterNetwork)(nil)
var _ sim.Registrar = (*RouterNetwork)(nil)
var _ sim.Sleeper = (*Router)(nil)
var _ sim.Sleeper = (*NI)(nil)
