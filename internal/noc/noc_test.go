package noc

import (
	"testing"

	"nocout/internal/sim"
)

// lineNet builds a unidirectional chain of n routers, with an NI at router 0
// (inject) and an NI at router n-1 (eject). Route: always forward; at the
// last router, eject. Per-hop budget: pipeDelay + 1-cycle link.
func lineNet(t *testing.T, n int, pipeDelay sim.Cycle, bufCap int) *RouterNetwork {
	t.Helper()
	rn := NewRouterNetwork("line", 2)
	routers := make([]*Router, n)
	for i := 0; i < n; i++ {
		i := i
		r := NewRouter(NodeID(100+i), "r", pipeDelay, nil)
		r.SetRoute(func(p *Packet) int { return 0 }) // single output
		routers[i] = r
		r.AddIn("in", bufCap)
		r.AddOut("out")
	}
	for i := 0; i < n-1; i++ {
		Connect(routers[i], 0, routers[i+1], 0, 1, 1.0)
	}
	src := NewNI(0, rn.StatsRef())
	dst := NewNI(1, rn.StatsRef())
	ConnectNIInject(src, routers[0], 0, 1)
	ConnectNIEject(dst, routers[n-1], 0, 1, 8)
	rn.Routers = routers
	rn.NIs[0] = src
	rn.NIs[1] = dst
	return rn
}

func TestZeroLoadLatencyLine(t *testing.T) {
	// 3 routers, pipe=2, link=1 (mesh budget): inject wire 1 + 3 hops of
	// (SA->pipe+link) + eject wire (pipe+1).
	rn := lineNet(t, 3, 2, 4)
	e := sim.NewEngine()
	e.Register(rn)
	var got *Packet
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { got = p })
	p := &Packet{ID: 1, Class: ClassReq, Src: 0, Dst: 1, Size: 1}
	rn.Send(e.Now(), p)
	if !e.RunUntil(func() bool { return got != nil }, 100) {
		t.Fatal("packet never delivered")
	}
	// Expected: inject link 1 cycle; router i SA at arrival cycle, then
	// pipe+link = 3 to next; final router -> NI is pipe+1 = 3.
	// t=0 send; NI injects during tick at t=1 (flit pushed at 1, arrives 2);
	// r0 SA at 2 -> arrives r1 at 5; r1 SA -> r2 at 8; r2 SA -> NI at 11.
	if got.Latency() != 11 {
		t.Fatalf("zero-load latency = %d, want 11", got.Latency())
	}
	if got.Hops() != 3 {
		t.Fatalf("hops = %d, want 3", got.Hops())
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	rn := lineNet(t, 2, 2, 8)
	e := sim.NewEngine()
	e.Register(rn)
	var got *Packet
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { got = p })
	p := &Packet{ID: 1, Class: ClassResp, Src: 0, Dst: 1, Size: 5}
	rn.Send(e.Now(), p)
	if !e.RunUntil(func() bool { return got != nil }, 100) {
		t.Fatal("packet never delivered")
	}
	// Head: 1 (inject) + 1 (wire) + 3 + 3 = 8; tail trails by Size-1 = 4.
	if got.Latency() != 12 {
		t.Fatalf("5-flit latency = %d, want 12", got.Latency())
	}
}

func TestWormholePacketsStayAtomicPerVC(t *testing.T) {
	// Two packets of the same class injected back to back must arrive with
	// all flits of the first before the second completes.
	rn := lineNet(t, 2, 1, 4)
	e := sim.NewEngine()
	e.Register(rn)
	var order []uint64
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { order = append(order, p.ID) })
	a := &Packet{ID: 1, Class: ClassReq, Src: 0, Dst: 1, Size: 4}
	b := &Packet{ID: 2, Class: ClassReq, Src: 0, Dst: 1, Size: 4}
	rn.Send(e.Now(), a)
	rn.Send(e.Now(), b)
	if !e.RunUntil(func() bool { return len(order) == 2 }, 200) {
		t.Fatal("packets never delivered")
	}
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v", order)
	}
}

func TestClassesUseSeparateVCs(t *testing.T) {
	// A long response packet must not block a request packet indefinitely:
	// they travel in different VCs and interleave on the link.
	rn := lineNet(t, 2, 1, 4)
	e := sim.NewEngine()
	e.Register(rn)
	var deliveries []Class
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { deliveries = append(deliveries, p.Class) })
	big := &Packet{ID: 1, Class: ClassResp, Src: 0, Dst: 1, Size: 12}
	small := &Packet{ID: 2, Class: ClassReq, Src: 0, Dst: 1, Size: 1}
	rn.Send(e.Now(), big)
	rn.Send(e.Now(), small)
	if !e.RunUntil(func() bool { return len(deliveries) == 2 }, 300) {
		t.Fatal("packets never delivered")
	}
	// The single-flit request should complete before the 12-flit response.
	if deliveries[0] != ClassReq {
		t.Fatalf("request should overtake the long response; order = %v", deliveries)
	}
}

func TestCreditBackpressureNeverOverflows(t *testing.T) {
	// Saturate a 2-router line with tiny buffers; the credit protocol must
	// prevent buffer overflow (the router panics on violation).
	rn := lineNet(t, 2, 2, 1)
	e := sim.NewEngine()
	e.Register(rn)
	n := 0
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { n++ })
	for i := 0; i < 50; i++ {
		rn.Send(e.Now(), &Packet{ID: uint64(i), Class: ClassReq, Src: 0, Dst: 1, Size: 3})
	}
	if !e.RunUntil(func() bool { return n == 50 }, 5000) {
		t.Fatalf("only %d/50 packets delivered under backpressure", n)
	}
	st := rn.Stats()
	if st.Delivered != 50 || st.Injected != 50 {
		t.Fatalf("stats: injected=%d delivered=%d", st.Injected, st.Delivered)
	}
}

func TestThroughputOneFlitPerCycle(t *testing.T) {
	// A saturated line should sustain ~1 flit/cycle at the destination.
	rn := lineNet(t, 2, 1, 8)
	e := sim.NewEngine()
	e.Register(rn)
	n := 0
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { n++ })
	const packets = 200
	for i := 0; i < packets; i++ {
		rn.Send(e.Now(), &Packet{ID: uint64(i), Class: ClassReq, Src: 0, Dst: 1, Size: 1})
	}
	start := e.Now()
	if !e.RunUntil(func() bool { return n == packets }, 1000) {
		t.Fatalf("only %d/%d delivered", n, packets)
	}
	elapsed := int64(e.Now() - start)
	if elapsed > packets+20 {
		t.Fatalf("throughput too low: %d cycles for %d single-flit packets", elapsed, packets)
	}
}

func TestStaticPriorityOrdering(t *testing.T) {
	// With a static priority favouring port 1 (network) over port 0
	// (local), a saturated network port should win every arbitration.
	stats := &Stats{}
	r := NewRouter(0, "prio", 1, nil)
	r.SetRoute(func(p *Packet) int { return 0 })
	r.AddIn("local", 4)
	r.AddIn("net", 4)
	r.AddOut("out")
	r.SetPriority([]Cand{
		{Port: 1, VC: ClassResp}, {Port: 0, VC: ClassResp},
		{Port: 1, VC: ClassReq}, {Port: 0, VC: ClassReq},
	})
	sink := NewRouter(1, "sink", 1, nil)
	sink.SetRoute(func(p *Packet) int { return 0 })
	in := sink.AddIn("in", 4)
	sink.AddOut("out")
	Connect(r, 0, sink, in, 1, 1)
	ni := NewNI(0, stats)
	ConnectNI(ni, sink, sink.AddIn("ni", 4), 0, 1, 1, 64)
	var got []uint64
	ni.SetDeliver(func(now sim.Cycle, p *Packet) { got = append(got, p.ID) })

	// Preload both input buffers directly.
	local := &Packet{ID: 100, Class: ClassReq, Src: 0, Dst: 0, Size: 1}
	net := &Packet{ID: 200, Class: ClassReq, Src: 0, Dst: 0, Size: 1}
	r.ins[0].vcs[ClassReq].push(Flit{Pkt: local})
	r.ins[1].vcs[ClassReq].push(Flit{Pkt: net})

	e := sim.NewEngine()
	e.Register(sim.TickFunc(r.Tick), sim.TickFunc(sink.Tick), sim.TickFunc(ni.Tick))
	if !e.RunUntil(func() bool { return len(got) == 2 }, 100) {
		t.Fatal("packets never delivered")
	}
	if got[0] != 200 {
		t.Fatalf("network port should win static priority; order = %v", got)
	}
}

func TestFlitsFor(t *testing.T) {
	cases := []struct {
		payload, width, want int
	}{
		{0, 128, 1},  // header-only request on 128-bit link
		{64, 128, 5}, // 64B line + 8B header = 576 bits -> 5 flits
		{64, 64, 9},  // narrower link doubles serialization
		{64, 32, 18}, // Figure 9 regime
		{8, 128, 1},  // 16B total fits one flit
		{64, 576, 1}, // very wide link
	}
	for _, c := range cases {
		if got := FlitsFor(c.payload, c.width); got != c.want {
			t.Errorf("FlitsFor(%d,%d) = %d, want %d", c.payload, c.width, got, c.want)
		}
	}
}

func TestRouteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid route")
		}
	}()
	r := NewRouter(0, "bad", 1, func(p *Packet) int { return 7 })
	r.AddIn("in", 2)
	r.AddOut("out")
	r.ins[0].vcs[ClassReq].push(Flit{Pkt: &Packet{Size: 1}})
	r.Tick(1)
}

func TestStatsLatencyAccounting(t *testing.T) {
	rn := lineNet(t, 2, 1, 4)
	e := sim.NewEngine()
	e.Register(rn)
	done := 0
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { done++ })
	rn.Send(e.Now(), &Packet{ID: 1, Class: ClassReq, Src: 0, Dst: 1, Size: 1})
	rn.Send(e.Now(), &Packet{ID: 2, Class: ClassResp, Src: 0, Dst: 1, Size: 5})
	e.RunUntil(func() bool { return done == 2 }, 200)
	st := rn.Stats()
	if st.Count[ClassReq] != 1 || st.Count[ClassResp] != 1 {
		t.Fatalf("per-class counts wrong: %+v", st.Count)
	}
	if st.AvgLatency(ClassResp) <= st.AvgLatency(ClassReq) {
		t.Fatal("5-flit response should have higher latency than 1-flit request")
	}
	if st.AvgLatencyAll() <= 0 {
		t.Fatal("average latency should be positive")
	}
}
