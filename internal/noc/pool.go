package noc

// PacketPool recycles Packets so the protocol's steady state allocates
// nothing: a delivered packet is returned to the receiving node's pool and
// reused for that node's future sends. All operations on one pool happen
// on the owning node's tile — the agents that send from it and the
// dispatcher that recycles into it run in the same scheduling domain — so
// pools need no locking even under the sharded kernel, and because Get
// fully re-initializes the packet, pooling is invisible to simulation
// results (only heap addresses differ).
//
// Senders keep their message payload in a cell that travels with the
// packet: Get returns the packet's *any payload slot untouched, so a
// caller that stores a pointer (for example *coherence.Msg) on first use
// can overwrite the pointee on reuse without re-boxing — the second
// allocation the pool exists to eliminate.
type PacketPool struct {
	free []*Packet
}

// Packet-ID spaces: each protocol agent numbers its own packets inside a
// tag|agent|sequence partition, so IDs stay chip-unique without a shared
// counter — which would be both a data race and a nondeterminism source
// under the sharded kernel (IDs would depend on cross-domain interleaving).
const (
	PktTagL1  = 1
	PktTagDir = 2
	PktTagMC  = 3
)

// PacketIDBase returns the base of an agent's private packet-ID space;
// the agent ORs in its own sequence counter.
func PacketIDBase(tag, agent int) uint64 {
	return uint64(tag)<<56 | uint64(agent)<<40
}

// Get returns a packet with all transfer fields reset. The Payload slot is
// preserved from the packet's previous life (nil on a fresh packet) so
// callers can reuse their payload cell.
func (pl *PacketPool) Get() *Packet {
	n := len(pl.free)
	if n == 0 {
		return &Packet{}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	payload := p.Payload
	*p = Packet{Payload: payload}
	return p
}

// Put recycles a delivered packet. The caller must not retain p or its
// payload cell afterwards.
func (pl *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.free = append(pl.free, p)
}
