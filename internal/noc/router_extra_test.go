package noc

import (
	"testing"

	"nocout/internal/sim"
)

func TestVCCountDefaultsAndOverride(t *testing.T) {
	r := NewRouter(0, "r", 1, nil)
	r.AddIn("a", 4)
	r.AddIn("b", 4)
	if r.VCCount() != NumClasses {
		t.Fatalf("default VC count = %d", r.VCCount())
	}
	if r.BufferFlits() != 2*4*NumClasses {
		t.Fatalf("buffer flits = %d", r.BufferFlits())
	}
	r.SetVCCount(2)
	if r.BufferFlits() != 2*4*2 {
		t.Fatalf("buffer flits after override = %d", r.BufferFlits())
	}
}

func TestOutLinkLengths(t *testing.T) {
	a := NewRouter(0, "a", 1, func(p *Packet) int { return 0 })
	a.AddIn("in", 2)
	a.AddOut("o1")
	a.AddOut("o2") // left unconnected
	b := NewRouter(1, "b", 1, func(p *Packet) int { return 0 })
	b.AddIn("in", 2)
	b.AddOut("out")
	Connect(a, 0, b, 0, 1, 3.5)
	ls := a.OutLinkLengthsMM()
	if len(ls) != 1 || ls[0] != 3.5 {
		t.Fatalf("link lengths = %v", ls)
	}
}

func TestRoundRobinFairnessBetweenInputs(t *testing.T) {
	// Two saturated inputs into one output: round-robin arbitration must
	// deliver roughly equal shares.
	rn := NewRouterNetwork("fair", 3)
	stats := rn.StatsRef()
	mux := NewRouter(100, "mux", 1, nil)
	mux.SetRoute(func(p *Packet) int { return 0 })
	mux.AddIn("a", 4)
	mux.AddIn("b", 4)
	mux.AddOut("out")

	srcA := NewRouter(101, "srcA", 1, func(p *Packet) int { return 0 })
	srcA.AddIn("ni", 4)
	srcA.AddOut("out")
	srcB := NewRouter(102, "srcB", 1, func(p *Packet) int { return 0 })
	srcB.AddIn("ni", 4)
	srcB.AddOut("out")
	Connect(srcA, 0, mux, 0, 1, 1)
	Connect(srcB, 0, mux, 1, 1, 1)

	niA := NewNI(0, stats)
	ConnectNIInject(niA, srcA, 0, 1)
	niB := NewNI(1, stats)
	ConnectNIInject(niB, srcB, 0, 1)
	dst := NewNI(2, stats)
	ConnectNIEject(dst, mux, 0, 1, 8)

	counts := map[NodeID]int{}
	total := 0
	dst.SetDeliver(func(now sim.Cycle, p *Packet) { counts[p.Src]++; total++ })

	rn.Routers = []*Router{mux, srcA, srcB}
	rn.NIs[0], rn.NIs[1], rn.NIs[2] = niA, niB, dst
	e := sim.NewEngine()
	e.Register(rn)
	const k = 200
	for i := 0; i < k; i++ {
		niA.Send(e.Now(), &Packet{ID: uint64(i), Class: ClassReq, Src: 0, Dst: 2, Size: 1})
		niB.Send(e.Now(), &Packet{ID: uint64(1000 + i), Class: ClassReq, Src: 1, Dst: 2, Size: 1})
	}
	if !e.RunUntil(func() bool { return total == 2*k }, 10000) {
		t.Fatalf("delivered %d/%d", total, 2*k)
	}
	if counts[0] < k*8/10 || counts[1] < k*8/10 {
		t.Fatalf("unfair arbitration: %v", counts)
	}
	// Both streams must finish in roughly the same span: check the mux
	// alternated rather than draining one side first (delivery interleave
	// witnessed by final counts being complete is sufficient here).
}

func TestFlitsRoutedCounter(t *testing.T) {
	rn := lineNet(t, 2, 1, 8)
	e := sim.NewEngine()
	e.Register(rn)
	done := 0
	rn.SetDeliver(1, func(now sim.Cycle, p *Packet) { done++ })
	rn.Send(e.Now(), &Packet{ID: 1, Class: ClassResp, Src: 0, Dst: 1, Size: 5})
	e.RunUntil(func() bool { return done == 1 }, 200)
	for _, r := range rn.Routers {
		if r.FlitsRouted() != 5 {
			t.Fatalf("router %s routed %d flits, want 5", r.Name, r.FlitsRouted())
		}
	}
	st := rn.Stats()
	if st.FlitHops != 10 { // 5 flits x 2 routers
		t.Fatalf("FlitHops = %d, want 10", st.FlitHops)
	}
	if st.FlitLinkMM <= 0 {
		t.Fatal("link-mm accounting missing")
	}
}

func TestPendingCount(t *testing.T) {
	rn := lineNet(t, 2, 1, 1)
	ni := rn.NIs[0]
	ni.Send(0, &Packet{ID: 1, Class: ClassReq, Src: 0, Dst: 1, Size: 3})
	ni.Send(0, &Packet{ID: 2, Class: ClassResp, Src: 0, Dst: 1, Size: 3})
	if ni.Pending() != 2 {
		t.Fatalf("pending = %d", ni.Pending())
	}
}

func TestClassString(t *testing.T) {
	if ClassReq.String() != "req" || ClassSnoop.String() != "snoop" || ClassResp.String() != "resp" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still format")
	}
}
