// Package noc implements the on-chip network substrate shared by every
// interconnect in this repository: flits, packets, virtual channels,
// credit-based flow control, a parameterized wormhole router, and network
// interfaces.
//
// The model follows the paper's evaluation setup (§5.1): wormhole switching
// with one virtual channel per message class (data requests, snoop requests,
// responses) for protocol deadlock freedom, credit-based flow control, and a
// per-hop latency budget expressed as router-pipeline + link cycles with one
// flit per cycle per port of throughput.
package noc

import (
	"fmt"

	"nocout/internal/sim"
)

// NodeID identifies a network endpoint (a tile's network interface).
type NodeID int

// Class is a message class; each class travels in its own virtual channel.
type Class uint8

// The three message classes of the coherence protocol (§4.1).
const (
	ClassReq   Class = iota // data requests (cores -> LLC, LLC -> memory)
	ClassSnoop              // snoop requests (directory -> cores)
	ClassResp               // data and snoop responses
	NumClasses = 3
)

// String returns a short class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassReq:
		return "req"
	case ClassSnoop:
		return "snoop"
	case ClassResp:
		return "resp"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Packet is the unit of transfer seen by protocol agents. The network moves
// it as Size flits using wormhole switching.
type Packet struct {
	ID      uint64
	Class   Class
	Src     NodeID
	Dst     NodeID
	Size    int // flits
	Payload any

	// Timing bookkeeping, maintained by the network.
	InjectedAt  sim.Cycle // when Send was called
	DeliveredAt sim.Cycle // when the tail flit reached the destination NI

	hops    int // router traversals, for diagnostics/energy
	arrived int // flits received at destination, for reassembly
}

// Hops returns the number of router/tree-node traversals the packet made.
func (p *Packet) Hops() int { return p.hops }

// Latency returns the end-to-end packet latency in cycles (tail delivery),
// valid after delivery.
func (p *Packet) Latency() sim.Cycle { return p.DeliveredAt - p.InjectedAt }

// Flit is one link-width slice of a packet.
type Flit struct {
	Pkt *Packet
	Seq int
}

// Head reports whether this is the packet's head flit.
func (f Flit) Head() bool { return f.Seq == 0 }

// Tail reports whether this is the packet's tail flit.
func (f Flit) Tail() bool { return f.Seq == f.Pkt.Size-1 }

// Credit is a flow-control token returned upstream when a flit leaves an
// input buffer.
type Credit struct {
	VC Class
}

// FlitsFor returns the number of flits needed to carry bytes of payload plus
// an 8-byte header on a link of width linkBits. This is where Figure 9's
// serialization-latency effect comes from: narrower links mean more flits
// per packet.
func FlitsFor(payloadBytes int, linkBits int) int {
	if linkBits < 8 {
		panic("noc: link narrower than 8 bits")
	}
	totalBits := (payloadBytes + headerBytes) * 8
	n := (totalBits + linkBits - 1) / linkBits
	if n < 1 {
		n = 1
	}
	return n
}

// headerBytes is the packet header overhead carried by the head flit.
const headerBytes = 8

// Network is the interface every interconnect organization implements
// (mesh, flattened butterfly, ideal, NOC-Out).
type Network interface {
	sim.Ticker
	// Send injects a packet at its source NI at the current cycle.
	Send(now sim.Cycle, p *Packet)
	// SetDeliver registers the packet-delivery callback for a node.
	SetDeliver(n NodeID, fn func(now sim.Cycle, p *Packet))
	// Stats exposes the shared traffic/latency counters.
	Stats() *Stats
}

// Stats aggregates network activity for performance and energy reporting.
type Stats struct {
	Injected  int64
	Delivered int64

	LatencySum [NumClasses]int64 // cycles, per class
	Count      [NumClasses]int64

	FlitHops    int64   // flit × router traversals (buffer write+read+switch)
	FlitLinkMM  float64 // flit × mm of link traversed
	PacketHops  int64   // packet × router traversals
	InjectFlits int64
}

// RecordDelivery folds a delivered packet into the counters.
func (s *Stats) RecordDelivery(p *Packet) {
	s.Delivered++
	s.LatencySum[p.Class] += int64(p.Latency())
	s.Count[p.Class]++
	s.PacketHops += int64(p.hops)
}

// AvgLatency returns the mean end-to-end latency of class c in cycles.
func (s *Stats) AvgLatency(c Class) float64 {
	if s.Count[c] == 0 {
		return 0
	}
	return float64(s.LatencySum[c]) / float64(s.Count[c])
}

// AvgLatencyAll returns the mean latency over all classes.
func (s *Stats) AvgLatencyAll() float64 {
	var sum, n int64
	for c := 0; c < NumClasses; c++ {
		sum += s.LatencySum[c]
		n += s.Count[c]
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
