package noc

import (
	"nocout/internal/ckpt"
	"nocout/internal/sim"
)

// Checkpoint serialization of the router network. Topology, wiring, and
// routing tables are structural; the state is every in-flight packet and
// flit, the VC buffers, credit counters, output-VC ownership, the NIs'
// inject/eject progress, and the folded traffic counters.
//
// Packets are shared by reference (a flit is a pointer into its packet),
// so serialization builds a packet table in one fixed traversal order and
// encodes every reference as a table index; restore rebuilds the table
// and re-links the same sharing structure. Payloads are opaque here (the
// protocol layer sits above noc), so callers supply the payload codec.
//
// Pipe ownership: every flit pipe is serialized at its consumer (router
// input ports and NI eject sides) and every credit pipe at its consumer
// (router output ports and NI inject sides), so each shared pipe is
// written exactly once.

// PayloadEnc encodes one packet payload.
type PayloadEnc func(e *ckpt.Enc, payload any)

// PayloadDec decodes one packet payload.
type PayloadDec func(d *ckpt.Dec) any

// EncodePacket serializes one packet record: identity, transfer progress,
// and payload. Shared by the router network's packet table and by other
// Network implementations (topo.Ideal) that hold packets in flight.
func EncodePacket(e *ckpt.Enc, p *Packet, put PayloadEnc) {
	e.U64(p.ID)
	e.U64(uint64(p.Class))
	e.Int(int(p.Src))
	e.Int(int(p.Dst))
	e.Int(p.Size)
	e.I64(int64(p.InjectedAt))
	e.Int(p.hops)
	e.Int(p.arrived)
	put(e, p.Payload)
}

// DecodePacket is the inverse of EncodePacket; numNodes bounds the valid
// Src/Dst range so a corrupt record cannot index outside the fabric.
func DecodePacket(d *ckpt.Dec, numNodes int, get PayloadDec) *Packet {
	p := &Packet{
		ID:    d.U64(),
		Class: Class(d.U64()),
	}
	p.Src = NodeID(d.Int())
	p.Dst = NodeID(d.Int())
	p.Size = d.Int()
	p.InjectedAt = sim.Cycle(d.I64())
	p.hops = d.Int()
	p.arrived = d.Int()
	if d.Err() != nil {
		return nil
	}
	if p.Class >= NumClasses || p.Size < 1 ||
		p.Src < 0 || int(p.Src) >= numNodes || p.Dst < 0 || int(p.Dst) >= numNodes {
		d.Corrupt("invalid packet record (class %d, size %d, %d->%d)", p.Class, p.Size, p.Src, p.Dst)
		return nil
	}
	p.Payload = get(d)
	return p
}

type pktTable struct {
	idx  map[*Packet]int
	pkts []*Packet
}

func (t *pktTable) add(p *Packet) {
	if _, ok := t.idx[p]; !ok {
		t.idx[p] = len(t.pkts)
		t.pkts = append(t.pkts, p)
	}
}

func (t *pktTable) ref(e *ckpt.Enc, p *Packet) { e.U64(uint64(t.idx[p])) }

func (t *pktTable) deref(d *ckpt.Dec) *Packet {
	i := d.U64()
	if i >= uint64(len(t.pkts)) {
		d.Corrupt("packet index %d out of range (%d packets)", i, len(t.pkts))
		return nil
	}
	return t.pkts[i]
}

func (t *pktTable) putFlit(e *ckpt.Enc, f Flit) {
	t.ref(e, f.Pkt)
	e.Int(f.Seq)
}

func (t *pktTable) getFlit(d *ckpt.Dec) Flit {
	p := t.deref(d)
	seq := d.Int()
	if p != nil && (seq < 0 || seq >= p.Size) {
		d.Corrupt("flit seq %d out of range for %d-flit packet", seq, p.Size)
	}
	return Flit{Pkt: p, Seq: seq}
}

func putCredit(e *ckpt.Enc, c Credit) { e.U64(uint64(c.VC)) }

func getCredit(d *ckpt.Dec) Credit {
	vc := d.U64()
	if vc >= NumClasses {
		d.Corrupt("credit VC %d out of range", vc)
	}
	return Credit{VC: Class(vc)}
}

// forEachPacket walks every live packet reference in the fixed traversal
// order the codec relies on.
func (rn *RouterNetwork) forEachPacket(visit func(p *Packet)) {
	for _, ni := range rn.NIs {
		if ni == nil {
			continue
		}
		for c := range ni.injectQ {
			ni.injectQ[c].Each(func(p *Packet) { visit(p) })
		}
		if ni.eject != nil {
			ni.eject.Each(func(_ sim.Cycle, f Flit) { visit(f.Pkt) })
		}
	}
	for _, r := range rn.Routers {
		for _, ip := range r.ins {
			for c := range ip.vcs {
				q := &ip.vcs[c]
				for i := 0; i < q.n; i++ {
					visit(q.buf[(q.head+i)%len(q.buf)].Pkt)
				}
			}
			if ip.in != nil {
				ip.in.Each(func(_ sim.Cycle, f Flit) { visit(f.Pkt) })
			}
		}
		for _, op := range r.outs {
			for c := range op.owner {
				if op.owner[c] != nil {
					visit(op.owner[c])
				}
			}
		}
	}
}

// SaveState implements the network's side of ckpt.Saver; put encodes each
// packet's payload. The network's local accounting is folded into the
// shared Stats first, so per-router/per-port deltas are zero at the
// snapshot and only the folded totals travel.
func (rn *RouterNetwork) SaveState(e *ckpt.Enc, put PayloadEnc) {
	rn.fold()
	t := &pktTable{idx: make(map[*Packet]int)}
	rn.forEachPacket(t.add)

	e.U64(uint64(len(t.pkts)))
	for _, p := range t.pkts {
		EncodePacket(e, p, put)
	}

	for _, ni := range rn.NIs {
		if ni == nil {
			continue
		}
		for c := range ni.injectQ {
			ni.injectQ[c].SaveState(e, func(e *ckpt.Enc, p *Packet) { t.ref(e, p) })
			e.Int(ni.nextSeq[c])
		}
		e.Int(ni.rr)
		for c := range ni.out.credits {
			e.Int(ni.out.credits[c])
		}
		if ni.out.creditIn != nil {
			ni.out.creditIn.SaveState(e, putCredit)
		}
		if ni.eject != nil {
			ni.eject.SaveState(e, t.putFlit)
		}
	}

	for _, r := range rn.Routers {
		e.I64(r.flits)
		for _, ip := range r.ins {
			for c := range ip.vcs {
				q := &ip.vcs[c]
				e.U64(uint64(q.n))
				for i := 0; i < q.n; i++ {
					t.putFlit(e, q.buf[(q.head+i)%len(q.buf)])
				}
			}
			if ip.in != nil {
				ip.in.SaveState(e, t.putFlit)
			}
		}
		for _, op := range r.outs {
			for c := range op.credits {
				e.Int(op.credits[c])
			}
			for c := range op.owner {
				if op.owner[c] == nil {
					e.Bool(false)
				} else {
					e.Bool(true)
					t.ref(e, op.owner[c])
				}
			}
			e.I64(op.sent)
			if op.creditIn != nil {
				op.creditIn.SaveState(e, putCredit)
			}
		}
	}

	s := &rn.stats
	e.I64(s.Injected)
	e.I64(s.Delivered)
	for c := 0; c < NumClasses; c++ {
		e.I64(s.LatencySum[c])
		e.I64(s.Count[c])
	}
	e.I64(s.FlitHops)
	e.F64(s.FlitLinkMM)
	e.I64(s.PacketHops)
	e.I64(s.InjectFlits)
}

// LoadState is the inverse of SaveState; get decodes each payload. The
// network must be freshly built with the donor's topology.
func (rn *RouterNetwork) LoadState(d *ckpt.Dec, get PayloadDec) {
	n := d.Count()
	if d.Err() != nil {
		return
	}
	t := &pktTable{idx: make(map[*Packet]int), pkts: make([]*Packet, 0, n)}
	for i := 0; i < n && d.Err() == nil; i++ {
		p := DecodePacket(d, len(rn.NIs), get)
		if p == nil {
			return
		}
		t.pkts = append(t.pkts, p)
	}
	if d.Err() != nil {
		return
	}

	for _, ni := range rn.NIs {
		if ni == nil {
			continue
		}
		for c := range ni.injectQ {
			ni.injectQ[c].LoadState(d, func(d *ckpt.Dec) *Packet { return t.deref(d) })
			ni.nextSeq[c] = d.Int()
		}
		ni.rr = d.Int()
		for c := range ni.out.credits {
			ni.out.credits[c] = d.Int()
		}
		if ni.out.creditIn != nil {
			ni.out.creditIn.LoadState(d, getCredit)
		}
		if ni.eject != nil {
			ni.eject.LoadState(d, t.getFlit)
		}
		if d.Err() != nil {
			return
		}
	}

	for _, r := range rn.Routers {
		r.flits = d.I64()
		r.flitsFolded = r.flits
		for _, ip := range r.ins {
			for c := range ip.vcs {
				q := &ip.vcs[c]
				cnt := d.Count()
				if d.Err() != nil {
					return
				}
				if cnt > len(q.buf) {
					d.Corrupt("VC occupancy %d exceeds buffer capacity %d", cnt, len(q.buf))
					return
				}
				q.head = 0
				q.n = cnt
				for i := range q.buf {
					q.buf[i] = Flit{}
				}
				for i := 0; i < cnt; i++ {
					q.buf[i] = t.getFlit(d)
				}
			}
			if ip.in != nil {
				ip.in.LoadState(d, t.getFlit)
			}
		}
		for _, op := range r.outs {
			for c := range op.credits {
				op.credits[c] = d.Int()
			}
			for c := range op.owner {
				if d.Bool() {
					op.owner[c] = t.deref(d)
				} else {
					op.owner[c] = nil
				}
			}
			op.sent = d.I64()
			op.sentFolded = op.sent
			if op.creditIn != nil {
				op.creditIn.LoadState(d, getCredit)
			}
		}
		if d.Err() != nil {
			return
		}
	}

	s := &rn.stats
	s.Injected = d.I64()
	s.Delivered = d.I64()
	for c := 0; c < NumClasses; c++ {
		s.LatencySum[c] = d.I64()
		s.Count[c] = d.I64()
	}
	s.FlitHops = d.I64()
	s.FlitLinkMM = d.F64()
	s.PacketHops = d.I64()
	s.InjectFlits = d.I64()
}
