package noc

import (
	"fmt"

	"nocout/internal/sim"
)

// RouteFunc selects the output-port index a packet should take from a
// router. It must be a pure function of the packet's destination.
type RouteFunc func(p *Packet) int

// HeadRoomFunc returns the minimum downstream credits a head flit needs to
// claim output port out from input port in for a packet of the given size
// (flits). Values below 1 mean the default of 1. Ring topologies use this
// for bubble flow control: a packet continuing within a ring advances only
// when the whole packet fits downstream (virtual cut-through), and a packet
// entering a ring must additionally leave a maximum-packet bubble, so the
// ring's channel-dependency cycle can never fill up and deadlock.
type HeadRoomFunc func(in, out, size int) int

// Cand names one (input port, virtual channel) pair; used to express static
// arbitration priorities for NOC-Out tree nodes (§4.1: network responses >
// local responses > network requests > local requests).
type Cand struct {
	Port int
	VC   Class
}

// Router is a wormhole virtual-channel router with credit-based flow
// control. Its per-hop latency contribution is PipeDelay cycles, added to
// the downstream link's delay at Connect time; throughput is one flit per
// cycle per port.
//
// The same type models all router flavours in the paper:
//   - mesh routers: 5 in / 5 out, 2-cycle speculative pipeline
//   - flattened-butterfly routers: 15 in / 15 out, 3-cycle pipeline
//   - NOC-Out LLC routers: 3-cycle pipeline with extra tree ports
//   - reduction/dispersion tree nodes: 2 in / 1 out (or 1 in / 2 out),
//     zero-cycle pipeline with 1-cycle links and static priority
type Router struct {
	ID        NodeID
	Name      string
	PipeDelay sim.Cycle

	ins      []*InPort
	outs     []*OutPort
	route    RouteFunc
	prio     []Cand // static arbitration order; nil means round-robin
	allCands []Cand // cached round-robin candidate cross product
	numVCs   int    // implemented VCs (area accounting); 0 = NumClasses
	flits    int64  // flits routed through this router (energy accounting)
	headRoom HeadRoomFunc

	// flitsFolded marks how much of flits has been drained into the
	// network-wide Stats; see RouterNetwork.fold. Hot-path accounting is
	// strictly router-local (no shared counters), so domains can tick
	// routers concurrently without contention or ordering sensitivity.
	flitsFolded int64

	inUsed, outUsed []bool // per-cycle allocation scratch, sized to the radix
}

// NewRouter returns a router with no ports. Ports are added with AddIn /
// AddOut and wired with Connect / ConnectNI.
func NewRouter(id NodeID, name string, pipeDelay sim.Cycle, route RouteFunc) *Router {
	return &Router{ID: id, Name: name, PipeDelay: pipeDelay, route: route}
}

// SetPriority installs a static arbitration order (highest first) covering
// every (port, class) pair that can hold traffic. Pairs not listed never win
// arbitration, so the list must be exhaustive for the router's traffic.
func (r *Router) SetPriority(order []Cand) { r.prio = order }

// SetRoute replaces the routing function (used by builders that need the
// router allocated before the topology-wide tables exist).
func (r *Router) SetRoute(f RouteFunc) { r.route = f }

// SetHeadRoom installs a head-flit credit-threshold policy (see
// HeadRoomFunc). Body flits are unaffected: once a head wins its output VC
// the packet's remaining credits are reserved by VC ownership.
func (r *Router) SetHeadRoom(f HeadRoomFunc) { r.headRoom = f }

// SetOutLength records the physical length of output link out for the area
// (repeaters) and energy (fJ/bit/mm) models, for links wired through
// ConnectNI which carries no length (the crossbar's die-spanning spokes).
func (r *Router) SetOutLength(out int, lengthMM float64) {
	r.outs[out].lengthMM = lengthMM
}

// NumIn returns the number of input ports.
func (r *Router) NumIn() int { return len(r.ins) }

// NumOut returns the number of output ports.
func (r *Router) NumOut() int { return len(r.outs) }

// InPort is a router input with one FIFO buffer per virtual channel.
type InPort struct {
	name      string
	cap       int // flits per VC
	vcs       [NumClasses]flitRing
	in        *sim.Pipe[Flit]
	creditOut *sim.Pipe[Credit]
}

// flitRing is a fixed-capacity flit FIFO. The credit protocol bounds VC
// occupancy at the port capacity, so the buffer is allocated once (at
// wiring) and reused forever. The former slice queue — append at the
// tail, reslice the head away on dequeue — abandoned its backing array
// as it advanced and reallocated continually on the switch-traversal hot
// path, the chip's densest per-cycle loop.
type flitRing struct {
	buf  []Flit
	head int
	n    int
}

func (q *flitRing) len() int    { return q.n }
func (q *flitRing) front() Flit { return q.buf[q.head] }

func (q *flitRing) push(f Flit) {
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
}

func (q *flitRing) pop() {
	q.buf[q.head] = Flit{} // drop the packet reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
}

// OutPort is a router output: a link pipe plus downstream credit state.
type OutPort struct {
	name     string
	link     *sim.Pipe[Flit]
	creditIn *sim.Pipe[Credit]
	credits  [NumClasses]int
	owner    [NumClasses]*Packet
	lengthMM float64

	// sent counts flits pushed onto this link; sentFolded marks how much
	// has been drained into Stats.FlitLinkMM. Folding computes
	// lengthMM * Δsent in a fixed port order, so the floating-point sum is
	// a pure function of flit movement — identical across kernels — rather
	// than of the order concurrent routers would update a shared counter.
	sent, sentFolded int64
}

// AddIn appends an input port with the given per-VC buffer capacity and
// returns its index.
func (r *Router) AddIn(name string, capacity int) int {
	if capacity < 1 {
		panic("noc: input buffer capacity must be >= 1")
	}
	ip := &InPort{name: name, cap: capacity}
	for c := range ip.vcs {
		ip.vcs[c].buf = make([]Flit, capacity)
	}
	r.ins = append(r.ins, ip)
	return len(r.ins) - 1
}

// AddOut appends an output port and returns its index.
func (r *Router) AddOut(name string) int {
	r.outs = append(r.outs, &OutPort{name: name})
	return len(r.outs) - 1
}

// SetVCCount records how many virtual channels the router actually
// implements (the paper's tree nodes need only two, §4.1); it affects only
// the area accounting, not simulation behaviour.
func (r *Router) SetVCCount(n int) { r.numVCs = n }

// VCCount returns the implemented VC count (default: one per class).
func (r *Router) VCCount() int {
	if r.numVCs > 0 {
		return r.numVCs
	}
	return NumClasses
}

// BufferFlits returns the router's total input buffering in flits, used by
// the area model.
func (r *Router) BufferFlits() int {
	n := 0
	for _, in := range r.ins {
		n += in.cap * r.VCCount()
	}
	return n
}

// FlitsRouted returns the number of flits this router has switched, for
// per-router energy accounting.
func (r *Router) FlitsRouted() int64 { return r.flits }

// foldInto drains the router's hot-path accounting deltas into the
// network-wide counters. Only RouterNetwork.fold calls it, always in
// router order and never while the router is being ticked.
func (r *Router) foldInto(s *Stats) {
	s.FlitHops += r.flits - r.flitsFolded
	r.flitsFolded = r.flits
	for _, op := range r.outs {
		if d := op.sent - op.sentFolded; d != 0 {
			s.FlitLinkMM += op.lengthMM * float64(d)
			op.sentFolded = op.sent
		}
	}
}

// OutLinkLengthsMM returns the physical length of every connected output
// link, for the area (repeaters) and energy (wire fJ/bit/mm) models.
func (r *Router) OutLinkLengthsMM() []float64 {
	var out []float64
	for _, op := range r.outs {
		if op.link != nil {
			out = append(out, op.lengthMM)
		}
	}
	return out
}

// Connect wires output out of router a to input in of router b with the
// given link delay (cycles) and physical length (mm, for energy/area
// accounting). The flit pipe carries a.PipeDelay + linkDelay of latency;
// credits return upstream in one cycle.
func Connect(a *Router, out int, b *Router, in int, linkDelay sim.Cycle, lengthMM float64) {
	name := fmt.Sprintf("%s.%s->%s.%s", a.Name, a.outs[out].name, b.Name, b.ins[in].name)
	flits := sim.NewPipe[Flit](name, a.PipeDelay+linkDelay)
	credits := sim.NewPipe[Credit](name+".credit", 1)
	op, ip := a.outs[out], b.ins[in]
	op.link = flits
	op.creditIn = credits
	op.lengthMM = lengthMM
	for c := range op.credits {
		op.credits[c] = ip.cap
	}
	ip.in = flits
	ip.creditOut = credits
}

// Tick advances the router one cycle: drain returned credits, accept
// arriving flits, then perform switch allocation (one flit per input and per
// output per cycle, packet-atomic per output VC, credit-gated).
func (r *Router) Tick(now sim.Cycle) {
	for _, op := range r.outs {
		if op.creditIn == nil {
			continue
		}
		for {
			c, ok := op.creditIn.Pop(now)
			if !ok {
				break
			}
			op.credits[c.VC]++
		}
	}
	for _, ip := range r.ins {
		if ip.in == nil {
			continue
		}
		for {
			f, ok := ip.in.Pop(now)
			if !ok {
				break
			}
			vc := f.Pkt.Class
			if ip.vcs[vc].len() >= ip.cap {
				panic(fmt.Sprintf("noc: %s input %s VC %v overflow (credit protocol violated)", r.Name, ip.name, vc))
			}
			ip.vcs[vc].push(f)
		}
	}
	r.allocate(now)
}

// BindWaker implements sim.WakeBinder: every input flit pipe becomes a wake
// source, so a quiescent router is re-armed the moment traffic is pushed
// toward it. Credit-return pipes are deliberately not wake sources: a
// returned credit enables no work on its own, and pending credits are
// drained in bulk at the start of the next flit-driven tick, giving the
// allocator exactly the credit view the naive kernel would have. All links
// must be connected before the router is registered with the engine.
func (r *Router) BindWaker(w sim.Waker) {
	for _, ip := range r.ins {
		if ip.in != nil {
			ip.in.SetWaker(w)
		}
	}
}

// NextWake implements sim.Sleeper. A router holding buffered flits must
// keep arbitrating every cycle (it may be credit-blocked, and the blocking
// credit arrives on a pipe it drains at tick start); an empty router sleeps
// until the earliest in-flight flit on any input link can arrive, and
// indefinitely (NeverWake) when its inputs are dry — the input pipes are
// its wake sources.
func (r *Router) NextWake(now sim.Cycle) sim.Cycle {
	next := sim.NeverWake
	for _, ip := range r.ins {
		for c := range ip.vcs {
			if ip.vcs[c].len() > 0 {
				return now + 1
			}
		}
		if ip.in != nil {
			if at, ok := ip.in.NextAt(); ok && at < next {
				next = at
			}
		}
	}
	return next
}

// allocate performs switch allocation for one cycle.
func (r *Router) allocate(now sim.Cycle) {
	// The scratch masks are sized to the actual radix (the central
	// crossbar has a port per tile; a mesh router has at most 9).
	if len(r.inUsed) != len(r.ins) {
		r.inUsed = make([]bool, len(r.ins))
	} else {
		clear(r.inUsed)
	}
	if len(r.outUsed) != len(r.outs) {
		r.outUsed = make([]bool, len(r.outs))
	} else {
		clear(r.outUsed)
	}
	inUsed, outUsed := r.inUsed, r.outUsed
	cands := r.candidates()
	n := len(cands)
	if n == 0 {
		return
	}
	start := 0
	if r.prio == nil {
		// Rotating arbitration. The rotation is a pure function of the
		// clock (one position per cycle, first tick at cycle 1 starting at
		// 0), so a router that slept through idle cycles arbitrates exactly
		// as if it had been ticked every cycle — a stateful pointer would
		// diverge between the scheduled and naive kernels.
		start = int(((now-1)%sim.Cycle(n) + sim.Cycle(n)) % sim.Cycle(n))
	}
	for k := 0; k < n; k++ {
		cd := cands[(start+k)%n]
		if inUsed[cd.Port] {
			continue
		}
		ip := r.ins[cd.Port]
		if ip.vcs[cd.VC].len() == 0 {
			continue
		}
		f := ip.vcs[cd.VC].front()
		out := r.route(f.Pkt)
		if out < 0 || out >= len(r.outs) {
			panic(fmt.Sprintf("noc: %s route(%d->%d) = invalid port %d", r.Name, f.Pkt.Src, f.Pkt.Dst, out))
		}
		if outUsed[out] {
			continue
		}
		op := r.outs[out]
		if op.link == nil {
			panic(fmt.Sprintf("noc: %s output %s not connected", r.Name, op.name))
		}
		// Packet atomicity: an output VC is owned by one packet from head
		// to tail.
		need := 1
		if own := op.owner[cd.VC]; own != nil {
			if own != f.Pkt {
				continue
			}
		} else {
			if !f.Head() {
				continue // only a head flit may claim a free VC
			}
			if r.headRoom != nil {
				if n := r.headRoom(cd.Port, out, f.Pkt.Size); n > need {
					need = n
				}
			}
		}
		if op.credits[cd.VC] < need {
			continue
		}
		// Grant.
		ip.vcs[cd.VC].pop()
		op.credits[cd.VC]--
		if f.Head() {
			op.owner[cd.VC] = f.Pkt
			f.Pkt.hops++
		}
		if f.Tail() {
			op.owner[cd.VC] = nil
		}
		op.link.Push(now, f)
		if ip.creditOut != nil {
			ip.creditOut.Push(now, Credit{VC: cd.VC})
		}
		r.flits++
		op.sent++
		inUsed[cd.Port] = true
		outUsed[out] = true
	}
}

// candidates returns the arbitration order for this cycle: the static
// priority list if configured, otherwise every (port, VC) pair.
func (r *Router) candidates() []Cand {
	if r.prio != nil {
		return r.prio
	}
	// Build once and cache: the full cross product is static.
	if r.allCands == nil {
		for i := range r.ins {
			for c := Class(0); c < NumClasses; c++ {
				r.allCands = append(r.allCands, Cand{Port: i, VC: c})
			}
		}
	}
	return r.allCands
}
