package noc

import (
	"fmt"

	"nocout/internal/sim"
)

// This file classifies a RouterNetwork's links against a router-to-domain
// assignment for the conservative parallel kernel (sim.Sharded): any pipe
// whose producer and consumer land in different domains is switched into
// staged mode and listed as an in-edge of the consuming domain, and the
// minimum delay over those pipes becomes the synchronization lookahead.
//
// Discovery is purely structural — pipes are matched by object identity
// across router ports and NI endpoints — so it works unchanged for every
// fabric built from Routers and NIs (mesh, torus, cmesh, flattened
// butterfly, crossbar, NOC-Out's trees + LLC network) and for any future
// one, with no per-topology code.

// ShardPlan is the result of classifying a network against a partition.
type ShardPlan struct {
	Domains    int
	RouterDom  []int // domain per rn.Routers index
	NIDom      []int // domain per rn.NIs index (NodeID); -1 where no NI exists
	Lookahead  sim.Cycle
	InEdges    [][]sim.CrossStage // staged pipes consumed per domain, fixed order
	CrossLinks int                // staged pipe count, for diagnostics
}

// NodeDomain returns the domain owning node n's NI. Protocol agents must
// be registered in their node's domain: their inboxes are fed by the NI's
// delivery callback and their sends go through the same NI.
func (p *ShardPlan) NodeDomain(n NodeID) int {
	d := p.NIDom[n]
	if d < 0 {
		panic(fmt.Sprintf("noc: node %d has no NI, so no domain", n))
	}
	return d
}

// BuildShardPlan classifies every pipe of rn under the given router-domain
// assignment (parallel to rn.Routers, values in [0, domains)), derives NI
// and node domains, switches cross-domain pipes into staged mode, and
// extracts the lookahead. It also retargets every NI's counters at its
// domain's private stats shard. The network must be fully built and not
// yet registered with any engine.
func (rn *RouterNetwork) BuildShardPlan(routerDom []int, domains int) *ShardPlan {
	if len(routerDom) != len(rn.Routers) {
		panic("noc: BuildShardPlan domain assignment must cover every router")
	}
	p := &ShardPlan{
		Domains:   domains,
		RouterDom: routerDom,
		NIDom:     make([]int, len(rn.NIs)),
		Lookahead: sim.NeverWake,
		InEdges:   make([][]sim.CrossStage, domains),
	}

	// Producer/consumer domain of every pipe, keyed by pipe identity.
	flitProd := map[*sim.Pipe[Flit]]int{}
	flitCons := map[*sim.Pipe[Flit]]int{}
	credProd := map[*sim.Pipe[Credit]]int{}
	credCons := map[*sim.Pipe[Credit]]int{}
	for i, r := range rn.Routers {
		d := routerDom[i]
		for _, ip := range r.ins {
			if ip.in != nil {
				flitCons[ip.in] = d
			}
			if ip.creditOut != nil {
				credProd[ip.creditOut] = d
			}
		}
		for _, op := range r.outs {
			if op.link != nil {
				flitProd[op.link] = d
			}
			if op.creditIn != nil {
				credCons[op.creditIn] = d
			}
		}
	}

	// An NI lives in the domain of the router it injects into (falling
	// back to the router that ejects to it), so its inject link never
	// crosses a boundary; its eject side may (NOC-Out NIs inject into a
	// reduction tree and eject from a dispersion tree).
	for n, ni := range rn.NIs {
		p.NIDom[n] = -1
		if ni == nil {
			continue
		}
		switch {
		case ni.out.link != nil:
			d, ok := flitCons[ni.out.link]
			if !ok {
				panic(fmt.Sprintf("noc: node %d injects into no known router", n))
			}
			p.NIDom[n] = d
		case ni.eject != nil:
			d, ok := flitProd[ni.eject]
			if !ok {
				panic(fmt.Sprintf("noc: node %d ejects from no known router", n))
			}
			p.NIDom[n] = d
		default:
			p.NIDom[n] = 0 // orphan NI: any domain works, it moves nothing
		}
		d := p.NIDom[n]
		if ni.out.link != nil {
			flitProd[ni.out.link] = d
		}
		if ni.out.creditIn != nil {
			credCons[ni.out.creditIn] = d
		}
		if ni.eject != nil {
			flitCons[ni.eject] = d
		}
		if ni.ejectCredit != nil {
			credProd[ni.ejectCredit] = d
		}
	}

	// Collect cross edges by scanning consumers in a fixed order (routers
	// then NIs, ports in wiring order), so each domain's commit order is
	// deterministic. A pipe without a known producer is endpoint-internal
	// and never crosses.
	stageFlit := func(pipe *sim.Pipe[Flit], cons int) {
		prod, ok := flitProd[pipe]
		if !ok || prod == cons {
			return
		}
		pipe.Stage()
		p.InEdges[cons] = append(p.InEdges[cons], pipe)
		p.CrossLinks++
		if pipe.Delay() < p.Lookahead {
			p.Lookahead = pipe.Delay()
		}
	}
	stageCred := func(pipe *sim.Pipe[Credit], cons int) {
		prod, ok := credProd[pipe]
		if !ok || prod == cons {
			return
		}
		pipe.Stage()
		p.InEdges[cons] = append(p.InEdges[cons], pipe)
		p.CrossLinks++
		if pipe.Delay() < p.Lookahead {
			p.Lookahead = pipe.Delay()
		}
	}
	for i, r := range rn.Routers {
		d := routerDom[i]
		for _, ip := range r.ins {
			if ip.in != nil {
				stageFlit(ip.in, d)
			}
		}
		for _, op := range r.outs {
			if op.creditIn != nil {
				stageCred(op.creditIn, d)
			}
		}
	}
	for n, ni := range rn.NIs {
		if ni == nil {
			continue
		}
		d := p.NIDom[n]
		if ni.eject != nil {
			stageFlit(ni.eject, d)
		}
		if ni.out.creditIn != nil {
			stageCred(ni.out.creditIn, d)
		}
	}

	// Per-domain NI stats shards: concurrent domains must not share one
	// counter struct. Router counters are already router-local.
	rn.shards = make([]Stats, domains)
	for n, ni := range rn.NIs {
		if ni != nil {
			ni.SetStats(&rn.shards[p.NIDom[n]])
		}
	}
	return p
}

// RegisterSharded registers every router and NI into its domain's engine,
// preserving the global iteration order RegisterInto uses — so two
// components that land in the same domain keep their relative tick order,
// and single-domain plans degenerate to exactly RegisterInto.
func (rn *RouterNetwork) RegisterSharded(doms []*sim.Engine, p *ShardPlan) {
	for i, r := range rn.Routers {
		doms[p.RouterDom[i]].Register(r)
	}
	for n, ni := range rn.NIs {
		if ni != nil {
			doms[p.NIDom[n]].Register(ni)
		}
	}
}
