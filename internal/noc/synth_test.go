package noc_test

import (
	"testing"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
)

func meshNodes(n int) []noc.NodeID {
	out := make([]noc.NodeID, n)
	for i := range out {
		out[i] = noc.NodeID(i)
	}
	return out
}

func buildMesh() noc.Network {
	return topo.NewMesh(topo.DefaultMeshParams(topo.TiledFloorplan(16, 8)))
}

func buildFBfly() noc.Network {
	return topo.NewFBfly(topo.DefaultFBflyParams(topo.TiledFloorplan(16, 8)))
}

func TestLoadLatencyLowLoadMatchesZeroLoad(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 1)
	p := noc.MeasureLoad(buildMesh(), meshNodes(16), pat, 0.05, 2000, 4000, 1)
	if p.Saturated {
		t.Fatal("5% load must not saturate a mesh")
	}
	if p.AvgLatency < 5 || p.AvgLatency > 30 {
		t.Fatalf("low-load mesh latency = %.1f, expected near zero-load (~15)", p.AvgLatency)
	}
	if p.AcceptedPktPerCycle < 0.9*p.OfferedPktPerCycle {
		t.Fatal("low load must be fully accepted")
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 5)
	pts := noc.LoadSweep(buildMesh, meshNodes(16), pat, []float64{0.05, 0.8, 4.0}, 2000, 4000, 7)
	if pts[1].AvgLatency <= pts[0].AvgLatency {
		t.Fatalf("latency must grow with load: %.1f then %.1f", pts[0].AvgLatency, pts[1].AvgLatency)
	}
	if !pts[2].Saturated {
		t.Fatalf("4 pkts/cycle of 5-flit packets should saturate a 16-node mesh: %+v", pts[2])
	}
	// Accepted throughput is monotone non-decreasing in offered load
	// until saturation.
	if pts[1].AcceptedPktPerCycle < pts[0].AcceptedPktPerCycle {
		t.Fatal("accepted throughput regressed below a lighter load")
	}
}

func TestFBflyLowerLatencyThanMeshUnderUniform(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 1)
	m := noc.MeasureLoad(buildMesh(), meshNodes(16), pat, 0.2, 2000, 4000, 3)
	f := noc.MeasureLoad(buildFBfly(), meshNodes(16), pat, 0.2, 2000, 4000, 3)
	if f.AvgLatency >= m.AvgLatency {
		t.Fatalf("fbfly (%.1f) should undercut mesh (%.1f) at moderate load", f.AvgLatency, m.AvgLatency)
	}
}

func TestNOCOutBilateralTraffic(t *testing.T) {
	cfg := core.DefaultConfig()
	n := core.Build(cfg)
	var cores, banks []noc.NodeID
	for i := 0; i < cfg.NumCoreNodes(); i++ {
		cores = append(cores, noc.NodeID(i))
	}
	for c := 0; c < cfg.Columns; c++ {
		banks = append(banks, cfg.LLCNode(c, 0))
	}
	pat := noc.BilateralPattern(cores, banks, 5)
	all := append(append([]noc.NodeID{}, cores...), banks...)
	p := noc.MeasureLoad(n, all, pat, 0.5, 3000, 6000, 11)
	if p.Saturated {
		t.Fatalf("NOC-Out should carry 0.5 pkt/cycle of bilateral traffic: %+v", p)
	}
	if p.AvgLatency <= 0 {
		t.Fatal("no latency measured")
	}
	// The evaluation's operating point (§6.1: "the networks are not
	// congested"): chip-level traffic is ~1-2 packets/cycle.
	p2 := noc.MeasureLoad(core.Build(cfg), all, pat, 1.5, 3000, 6000, 11)
	if p2.Saturated {
		t.Fatalf("NOC-Out saturates below the chip's operating point: %+v", p2)
	}
}

func TestPatternValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	noc.UniformPattern([]noc.NodeID{1}, 1)
}

func TestBilateralPatternShape(t *testing.T) {
	pat := noc.BilateralPattern([]noc.NodeID{0, 1}, []noc.NodeID{10}, 5)
	r := newTestRNG()
	reqs, resps := 0, 0
	for i := 0; i < 1000; i++ {
		src, dst, size := pat(r)
		switch {
		case size == 1 && dst == 10 && (src == 0 || src == 1):
			reqs++
		case size == 5 && src == 10 && (dst == 0 || dst == 1):
			resps++
		default:
			t.Fatalf("packet outside the bilateral pattern: %d->%d size %d", src, dst, size)
		}
	}
	if reqs == 0 || resps == 0 {
		t.Fatal("both directions must occur")
	}
}

// newTestRNG gives patterns a deterministic stream.
func newTestRNG() *sim.RNG { return sim.NewRNG(99) }

func TestHotspotPatternShape(t *testing.T) {
	nodes := meshNodes(16)
	const hot = noc.NodeID(5)
	pat := noc.HotspotPattern(nodes, hot, 0.5, 1)
	r := newTestRNG()
	toHot := 0
	for i := 0; i < 4000; i++ {
		src, dst, size := pat(r)
		if src == dst || size != 1 {
			t.Fatalf("malformed packet %d->%d size %d", src, dst, size)
		}
		if dst == hot {
			toHot++
		}
	}
	// hotFrac of the traffic converges on the hot node (uniform residue
	// never picks it, so the observed share is the knob itself).
	if toHot < 1800 || toHot > 2200 {
		t.Fatalf("hot node received %d/4000 packets, want ~2000", toHot)
	}
}

func TestHotspotCongestsBeforeUniform(t *testing.T) {
	// At an offered load the mesh carries comfortably under uniform
	// traffic, a strong hotspot caps accepted throughput at the hot
	// node's ejection bandwidth.
	nodes := meshNodes(16)
	rate := 1.5 // 90% hotspot: ~1.35 pkt/cycle into one ejection port
	uni := noc.MeasureLoad(buildMesh(), nodes, noc.UniformPattern(nodes, 1), rate, 2000, 4000, 5)
	hot := noc.MeasureLoad(buildMesh(), nodes, noc.HotspotPattern(nodes, 0, 0.9, 1), rate, 2000, 4000, 5)
	if uni.Saturated {
		t.Fatalf("uniform traffic should carry %.2f pkt/cycle: %+v", rate, uni)
	}
	if !hot.Saturated {
		t.Fatalf("90%% hotspot at %.2f pkt/cycle must saturate the hot ejection port: %+v", rate, hot)
	}
}

func TestTransposePatternShape(t *testing.T) {
	pat := noc.TransposePattern(4, 1)
	r := newTestRNG()
	seen := map[noc.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		src, dst, _ := pat(r)
		x, y := int(src)%4, int(src)/4
		if x == y {
			t.Fatalf("diagonal tile %d must not inject", src)
		}
		if want := noc.NodeID(x*4 + y); dst != want {
			t.Fatalf("transpose of %d = %d, want %d", src, dst, want)
		}
		seen[src] = true
	}
	if len(seen) != 12 {
		t.Fatalf("%d distinct sources, want the 12 off-diagonal tiles", len(seen))
	}
}

func TestTransposeIsAdversarialForXYMesh(t *testing.T) {
	// The same offered load costs more latency under the transpose
	// permutation than under uniform traffic: XY routing funnels it
	// onto a few column links.
	nodes := meshNodes(16)
	rate := 0.8
	uni := noc.MeasureLoad(buildMesh(), nodes, noc.UniformPattern(nodes, 5), rate, 2000, 4000, 3)
	tr := noc.MeasureLoad(buildMesh(), nodes, noc.TransposePattern(4, 5), rate, 2000, 4000, 3)
	if tr.AvgLatency <= uni.AvgLatency {
		t.Fatalf("transpose (%.1f cy) should be costlier than uniform (%.1f cy)", tr.AvgLatency, uni.AvgLatency)
	}
}

func TestBitComplementPatternShape(t *testing.T) {
	pat := noc.BitComplementPattern(16, 1)
	r := newTestRNG()
	for i := 0; i < 2000; i++ {
		src, dst, _ := pat(r)
		if dst != noc.NodeID(15-int(src)) {
			t.Fatalf("complement of %d = %d", src, dst)
		}
	}
	// Odd endpoint counts skip the self-paired middle node.
	odd := noc.BitComplementPattern(5, 1)
	for i := 0; i < 500; i++ {
		src, dst, _ := odd(r)
		if src == dst {
			t.Fatalf("fixed point %d injected", src)
		}
	}
}

func TestBitComplementCrossesTheBisection(t *testing.T) {
	// Every bit-complement packet crosses the center, so the pattern
	// saturates the mesh at a rate uniform traffic survives.
	nodes := meshNodes(16)
	rate := 2.0
	uni := noc.MeasureLoad(buildMesh(), nodes, noc.UniformPattern(nodes, 5), rate, 2000, 4000, 9)
	bc := noc.MeasureLoad(buildMesh(), nodes, noc.BitComplementPattern(16, 5), rate, 2000, 4000, 9)
	if bc.AcceptedPktPerCycle >= uni.AcceptedPktPerCycle {
		t.Fatalf("bit-complement accepted %.2f pkt/cycle, should trail uniform's %.2f",
			bc.AcceptedPktPerCycle, uni.AcceptedPktPerCycle)
	}
	if !bc.Saturated {
		t.Fatalf("2 pkt/cycle of 5-flit bisection traffic should saturate: %+v", bc)
	}
}

func TestAdversarialPatternValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"hotspot one node":     func() { noc.HotspotPattern([]noc.NodeID{1}, 1, 0.5, 1) },
		"hotspot bad fraction": func() { noc.HotspotPattern(meshNodes(4), 0, 1.5, 1) },
		"transpose side 1":     func() { noc.TransposePattern(1, 1) },
		"bit-complement n 1":   func() { noc.BitComplementPattern(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}
