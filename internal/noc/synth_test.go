package noc_test

import (
	"testing"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
)

func meshNodes(n int) []noc.NodeID {
	out := make([]noc.NodeID, n)
	for i := range out {
		out[i] = noc.NodeID(i)
	}
	return out
}

func buildMesh() noc.Network {
	return topo.NewMesh(topo.DefaultMeshParams(topo.TiledFloorplan(16, 8)))
}

func buildFBfly() noc.Network {
	return topo.NewFBfly(topo.DefaultFBflyParams(topo.TiledFloorplan(16, 8)))
}

func TestLoadLatencyLowLoadMatchesZeroLoad(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 1)
	p := noc.MeasureLoad(buildMesh(), meshNodes(16), pat, 0.05, 2000, 4000, 1)
	if p.Saturated {
		t.Fatal("5% load must not saturate a mesh")
	}
	if p.AvgLatency < 5 || p.AvgLatency > 30 {
		t.Fatalf("low-load mesh latency = %.1f, expected near zero-load (~15)", p.AvgLatency)
	}
	if p.AcceptedPktPerCycle < 0.9*p.OfferedPktPerCycle {
		t.Fatal("low load must be fully accepted")
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 5)
	pts := noc.LoadSweep(buildMesh, meshNodes(16), pat, []float64{0.05, 0.8, 4.0}, 2000, 4000, 7)
	if pts[1].AvgLatency <= pts[0].AvgLatency {
		t.Fatalf("latency must grow with load: %.1f then %.1f", pts[0].AvgLatency, pts[1].AvgLatency)
	}
	if !pts[2].Saturated {
		t.Fatalf("4 pkts/cycle of 5-flit packets should saturate a 16-node mesh: %+v", pts[2])
	}
	// Accepted throughput is monotone non-decreasing in offered load
	// until saturation.
	if pts[1].AcceptedPktPerCycle < pts[0].AcceptedPktPerCycle {
		t.Fatal("accepted throughput regressed below a lighter load")
	}
}

func TestFBflyLowerLatencyThanMeshUnderUniform(t *testing.T) {
	pat := noc.UniformPattern(meshNodes(16), 1)
	m := noc.MeasureLoad(buildMesh(), meshNodes(16), pat, 0.2, 2000, 4000, 3)
	f := noc.MeasureLoad(buildFBfly(), meshNodes(16), pat, 0.2, 2000, 4000, 3)
	if f.AvgLatency >= m.AvgLatency {
		t.Fatalf("fbfly (%.1f) should undercut mesh (%.1f) at moderate load", f.AvgLatency, m.AvgLatency)
	}
}

func TestNOCOutBilateralTraffic(t *testing.T) {
	cfg := core.DefaultConfig()
	n := core.Build(cfg)
	var cores, banks []noc.NodeID
	for i := 0; i < cfg.NumCoreNodes(); i++ {
		cores = append(cores, noc.NodeID(i))
	}
	for c := 0; c < cfg.Columns; c++ {
		banks = append(banks, cfg.LLCNode(c, 0))
	}
	pat := noc.BilateralPattern(cores, banks, 5)
	all := append(append([]noc.NodeID{}, cores...), banks...)
	p := noc.MeasureLoad(n, all, pat, 0.5, 3000, 6000, 11)
	if p.Saturated {
		t.Fatalf("NOC-Out should carry 0.5 pkt/cycle of bilateral traffic: %+v", p)
	}
	if p.AvgLatency <= 0 {
		t.Fatal("no latency measured")
	}
	// The evaluation's operating point (§6.1: "the networks are not
	// congested"): chip-level traffic is ~1-2 packets/cycle.
	p2 := noc.MeasureLoad(core.Build(cfg), all, pat, 1.5, 3000, 6000, 11)
	if p2.Saturated {
		t.Fatalf("NOC-Out saturates below the chip's operating point: %+v", p2)
	}
}

func TestPatternValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	noc.UniformPattern([]noc.NodeID{1}, 1)
}

func TestBilateralPatternShape(t *testing.T) {
	pat := noc.BilateralPattern([]noc.NodeID{0, 1}, []noc.NodeID{10}, 5)
	r := newTestRNG()
	reqs, resps := 0, 0
	for i := 0; i < 1000; i++ {
		src, dst, size := pat(r)
		switch {
		case size == 1 && dst == 10 && (src == 0 || src == 1):
			reqs++
		case size == 5 && src == 10 && (dst == 0 || dst == 1):
			resps++
		default:
			t.Fatalf("packet outside the bilateral pattern: %d->%d size %d", src, dst, size)
		}
	}
	if reqs == 0 || resps == 0 {
		t.Fatal("both directions must occur")
	}
}

// newTestRNG gives patterns a deterministic stream.
func newTestRNG() *sim.RNG { return sim.NewRNG(99) }
