package noc

import (
	"nocout/internal/sim"
)

// This file provides the classic open-loop NoC evaluation harness:
// synthetic traffic injected at a controlled rate, measuring accepted
// throughput and average packet latency. It is how the load-latency
// behaviour of the fabrics is characterized independently of the full-chip
// protocol stack (and how the "networks are not congested" claim of §6.1
// is checked).

// Pattern produces one packet's endpoints and size; it is called once per
// injection. Implementations must be deterministic given the RNG.
type Pattern func(r *sim.RNG) (src, dst NodeID, size int)

// UniformPattern returns uniform-random traffic among nodes with the given
// packet size in flits.
func UniformPattern(nodes []NodeID, size int) Pattern {
	if len(nodes) < 2 {
		panic("noc: uniform pattern needs at least two nodes")
	}
	return func(r *sim.RNG) (NodeID, NodeID, int) {
		s := nodes[r.Intn(len(nodes))]
		d := nodes[r.Intn(len(nodes))]
		for d == s {
			d = nodes[r.Intn(len(nodes))]
		}
		return s, d, size
	}
}

// BilateralPattern returns the paper's core-to-cache pattern (§3): sources
// send single-flit requests to uniform-random sinks; sinks send
// respSize-flit responses to uniform-random sources. Requests and
// responses alternate 50/50.
func BilateralPattern(sources, sinks []NodeID, respSize int) Pattern {
	if len(sources) == 0 || len(sinks) == 0 {
		panic("noc: bilateral pattern needs sources and sinks")
	}
	return func(r *sim.RNG) (NodeID, NodeID, int) {
		if r.Bool(0.5) {
			return sources[r.Intn(len(sources))], sinks[r.Intn(len(sinks))], 1
		}
		return sinks[r.Intn(len(sinks))], sources[r.Intn(len(sources))], respSize
	}
}

// HotspotPattern returns hotspot traffic: hotFrac of the packets target
// the single hot node (a popular LLC bank, a memory channel), the rest
// are uniform-random. It is the classic endpoint-congestion stressor:
// accepted throughput caps near the hot node's ejection bandwidth long
// before the bisection saturates.
func HotspotPattern(nodes []NodeID, hot NodeID, hotFrac float64, size int) Pattern {
	if len(nodes) < 2 {
		panic("noc: hotspot pattern needs at least two nodes")
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("noc: hotspot fraction must be in [0, 1]")
	}
	return func(r *sim.RNG) (NodeID, NodeID, int) {
		dst := hot
		if !r.Bool(hotFrac) {
			dst = nodes[r.Intn(len(nodes))]
			for dst == hot {
				dst = nodes[r.Intn(len(nodes))]
			}
		}
		src := nodes[r.Intn(len(nodes))]
		for src == dst {
			src = nodes[r.Intn(len(nodes))]
		}
		return src, dst, size
	}
}

// TransposePattern returns the matrix-transpose permutation on a
// side×side grid (NodeID = y*side + x): tile (x, y) sends to (y, x).
// It is the classic adversarial permutation for dimension-ordered
// routing — XY-routed transpose traffic piles onto a few column links —
// so it bounds the fabric's worst permutation behaviour in the §6.1
// load-latency characterization. Diagonal tiles (x == y) would
// self-send and are skipped.
func TransposePattern(side, size int) Pattern {
	if side < 2 {
		panic("noc: transpose pattern needs a side of at least 2")
	}
	return func(r *sim.RNG) (NodeID, NodeID, int) {
		for {
			s := r.Intn(side * side)
			x, y := s%side, s/side
			if x == y {
				continue
			}
			return NodeID(s), NodeID(x*side + y), size
		}
	}
}

// BitComplementPattern returns the bit-complement permutation over n
// endpoints: node i sends to n-1-i (every address bit flipped when n is
// a power of two). All traffic crosses the die center, making it the
// standard bisection-bandwidth stressor. For odd n the middle node is
// its own complement and is skipped.
func BitComplementPattern(n, size int) Pattern {
	if n < 2 {
		panic("noc: bit-complement pattern needs at least two nodes")
	}
	return func(r *sim.RNG) (NodeID, NodeID, int) {
		for {
			s := r.Intn(n)
			d := n - 1 - s
			if d == s {
				continue
			}
			return NodeID(s), NodeID(d), size
		}
	}
}

// LoadPoint is one point of a load-latency sweep.
type LoadPoint struct {
	OfferedPktPerCycle  float64
	AcceptedPktPerCycle float64
	AvgLatency          float64 // cycles, all classes
	Saturated           bool    // accepted lagged offered by >10%
}

// MeasureLoad injects pattern traffic at rate packets/cycle (network-wide)
// for warmup+window cycles and reports the steady-state behaviour over the
// window. nodes lists every endpoint the pattern can target (they get sink
// delivery callbacks). Packets travel in the request class for single-flit
// sizes and the response class otherwise, matching the protocol's usage.
func MeasureLoad(net Network, nodes []NodeID, pattern Pattern, rate float64, warmup, window sim.Cycle, seed uint64) LoadPoint {
	e := sim.NewEngine()
	e.Register(net)
	for _, n := range nodes {
		net.SetDeliver(n, func(now sim.Cycle, p *Packet) {})
	}
	rng := sim.NewRNG(seed)
	var id uint64
	carry := 0.0
	injector := sim.TickFunc(func(now sim.Cycle) {
		carry += rate
		for carry >= 1 {
			carry--
			src, dst, size := pattern(rng)
			class := ClassReq
			if size > 1 {
				class = ClassResp
			}
			id++
			net.Send(now, &Packet{ID: id, Class: class, Src: src, Dst: dst, Size: size})
		}
	})
	e.Register(injector)

	e.Step(warmup)
	*net.Stats() = Stats{}
	e.Step(window)

	st := net.Stats()
	lp := LoadPoint{
		OfferedPktPerCycle:  float64(st.Injected) / float64(window),
		AcceptedPktPerCycle: float64(st.Delivered) / float64(window),
		AvgLatency:          st.AvgLatencyAll(),
	}
	lp.Saturated = lp.AcceptedPktPerCycle < 0.9*lp.OfferedPktPerCycle
	return lp
}

// LoadSweep measures a curve over the given rates, rebuilding the network
// for each point (open-loop points must not share queue state).
func LoadSweep(build func() Network, nodes []NodeID, pattern Pattern, rates []float64, warmup, window sim.Cycle, seed uint64) []LoadPoint {
	out := make([]LoadPoint, len(rates))
	for i, r := range rates {
		out[i] = MeasureLoad(build(), nodes, pattern, r, warmup, window, seed)
	}
	return out
}
