package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// Ideal is the idealized interconnect of Figure 1: only wire delay is
// exposed — routing, arbitration, switching and buffering take zero time —
// and bandwidth is unbounded. Delivery latency between two nodes is the
// latched wire delay between their tile centers.
type Ideal struct {
	plan    Floorplan
	delay   func(src, dst noc.NodeID) sim.Cycle
	deliver []func(now sim.Cycle, p *noc.Packet)
	// The delivery calendar: a min-heap of pointer buckets, one per
	// distinct delivery cycle, plus a bucket free list. The former
	// map[Cycle][]*Packet calendar allocated a map cell and a slice per
	// scheduled cycle on every push path; recycled buckets keep their
	// packet-slice capacity, so the steady state allocates nothing.
	due      sim.MinHeap[*delivBucket]
	buckets  map[sim.Cycle]*delivBucket
	freeList []*delivBucket
	waker    sim.Waker
	stats    noc.Stats
}

// delivBucket holds the packets due at one cycle. MinHeap entries are
// pointers, so heap swaps move one word and Less never copies packets.
type delivBucket struct {
	at   sim.Cycle
	pkts []*noc.Packet
}

// Less orders buckets by delivery cycle.
func (b *delivBucket) Less(o *delivBucket) bool { return b.at < o.at }

// schedule appends p to the bucket for cycle at, creating it from the
// free list when the cycle is new.
func (id *Ideal) schedule(at sim.Cycle, p *noc.Packet) {
	b, ok := id.buckets[at]
	if !ok {
		if n := len(id.freeList); n > 0 {
			b = id.freeList[n-1]
			id.freeList[n-1] = nil
			id.freeList = id.freeList[:n-1]
		} else {
			b = &delivBucket{}
		}
		b.at = at
		id.buckets[at] = b
		id.due.Push(b)
	}
	b.pkts = append(b.pkts, p)
}

// NewIdeal builds an ideal fabric over the floorplan. auxTiles appends
// auxiliary endpoints (node NumTiles+k lives at tile auxTiles[k]).
func NewIdeal(plan Floorplan, auxTiles ...noc.NodeID) *Ideal {
	n := plan.NumTiles()
	delay := func(src, dst noc.NodeID) sim.Cycle {
		if int(src) >= n {
			src = auxTiles[int(src)-n]
		}
		if int(dst) >= n {
			dst = auxTiles[int(dst)-n]
		}
		return plan.WireCyclesBetween(src, dst)
	}
	return &Ideal{
		plan:    plan,
		delay:   delay,
		deliver: make([]func(now sim.Cycle, p *noc.Packet), n+len(auxTiles)),
		buckets: make(map[sim.Cycle]*delivBucket),
	}
}

// NewIdealWithDelay builds an ideal fabric with a custom delay function
// over n nodes (used by NOC-Out's idealized comparisons and tests).
func NewIdealWithDelay(n int, delay func(src, dst noc.NodeID) sim.Cycle) *Ideal {
	return &Ideal{
		delay:   delay,
		deliver: make([]func(now sim.Cycle, p *noc.Packet), n),
		buckets: make(map[sim.Cycle]*delivBucket),
	}
}

// BindWaker implements sim.WakeBinder: Send becomes a wake source, arming
// the fabric for each packet's delivery cycle.
func (id *Ideal) BindWaker(w sim.Waker) { id.waker = w }

// NextWake implements sim.Sleeper: the earliest scheduled delivery, or
// NeverWake when nothing is in flight (Send re-arms).
func (id *Ideal) NextWake(now sim.Cycle) sim.Cycle {
	if id.due.Len() == 0 {
		return sim.NeverWake
	}
	return id.due.Min().at
}

// Send implements noc.Network.
func (id *Ideal) Send(now sim.Cycle, p *noc.Packet) {
	p.InjectedAt = now
	id.stats.Injected++
	d := id.delay(p.Src, p.Dst)
	if d < 1 {
		d = 1
	}
	// Serialization still exists on an ideal fabric: the tail arrives
	// Size-1 cycles after the head at one flit per cycle.
	at := now + d + sim.Cycle(p.Size-1)
	id.schedule(at, p)
	if id.waker != nil {
		id.waker.Wake(at)
	}
}

// SetDeliver implements noc.Network.
func (id *Ideal) SetDeliver(n noc.NodeID, fn func(now sim.Cycle, p *noc.Packet)) {
	id.deliver[n] = fn
}

// Stats implements noc.Network.
func (id *Ideal) Stats() *noc.Stats { return &id.stats }

// Tick delivers every packet scheduled for a due cycle, recycling the
// drained buckets.
func (id *Ideal) Tick(now sim.Cycle) {
	for id.due.Len() > 0 && id.due.Min().at <= now {
		b := id.due.Pop()
		delete(id.buckets, b.at)
		for i, p := range b.pkts {
			p.DeliveredAt = now
			id.stats.RecordDelivery(p)
			fn := id.deliver[p.Dst]
			if fn == nil {
				panic(fmt.Sprintf("topo: ideal: node %d has no delivery callback", p.Dst))
			}
			fn(now, p)
			b.pkts[i] = nil // release for GC
		}
		b.pkts = b.pkts[:0]
		id.freeList = append(id.freeList, b)
	}
}

var _ noc.Network = (*Ideal)(nil)
var _ sim.Sleeper = (*Ideal)(nil)
