package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// Ideal is the idealized interconnect of Figure 1: only wire delay is
// exposed — routing, arbitration, switching and buffering take zero time —
// and bandwidth is unbounded. Delivery latency between two nodes is the
// latched wire delay between their tile centers.
type Ideal struct {
	plan    Floorplan
	delay   func(src, dst noc.NodeID) sim.Cycle
	deliver []func(now sim.Cycle, p *noc.Packet)
	sched   map[sim.Cycle][]*noc.Packet
	due     sim.MinHeap[sim.Cycle] // scheduled delivery cycles (with dupes)
	waker   sim.Waker
	stats   noc.Stats
}

// NewIdeal builds an ideal fabric over the floorplan. auxTiles appends
// auxiliary endpoints (node NumTiles+k lives at tile auxTiles[k]).
func NewIdeal(plan Floorplan, auxTiles ...noc.NodeID) *Ideal {
	n := plan.NumTiles()
	delay := func(src, dst noc.NodeID) sim.Cycle {
		if int(src) >= n {
			src = auxTiles[int(src)-n]
		}
		if int(dst) >= n {
			dst = auxTiles[int(dst)-n]
		}
		return plan.WireCyclesBetween(src, dst)
	}
	return &Ideal{
		plan:    plan,
		delay:   delay,
		deliver: make([]func(now sim.Cycle, p *noc.Packet), n+len(auxTiles)),
		sched:   make(map[sim.Cycle][]*noc.Packet),
	}
}

// NewIdealWithDelay builds an ideal fabric with a custom delay function
// over n nodes (used by NOC-Out's idealized comparisons and tests).
func NewIdealWithDelay(n int, delay func(src, dst noc.NodeID) sim.Cycle) *Ideal {
	return &Ideal{
		delay:   delay,
		deliver: make([]func(now sim.Cycle, p *noc.Packet), n),
		sched:   make(map[sim.Cycle][]*noc.Packet),
	}
}

// BindWaker implements sim.WakeBinder: Send becomes a wake source, arming
// the fabric for each packet's delivery cycle.
func (id *Ideal) BindWaker(w sim.Waker) { id.waker = w }

// NextWake implements sim.Sleeper: the earliest scheduled delivery, or
// NeverWake when nothing is in flight (Send re-arms).
func (id *Ideal) NextWake(now sim.Cycle) sim.Cycle {
	if id.due.Len() == 0 {
		return sim.NeverWake
	}
	return id.due.Min()
}

// Send implements noc.Network.
func (id *Ideal) Send(now sim.Cycle, p *noc.Packet) {
	p.InjectedAt = now
	id.stats.Injected++
	d := id.delay(p.Src, p.Dst)
	if d < 1 {
		d = 1
	}
	// Serialization still exists on an ideal fabric: the tail arrives
	// Size-1 cycles after the head at one flit per cycle.
	at := now + d + sim.Cycle(p.Size-1)
	id.sched[at] = append(id.sched[at], p)
	id.due.Push(at)
	if id.waker != nil {
		id.waker.Wake(at)
	}
}

// SetDeliver implements noc.Network.
func (id *Ideal) SetDeliver(n noc.NodeID, fn func(now sim.Cycle, p *noc.Packet)) {
	id.deliver[n] = fn
}

// Stats implements noc.Network.
func (id *Ideal) Stats() *noc.Stats { return &id.stats }

// Tick delivers every packet scheduled for this cycle.
func (id *Ideal) Tick(now sim.Cycle) {
	for id.due.Len() > 0 && id.due.Min() <= now {
		id.due.Pop()
	}
	ps, ok := id.sched[now]
	if !ok {
		return
	}
	delete(id.sched, now)
	for _, p := range ps {
		p.DeliveredAt = now
		id.stats.RecordDelivery(p)
		fn := id.deliver[p.Dst]
		if fn == nil {
			panic(fmt.Sprintf("topo: ideal: node %d has no delivery callback", p.Dst))
		}
		fn(now, p)
	}
}

var _ noc.Network = (*Ideal)(nil)
var _ sim.Sleeper = (*Ideal)(nil)
