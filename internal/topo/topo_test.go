package topo

import (
	"math"
	"testing"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

func TestGridFor(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2},
		16: {4, 4}, 32: {8, 4}, 64: {8, 8}, 128: {16, 8},
	}
	for n, want := range cases {
		c, r := GridFor(n)
		if c != want[0] || r != want[1] {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", n, c, r, want[0], want[1])
		}
	}
}

func TestGridForRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GridFor(12)
}

func TestTiledFloorplanGeometry(t *testing.T) {
	f := TiledFloorplan(64, 8)
	if f.Cols != 8 || f.Rows != 8 {
		t.Fatalf("plan %dx%d", f.Cols, f.Rows)
	}
	// Tile = 2.9 (core) + 0.125*3.2 (128KB LLC slice) = 3.3 mm².
	wantSide := math.Sqrt(3.3)
	if math.Abs(f.TileW-wantSide) > 1e-9 {
		t.Fatalf("tile side %v, want %v", f.TileW, wantSide)
	}
	// Coordinates round-trip.
	for i := 0; i < 64; i++ {
		x, y := f.Coord(noc.NodeID(i))
		if f.Node(x, y) != noc.NodeID(i) {
			t.Fatalf("coord round trip failed for %d", i)
		}
	}
	if f.HopsMesh(0, 63) != 14 {
		t.Fatalf("corner-to-corner hops = %d, want 14", f.HopsMesh(0, 63))
	}
	if d := f.DistMM(0, 63); math.Abs(d-14*wantSide) > 1e-9 {
		t.Fatalf("corner distance = %v", d)
	}
}

// sendAndWait injects a packet and runs until delivery, returning it.
func sendAndWait(t *testing.T, net noc.Network, src, dst noc.NodeID, size int) *noc.Packet {
	t.Helper()
	e := sim.NewEngine()
	e.Register(net)
	var got *noc.Packet
	net.SetDeliver(dst, func(now sim.Cycle, p *noc.Packet) { got = p })
	p := &noc.Packet{ID: 1, Class: noc.ClassReq, Src: src, Dst: dst, Size: size}
	net.Send(e.Now(), p)
	if !e.RunUntil(func() bool { return got != nil }, 10000) {
		t.Fatalf("packet %d->%d never delivered", src, dst)
	}
	return got
}

func TestMeshZeroLoadLatency(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	m := NewMesh(DefaultMeshParams(plan))
	// 0 -> 63 is 14 hops; per-hop 3 cycles at zero load, plus one extra
	// router traversal (the destination router) and NI wiring overheads.
	p := sendAndWait(t, m, 0, 63, 1)
	if p.Hops() != 15 {
		t.Fatalf("router traversals = %d, want 15", p.Hops())
	}
	// Budget: inject tick 1 + wire 1 + 15 routers × (SA + pipe2+link1)
	// with the final hop's link being the 1-cycle eject wire.
	want := sim.Cycle(1 + 1 + 15*3)
	if p.Latency() != want {
		t.Fatalf("zero-load latency = %d, want %d", p.Latency(), want)
	}
}

func TestMeshNeighborLatency(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	m := NewMesh(DefaultMeshParams(plan))
	p := sendAndWait(t, m, 0, 1, 1)
	if p.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", p.Hops())
	}
}

func TestMeshXYRoutingDeliversAllPairs(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	m := NewMesh(DefaultMeshParams(plan))
	e := sim.NewEngine()
	e.Register(m)
	delivered := 0
	for i := 0; i < 16; i++ {
		m.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			m.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: noc.ClassResp, Src: noc.NodeID(s), Dst: noc.NodeID(d), Size: 5})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 100000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}

func TestFBflyPortCount(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	f := NewFBfly(DefaultFBflyParams(plan))
	// §5.1: each FBfly router has 14 network ports (7 per dimension) plus
	// a local port = 15.
	for _, r := range f.Routers {
		if r.NumIn() != 15 || r.NumOut() != 15 {
			t.Fatalf("router %s has %d in / %d out ports, want 15/15", r.Name, r.NumIn(), r.NumOut())
		}
	}
}

func TestFBflyAtMostTwoNetworkHops(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	f := NewFBfly(DefaultFBflyParams(plan))
	// Diagonal corner-to-corner: two network hops + destination router.
	p := sendAndWait(t, f, 0, 63, 1)
	if p.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (X hop, Y hop, eject router)", p.Hops())
	}
	// Same row: single network hop + destination router.
	f2 := NewFBfly(DefaultFBflyParams(plan))
	p2 := sendAndWait(t, f2, 0, 7, 1)
	if p2.Hops() != 2 {
		t.Fatalf("same-row hops = %d, want 2", p2.Hops())
	}
}

func TestFBflyFasterThanMeshAcrossChip(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	m := NewMesh(DefaultMeshParams(plan))
	f := NewFBfly(DefaultFBflyParams(plan))
	pm := sendAndWait(t, m, 0, 63, 5)
	pf := sendAndWait(t, f, 0, 63, 5)
	if pf.Latency() >= pm.Latency() {
		t.Fatalf("fbfly (%d) should beat mesh (%d) corner to corner", pf.Latency(), pm.Latency())
	}
}

func TestFBflyLinkDelay(t *testing.T) {
	cases := []struct{ dist, want int }{{1, 1}, {2, 1}, {3, 2}, {7, 4}}
	for _, c := range cases {
		if got := FBflyLinkDelay(c.dist, 2); got != sim.Cycle(c.want) {
			t.Errorf("FBflyLinkDelay(%d) = %d, want %d", c.dist, got, c.want)
		}
	}
}

func TestFBflyAllPairsDeliver(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	f := NewFBfly(DefaultFBflyParams(plan))
	e := sim.NewEngine()
	e.Register(f)
	delivered := 0
	for i := 0; i < 16; i++ {
		f.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			f.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: noc.ClassReq, Src: noc.NodeID(s), Dst: noc.NodeID(d), Size: 1})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 100000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}

func TestIdealLatencyIsWireOnly(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	id := NewIdeal(plan)
	p := sendAndWait(t, id, 0, 63, 1)
	want := plan.WireCyclesBetween(0, 63)
	if p.Latency() != want {
		t.Fatalf("ideal latency = %d, want %d", p.Latency(), want)
	}
	// Ideal is much faster than a mesh across the die.
	m := NewMesh(DefaultMeshParams(plan))
	pm := sendAndWait(t, m, 0, 63, 1)
	if p.Latency() >= pm.Latency()/3 {
		t.Fatalf("ideal (%d) should be far below mesh (%d)", p.Latency(), pm.Latency())
	}
}

func TestIdealSerialization(t *testing.T) {
	plan := TiledFloorplan(4, 8)
	id := NewIdeal(plan)
	p1 := sendAndWait(t, id, 0, 3, 1)
	id2 := NewIdeal(plan)
	p5 := sendAndWait(t, id2, 0, 3, 5)
	if p5.Latency() != p1.Latency()+4 {
		t.Fatalf("serialization: size5=%d size1=%d", p5.Latency(), p1.Latency())
	}
}

func TestIdealUnboundedBandwidth(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	id := NewIdeal(plan)
	e := sim.NewEngine()
	e.Register(id)
	n := 0
	id.SetDeliver(1, func(now sim.Cycle, p *noc.Packet) { n++ })
	const burst = 1000
	for i := 0; i < burst; i++ {
		id.Send(e.Now(), &noc.Packet{ID: uint64(i), Class: noc.ClassReq, Src: 0, Dst: 1, Size: 1})
	}
	want := plan.WireCyclesBetween(0, 1)
	e.Step(want + 1)
	if n != burst {
		t.Fatalf("ideal should deliver the whole burst at once: %d/%d", n, burst)
	}
}
