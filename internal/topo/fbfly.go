package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// FBflyParams configures the 2-D flattened butterfly of §5.1: every router
// is directly linked to all routers in its row and column (Figure 3),
// giving at most two network hops. Routers have a 3-stage non-speculative
// pipeline; a flit covers up to two tiles per cycle on the long links, and
// buffer depth per port is sized to the link's round-trip credit time.
type FBflyParams struct {
	Plan          Floorplan
	PipeDelay     sim.Cycle // default 3
	TilesPerCycle int       // link reach per cycle (default 2)
	BufSlack      int       // flits beyond link delay per VC (default 5)
	EjectBuf      int

	// AuxTiles attaches auxiliary endpoints (memory controllers) through
	// dedicated router ports; entry k hosts aux node NumTiles+k.
	AuxTiles []noc.NodeID
}

// DefaultFBflyParams returns the Table 1 flattened-butterfly configuration.
func DefaultFBflyParams(plan Floorplan) FBflyParams {
	return FBflyParams{Plan: plan, PipeDelay: 3, TilesPerCycle: 2, BufSlack: 5, EjectBuf: 8}
}

// FBflyLinkDelay returns the cycles to traverse a link spanning dist tiles.
func FBflyLinkDelay(dist, tilesPerCycle int) sim.Cycle {
	if dist < 1 {
		return 1
	}
	d := (dist + tilesPerCycle - 1) / tilesPerCycle
	return sim.Cycle(d)
}

// NewFBfly builds the 2-D flattened butterfly network.
func NewFBfly(p FBflyParams) *noc.RouterNetwork {
	plan := p.Plan
	n := plan.NumTiles()
	rn := noc.NewRouterNetwork(fmt.Sprintf("fbfly%dx%d", plan.Cols, plan.Rows), n+len(p.AuxTiles))
	routers := make([]*noc.Router, n)

	// rowOut[i][x'] / colOut[i][y'] give output port indices toward column
	// x' / row y'; -1 for self. Inputs are created pairwise with outputs so
	// indices coincide.
	rowOut := make([][]int, n)
	colOut := make([][]int, n)
	localOut := make([]int, n)
	localIn := make([]int, n)

	for i := 0; i < n; i++ {
		id := noc.NodeID(i)
		x, y := plan.Coord(id)
		r := noc.NewRouter(id, fmt.Sprintf("fbfly.r%d_%d", x, y), p.PipeDelay, nil)
		rowOut[i] = make([]int, plan.Cols)
		colOut[i] = make([]int, plan.Rows)
		for tx := 0; tx < plan.Cols; tx++ {
			rowOut[i][tx] = -1
			if tx == x {
				continue
			}
			dist := abs(tx - x)
			depth := int(FBflyLinkDelay(dist, p.TilesPerCycle)) + p.BufSlack
			r.AddIn(fmt.Sprintf("x%d", tx), depth)
			rowOut[i][tx] = r.AddOut(fmt.Sprintf("x%d", tx))
		}
		for ty := 0; ty < plan.Rows; ty++ {
			colOut[i][ty] = -1
			if ty == y {
				continue
			}
			dist := abs(ty - y)
			depth := int(FBflyLinkDelay(dist, p.TilesPerCycle)) + p.BufSlack
			r.AddIn(fmt.Sprintf("y%d", ty), depth)
			colOut[i][ty] = r.AddOut(fmt.Sprintf("y%d", ty))
		}
		localIn[i] = r.AddIn("local", p.BufSlack)
		localOut[i] = r.AddOut("local")
		routers[i] = r
	}

	// Auxiliary endpoints on dedicated ports.
	auxOut := make(map[int]map[int]int)
	auxIn := make(map[int]map[int]int)
	for k, tile := range p.AuxTiles {
		r := routers[int(tile)]
		if auxOut[int(tile)] == nil {
			auxOut[int(tile)] = map[int]int{}
			auxIn[int(tile)] = map[int]int{}
		}
		auxIn[int(tile)][k] = r.AddIn(fmt.Sprintf("aux%d", k), p.BufSlack)
		auxOut[int(tile)][k] = r.AddOut(fmt.Sprintf("aux%d", k))
	}

	// Routing: X dimension first, then Y, then eject — at most 2 hops.
	for i := 0; i < n; i++ {
		i := i
		x, y := plan.Coord(noc.NodeID(i))
		routers[i].SetRoute(func(pk *noc.Packet) int {
			dst := pk.Dst
			if int(dst) >= n {
				k := int(dst) - n
				tile := p.AuxTiles[k]
				if int(tile) == i {
					return auxOut[i][k]
				}
				dst = tile
			}
			dx, dy := plan.Coord(dst)
			switch {
			case dx != x:
				return rowOut[i][dx]
			case dy != y:
				return colOut[i][dy]
			default:
				return localOut[i]
			}
		})
	}

	// Input port indices mirror output construction order: row ports for
	// every tx != x (ascending), then column ports for every ty != y, then
	// local.
	inRow := func(i, tx int) int {
		x, _ := plan.Coord(noc.NodeID(i))
		idx := 0
		for t := 0; t < plan.Cols; t++ {
			if t == x {
				continue
			}
			if t == tx {
				return idx
			}
			idx++
		}
		panic("topo: fbfly row input not found")
	}
	inCol := func(i, ty int) int {
		x, y := plan.Coord(noc.NodeID(i))
		_ = x
		idx := plan.Cols - 1
		for t := 0; t < plan.Rows; t++ {
			if t == y {
				continue
			}
			if t == ty {
				return idx
			}
			idx++
		}
		panic("topo: fbfly col input not found")
	}

	for i := 0; i < n; i++ {
		x, y := plan.Coord(noc.NodeID(i))
		// Row links toward higher x (the reverse direction is wired from
		// the peer's iteration).
		for tx := x + 1; tx < plan.Cols; tx++ {
			j := int(plan.Node(tx, y))
			dist := tx - x
			delay := FBflyLinkDelay(dist, p.TilesPerCycle)
			lenMM := float64(dist) * plan.TileW
			noc.Connect(routers[i], rowOut[i][tx], routers[j], inRow(j, x), delay, lenMM)
			noc.Connect(routers[j], rowOut[j][x], routers[i], inRow(i, tx), delay, lenMM)
		}
		for ty := y + 1; ty < plan.Rows; ty++ {
			j := int(plan.Node(x, ty))
			dist := ty - y
			delay := FBflyLinkDelay(dist, p.TilesPerCycle)
			lenMM := float64(dist) * plan.TileH
			noc.Connect(routers[i], colOut[i][ty], routers[j], inCol(j, y), delay, lenMM)
			noc.Connect(routers[j], colOut[j][y], routers[i], inCol(i, ty), delay, lenMM)
		}
	}

	for i := 0; i < n; i++ {
		ni := noc.NewNI(noc.NodeID(i), rn.StatsRef())
		noc.ConnectNI(ni, routers[i], localIn[i], localOut[i], 1, 1, p.EjectBuf)
		rn.NIs[i] = ni
	}
	for k, tile := range p.AuxTiles {
		ni := noc.NewNI(noc.NodeID(n+k), rn.StatsRef())
		noc.ConnectNI(ni, routers[int(tile)], auxIn[int(tile)][k], auxOut[int(tile)][k], 1, 1, p.EjectBuf)
		rn.NIs[n+k] = ni
	}
	rn.Routers = routers
	return rn
}
