package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// TorusParams configures a 2-D folded torus: the mesh's grid with
// wrap-around links in both dimensions, halving the network diameter at
// the cost of longer wires. The physical layout is folded, so every link —
// wrap links included — spans two tiles; routers keep the mesh's 2-stage
// pipeline and add the deeper ring buffers bubble flow control needs.
type TorusParams struct {
	Plan      Floorplan
	BufFlits  int       // flits per VC on ring inputs (default 2*MaxPktFlits+2)
	PipeDelay sim.Cycle // router pipeline (default 2)
	LinkDelay sim.Cycle // per-hop link traversal (default 1)
	EjectBuf  int       // NI eject buffering per VC (default 8)

	// MaxPktFlits is the largest packet the protocol injects, in flits; it
	// sizes the bubble-flow-control thresholds (default 5, a 64-byte line
	// on 128-bit links).
	MaxPktFlits int

	// AuxTiles attaches auxiliary endpoints (memory controllers) through
	// dedicated router ports; entry k hosts aux node NumTiles+k.
	AuxTiles []noc.NodeID
}

// DefaultTorusParams returns the Table 1-style torus configuration on plan.
func DefaultTorusParams(plan Floorplan) TorusParams {
	return TorusParams{Plan: plan, PipeDelay: 2, LinkDelay: 1, EjectBuf: 8, MaxPktFlits: 5}
}

// Torus port directions: dimension (x=0, y=1) crossed with travel sign.
const (
	torusPosX = iota // traveling toward +x
	torusNegX
	torusPosY
	torusNegY
	torusDirs
)

// NewTorus builds a 2-D folded torus with dimension-order routing, taking
// the shorter ring direction per dimension (ties go positive). Deadlock
// freedom inside each unidirectional ring comes from bubble flow control:
// ring traffic moves virtual-cut-through (a head advances only when the
// whole packet fits downstream), and entering a ring — injection or an
// X-to-Y turn — additionally requires a free maximum-packet bubble.
func NewTorus(p TorusParams) *noc.RouterNetwork {
	plan := p.Plan
	n := plan.NumTiles()
	if plan.Cols < 2 || plan.Rows < 2 {
		panic(fmt.Sprintf("topo: torus needs at least 2x2 tiles, got %dx%d", plan.Cols, plan.Rows))
	}
	if p.MaxPktFlits < 1 {
		p.MaxPktFlits = 5
	}
	if p.BufFlits == 0 {
		p.BufFlits = 2*p.MaxPktFlits + 2 // room for the entry bubble
	}
	if p.BufFlits < 2*p.MaxPktFlits {
		panic("topo: torus ring buffers must hold two maximum packets (bubble flow control)")
	}
	rn := noc.NewRouterNetwork(fmt.Sprintf("torus%dx%d", plan.Cols, plan.Rows), n+len(p.AuxTiles))
	routers := make([]*noc.Router, n)
	inDir := make([][]int, n)  // inDir[i][d] = input-port index receiving direction-d traffic
	outDir := make([][]int, n) // outDir[i][d] = output-port index sending direction-d traffic
	localIn := make([]int, n)
	localOut := make([]int, n)

	dirName := [...]string{"px", "nx", "py", "ny"}
	for i := 0; i < n; i++ {
		id := noc.NodeID(i)
		x, y := plan.Coord(id)
		r := noc.NewRouter(id, fmt.Sprintf("torus.r%d_%d", x, y), p.PipeDelay, nil)
		inDir[i] = make([]int, torusDirs)
		outDir[i] = make([]int, torusDirs)
		for d := 0; d < torusDirs; d++ {
			inDir[i][d] = r.AddIn(dirName[d], p.BufFlits)
			outDir[i][d] = r.AddOut(dirName[d])
		}
		localIn[i] = r.AddIn("local", p.BufFlits)
		localOut[i] = r.AddOut("local")
		routers[i] = r
	}

	// Auxiliary endpoints: dedicated ports on their host routers.
	auxOut := make(map[int]map[int]int)
	auxIn := make(map[int]map[int]int)
	for k, tile := range p.AuxTiles {
		r := routers[int(tile)]
		if auxOut[int(tile)] == nil {
			auxOut[int(tile)] = map[int]int{}
			auxIn[int(tile)] = map[int]int{}
		}
		auxIn[int(tile)][k] = r.AddIn(fmt.Sprintf("aux%d", k), p.BufFlits)
		auxOut[int(tile)][k] = r.AddOut(fmt.Sprintf("aux%d", k))
	}

	// Routing: X ring first, then Y ring, then eject.
	for i := 0; i < n; i++ {
		i := i
		x, y := plan.Coord(noc.NodeID(i))
		routers[i].SetRoute(func(pk *noc.Packet) int {
			dst := pk.Dst
			if int(dst) >= n {
				k := int(dst) - n
				tile := p.AuxTiles[k]
				if int(tile) == i {
					return auxOut[i][k]
				}
				dst = tile
			}
			dx, dy := plan.Coord(dst)
			switch {
			case dx != x:
				return outDir[i][ringDir(x, dx, plan.Cols, torusPosX, torusNegX)]
			case dy != y:
				return outDir[i][ringDir(y, dy, plan.Rows, torusPosY, torusNegY)]
			default:
				return localOut[i]
			}
		})
	}

	// Wire the rings. A folded layout makes every link — including the
	// wraps — span two tile pitches.
	for i := 0; i < n; i++ {
		x, y := plan.Coord(noc.NodeID(i))
		ex := int(plan.Node((x+1)%plan.Cols, y))
		noc.Connect(routers[i], outDir[i][torusPosX], routers[ex], inDir[ex][torusPosX], p.LinkDelay, 2*plan.TileW)
		noc.Connect(routers[ex], outDir[ex][torusNegX], routers[i], inDir[i][torusNegX], p.LinkDelay, 2*plan.TileW)
		sy := int(plan.Node(x, (y+1)%plan.Rows))
		noc.Connect(routers[i], outDir[i][torusPosY], routers[sy], inDir[sy][torusPosY], p.LinkDelay, 2*plan.TileH)
		noc.Connect(routers[sy], outDir[sy][torusNegY], routers[i], inDir[i][torusNegY], p.LinkDelay, 2*plan.TileH)
	}

	// Bubble flow control thresholds (see NewTorus doc).
	for i := 0; i < n; i++ {
		ins, outs := inDir[i], outDir[i]
		routers[i].SetHeadRoom(func(in, out, size int) int {
			ringOut := -1
			for d := 0; d < torusDirs; d++ {
				if outs[d] == out {
					ringOut = d
					break
				}
			}
			if ringOut < 0 {
				return 1 // eject or aux: plain wormhole
			}
			if ins[ringOut] == in {
				return size // continuing in the same ring: virtual cut-through
			}
			return size + p.MaxPktFlits // ring entry: leave a max-packet bubble
		})
	}

	// NIs on the local ports.
	for i := 0; i < n; i++ {
		ni := noc.NewNI(noc.NodeID(i), rn.StatsRef())
		noc.ConnectNI(ni, routers[i], localIn[i], localOut[i], 1, 1, p.EjectBuf)
		rn.NIs[i] = ni
	}
	for k, tile := range p.AuxTiles {
		ni := noc.NewNI(noc.NodeID(n+k), rn.StatsRef())
		noc.ConnectNI(ni, routers[int(tile)], auxIn[int(tile)][k], auxOut[int(tile)][k], 1, 1, p.EjectBuf)
		rn.NIs[n+k] = ni
	}
	rn.Routers = routers
	return rn
}

// ringDir picks the travel direction from ring position at to position to
// on a ring of size k, returning pos for the positive direction (shorter
// path or tie) and neg otherwise.
func ringDir(at, to, k, pos, neg int) int {
	fwd := (to - at + k) % k
	if fwd <= k-fwd {
		return pos
	}
	return neg
}
