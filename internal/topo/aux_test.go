package topo

import (
	"testing"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

func TestMeshAuxEndpoints(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	p := DefaultMeshParams(plan)
	p.AuxTiles = []noc.NodeID{plan.Node(0, 1), plan.Node(3, 2)}
	m := NewMesh(p)

	// Aux node 16 lives at tile (0,1); reachable from any tile.
	got := 0
	m.SetDeliver(16, func(now sim.Cycle, pk *noc.Packet) { got++ })
	m.SetDeliver(5, func(now sim.Cycle, pk *noc.Packet) { got++ })
	e := sim.NewEngine()
	e.Register(m)
	m.Send(e.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 15, Dst: 16, Size: 1})
	// And back from the aux endpoint to a tile.
	m.Send(e.Now(), &noc.Packet{ID: 2, Class: noc.ClassResp, Src: 17, Dst: 5, Size: 5})
	if !e.RunUntil(func() bool { return got == 2 }, 2000) {
		t.Fatalf("aux traffic delivered %d/2", got)
	}
}

func TestMeshAuxUsesDedicatedPort(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	base := NewMesh(DefaultMeshParams(plan))
	p := DefaultMeshParams(plan)
	host := plan.Node(1, 1)
	p.AuxTiles = []noc.NodeID{host}
	withAux := NewMesh(p)
	// The hosting router gains exactly one input and one output port.
	if withAux.Routers[host].NumIn() != base.Routers[host].NumIn()+1 {
		t.Fatalf("aux input port not added: %d vs %d",
			withAux.Routers[host].NumIn(), base.Routers[host].NumIn())
	}
	if withAux.Routers[host].NumOut() != base.Routers[host].NumOut()+1 {
		t.Fatal("aux output port not added")
	}
	// Other routers unchanged.
	other := plan.Node(2, 3)
	if withAux.Routers[other].NumIn() != base.Routers[other].NumIn() {
		t.Fatal("unrelated router grew ports")
	}
}

func TestFBflyAuxEndpoints(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	p := DefaultFBflyParams(plan)
	p.AuxTiles = []noc.NodeID{plan.Node(3, 3)}
	f := NewFBfly(p)
	got := 0
	f.SetDeliver(16, func(now sim.Cycle, pk *noc.Packet) { got++ })
	f.SetDeliver(0, func(now sim.Cycle, pk *noc.Packet) { got++ })
	e := sim.NewEngine()
	e.Register(f)
	f.Send(e.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 0, Dst: 16, Size: 1})
	f.Send(e.Now(), &noc.Packet{ID: 2, Class: noc.ClassResp, Src: 16, Dst: 0, Size: 5})
	if !e.RunUntil(func() bool { return got == 2 }, 2000) {
		t.Fatalf("fbfly aux traffic delivered %d/2", got)
	}
}

func TestIdealAuxEndpoints(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	id := NewIdeal(plan, plan.Node(0, 0), plan.Node(3, 3))
	got := 0
	id.SetDeliver(17, func(now sim.Cycle, pk *noc.Packet) { got++ })
	e := sim.NewEngine()
	e.Register(id)
	id.Send(e.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 0, Dst: 17, Size: 1})
	if !e.RunUntil(func() bool { return got == 1 }, 100) {
		t.Fatal("ideal aux endpoint unreachable")
	}
	// Latency equals the wire delay to the hosting tile.
	id2 := NewIdeal(plan, plan.Node(3, 3))
	var p2 *noc.Packet
	id2.SetDeliver(16, func(now sim.Cycle, pk *noc.Packet) { p2 = pk })
	e2 := sim.NewEngine()
	e2.Register(id2)
	id2.Send(e2.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 0, Dst: 16, Size: 1})
	e2.RunUntil(func() bool { return p2 != nil }, 100)
	if want := plan.WireCyclesBetween(0, plan.Node(3, 3)); p2.Latency() != want {
		t.Fatalf("aux wire latency = %d, want %d", p2.Latency(), want)
	}
}
