package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/tech"
)

// CrossbarParams configures the delay-optimized central crossbar of the
// paper's background (§2.2): the Oracle T-series interconnect style that
// scale-out processors used before many-core counts made it untenable.
// Every tile connects to one central switch; latency is the wire to the
// die center plus a short pipeline, but the switch's area grows
// quadratically with port count (why the SOP designs stop at ~16 cores).
type CrossbarParams struct {
	Plan      Floorplan
	PipeDelay sim.Cycle // switch pipeline (default 2)
	BufFlits  int       // per-VC input buffering (default 5)
	EjectBuf  int

	// AuxTiles attaches auxiliary endpoints (memory controllers) as extra
	// crossbar ports; entry k is the tile position whose wire distance aux
	// node NumTiles+k pays to reach the central switch.
	AuxTiles []noc.NodeID
}

// DefaultCrossbarParams returns a T-series-like configuration.
func DefaultCrossbarParams(plan Floorplan) CrossbarParams {
	return CrossbarParams{Plan: plan, PipeDelay: 2, BufFlits: 5, EjectBuf: 8}
}

// NewCrossbar builds a single-switch network over the floorplan. Endpoint
// k (tile or aux) owns switch port k, so routing is a table lookup.
func NewCrossbar(p CrossbarParams) *noc.RouterNetwork {
	plan := p.Plan
	n := plan.NumTiles()
	rn := noc.NewRouterNetwork(fmt.Sprintf("xbar%d", n), n+len(p.AuxTiles))
	r := noc.NewRouter(0, "xbar", p.PipeDelay, nil)
	r.SetRoute(func(pk *noc.Packet) int { return int(pk.Dst) })

	// Wire length from each endpoint's tile to the die center.
	cx := float64(plan.Cols-1) / 2 * plan.TileW
	cy := float64(plan.Rows-1) / 2 * plan.TileH
	spoke := func(tile noc.NodeID) float64 {
		x, y := plan.Coord(tile)
		dx := absF(float64(x)*plan.TileW - cx)
		dy := absF(float64(y)*plan.TileH - cy)
		return dx + dy
	}
	attach := func(node noc.NodeID, tile noc.NodeID) {
		dist := spoke(tile)
		wire := sim.Cycle(tech.WireCycles(dist))
		in := r.AddIn(fmt.Sprintf("t%d", node), p.BufFlits)
		out := r.AddOut(fmt.Sprintf("t%d", node))
		ni := noc.NewNI(node, rn.StatsRef())
		noc.ConnectNI(ni, r, in, out, wire, wire, p.EjectBuf)
		// The eject link carries both spoke directions' length so the area
		// and energy models see the full in-plus-out wire per traversal.
		r.SetOutLength(out, 2*dist)
		rn.NIs[node] = ni
	}
	for i := 0; i < n; i++ {
		attach(noc.NodeID(i), noc.NodeID(i))
	}
	for k, tile := range p.AuxTiles {
		attach(noc.NodeID(n+k), tile)
	}
	rn.Routers = []*noc.Router{r}
	return rn
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
