package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// CMeshParams configures a concentrated mesh: a 2x2 block of tiles shares
// one router (4:1 concentration), so a 64-tile chip needs only 16 routers
// at twice the link pitch. Radix grows (4 directions + 4 local ports) but
// hop count and router count shrink — the classic CMP compromise between
// the mesh's per-tile routers and the flattened butterfly's wire budget.
type CMeshParams struct {
	Plan      Floorplan // tile-granularity floorplan (Cols and Rows even)
	BufFlits  int       // flits per VC per input port (default 5)
	PipeDelay sim.Cycle // router pipeline (default 2)
	LinkDelay sim.Cycle // per-hop link traversal (default 1)
	EjectBuf  int       // NI eject buffering per VC (default 8)

	// AuxTiles attaches auxiliary endpoints (memory controllers) through
	// dedicated ports on the router serving the tile; entry k hosts aux
	// node NumTiles+k.
	AuxTiles []noc.NodeID
}

// DefaultCMeshParams returns the concentrated-mesh configuration on plan.
func DefaultCMeshParams(plan Floorplan) CMeshParams {
	return CMeshParams{Plan: plan, BufFlits: 5, PipeDelay: 2, LinkDelay: 1, EjectBuf: 8}
}

// CMeshConcentration is the tiles-per-router ratio (a 2x2 block).
const CMeshConcentration = 4

// NewCMesh builds the concentrated mesh with XY dimension-order routing
// over the router grid. Tiles keep their floorplan NodeIDs; tile (x, y)
// attaches to router (x/2, y/2) through a dedicated local port.
func NewCMesh(p CMeshParams) *noc.RouterNetwork {
	plan := p.Plan
	if plan.Cols%2 != 0 || plan.Rows%2 != 0 {
		panic(fmt.Sprintf("topo: cmesh needs an even tile grid, got %dx%d", plan.Cols, plan.Rows))
	}
	n := plan.NumTiles()
	rCols, rRows := plan.Cols/2, plan.Rows/2
	nr := rCols * rRows
	// The router grid reuses Floorplan geometry at twice the tile pitch.
	rplan := Floorplan{Cols: rCols, Rows: rRows, TileW: 2 * plan.TileW, TileH: 2 * plan.TileH}

	rn := noc.NewRouterNetwork(fmt.Sprintf("cmesh%dx%d", rCols, rRows), n+len(p.AuxTiles))
	routers := make([]*noc.Router, nr)
	outIdx := make([][4]int, nr)
	inIdx := make([][4]int, nr)
	coreIn := make([][]int, nr) // per router: local port per concentrated tile
	coreOut := make([][]int, nr)

	// routerOf maps a tile to its router index and local-port slot.
	routerOf := func(tile noc.NodeID) (ri, slot int) {
		x, y := plan.Coord(tile)
		return (y/2)*rCols + x/2, (y%2)*2 + x%2
	}

	for i := 0; i < nr; i++ {
		x, y := i%rCols, i/rCols
		r := noc.NewRouter(noc.NodeID(i), fmt.Sprintf("cmesh.r%d_%d", x, y), p.PipeDelay, nil)
		for d := 0; d < 4; d++ {
			outIdx[i][d] = -1
			inIdx[i][d] = -1
		}
		for d, ok := range meshNeighbors(rplan, x, y) {
			if !ok {
				continue
			}
			inIdx[i][d] = r.AddIn(dirName(d), p.BufFlits)
			outIdx[i][d] = r.AddOut(dirName(d))
		}
		coreIn[i] = make([]int, CMeshConcentration)
		coreOut[i] = make([]int, CMeshConcentration)
		for k := 0; k < CMeshConcentration; k++ {
			coreIn[i][k] = r.AddIn(fmt.Sprintf("c%d", k), p.BufFlits)
			coreOut[i][k] = r.AddOut(fmt.Sprintf("c%d", k))
		}
		routers[i] = r
	}

	// Auxiliary endpoints: dedicated ports on the router serving the tile.
	auxOut := make(map[int]map[int]int)
	auxIn := make(map[int]map[int]int)
	for k, tile := range p.AuxTiles {
		ri, _ := routerOf(tile)
		r := routers[ri]
		if auxOut[ri] == nil {
			auxOut[ri] = map[int]int{}
			auxIn[ri] = map[int]int{}
		}
		auxIn[ri][k] = r.AddIn(fmt.Sprintf("aux%d", k), p.BufFlits)
		auxOut[ri][k] = r.AddOut(fmt.Sprintf("aux%d", k))
	}

	// Routing: X first over the router grid, then Y, then the local port.
	for i := 0; i < nr; i++ {
		i := i
		x, y := i%rCols, i/rCols
		routers[i].SetRoute(func(pk *noc.Packet) int {
			dst := pk.Dst
			if int(dst) >= n {
				k := int(dst) - n
				ri, _ := routerOf(p.AuxTiles[k])
				if ri == i {
					return auxOut[i][k]
				}
				dst = p.AuxTiles[k]
			}
			ri, slot := routerOf(dst)
			dx, dy := ri%rCols, ri/rCols
			switch {
			case dx > x:
				return outIdx[i][dirE]
			case dx < x:
				return outIdx[i][dirW]
			case dy > y:
				return outIdx[i][dirS]
			case dy < y:
				return outIdx[i][dirN]
			default:
				return coreOut[i][slot]
			}
		})
	}

	// Wire neighbouring routers at the doubled pitch.
	for i := 0; i < nr; i++ {
		x, y := i%rCols, i/rCols
		if outIdx[i][dirE] >= 0 {
			j := (y)*rCols + x + 1
			noc.Connect(routers[i], outIdx[i][dirE], routers[j], inIdx[j][dirW], p.LinkDelay, rplan.TileW)
			noc.Connect(routers[j], outIdx[j][dirW], routers[i], inIdx[i][dirE], p.LinkDelay, rplan.TileW)
		}
		if outIdx[i][dirS] >= 0 {
			j := (y+1)*rCols + x
			noc.Connect(routers[i], outIdx[i][dirS], routers[j], inIdx[j][dirN], p.LinkDelay, rplan.TileH)
			noc.Connect(routers[j], outIdx[j][dirN], routers[i], inIdx[i][dirS], p.LinkDelay, rplan.TileH)
		}
	}

	// Tile NIs on their routers' local ports.
	for t := 0; t < n; t++ {
		ri, slot := routerOf(noc.NodeID(t))
		ni := noc.NewNI(noc.NodeID(t), rn.StatsRef())
		noc.ConnectNI(ni, routers[ri], coreIn[ri][slot], coreOut[ri][slot], 1, 1, p.EjectBuf)
		rn.NIs[t] = ni
	}
	for k, tile := range p.AuxTiles {
		ri, _ := routerOf(tile)
		ni := noc.NewNI(noc.NodeID(n+k), rn.StatsRef())
		noc.ConnectNI(ni, routers[ri], auxIn[ri][k], auxOut[ri][k], 1, 1, p.EjectBuf)
		rn.NIs[n+k] = ni
	}
	rn.Routers = routers
	return rn
}
