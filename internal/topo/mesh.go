package topo

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// MeshParams configures the baseline tiled mesh of §5.1: 5-port routers,
// 3 VCs/port, 5 flits/VC, 2-stage speculative pipeline, 1-cycle links —
// 3 cycles per hop at zero load.
type MeshParams struct {
	Plan      Floorplan
	BufFlits  int       // flits per VC per input port (default 5)
	PipeDelay sim.Cycle // router pipeline (default 2)
	LinkDelay sim.Cycle // per-hop link traversal (default 1)
	EjectBuf  int       // NI eject buffering per VC (default 8)

	// AuxTiles attaches auxiliary endpoints (memory controllers and other
	// off-die interfaces) through dedicated router ports. The k-th entry
	// is the tile whose router hosts aux node NumTiles+k.
	AuxTiles []noc.NodeID
}

// DefaultMeshParams returns the Table 1 mesh configuration on plan.
func DefaultMeshParams(plan Floorplan) MeshParams {
	return MeshParams{Plan: plan, BufFlits: 5, PipeDelay: 2, LinkDelay: 1, EjectBuf: 8}
}

// Mesh port layout: outputs/inputs 0..3 are N, E, S, W (present only when
// the neighbour exists), and the last is the local/NI port.
const (
	dirN = iota
	dirE
	dirS
	dirW
)

// NewMesh builds a 2-D mesh with XY dimension-order routing.
func NewMesh(p MeshParams) *noc.RouterNetwork {
	plan := p.Plan
	n := plan.NumTiles()
	rn := noc.NewRouterNetwork(fmt.Sprintf("mesh%dx%d", plan.Cols, plan.Rows), n+len(p.AuxTiles))
	routers := make([]*noc.Router, n)
	// outIdx[node][dir] is the output-port index for that direction;
	// -1 when the neighbour does not exist. Local port index is stored at
	// localOut[node].
	outIdx := make([][4]int, n)
	localOut := make([]int, n)
	localInPort := make([]int, n)

	for i := 0; i < n; i++ {
		id := noc.NodeID(i)
		x, y := plan.Coord(id)
		r := noc.NewRouter(id, fmt.Sprintf("mesh.r%d_%d", x, y), p.PipeDelay, nil)
		for d := 0; d < 4; d++ {
			outIdx[i][d] = -1
		}
		for d, ok := range meshNeighbors(plan, x, y) {
			if !ok {
				continue
			}
			r.AddIn(dirName(d), p.BufFlits)
			outIdx[i][d] = r.AddOut(dirName(d))
		}
		localInPort[i] = r.AddIn("local", p.BufFlits)
		localOut[i] = r.AddOut("local")
		routers[i] = r
	}

	// Auxiliary endpoints: dedicated ports on their host routers.
	auxOut := make(map[int]map[int]int) // router -> aux index -> out port
	auxIn := make(map[int]map[int]int)
	for k, tile := range p.AuxTiles {
		r := routers[int(tile)]
		if auxOut[int(tile)] == nil {
			auxOut[int(tile)] = map[int]int{}
			auxIn[int(tile)] = map[int]int{}
		}
		auxIn[int(tile)][k] = r.AddIn(fmt.Sprintf("aux%d", k), p.BufFlits)
		auxOut[int(tile)][k] = r.AddOut(fmt.Sprintf("aux%d", k))
	}

	// Routing: X first, then Y, then eject (aux nodes route toward their
	// host tile, then out the dedicated port).
	for i := 0; i < n; i++ {
		i := i
		x, y := plan.Coord(noc.NodeID(i))
		routers[i].SetRoute(func(pk *noc.Packet) int {
			dst := pk.Dst
			if int(dst) >= n {
				k := int(dst) - n
				tile := p.AuxTiles[k]
				if int(tile) == i {
					return auxOut[i][k]
				}
				dst = tile
			}
			dx, dy := plan.Coord(dst)
			switch {
			case dx > x:
				return outIdx[i][dirE]
			case dx < x:
				return outIdx[i][dirW]
			case dy > y:
				return outIdx[i][dirS]
			case dy < y:
				return outIdx[i][dirN]
			default:
				return localOut[i]
			}
		})
	}

	// Wire neighbouring routers. Input-port indices mirror output-port
	// construction order, so recompute them the same way.
	inIdx := make([][4]int, n)
	for i := 0; i < n; i++ {
		x, y := plan.Coord(noc.NodeID(i))
		idx := 0
		for d := 0; d < 4; d++ {
			inIdx[i][d] = -1
			if meshNeighbors(plan, x, y)[d] {
				inIdx[i][d] = idx
				idx++
			}
		}
	}
	for i := 0; i < n; i++ {
		x, y := plan.Coord(noc.NodeID(i))
		if outIdx[i][dirE] >= 0 {
			j := int(plan.Node(x+1, y))
			lenMM := plan.TileW
			noc.Connect(routers[i], outIdx[i][dirE], routers[j], inIdx[j][dirW], p.LinkDelay, lenMM)
			noc.Connect(routers[j], outIdx[j][dirW], routers[i], inIdx[i][dirE], p.LinkDelay, lenMM)
		}
		if outIdx[i][dirS] >= 0 {
			j := int(plan.Node(x, y+1))
			lenMM := plan.TileH
			noc.Connect(routers[i], outIdx[i][dirS], routers[j], inIdx[j][dirN], p.LinkDelay, lenMM)
			noc.Connect(routers[j], outIdx[j][dirN], routers[i], inIdx[i][dirS], p.LinkDelay, lenMM)
		}
	}

	// NIs on the local ports.
	for i := 0; i < n; i++ {
		ni := noc.NewNI(noc.NodeID(i), rn.StatsRef())
		localIn := localInPort[i]
		noc.ConnectNI(ni, routers[i], localIn, localOut[i], 1, 1, p.EjectBuf)
		rn.NIs[i] = ni
	}
	for k, tile := range p.AuxTiles {
		ni := noc.NewNI(noc.NodeID(n+k), rn.StatsRef())
		noc.ConnectNI(ni, routers[int(tile)], auxIn[int(tile)][k], auxOut[int(tile)][k], 1, 1, p.EjectBuf)
		rn.NIs[n+k] = ni
	}
	rn.Routers = routers
	return rn
}

// meshNeighbors reports which of N,E,S,W neighbours exist at (x, y).
func meshNeighbors(plan Floorplan, x, y int) [4]bool {
	return [4]bool{
		dirN: y > 0,
		dirE: x < plan.Cols-1,
		dirS: y < plan.Rows-1,
		dirW: x > 0,
	}
}

func dirName(d int) string { return [...]string{"N", "E", "S", "W"}[d] }
