package topo

import (
	"testing"

	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/tech"
)

func TestCrossbarDelivery(t *testing.T) {
	plan := TiledFloorplan(16, 4)
	x := NewCrossbar(DefaultCrossbarParams(plan))
	e := sim.NewEngine()
	e.Register(x)
	delivered := 0
	for i := 0; i < 16; i++ {
		x.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			x.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: noc.ClassReq,
				Src: noc.NodeID(s), Dst: noc.NodeID(d), Size: 1})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 100000) {
		t.Fatalf("crossbar delivered %d/%d", delivered, sent)
	}
}

func TestCrossbarSingleSwitchHop(t *testing.T) {
	plan := TiledFloorplan(16, 4)
	x := NewCrossbar(DefaultCrossbarParams(plan))
	e := sim.NewEngine()
	e.Register(x)
	var got *noc.Packet
	x.SetDeliver(15, func(now sim.Cycle, p *noc.Packet) { got = p })
	x.Send(e.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 0, Dst: 15, Size: 1})
	if !e.RunUntil(func() bool { return got != nil }, 1000) {
		t.Fatal("never delivered")
	}
	if got.Hops() != 1 {
		t.Fatalf("crossbar traversals = %d, want exactly 1", got.Hops())
	}
	// At 16 cores the crossbar is fast: well under a mesh's multi-hop path.
	m := NewMesh(DefaultMeshParams(plan))
	var pm *noc.Packet
	m.SetDeliver(15, func(now sim.Cycle, p *noc.Packet) { pm = p })
	e2 := sim.NewEngine()
	e2.Register(m)
	m.Send(e2.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: 0, Dst: 15, Size: 1})
	e2.RunUntil(func() bool { return pm != nil }, 1000)
	if got.Latency() >= pm.Latency() {
		t.Fatalf("16-node crossbar (%d cy) should beat mesh (%d cy)", got.Latency(), pm.Latency())
	}
}

func TestCrossbarAreaScalesQuadratically(t *testing.T) {
	// The §2.2 scalability story: the central switch area grows with the
	// square of the port count, while a mesh's router budget grows
	// linearly — which is why crossbar-based scale-out parts stop at ~16
	// cores.
	a16 := tech.CrossbarAreaMM2(16+1, 128)
	a64 := tech.CrossbarAreaMM2(64+1, 128)
	if ratio := a64 / a16; ratio < 10 {
		t.Fatalf("64-port crossbar should dwarf 16-port: ratio %.1f", ratio)
	}
}
