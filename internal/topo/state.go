package topo

import (
	"sort"

	"nocout/internal/ckpt"
	"nocout/internal/noc"
	"nocout/internal/sim"
)

// Checkpoint serialization of the ideal fabric: the delivery calendar
// (buckets of in-flight packets, in ascending delivery-cycle order so the
// encoding is independent of heap layout and map iteration) plus the
// traffic counters. The floorplan, delay function, and callbacks are
// structural.

// SaveState serializes the fabric's in-flight state; put encodes each
// packet's payload.
func (id *Ideal) SaveState(e *ckpt.Enc, put noc.PayloadEnc) {
	ats := make([]sim.Cycle, 0, len(id.buckets))
	for at := range id.buckets {
		ats = append(ats, at)
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	e.U64(uint64(len(ats)))
	prev := sim.Cycle(0)
	for _, at := range ats {
		b := id.buckets[at]
		e.I64(int64(at - prev))
		prev = at
		e.U64(uint64(len(b.pkts)))
		for _, p := range b.pkts {
			noc.EncodePacket(e, p, put)
		}
	}

	s := id.stats
	e.I64(s.Injected)
	e.I64(s.Delivered)
	for c := 0; c < noc.NumClasses; c++ {
		e.I64(s.LatencySum[c])
		e.I64(s.Count[c])
	}
	e.I64(s.FlitHops)
	e.F64(s.FlitLinkMM)
	e.I64(s.PacketHops)
	e.I64(s.InjectFlits)
}

// LoadState is the inverse of SaveState. The fabric must be freshly built
// over the donor's floorplan; no wakes are raised (the engine re-arms the
// fabric wholesale on restore).
func (id *Ideal) LoadState(d *ckpt.Dec, get noc.PayloadDec) {
	id.due.Clear()
	clear(id.buckets)
	n := d.Count()
	prev := sim.Cycle(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += sim.Cycle(d.I64())
		cnt := d.Count()
		if d.Err() != nil {
			return
		}
		if _, dup := id.buckets[prev]; dup {
			d.Corrupt("duplicate delivery bucket at cycle %d", prev)
			return
		}
		b := &delivBucket{at: prev, pkts: make([]*noc.Packet, 0, cnt)}
		for j := 0; j < cnt && d.Err() == nil; j++ {
			p := noc.DecodePacket(d, len(id.deliver), get)
			if p == nil {
				return
			}
			b.pkts = append(b.pkts, p)
		}
		id.buckets[prev] = b
		id.due.Push(b)
	}

	s := &id.stats
	s.Injected = d.I64()
	s.Delivered = d.I64()
	for c := 0; c < noc.NumClasses; c++ {
		s.LatencySum[c] = d.I64()
		s.Count[c] = d.I64()
	}
	s.FlitHops = d.I64()
	s.FlitLinkMM = d.F64()
	s.PacketHops = d.I64()
	s.InjectFlits = d.I64()
}
