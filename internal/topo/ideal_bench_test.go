package topo

import (
	"testing"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

// idealCalendarHarness drives the ideal fabric's delivery calendar the
// way a running chip does — a rolling population of in-flight packets
// across staggered delivery cycles — while recycling delivered packets,
// so any remaining allocation belongs to the calendar itself.
type idealCalendarHarness struct {
	id   *Ideal
	pool []*noc.Packet
	now  sim.Cycle
}

func newIdealCalendarHarness() *idealCalendarHarness {
	h := &idealCalendarHarness{}
	h.id = NewIdealWithDelay(8, func(src, dst noc.NodeID) sim.Cycle {
		return 3 + sim.Cycle(dst%5) // staggered delays: several live buckets
	})
	for n := 0; n < 8; n++ {
		h.id.SetDeliver(noc.NodeID(n), func(now sim.Cycle, p *noc.Packet) {
			h.pool = append(h.pool, p)
		})
	}
	for i := 0; i < 64; i++ {
		h.pool = append(h.pool, &noc.Packet{})
	}
	return h
}

// cycle advances one cycle: inject four packets, deliver the due ones.
func (h *idealCalendarHarness) cycle() {
	h.now++
	for k := 0; k < 4; k++ {
		n := len(h.pool) - 1
		p := h.pool[n]
		h.pool[n] = nil
		h.pool = h.pool[:n]
		*p = noc.Packet{Src: noc.NodeID(k % 8), Dst: noc.NodeID((k + 3) % 8), Size: 1 + k%3}
		h.id.Send(h.now, p)
	}
	h.id.Tick(h.now)
}

// BenchmarkIdealCalendar measures the delivery calendar's steady state:
// pointer-receiver heap buckets off a free list must make schedule/drain
// allocation-free (the former map[Cycle][]*Packet calendar allocated a
// map cell and a slice per scheduled cycle).
func BenchmarkIdealCalendar(b *testing.B) {
	h := newIdealCalendarHarness()
	for i := 0; i < 1024; i++ {
		h.cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.cycle()
	}
}

// TestIdealCalendarZeroAlloc enforces the benchmark's headline number.
func TestIdealCalendarZeroAlloc(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	h := newIdealCalendarHarness()
	for i := 0; i < 1024; i++ {
		h.cycle()
	}
	if avg := testing.AllocsPerRun(200, func() { h.cycle() }); avg != 0 {
		t.Fatalf("ideal calendar steady state allocates %.1f allocs/cycle, want 0", avg)
	}
}
