package topo

import (
	"testing"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

func TestTorusWrapHalvesDiameter(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	tor := NewTorus(DefaultTorusParams(plan))
	// Corner to corner is one wrap hop per dimension: 2 intermediate
	// routers plus the destination's.
	p := sendAndWait(t, tor, 0, 63, 1)
	if p.Hops() != 3 {
		t.Fatalf("0->63 router traversals = %d, want 3 (wrap links)", p.Hops())
	}
	// Mid-ring destinations still take the mesh path.
	q := sendAndWait(t, tor, 0, int03, 1)
	if q.Hops() != 7 {
		t.Fatalf("0->(3,3) router traversals = %d, want 7", q.Hops())
	}
}

// int03 is tile (3, 3) on the 8x8 plan.
const int03 = noc.NodeID(3*8 + 3)

func TestTorusDeliversAllPairs(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	tor := NewTorus(DefaultTorusParams(plan))
	e := sim.NewEngine()
	e.Register(tor)
	delivered := 0
	for i := 0; i < 16; i++ {
		tor.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			tor.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: noc.ClassResp,
				Src: noc.NodeID(s), Dst: noc.NodeID(d), Size: 5})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 100000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}

// TestTorusSaturationNoDeadlock slams the torus far past saturation with
// maximum-size packets — the load that fills ring buffers and would
// deadlock wrap-around wormhole rings without bubble flow control — and
// requires sustained forward progress.
func TestTorusSaturationNoDeadlock(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	tor := NewTorus(DefaultTorusParams(plan))
	nodes := make([]noc.NodeID, 64)
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	// 8 packets/cycle of 5-flit traffic network-wide (40 flits/cy against
	// 64 one-flit/cycle injection ports) is deep saturation.
	lp := noc.MeasureLoad(tor, nodes, noc.UniformPattern(nodes, 5), 8.0, 2000, 20000, 7)
	if !lp.Saturated {
		t.Fatalf("offered 8 pkt/cy should saturate: %+v", lp)
	}
	// Deadlock shows up as accepted throughput collapsing toward zero;
	// bubble flow control must keep the rings draining.
	if lp.AcceptedPktPerCycle < 0.5 {
		t.Fatalf("saturated torus wedged: accepted %.3f pkt/cy", lp.AcceptedPktPerCycle)
	}
}

func TestTorusAuxEndpoints(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	p := DefaultTorusParams(plan)
	p.AuxTiles = MCTiles(plan, 2)
	tor := NewTorus(p)
	if got := sendAndWait(t, tor, 3, 16, 1); got.Dst != 16 {
		t.Fatalf("aux delivery went to %d", got.Dst)
	}
	if got := sendAndWait(t, tor, 17, 5, 5); got.Dst != 5 {
		t.Fatalf("aux->tile delivery went to %d", got.Dst)
	}
}

func TestCMeshConcentratesRouting(t *testing.T) {
	plan := TiledFloorplan(64, 8)
	cm := NewCMesh(DefaultCMeshParams(plan))
	if len(cm.Routers) != 16 {
		t.Fatalf("cmesh routers = %d, want 16 (4:1 concentration)", len(cm.Routers))
	}
	// Tiles sharing a router communicate through it alone.
	p := sendAndWait(t, cm, 0, 1, 1)
	if p.Hops() != 1 {
		t.Fatalf("same-block hops = %d, want 1", p.Hops())
	}
	// Corner to corner crosses the 4x4 router grid: 6 network hops plus
	// the destination router.
	q := sendAndWait(t, cm, 0, 63, 1)
	if q.Hops() != 7 {
		t.Fatalf("corner-to-corner hops = %d, want 7", q.Hops())
	}
}

func TestCMeshDeliversAllPairsWithAux(t *testing.T) {
	plan := TiledFloorplan(16, 8)
	p := DefaultCMeshParams(plan)
	p.AuxTiles = MCTiles(plan, 4)
	cm := NewCMesh(p)
	e := sim.NewEngine()
	e.Register(cm)
	delivered := 0
	for i := 0; i < 16+4; i++ {
		cm.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s == d {
				continue
			}
			cm.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: noc.ClassReq,
				Src: noc.NodeID(s), Dst: noc.NodeID(d), Size: 1})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 100000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}
