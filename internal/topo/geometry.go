// Package topo builds the conventional interconnect organizations the paper
// evaluates against: the tiled mesh (Figure 2), the richly connected
// flattened butterfly (Figure 3), and the idealized wire-delay-only fabric
// used in Figure 1. It also owns the chip floorplan geometry that converts
// tile positions into wire lengths and cycles.
package topo

import (
	"fmt"
	"math"

	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/tech"
)

// Floorplan describes a rectangular grid of tiles and their physical size.
type Floorplan struct {
	Cols, Rows   int
	TileW, TileH float64 // mm
}

// GridFor returns a near-square cols×rows arrangement for n tiles.
// n must be a power of two (the paper's configurations are).
func GridFor(n int) (cols, rows int) {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("topo: tile count %d is not a positive power of two", n))
	}
	cols, rows = 1, 1
	for cols*rows < n {
		if cols <= rows {
			cols *= 2
		} else {
			rows *= 2
		}
	}
	return cols, rows
}

// TiledFloorplan builds the floorplan of a conventional tiled CMP with
// nTiles tiles, each holding a core, an LLC slice of llcMB/nTiles, and a
// router (Figure 2b). Tiles are square-ish: the tile area comes from the
// §5.2 component areas.
func TiledFloorplan(nTiles int, llcMB float64) Floorplan {
	cols, rows := GridFor(nTiles)
	tileArea := tech.CoreMM2 + llcMB/float64(nTiles)*tech.CacheMM2PerMB
	side := math.Sqrt(tileArea)
	return Floorplan{Cols: cols, Rows: rows, TileW: side, TileH: side}
}

// NumTiles returns Cols*Rows.
func (f Floorplan) NumTiles() int { return f.Cols * f.Rows }

// Coord returns the (x, y) grid position of node n (row-major numbering).
func (f Floorplan) Coord(n noc.NodeID) (x, y int) {
	i := int(n)
	if i < 0 || i >= f.NumTiles() {
		panic(fmt.Sprintf("topo: node %d outside %dx%d grid", n, f.Cols, f.Rows))
	}
	return i % f.Cols, i / f.Cols
}

// Node returns the NodeID at grid position (x, y).
func (f Floorplan) Node(x, y int) noc.NodeID { return noc.NodeID(y*f.Cols + x) }

// DistMM returns the Manhattan center-to-center distance between two tiles.
func (f Floorplan) DistMM(a, b noc.NodeID) float64 {
	ax, ay := f.Coord(a)
	bx, by := f.Coord(b)
	return math.Abs(float64(ax-bx))*f.TileW + math.Abs(float64(ay-by))*f.TileH
}

// HopsMesh returns the Manhattan hop distance between two tiles.
func (f Floorplan) HopsMesh(a, b noc.NodeID) int {
	ax, ay := f.Coord(a)
	bx, by := f.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// MCTiles picks the memory-channel attach points on a tiled floorplan:
// mid-height tiles on the left and right die edges, one per channel. Every
// tiled organization uses this placement so their off-die distances match.
func MCTiles(f Floorplan, channels int) []noc.NodeID {
	nodes := make([]noc.NodeID, channels)
	ys := []int{f.Rows / 2, f.Rows/2 - 1}
	if ys[1] < 0 {
		ys[1] = 0
	}
	xs := []int{0, f.Cols - 1}
	for ch := range nodes {
		nodes[ch] = f.Node(xs[ch%2], ys[(ch/2)%2])
	}
	return nodes
}

// WireCyclesBetween returns the latched wire delay between two tile
// centers at the technology's 125 ps/mm.
func (f Floorplan) WireCyclesBetween(a, b noc.NodeID) sim.Cycle {
	if a == b {
		return 1
	}
	return sim.Cycle(tech.WireCycles(f.DistMM(a, b)))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
