package cache

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 || LineAddr(6400) != 100 {
		t.Fatal("LineAddr arithmetic wrong")
	}
}

func TestArrayShape(t *testing.T) {
	a := NewArray(32*1024, 2) // 32KB, 2-way: 512 lines, 256 sets
	if a.Lines() != 512 || a.Sets() != 256 || a.Ways() != 2 {
		t.Fatalf("shape: %d lines, %d sets, %d ways", a.Lines(), a.Sets(), a.Ways())
	}
}

func TestArrayHitMiss(t *testing.T) {
	a := NewArray(4096, 4) // 64 lines, 16 sets
	if _, hit := a.Lookup(5); hit {
		t.Fatal("empty array must miss")
	}
	a.Insert(5)
	if _, hit := a.Lookup(5); !hit {
		t.Fatal("inserted line must hit")
	}
	if !a.Contains(5) {
		t.Fatal("Contains must see the line")
	}
	if a.Contains(5 + 16) {
		t.Fatal("different tag in same set must miss")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(2*LineBytes*2, 2) // 4 lines, 2 sets, 2 ways
	// Lines 0, 2, 4 all map to set 0.
	a.Insert(0)
	a.Insert(2)
	a.Lookup(0) // touch 0 so 2 becomes LRU
	slot, victim, evicted := a.Insert(4)
	if !evicted || victim != 2 {
		t.Fatalf("evicted=%v victim=%d, want LRU line 2", evicted, victim)
	}
	if a.SlotLine(slot) != 4 {
		t.Fatal("slot should now hold line 4")
	}
	if a.Contains(2) || !a.Contains(0) || !a.Contains(4) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestArrayVictimOfMatchesInsert(t *testing.T) {
	a := NewArray(8*LineBytes, 2) // 8 lines, 4 sets
	for i := uint64(0); i < 8; i++ {
		a.Insert(i)
	}
	// Set 1 holds lines 1 and 5; line 1 is older.
	_, victim, had := a.VictimOf(9)
	if !had || victim != 1 {
		t.Fatalf("VictimOf = %d,%v want 1,true", victim, had)
	}
	_, gotVictim, _ := a.Insert(9)
	if gotVictim != victim {
		t.Fatal("VictimOf must predict Insert's choice")
	}
}

func TestArrayInvalidate(t *testing.T) {
	a := NewArray(4096, 4)
	a.Insert(7)
	if !a.Invalidate(7) {
		t.Fatal("Invalidate should report presence")
	}
	if a.Invalidate(7) {
		t.Fatal("double Invalidate should report absence")
	}
	// The freed way is reused without eviction.
	_, _, evicted := a.Insert(7)
	if evicted {
		t.Fatal("insert into invalidated way must not evict")
	}
}

func TestArrayDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := NewArray(4096, 4)
	a.Insert(1)
	a.Insert(1)
}

func TestArrayPropertyNoFalseHits(t *testing.T) {
	a := NewArray(64*LineBytes, 4)
	inserted := map[uint64]bool{}
	evictedSet := map[uint64]bool{}
	err := quick.Check(func(raw uint16) bool {
		line := uint64(raw % 256)
		if a.Contains(line) != (inserted[line] && !evictedSet[line]) {
			return false
		}
		if !a.Contains(line) {
			_, victim, ev := a.Insert(line)
			inserted[line] = true
			delete(evictedSet, line)
			if ev {
				evictedSet[victim] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArrayWorkingSetFitsNoEvictions(t *testing.T) {
	// A working set equal to capacity with perfect distribution never
	// evicts after warm-up when re-touched in LRU-friendly order.
	a := NewArray(16*LineBytes, 2)
	for i := uint64(0); i < 16; i++ {
		if _, _, ev := a.Insert(i); ev {
			t.Fatal("cold fill of exact capacity must not evict")
		}
	}
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 16; i++ {
			if _, hit := a.Lookup(i); !hit {
				t.Fatal("resident working set must keep hitting")
			}
		}
	}
}

func TestMSHRFileBasics(t *testing.T) {
	f := NewMSHRFile(2)
	if f.Full() || f.Len() != 0 || f.Cap() != 2 {
		t.Fatal("fresh file state wrong")
	}
	m := f.Alloc(10, false, true)
	if m.Line != 10 || m.IsWrite || !m.Instr {
		t.Fatalf("MSHR contents: %+v", m)
	}
	if got, ok := f.Get(10); !ok || got != m {
		t.Fatal("Get must return the allocated MSHR")
	}
	f.Alloc(11, true, false)
	if !f.Full() {
		t.Fatal("file should be full at capacity")
	}
	f.Free(10)
	if f.Full() || f.Len() != 1 {
		t.Fatal("Free must release capacity")
	}
}

func TestMSHRDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewMSHRFile(4)
	f.Alloc(1, false, false)
	f.Alloc(1, false, false)
}

func TestMSHRFreeAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMSHRFile(4).Free(3)
}

func TestMSHROverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewMSHRFile(1)
	f.Alloc(1, false, false)
	f.Alloc(2, false, false)
}
