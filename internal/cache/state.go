package cache

import (
	"sort"

	"nocout/internal/ckpt"
)

// Checkpoint serialization of the storage arrays. Geometry (sets, ways,
// hashing) is structural — the restoring chip rebuilds it from config —
// so only the occupancy is serialized: tags, valid bits, LRU stamps, and
// the LRU clock. Tag and age arrays are delta-encoded (Enc.U64s): tags
// within a set share high bits and age stamps are globally clustered, so
// warm arrays serialize at a few bytes per line.

// SaveState implements ckpt.Saver.
func (a *Array) SaveState(e *ckpt.Enc) {
	e.U64s(a.tags)
	e.Bools(a.valid)
	e.U64s(a.age)
	e.U64(a.clock)
}

// LoadState implements ckpt.Loader. The array must have been built with
// the donor's geometry; a mismatched line count is corruption.
func (a *Array) LoadState(d *ckpt.Dec) {
	tags := d.U64s()
	valid := d.Bools()
	age := d.U64s()
	clock := d.U64()
	if d.Err() != nil {
		return
	}
	if len(tags) != len(a.tags) || len(valid) != len(a.valid) || len(age) != len(a.age) {
		d.Corrupt("cache array geometry mismatch: stored %d/%d/%d lines, built %d", len(tags), len(valid), len(age), len(a.tags))
		return
	}
	copy(a.tags, tags)
	copy(a.valid, valid)
	copy(a.age, age)
	a.clock = clock
}

// SaveState implements ckpt.Saver: outstanding misses in ascending line
// order, so the encoding is independent of map iteration order.
func (f *MSHRFile) SaveState(e *ckpt.Enc) {
	lines := make([]uint64, 0, len(f.m))
	for line := range f.m {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.U64(uint64(len(lines)))
	for _, line := range lines {
		m := f.m[line]
		e.U64(line)
		e.Bool(m.IsWrite)
		e.Bool(m.Instr)
		e.Bool(m.Issued)
		e.Bool(m.Squashed)
		e.Int(m.Waiters)
	}
}

// LoadState implements ckpt.Loader. Capacity is structural; a stored
// occupancy beyond it is corruption.
func (f *MSHRFile) LoadState(d *ckpt.Dec) {
	n := d.Count()
	if d.Err() != nil {
		return
	}
	if n > f.cap {
		d.Corrupt("MSHR occupancy %d exceeds capacity %d", n, f.cap)
		return
	}
	clear(f.m)
	for i := 0; i < n && d.Err() == nil; i++ {
		m := &MSHR{
			Line:     d.U64(),
			IsWrite:  d.Bool(),
			Instr:    d.Bool(),
			Issued:   d.Bool(),
			Squashed: d.Bool(),
		}
		m.Waiters = d.Int()
		if _, dup := f.m[m.Line]; dup {
			d.Corrupt("duplicate MSHR line %#x", m.Line)
			return
		}
		f.m[m.Line] = m
	}
}
