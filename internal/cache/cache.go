// Package cache provides the storage-array substrate of the memory
// hierarchy: set-associative tag arrays with LRU replacement (used for
// L1-I, L1-D, and LLC banks) and miss-status holding registers.
//
// The simulator is timing-only: arrays track tags and metadata indices, not
// data values.
package cache

import "fmt"

// LineBytes is the cache line size across the whole hierarchy (Table 1).
const LineBytes = 64

// LineAddr converts a byte address to a line address.
func LineAddr(byteAddr uint64) uint64 { return byteAddr / LineBytes }

// Array is a set-associative tag array with true-LRU replacement.
type Array struct {
	sets, ways int
	hashed     bool
	tags       []uint64 // [set*ways+way]
	valid      []bool
	age        []uint64 // LRU timestamps
	clock      uint64
}

// NewArray builds an array for capacityBytes of storage with the given
// associativity; capacity must divide evenly into sets.
func NewArray(capacityBytes, ways int) *Array {
	lines := capacityBytes / LineBytes
	if lines < ways || lines%ways != 0 {
		panic(fmt.Sprintf("cache: capacity %dB with %d ways is not realizable", capacityBytes, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", sets))
	}
	return &Array{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
		age:   make([]uint64, sets*ways),
	}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// Lines returns the total line capacity.
func (a *Array) Lines() int { return a.sets * a.ways }

// SetHash enables XOR-folded set indexing. Real LLCs hash their index so
// that power-of-two address strides (per-core regions, page-aligned
// structures) do not collapse onto a few sets; L1s typically do not.
func (a *Array) SetHash(on bool) {
	for _, v := range a.valid {
		if v {
			panic("cache: SetHash must be configured before use")
		}
	}
	a.hashed = on
}

// set returns the set index for a line address.
func (a *Array) set(line uint64) int {
	if a.hashed {
		line = line ^ line>>10 ^ line>>17 ^ line>>25 ^ line>>33
	}
	return int(line % uint64(a.sets))
}

// Lookup returns the slot index of line and whether it hit, updating LRU on
// a hit.
func (a *Array) Lookup(line uint64) (slot int, hit bool) {
	s := a.set(line)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		i := base + w
		if a.valid[i] && a.tags[i] == line {
			a.clock++
			a.age[i] = a.clock
			return i, true
		}
	}
	return -1, false
}

// Probe is Lookup without the LRU update.
func (a *Array) Probe(line uint64) (slot int, hit bool) {
	s := a.set(line)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		i := base + w
		if a.valid[i] && a.tags[i] == line {
			return i, true
		}
	}
	return -1, false
}

// Insert places line into its set, evicting the LRU victim if the set is
// full. It returns the slot used, the victim's line address, and whether a
// valid victim was evicted. Insert panics if the line is already present
// (callers must Lookup first).
func (a *Array) Insert(line uint64) (slot int, victim uint64, evicted bool) {
	if _, hit := a.Probe(line); hit {
		panic(fmt.Sprintf("cache: inserting already-present line %#x", line))
	}
	s := a.set(line)
	base := s * a.ways
	victimSlot := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < a.ways; w++ {
		i := base + w
		if !a.valid[i] {
			victimSlot = i
			evicted = false
			break
		}
		if a.age[i] < oldest {
			oldest = a.age[i]
			victimSlot = i
			victim = a.tags[i]
			evicted = true
		}
	}
	a.clock++
	a.tags[victimSlot] = line
	a.valid[victimSlot] = true
	a.age[victimSlot] = a.clock
	return victimSlot, victim, evicted
}

// VictimOf returns the slot and line address that Insert would evict for
// line, without modifying the array. hadVictim is false if a free way
// exists.
func (a *Array) VictimOf(line uint64) (slot int, victim uint64, hadVictim bool) {
	s := a.set(line)
	base := s * a.ways
	var oldest uint64 = ^uint64(0)
	victimSlot := -1
	for w := 0; w < a.ways; w++ {
		i := base + w
		if !a.valid[i] {
			return i, 0, false
		}
		if a.age[i] < oldest {
			oldest = a.age[i]
			victimSlot = i
		}
	}
	return victimSlot, a.tags[victimSlot], true
}

// Invalidate removes line if present and reports whether it was present.
func (a *Array) Invalidate(line uint64) bool {
	if i, hit := a.Probe(line); hit {
		a.valid[i] = false
		return true
	}
	return false
}

// Contains reports presence without LRU side effects.
func (a *Array) Contains(line uint64) bool {
	_, hit := a.Probe(line)
	return hit
}

// SlotLine returns the line stored at slot (valid slots only).
func (a *Array) SlotLine(slot int) uint64 { return a.tags[slot] }

// MSHR tracks one outstanding miss.
type MSHR struct {
	Line    uint64
	IsWrite bool
	Instr   bool
	Issued  bool
	// Squashed marks a fill that must not install: an invalidation for the
	// line overtook the response in flight.
	Squashed bool
	// Waiters counts merged requests (same line missed again while
	// outstanding).
	Waiters int
}

// MSHRFile is a bounded set of outstanding misses; its capacity is the
// hardware's memory-level-parallelism limit.
type MSHRFile struct {
	cap int
	m   map[uint64]*MSHR
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity < 1 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHRFile{cap: capacity, m: make(map[uint64]*MSHR, capacity)}
}

// Full reports whether a new allocation would exceed capacity.
func (f *MSHRFile) Full() bool { return len(f.m) >= f.cap }

// Len returns the number of outstanding misses.
func (f *MSHRFile) Len() int { return len(f.m) }

// Cap returns the capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Get returns the MSHR for line, if any.
func (f *MSHRFile) Get(line uint64) (*MSHR, bool) {
	m, ok := f.m[line]
	return m, ok
}

// Alloc registers a new outstanding miss; it panics if the line already has
// an MSHR or the file is full (callers must check).
func (f *MSHRFile) Alloc(line uint64, isWrite, instr bool) *MSHR {
	if _, ok := f.m[line]; ok {
		panic(fmt.Sprintf("cache: duplicate MSHR for line %#x", line))
	}
	if f.Full() {
		panic("cache: MSHR file overflow")
	}
	m := &MSHR{Line: line, IsWrite: isWrite, Instr: instr}
	f.m[line] = m
	return m
}

// Free releases the MSHR for line.
func (f *MSHRFile) Free(line uint64) {
	if _, ok := f.m[line]; !ok {
		panic(fmt.Sprintf("cache: freeing absent MSHR %#x", line))
	}
	delete(f.m, line)
}
