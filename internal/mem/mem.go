// Package mem models the off-die memory system: four DDR3-1667 channels
// (Table 1) reached through dedicated ports on edge routers. Each channel
// has a fixed device access latency plus a bandwidth-limited service queue,
// which is all the on-chip study needs from DRAM: a long, mostly constant
// latency and a line-rate ceiling.
package mem

import (
	"fmt"

	"nocout/internal/coherence"
	"nocout/internal/noc"
	"nocout/internal/sim"
)

// Config describes one memory channel's timing. It is plumbed through
// chip.Config (JSON key "mem") and the -mem-lat/-mem-bw CLI flags; zero
// fields take the DDR3-1667 defaults via WithDefaults.
type Config struct {
	// AccessLat is the device latency from service start to data (cycles).
	// ~45 ns at 2 GHz for DDR3-1667.
	AccessLat sim.Cycle `json:"access_lat,omitempty"`
	// LinePeriod is the minimum spacing between line transfers on the
	// channel (cycles): 64B at 12.8 GB/s and 2 GHz is 10 cycles.
	LinePeriod sim.Cycle `json:"line_period,omitempty"`
	LinkBits   int       `json:"link_bits,omitempty"`
}

// DefaultConfig returns DDR3-1667 timing at the 2 GHz core clock.
func DefaultConfig() Config {
	return Config{AccessLat: 90, LinePeriod: 10, LinkBits: 128}
}

// WithDefaults returns the config with every zero field replaced by its
// DefaultConfig value, so partially specified configs (JSON files, CLI
// flags, hand-built structs) stay valid.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.AccessLat == 0 {
		c.AccessLat = d.AccessLat
	}
	if c.LinePeriod == 0 {
		c.LinePeriod = d.LinePeriod
	}
	if c.LinkBits == 0 {
		c.LinkBits = d.LinkBits
	}
	return c
}

// Stats counts channel activity.
type Stats struct {
	Reads, Writes int64
	BusyCycles    int64 // cycles of occupied line slots (utilization)
	QueueSum      int64 // queue length integral for mean queue depth
	Samples       int64
}

// Utilization returns the fraction of sampled cycles the channel was busy.
func (s *Stats) Utilization() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Samples)
}

// Controller is one memory channel. It receives MemRead/MemWrite messages
// and answers reads with MemData after queueing + device latency.
type Controller struct {
	Channel int
	Node    noc.NodeID

	cfg      Config
	net      noc.Network
	pool     *noc.PacketPool
	idBase   uint64
	pktSeq   uint64
	bankNode func(bank int) noc.NodeID

	inbox    sim.Queue[coherence.Msg]
	q        sim.Queue[coherence.Msg]
	nextFree sim.Cycle
	inFlight *sim.Pipe[coherence.Msg]
	lastSeen sim.Cycle // last cycle sampled (tick or lazy catch-up)

	Stats Stats
}

// NewController builds a channel controller attached at node; bankNode maps
// a requesting LLC bank id to its network node for replies. pool recycles
// this node's delivered packets into the controller's sends; nil gives it a
// private pool.
func NewController(channel int, node noc.NodeID, net noc.Network, cfg Config, pool *noc.PacketPool,
	bankNode func(bank int) noc.NodeID) *Controller {
	if cfg.AccessLat < 1 || cfg.LinePeriod < 1 {
		panic("mem: invalid channel timing")
	}
	if pool == nil {
		pool = &noc.PacketPool{}
	}
	return &Controller{
		Channel:  channel,
		Node:     node,
		cfg:      cfg,
		net:      net,
		pool:     pool,
		idBase:   noc.PacketIDBase(noc.PktTagMC, channel),
		bankNode: bankNode,
		inFlight: sim.NewPipe[coherence.Msg](fmt.Sprintf("mc%d", channel), cfg.AccessLat),
	}
}

// Deliver is the network delivery callback.
func (c *Controller) Deliver(m coherence.Msg) { c.inbox.Push(m) }

// PendingWork reports whether the channel still has queued or in-flight
// requests.
func (c *Controller) PendingWork() bool {
	return c.inbox.Len() > 0 || c.q.Len() > 0 || c.inFlight.Len() > 0
}

// BindWaker implements sim.WakeBinder: the delivery inbox, the service
// queue and the in-flight device pipeline are the channel's wake sources.
func (c *Controller) BindWaker(w sim.Waker) {
	c.inbox.SetWaker(w)
	c.q.SetWaker(w)
	c.inFlight.SetWaker(w)
}

// NextWake implements sim.Sleeper: new arrivals need a cycle immediately;
// a backlogged queue needs one when the channel frees; in-flight reads need
// one when the device latency elapses. An empty channel waits on the inbox
// (residual busy-window sampling is settled lazily by Flush/syncTo).
func (c *Controller) NextWake(now sim.Cycle) sim.Cycle {
	if c.inbox.Len() > 0 {
		return now + 1
	}
	next := sim.NeverWake
	if c.q.Len() > 0 {
		next = c.nextFree
		if next <= now {
			next = now + 1
		}
	}
	if at, ok := c.inFlight.NextAt(); ok && at < next {
		next = at
	}
	return next
}

// syncTo replays the utilization sampling for the idle cycles in
// (c.lastSeen, upto] the scheduled kernel never ticked. During those
// cycles the queues were provably unchanged (any push would have woken
// the channel), so the per-cycle samples are a closed form.
func (c *Controller) syncTo(upto sim.Cycle) {
	if upto <= c.lastSeen {
		return
	}
	k := int64(upto - c.lastSeen)
	busyUpto := c.nextFree - 1
	if busyUpto > upto {
		busyUpto = upto
	}
	if busy := int64(busyUpto - c.lastSeen); busy > 0 {
		c.Stats.BusyCycles += busy
	}
	c.Stats.QueueSum += int64(c.q.Len()) * k
	c.Stats.Samples += k
	c.lastSeen = upto
}

// Flush implements sim.Flusher: settles the lazily-sampled utilization
// counters at cycle now.
func (c *Controller) Flush(now sim.Cycle) { c.syncTo(now) }

// Tick advances the channel one cycle.
func (c *Controller) Tick(now sim.Cycle) {
	c.syncTo(now - 1)
	c.lastSeen = now
	for {
		m, ok := c.inbox.Pop()
		if !ok {
			break
		}
		switch m.Type {
		case coherence.MemRead:
			c.Stats.Reads++
			c.q.Push(m)
		case coherence.MemWrite:
			// Writes consume channel bandwidth but need no reply.
			c.Stats.Writes++
			c.q.Push(m)
		default:
			panic(fmt.Sprintf("mem: channel %d received unexpected %v", c.Channel, m.Type))
		}
	}
	// Start at most one line transfer per LinePeriod.
	if now >= c.nextFree {
		if m, ok := c.q.Pop(); ok {
			c.nextFree = now + c.cfg.LinePeriod
			if m.Type == coherence.MemRead {
				c.inFlight.Push(now, m)
			}
		}
	}
	if now < c.nextFree {
		c.Stats.BusyCycles++
	}
	c.Stats.QueueSum += int64(c.q.Len())
	c.Stats.Samples++
	// Complete reads whose device latency elapsed.
	for {
		m, ok := c.inFlight.Pop(now)
		if !ok {
			break
		}
		c.pktSeq++
		reply := coherence.Msg{
			Type: coherence.MemData, Addr: m.Addr,
			Dst: coherence.AgentDir, DstID: m.SrcID, SrcID: c.Channel,
		}
		p := c.pool.Get()
		cell, _ := p.Payload.(*coherence.Msg)
		if cell == nil {
			cell = new(coherence.Msg)
			p.Payload = cell
		}
		*cell = reply
		p.ID = c.idBase | c.pktSeq
		p.Class = reply.Type.Class()
		p.Src = c.Node
		p.Dst = c.bankNode(m.SrcID)
		p.Size = noc.FlitsFor(reply.PacketBytes(), c.cfg.LinkBits)
		c.net.Send(now, p)
	}
}
