package mem

import (
	"nocout/internal/ckpt"
	"nocout/internal/coherence"
	"nocout/internal/sim"
)

// Checkpoint serialization of a memory channel. Timing config and wiring
// are structural; the state is the arrival inbox, the service queue, the
// channel-free horizon, in-flight device accesses, and the packet
// sequence counter. Stats are excluded — callers Flush before saving so
// the lazily-sampled utilization counters are settled and lastSeen
// equals the snapshot cycle.

// SaveState implements ckpt.Saver.
func (c *Controller) SaveState(e *ckpt.Enc) {
	c.inbox.SaveState(e, coherence.EncodeMsg)
	c.q.SaveState(e, coherence.EncodeMsg)
	e.I64(int64(c.nextFree))
	c.inFlight.SaveState(e, coherence.EncodeMsg)
	e.I64(int64(c.lastSeen))
	e.U64(c.pktSeq)
}

// LoadState implements ckpt.Loader.
func (c *Controller) LoadState(d *ckpt.Dec) {
	c.inbox.LoadState(d, coherence.DecodeMsg)
	c.q.LoadState(d, coherence.DecodeMsg)
	c.nextFree = sim.Cycle(d.I64())
	c.inFlight.LoadState(d, coherence.DecodeMsg)
	c.lastSeen = sim.Cycle(d.I64())
	c.pktSeq = d.U64()
}
