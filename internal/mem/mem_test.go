package mem

import (
	"encoding/json"
	"testing"

	"nocout/internal/coherence"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
)

// harness wires one controller to an ideal 2-node network: node 0 is the
// "bank", node 1 the channel.
type harness struct {
	e   *sim.Engine
	mc  *Controller
	net noc.Network
	got []coherence.Msg
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{e: sim.NewEngine()}
	h.net = topo.NewIdealWithDelay(2, func(a, b noc.NodeID) sim.Cycle { return 2 })
	h.mc = NewController(0, 1, h.net, cfg, nil, func(bank int) noc.NodeID { return 0 })
	h.net.SetDeliver(0, func(now sim.Cycle, p *noc.Packet) {
		h.got = append(h.got, (*p.Payload.(*coherence.Msg)))
	})
	h.net.SetDeliver(1, func(now sim.Cycle, p *noc.Packet) {
		h.mc.Deliver((*p.Payload.(*coherence.Msg)))
	})
	h.e.Register(h.net, sim.TickFunc(h.mc.Tick))
	return h
}

func (h *harness) read(line uint64) {
	h.mc.Deliver(coherence.Msg{Type: coherence.MemRead, Addr: line, SrcID: 0})
}

func TestReadCompletesAfterDeviceLatency(t *testing.T) {
	cfg := Config{AccessLat: 50, LinePeriod: 10, LinkBits: 128}
	h := newHarness(t, cfg)
	h.read(7)
	start := h.e.Now()
	if !h.e.RunUntil(func() bool { return len(h.got) == 1 }, 500) {
		t.Fatal("read never completed")
	}
	elapsed := int64(h.e.Now() - start)
	if elapsed < int64(cfg.AccessLat) {
		t.Fatalf("read completed in %d cycles, device latency is %d", elapsed, cfg.AccessLat)
	}
	m := h.got[0]
	if m.Type != coherence.MemData || m.Addr != 7 || m.DstID != 0 {
		t.Fatalf("reply = %+v", m)
	}
}

func TestBandwidthSpacing(t *testing.T) {
	cfg := Config{AccessLat: 20, LinePeriod: 10, LinkBits: 128}
	h := newHarness(t, cfg)
	const n = 10
	for i := uint64(0); i < n; i++ {
		h.read(i)
	}
	start := h.e.Now()
	if !h.e.RunUntil(func() bool { return len(h.got) == n }, 1000) {
		t.Fatalf("only %d/%d completed", len(h.got), n)
	}
	elapsed := int64(h.e.Now() - start)
	min := int64(cfg.AccessLat) + (n-1)*int64(cfg.LinePeriod)
	if elapsed < min {
		t.Fatalf("%d reads in %d cycles beats the line-period floor %d", n, elapsed, min)
	}
	if h.mc.Stats.Reads != n {
		t.Fatalf("read count = %d", h.mc.Stats.Reads)
	}
}

func TestWritesConsumeBandwidthWithoutReply(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg)
	h.mc.Deliver(coherence.Msg{Type: coherence.MemWrite, Addr: 3, SrcID: 0})
	h.read(4)
	if !h.e.RunUntil(func() bool { return len(h.got) == 1 }, 1000) {
		t.Fatal("read blocked behind write never completed")
	}
	if h.mc.Stats.Writes != 1 {
		t.Fatalf("writes = %d", h.mc.Stats.Writes)
	}
	// The write occupied a line slot before the read: the read's total
	// time must include that slot.
	if got := h.got[0]; got.Type != coherence.MemData {
		t.Fatalf("unexpected %v", got.Type)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cfg := Config{AccessLat: 10, LinePeriod: 10, LinkBits: 128}
	h := newHarness(t, cfg)
	for i := uint64(0); i < 20; i++ {
		h.read(i)
	}
	h.e.RunUntil(func() bool { return len(h.got) == 20 }, 2000)
	u := h.mc.Stats.Utilization()
	if u <= 0.5 {
		t.Fatalf("saturated channel reports utilization %.2f", u)
	}
	// Idle afterwards: utilization decays.
	h.e.Step(1000)
	if h.mc.Stats.Utilization() >= u {
		t.Fatal("idle cycles must dilute utilization")
	}
}

func TestPendingWork(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if h.mc.PendingWork() {
		t.Fatal("fresh channel should be idle")
	}
	h.read(1)
	if !h.mc.PendingWork() {
		t.Fatal("queued read should count as pending")
	}
	h.e.RunUntil(func() bool { return len(h.got) == 1 }, 1000)
	if h.mc.PendingWork() {
		t.Fatal("drained channel should be idle")
	}
}

func TestUnexpectedMessagePanics(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.mc.Deliver(coherence.Msg{Type: coherence.GetS, Addr: 1})
	h.e.Step(1)
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController(0, 0, nil, Config{AccessLat: 0, LinePeriod: 0}, nil, nil)
}

func TestConfigWithDefaults(t *testing.T) {
	if got := (Config{}).WithDefaults(); got != DefaultConfig() {
		t.Fatalf("zero config should default fully: %+v", got)
	}
	partial := Config{AccessLat: 200}
	got := partial.WithDefaults()
	if got.AccessLat != 200 || got.LinePeriod != DefaultConfig().LinePeriod || got.LinkBits != DefaultConfig().LinkBits {
		t.Fatalf("partial config should keep set fields and default the rest: %+v", got)
	}
	full := Config{AccessLat: 1, LinePeriod: 2, LinkBits: 3}
	if full.WithDefaults() != full {
		t.Fatal("fully specified config must pass through unchanged")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	c := Config{AccessLat: 120, LinePeriod: 20, LinkBits: 64}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"access_lat":120,"line_period":20,"link_bits":64}`
	if string(b) != want {
		t.Fatalf("JSON = %s, want %s", b, want)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round-trip: %+v vs %+v", back, c)
	}
}
