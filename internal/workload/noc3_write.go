package workload

import (
	"bufio"
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"nocout/internal/cpu"
)

// The NOC3 writer: records a workload (or converts a decoded NOC2
// capture) into the sectioned container, streaming block by block so the
// writer's footprint is O(block) no matter how long the trace is, and
// hashing the canonical NOC2 encoding as it goes so the recording's
// behavioral fingerprint is identical in either format.

// noc3Writer streams one container to w. All buffers are reused across
// blocks and cores.
type noc3Writer struct {
	w        io.Writer
	off      int64 // bytes written so far (section offsets for the index)
	err      error
	blockLen int

	// Per-file accumulation for the index section.
	offsets   []uint64 // each block section's file offset (at its kind byte)
	sizes     []uint64 // each block section's total bytes (header + payload)
	rawBytes  uint64   // uncompressed residual bytes across all blocks
	predCount [2]uint64

	// NOC2 canonical hash, fed in lockstep with the blocks.
	fp hash.Hash

	// Scratch.
	enc     blockEnc
	payload []byte
	hdr     []byte
	comp    bytes.Buffer
	fw      *flate.Writer
}

func (w *noc3Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	w.err = err
}

// section emits one NOCK-style section and returns its file offset and
// total size.
func (w *noc3Writer) section(kind uint64, payload []byte) (off int64, size int) {
	off = w.off
	w.hdr = w.hdr[:0]
	w.hdr = binary.AppendUvarint(w.hdr, kind)
	w.hdr = binary.AppendUvarint(w.hdr, uint64(len(payload)))
	w.hdr = binary.LittleEndian.AppendUint32(w.hdr, crc32.ChecksumIEEE(payload))
	size = len(w.hdr) + len(payload)
	w.write(w.hdr)
	w.write(payload)
	return off, size
}

// begin writes the magic, version, and header section, and primes the
// NOC2 hash with the equivalent NOC2 header.
func (w *noc3Writer) begin(h captureHeader, cores []coreMeta) {
	w.write(noc3Magic[:])
	var v [binary.MaxVarintLen64]byte
	w.write(v[:binary.PutUvarint(v[:], noc3Version)])

	p := w.payload[:0]
	p = appendString(p, h.Source)
	p = binary.AppendUvarint(p, h.Seed)
	p = binary.AppendUvarint(p, uint64(h.ScaleLimit))
	p = appendRegion(p, h.Instr)
	p = appendRegion(p, h.Hot)
	p = binary.AppendUvarint(p, uint64(w.blockLen))
	p = binary.AppendUvarint(p, uint64(len(cores)))
	for _, m := range cores {
		p = appendString(p, m.Member)
		p = binary.AppendUvarint(p, uint64(m.Params.Width))
		p = binary.AppendUvarint(p, uint64(m.Params.ROB))
		p = binary.AppendUvarint(p, f64bits(m.Params.BaseCPI))
		p = binary.AppendUvarint(p, f64bits(m.Params.DepChance))
		p = appendRegion(p, m.Local)
		p = binary.AppendUvarint(p, uint64(m.Total))
	}
	w.payload = p
	w.section(noc3SecHeader, p)

	w.fp = sha256.New()
	n2 := &noc2Enc{w: w.fp}
	n2.header(h, len(cores))
}

// coreBlocks drains total instructions from next into blocks for one
// core, writing each as its own section and feeding the NOC2 hash. The
// iaddr scratch slices rotate between current and previous block.
func (w *noc3Writer) coreBlocks(core int, m coreMeta, next func() (cpu.Instr, error), buf []cpu.Instr, curIA, prevIA []uint64) error {
	if w.err != nil {
		return w.err
	}
	n2 := &noc2Enc{w: w.fp}
	n2.coreHeader(m)
	prevDelta := int64(0)
	havePrev := false
	for idx, done := 0, 0; done < m.Total; idx++ {
		count := min(w.blockLen, m.Total-done)
		block := buf[:count]
		for i := range block {
			in, err := next()
			if err != nil {
				return err
			}
			if in.Kind > cpu.KindStore {
				return fmt.Errorf("workload: core %d record %d has kind %d; only ALU/load/store streams are recordable", core, done+i, in.Kind)
			}
			block[i] = in
			curIA[i] = in.IAddr
			n2.instr(in, &prevDelta)
		}
		done += count

		var prev []uint64
		if havePrev {
			prev = prevIA[:w.blockLen]
		}
		pred, resid := w.enc.encode(idx, block, prev)
		w.predCount[pred]++
		w.rawBytes += uint64(len(resid))

		w.comp.Reset()
		if w.fw == nil {
			w.fw, _ = flate.NewWriter(&w.comp, flate.DefaultCompression)
		} else {
			w.fw.Reset(&w.comp)
		}
		if _, err := w.fw.Write(resid); err != nil {
			return err
		}
		if err := w.fw.Close(); err != nil {
			return err
		}

		p := w.payload[:0]
		p = binary.AppendUvarint(p, uint64(core))
		p = binary.AppendUvarint(p, uint64(idx))
		p = append(p, pred)
		p = binary.AppendUvarint(p, uint64(count))
		p = binary.AppendUvarint(p, uint64(len(resid)))
		p = append(p, w.comp.Bytes()...)
		w.payload = p
		off, size := w.section(noc3SecBlock, p)
		w.offsets = append(w.offsets, uint64(off))
		w.sizes = append(w.sizes, uint64(size))

		curIA, prevIA = prevIA, curIA
		havePrev = true
	}
	if n2.err != nil {
		return n2.err
	}
	return w.err
}

// finish writes the index section and trailer.
func (w *noc3Writer) finish() error {
	if w.err != nil {
		return w.err
	}
	p := w.payload[:0]
	p = w.fp.Sum(p)
	p = binary.AppendUvarint(p, uint64(len(w.offsets)))
	for i := range w.offsets {
		p = binary.AppendUvarint(p, w.offsets[i])
		p = binary.AppendUvarint(p, w.sizes[i])
	}
	p = binary.AppendUvarint(p, w.rawBytes)
	p = binary.AppendUvarint(p, w.predCount[predPrev])
	p = binary.AppendUvarint(p, w.predCount[predPhase])
	w.payload = p
	indexOff, _ := w.section(noc3SecIndex, p)

	var tr [noc3TrailerBytes]byte
	binary.LittleEndian.PutUint64(tr[:8], uint64(indexOff))
	copy(tr[8:], noc3TrailerMagic[:])
	w.write(tr[:])
	return w.err
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func appendRegion(p []byte, r Region) []byte {
	p = binary.AppendUvarint(p, r.Base)
	return binary.AppendUvarint(p, r.Size)
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// recordMeta validates w and assembles the header and per-core metadata
// exactly as Record does, so a streamed NOC3 recording and an in-memory
// NOC2 capture of the same (workload, cores, perCore, seed) agree on
// every header byte — and therefore on the fingerprint.
func recordMeta(w Workload, cores, perCore int, seed uint64) (captureHeader, []coreMeta, error) {
	if cores < 1 || cores > maxCaptureCores {
		return captureHeader{}, nil, fmt.Errorf("workload: Record needs 1..%d cores, got %d", maxCaptureCores, cores)
	}
	if perCore < 1 || perCore > maxTrace {
		return captureHeader{}, nil, fmt.Errorf("workload: Record needs 1..%d instructions per core, got %d", maxTrace, perCore)
	}
	if len(w.Name()) > maxCaptureName {
		return captureHeader{}, nil, fmt.Errorf("workload: name %.32q... exceeds the %d-byte capture cap", w.Name(), maxCaptureName)
	}
	lay := w.Layout()
	if lay.Instr.Size > maxCaptureRegion || lay.Hot.Size > maxCaptureRegion {
		return captureHeader{}, nil, fmt.Errorf("workload: shared region exceeds the %d-byte capture cap", maxCaptureRegion)
	}
	limit := w.MaxCores()
	if limit > cores {
		limit = cores
	}
	hdr := captureHeader{Source: w.Name(), Seed: seed, ScaleLimit: limit, Instr: lay.Instr, Hot: lay.Hot}
	metas := make([]coreMeta, cores)
	for i := range metas {
		member, _ := MemberNameOf(w, i)
		if len(member) > maxCaptureName {
			return captureHeader{}, nil, fmt.Errorf("workload: core %d member name %.32q... exceeds the %d-byte capture cap", i, member, maxCaptureName)
		}
		cp := w.CoreParams(i, seed)
		cp.Seed = 0
		local := lay.Local(i)
		if local.Size > maxCaptureRegion {
			return captureHeader{}, nil, fmt.Errorf("workload: core %d local region exceeds the %d-byte capture cap", i, maxCaptureRegion)
		}
		metas[i] = coreMeta{Member: member, Params: cp, Local: local, Total: perCore}
	}
	return hdr, metas, nil
}

// WriteNOC3 records cores×perCore instructions from w at the given seed
// straight into dst as a NOC3 container. Memory stays O(blockLen)
// regardless of perCore: each core's stream is drained block by block and
// every block is compressed and written before the next is read.
// blockLen <= 0 selects DefaultBlockLen.
func WriteNOC3(dst io.Writer, w Workload, cores, perCore int, seed uint64, blockLen int) error {
	hdr, metas, err := recordMeta(w, cores, perCore, seed)
	if err != nil {
		return err
	}
	if blockLen <= 0 {
		blockLen = DefaultBlockLen
	}
	if blockLen > maxBlockLen {
		return fmt.Errorf("workload: block length %d exceeds the %d cap", blockLen, maxBlockLen)
	}
	nw := &noc3Writer{w: dst, blockLen: blockLen}
	nw.begin(hdr, metas)
	buf := make([]cpu.Instr, blockLen)
	curIA := make([]uint64, blockLen)
	prevIA := make([]uint64, blockLen)
	for i, m := range metas {
		st := w.StreamFor(i, seed)
		next := func() (cpu.Instr, error) { return st.Next(), nil }
		if err := nw.coreBlocks(i, m, next, buf, curIA, prevIA); err != nil {
			return err
		}
	}
	return nw.finish()
}

// RecordFile records cores×perCore instructions from w at the given seed
// into a NOC3 trace file at path — the bounded-memory recording path the
// CLI's -record-trace uses. Replay it anywhere a workload name is
// accepted via "trace:<path>".
func RecordFile(path string, w Workload, cores, perCore int, seed uint64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := WriteNOC3(bw, w, cores, perCore, seed, 0); err != nil {
		return err
	}
	return bw.Flush()
}

// ConvertNOC3 re-encodes a decoded NOC2 capture as a NOC3 container. The
// converted trace replays bit-identically (same streams, same header
// identity) and fingerprints identically (the hash is computed over the
// capture's canonical NOC2 encoding either way).
func ConvertNOC3(dst io.Writer, c *Capture, blockLen int) error {
	// Reuse Write's refusal set: anything Write would reject is equally
	// unreadable as NOC3 input.
	if err := c.Write(io.Discard); err != nil {
		return err
	}
	if blockLen <= 0 {
		blockLen = DefaultBlockLen
	}
	if blockLen > maxBlockLen {
		return fmt.Errorf("workload: block length %d exceeds the %d cap", blockLen, maxBlockLen)
	}
	nw := &noc3Writer{w: dst, blockLen: blockLen}
	metas := make([]coreMeta, len(c.Cores))
	for i := range c.Cores {
		cc := &c.Cores[i]
		metas[i] = coreMeta{Member: cc.Member, Params: cc.Params, Local: cc.Local, Total: len(cc.Instrs)}
	}
	nw.begin(c.header(), metas)
	buf := make([]cpu.Instr, blockLen)
	curIA := make([]uint64, blockLen)
	prevIA := make([]uint64, blockLen)
	for i, m := range metas {
		instrs, k := c.Cores[i].Instrs, 0
		next := func() (cpu.Instr, error) { in := instrs[k]; k++; return in, nil }
		if err := nw.coreBlocks(i, m, next, buf, curIA, prevIA); err != nil {
			return err
		}
	}
	return nw.finish()
}

// ConvertFile upgrades a NOC2 capture file to a NOC3 trace file.
func ConvertFile(in, out string) (err error) {
	c, err := LoadCapture(in)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := ConvertNOC3(bw, c, 0); err != nil {
		return err
	}
	return bw.Flush()
}
