package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"nocout/internal/cpu"
)

// This file provides whole-chip workload capture and replay (the NOC2
// format): Record drains every core's stream from any Workload into a
// Capture, which serializes to a compact varint file and itself
// implements Workload — so a capture replays through Run, sweeps, and
// the CLI via the "trace:<path>" scheme, reproducing the recorded
// workload's behaviour exactly (same seed, same per-core pipeline
// parameters, same prewarm layout, same instruction streams).
//
// Format: the "NOC2" magic, a header (source name, recording seed,
// software scalability limit, shared instruction/hot regions), then one
// block per core: member name, pipeline parameters, local region, and
// the instruction records in the NOC1 encoding (kind uvarint, iaddr
// varint delta, daddr uvarint for loads/stores; the delta baseline
// resets per core).

// captureMagic identifies the multi-core capture format.
var captureMagic = [4]byte{'N', 'O', 'C', '2'}

// Defensive decode caps: corrupt headers must produce clean errors, not
// multi-gigabyte allocations.
const (
	maxCaptureCores  = 1 << 12 // 4096 recorded cores
	maxCaptureName   = 1 << 10 // name/member strings
	maxCaptureRegion = 1 << 31 // 2GB per prewarm region (builtins are MBs)
)

// CoreCapture is one core's recorded stream and identity.
type CoreCapture struct {
	// Member names the workload driving this core (the mix member for
	// heterogeneous sources, the source name otherwise).
	Member string
	// Params carries the core's recorded pipeline/ILP/MLP knobs; Seed is
	// not recorded — replay threads the run's seed through.
	Params cpu.Params
	// Local is the core's private L1-resident region.
	Local Region
	// Instrs is the recorded dynamic instruction stream.
	Instrs []cpu.Instr
}

// Capture is a whole-chip workload recording. It implements Workload
// (and MemberMapper), replaying each recorded core's stream verbatim —
// and looping when a run outlasts the recording, so replays stay
// deterministic at any quality (an exact reproduction additionally needs
// the recording to cover the run: record at least
// (warmup+window)×fetch-width instructions per core).
type Capture struct {
	// Source is the recorded workload's name; the replay reports it as
	// its own Name so a sufficient capture reproduces the source's
	// Result bit for bit.
	Source string
	// Seed is the seed the streams were recorded at (provenance; replay
	// is exact when the run's seed matches).
	Seed uint64
	// ScaleLimit is the recorded workload's MaxCores.
	ScaleLimit int
	// Instr and Hot are the shared prewarm regions.
	Instr, Hot Region
	// Cores holds one recording per core.
	Cores []CoreCapture
}

// Record captures cores×perCore instructions from w at the given seed.
// The decoder's sanity caps are enforced here too, so anything Record
// accepts is guaranteed to read back.
func Record(w Workload, cores, perCore int, seed uint64) (*Capture, error) {
	if cores < 1 || cores > maxCaptureCores {
		return nil, fmt.Errorf("workload: Record needs 1..%d cores, got %d", maxCaptureCores, cores)
	}
	if perCore < 1 || perCore > maxTrace {
		return nil, fmt.Errorf("workload: Record needs 1..%d instructions per core, got %d", maxTrace, perCore)
	}
	if len(w.Name()) > maxCaptureName {
		return nil, fmt.Errorf("workload: name %.32q... exceeds the %d-byte capture cap", w.Name(), maxCaptureName)
	}
	lay := w.Layout()
	if lay.Instr.Size > maxCaptureRegion || lay.Hot.Size > maxCaptureRegion {
		return nil, fmt.Errorf("workload: shared region exceeds the %d-byte capture cap", maxCaptureRegion)
	}
	// Clamp the recorded limit to the recorded core count: replay can
	// never drive more cores than were captured, and an Unlimited-wrapped
	// source would otherwise store a limit the decoder's sanity cap
	// rejects, making the file unreadable.
	limit := w.MaxCores()
	if limit > cores {
		limit = cores
	}
	c := &Capture{
		Source:     w.Name(),
		Seed:       seed,
		ScaleLimit: limit,
		Instr:      lay.Instr,
		Hot:        lay.Hot,
		Cores:      make([]CoreCapture, cores),
	}
	for i := 0; i < cores; i++ {
		member, _ := MemberNameOf(w, i)
		if len(member) > maxCaptureName {
			return nil, fmt.Errorf("workload: core %d member name %.32q... exceeds the %d-byte capture cap", i, member, maxCaptureName)
		}
		cp := w.CoreParams(i, seed)
		cp.Seed = 0
		st := w.StreamFor(i, seed)
		local := lay.Local(i)
		if local.Size > maxCaptureRegion {
			return nil, fmt.Errorf("workload: core %d local region exceeds the %d-byte capture cap", i, maxCaptureRegion)
		}
		cc := CoreCapture{Member: member, Params: cp, Local: local, Instrs: make([]cpu.Instr, perCore)}
		for k := range cc.Instrs {
			in := st.Next()
			if in.Kind > cpu.KindStore {
				// KindIdle (and anything beyond) has no record encoding; a
				// capture of it would be unreadable, so refuse up front.
				return nil, fmt.Errorf("workload: core %d record %d has kind %d; only ALU/load/store streams are recordable", i, k, in.Kind)
			}
			cc.Instrs[k] = in
		}
		c.Cores[i] = cc
	}
	return c, nil
}

// --- Workload implementation -----------------------------------------------

// core maps a chip core to a recorded one; chips wider than the
// recording reuse streams modulo the recorded count (only reachable when
// the scalability clamp is lifted).
func (c *Capture) core(coreID int) *CoreCapture { return &c.Cores[coreID%len(c.Cores)] }

// Name implements Workload; a capture replays under its source's name.
func (c *Capture) Name() string { return c.Source }

// Aliases implements Workload; captures are addressed as "trace:<path>",
// not registered.
func (c *Capture) Aliases() []string { return nil }

// MaxCores implements Workload: the recorded software limit, further
// clamped to the recorded core count.
func (c *Capture) MaxCores() int {
	limit := c.ScaleLimit
	if limit <= 0 || limit > len(c.Cores) {
		limit = len(c.Cores)
	}
	return limit
}

// CoreParams implements Workload with the recorded pipeline knobs.
func (c *Capture) CoreParams(coreID int, seed uint64) cpu.Params {
	cp := c.core(coreID).Params
	cp.Seed = seed
	return cp
}

// StreamFor implements Workload, replaying the recorded stream in a loop.
// The seed does not alter a replay — the trace is the trace.
func (c *Capture) StreamFor(coreID int, seed uint64) cpu.Stream {
	return &coreReplay{instrs: c.core(coreID).Instrs}
}

// MemberName implements MemberMapper with the recorded attribution.
func (c *Capture) MemberName(coreID int) string { return c.core(coreID).Member }

// Layout implements Workload with the recorded regions.
func (c *Capture) Layout() Layout {
	return Layout{
		Instr: c.Instr,
		Hot:   c.Hot,
		Local: func(core int) Region { return c.core(core).Local },
	}
}

// coreReplay replays one recorded stream, looping at the end.
type coreReplay struct {
	instrs []cpu.Instr
	i      int
}

// Next implements cpu.Stream.
func (r *coreReplay) Next() cpu.Instr {
	in := r.instrs[r.i]
	r.i++
	if r.i == len(r.instrs) {
		r.i = 0
	}
	return in
}

// --- serialization ----------------------------------------------------------

// Write serializes the capture in the NOC2 format. Captures the decoder
// would reject — over the core, name, or stream caps — are refused
// rather than written unreadably.
func (c *Capture) Write(w io.Writer) error {
	if len(c.Cores) == 0 {
		return errors.New("workload: refusing to write a capture with no cores")
	}
	if len(c.Cores) > maxCaptureCores {
		return fmt.Errorf("workload: capture has %d cores, cap is %d", len(c.Cores), maxCaptureCores)
	}
	if len(c.Source) > maxCaptureName {
		return fmt.Errorf("workload: source name exceeds the %d-byte cap", maxCaptureName)
	}
	if c.ScaleLimit < 0 || c.ScaleLimit > maxCaptureCores {
		return fmt.Errorf("workload: scale limit %d is outside 0..%d", c.ScaleLimit, maxCaptureCores)
	}
	if c.Instr.Size > maxCaptureRegion || c.Hot.Size > maxCaptureRegion {
		return fmt.Errorf("workload: shared region exceeds the %d-byte cap", maxCaptureRegion)
	}
	for i := range c.Cores {
		if len(c.Cores[i].Member) > maxCaptureName {
			return fmt.Errorf("workload: core %d member name exceeds the %d-byte cap", i, maxCaptureName)
		}
		if len(c.Cores[i].Instrs) > maxTrace {
			return fmt.Errorf("workload: core %d stream exceeds the %d-instruction cap", i, maxTrace)
		}
		if c.Cores[i].Local.Size > maxCaptureRegion {
			return fmt.Errorf("workload: core %d local region exceeds the %d-byte cap", i, maxCaptureRegion)
		}
	}
	bw := bufio.NewWriter(w)
	enc := &noc2Enc{w: bw}
	enc.header(c.header(), len(c.Cores))
	for i := range c.Cores {
		cc := &c.Cores[i]
		if len(cc.Instrs) == 0 {
			return fmt.Errorf("workload: core %d has an empty stream", i)
		}
		enc.coreHeader(coreMeta{Member: cc.Member, Params: cc.Params, Local: cc.Local, Total: len(cc.Instrs)})
		prev := int64(0)
		for _, in := range cc.Instrs {
			enc.instr(in, &prev)
		}
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// captureHeader is the NOC2 header before the per-core blocks; the NOC3
// container carries the identical fields, so both writers share it.
type captureHeader struct {
	Source     string
	Seed       uint64
	ScaleLimit int
	Instr, Hot Region
}

// coreMeta is one core's identity in a capture header: everything but
// the instruction records themselves.
type coreMeta struct {
	Member string
	Params cpu.Params
	Local  Region
	Total  int // recorded dynamic instructions
}

// header extracts the capture's header fields.
func (c *Capture) header() captureHeader {
	return captureHeader{Source: c.Source, Seed: c.Seed, ScaleLimit: c.ScaleLimit, Instr: c.Instr, Hot: c.Hot}
}

// noc2Enc emits the canonical NOC2 byte stream with a sticky error. It is
// the single producer of those bytes: Capture.Write streams it to a file,
// and the NOC3 recorder streams it into a SHA-256 so a recording's
// fingerprint is the hash of its canonical NOC2 encoding without ever
// materializing that encoding (fingerprints stay identical across the two
// container formats).
type noc2Enc struct {
	w   io.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *noc2Enc) write(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *noc2Enc) putU(v uint64) {
	k := binary.PutUvarint(e.buf[:], v)
	e.write(e.buf[:k])
}

func (e *noc2Enc) putI(v int64) {
	k := binary.PutVarint(e.buf[:], v)
	e.write(e.buf[:k])
}

func (e *noc2Enc) putS(s string) {
	e.putU(uint64(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *noc2Enc) putRegion(r Region) {
	e.putU(r.Base)
	e.putU(r.Size)
}

// header emits the magic and the shared header fields.
func (e *noc2Enc) header(h captureHeader, cores int) {
	e.write(captureMagic[:])
	e.putS(h.Source)
	e.putU(h.Seed)
	e.putU(uint64(h.ScaleLimit))
	e.putRegion(h.Instr)
	e.putRegion(h.Hot)
	e.putU(uint64(cores))
}

// coreHeader emits one core's identity block (member, params, local
// region, stream length); the caller follows with Total instr records.
func (e *noc2Enc) coreHeader(m coreMeta) {
	e.putS(m.Member)
	e.putU(uint64(m.Params.Width))
	e.putU(uint64(m.Params.ROB))
	e.putU(math.Float64bits(m.Params.BaseCPI))
	e.putU(math.Float64bits(m.Params.DepChance))
	e.putRegion(m.Local)
	e.putU(uint64(m.Total))
}

// instr emits one NOC1-encoded record, threading the per-core delta
// baseline through prev.
func (e *noc2Enc) instr(in cpu.Instr, prev *int64) {
	e.putU(uint64(in.Kind))
	e.putI(int64(in.IAddr) - *prev)
	*prev = int64(in.IAddr)
	if in.Kind != cpu.KindALU {
		e.putU(in.DAddr)
	}
}

// ReadCapture decodes a capture written by Write. Corrupt or truncated
// inputs produce errors, never panics or unbounded allocations, and the
// decoded pipeline parameters are validated so a replayed chip cannot be
// built from garbage.
func ReadCapture(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading capture header: %w", err)
	}
	if magic != captureMagic {
		return nil, errors.New("workload: not a NOC2 capture (record one with Record or nocout -record-trace)")
	}
	getU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("workload: capture %s: %w", what, err)
		}
		return v, nil
	}
	getS := func(what string) (string, error) {
		n, err := getU(what + " length")
		if err != nil {
			return "", err
		}
		if n > maxCaptureName {
			return "", fmt.Errorf("workload: capture %s length %d exceeds cap", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("workload: capture %s: %w", what, err)
		}
		return string(b), nil
	}
	getRegion := func(what string) (Region, error) {
		base, err := getU(what + " base")
		if err != nil {
			return Region{}, err
		}
		size, err := getU(what + " size")
		if err != nil {
			return Region{}, err
		}
		// An absurd decoded size would hang the chip's line-by-line
		// prewarm, not fail cleanly — reject it here.
		if size > maxCaptureRegion {
			return Region{}, fmt.Errorf("workload: capture %s size %d exceeds cap", what, size)
		}
		return Region{Base: base, Size: size}, nil
	}

	c := &Capture{}
	var err error
	if c.Source, err = getS("source name"); err != nil {
		return nil, err
	}
	if c.Seed, err = getU("seed"); err != nil {
		return nil, err
	}
	limit, err := getU("scale limit")
	if err != nil {
		return nil, err
	}
	if limit > maxCaptureCores {
		return nil, fmt.Errorf("workload: capture scale limit %d exceeds cap", limit)
	}
	c.ScaleLimit = int(limit)
	if c.Instr, err = getRegion("instr region"); err != nil {
		return nil, err
	}
	if c.Hot, err = getRegion("hot region"); err != nil {
		return nil, err
	}
	nCores, err := getU("core count")
	if err != nil {
		return nil, err
	}
	if nCores == 0 {
		return nil, errors.New("workload: capture has no cores")
	}
	if nCores > maxCaptureCores {
		return nil, fmt.Errorf("workload: capture core count %d exceeds cap", nCores)
	}
	c.Cores = make([]CoreCapture, nCores)
	for i := range c.Cores {
		cc := &c.Cores[i]
		if cc.Member, err = getS(fmt.Sprintf("core %d member", i)); err != nil {
			return nil, err
		}
		var raw [4]uint64
		for k, what := range []string{"width", "rob", "base cpi", "dep chance"} {
			if raw[k], err = getU(fmt.Sprintf("core %d %s", i, what)); err != nil {
				return nil, err
			}
		}
		cc.Params = cpu.Params{
			Width: int(raw[0]), ROB: int(raw[1]),
			BaseCPI: math.Float64frombits(raw[2]), DepChance: math.Float64frombits(raw[3]),
		}
		if err := validCoreParams(i, cc.Params); err != nil {
			return nil, err
		}
		if cc.Local, err = getRegion(fmt.Sprintf("core %d local region", i)); err != nil {
			return nil, err
		}
		n, err := getU(fmt.Sprintf("core %d stream length", i))
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("workload: core %d has an empty stream", i)
		}
		if n > maxTrace {
			return nil, fmt.Errorf("workload: core %d stream length %d exceeds cap", i, n)
		}
		if cc.Instrs, err = readRecords(br, n); err != nil {
			return nil, fmt.Errorf("workload: core %d: %w", i, err)
		}
	}
	return c, nil
}

// validCoreParams rejects decoded pipeline parameters the cpu model would
// panic on (cpu.New's constructor contract).
func validCoreParams(core int, p cpu.Params) error {
	switch {
	case p.Width < 1 || p.Width > 64:
		return fmt.Errorf("workload: core %d has implausible width %d", core, p.Width)
	case p.ROB < p.Width || p.ROB > 1<<16:
		return fmt.Errorf("workload: core %d has implausible ROB %d", core, p.ROB)
	case math.IsNaN(p.BaseCPI) || math.IsInf(p.BaseCPI, 0) || p.BaseCPI < 1.0/float64(p.Width) || p.BaseCPI > 1e6:
		return fmt.Errorf("workload: core %d has implausible base CPI %v", core, p.BaseCPI)
	case math.IsNaN(p.DepChance) || p.DepChance < 0 || p.DepChance > 1:
		return fmt.Errorf("workload: core %d has implausible dep chance %v", core, p.DepChance)
	}
	return nil
}

// Save writes the capture to a file.
func (c *Capture) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return c.Write(f)
}

// LoadCapture reads a capture file; it is how the "trace:<path>" workload
// scheme resolves.
func LoadCapture(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	c, err := ReadCapture(f)
	if err != nil {
		return nil, fmt.Errorf("workload: capture %s: %w", path, err)
	}
	return c, nil
}
