package workload

import (
	"testing"

	"nocout/internal/cpu"
)

func TestMixAssignment(t *testing.T) {
	m := NewMix("M", DataServing, MapReduceC, SATSolver)
	wantRR := []string{DataServing.Name, MapReduceC.Name, SATSolver.Name, DataServing.Name}
	for core, want := range wantRR {
		if got := m.MemberName(core); got != want {
			t.Errorf("round-robin MemberName(%d) = %q, want %q", core, got, want)
		}
	}
	// Streams and core params come from the assigned member.
	a, b := m.StreamFor(1, 7), NewGenerator(MapReduceC, 1, 7)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("mix core 1 diverged from its member generator at %d", i)
		}
	}
	if cp := m.CoreParams(2, 5); cp.BaseCPI != SATSolver.BaseCPI || cp.Seed != 5 {
		t.Fatalf("CoreParams(2) = %+v, want SAT Solver's knobs", cp)
	}

	ex := m.WithAssignment([]int{2, 2, 0})
	if ex.MemberName(0) != SATSolver.Name || ex.MemberName(2) != DataServing.Name || ex.MemberName(3) != SATSolver.Name {
		t.Fatalf("explicit assignment not honored: %q %q %q", ex.MemberName(0), ex.MemberName(2), ex.MemberName(3))
	}
	// Builders are copy-on-write: the original (possibly registered and
	// shared) mix keeps its round-robin assignment.
	if m.MemberName(0) != DataServing.Name {
		t.Fatal("WithAssignment mutated the receiver")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range assignment must panic")
		}
	}()
	m.WithAssignment([]int{3})
}

func TestMixMaxCoresAndLayout(t *testing.T) {
	m := NewMix("M", DataServing, WebSearch) // 64- and 16-core members
	if m.MaxCores() != 16 {
		t.Fatalf("mix MaxCores = %d, want the least scalable member's 16", m.MaxCores())
	}
	lay := m.Layout()
	if lay.Instr.Size != DataServing.InstrFootprint {
		t.Fatalf("mix instr region %d, want the largest member footprint %d", lay.Instr.Size, DataServing.InstrFootprint)
	}
	if lay.Hot.Size != WebSearch.HotB {
		t.Fatalf("mix hot region %d, want max(HotB) = %d", lay.Hot.Size, WebSearch.HotB)
	}
	// Core 1 runs Web Search: its local region is Web Search's 16KB.
	if got := lay.Local(1).Size; got != WebSearch.LocalB {
		t.Fatalf("core 1 local region %d, want %d", got, WebSearch.LocalB)
	}
}

func TestPhasedSchedule(t *testing.T) {
	// Two phases with disjoint footprint sizes make the schedule visible
	// in the instruction addresses.
	small, big := SATSolver, DataServing
	small.InstrFootprint = 1 << 20
	big.InstrFootprint = 6 << 20
	p := NewPhased("P", Phase{small, 1000}, Phase{big, 1000})

	st := p.StreamFor(0, 3)
	overSmall := func(n int) int {
		count := 0
		for i := 0; i < n; i++ {
			if st.Next().IAddr >= small.InstrFootprint {
				count++
			}
		}
		return count
	}
	if c := overSmall(1000); c != 0 {
		t.Fatalf("phase 1: %d addresses outside the small footprint", c)
	}
	if c := overSmall(1000); c == 0 {
		t.Fatal("phase 2 never left the small footprint: schedule not switching")
	}
	if c := overSmall(1000); c != 0 {
		t.Fatalf("schedule must cycle back to phase 1, saw %d big-footprint addresses", c)
	}

	// Determinism: same (core, seed) => identical stream across phases.
	x, y := p.StreamFor(2, 11), p.StreamFor(2, 11)
	for i := 0; i < 5000; i++ {
		if x.Next() != y.Next() {
			t.Fatalf("phased stream nondeterministic at %d", i)
		}
	}
}

func TestPhasedCoreParamsBlend(t *testing.T) {
	p := NewPhased("P", Phase{MapReduceC, 1000}, Phase{MapReduceW, 3000})
	cp := p.CoreParams(0, 9)
	wantCPI := (MapReduceC.BaseCPI*1000 + MapReduceW.BaseCPI*3000) / 4000
	wantDep := (MapReduceC.DepChance*1000 + MapReduceW.DepChance*3000) / 4000
	if cp.BaseCPI != wantCPI || cp.DepChance != wantDep {
		t.Fatalf("blend = (%v, %v), want (%v, %v)", cp.BaseCPI, cp.DepChance, wantCPI, wantDep)
	}
	if cp.Seed != 9 || cp.Width != cpu.DefaultParams().Width {
		t.Fatalf("pipeline shape/seed wrong: %+v", cp)
	}
}

func TestPhasedIdenticalPhasesStayDistinct(t *testing.T) {
	// Two phases with the same calibration must not replay the same
	// stream (the per-phase seed salt).
	p := NewPhased("P", Phase{MapReduceC, 100}, Phase{MapReduceC, 100})
	st := p.StreamFor(0, 1)
	var first, second [100]cpu.Instr
	for i := range first {
		first[i] = st.Next()
	}
	for i := range second {
		second[i] = st.Next()
	}
	if first == second {
		t.Fatal("identical phases replayed the identical stream")
	}
}

func TestFamilyValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"mix without members":   func() { NewMix("M") },
		"mix without name":      func() { NewMix("", DataServing) },
		"phased without phases": func() { NewPhased("P") },
		"phase without length":  func() { NewPhased("P", Phase{MapReduceC, 0}) },
		"empty assignment":      func() { NewMix("M", DataServing).WithAssignment(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}
