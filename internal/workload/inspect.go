package workload

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace inspection: TraceInfo summarizes either container format for the
// `nocout -trace-info` subcommand — header metadata, per-section byte
// accounting, block/predictor counts, and the compression ratio against
// the raw in-memory stream size.

// TraceInfo describes a trace file on disk.
type TraceInfo struct {
	Path      string `json:"path"`
	Format    string `json:"format"` // "NOC2" or "NOC3"
	FileBytes int64  `json:"file_bytes"`

	Source     string `json:"source"`
	Seed       uint64 `json:"seed"`
	ScaleLimit int    `json:"scale_limit"`
	Cores      int    `json:"cores"`
	Instrs     int64  `json:"instrs"` // total recorded instructions, all cores

	// Fingerprint is the recording's behavioral fingerprint (identical
	// across formats for the same recording).
	Fingerprint string `json:"fingerprint"`

	// NOC3 only: section accounting and block-level compression detail.
	BlockLen         int    `json:"block_len,omitempty"`
	Blocks           int    `json:"blocks,omitempty"`
	PredPrev         uint64 `json:"pred_prev,omitempty"`  // previous-instruction predictor wins
	PredPhase        uint64 `json:"pred_phase,omitempty"` // phase predictor wins
	HeaderSectionB   int    `json:"header_section_bytes,omitempty"`
	IndexSectionB    int    `json:"index_section_bytes,omitempty"`
	BlockSectionB    uint64 `json:"block_section_bytes,omitempty"`
	RawResidualBytes uint64 `json:"raw_residual_bytes,omitempty"`
}

// BytesPerInstr is the on-disk cost per recorded instruction.
func (ti *TraceInfo) BytesPerInstr() float64 {
	if ti.Instrs == 0 {
		return 0
	}
	return float64(ti.FileBytes) / float64(ti.Instrs)
}

// CompressionRatio is raw stream bytes (24 per cpu.Instr in memory) over
// file bytes — how much smaller the container is than the replayed data.
func (ti *TraceInfo) CompressionRatio() float64 {
	if ti.FileBytes == 0 {
		return 0
	}
	return float64(ti.Instrs) * 24 / float64(ti.FileBytes)
}

// InspectTrace reads a trace file's metadata in either format. NOC3 files
// are inspected from their header and index sections alone (no block
// decode); NOC2 files must be decoded whole, as ever.
func InspectTrace(path string) (*TraceInfo, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	w, err := LoadTrace(path)
	if err != nil {
		return nil, err
	}
	ti := &TraceInfo{Path: path, FileBytes: st.Size()}
	switch t := w.(type) {
	case *TraceFile:
		defer t.Close()
		ti.Format = "NOC3"
		ti.Source = t.hdr.Source
		ti.Seed = t.hdr.Seed
		ti.ScaleLimit = t.hdr.ScaleLimit
		ti.Cores = len(t.cores)
		for i := range t.cores {
			ti.Instrs += int64(t.cores[i].meta.Total)
		}
		fp := t.Fingerprint()
		ti.Fingerprint = hex.EncodeToString(fp[:])
		ti.BlockLen = t.blockLen
		ti.Blocks = t.stats.Blocks
		ti.PredPrev = t.stats.PredPrev
		ti.PredPhase = t.stats.PredPhase
		ti.HeaderSectionB = t.headerSz
		ti.IndexSectionB = t.indexSz
		ti.BlockSectionB = t.stats.BlockSectionBytes
		ti.RawResidualBytes = t.stats.RawResidualBytes
	case *Capture:
		ti.Format = "NOC2"
		ti.Source = t.Source
		ti.Seed = t.Seed
		ti.ScaleLimit = t.ScaleLimit
		ti.Cores = len(t.Cores)
		for i := range t.Cores {
			ti.Instrs += int64(len(t.Cores[i].Instrs))
		}
		fp, err := Fingerprint(t)
		if err != nil {
			return nil, err
		}
		ti.Fingerprint = strings.TrimPrefix(string(fp), "capture:")
	default:
		return nil, fmt.Errorf("workload: %s: unrecognized trace type %T", path, w)
	}
	return ti, nil
}

// WriteText renders the info as the CLI's human-readable report.
func (ti *TraceInfo) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace:        %s\n", ti.Path)
	fmt.Fprintf(w, "format:       %s\n", ti.Format)
	fmt.Fprintf(w, "source:       %s (seed %d, scale limit %d)\n", ti.Source, ti.Seed, ti.ScaleLimit)
	fmt.Fprintf(w, "cores:        %d\n", ti.Cores)
	fmt.Fprintf(w, "instructions: %d (%d per core)\n", ti.Instrs, ti.Instrs/int64(max(ti.Cores, 1)))
	fmt.Fprintf(w, "file bytes:   %d (%.3f bytes/instr, %.2fx vs in-memory stream)\n",
		ti.FileBytes, ti.BytesPerInstr(), ti.CompressionRatio())
	fmt.Fprintf(w, "fingerprint:  capture:%s\n", ti.Fingerprint)
	if ti.Format != "NOC3" {
		return
	}
	fmt.Fprintf(w, "block length: %d instructions\n", ti.BlockLen)
	total := ti.PredPrev + ti.PredPhase
	fmt.Fprintf(w, "blocks:       %d (%d prev-delta, %d phase-delta — %.1f%% phase)\n",
		ti.Blocks, ti.PredPrev, ti.PredPhase, 100*float64(ti.PredPhase)/float64(max(total, 1)))
	fmt.Fprintf(w, "sections:     header %dB, blocks %dB, index %dB\n",
		ti.HeaderSectionB, ti.BlockSectionB, ti.IndexSectionB)
	if ti.RawResidualBytes > 0 {
		fmt.Fprintf(w, "deflate:      %dB residuals -> %dB on disk (%.2fx)\n",
			ti.RawResidualBytes, ti.BlockSectionB, float64(ti.RawResidualBytes)/float64(ti.BlockSectionB))
	}
}
