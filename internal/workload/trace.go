package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"nocout/internal/cpu"
)

// This file provides instruction-trace recording and replay: a generator's
// stream can be captured once and replayed deterministically, which is how
// users plug their own traces (e.g. converted from real workload captures)
// into the simulator in place of the synthetic generators.
//
// Format: a small header, then one record per instruction:
//
//	kind   uvarint (0 ALU, 1 load, 2 store)
//	iaddr  varint delta from the previous instruction address
//	daddr  uvarint (loads/stores only)

// traceMagic identifies the trace format.
var traceMagic = [4]byte{'N', 'O', 'C', '1'}

// WriteTrace records n instructions from stream to w.
func WriteTrace(w io.Writer, stream cpu.Stream, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	putI := func(v int64) error {
		k := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := putU(uint64(n)); err != nil {
		return err
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		in := stream.Next()
		if err := putU(uint64(in.Kind)); err != nil {
			return err
		}
		if err := putI(int64(in.IAddr) - prev); err != nil {
			return err
		}
		prev = int64(in.IAddr)
		if in.Kind != cpu.KindALU {
			if err := putU(in.DAddr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Trace is a decoded instruction trace.
type Trace struct {
	Instrs []cpu.Instr
}

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("workload: not a NOC1 trace")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace length: %w", err)
	}
	if n > maxTrace {
		return nil, fmt.Errorf("workload: trace length %d exceeds cap", n)
	}
	instrs, err := readRecords(br, n)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return &Trace{Instrs: instrs}, nil
}

// maxTrace is the defensive per-stream cap: 256M instructions.
const maxTrace = 1 << 28

// readRecords decodes n instruction records (kind uvarint, iaddr varint
// delta, daddr uvarint for loads/stores). The slice grows as records
// arrive — a corrupt header claiming a huge n cannot force a huge
// allocation; it fails at the first missing record instead.
func readRecords(br *bufio.Reader, n uint64) ([]cpu.Instr, error) {
	instrs := make([]cpu.Instr, 0, min(n, 1<<16))
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		kind, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("record %d kind: %w", i, err)
		}
		if kind > uint64(cpu.KindStore) {
			return nil, fmt.Errorf("record %d has invalid kind %d", i, kind)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("record %d iaddr: %w", i, err)
		}
		prev += delta
		in := cpu.Instr{Kind: cpu.InstrKind(kind), IAddr: uint64(prev)}
		if in.Kind != cpu.KindALU {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("record %d daddr: %w", i, err)
			}
			in.DAddr = d
		}
		instrs = append(instrs, in)
	}
	return instrs, nil
}

// Len returns the trace length in instructions.
func (t *Trace) Len() int { return len(t.Instrs) }

// Stream returns a cpu.Stream that replays the trace, looping at the end
// (cores need an endless stream).
func (t *Trace) Stream() cpu.Stream {
	if len(t.Instrs) == 0 {
		panic("workload: empty trace cannot be replayed")
	}
	return &replay{t: t}
}

type replay struct {
	t *Trace
	i int
}

func (r *replay) Next() cpu.Instr {
	in := r.t.Instrs[r.i]
	r.i++
	if r.i == len(r.t.Instrs) {
		r.i = 0
	}
	return in
}
