// Package workload provides the chip's workload sources behind one
// behavioral interface (Workload, api.go): self-describing values a
// registry resolves by name or alias, each answering for its software
// scalability, per-core pipeline parameters, per-core instruction
// streams, and prewarm address layout. Four families implement it:
//
//   - Synthetic (this file): the six CloudSuite scale-out workloads the
//     paper evaluates (§5.3);
//   - Capture (capture.go): recorded traces replayed verbatim, loaded
//     through the "trace:<path>" scheme;
//   - Mix (mix.go): multiprogrammed per-core member assignment;
//   - Phased (phased.go): deterministic time-varying phase schedules.
//
// The synthetic model reproduces the paper's characterization (§2.1),
// which defines the traits each generator exhibits:
//
//   - a multi-megabyte *shared* instruction footprint with complex control
//     flow: every core executes the same binary region as runs of
//     straight-line code broken by jumps, most of which target recently
//     executed functions (loops) and some of which fall anywhere in the
//     footprint. The footprint exceeds the 32KB L1-I but fits the 8MB LLC,
//     so instruction fetches frequently miss to the LLC — the traffic that
//     drives every figure in the paper;
//   - a vast *private* dataset with essentially no temporal reuse: data
//     loads miss the LLC and go to memory;
//   - a small *shared read-write* region (OS and server-software shared
//     state) whose writes are the only source of coherence activity,
//     sized/tuned per workload to land the Figure 4 snoop rates (~0.5–4.5%
//     of LLC accesses, mean ≈ 2%);
//   - per-workload ILP (base CPI) and MLP (dependence chance): Data
//     Serving's pointer-chasing gives it very low ILP/MLP, making it the
//     most latency-sensitive, as in the paper.
package workload

import (
	"nocout/internal/cpu"
	"nocout/internal/sim"
)

// Params characterizes one scale-out workload.
type Params struct {
	Name string

	// Instruction side.
	InstrFootprint uint64  // bytes of shared instruction region
	AvgRun         float64 // mean instructions between taken jumps
	LocalJump      float64 // probability a jump targets a recent function

	// Data side.
	LoadFrac  float64 // fraction of instructions that load
	StoreFrac float64 // fraction of instructions that store
	LocalB    uint64  // per-core stack/locals region (L1-resident)
	LocalFrac float64 // fraction of data accesses that stay local
	DatasetB  uint64  // per-core private dataset bytes (no reuse)
	HotB      uint64  // shared read-write region bytes
	HotFrac   float64 // fraction of non-local accesses hitting the shared region
	HotWrite  float64 // fraction of non-local stores hitting the shared region

	// Core behaviour.
	BaseCPI   float64 // intrinsic CPI (ILP)
	DepChance float64 // load-miss serialization probability (1/MLP knob)

	// MaxCores is the workload's software scalability limit (§5.3: Web
	// Frontend and Web Search only scale to 16 cores).
	MaxCores int
}

// The six evaluated workloads. Parameter values are this reproduction's
// calibration (documented in EXPERIMENTS.md); the *relations* between them
// follow the paper's characterization.
var (
	DataServing = Params{
		Name:           "Data Serving",
		InstrFootprint: 6 << 20, AvgRun: 22, LocalJump: 0.74,
		LoadFrac: 0.30, StoreFrac: 0.10, LocalB: 8 << 10, LocalFrac: 0.975,
		DatasetB: 512 << 20, HotB: 512 << 10, HotFrac: 0.06, HotWrite: 0.60,
		BaseCPI: 1.15, DepChance: 0.85,
		MaxCores: 64,
	}
	MapReduceC = Params{
		Name:           "MapReduce-C",
		InstrFootprint: 3 << 20, AvgRun: 52, LocalJump: 0.90,
		LoadFrac: 0.28, StoreFrac: 0.12, LocalB: 8 << 10, LocalFrac: 0.96,
		DatasetB: 512 << 20, HotB: 256 << 10, HotFrac: 0.05, HotWrite: 0.38,
		BaseCPI: 0.85, DepChance: 0.45,
		MaxCores: 64,
	}
	MapReduceW = Params{
		Name:           "MapReduce-W",
		InstrFootprint: 4 << 20, AvgRun: 40, LocalJump: 0.86,
		LoadFrac: 0.28, StoreFrac: 0.10, LocalB: 8 << 10, LocalFrac: 0.96,
		DatasetB: 512 << 20, HotB: 256 << 10, HotFrac: 0.04, HotWrite: 0.40,
		BaseCPI: 0.95, DepChance: 0.55,
		MaxCores: 64,
	}
	SATSolver = Params{
		Name:           "SAT Solver",
		InstrFootprint: 3 << 21, AvgRun: 90, LocalJump: 0.96,
		LoadFrac: 0.32, StoreFrac: 0.08, LocalB: 16 << 10, LocalFrac: 0.96,
		DatasetB: 256 << 20, HotB: 128 << 10, HotFrac: 0.09, HotWrite: 0.42,
		BaseCPI: 0.70, DepChance: 0.35,
		MaxCores: 64,
	}
	WebFrontend = Params{
		Name:           "Web Frontend",
		InstrFootprint: 5 << 20, AvgRun: 42, LocalJump: 0.9,
		LoadFrac: 0.30, StoreFrac: 0.12, LocalB: 8 << 10, LocalFrac: 0.95,
		DatasetB: 512 << 20, HotB: 256 << 10, HotFrac: 0.12, HotWrite: 0.65,
		BaseCPI: 0.95, DepChance: 0.50,
		MaxCores: 16,
	}
	WebSearch = Params{
		Name:           "Web Search",
		InstrFootprint: 4 << 20, AvgRun: 54, LocalJump: 0.93,
		LoadFrac: 0.28, StoreFrac: 0.06, LocalB: 16 << 10, LocalFrac: 0.96,
		DatasetB: 1 << 30, HotB: 512 << 10, HotFrac: 0.03, HotWrite: 0.50,
		BaseCPI: 0.80, DepChance: 0.40,
		MaxCores: 16,
	}
)

// Builtin returns the paper's six-workload evaluation suite in figure
// order, excluding registered additions — the set the Figure* studies
// must sweep to stay comparable with the paper.
func Builtin() []Params {
	return []Params{DataServing, MapReduceC, MapReduceW, SATSolver, WebFrontend, WebSearch}
}

// CoreParams derives the cpu parameters this workload implies.
func (p Params) CoreParams(seed uint64) cpu.Params {
	cp := cpu.DefaultParams()
	cp.BaseCPI = p.BaseCPI
	cp.DepChance = p.DepChance
	cp.Seed = seed
	return cp
}

// Address-space layout. All cores share the instruction region and the hot
// read-write region; datasets are per-core (request independence, §2.1).
const (
	instrBase   = uint64(0x0000_0000_0000)
	hotBase     = uint64(0x0040_0000_0000)
	datasetBase = uint64(0x0100_0000_0000)
	datasetStep = uint64(0x0001_0000_0000) // 4GB of space per core
)

// Generator produces one core's dynamic instruction stream. It implements
// cpu.Stream.
type Generator struct {
	p      Params
	coreID int
	rng    *sim.RNG

	pc      uint64
	runLeft int
	recent  []uint64 // recently visited function starts (loop set)
	rIdx    int
}

// NewGenerator builds the stream for one core. Streams with the same seed
// and core id are reproducible.
func NewGenerator(p Params, coreID int, seed uint64) *Generator {
	g := &Generator{
		p:      p,
		coreID: coreID,
		rng:    sim.NewRNG(seed).Fork(uint64(coreID) + 1),
		recent: make([]uint64, 0, 32),
	}
	g.jump()
	return g
}

var _ cpu.Stream = (*Generator)(nil)

// Next returns the next dynamic instruction.
func (g *Generator) Next() cpu.Instr {
	if g.runLeft <= 0 {
		g.jump()
	}
	in := cpu.Instr{Kind: cpu.KindALU, IAddr: g.pc}
	g.pc += 4
	g.runLeft--

	r := g.rng.Float64()
	switch {
	case r < g.p.LoadFrac:
		in.Kind = cpu.KindLoad
		in.DAddr = g.dataAddr(false)
	case r < g.p.LoadFrac+g.p.StoreFrac:
		in.Kind = cpu.KindStore
		in.DAddr = g.dataAddr(true)
	}
	return in
}

// jump picks the next function start: usually from the recent set (loops),
// sometimes anywhere in the footprint (the workloads' "complex control
// flow").
func (g *Generator) jump() {
	g.runLeft = g.rng.Geometric(g.p.AvgRun)
	var target uint64
	if len(g.recent) > 0 && g.rng.Bool(g.p.LocalJump) {
		target = g.recent[g.rng.Intn(len(g.recent))]
	} else {
		target = instrBase + uint64(g.rng.Int64n(int64(g.p.InstrFootprint)))&^3
		if len(g.recent) < cap(g.recent) {
			g.recent = append(g.recent, target)
		} else {
			g.recent[g.rIdx] = target
			g.rIdx = (g.rIdx + 1) % cap(g.recent)
		}
	}
	g.pc = target
}

// dataAddr picks a data address. Most accesses stay in the core's small
// local region (stack, locals, connection state — L1-resident); the rest
// split between the shared hot region (the snoop source) and the vast
// private dataset (the memory-bound stream with no reuse).
func (g *Generator) dataAddr(isWrite bool) uint64 {
	base := datasetBase + uint64(g.coreID)*datasetStep
	if g.rng.Bool(g.p.LocalFrac) {
		return base + uint64(g.rng.Int64n(int64(g.p.LocalB)))&^7
	}
	hot := g.rng.Bool(g.p.HotFrac)
	if isWrite {
		hot = g.rng.Bool(g.p.HotWrite)
	}
	if hot {
		return hotBase + uint64(g.rng.Int64n(int64(g.p.HotB)))&^63
	}
	// Stream through the dataset beyond the local region.
	return base + g.p.LocalB + uint64(g.rng.Int64n(int64(g.p.DatasetB)))&^63
}

// InstrRegion returns the shared instruction region (base, size).
func (p Params) InstrRegion() (base, size uint64) { return instrBase, p.InstrFootprint }

// HotRegion returns the shared read-write region (base, size).
func (p Params) HotRegion() (base, size uint64) { return hotBase, p.HotB }

// LocalRegion returns a core's private local region (base, size).
func (p Params) LocalRegion(core int) (base, size uint64) {
	return datasetBase + uint64(core)*datasetStep, p.LocalB
}
