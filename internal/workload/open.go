package workload

import (
	"nocout/internal/stats"
)

// This file defines the open-system side of the workload API: the
// contracts the chip uses to collect per-request latency accounting from
// workloads whose cores are driven by arrival processes instead of
// running closed-loop. The opensys package provides the implementations;
// the chip and the experiment engine depend only on these interfaces.

// OpenStats is one measurement window's request-lifecycle accounting from
// an open-system stream (or the merged aggregate of many): arrival,
// dispatch, completion, and drop counts, the queue-length integral
// sampled at arrival instants (PASTA: Poisson arrivals see time
// averages), and the completed-request latency histogram
// (arrival→completion, in cycles).
type OpenStats struct {
	Arrivals   int64 // requests offered (dropped ones included)
	Dispatched int64 // requests whose first instruction entered the pipeline
	Completed  int64 // requests whose last instruction committed
	Dropped    int64 // requests rejected by a full per-core queue
	QueueSum   int64 // sum of pending-queue lengths sampled at each arrival
	Hist       *stats.LogHist
}

// NewOpenStats returns an empty accumulator with an allocated histogram.
func NewOpenStats() *OpenStats {
	return &OpenStats{Hist: &stats.LogHist{}}
}

// Merge folds other into o (counts add, histograms merge), so per-core
// and per-seed stats combine associatively and commutatively. A nil
// other is a no-op.
func (o *OpenStats) Merge(other *OpenStats) {
	if other == nil {
		return
	}
	o.Arrivals += other.Arrivals
	o.Dispatched += other.Dispatched
	o.Completed += other.Completed
	o.Dropped += other.Dropped
	o.QueueSum += other.QueueSum
	if other.Hist != nil {
		if o.Hist == nil {
			o.Hist = &stats.LogHist{}
		}
		o.Hist.Merge(other.Hist)
	}
}

// MeanQueueLen returns the mean pending-queue length seen by arrivals.
func (o *OpenStats) MeanQueueLen() float64 {
	if o.Arrivals == 0 {
		return 0
	}
	return float64(o.QueueSum) / float64(o.Arrivals)
}

// OpenTracker is implemented by open-system streams. The chip collects
// trackers from the streams it builds, resets them at the warm-up
// boundary (in-flight requests keep their arrival timestamps — a request
// spanning the boundary still measures its true latency), and snapshots
// them into Metrics at the end of the window.
type OpenTracker interface {
	// OpenReset zeroes the measurement counters and histogram without
	// disturbing in-flight request state (end of warm-up).
	OpenReset()
	// OpenSnapshot returns the accounting since the last reset. The
	// histogram pointer references live state: callers must merge or copy,
	// not retain it across further simulation.
	OpenSnapshot() OpenStats
}

// RateScaled is implemented by open-system workloads whose offered load
// is a tunable: WithOfferedLoads sweeps and StudySaturation derive one
// instance per load through it. Rates are mean requests per 1000 cycles
// per active core; derived instances must carry the rate in their Name
// (and fingerprint) so sweep points and campaign cache keys stay
// distinct and rehydratable by name.
type RateScaled interface {
	Workload
	// OfferedLoad reports the configured mean arrival rate.
	OfferedLoad() float64
	// WithOfferedLoad returns a copy configured to rate; the receiver is
	// untouched (registered instances are shared by worker pools).
	WithOfferedLoad(rate float64) Workload
}

// RateScaledOf unwraps decorators (Unlimited) until it finds a
// rate-scalable workload; ok is false for closed-loop sources.
func RateScaledOf(w Workload) (RateScaled, bool) {
	for {
		if rs, ok := w.(RateScaled); ok {
			return rs, true
		}
		u, ok := w.(interface{ Unwrap() Workload })
		if !ok {
			return nil, false
		}
		w = u.Unwrap()
	}
}
