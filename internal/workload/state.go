package workload

import "nocout/internal/ckpt"

// Checkpoint serialization of the stream cursors. A stream's identity
// (its Params, trace, or capture) is structural — the restoring chip
// rebuilds streams from the workload spec — so only the position state
// travels: program counter, run/phase countdowns, the recent-jump set,
// replay indices, and RNG positions.

// SaveState implements ckpt.Saver.
func (g *Generator) SaveState(e *ckpt.Enc) {
	e.U64(g.pc)
	e.Int(g.runLeft)
	e.U64s(g.recent)
	e.Int(g.rIdx)
	e.U64(g.rng.State())
}

// LoadState implements ckpt.Loader.
func (g *Generator) LoadState(d *ckpt.Dec) {
	g.pc = d.U64()
	g.runLeft = d.Int()
	recent := d.U64s()
	rIdx := d.Int()
	if d.Err() != nil {
		return
	}
	if len(recent) > cap(g.recent) {
		d.Corrupt("recent-jump set of %d exceeds capacity %d", len(recent), cap(g.recent))
		return
	}
	if rIdx < 0 || (len(recent) > 0 && rIdx >= cap(g.recent)) || (len(recent) == 0 && rIdx != 0) {
		d.Corrupt("recent-jump index %d out of range", rIdx)
		return
	}
	g.recent = append(g.recent[:0], recent...)
	g.rIdx = rIdx
	g.rng.SetState(d.U64())
}

// SaveState implements ckpt.Saver.
func (s *phasedStream) SaveState(e *ckpt.Enc) {
	e.Int(s.idx)
	e.Int(s.left)
	for _, g := range s.gens {
		g.SaveState(e)
	}
}

// LoadState implements ckpt.Loader.
func (s *phasedStream) LoadState(d *ckpt.Dec) {
	idx := d.Int()
	left := d.Int()
	if d.Err() != nil {
		return
	}
	if idx < 0 || idx >= len(s.gens) || left < 0 {
		d.Corrupt("phase cursor %d/%d out of range (%d phases)", idx, left, len(s.gens))
		return
	}
	s.idx = idx
	s.left = left
	for _, g := range s.gens {
		g.LoadState(d)
	}
}

// SaveState implements ckpt.Saver.
func (r *replay) SaveState(e *ckpt.Enc) { e.Int(r.i) }

// LoadState implements ckpt.Loader.
func (r *replay) LoadState(d *ckpt.Dec) {
	i := d.Int()
	if d.Err() != nil {
		return
	}
	if i < 0 || i >= len(r.t.Instrs) {
		d.Corrupt("trace cursor %d out of range (%d instructions)", i, len(r.t.Instrs))
		return
	}
	r.i = i
}

// SaveState implements ckpt.Saver: a NOC3 replay cursor serializes as a
// (block, offset) pair, so a restore seeks the trace file instead of
// re-reading the stream — O(keyframeEvery × block) work wherever the
// cursor is in a multi-gigabyte recording.
func (r *blockReplay) SaveState(e *ckpt.Enc) {
	e.Int(r.blk)
	e.Int(r.off)
}

// LoadState implements ckpt.Loader. The seek decodes from the block's
// keyframe, so a corrupt-on-disk block surfaces here as a checkpoint
// error, not a mid-run panic.
func (r *blockReplay) LoadState(d *ckpt.Dec) {
	blk := d.Int()
	off := d.Int()
	if d.Err() != nil {
		return
	}
	if blk < 0 || blk >= len(r.t.cores[r.core].blocks) {
		d.Corrupt("trace block cursor %d out of range (%d blocks)", blk, len(r.t.cores[r.core].blocks))
		return
	}
	if off < 0 || off >= r.t.countOf(r.core, blk) {
		d.Corrupt("trace offset cursor %d out of range (block %d holds %d)", off, blk, r.t.countOf(r.core, blk))
		return
	}
	if err := r.seek(blk, off); err != nil {
		d.Corrupt("seeking trace to (%d, %d): %v", blk, off, err)
	}
}

// SaveState implements ckpt.Saver.
func (r *coreReplay) SaveState(e *ckpt.Enc) { e.Int(r.i) }

// LoadState implements ckpt.Loader.
func (r *coreReplay) LoadState(d *ckpt.Dec) {
	i := d.Int()
	if d.Err() != nil {
		return
	}
	if i < 0 || i >= len(r.instrs) {
		d.Corrupt("capture cursor %d out of range (%d instructions)", i, len(r.instrs))
		return
	}
	r.i = i
}
