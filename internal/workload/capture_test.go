package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"nocout/internal/cpu"
)

func TestCaptureRoundTrip(t *testing.T) {
	src := ConsolidatedMix() // heterogeneous: exercises per-core params + members
	cap, err := Record(src, 4, 2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Source != "Consolidated" || cap.Seed != 17 || len(cap.Cores) != 4 {
		t.Fatalf("capture header %+v", cap)
	}

	var buf bytes.Buffer
	if err := cap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cap, back) {
		t.Fatal("capture did not round-trip bit-identically")
	}

	// The replay reproduces the recorded streams and attribution.
	for core := 0; core < 4; core++ {
		ref := src.StreamFor(core, 17)
		st := back.StreamFor(core, 99) // replay ignores the seed
		for i := 0; i < 2000; i++ {
			if got, want := st.Next(), ref.Next(); got != want {
				t.Fatalf("core %d record %d: %+v != %+v", core, i, got, want)
			}
		}
		if back.MemberName(core) != src.MemberName(core) {
			t.Fatalf("core %d member %q != %q", core, back.MemberName(core), src.MemberName(core))
		}
		cp, want := back.CoreParams(core, 5), src.CoreParams(core, 5)
		if cp != want {
			t.Fatalf("core %d params %+v != %+v", core, cp, want)
		}
	}

	// Layout survives: shared regions and per-core locals.
	lay, ref := back.Layout(), src.Layout()
	if lay.Instr != ref.Instr || lay.Hot != ref.Hot {
		t.Fatalf("shared regions: %+v/%+v != %+v/%+v", lay.Instr, lay.Hot, ref.Instr, ref.Hot)
	}
	for core := 0; core < 4; core++ {
		if lay.Local(core) != ref.Local(core) {
			t.Fatalf("core %d local region %+v != %+v", core, lay.Local(core), ref.Local(core))
		}
	}
}

func TestCaptureReplayLoops(t *testing.T) {
	cap, err := Record(Synth(WebSearch), 1, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := cap.StreamFor(0, 1)
	var first [50]cpu.Instr
	for i := range first {
		first[i] = st.Next()
	}
	for round := 0; round < 3; round++ {
		for i := range first {
			if got := st.Next(); got != first[i] {
				t.Fatalf("round %d record %d: %+v != %+v", round, i, got, first[i])
			}
		}
	}
}

func TestCaptureMaxCoresClamp(t *testing.T) {
	cap, err := Record(Synth(DataServing), 4, 10, 1) // source scales to 64
	if err != nil {
		t.Fatal(err)
	}
	if cap.MaxCores() != 4 {
		t.Fatalf("MaxCores = %d, must clamp to the 4 recorded cores", cap.MaxCores())
	}
	// A 2-core source recorded onto more cores keeps its software limit.
	ws, err := Record(Synth(WebSearch), 32, 10, 1) // source scales to 16
	if err != nil {
		t.Fatal(err)
	}
	if ws.ScaleLimit != 16 || ws.MaxCores() != 16 {
		t.Fatalf("scale limit = %d, MaxCores = %d, want 16", ws.ScaleLimit, ws.MaxCores())
	}
	// Cores beyond the recording reuse streams modulo the recorded count.
	a, b := cap.StreamFor(6, 1), cap.StreamFor(2, 1)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("modulo stream reuse broken")
		}
	}
}

func TestCaptureOfUnlimitedWorkloadRoundTrips(t *testing.T) {
	// An Unlimited-wrapped source reports MaxInt; the recording must
	// clamp the stored limit so the file stays decodable.
	cap, err := Record(Unlimited(Synth(WebSearch)), 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cap.ScaleLimit != 4 {
		t.Fatalf("recorded scale limit = %d, want the 4 recorded cores", cap.ScaleLimit)
	}
	var buf bytes.Buffer
	if err := cap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCapture(&buf)
	if err != nil {
		t.Fatalf("capture of an unlimited workload must decode: %v", err)
	}
	if back.MaxCores() != 4 {
		t.Fatalf("MaxCores = %d", back.MaxCores())
	}
}

func TestCaptureSaveLoad(t *testing.T) {
	cap, err := Record(Synth(SATSolver), 2, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sat.noctrace")
	if err := cap.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cap, back) {
		t.Fatal("file round-trip lost data")
	}
	if _, err := LoadCapture(filepath.Join(t.TempDir(), "missing.noctrace")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRecordValidation(t *testing.T) {
	if _, err := Record(Synth(DataServing), 0, 10, 1); err == nil {
		t.Fatal("zero cores must error")
	}
	if _, err := Record(Synth(DataServing), 1, 0, 1); err == nil {
		t.Fatal("zero instructions must error")
	}
	if err := (&Capture{}).Write(&bytes.Buffer{}); err == nil {
		t.Fatal("writing an empty capture must error")
	}
}

// TestReadCaptureRejectsCorruption drives the decoder through the main
// corruption classes: wrong magic, truncation at every byte boundary,
// and implausible decoded pipeline parameters. None may panic.
func TestReadCaptureRejectsCorruption(t *testing.T) {
	cap, err := Record(Synth(MapReduceW), 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := ReadCapture(bytes.NewReader([]byte("NOC1....."))); err == nil {
		t.Fatal("NOC1 magic must be rejected by the capture reader")
	}
	for cut := 0; cut < len(valid); cut += 17 {
		if _, err := ReadCapture(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}

	// Corrupt the recorded BaseCPI to NaN: the decoder must reject the
	// parameters rather than hand the cpu model a panic.
	bad := *cap
	bad.Cores = append([]CoreCapture(nil), cap.Cores...)
	bad.Cores[0].Params.BaseCPI = math.NaN()
	buf.Reset()
	if err := bad.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCapture(&buf); err == nil {
		t.Fatal("NaN base CPI must be rejected")
	}
}
