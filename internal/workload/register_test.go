package workload

import "testing"

func TestRegister(t *testing.T) {
	defer func() { registered = nil }()

	if err := Register(Params{}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := Register(Params{Name: "Web Search"}); err == nil {
		t.Fatal("duplicate of a builtin must be rejected")
	}

	p := DataServing
	p.Name = "Key-Value Store"
	p.MaxCores = 0 // should default
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	if err := Register(p); err == nil {
		t.Fatal("duplicate of a registered workload must be rejected")
	}

	got, err := ByName("Key-Value Store")
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxCores != 64 {
		t.Fatalf("MaxCores should default to 64, got %d", got.MaxCores)
	}
	all := All()
	if all[len(all)-1].Name != "Key-Value Store" {
		t.Fatalf("registered workload missing from All(): %v", all)
	}
	if len(all) != len(Builtin())+1 {
		t.Fatalf("All() = %d workloads", len(all))
	}
}
