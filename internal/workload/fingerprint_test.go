package workload

import (
	"bytes"
	"testing"
)

func TestFingerprintFamilies(t *testing.T) {
	fp := func(w Workload) []byte {
		t.Helper()
		b, err := Fingerprint(w)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Deterministic and calibration-sensitive for synthetics.
	ws := Synth(WebSearch)
	if !bytes.Equal(fp(ws), fp(Synth(WebSearch))) {
		t.Fatal("synthetic fingerprint not deterministic")
	}
	tweaked := WebSearch
	tweaked.BaseCPI += 0.01
	if bytes.Equal(fp(ws), fp(Synth(tweaked))) {
		t.Fatal("calibration change must change the fingerprint")
	}
	// Aliases are metadata, not behaviour.
	if !bytes.Equal(fp(ws), fp(Synth(WebSearch, "extra-alias"))) {
		t.Fatal("aliases must not change the fingerprint")
	}

	// Decorators change identity: an unlimited run caches separately.
	if bytes.Equal(fp(ws), fp(Unlimited(ws))) {
		t.Fatal("Unlimited must change the fingerprint")
	}

	// Mix assignment is behaviour.
	m := NewMix("m", WebSearch, DataServing)
	if bytes.Equal(fp(m), fp(m.WithAssignment([]int{1, 0}))) {
		t.Fatal("mix assignment must change the fingerprint")
	}

	// Phased schedule length is behaviour.
	p1 := NewPhased("p", Phase{Params: WebSearch, Instrs: 100})
	p2 := NewPhased("p", Phase{Params: WebSearch, Instrs: 200})
	if bytes.Equal(fp(p1), fp(p2)) {
		t.Fatal("phase length must change the fingerprint")
	}

	// Captures fingerprint by content, not name: two recordings of the
	// same source at different lengths differ.
	c1, err := Record(ws, 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Record(ws, 2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fp(c1), fp(c2)) {
		t.Fatal("capture content must drive the fingerprint")
	}
	if !bytes.Equal(fp(c1), fp(c1)) {
		t.Fatal("capture fingerprint not deterministic")
	}

	// Opaque implementations without Fingerprinter are a hard error.
	if _, err := Fingerprint(opaqueWorkload{Workload: ws}); err == nil {
		t.Fatal("unknown implementation without Fingerprinter must error")
	}
	// ...and Fingerprinter opts back in.
	b, err := Fingerprint(fingerprinted{opaqueWorkload{Workload: ws}})
	if err != nil || len(b) == 0 {
		t.Fatalf("Fingerprinter path = (%q, %v)", b, err)
	}
}

type opaqueWorkload struct{ Workload }

type fingerprinted struct{ opaqueWorkload }

func (fingerprinted) WorkloadFingerprint() ([]byte, error) { return []byte("me"), nil }
