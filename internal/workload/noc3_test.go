package workload

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"nocout/internal/ckpt"
	"nocout/internal/cpu"
)

// writeNOC3Bytes records w into an in-memory NOC3 container.
func writeNOC3Bytes(t *testing.T, w Workload, cores, perCore int, seed uint64, blockLen int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteNOC3(&buf, w, cores, perCore, seed, blockLen); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func parseNOC3(t *testing.T, data []byte) *TraceFile {
	t.Helper()
	tf, err := ParseTraceBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestNOC3RoundTrip(t *testing.T) {
	src := ConsolidatedMix() // heterogeneous: exercises per-core params + members
	const cores, perCore, seed = 4, 2000, 17
	tf := parseNOC3(t, writeNOC3Bytes(t, src, cores, perCore, seed, 128))
	if err := tf.Verify(); err != nil {
		t.Fatal(err)
	}
	if tf.Name() != "Consolidated" || tf.Seed() != seed || len(tf.cores) != cores {
		t.Fatalf("trace header: name %q seed %d cores %d", tf.Name(), tf.Seed(), len(tf.cores))
	}

	for core := 0; core < cores; core++ {
		ref := src.StreamFor(core, seed)
		st := tf.StreamFor(core, 99) // replay ignores the seed
		for i := 0; i < perCore; i++ {
			if got, want := st.Next(), ref.Next(); got != want {
				t.Fatalf("core %d record %d: %+v != %+v", core, i, got, want)
			}
		}
		if tf.MemberName(core) != src.MemberName(core) {
			t.Fatalf("core %d member %q != %q", core, tf.MemberName(core), src.MemberName(core))
		}
		if cp, want := tf.CoreParams(core, 5), src.CoreParams(core, 5); cp != want {
			t.Fatalf("core %d params %+v != %+v", core, cp, want)
		}
	}

	lay, ref := tf.Layout(), src.Layout()
	if lay.Instr != ref.Instr || lay.Hot != ref.Hot {
		t.Fatalf("shared regions: %+v/%+v != %+v/%+v", lay.Instr, lay.Hot, ref.Instr, ref.Hot)
	}
	for core := 0; core < cores; core++ {
		if lay.Local(core) != ref.Local(core) {
			t.Fatalf("core %d local region %+v != %+v", core, lay.Local(core), ref.Local(core))
		}
	}
}

func TestNOC3ReplayLoops(t *testing.T) {
	// 50 instructions at block length 16: the loop crosses a partial last
	// block and the wrap back to block 0.
	tf := parseNOC3(t, writeNOC3Bytes(t, Synth(WebSearch), 1, 50, 1, 16))
	st := tf.StreamFor(0, 1)
	var first [50]cpu.Instr
	for i := range first {
		first[i] = st.Next()
	}
	for round := 0; round < 3; round++ {
		for i := range first {
			if got := st.Next(); got != first[i] {
				t.Fatalf("round %d record %d: %+v != %+v", round, i, got, first[i])
			}
		}
	}
}

func TestNOC3MaxCoresClamp(t *testing.T) {
	tf := parseNOC3(t, writeNOC3Bytes(t, Synth(DataServing), 4, 10, 1, 0)) // source scales to 64
	if tf.MaxCores() != 4 {
		t.Fatalf("MaxCores = %d, must clamp to the 4 recorded cores", tf.MaxCores())
	}
	ws := parseNOC3(t, writeNOC3Bytes(t, Synth(WebSearch), 32, 10, 1, 0)) // source scales to 16
	if ws.MaxCores() != 16 {
		t.Fatalf("MaxCores = %d, want 16", ws.MaxCores())
	}
	// Cores beyond the recording reuse streams modulo the recorded count.
	a, b := tf.StreamFor(6, 1), tf.StreamFor(2, 1)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("modulo stream reuse broken")
		}
	}
}

// TestNOC3FingerprintMatchesNOC2 is the cache-survival guarantee: the
// same recording fingerprints identically whether it lives in a NOC2
// capture, a streamed NOC3 recording, or a converted NOC3 file — so
// Point.Key and checkpoint prefixes are format-agnostic.
func TestNOC3FingerprintMatchesNOC2(t *testing.T) {
	src := ConsolidatedMix()
	const cores, perCore, seed = 3, 700, 9

	cap, err := Record(src, cores, perCore, seed)
	if err != nil {
		t.Fatal(err)
	}
	fpNOC2, err := Fingerprint(cap)
	if err != nil {
		t.Fatal(err)
	}

	recorded := parseNOC3(t, writeNOC3Bytes(t, src, cores, perCore, seed, 64))
	fpNOC3, err := Fingerprint(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fpNOC2, fpNOC3) {
		t.Fatalf("fingerprint changed across formats:\n NOC2 %s\n NOC3 %s", fpNOC2, fpNOC3)
	}

	var conv bytes.Buffer
	if err := ConvertNOC3(&conv, cap, 64); err != nil {
		t.Fatal(err)
	}
	converted := parseNOC3(t, conv.Bytes())
	fpConv, err := Fingerprint(converted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fpNOC2, fpConv) {
		t.Fatalf("conversion changed the fingerprint:\n NOC2 %s\n conv %s", fpNOC2, fpConv)
	}

	// Recording a workload directly and converting its NOC2 capture are
	// the same deterministic encoder over the same streams: the files
	// must be byte-identical.
	if !bytes.Equal(writeNOC3Bytes(t, src, cores, perCore, seed, 64), conv.Bytes()) {
		t.Fatal("direct NOC3 recording and NOC2->NOC3 conversion disagree byte-for-byte")
	}
}

// TestNOC3SeekMatchesSequential is the block-boundary property test:
// restoring a cursor at any (block, offset) — including mid-block and
// phase-predicted blocks — must continue exactly where a sequential
// replay would.
func TestNOC3SeekMatchesSequential(t *testing.T) {
	src := MapReducePhased() // phase structure exercises both predictors
	const perCore = 1100     // 35 blocks of 32: partial tail + several keyframe groups
	tf := parseNOC3(t, writeNOC3Bytes(t, src, 2, perCore, 5, 32))

	for core := 0; core < 2; core++ {
		seq := make([]cpu.Instr, perCore)
		st := tf.StreamFor(core, 1)
		for i := range seq {
			seq[i] = st.Next()
		}
		for _, pos := range []struct{ blk, off int }{
			{0, 0}, {0, 31}, {1, 0}, {7, 5}, {8, 0}, {9, 17}, {15, 31}, {16, 0}, {33, 12}, {34, 0}, {34, 11},
		} {
			r := tf.newReplay(core)
			if err := r.seek(pos.blk, pos.off); err != nil {
				t.Fatalf("core %d seek(%d, %d): %v", core, pos.blk, pos.off, err)
			}
			at := pos.blk*32 + pos.off
			for k := 0; k < 100; k++ {
				want := seq[(at+k)%perCore]
				if got := r.Next(); got != want {
					t.Fatalf("core %d seek(%d, %d) record %d: %+v != %+v", core, pos.blk, pos.off, k, got, want)
				}
			}
		}
	}
}

// periodic is a test workload whose stream repeats with a fixed period,
// the structure the phase predictor exists for.
type periodic struct{ period int }

func (p periodic) Name() string      { return "periodic" }
func (p periodic) Aliases() []string { return nil }
func (p periodic) MaxCores() int     { return 64 }
func (p periodic) CoreParams(coreID int, seed uint64) cpu.Params {
	return cpu.Params{Width: 2, ROB: 32, BaseCPI: 0.7, DepChance: 0.1}
}
func (p periodic) Layout() Layout {
	return Layout{Local: func(int) Region { return Region{} }}
}
func (p periodic) StreamFor(coreID int, seed uint64) cpu.Stream {
	return &periodicStream{period: p.period}
}

type periodicStream struct{ period, i int }

func (s *periodicStream) Next() cpu.Instr {
	// A jumpy address pattern within the period (expensive for the
	// previous-instruction predictor) that repeats exactly across periods
	// (free for the phase predictor).
	k := s.i % s.period
	s.i++
	addr := uint64(k*k*2654435761) % (1 << 30)
	return cpu.Instr{Kind: cpu.KindALU, IAddr: addr}
}

// TestNOC3PhasePredictorWins: when the block length equals the stream's
// period, every non-keyframe block is identical to its predecessor and
// the phase predictor must win — and compress far better than NOC2's
// previous-instruction delta alone.
func TestNOC3PhasePredictorWins(t *testing.T) {
	const blockLen = 256
	data := writeNOC3Bytes(t, periodic{period: blockLen}, 1, blockLen*32, 1, blockLen)
	tf := parseNOC3(t, data)
	if err := tf.Verify(); err != nil {
		t.Fatal(err)
	}
	st := tf.Stats()
	// 32 blocks, keyframes at 0, 8, 16, 24: 28 phase-predicted.
	if st.PredPhase != 28 || st.PredPrev != 4 {
		t.Fatalf("predictor split %d phase / %d prev, want 28 / 4", st.PredPhase, st.PredPrev)
	}

	cap, err := Record(periodic{period: blockLen}, 1, blockLen*32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var noc2 bytes.Buffer
	if err := cap.Write(&noc2); err != nil {
		t.Fatal(err)
	}
	if len(data) >= noc2.Len() {
		t.Fatalf("NOC3 (%d bytes) did not beat NOC2 (%d bytes) on a periodic stream", len(data), noc2.Len())
	}
}

// TestNOC3RecordBoundedMemory is the satellite regression test for the
// recording path: streaming a multi-million-instruction workload to disk
// must allocate O(block), not O(trace).
func TestNOC3RecordBoundedMemory(t *testing.T) {
	const cores, perCore = 2, 1 << 21 // 4.2M instructions ≈ 100MB if materialized
	w := Synth(DataServing)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := WriteNOC3(discardWriter{}, w, cores, perCore, 1, 0); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	// Generous ceiling: block buffers + flate state + per-core stream
	// construction, still 6x under materializing even one core's stream.
	const ceiling = 8 << 20
	if alloc > ceiling {
		t.Fatalf("recording %d instructions allocated %d bytes, ceiling %d", cores*perCore, alloc, ceiling)
	}
}

// discardWriter is io.Discard without the io.ReaderFrom fast path, so
// writes land in the recorder's own code paths.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestNOC3ReplayBoundedMemory is the acceptance criterion: replaying a
// multi-million-instruction NOC3 recording keeps memory O(cores × block)
// — the full stream here is ~100MB decoded, the ceiling is 8MB.
func TestNOC3ReplayBoundedMemory(t *testing.T) {
	const cores, perCore = 2, 1 << 21
	path := filepath.Join(t.TempDir(), "big.noctrace")
	if err := RecordFile(path, Synth(DataServing), cores, perCore, 1); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	tf, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var sink cpu.Instr
	for core := 0; core < cores; core++ {
		st := tf.StreamFor(core, 1)
		for i := 0; i < perCore; i++ {
			sink = st.Next()
		}
	}
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	const ceiling = 8 << 20
	if alloc > ceiling {
		t.Fatalf("replaying %d instructions allocated %d bytes, ceiling %d", cores*perCore, alloc, ceiling)
	}
	_ = sink
}

// corruptBlockPred flips core 0 block blk's predictor byte to pred and
// re-stamps the section CRC, producing a structurally valid file with a
// hostile predictor id.
func corruptBlockPred(t *testing.T, data []byte, tf *TraceFile, blk int, pred byte) []byte {
	t.Helper()
	ref := tf.cores[0].blocks[blk]
	out := append([]byte(nil), data...)
	sect := out[ref.off : ref.off+int64(ref.size)]
	// Walk the section header: kind uvarint, length uvarint, 4-byte CRC,
	// then payload = core uvarint, idx uvarint, pred byte.
	i := 0
	for sect[i]&0x80 != 0 {
		i++
	}
	i++ // kind
	for sect[i]&0x80 != 0 {
		i++
	}
	i++ // length
	crcAt := i
	i += 4
	payload := sect[i:]
	j := 0
	for payload[j]&0x80 != 0 {
		j++
	}
	j++ // core
	for payload[j]&0x80 != 0 {
		j++
	}
	j++ // idx
	payload[j] = pred
	crc := crc32.ChecksumIEEE(payload)
	sect[crcAt] = byte(crc)
	sect[crcAt+1] = byte(crc >> 8)
	sect[crcAt+2] = byte(crc >> 16)
	sect[crcAt+3] = byte(crc >> 24)
	return out
}

// TestNOC3RejectsCorruption drives the reader through the corruption
// classes the fuzz target hunts: truncation everywhere, trailer and
// index damage, bad CRCs, and hostile predictor ids. Parse+Verify must
// error cleanly, never panic, never over-allocate.
func TestNOC3RejectsCorruption(t *testing.T) {
	data := writeNOC3Bytes(t, MapReducePhased(), 2, 600, 3, 32)
	tf := parseNOC3(t, data)
	if err := tf.Verify(); err != nil {
		t.Fatal(err)
	}

	check := func(name string, b []byte) {
		t.Helper()
		bad, err := ParseTraceBytes(b)
		if err == nil {
			err = bad.Verify()
		}
		if err == nil {
			t.Fatalf("%s: corrupt container accepted", name)
		}
	}

	for cut := 0; cut < len(data); cut += 13 {
		check(fmt.Sprintf("truncated at %d", cut), data[:cut])
	}

	bad := append([]byte(nil), data...)
	copy(bad[len(bad)-4:], "NOPE")
	check("trailer magic", bad)

	bad = append([]byte(nil), data...)
	bad[len(bad)-12] ^= 0xff // index offset low byte
	check("index offset", bad)

	// Flip one byte in every 97th position (covers header, blocks, and
	// index payload bytes; CRCs catch what structure checks don't).
	for pos := 4; pos < len(data); pos += 97 {
		bad = append([]byte(nil), data...)
		bad[pos] ^= 0x20
		b, err := ParseTraceBytes(bad)
		if err != nil {
			continue
		}
		// A flip the index/header survived (e.g. inside a block payload)
		// must be caught by the checked decode.
		if err := b.Verify(); err == nil && !bytes.Equal(bad, data) {
			t.Fatalf("byte flip at %d accepted by Parse+Verify", pos)
		}
	}

	// Hostile predictor ids: phase prediction on a keyframe, and an
	// undefined id — both with valid CRCs.
	check("phase predictor on keyframe", corruptBlockPred(t, data, tf, 8, predPhase))
	check("undefined predictor", corruptBlockPred(t, data, tf, 3, 7))
}

// TestNOC3CursorSaveRestore checks the (block, offset) checkpoint cursor:
// a restored stream continues bit-identically, and corrupt cursors are
// rejected as checkpoint corruption, not panics.
func TestNOC3CursorSaveRestore(t *testing.T) {
	tf := parseNOC3(t, writeNOC3Bytes(t, MapReducePhased(), 1, 500, 7, 32))
	st := tf.StreamFor(0, 1).(*blockReplay)
	for i := 0; i < 137; i++ {
		st.Next()
	}
	var e ckpt.Enc
	st.SaveState(&e)

	restored := tf.StreamFor(0, 1).(*blockReplay)
	d := ckpt.NewDec(e.Bytes())
	restored.LoadState(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if got, want := restored.Next(), st.Next(); got != want {
			t.Fatalf("restored record %d: %+v != %+v", i, got, want)
		}
	}

	for _, bad := range []struct {
		name     string
		blk, off int
	}{
		{"block out of range", 99, 0},
		{"negative block", -1, 0},
		{"offset out of range", 0, 32},
		{"offset past short tail", 15, 31}, // block 15 holds 500-15*32=20
	} {
		var be ckpt.Enc
		be.Int(bad.blk)
		be.Int(bad.off)
		bd := ckpt.NewDec(be.Bytes())
		tf.StreamFor(0, 1).(*blockReplay).LoadState(bd)
		if bd.Err() == nil {
			t.Fatalf("%s: corrupt cursor accepted", bad.name)
		}
	}
}

// TestLoadTraceDispatch: the "trace:" scheme must open both container
// formats transparently and reject junk with a useful error.
func TestLoadTraceDispatch(t *testing.T) {
	dir := t.TempDir()

	cap, err := Record(Synth(SATSolver), 2, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	noc2 := filepath.Join(dir, "sat2.noctrace")
	if err := cap.Save(noc2); err != nil {
		t.Fatal(err)
	}
	w, err := LoadTrace(noc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(*Capture); !ok {
		t.Fatalf("NOC2 file loaded as %T", w)
	}

	noc3 := filepath.Join(dir, "sat3.noctrace")
	if err := RecordFile(noc3, Synth(SATSolver), 2, 100, 3); err != nil {
		t.Fatal(err)
	}
	w, err = LoadTrace(noc3)
	if err != nil {
		t.Fatal(err)
	}
	tf, ok := w.(*TraceFile)
	if !ok {
		t.Fatalf("NOC3 file loaded as %T", w)
	}
	defer tf.Close()

	// Both resolve through Parse and replay the same streams.
	pw, err := Parse("trace:" + noc3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pw.StreamFor(1, 1), cap.StreamFor(1, 1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("trace: scheme replay diverged from the NOC2 capture")
		}
	}

	junk := filepath.Join(dir, "junk.noctrace")
	if err := os.WriteFile(junk, []byte("neither format"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(junk); err == nil {
		t.Fatal("junk file must error")
	}
}

// TestInspectTrace covers the -trace-info plumbing for both formats.
func TestInspectTrace(t *testing.T) {
	dir := t.TempDir()
	cap, err := Record(Synth(WebSearch), 2, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	noc2 := filepath.Join(dir, "ws2.noctrace")
	if err := cap.Save(noc2); err != nil {
		t.Fatal(err)
	}
	noc3 := filepath.Join(dir, "ws3.noctrace")
	if err := ConvertFile(noc2, noc3); err != nil {
		t.Fatal(err)
	}

	i2, err := InspectTrace(noc2)
	if err != nil {
		t.Fatal(err)
	}
	i3, err := InspectTrace(noc3)
	if err != nil {
		t.Fatal(err)
	}
	if i2.Format != "NOC2" || i3.Format != "NOC3" {
		t.Fatalf("formats %q / %q", i2.Format, i3.Format)
	}
	if i2.Cores != 2 || i3.Cores != 2 || i2.Instrs != 600 || i3.Instrs != 600 {
		t.Fatalf("geometry: %+v vs %+v", i2, i3)
	}
	if i2.Fingerprint != i3.Fingerprint || i2.Fingerprint == "" {
		t.Fatalf("fingerprints %q / %q must match across formats", i2.Fingerprint, i3.Fingerprint)
	}
	if i3.Blocks == 0 || i3.BlockLen != DefaultBlockLen || i3.IndexSectionB == 0 || i3.HeaderSectionB == 0 {
		t.Fatalf("NOC3 section accounting empty: %+v", i3)
	}
	var text bytes.Buffer
	i3.WriteText(&text)
	if !bytes.Contains(text.Bytes(), []byte("NOC3")) {
		t.Fatalf("text report missing format: %s", text.String())
	}
}

// TestNOC3RecordRejectsIdle: open-system streams answer KindIdle, which
// has no record encoding; the streaming recorder must refuse it like
// Record does.
func TestNOC3RecordRejectsIdle(t *testing.T) {
	if err := WriteNOC3(discardWriter{}, idleWorkload{}, 1, 10, 1, 0); err == nil {
		t.Fatal("recording a KindIdle stream must error")
	}
	if _, err := Record(idleWorkload{}, 1, 10, 1); err == nil {
		t.Fatal("Record of a KindIdle stream must error")
	}
}

type idleWorkload struct{}

func (idleWorkload) Name() string      { return "idle" }
func (idleWorkload) Aliases() []string { return nil }
func (idleWorkload) MaxCores() int     { return 1 }
func (idleWorkload) CoreParams(int, uint64) cpu.Params {
	return cpu.Params{Width: 2, ROB: 32, BaseCPI: 0.7, DepChance: 0.1}
}
func (idleWorkload) Layout() Layout {
	return Layout{Local: func(int) Region { return Region{} }}
}
func (idleWorkload) StreamFor(int, uint64) cpu.Stream {
	return idleStream{}
}

type idleStream struct{}

func (idleStream) Next() cpu.Instr { return cpu.Instr{Kind: cpu.KindIdle} }
