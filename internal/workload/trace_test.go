package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"nocout/internal/cpu"
)

func TestTraceRoundTrip(t *testing.T) {
	g := NewGenerator(DataServing, 5, 17)
	ref := NewGenerator(DataServing, 5, 17)

	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("trace length = %d, want %d", tr.Len(), n)
	}
	for i, in := range tr.Instrs {
		want := ref.Next()
		if in != want {
			t.Fatalf("record %d: %+v != %+v", i, in, want)
		}
	}
}

func TestTraceReplayLoops(t *testing.T) {
	tr := &Trace{Instrs: []cpu.Instr{
		{Kind: cpu.KindALU, IAddr: 0},
		{Kind: cpu.KindLoad, IAddr: 4, DAddr: 100},
	}}
	s := tr.Stream()
	for round := 0; round < 3; round++ {
		if got := s.Next(); got != tr.Instrs[0] {
			t.Fatalf("round %d first = %+v", round, got)
		}
		if got := s.Next(); got != tr.Instrs[1] {
			t.Fatalf("round %d second = %+v", round, got)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must error")
	}
	// Truncated body.
	g := NewGenerator(WebSearch, 0, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace must error")
	}
}

func TestEmptyTracePanicsOnReplay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{}).Stream()
}

func TestTracePropertyArbitraryStreams(t *testing.T) {
	// Any synthetic stream round-trips exactly.
	err := quick.Check(func(seed uint64, core uint8, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		g := NewGenerator(MapReduceW, int(core%64), seed)
		ref := NewGenerator(MapReduceW, int(core%64), seed)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, g, n); err != nil {
			return false
		}
		tr, err := ReadTrace(&buf)
		if err != nil || tr.Len() != n {
			return false
		}
		for _, in := range tr.Instrs {
			if in != ref.Next() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
