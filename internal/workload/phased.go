package workload

import (
	"fmt"

	"nocout/internal/cpu"
)

// Phased is a deterministic time-varying workload: every core cycles
// through a fixed schedule of phases, each a synthetic calibration run
// for a set number of dynamic instructions — the MapReduce map→shuffle
// alternation is the canonical instance. The schedule is positional
// (instruction counts, not wall cycles), so it is identical for any
// interconnect or quality and the streams stay bit-deterministic.
type Phased struct {
	name    string
	aliases []string
	phases  []Phase
}

// Phase is one stage of a phased schedule.
type Phase struct {
	Params Params
	// Instrs is the phase length in dynamic instructions per core.
	Instrs int
}

// NewPhased builds a phased workload cycling through the schedule.
func NewPhased(name string, phases ...Phase) *Phased {
	if name == "" {
		panic("workload: NewPhased needs a name")
	}
	if len(phases) == 0 {
		panic("workload: NewPhased needs at least one phase")
	}
	for i, ph := range phases {
		if ph.Instrs <= 0 {
			panic(fmt.Sprintf("workload: phase %d (%s) needs a positive instruction count", i, ph.Params.Name))
		}
	}
	return &Phased{name: name, phases: phases}
}

// WithAliases returns a copy of the workload with extra CLI spellings;
// the receiver is untouched, so deriving from a registered instance
// (shared and read concurrently by worker pools) is safe.
func (p *Phased) WithAliases(aliases ...string) *Phased {
	n := *p
	n.aliases = append(append([]string(nil), p.aliases...), aliases...)
	return &n
}

// Phases returns the schedule.
func (p *Phased) Phases() []Phase { return p.phases }

// Name implements Workload.
func (p *Phased) Name() string { return p.name }

// Aliases implements Workload.
func (p *Phased) Aliases() []string { return p.aliases }

// MaxCores implements Workload: the schedule scales only as far as its
// least scalable phase.
func (p *Phased) MaxCores() int {
	members := make([]Params, len(p.phases))
	for i, ph := range p.phases {
		members[i] = ph.Params
	}
	return minScaleLimit(members)
}

// CoreParams implements Workload. The pipeline's ILP/MLP knobs cannot
// change mid-run (they are core construction parameters), so the phased
// core runs a schedule-weighted blend of its phases' BaseCPI and
// DepChance; the memory behaviour — footprints, fractions, regions —
// is what actually varies phase by phase.
func (p *Phased) CoreParams(coreID int, seed uint64) cpu.Params {
	var cpi, dep, weight float64
	for _, ph := range p.phases {
		w := float64(ph.Instrs)
		cpi += ph.Params.BaseCPI * w
		dep += ph.Params.DepChance * w
		weight += w
	}
	cp := cpu.DefaultParams()
	cp.BaseCPI = cpi / weight
	cp.DepChance = dep / weight
	cp.Seed = seed
	return cp
}

// phaseSeedSalt decorrelates the per-phase generators so two phases with
// identical calibrations still produce distinct streams.
const phaseSeedSalt = 0x9E3779B97F4A7C15

// StreamFor implements Workload.
func (p *Phased) StreamFor(coreID int, seed uint64) cpu.Stream {
	gens := make([]*Generator, len(p.phases))
	for i, ph := range p.phases {
		gens[i] = NewGenerator(ph.Params, coreID, seed+uint64(i)*phaseSeedSalt)
	}
	return &phasedStream{phases: p.phases, gens: gens, left: p.phases[0].Instrs}
}

// Layout implements Workload: shared and local regions cover the largest
// phase so every phase's steady state is prewarmed.
func (p *Phased) Layout() Layout {
	instr, hot, local := uint64(0), uint64(0), uint64(0)
	for _, ph := range p.phases {
		instr = max(instr, ph.Params.InstrFootprint)
		hot = max(hot, ph.Params.HotB)
		local = max(local, ph.Params.LocalB)
	}
	return Layout{
		Instr: Region{Base: instrBase, Size: instr},
		Hot:   Region{Base: hotBase, Size: hot},
		Local: func(core int) Region {
			base, _ := p.phases[0].Params.LocalRegion(core)
			return Region{Base: base, Size: local}
		},
	}
}

// phasedStream cycles through the schedule's generators.
type phasedStream struct {
	phases []Phase
	gens   []*Generator
	idx    int
	left   int
}

// Next implements cpu.Stream.
func (s *phasedStream) Next() cpu.Instr {
	if s.left == 0 {
		s.idx = (s.idx + 1) % len(s.gens)
		s.left = s.phases[s.idx].Instrs
	}
	s.left--
	return s.gens[s.idx].Next()
}

// MapReducePhased is the registered example schedule: MapReduce
// alternating a compute-heavy map phase (the MapReduce-C calibration)
// with a data-movement shuffle phase (the MapReduce-W calibration),
// 30k instructions each.
func MapReducePhased() *Phased {
	return NewPhased("MapReduce-Phased",
		Phase{Params: MapReduceC, Instrs: 30000},
		Phase{Params: MapReduceW, Instrs: 30000},
	).WithAliases("phased")
}
