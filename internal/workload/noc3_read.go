package workload

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"nocout/internal/cpu"
)

// The NOC3 reader: a TraceFile indexes a container's sections once, then
// replays each core's stream by decoding one block at a time through
// reusable buffers — replay memory is O(cores × blockLen) for any trace
// length, and a (block, offset) cursor seek decodes at most keyframeEvery
// blocks. The structural layer (magic, trailer, section headers, index,
// header metadata, block geometry) is fully validated at open; block
// payloads are CRC-checked and decoded lazily as replay reaches them, and
// Verify walks every payload with the same checked decoder for callers
// that want whole-file integrity up front.

// Reader-side caps beyond the shared capture caps.
const (
	maxHeaderSectionBytes = 1 << 23 // source + 4096 cores of metadata fits easily
	maxIndexSectionBytes  = 1 << 26 // ~3M block entries
)

// blockRef locates one block section in the file.
type blockRef struct {
	off  int64
	size int // total section bytes: kind + length + crc + payload
}

// traceCore is one core's identity and block map.
type traceCore struct {
	meta   coreMeta
	blocks []blockRef
}

// TraceStats aggregates the index section's compression accounting.
type TraceStats struct {
	Blocks            int    // block sections in the file
	PredPrev          uint64 // blocks encoded with the previous-instruction predictor
	PredPhase         uint64 // blocks encoded with the same-offset-in-previous-block predictor
	RawResidualBytes  uint64 // residual bytes before deflate
	BlockSectionBytes uint64 // on-disk block section bytes (headers + compressed payloads)
}

// TraceFile is an opened NOC3 container: a Workload (and MemberMapper)
// whose streams decode blocks on demand instead of materializing the
// recording. It is safe for concurrent use — StreamFor hands out
// independent cursors over the shared (concurrency-safe) io.ReaderAt —
// and holds the underlying file open for its lifetime; Close releases it.
type TraceFile struct {
	path   string
	r      io.ReaderAt
	size   int64
	closer io.Closer

	hdr      captureHeader
	blockLen int
	cores    []traceCore
	fp       [sha256.Size]byte
	stats    TraceStats
	headerSz int // header section bytes, for Inspect
	indexSz  int // index section bytes, for Inspect
}

// OpenTraceFile opens and indexes a NOC3 trace file. The file handle
// stays open for lazy block reads; Close it when the workload is done
// (the "trace:<path>" scheme keeps it open for the process lifetime,
// like any other resolved workload).
func OpenTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	t, err := newTraceFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	t.path = path
	t.closer = f
	return t, nil
}

// ParseTraceBytes indexes an in-memory NOC3 container (the fuzz and
// inspection entry point).
func ParseTraceBytes(data []byte) (*TraceFile, error) {
	return newTraceFile(bytes.NewReader(data), int64(len(data)))
}

// Close releases the underlying file, if any. Streams handed out by
// StreamFor must not be used afterwards.
func (t *TraceFile) Close() error {
	if t.closer == nil {
		return nil
	}
	return t.closer.Close()
}

// errNotNOC3 marks inputs without the NOC3 magic.
var errNotNOC3 = errors.New("not a NOC3 trace")

// LoadTrace opens a trace file in either container format — it is how
// the "trace:<path>" workload scheme resolves. NOC3 files open as a lazy
// TraceFile (O(block) replay memory); NOC2 files load whole through the
// compatibility reader, exactly as before the NOC3 format existed.
func LoadTrace(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	var magic [4]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr == nil && magic == noc3Magic {
		return OpenTraceFile(path)
	}
	// Anything else — including short files — goes to the NOC2 reader,
	// whose errors name the format expectations.
	return LoadCapture(path)
}

// newTraceFile parses and validates the container structure: trailer,
// index section, header section, and the block geometry they describe.
// Block payloads are not read here.
func newTraceFile(r io.ReaderAt, size int64) (*TraceFile, error) {
	var head [4 + binary.MaxVarintLen64]byte
	if size < int64(4+1+noc3TrailerBytes) {
		// Still distinguish "not NOC3" from "truncated NOC3".
		if size >= 4 {
			if _, err := r.ReadAt(head[:4], 0); err == nil && [4]byte(head[:4]) != noc3Magic {
				return nil, errNotNOC3
			}
		}
		return nil, errors.New("truncated container")
	}
	n := len(head)
	if int64(n) > size {
		n = int(size)
	}
	if _, err := r.ReadAt(head[:n], 0); err != nil {
		return nil, err
	}
	if [4]byte(head[:4]) != noc3Magic {
		return nil, errNotNOC3
	}
	ver, vn := binary.Uvarint(head[4:n])
	if vn <= 0 {
		return nil, errors.New("truncated version")
	}
	if ver != noc3Version {
		return nil, fmt.Errorf("unsupported NOC3 version %d (want %d)", ver, noc3Version)
	}
	sectionsStart := int64(4 + vn)

	var tr [noc3TrailerBytes]byte
	if _, err := r.ReadAt(tr[:], size-noc3TrailerBytes); err != nil {
		return nil, fmt.Errorf("reading trailer: %w", err)
	}
	if [4]byte(tr[8:]) != noc3TrailerMagic {
		return nil, errors.New("missing trailer magic (truncated or not a finished NOC3 trace)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(tr[:8]))
	if indexOff < sectionsStart || indexOff >= size-noc3TrailerBytes {
		return nil, fmt.Errorf("index offset %d outside sections [%d, %d)", indexOff, sectionsStart, size-noc3TrailerBytes)
	}
	indexSpan := size - noc3TrailerBytes - indexOff
	if indexSpan > maxIndexSectionBytes {
		return nil, fmt.Errorf("index section of %d bytes exceeds the %d cap", indexSpan, maxIndexSectionBytes)
	}

	t := &TraceFile{r: r, size: size, indexSz: int(indexSpan)}
	idx, err := readSectionSpan(r, indexOff, int(indexSpan), noc3SecIndex)
	if err != nil {
		return nil, fmt.Errorf("index section: %w", err)
	}
	refs, err := t.parseIndex(idx)
	if err != nil {
		return nil, fmt.Errorf("index section: %w", err)
	}
	if len(refs) == 0 {
		return nil, errors.New("index lists no blocks")
	}

	headerSpan := refs[0].off - sectionsStart
	if headerSpan <= 0 || headerSpan > maxHeaderSectionBytes {
		return nil, fmt.Errorf("header section of %d bytes (cap %d)", headerSpan, maxHeaderSectionBytes)
	}
	t.headerSz = int(headerSpan)
	hp, err := readSectionSpan(r, sectionsStart, int(headerSpan), noc3SecHeader)
	if err != nil {
		return nil, fmt.Errorf("header section: %w", err)
	}
	if err := t.parseHeader(hp); err != nil {
		return nil, fmt.Errorf("header section: %w", err)
	}

	// Distribute the index's refs over the cores and cross-validate the
	// geometry: counts, bounds, ordering.
	want := 0
	for i := range t.cores {
		want += len(t.cores[i].blocks)
	}
	if want != len(refs) {
		return nil, fmt.Errorf("index lists %d blocks, header geometry needs %d", len(refs), want)
	}
	prevEnd := sectionsStart + headerSpan
	k := 0
	for i := range t.cores {
		for b := range t.cores[i].blocks {
			ref := refs[k]
			k++
			if ref.size < 7 || ref.size > maxBlockSectionBytes {
				return nil, fmt.Errorf("core %d block %d section size %d out of range", i, b, ref.size)
			}
			if ref.off < prevEnd || ref.off+int64(ref.size) > indexOff {
				return nil, fmt.Errorf("core %d block %d section [%d, %d) overlaps or escapes [%d, %d)",
					i, b, ref.off, ref.off+int64(ref.size), prevEnd, indexOff)
			}
			prevEnd = ref.off + int64(ref.size)
			t.cores[i].blocks[b] = ref
		}
	}
	t.stats.Blocks = len(refs)
	return t, nil
}

// readSectionSpan reads a span known to hold exactly one section of the
// given kind, verifies its CRC, and returns the payload.
func readSectionSpan(r io.ReaderAt, off int64, span int, wantKind uint64) ([]byte, error) {
	buf := make([]byte, span)
	if _, err := r.ReadAt(buf, off); err != nil {
		return nil, err
	}
	payload, kind, err := parseSection(buf)
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, fmt.Errorf("section kind %d, want %d", kind, wantKind)
	}
	return payload, nil
}

// parseSection decodes one complete section from buf (which must contain
// exactly the section, no more) and CRC-verifies the payload.
func parseSection(buf []byte) (payload []byte, kind uint64, err error) {
	kind, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, errors.New("truncated section kind")
	}
	off := n
	length, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, 0, errors.New("truncated section length")
	}
	off += n
	if len(buf)-off < 4 {
		return nil, 0, errors.New("truncated section CRC")
	}
	crc := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	if length != uint64(len(buf)-off) {
		return nil, 0, fmt.Errorf("section claims %d payload bytes, span has %d", length, len(buf)-off)
	}
	payload = buf[off:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, 0, fmt.Errorf("section CRC mismatch: stored %08x, computed %08x", crc, got)
	}
	return payload, kind, nil
}

// parseIndex decodes the index payload: fingerprint, block refs, and the
// compression accounting.
func (t *TraceFile) parseIndex(p []byte) ([]blockRef, error) {
	if len(p) < sha256.Size {
		return nil, errors.New("truncated fingerprint")
	}
	copy(t.fp[:], p)
	d := varReader{b: p[sha256.Size:]}
	nblocks := d.u64("block count")
	if nblocks > uint64(len(d.b))/2+1 {
		return nil, fmt.Errorf("block count %d exceeds what %d bytes can index", nblocks, len(d.b))
	}
	refs := make([]blockRef, nblocks)
	for i := range refs {
		off := d.u64("block offset")
		size := d.u64("block size")
		if d.err != nil {
			return nil, d.err
		}
		if off > uint64(t.size) || size > maxBlockSectionBytes {
			return nil, fmt.Errorf("block %d entry (%d, %d) out of range", i, off, size)
		}
		refs[i] = blockRef{off: int64(off), size: int(size)}
	}
	t.stats.RawResidualBytes = d.u64("raw bytes")
	t.stats.PredPrev = d.u64("predictor-0 count")
	t.stats.PredPhase = d.u64("predictor-1 count")
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%d trailing index bytes", len(d.b))
	}
	if t.stats.PredPrev+t.stats.PredPhase != nblocks {
		return nil, fmt.Errorf("predictor counts %d+%d disagree with %d blocks", t.stats.PredPrev, t.stats.PredPhase, nblocks)
	}
	for _, r := range refs {
		t.stats.BlockSectionBytes += uint64(r.size)
	}
	return refs, nil
}

// parseHeader decodes the header payload into the capture identity and
// per-core geometry (block refs sized but not yet located).
func (t *TraceFile) parseHeader(p []byte) error {
	d := varReader{b: p}
	t.hdr.Source = d.str("source name", maxCaptureName)
	t.hdr.Seed = d.u64("seed")
	limit := d.u64("scale limit")
	t.hdr.Instr = d.region("instr region")
	t.hdr.Hot = d.region("hot region")
	blockLen := d.u64("block length")
	nCores := d.u64("core count")
	if d.err != nil {
		return d.err
	}
	if limit > maxCaptureCores {
		return fmt.Errorf("scale limit %d exceeds cap", limit)
	}
	t.hdr.ScaleLimit = int(limit)
	if blockLen < 1 || blockLen > maxBlockLen {
		return fmt.Errorf("block length %d outside 1..%d", blockLen, maxBlockLen)
	}
	t.blockLen = int(blockLen)
	if nCores < 1 || nCores > maxCaptureCores {
		return fmt.Errorf("core count %d outside 1..%d", nCores, maxCaptureCores)
	}
	t.cores = make([]traceCore, nCores)
	for i := range t.cores {
		m := &t.cores[i].meta
		m.Member = d.str(fmt.Sprintf("core %d member", i), maxCaptureName)
		m.Params.Width = int(d.u64(fmt.Sprintf("core %d width", i)))
		m.Params.ROB = int(d.u64(fmt.Sprintf("core %d rob", i)))
		m.Params.BaseCPI = f64frombits(d.u64(fmt.Sprintf("core %d base cpi", i)))
		m.Params.DepChance = f64frombits(d.u64(fmt.Sprintf("core %d dep chance", i)))
		m.Local = d.region(fmt.Sprintf("core %d local region", i))
		total := d.u64(fmt.Sprintf("core %d stream length", i))
		if d.err != nil {
			return d.err
		}
		if err := validCoreParams(i, m.Params); err != nil {
			return err
		}
		if total < 1 || total > maxTrace {
			return fmt.Errorf("core %d stream length %d outside 1..%d", i, total, maxTrace)
		}
		m.Total = int(total)
		t.cores[i].blocks = make([]blockRef, (m.Total+t.blockLen-1)/t.blockLen)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%d trailing header bytes", len(d.b))
	}
	return nil
}

// varReader is a tiny sticky-error varint cursor for section payloads.
type varReader struct {
	b   []byte
	err error
}

func (d *varReader) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("truncated or malformed %s", what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *varReader) str(what string, maxLen uint64) string {
	n := d.u64(what + " length")
	if d.err != nil {
		return ""
	}
	if n > maxLen {
		d.err = fmt.Errorf("%s length %d exceeds cap", what, n)
		return ""
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("truncated %s", what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *varReader) region(what string) Region {
	base := d.u64(what + " base")
	size := d.u64(what + " size")
	if d.err == nil && size > maxCaptureRegion {
		d.err = fmt.Errorf("%s size %d exceeds cap", what, size)
	}
	return Region{Base: base, Size: size}
}

// --- block geometry ---------------------------------------------------------

// countOf returns the instruction count of core c's block b.
func (t *TraceFile) countOf(c, b int) int {
	tc := &t.cores[c]
	if b == len(tc.blocks)-1 {
		return tc.meta.Total - b*t.blockLen
	}
	return t.blockLen
}

// loadBlock reads, CRC-checks, decompresses, and decodes core c's block b
// into instrs/ia (each sized countOf(c, b)); prevIA must hold block b-1's
// addresses when b's predictor is predPhase. sect/resid are reusable
// scratch; fr is a reusable flate reader (created on first use). Every
// failure is a clean error.
func (t *TraceFile) loadBlock(c, b int, prevIA []uint64, sect, resid *[]byte, instrs []cpu.Instr, ia []uint64, fr *io.ReadCloser) error {
	ref := t.cores[c].blocks[b]
	if cap(*sect) < ref.size {
		*sect = make([]byte, ref.size)
	}
	buf := (*sect)[:ref.size]
	if _, err := t.r.ReadAt(buf, ref.off); err != nil {
		return fmt.Errorf("reading block section: %w", err)
	}
	payload, kind, err := parseSection(buf)
	if err != nil {
		return err
	}
	if kind != noc3SecBlock {
		return fmt.Errorf("section kind %d, want %d", kind, noc3SecBlock)
	}
	d := varReader{b: payload}
	core := d.u64("block core")
	idx := d.u64("block index")
	if d.err == nil && len(d.b) == 0 {
		d.err = errors.New("truncated block predictor")
	}
	if d.err != nil {
		return d.err
	}
	pred := d.b[0]
	d.b = d.b[1:]
	count := d.u64("block record count")
	rawLen := d.u64("block residual length")
	if d.err != nil {
		return d.err
	}
	if core != uint64(c) || idx != uint64(b) {
		return fmt.Errorf("block identifies as core %d block %d, indexed as core %d block %d", core, idx, c, b)
	}
	if count != uint64(len(instrs)) {
		return fmt.Errorf("block holds %d records, geometry needs %d", count, len(instrs))
	}
	switch pred {
	case predPrev:
	case predPhase:
		if b%keyframeEvery == 0 {
			return fmt.Errorf("keyframe block %d uses the phase predictor", b)
		}
	default:
		return fmt.Errorf("invalid predictor %d", pred)
	}
	if rawLen > uint64(blockResidCap(len(instrs))) {
		return fmt.Errorf("residual length %d exceeds the %d cap for %d records", rawLen, blockResidCap(len(instrs)), len(instrs))
	}
	if cap(*resid) < int(rawLen) {
		*resid = make([]byte, rawLen)
	}
	rb := (*resid)[:rawLen]
	if *fr == nil {
		*fr = flate.NewReader(bytes.NewReader(d.b))
	} else if err := (*fr).(flate.Resetter).Reset(bytes.NewReader(d.b), nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(*fr, rb); err != nil {
		return fmt.Errorf("decompressing %d residual bytes: %w", rawLen, err)
	}
	var one [1]byte
	if n, err := (*fr).Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		return errors.New("compressed residuals longer than declared")
	}
	if err := decodeBlockResiduals(rb, pred, prevIA, instrs, ia); err != nil {
		return err
	}
	return nil
}

// Verify decodes every block of every core with the checked decoder —
// full-file integrity (CRCs, geometry, predictors, residuals) in
// O(block) memory.
func (t *TraceFile) Verify() error {
	for c := range t.cores {
		r := t.newReplay(c)
		for b := range t.cores[c].blocks {
			var prev []uint64
			if b > 0 {
				prev = r.curIA[:t.countOf(c, b-1)]
			}
			if err := r.decodeInto(b, prev); err != nil {
				return fmt.Errorf("workload: trace %s core %d block %d: %w", t.path, c, b, err)
			}
		}
	}
	return nil
}

// --- Workload implementation ------------------------------------------------

// core maps a chip core to a recorded one, like Capture.core.
func (t *TraceFile) core(coreID int) *traceCore { return &t.cores[coreID%len(t.cores)] }

// Name implements Workload; a trace replays under its source's name.
func (t *TraceFile) Name() string { return t.hdr.Source }

// Aliases implements Workload; traces are addressed as "trace:<path>".
func (t *TraceFile) Aliases() []string { return nil }

// MaxCores implements Workload: the recorded software limit, clamped to
// the recorded core count.
func (t *TraceFile) MaxCores() int {
	limit := t.hdr.ScaleLimit
	if limit <= 0 || limit > len(t.cores) {
		limit = len(t.cores)
	}
	return limit
}

// CoreParams implements Workload with the recorded pipeline knobs.
func (t *TraceFile) CoreParams(coreID int, seed uint64) cpu.Params {
	cp := t.core(coreID).meta.Params
	cp.Seed = seed
	return cp
}

// MemberName implements MemberMapper with the recorded attribution.
func (t *TraceFile) MemberName(coreID int) string { return t.core(coreID).meta.Member }

// Layout implements Workload with the recorded regions.
func (t *TraceFile) Layout() Layout {
	return Layout{
		Instr: t.hdr.Instr,
		Hot:   t.hdr.Hot,
		Local: func(core int) Region { return t.core(core).meta.Local },
	}
}

// StreamFor implements Workload: an independent O(block) replay cursor.
// The seed does not alter a replay — the trace is the trace.
func (t *TraceFile) StreamFor(coreID int, seed uint64) cpu.Stream {
	return t.newReplay(coreID % len(t.cores))
}

// Seed returns the seed the recording was made at (provenance).
func (t *TraceFile) Seed() uint64 { return t.hdr.Seed }

// Fingerprint returns the recording's behavioral fingerprint: the
// SHA-256 of its canonical NOC2 encoding, as stored at record time.
func (t *TraceFile) Fingerprint() [sha256.Size]byte { return t.fp }

// Stats returns the index's compression accounting.
func (t *TraceFile) Stats() TraceStats { return t.stats }

// BlockLen returns the instructions-per-block geometry.
func (t *TraceFile) BlockLen() int { return t.blockLen }

// --- replay stream ----------------------------------------------------------

// blockReplay is one core's lazy replay cursor: the current block decoded
// in reusable buffers plus the previous block's addresses (the phase
// predictor's reference). It loops at the end of the recording like every
// trace stream, and serializes its checkpoint cursor as a
// (block, offset) pair.
type blockReplay struct {
	t    *TraceFile
	core int

	blk, off int  // cursor: the next instruction is cur[off] of block blk
	loaded   bool // cur/curIA hold block blk

	cur             []cpu.Instr // decoded current block (view into instrBuf)
	curIA, nextIA   []uint64    // double-buffered reconstructed addresses
	instrBuf        []cpu.Instr
	sectBuf, residB []byte
	fr              io.ReadCloser
}

func (t *TraceFile) newReplay(core int) *blockReplay {
	return &blockReplay{
		t:        t,
		core:     core,
		instrBuf: make([]cpu.Instr, t.blockLen),
		curIA:    make([]uint64, t.blockLen),
		nextIA:   make([]uint64, t.blockLen),
	}
}

// decodeInto loads block b (with prev as the predecessor's addresses,
// required when b is phase-predicted) into the cursor's buffers and makes
// it current.
func (r *blockReplay) decodeInto(b int, prev []uint64) error {
	count := r.t.countOf(r.core, b)
	if err := r.t.loadBlock(r.core, b, prev, &r.sectBuf, &r.residB, r.instrBuf[:count], r.nextIA[:count], &r.fr); err != nil {
		return err
	}
	r.curIA, r.nextIA = r.nextIA, r.curIA
	r.cur = r.instrBuf[:count]
	return nil
}

// seek positions the cursor at (blk, off), decoding forward from blk's
// keyframe — at most keyframeEvery block decodes.
func (r *blockReplay) seek(blk, off int) error {
	key := blk - blk%keyframeEvery
	if err := r.decodeInto(key, nil); err != nil {
		return err
	}
	for b := key + 1; b <= blk; b++ {
		if err := r.decodeInto(b, r.curIA[:r.t.countOf(r.core, b-1)]); err != nil {
			return err
		}
	}
	r.blk, r.off, r.loaded = blk, off, true
	return nil
}

// advance moves to the next block (wrapping at the end of the recording)
// with the current block as the phase reference.
func (r *blockReplay) advance() error {
	nb := r.blk + 1
	if nb == len(r.t.cores[r.core].blocks) {
		nb = 0
	}
	r.blk, r.off = nb, 0
	if nb == 0 {
		// Wrapping re-enters the stream at its first keyframe; a
		// single-block recording just rewinds in place.
		if len(r.t.cores[r.core].blocks) == 1 {
			return nil
		}
		return r.decodeInto(0, nil)
	}
	return r.decodeInto(nb, r.curIA[:len(r.cur)])
}

// Next implements cpu.Stream. Decode failures here mean the file changed
// or failed underneath an already-validated index — unrecoverable
// mid-simulation, so they panic with full context (use Verify for an
// error-returning whole-file check).
func (r *blockReplay) Next() cpu.Instr {
	if !r.loaded {
		if err := r.seek(r.blk, r.off); err != nil {
			panic(fmt.Sprintf("workload: trace %s core %d block %d: %v", r.t.path, r.core, r.blk, err))
		}
	}
	in := r.cur[r.off]
	r.off++
	if r.off == len(r.cur) {
		if err := r.advance(); err != nil {
			panic(fmt.Sprintf("workload: trace %s core %d block %d: %v", r.t.path, r.core, r.blk, err))
		}
	}
	return in
}

func f64frombits(v uint64) float64 { return math.Float64frombits(v) }
