package workload

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// snapshotRegistry lets a test register throwaway workloads and restore
// the package state afterwards.
func snapshotRegistry(t *testing.T) {
	t.Helper()
	regMu.Lock()
	savedList := append([]Workload(nil), regList...)
	savedKeys := map[string]Workload{}
	for k, v := range regKeys {
		savedKeys[k] = v
	}
	regMu.Unlock()
	t.Cleanup(func() {
		regMu.Lock()
		regList = savedList
		regKeys = savedKeys
		regMu.Unlock()
	})
}

func TestRegistryBuiltins(t *testing.T) {
	all := All()
	if len(all) < 8 {
		t.Fatalf("registry has %d workloads, want >= 8 (six builtins + example mix + phased)", len(all))
	}
	wantOrder := []string{"Data Serving", "MapReduce-C", "MapReduce-W", "SAT Solver",
		"Web Frontend", "Web Search", "Consolidated", "MapReduce-Phased"}
	for i, name := range wantOrder {
		if all[i].Name() != name {
			t.Fatalf("All()[%d] = %q, want %q", i, all[i].Name(), name)
		}
	}
	names := Names()
	for i, name := range wantOrder {
		if names[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], name)
		}
	}
}

func TestParseNamesAndAliases(t *testing.T) {
	cases := map[string]string{
		"Web Search":    "Web Search",
		"web search":    "Web Search",
		"WEB SEARCH":    "Web Search",
		"websearch":     "Web Search",
		"web-search":    "Web Search",
		"search":        "Web Search",
		"data-serving":  "Data Serving",
		"cassandra":     "Data Serving",
		"mapred-c":      "MapReduce-C",
		"MapReduce-W":   "MapReduce-W",
		"sat":           "SAT Solver",
		"frontend":      "Web Frontend",
		"  SAT Solver ": "SAT Solver", // whitespace-tolerant
		"mix":           "Consolidated",
		"phased":        "MapReduce-Phased",
	}
	for in, want := range cases {
		w, err := Parse(in)
		if err != nil || w.Name() != want {
			t.Errorf("Parse(%q) = (%v, %v), want %q", in, w, err, want)
		}
	}
	if _, err := Parse("quake"); err == nil || !strings.Contains(err.Error(), "quake") {
		t.Fatalf("unknown workload error = %v", err)
	}
}

func TestParseTraceScheme(t *testing.T) {
	cap, err := Record(Synth(MapReduceC), 2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mrc.noctrace")
	if err := cap.Save(path); err != nil {
		t.Fatal(err)
	}
	w, err := Parse(TraceScheme + path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "MapReduce-C" {
		t.Fatalf("replay name = %q, want the recorded source name", w.Name())
	}
	if _, err := Parse("trace:/no/such/file.noctrace"); err == nil {
		t.Fatal("missing capture file must error")
	}
}

func TestRegisterValidation(t *testing.T) {
	snapshotRegistry(t)

	if err := Register(Synth(Params{})); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := Register(Synth(Params{Name: "Web Search"})); err == nil {
		t.Fatal("duplicate of a builtin must be rejected")
	}
	p := DataServing
	p.Name = "Data-Serving" // collides case-insensitively with an alias
	if err := Register(Synth(p)); err == nil {
		t.Fatal("alias collision must be rejected")
	}
	p.Name = "trace:thing"
	if err := Register(Synth(p)); err == nil {
		t.Fatal("':' in a name must be rejected (scheme namespace)")
	}
	p.Name = "Key-Value Store"
	if err := Register(Synth(p, "Key-Value Store", "")); err == nil {
		t.Fatal("empty alias must be rejected")
	}

	kv := DataServing
	kv.Name = "Key-Value Store"
	kv.MaxCores = 0 // Synthetic defaults the limit
	if err := Register(Synth(kv, "kv", "kvstore")); err != nil {
		t.Fatal(err)
	}
	if err := Register(Synth(kv)); err == nil {
		t.Fatal("duplicate registration must be rejected")
	}
	got, err := Parse("KVSTORE")
	if err != nil || got.Name() != "Key-Value Store" {
		t.Fatalf("alias lookup after Register = (%v, %v)", got, err)
	}
	if got.MaxCores() != 64 {
		t.Fatalf("MaxCores should default to 64, got %d", got.MaxCores())
	}
	all := All()
	if all[len(all)-1].Name() != "Key-Value Store" {
		t.Fatalf("registered workload missing from All(): %v", Names())
	}
}

func TestUnlimitedWrapper(t *testing.T) {
	w := Unlimited(Synth(WebSearch))
	if w.MaxCores() != math.MaxInt {
		t.Fatalf("Unlimited MaxCores = %d", w.MaxCores())
	}
	if w.Name() != "Web Search" {
		t.Fatalf("Unlimited must keep the name, got %q", w.Name())
	}
	if _, nested := Unlimited(w).(unlimited).Workload.(unlimited); nested {
		t.Fatal("double wrapping must be a no-op, not a nested decorator")
	}
	// Streams and params delegate to the wrapped workload.
	a, b := w.StreamFor(3, 9), Synth(WebSearch).StreamFor(3, 9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("stream diverged at %d", i)
		}
	}
	// Member attribution unwraps decorators.
	mix := Unlimited(ConsolidatedMix())
	name, ok := MemberNameOf(mix, 1)
	if !ok || name != MapReduceC.Name {
		t.Fatalf("MemberNameOf through Unlimited = (%q, %v)", name, ok)
	}
	name, ok = MemberNameOf(w, 0)
	if ok || name != "Web Search" {
		t.Fatalf("homogeneous MemberNameOf = (%q, %v), want (Web Search, false)", name, ok)
	}
}
