package workload

import (
	"bytes"
	"testing"
)

// The fuzz targets hold the varint record decoders to the no-panic,
// no-unbounded-allocation contract on arbitrary bytes. `go test` runs
// the seed corpus on every CI pass; `go test -fuzz FuzzReadTrace` (or
// FuzzReadCapture) explores further.

func traceSeedCorpus(t *testing.F) [][]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewGenerator(DataServing, 0, 1), 200); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	return [][]byte{
		valid,
		valid[:len(valid)/2], // truncated body
		valid[:5],            // truncated header
		[]byte("NOC1"),       // magic only
		[]byte("nope"),       // wrong magic
		append(append([]byte{}, valid...), 0xFF, 0xFF, 0xFF),                             // trailing garbage
		{'N', 'O', 'C', '1', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // huge claimed length
	}
}

func FuzzReadTrace(f *testing.F) {
	for _, seed := range traceSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded traces must uphold the replay invariants.
		for _, in := range tr.Instrs {
			if in.Kind > 2 {
				t.Fatalf("decoded invalid kind %d", in.Kind)
			}
		}
	})
}

// FuzzReadNOC3 holds the sectioned-container reader to the same
// contract: arbitrary bytes either fail Parse/Verify cleanly or decode
// into a trace whose every stream replays valid instructions. Hostile
// indexes, corrupt CRCs, truncated blocks, and invalid predictor ids
// must never panic or allocate proportionally to claimed sizes.
func FuzzReadNOC3(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteNOC3(&buf, MapReducePhased(), 2, 300, 1, 32); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncated mid-blocks
	f.Add(append([]byte(nil), valid[:6]...))            // magic + version only
	f.Add([]byte("NOC3"))
	f.Add([]byte("3CON"))
	tr := append([]byte(nil), valid...)
	tr[len(tr)-10] ^= 0xFF // index offset pointing into nowhere
	f.Add(tr)
	hostile := append([]byte(nil), valid...)
	hostile[len(hostile)-12] = 0x04 // index offset -> header section
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := ParseTraceBytes(data)
		if err != nil {
			return
		}
		if err := tf.Verify(); err != nil {
			return
		}
		// A verified trace must uphold the replay invariants end to end.
		for core := range tf.cores {
			st := tf.StreamFor(core, 1)
			n := tf.cores[core].meta.Total
			if n > 2000 {
				n = 2000
			}
			for i := 0; i < n; i++ {
				if in := st.Next(); in.Kind > 2 {
					t.Fatalf("core %d decoded invalid kind %d", core, in.Kind)
				}
			}
			if err := validCoreParams(core, tf.cores[core].meta.Params); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func FuzzReadCapture(f *testing.F) {
	cap, err := Record(ConsolidatedMix(), 2, 100, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:3])
	f.Add([]byte("NOC2"))
	f.Add([]byte{'N', 'O', 'C', '2', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCapture(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must be safe to hand to a chip build:
		// non-empty streams, valid kinds, buildable core parameters.
		if len(c.Cores) == 0 {
			t.Fatal("decoded capture has no cores")
		}
		for i := range c.Cores {
			cc := &c.Cores[i]
			if len(cc.Instrs) == 0 {
				t.Fatalf("core %d decoded with an empty stream", i)
			}
			if err := validCoreParams(i, cc.Params); err != nil {
				t.Fatal(err)
			}
		}
	})
}
