package workload

import (
	"fmt"
	"strings"
	"sync"
)

// The workload registry, mirroring the chip package's Organization
// registry: every string a CLI flag, sweep spec, or config file can carry
// resolves here, case-insensitively and alias-aware. Registration is rare
// and reads are hot (every Run and sweep expansion), so an RWMutex guards
// it; safe for concurrent use from experiment worker pools.
var (
	regMu   sync.RWMutex
	regList []Workload
	regKeys = map[string]Workload{}
)

func init() {
	// The paper's six, in figure order, with their common CLI spellings.
	for _, b := range []struct {
		p       Params
		aliases []string
	}{
		{DataServing, []string{"data-serving", "cassandra"}},
		{MapReduceC, []string{"mapred-c"}},
		{MapReduceW, []string{"mapred-w"}},
		{SATSolver, []string{"sat-solver", "sat"}},
		{WebFrontend, []string{"web-frontend", "frontend"}},
		{WebSearch, []string{"web-search", "websearch", "search"}},
	} {
		mustRegister(Synth(b.p, b.aliases...))
	}
	// Worked examples of the heterogeneous families, registered through
	// the same public path user workloads use. The Figure* studies pin the
	// builtin six explicitly, so these never shift regenerated paper
	// numbers.
	mustRegister(ConsolidatedMix())
	mustRegister(MapReducePhased())
}

// Register adds a workload to the registry so that every name-based entry
// point (Parse, sweep specs, CLI flags) can resolve it. The name and
// aliases must be non-empty and unique case-insensitively, and must not
// contain ':' (reserved for schemes like "trace:<path>"). Safe for
// concurrent use.
func Register(w Workload) error {
	name := strings.TrimSpace(w.Name())
	if name == "" {
		return fmt.Errorf("workload: Register needs a name")
	}
	keys := []string{strings.ToLower(name)}
	for _, a := range w.Aliases() {
		a = strings.ToLower(strings.TrimSpace(a))
		if a == "" {
			return fmt.Errorf("workload: %q has an empty alias", name)
		}
		if a != keys[0] {
			keys = append(keys, a)
		}
	}
	for _, k := range keys {
		if strings.Contains(k, ":") {
			return fmt.Errorf("workload: name %q contains ':' (reserved for schemes)", k)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, k := range keys {
		if prev, dup := regKeys[k]; dup {
			return fmt.Errorf("workload: name %q already registered by %s", k, prev.Name())
		}
	}
	regList = append(regList, w)
	for _, k := range keys {
		regKeys[k] = w
	}
	return nil
}

// mustRegister is Register for the package's own init-time registrations.
func mustRegister(w Workload) Workload {
	if err := Register(w); err != nil {
		panic(err)
	}
	return w
}

// All returns every registered workload: the paper's six in figure order,
// then the example families, then user registrations in registration
// order.
func All() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Workload, len(regList))
	copy(out, regList)
	return out
}

// Names returns the registered workload names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, len(regList))
	for i, w := range regList {
		names[i] = w.Name()
	}
	return names
}

// TraceScheme prefixes a capture file path to form a workload name that
// Parse resolves by loading the file: "trace:/path/to/ws.noctrace".
const TraceScheme = "trace:"

// Workload name schemes beyond the builtin "trace:": a scheme owns every
// name spelled "<scheme>:<spec>" and parses the spec into a Workload.
// The opensys package registers "opensys:" this way.
var (
	schemeMu sync.RWMutex
	schemes  = map[string]func(spec string) (Workload, error){}
)

// RegisterScheme adds a workload name scheme: Parse hands every
// "<name>:<spec>" string to fn (spec is the part after the colon,
// untrimmed). The scheme name is case-insensitive, must be non-empty,
// colon-free, and not already taken ("trace" is builtin). Parsed
// workloads must Name() themselves back to a string the scheme resolves,
// so sweep points and campaign manifests rehydrate by name alone.
func RegisterScheme(name string, fn func(spec string) (Workload, error)) error {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" || strings.Contains(key, ":") {
		return fmt.Errorf("workload: invalid scheme name %q", name)
	}
	if key == "trace" {
		return fmt.Errorf("workload: scheme %q is builtin", key)
	}
	if fn == nil {
		return fmt.Errorf("workload: scheme %q needs a parse function", key)
	}
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemes[key]; dup {
		return fmt.Errorf("workload: scheme %q already registered", key)
	}
	schemes[key] = fn
	return nil
}

// MustRegisterScheme is RegisterScheme for init-time registrations.
func MustRegisterScheme(name string, fn func(spec string) (Workload, error)) {
	if err := RegisterScheme(name, fn); err != nil {
		panic(err)
	}
}

// Parse resolves a workload from any registered spelling — names and
// aliases, case-insensitively ("data-serving", "websearch", "WEB Search")
// — loads a recorded capture via the "trace:<path>" scheme, or hands
// "<scheme>:<spec>" names to their registered scheme (e.g.
// "opensys:arrival=poisson,...").
func Parse(s string) (Workload, error) {
	trimmed := strings.TrimSpace(s)
	if strings.HasPrefix(strings.ToLower(trimmed), TraceScheme) {
		return LoadTrace(trimmed[len(TraceScheme):])
	}
	if i := strings.IndexByte(trimmed, ':'); i > 0 {
		schemeMu.RLock()
		fn := schemes[strings.ToLower(trimmed[:i])]
		schemeMu.RUnlock()
		if fn != nil {
			return fn(trimmed[i+1:])
		}
	}
	key := strings.ToLower(trimmed)
	regMu.RLock()
	w, ok := regKeys[key]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (want %s, an alias, trace:<path>, or a registered scheme)",
			s, strings.Join(Names(), " | "))
	}
	return w, nil
}
