package workload

import (
	"math"

	"nocout/internal/cpu"
)

// This file defines the behavioral workload API. A Workload is a
// self-describing workload *source* — the unit of extension for the
// scenario space, exactly as Organization is for the interconnect design
// space: it names itself (registry/CLI resolution), bounds its software
// scalability, derives each core's pipeline parameters, produces each
// core's dynamic instruction stream, and describes its address-space
// layout for cache prewarming. The chip builds against this interface
// only; the synthetic generators, recorded traces, multiprogrammed mixes,
// and phased schedules are all just implementations.

// Workload is a behavioral workload source. Implementations must be
// usable concurrently: StreamFor and CoreParams are called from
// experiment worker pools, and every returned stream must be
// independent. The contract the conformance suite enforces:
//
//   - Name is non-empty and stable; Aliases are extra lowercase CLI
//     spellings (the lowercased Name is always accepted);
//   - MaxCores is the software scalability limit (§5.3) — at least 1;
//   - StreamFor(coreID, seed) is deterministic: the same (coreID, seed)
//     always yields the identical cpu.Instr sequence;
//   - CoreParams(coreID, seed) returns a valid cpu.Params carrying the
//     workload's ILP/MLP calibration with the seed threaded through;
//   - Layout describes the regions the chip functionally prewarms.
type Workload interface {
	// Name is the workload's display name; it is how results report,
	// JSON encodes, and the registry primarily resolves it.
	Name() string
	// Aliases lists extra (lowercase) CLI spellings; the lowercased Name
	// is always accepted and need not be repeated.
	Aliases() []string
	// MaxCores is the workload's software scalability limit (§5.3: Web
	// Frontend and Web Search only scale to 16 cores).
	MaxCores() int
	// CoreParams derives the cpu parameters coreID's pipeline runs with.
	CoreParams(coreID int, seed uint64) cpu.Params
	// StreamFor returns coreID's dynamic instruction stream. Streams are
	// endless; finite sources (traces) loop.
	StreamFor(coreID int, seed uint64) cpu.Stream
	// Layout describes the workload's address space for cache prewarming.
	Layout() Layout
}

// Region is a contiguous physical address range in bytes.
type Region struct {
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// Layout describes a workload's address space the way the paper's
// checkpoint methodology needs it (§5.4): the shared regions become
// LLC-resident before timing starts and each active core's local region
// is owned by its L1-D.
type Layout struct {
	// Instr is the shared instruction footprint (LLC-prewarmed).
	Instr Region
	// Hot is the shared read-write region — the snoop source.
	Hot Region
	// Local returns a core's private L1-resident region.
	Local func(coreID int) Region
}

// MemberMapper is implemented by heterogeneous workloads (Mix, replayed
// captures of one) that can attribute each core to a named member
// workload; chips use it for the per-member IPC breakdown in results.
type MemberMapper interface {
	MemberName(coreID int) string
}

// MemberNameOf reports the member workload driving coreID, unwrapping
// decorators like Unlimited. The second result is false when w does not
// distinguish members (the name falls back to w.Name()).
func MemberNameOf(w Workload, coreID int) (string, bool) {
	for {
		if m, ok := w.(MemberMapper); ok {
			return m.MemberName(coreID), true
		}
		u, ok := w.(interface{ Unwrap() Workload })
		if !ok {
			return w.Name(), false
		}
		w = u.Unwrap()
	}
}

// Synthetic adapts a Params calibration block to the Workload interface;
// the paper's six builtin workloads are registered through it. The zero
// value is not useful — construct with Synth.
type Synthetic struct {
	P       Params
	aliases []string
}

// Synth wraps a synthetic calibration as a Workload, with optional extra
// CLI aliases.
func Synth(p Params, aliases ...string) Synthetic {
	return Synthetic{P: p, aliases: aliases}
}

// Name implements Workload.
func (s Synthetic) Name() string { return s.P.Name }

// Aliases implements Workload.
func (s Synthetic) Aliases() []string { return s.aliases }

// MaxCores implements Workload; an unset calibration limit means 64.
func (s Synthetic) MaxCores() int { return s.P.scaleLimit() }

// scaleLimit is a calibration's software scalability limit with the
// 64-core default applied; the single home of that defaulting.
func (p Params) scaleLimit() int {
	if p.MaxCores > 0 {
		return p.MaxCores
	}
	return 64
}

// minScaleLimit is the least member limit — how heterogeneous
// workloads (Mix, Phased) scale.
func minScaleLimit(members []Params) int {
	limit := members[0].scaleLimit()
	for _, p := range members[1:] {
		limit = min(limit, p.scaleLimit())
	}
	return limit
}

// CoreParams implements Workload. Synthetic cores are homogeneous: every
// core gets the calibration's ILP/MLP knobs.
func (s Synthetic) CoreParams(coreID int, seed uint64) cpu.Params {
	return s.P.CoreParams(seed)
}

// StreamFor implements Workload with the synthetic generator.
func (s Synthetic) StreamFor(coreID int, seed uint64) cpu.Stream {
	return NewGenerator(s.P, coreID, seed)
}

// Layout implements Workload with the calibration's fixed address map.
func (s Synthetic) Layout() Layout { return layoutOf(s.P) }

// layoutOf builds the standard synthetic address-space layout.
func layoutOf(p Params) Layout {
	return Layout{
		Instr: Region{Base: instrBase, Size: p.InstrFootprint},
		Hot:   Region{Base: hotBase, Size: p.HotB},
		Local: func(core int) Region {
			base, size := p.LocalRegion(core)
			return Region{Base: base, Size: size}
		},
	}
}

// Unlimited lifts w's software scalability cap so the chip enables every
// core — the §7.1 assumption of software able to use the whole die. It
// replaces the old mutate-the-struct-field idiom and works for any
// Workload implementation; everything else (name, streams, layout)
// delegates to w.
func Unlimited(w Workload) Workload {
	if _, ok := w.(unlimited); ok {
		return w
	}
	return unlimited{w}
}

type unlimited struct{ Workload }

// MaxCores reports no software limit; the chip clamps to its core count.
func (unlimited) MaxCores() int { return math.MaxInt }

// Unwrap exposes the capped workload (MemberNameOf and tooling use it).
func (u unlimited) Unwrap() Workload { return u.Workload }
