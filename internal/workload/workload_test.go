package workload

import (
	"math"
	"testing"

	"nocout/internal/cpu"
)

func TestSuiteCompleteness(t *testing.T) {
	all := Builtin()
	if len(all) != 6 {
		t.Fatalf("suite has %d workloads, want 6", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		// §2.1 traits every workload must exhibit.
		if w.InstrFootprint < 1<<20 {
			t.Errorf("%s: instruction footprint %d below a megabyte", w.Name, w.InstrFootprint)
		}
		if w.InstrFootprint > 8<<20 {
			t.Errorf("%s: instruction footprint must fit the 8MB LLC", w.Name)
		}
		if w.DatasetB < 64<<20 {
			t.Errorf("%s: dataset %d is not 'vast'", w.Name, w.DatasetB)
		}
		if w.LoadFrac+w.StoreFrac >= 1 {
			t.Errorf("%s: memory fractions exceed 1", w.Name)
		}
		if w.MaxCores != 64 && w.MaxCores != 16 {
			t.Errorf("%s: MaxCores = %d", w.Name, w.MaxCores)
		}
	}
	// §5.3: exactly two workloads are limited to 16 cores.
	limited := 0
	for _, w := range all {
		if w.MaxCores == 16 {
			limited++
		}
	}
	if limited != 2 {
		t.Fatalf("16-core-limited workloads = %d, want 2 (Web Frontend, Web Search)", limited)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DataServing, 3, 42)
	b := NewGenerator(DataServing, 3, 42)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, x, y)
		}
	}
	c := NewGenerator(DataServing, 4, 42)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different cores produced %d/1000 identical instructions", same)
	}
}

func TestInstructionAddressesStayInSharedFootprint(t *testing.T) {
	for _, w := range Builtin() {
		g := NewGenerator(w, 7, 1)
		for i := 0; i < 20000; i++ {
			in := g.Next()
			if in.IAddr >= w.InstrFootprint {
				t.Fatalf("%s: instruction address %#x outside footprint %#x", w.Name, in.IAddr, w.InstrFootprint)
			}
		}
	}
}

func TestDataAddressRegions(t *testing.T) {
	w := MapReduceC
	g := NewGenerator(w, 2, 9)
	var hot, private, mem int
	for i := 0; i < 200000; i++ {
		in := g.Next()
		if in.Kind == cpu.KindALU {
			continue
		}
		mem++
		switch {
		case in.DAddr >= 0x0040_0000_0000 && in.DAddr < 0x0040_0000_0000+w.HotB:
			hot++
		case in.DAddr >= 0x0100_0000_0000+2*0x0001_0000_0000 &&
			in.DAddr < 0x0100_0000_0000+2*0x0001_0000_0000+w.DatasetB:
			private++
		default:
			t.Fatalf("address %#x in no known region", in.DAddr)
		}
	}
	if hot == 0 || private == 0 {
		t.Fatalf("hot=%d private=%d: both regions must be exercised", hot, private)
	}
	if float64(private) < float64(mem)*0.8 {
		t.Fatalf("private accesses %d/%d: dataset must dominate", private, mem)
	}
}

func TestMemoryMixMatchesFractions(t *testing.T) {
	w := WebFrontend
	g := NewGenerator(w, 0, 5)
	var loads, stores, total int
	for i := 0; i < 100000; i++ {
		in := g.Next()
		total++
		switch in.Kind {
		case cpu.KindLoad:
			loads++
		case cpu.KindStore:
			stores++
		}
	}
	lf := float64(loads) / float64(total)
	sf := float64(stores) / float64(total)
	if math.Abs(lf-w.LoadFrac) > 0.02 || math.Abs(sf-w.StoreFrac) > 0.02 {
		t.Fatalf("mix: loads %.3f (want %.2f), stores %.3f (want %.2f)", lf, w.LoadFrac, sf, w.StoreFrac)
	}
}

func TestControlFlowHasRunsAndJumps(t *testing.T) {
	g := NewGenerator(SATSolver, 1, 11)
	prev := g.Next().IAddr
	var seq, jumps int
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.IAddr == prev+4 {
			seq++
		} else {
			jumps++
		}
		prev = in.IAddr
	}
	if jumps == 0 {
		t.Fatal("no jumps: control flow must be complex")
	}
	avgRun := float64(seq) / float64(jumps)
	if avgRun < SATSolver.AvgRun*0.5 || avgRun > SATSolver.AvgRun*2 {
		t.Fatalf("observed run length %.1f, parameter %.1f", avgRun, SATSolver.AvgRun)
	}
}

func TestLocalJumpsRevisitFunctions(t *testing.T) {
	// With high LocalJump, jump targets repeat (loops): the distinct
	// target count stays far below the jump count.
	g := NewGenerator(WebSearch, 0, 3)
	targets := map[uint64]int{}
	prev := g.Next().IAddr
	jumps := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.IAddr != prev+4 {
			targets[in.IAddr]++
			jumps++
		}
		prev = in.IAddr
	}
	if len(targets) >= jumps/2 {
		t.Fatalf("targets %d vs jumps %d: no temporal locality", len(targets), jumps)
	}
}

func TestCoreParamsDerivation(t *testing.T) {
	cp := DataServing.CoreParams(99)
	if cp.BaseCPI != DataServing.BaseCPI || cp.DepChance != DataServing.DepChance {
		t.Fatal("CoreParams must carry the workload's ILP/MLP knobs")
	}
	if cp.Width != 3 || cp.ROB != 64 {
		t.Fatal("CoreParams must keep the Table 1 pipeline shape")
	}
	if cp.Seed != 99 {
		t.Fatal("seed not threaded")
	}
}

func TestDataServingIsMostSerial(t *testing.T) {
	// The paper singles out Data Serving for very low ILP and MLP; keep the
	// calibration honoring that ordering.
	for _, w := range Builtin() {
		if w.Name == DataServing.Name {
			continue
		}
		if w.DepChance >= DataServing.DepChance {
			t.Errorf("%s DepChance %.2f >= Data Serving's %.2f", w.Name, w.DepChance, DataServing.DepChance)
		}
		if w.BaseCPI > DataServing.BaseCPI {
			t.Errorf("%s BaseCPI %.2f > Data Serving's %.2f", w.Name, w.BaseCPI, DataServing.BaseCPI)
		}
	}
}
