package workload

import (
	"fmt"

	"nocout/internal/cpu"
)

// Mix is a multiprogrammed workload: each core runs one *member*
// workload, modeling the consolidated scale-out deployments the paper's
// background assumes (many independent server instances sharing one die).
// Members share the OS/server-software address-space shape of the
// synthetic model — the common instruction region and the hot read-write
// region — while their datasets stay per-core private, so a mix exercises
// the same coherence and LLC paths as a homogeneous run but with
// heterogeneous per-core demand. Mix implements MemberMapper, so results
// carry a per-member IPC breakdown.
type Mix struct {
	name    string
	aliases []string
	members []Params
	assign  []int // core -> member index; round-robin when empty
}

// NewMix builds a mix over the member calibrations with round-robin
// core assignment (core i runs members[i % len(members)]).
func NewMix(name string, members ...Params) *Mix {
	if name == "" {
		panic("workload: NewMix needs a name")
	}
	if len(members) == 0 {
		panic("workload: NewMix needs at least one member")
	}
	return &Mix{name: name, members: members}
}

// WithAliases returns a copy of the mix with extra CLI spellings; the
// receiver is untouched, so deriving from a registered mix (shared and
// read concurrently by worker pools) is safe.
func (m *Mix) WithAliases(aliases ...string) *Mix {
	n := *m
	n.aliases = append(append([]string(nil), m.aliases...), aliases...)
	return &n
}

// WithAssignment returns a copy of the mix with round-robin replaced by
// an explicit core→member table; cores beyond its length wrap around.
// Values index the member list. The receiver is untouched.
func (m *Mix) WithAssignment(assign []int) *Mix {
	if len(assign) == 0 {
		panic("workload: WithAssignment needs at least one entry")
	}
	for i, v := range assign {
		if v < 0 || v >= len(m.members) {
			panic(fmt.Sprintf("workload: assignment[%d] = %d indexes outside %d members", i, v, len(m.members)))
		}
	}
	n := *m
	n.assign = append([]int(nil), assign...)
	return &n
}

// Members returns the member calibrations in assignment-index order.
func (m *Mix) Members() []Params { return m.members }

// memberIdx maps a core to its member.
func (m *Mix) memberIdx(coreID int) int {
	if len(m.assign) > 0 {
		return m.assign[coreID%len(m.assign)]
	}
	return coreID % len(m.members)
}

// Name implements Workload.
func (m *Mix) Name() string { return m.name }

// Aliases implements Workload.
func (m *Mix) Aliases() []string { return m.aliases }

// MaxCores implements Workload: the mix scales only as far as its least
// scalable member (the consolidated stack is limited by its worst tenant).
func (m *Mix) MaxCores() int { return minScaleLimit(m.members) }

// CoreParams implements Workload with the assigned member's ILP/MLP knobs.
func (m *Mix) CoreParams(coreID int, seed uint64) cpu.Params {
	return m.members[m.memberIdx(coreID)].CoreParams(seed)
}

// StreamFor implements Workload: the core runs its member's generator.
func (m *Mix) StreamFor(coreID int, seed uint64) cpu.Stream {
	return NewGenerator(m.members[m.memberIdx(coreID)], coreID, seed)
}

// MemberName implements MemberMapper.
func (m *Mix) MemberName(coreID int) string {
	return m.members[m.memberIdx(coreID)].Name
}

// Layout implements Workload: shared regions cover the largest member
// (prewarming a superset keeps every member's steady state resident);
// each core's local region is its own member's.
func (m *Mix) Layout() Layout {
	instr, hot := uint64(0), uint64(0)
	for _, p := range m.members {
		instr = max(instr, p.InstrFootprint)
		hot = max(hot, p.HotB)
	}
	return Layout{
		Instr: Region{Base: instrBase, Size: instr},
		Hot:   Region{Base: hotBase, Size: hot},
		Local: func(core int) Region {
			base, size := m.members[m.memberIdx(core)].LocalRegion(core)
			return Region{Base: base, Size: size}
		},
	}
}

// ConsolidatedMix is the registered example mix: three 64-core-scalable
// members with contrasting ILP/MLP (latency-bound Data Serving, balanced
// MapReduce-C, compute-leaning SAT Solver) round-robined across the die.
func ConsolidatedMix() *Mix {
	return NewMix("Consolidated", DataServing, MapReduceC, SATSolver).WithAliases("mix")
}
