package workload

import (
	"encoding/binary"
	"fmt"

	"nocout/internal/cpu"
)

// This file defines the NOC3 trace container: a sectioned, block-oriented,
// delta-compressed successor to the monolithic NOC2 capture blob, designed
// so that replaying a datacenter-scale recording is O(cores × block)
// memory instead of O(trace), and so that recording streams blocks to disk
// incrementally instead of buffering the whole capture.
//
// # Container layout
//
// NOC3 borrows internal/ckpt's NOCK section discipline (kind, length,
// CRC32, payload) and adds a trailing index + fixed trailer so a reader
// can seek straight to any block:
//
//	magic    "NOC3"  (4 bytes)
//	version  uvarint (currently 1)
//	section* :
//	  kind     uvarint        1 header | 2 block | 3 index
//	  length   uvarint        payload byte count
//	  crc32    4 bytes LE     IEEE CRC over the payload
//	  payload  length bytes
//	trailer  8 bytes LE index-section file offset + "3CON" (4 bytes)
//
// The header section carries the NOC2 header fields (source, seed, scale
// limit, shared regions) plus the block length and each core's identity
// (member, params, local region, total instructions). Block sections
// follow in core-major order: core 0's blocks, then core 1's, and so on.
// The index section is last — recording appends it after the final block,
// so the writer never seeks — and lists every block section's (offset,
// size) plus aggregate compression statistics and the recording's
// behavioral fingerprint (the SHA-256 of its canonical NOC2 encoding,
// computed while recording, so Point.Key and every content-addressed
// cache are format-agnostic).
//
// # Block encoding
//
// Each block holds up to blockLen instructions, split into three residual
// streams (kinds packed 2 bits each, instruction-address residuals,
// data-address residuals) and deflate-compressed. The instruction-address
// stream is the phase-aware part: per block the encoder tries two
// predictors and records the winner in the block —
//
//	predPrev  (0): delta from the previous instruction in the block
//	              (first record is absolute) — the NOC1/NOC2 predictor;
//	predPhase (1): delta from the instruction at the same offset in the
//	              previous block — when the block length divides (or
//	              approximates) a workload's phase period, adjacent
//	              blocks sample the same loop/phase structure and the
//	              residuals collapse (PC-bzip2's phase-space continuity,
//	              applied per block).
//
// A predPhase block decodes against its predecessor's addresses, so every
// keyframeEvery-th block is forced to predPrev: a seek replays at most
// keyframeEvery-1 extra blocks, never the whole stream, and each block
// remains decodable from its keyframe group alone. Data addresses are
// delta-chained within the block (first is absolute), independent of the
// predictor choice.

// noc3Magic identifies the NOC3 trace container.
var noc3Magic = [4]byte{'N', 'O', 'C', '3'}

// noc3TrailerMagic terminates the file, preceded by the 8-byte LE index
// section offset.
var noc3TrailerMagic = [4]byte{'3', 'C', 'O', 'N'}

// noc3Version is the container version this package writes and the only
// one it reads (the NOCK compatibility stance: no cross-version
// migration).
const noc3Version = 1

// Section kinds.
const (
	noc3SecHeader = 1
	noc3SecBlock  = 2
	noc3SecIndex  = 3
)

// Block predictors.
const (
	predPrev  = 0 // delta from the previous instruction in the block
	predPhase = 1 // delta from the same offset in the previous block
)

// DefaultBlockLen is the instructions-per-block the recorder uses: big
// enough that varint/deflate framing amortizes, small enough that a
// 64-core replay's working set stays a few MB.
const DefaultBlockLen = 4096

// Format caps. Corrupt headers must fail cleanly, never allocate
// proportionally to what they claim.
const (
	maxBlockLen      = 1 << 20 // instructions per block
	keyframeEvery    = 8       // forced predPrev cadence; bounds seek cost
	noc3TrailerBytes = 12      // 8-byte index offset + trailer magic
	// maxBlockSection bounds one block section's total on-disk bytes
	// (header + payload): the residual streams cannot exceed ~21 bytes per
	// instruction and deflate's stored-block overhead is < 1/1000 + 5 bytes
	// per 64KB, so 32 bytes/instr plus slack is unreachable by a genuine
	// writer and cheap to verify.
	maxBlockSectionBytes = 32*maxBlockLen + 256
)

// blockResidCap bounds the uncompressed residual buffer for a block of n
// instructions: packed kinds + worst-case varints for both address
// streams.
func blockResidCap(n int) int {
	return (n+3)/4 + 2*n*binary.MaxVarintLen64
}

// varintLen returns the encoded size of v as a zigzag varint.
func varintLen(v int64) int {
	u := uint64(v)<<1 ^ uint64(v>>63)
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// blockEnc encodes instruction blocks, retaining its buffers across calls
// so steady-state recording allocates nothing per block.
type blockEnc struct {
	resid []byte // assembled residual streams, pre-compression
}

// encode assembles the residual streams for instrs, choosing the
// predictor: predPhase when the block is not a keyframe, prevIA covers
// every offset, and its residuals encode strictly smaller than predPrev's.
// prevIA is the previous block's instruction addresses (nil for the first
// block). Returns the chosen predictor and the residual buffer (owned by
// the encoder, valid until the next call).
func (e *blockEnc) encode(idx int, instrs []cpu.Instr, prevIA []uint64) (pred byte, resid []byte) {
	pred = predPrev
	if idx%keyframeEvery != 0 && len(prevIA) >= len(instrs) {
		prevCost, phaseCost := 0, 0
		last := int64(0)
		for i, in := range instrs {
			ia := int64(in.IAddr)
			prevCost += varintLen(ia - last)
			last = ia
			phaseCost += varintLen(ia - int64(prevIA[i]))
		}
		if phaseCost < prevCost {
			pred = predPhase
		}
	}

	n := len(instrs)
	if cap(e.resid) < blockResidCap(n) {
		e.resid = make([]byte, 0, blockResidCap(n))
	}
	buf := e.resid[:0]
	// Kinds, 2 bits each, little end first.
	var packed byte
	for i, in := range instrs {
		packed |= byte(in.Kind) << (uint(i%4) * 2)
		if i%4 == 3 {
			buf = append(buf, packed)
			packed = 0
		}
	}
	if n%4 != 0 {
		buf = append(buf, packed)
	}
	// Instruction-address residuals under the chosen predictor.
	if pred == predPhase {
		for i, in := range instrs {
			buf = binary.AppendVarint(buf, int64(in.IAddr)-int64(prevIA[i]))
		}
	} else {
		last := int64(0)
		for _, in := range instrs {
			ia := int64(in.IAddr)
			buf = binary.AppendVarint(buf, ia-last)
			last = ia
		}
	}
	// Data-address residuals, delta-chained within the block.
	lastDA := int64(0)
	for _, in := range instrs {
		if in.Kind != cpu.KindALU {
			da := int64(in.DAddr)
			buf = binary.AppendVarint(buf, da-lastDA)
			lastDA = da
		}
	}
	e.resid = buf
	return pred, buf
}

// decodeBlockResiduals reconstructs a block from its residual streams
// into instrs (len == the block's record count) and ia (the reconstructed
// instruction addresses, len == count). prevIA is required when pred is
// predPhase. Every validation failure is a clean error — hostile inputs
// cannot panic or over-allocate.
func decodeBlockResiduals(resid []byte, pred byte, prevIA []uint64, instrs []cpu.Instr, ia []uint64) error {
	n := len(instrs)
	kb := (n + 3) / 4
	if len(resid) < kb {
		return fmt.Errorf("residuals truncated in kinds: %d bytes for %d records", len(resid), n)
	}
	for i := 0; i < n; i++ {
		k := cpu.InstrKind(resid[i/4] >> (uint(i%4) * 2) & 3)
		if k > cpu.KindStore {
			return fmt.Errorf("record %d has invalid kind %d", i, k)
		}
		instrs[i].Kind = k
	}
	off := kb
	switch pred {
	case predPrev:
		last := int64(0)
		for i := 0; i < n; i++ {
			d, k := binary.Varint(resid[off:])
			if k <= 0 {
				return fmt.Errorf("record %d iaddr residual truncated", i)
			}
			off += k
			last += d
			ia[i] = uint64(last)
		}
	case predPhase:
		if len(prevIA) < n {
			return fmt.Errorf("phase-predicted block of %d records lacks a %d-record predecessor", n, len(prevIA))
		}
		for i := 0; i < n; i++ {
			d, k := binary.Varint(resid[off:])
			if k <= 0 {
				return fmt.Errorf("record %d iaddr residual truncated", i)
			}
			off += k
			ia[i] = uint64(int64(prevIA[i]) + d)
		}
	default:
		return fmt.Errorf("invalid predictor %d", pred)
	}
	for i := 0; i < n; i++ {
		instrs[i].IAddr = ia[i]
	}
	lastDA := int64(0)
	for i := 0; i < n; i++ {
		if instrs[i].Kind == cpu.KindALU {
			instrs[i].DAddr = 0
			continue
		}
		d, k := binary.Varint(resid[off:])
		if k <= 0 {
			return fmt.Errorf("record %d daddr residual truncated", i)
		}
		off += k
		lastDA += d
		instrs[i].DAddr = uint64(lastDA)
	}
	if off != len(resid) {
		return fmt.Errorf("%d trailing residual bytes", len(resid)-off)
	}
	return nil
}
