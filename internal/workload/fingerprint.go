package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file derives a workload's *behavioral fingerprint*: a stable byte
// string that changes exactly when the instruction streams, pipeline
// parameters, scalability limit, or prewarm layout a workload produces
// could change. The experiment engine folds it into Point.Key, the
// canonical content hash behind the campaign result cache — two points
// may share a cache entry only when their workloads are behaviorally
// identical, so the fingerprint must capture calibration content, not
// just the display name.

// Fingerprinter lets a user Workload implementation supply its own
// behavioral fingerprint for content-addressed result caching. The
// returned bytes must be deterministic and must change whenever the
// workload's observable behaviour (streams, core parameters, layout,
// scalability) changes.
type Fingerprinter interface {
	WorkloadFingerprint() ([]byte, error)
}

// Fingerprint returns w's behavioral fingerprint. The builtin families
// fingerprint structurally — a Synthetic by its calibration block, a Mix
// by its members and assignment, a Phased by its schedule, a Capture by
// a hash of its canonical NOC2 encoding — and decorators prefix the
// wrapped fingerprint. Unknown implementations must provide
// Fingerprinter; a bare name is not identity enough for a shared cache,
// so they are an error rather than a silent alias hazard.
func Fingerprint(w Workload) ([]byte, error) {
	switch t := w.(type) {
	case unlimited:
		inner, err := Fingerprint(t.Workload)
		if err != nil {
			return nil, err
		}
		return append([]byte("unlimited:"), inner...), nil
	case Synthetic:
		b, err := json.Marshal(t.P)
		if err != nil {
			return nil, err
		}
		return append([]byte("synth:"), b...), nil
	case *Mix:
		b, err := json.Marshal(struct {
			Name    string   `json:"name"`
			Members []Params `json:"members"`
			Assign  []int    `json:"assign,omitempty"`
		}{t.name, t.members, t.assign})
		if err != nil {
			return nil, err
		}
		return append([]byte("mix:"), b...), nil
	case *Phased:
		b, err := json.Marshal(struct {
			Name   string  `json:"name"`
			Phases []Phase `json:"phases"`
		}{t.name, t.phases})
		if err != nil {
			return nil, err
		}
		return append([]byte("phased:"), b...), nil
	case *Capture:
		// The NOC2 encoding is canonical (varint streams in core order),
		// so its hash identifies the recording's full content — renaming
		// or moving the file does not change the key, re-recording does.
		var buf bytes.Buffer
		if err := t.Write(&buf); err != nil {
			return nil, fmt.Errorf("workload: fingerprinting capture %q: %w", t.Source, err)
		}
		sum := sha256.Sum256(buf.Bytes())
		return []byte("capture:" + hex.EncodeToString(sum[:])), nil
	case *TraceFile:
		// A NOC3 trace stores the SHA-256 of its canonical NOC2 encoding,
		// computed while recording — so the same recording fingerprints
		// identically in either container format and every
		// content-addressed cache (Point.Key, checkpoint prefixes)
		// survives a format conversion.
		fp := t.Fingerprint()
		return []byte("capture:" + hex.EncodeToString(fp[:])), nil
	}
	if f, ok := w.(Fingerprinter); ok {
		b, err := f.WorkloadFingerprint()
		if err != nil {
			return nil, err
		}
		return append([]byte("custom:"), b...), nil
	}
	return nil, fmt.Errorf("workload: %q (%T) has no behavioral fingerprint; implement workload.Fingerprinter to make it cacheable", w.Name(), w)
}
