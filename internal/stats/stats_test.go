package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMeanVariance(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningCI95ShrinksWithSamples(t *testing.T) {
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
	var one Running
	one.Add(1)
	if !math.IsInf(one.CI95(), 1) {
		t.Fatal("CI with one sample should be infinite")
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, b := range raw {
			r.Add(float64(b))
			sum += float64(b)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, b := range raw {
			d := float64(b) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-wantVar) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean([]float64{3, 3, 3}); math.Abs(g-3) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 3", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean must reject non-positive values")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // buckets [0,5) [5,10) ... [45,50)
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-49.5) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
	// Half of the values (50..99) overflowed; the median bound is the
	// overflow boundary.
	if got := h.Median(); got != 50 {
		t.Fatalf("Median = %d, want 50", got)
	}
	if p := h.Percentile(0.25); p != 25 {
		t.Fatalf("P25 = %d, want 25", p)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	h := NewHistogram(64, 2)
	for v := int64(0); v < 1000; v++ {
		h.Add(v % 100)
	}
	prev := int64(0)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		cur := h.Percentile(p)
		if cur < prev {
			t.Fatalf("percentiles not monotonic at %v: %d < %d", p, cur, prev)
		}
		prev = cur
	}
}

func TestNormalizeTo(t *testing.T) {
	got := NormalizeTo([]float64{2, 6}, []float64{2, 3})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("NormalizeTo = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
	if Median(nil) != 0 {
		t.Fatal("Median(nil) should be 0")
	}
}
