package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomHist builds a histogram from n samples drawn by r, returning both
// the histogram and the raw samples (for exact-quantile comparison).
func randomHist(r *rand.Rand, n int) (*LogHist, []int64) {
	h := &LogHist{}
	samples := make([]int64, n)
	for i := range samples {
		// Mix magnitudes: exact-bucket range, mid octaves, and heavy tail.
		var v int64
		switch r.Intn(3) {
		case 0:
			v = r.Int63n(16)
		case 1:
			v = r.Int63n(1 << 14)
		default:
			v = r.Int63n(1 << 40)
		}
		samples[i] = v
		h.Record(v)
	}
	return h, samples
}

// TestLogHistMergeCommutative: a⊕b == b⊕a, bucket for bucket.
func TestLogHistMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a, _ := randomHist(r, r.Intn(200))
		b, _ := randomHist(r, r.Intn(200))
		ab := &LogHist{}
		ab.Merge(a)
		ab.Merge(b)
		ba := &LogHist{}
		ba.Merge(b)
		ba.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\na⊕b %+v\nb⊕a %+v", trial, ab, ba)
		}
	}
}

// TestLogHistMergeAssociative: (a⊕b)⊕c == a⊕(b⊕c).
func TestLogHistMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, _ := randomHist(r, r.Intn(100))
		b, _ := randomHist(r, r.Intn(100))
		c, _ := randomHist(r, r.Intn(100))
		left := &LogHist{}
		left.Merge(a)
		left.Merge(b)
		left.Merge(c)
		right := &LogHist{}
		bc := &LogHist{}
		bc.Merge(b)
		bc.Merge(c)
		right.Merge(a)
		right.Merge(bc)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative", trial)
		}
	}
}

// TestLogHistMergeEqualsDirect: merging per-shard histograms must equal
// recording every sample into one histogram — the property that makes
// per-core and per-seed aggregation exact.
func TestLogHistMergeEqualsDirect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	direct := &LogHist{}
	merged := &LogHist{}
	for shard := 0; shard < 8; shard++ {
		h, samples := randomHist(r, 100+r.Intn(100))
		for _, v := range samples {
			direct.Record(v)
		}
		merged.Merge(h)
	}
	if !reflect.DeepEqual(direct, merged) {
		t.Fatalf("shard merge diverged from direct recording:\n%+v\n%+v", direct, merged)
	}
}

// TestLogHistQuantileBounds: Quantile(p) is an upper bound on the exact
// sample quantile and within the 12.5% bucket-width guarantee.
func TestLogHistQuantileBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		h, samples := randomHist(r, 500+r.Intn(500))
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, p := range []float64{0.01, 0.5, 0.95, 0.99, 1.0} {
			exact := samples[int(math.Ceil(p*float64(len(samples))))-1]
			got := h.Quantile(p)
			if got < exact {
				t.Fatalf("trial %d p=%v: quantile %d under-estimates exact %d", trial, p, got, exact)
			}
			if float64(got) > float64(exact)*1.125+1 {
				t.Fatalf("trial %d p=%v: quantile %d exceeds 12.5%% error vs exact %d", trial, p, got, exact)
			}
		}
		if h.Quantile(1.0) != h.Max() {
			t.Fatalf("trial %d: p=1 quantile %d != max %d", trial, h.Quantile(1.0), h.Max())
		}
	}
}

// TestLogHistExactSmallValues: the linear range is bucket-exact.
func TestLogHistExactSmallValues(t *testing.T) {
	h := &LogHist{}
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	for i := 1; i <= 16; i++ {
		p := float64(i) / 16
		if got, want := h.Quantile(p), int64(i-1); got != want {
			t.Fatalf("Quantile(%v) = %d, want exact %d", p, got, want)
		}
	}
}

// TestLogHistBucketEdges pins the bucket map: indices are monotone, upper
// edges invert the map, and extremes don't overflow.
func TestLogHistBucketEdges(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		i := logHistBucket(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = i
		if u := logHistUpper(i); u < v {
			t.Fatalf("upper edge %d below member value %d", u, v)
		}
		if i >= logHistMaxBuckets {
			t.Fatalf("bucket %d exceeds cap %d", i, logHistMaxBuckets)
		}
	}
	if logHistBucket(-5) != 0 {
		t.Fatal("negative samples must clamp to bucket 0")
	}
}

// TestLogHistJSONRoundTrip: encode/decode reproduces the histogram
// exactly (the Result JSON round-trip test relies on this).
func TestLogHistJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	hists := []*LogHist{{}}
	for trial := 0; trial < 20; trial++ {
		h, _ := randomHist(r, r.Intn(300))
		hists = append(hists, h)
	}
	for i, h := range hists {
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		back := &LogHist{}
		if err := json.Unmarshal(data, back); err != nil {
			t.Fatalf("hist %d: %v (json %s)", i, err, data)
		}
		if !reflect.DeepEqual(h, back) {
			t.Fatalf("hist %d did not survive JSON:\n%+v\n%+v\n%s", i, h, back, data)
		}
	}
}

// TestLogHistJSONRejectsCorrupt: the decoder refuses inputs violating the
// recorded invariants.
func TestLogHistJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"counts":[1,0],"n":1,"sum":0,"min":0,"max":0}`, // trailing zero
		`{"counts":[-1],"n":-1,"sum":0,"min":0,"max":0}`, // negative count
		`{"counts":[2],"n":1,"sum":0,"min":0,"max":0}`,   // n mismatch
		`{"counts":[1],"n":1,"sum":0,"min":5,"max":0}`,   // min > max
		`{"counts":[1],"n":1,"sum":0,"min":0,"max":100}`, // max in wrong bucket
		`{"counts":[],"n":5,"sum":0,"min":0,"max":0}`,    // n without counts
		`{"counts":[1],"n":0,"sum":0,"min":0,"max":0}`,   // counts without n
		`{"counts":[0,1],"n":1,"sum":3,"min":0,"max":1}`, // min in empty bucket
		`{"counts":[1],"n":1,"sum":-2,"min":0,"max":0}`,  // negative sum
	} {
		h := &LogHist{}
		if err := json.Unmarshal([]byte(bad), h); err == nil {
			t.Errorf("decoder accepted corrupt input %s", bad)
		}
	}
}

// TestLogHistReset: a reset histogram records like a fresh one.
func TestLogHistReset(t *testing.T) {
	h := &LogHist{}
	h.Record(100)
	h.Record(7)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset left state behind: %+v", h)
	}
	h.Record(3)
	fresh := &LogHist{}
	fresh.Record(3)
	if h.Count() != fresh.Count() || h.Quantile(1) != fresh.Quantile(1) ||
		h.Min() != fresh.Min() || h.Max() != fresh.Max() {
		t.Fatalf("reset histogram diverges from fresh: %+v vs %+v", h, fresh)
	}
}
