// Package stats provides the measurement machinery used by the evaluation
// harness: running mean/variance, confidence intervals, geometric means and
// latency histograms. It replaces the paper's SimFlex statistical sampling
// with warm-up + measurement windows over multiple seeds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of samples with Welford's algorithm.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample seen.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample seen.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// CI95 returns the half-width of the 95% confidence interval on the mean,
// using the normal approximation (the harness takes >=30 samples before
// quoting intervals, matching the paper's "95% confidence, <4% error").
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return math.Inf(1)
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// String formats the mean with its confidence half-width.
func (r *Running) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean(), r.CI95(), r.n)
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Histogram is a fixed-bucket latency histogram with overflow tracking.
type Histogram struct {
	BucketWidth int64
	buckets     []int64
	overflow    int64
	total       int64
	sum         int64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(n int, width int64) *Histogram {
	if n < 1 || width < 1 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{BucketWidth: width, buckets: make([]int64, n)}
}

// Add records a value.
func (h *Histogram) Add(v int64) {
	h.total++
	h.sum += v
	i := v / h.BucketWidth
	if i < 0 {
		i = 0
	}
	if int(i) >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns an upper bound for the p-quantile (0 < p <= 1) using
// bucket upper edges; overflow values report the overflow boundary.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.total)))
	var acc int64
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return int64(i+1) * h.BucketWidth
		}
	}
	return int64(len(h.buckets)) * h.BucketWidth
}

// Median is Percentile(0.5).
func (h *Histogram) Median() int64 { return h.Percentile(0.5) }

// NormalizeTo divides each value by base[i] and returns the ratios; it is
// the helper behind every "normalized to mesh" figure.
func NormalizeTo(vals, base []float64) []float64 {
	if len(vals) != len(base) {
		panic("stats: NormalizeTo length mismatch")
	}
	out := make([]float64, len(vals))
	for i := range vals {
		if base[i] == 0 {
			panic("stats: NormalizeTo zero base")
		}
		out[i] = vals[i] / base[i]
	}
	return out
}

// Median of a slice (copy, sort, middle). Used by multi-seed harnesses.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
