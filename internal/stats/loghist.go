package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// LogHist is a mergeable log-bucketed streaming histogram for
// non-negative integer samples (request latencies in cycles). Values
// below logHistLinear get exact unit buckets; beyond that each power-of-two
// octave splits into logHistSub sub-buckets, bounding the relative
// quantile error at 1/logHistSub (12.5%) while keeping the bucket count
// small enough to ship inside every Result. Merging two histograms is
// element-wise count addition, so it is associative and commutative —
// per-core and per-seed histograms combine in any order without changing
// the aggregate (the property tests pin this).
//
// The zero value is an empty histogram ready for use.
type LogHist struct {
	counts []int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

const (
	logHistLinear = 16 // exact buckets for values 0..15
	logHistSub    = 8  // sub-buckets per octave above the linear range

	// logHistMaxBuckets caps the bucket array: the largest int64 sample
	// lands in bucket 16 + (62-4)*8 + 7 = 487.
	logHistMaxBuckets = 488
)

// logHistBucket maps a sample to its bucket index.
func logHistBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < logHistLinear {
		return int(v)
	}
	top := bits.Len64(uint64(v)) - 1 // v in [2^top, 2^(top+1)), top >= 4
	sub := int((v - int64(1)<<top) >> (top - 3))
	return logHistLinear + (top-4)*logHistSub + sub
}

// logHistUpper returns the largest sample value bucket i holds; Quantile
// reports these upper edges, so it never under-estimates.
func logHistUpper(i int) int64 {
	if i < logHistLinear {
		return int64(i)
	}
	k := i - logHistLinear
	top := 4 + k/logHistSub
	sub := int64(k % logHistSub)
	width := int64(1) << (top - 3)
	return int64(1)<<top + sub*width + width - 1
}

// Record adds one sample (negative samples clamp to 0).
func (h *LogHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	i := logHistBucket(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
}

// Count returns the number of recorded samples.
func (h *LogHist) Count() int64 { return h.n }

// Sum returns the exact sum of recorded samples.
func (h *LogHist) Sum() int64 { return h.sum }

// Mean returns the exact sample mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample (0 when empty).
func (h *LogHist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *LogHist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound on the p-quantile (p clamped to (0, 1]):
// the upper edge of the bucket holding the ceil(p*n)-th smallest sample,
// within 12.5% of the true value. Empty histograms report 0.
func (h *LogHist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(float64(h.n) * p)
	if float64(target) < float64(h.n)*p {
		target++
	}
	if target < 1 {
		target = 1
	}
	var acc int64
	for i, c := range h.counts {
		acc += c
		if acc >= target {
			u := logHistUpper(i)
			if u > h.max {
				u = h.max // exact tail: the top bucket cannot exceed the max sample
			}
			return u
		}
	}
	return h.Max()
}

// Merge folds other into h: counts add element-wise, so merge order never
// changes the aggregate. A nil or empty other is a no-op.
func (h *LogHist) Merge(other *LogHist) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
	if len(other.counts) > len(h.counts) {
		grown := make([]int64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset empties the histogram in place, keeping its bucket capacity.
func (h *LogHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.counts = h.counts[:0]
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// logHistJSON is the wire form; counts carry no trailing zeros (the
// in-memory invariant: the array ends at the max sample's bucket).
type logHistJSON struct {
	Counts []int64 `json:"counts,omitempty"`
	N      int64   `json:"n"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// MarshalJSON encodes the histogram.
func (h LogHist) MarshalJSON() ([]byte, error) {
	return json.Marshal(logHistJSON{Counts: h.counts, N: h.n, Sum: h.sum, Min: h.min, Max: h.max})
}

// UnmarshalJSON decodes a histogram, rejecting anything that violates the
// invariants Record/Merge maintain: the bucket count is capped (no
// attacker-sized allocations), counts are non-negative with no trailing
// zeros, the total matches n, and min/max land in occupied buckets. A
// decoded histogram is therefore always safe to Merge.
func (h *LogHist) UnmarshalJSON(data []byte) error {
	var w logHistJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Counts) > logHistMaxBuckets {
		return fmt.Errorf("stats: histogram has %d buckets, max %d", len(w.Counts), logHistMaxBuckets)
	}
	var total int64
	for i, c := range w.Counts {
		if c < 0 {
			return fmt.Errorf("stats: histogram bucket %d has negative count %d", i, c)
		}
		total += c
		if total < 0 {
			return fmt.Errorf("stats: histogram counts overflow")
		}
	}
	if total != w.N {
		return fmt.Errorf("stats: histogram counts sum to %d, n says %d", total, w.N)
	}
	if w.N == 0 {
		if len(w.Counts) != 0 || w.Sum != 0 || w.Min != 0 || w.Max != 0 {
			return fmt.Errorf("stats: empty histogram with non-zero fields")
		}
		*h = LogHist{}
		return nil
	}
	if w.Min < 0 || w.Max < w.Min {
		return fmt.Errorf("stats: histogram min/max %d/%d invalid", w.Min, w.Max)
	}
	if len(w.Counts) == 0 || w.Counts[len(w.Counts)-1] == 0 {
		return fmt.Errorf("stats: histogram counts have a trailing zero")
	}
	if got := logHistBucket(w.Max); got != len(w.Counts)-1 {
		return fmt.Errorf("stats: histogram max %d lands in bucket %d, counts end at %d", w.Max, got, len(w.Counts)-1)
	}
	if mb := logHistBucket(w.Min); w.Counts[mb] == 0 {
		return fmt.Errorf("stats: histogram min %d lands in an empty bucket", w.Min)
	}
	if w.Sum < 0 {
		return fmt.Errorf("stats: histogram sum negative")
	}
	h.counts = w.Counts
	h.n, h.sum, h.min, h.max = w.N, w.Sum, w.Min, w.Max
	return nil
}
