package stats

import (
	"encoding/json"
	"testing"
)

// FuzzLogHistJSON holds the histogram decoder to the no-panic,
// no-unbounded-allocation contract on arbitrary bytes — latency
// histograms travel inside campaign store entries and Report JSON that
// other processes (and hand editors) produce. Anything that decodes must
// uphold the invariants Merge and Quantile trust, and must re-encode to
// bytes that decode to the identical histogram. `go test` runs the seed
// corpus on every CI pass; `go test -fuzz FuzzLogHistJSON` explores
// further.
func FuzzLogHistJSON(f *testing.F) {
	valid := &LogHist{}
	for _, v := range []int64{0, 1, 15, 16, 500, 1 << 20} {
		valid.Record(v)
	}
	seed, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                                     // truncated mid-object
	f.Add([]byte(`{}`))                                           // all defaults
	f.Add([]byte(`{"counts":[1],"n":1,"sum":0,"min":0,"max":0}`)) // minimal valid
	f.Add([]byte(`{"counts":[1,0],"n":1,"sum":0}`))               // trailing zero
	f.Add([]byte(`{"n":9223372036854775807,"sum":-1}`))           // extremes
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		h := &LogHist{}
		if err := json.Unmarshal(data, h); err != nil {
			return
		}
		// Decoded histograms must be internally consistent...
		var total int64
		for _, c := range h.counts {
			if c < 0 {
				t.Fatalf("decoded negative bucket count: %+v", h)
			}
			total += c
		}
		if total != h.n {
			t.Fatalf("decoded counts sum %d != n %d", total, h.n)
		}
		if len(h.counts) > logHistMaxBuckets {
			t.Fatalf("decoded %d buckets, cap is %d", len(h.counts), logHistMaxBuckets)
		}
		if h.n > 0 && (h.min < 0 || h.max < h.min || h.Quantile(1) != h.max) {
			t.Fatalf("decoded inconsistent min/max/quantile: %+v", h)
		}
		// ...safe to merge...
		m := &LogHist{}
		m.Record(3)
		m.Merge(h)
		if m.Count() != h.n+1 {
			t.Fatalf("merge of decoded histogram lost samples")
		}
		// ...and canonical: re-encoding round-trips bit-stable.
		out, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		again := &LogHist{}
		if err := json.Unmarshal(out, again); err != nil {
			t.Fatalf("re-encoded histogram does not decode: %v (%s)", err, out)
		}
	})
}
