// Package ckpt is the checkpoint serialization substrate: a compact
// binary codec (varints, zigzag deltas, bit-exact floats, packed bitsets)
// plus a sectioned container format with per-section CRC integrity and an
// allocation-capped strict reader.
//
// The package is deliberately leaf-level (stdlib only) so every component
// package — sim, cache, cpu, coherence, mem, noc, topo, workload, opensys,
// chip — can implement the Saver/Loader contract against it without import
// cycles. Components serialize *behavioral* private state (queues, arrays,
// cursors, RNG positions); measurement statistics are excluded by
// convention and re-zeroed on the restore path, exactly as the warmup
// boundary zeroes them.
//
// # Container format
//
// A checkpoint is a flat sequence of sections:
//
//	magic   "NOCK" (4 bytes)
//	version uvarint (currently 1)
//	section*:
//	  kind    uvarint  (component kind, caller-defined)
//	  length  uvarint  (payload bytes)
//	  crc32   4 bytes LE (IEEE, over the payload)
//	  payload length bytes
//
// Sections end at EOF; trailing garbage after a well-formed section is an
// error. The reader parses only headers up front — payloads stay raw
// subslices of the input and are CRC-verified lazily when a section is
// opened, so inspecting a checkpoint's index touches no section body.
//
// # Strictness
//
// The reader never trusts a decoded length: the whole input is bounded by
// MaxCheckpointBytes, section payloads must lie inside the input, and
// every decoded element count is validated against the bytes that could
// possibly encode that many elements before anything is allocated.
// Corrupt or truncated inputs produce errors, never panics or oversized
// allocations (FuzzReadCheckpoint enforces this).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the container format version this package writes.
const Version = 1

// MaxCheckpointBytes bounds a whole checkpoint (256MB): a 64-core chip's
// warm state is tens of MB, so the cap is generous while still refusing
// absurd inputs outright.
const MaxCheckpointBytes = 1 << 28

// maxSections bounds the section count a reader will index.
const maxSections = 1 << 16

var magic = [4]byte{'N', 'O', 'C', 'K'}

// Saver is implemented by components that can serialize their private
// behavioral state into a checkpoint section.
type Saver interface {
	SaveState(e *Enc)
}

// Loader is the inverse contract; decode failures land in the Dec's
// sticky error, which the orchestrator checks once per section.
type Loader interface {
	LoadState(d *Dec)
}

// --- encoder ----------------------------------------------------------------

// Enc is an append-only checkpoint section encoder. The zero value is
// ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded section payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Enc) Len() int { return len(e.buf) }

// Reset empties the encoder, retaining its storage.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// I64 appends a signed (zigzag) varint.
func (e *Enc) I64(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Int appends an int as a signed varint.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float bit-exactly as 8 fixed little-endian bytes.
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a delta-encoded uint64 array: the count, then each
// element as a zigzag varint of its delta from the predecessor (first
// delta is from zero). Sorted or clustered arrays — cache tags, LRU age
// stamps, sorted map keys — compress to a byte or two per element.
func (e *Enc) U64s(vs []uint64) {
	e.U64(uint64(len(vs)))
	prev := uint64(0)
	for _, v := range vs {
		e.I64(int64(v - prev))
		prev = v
	}
}

// Bools appends a packed bitset: the count, then ceil(n/8) bytes.
func (e *Enc) Bools(vs []bool) {
	e.U64(uint64(len(vs)))
	var b byte
	for i, v := range vs {
		if v {
			b |= 1 << (uint(i) % 8)
		}
		if i%8 == 7 {
			e.buf = append(e.buf, b)
			b = 0
		}
	}
	if len(vs)%8 != 0 {
		e.buf = append(e.buf, b)
	}
}

// --- decoder ----------------------------------------------------------------

// Dec decodes one section payload with a sticky error: after the first
// failure every subsequent read returns zero values, so call sites stay
// linear and the orchestrator checks Err once per section.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

// Corrupt records a semantic corruption found by a component decoder
// (geometry mismatch, impossible occupancy); it sticks like any other
// decode failure.
func (d *Dec) Corrupt(format string, args ...any) { d.fail(format, args...) }

// U64 reads an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// I64 reads a signed (zigzag) varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads a boolean byte; values other than 0/1 are corruption.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("invalid bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// F64 reads a bit-exact float.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count reads an element count for a sequence whose elements each encode
// to at least one byte, validating it against the remaining input before
// the caller allocates — a corrupt count cannot force an oversized
// allocation.
func (d *Dec) Count() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail("element count %d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// U64s reads a delta-encoded array written by Enc.U64s.
func (d *Dec) U64s() []uint64 {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	prev := uint64(0)
	for i := range vs {
		prev += uint64(d.I64())
		vs[i] = prev
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Bools reads a packed bitset written by Enc.Bools.
func (d *Dec) Bools() []bool {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	nb := (n + 7) / 8
	if nb > uint64(d.Remaining()) {
		d.fail("bitset of %d bits exceeds %d remaining bytes", n, d.Remaining())
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = d.b[d.off+i/8]&(1<<(uint(i)%8)) != 0
	}
	d.off += int(nb)
	return vs
}

// --- container --------------------------------------------------------------

// Section is one component's serialized state inside a container.
type Section struct {
	Kind    uint64
	payload []byte
	crc     uint32
}

// Len returns the payload size in bytes.
func (s *Section) Len() int { return len(s.payload) }

// Writer streams a container to an io.Writer.
type Writer struct {
	w   io.Writer
	err error
	hdr []byte
}

// NewWriter writes the container preamble and returns the writer.
func NewWriter(w io.Writer) *Writer {
	cw := &Writer{w: w}
	var buf []byte
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, Version)
	cw.write(buf)
	return cw
}

func (cw *Writer) write(b []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(b)
}

// Section appends one section (header, CRC, payload). The payload is
// written immediately; callers may reuse the encoder afterwards.
func (cw *Writer) Section(kind uint64, payload []byte) {
	cw.hdr = cw.hdr[:0]
	cw.hdr = binary.AppendUvarint(cw.hdr, kind)
	cw.hdr = binary.AppendUvarint(cw.hdr, uint64(len(payload)))
	cw.hdr = binary.LittleEndian.AppendUint32(cw.hdr, crc32.ChecksumIEEE(payload))
	cw.write(cw.hdr)
	cw.write(payload)
}

// Err returns the first underlying write failure, or nil.
func (cw *Writer) Err() error { return cw.err }

// Container is a parsed checkpoint: the section index plus raw payload
// views into the input buffer. Payload integrity is verified lazily by
// Open.
type Container struct {
	Version  uint64
	sections []Section
}

// ErrNotCheckpoint marks inputs without the container magic.
var ErrNotCheckpoint = errors.New("ckpt: not a NOCK checkpoint")

// Read parses a container from r, bounded by MaxCheckpointBytes. Only
// headers are validated here; section payloads are CRC-checked when
// opened.
func Read(r io.Reader) (*Container, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxCheckpointBytes+1))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading checkpoint: %w", err)
	}
	if len(data) > MaxCheckpointBytes {
		return nil, fmt.Errorf("ckpt: checkpoint exceeds the %d-byte cap", MaxCheckpointBytes)
	}
	return Parse(data)
}

// Parse parses a container from an in-memory buffer the Container will
// alias (callers must not mutate data afterwards).
func Parse(data []byte) (*Container, error) {
	if len(data) > MaxCheckpointBytes {
		return nil, fmt.Errorf("ckpt: checkpoint exceeds the %d-byte cap", MaxCheckpointBytes)
	}
	if len(data) < len(magic) || [4]byte(data[:4]) != magic {
		return nil, ErrNotCheckpoint
	}
	off := len(magic)
	ver, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, errors.New("ckpt: truncated version")
	}
	off += n
	if ver != Version {
		return nil, fmt.Errorf("ckpt: unsupported container version %d (want %d)", ver, Version)
	}
	c := &Container{Version: ver}
	for off < len(data) {
		if len(c.sections) >= maxSections {
			return nil, fmt.Errorf("ckpt: more than %d sections", maxSections)
		}
		kind, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("ckpt: truncated section kind at offset %d", off)
		}
		off += n
		length, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("ckpt: truncated section length at offset %d", off)
		}
		off += n
		if off+4 > len(data) {
			return nil, fmt.Errorf("ckpt: truncated section CRC at offset %d", off)
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if length > uint64(len(data)-off) {
			return nil, fmt.Errorf("ckpt: section kind %d claims %d bytes with %d remaining", kind, length, len(data)-off)
		}
		c.sections = append(c.sections, Section{
			Kind:    kind,
			payload: data[off : off+int(length)],
			crc:     crc,
		})
		off += int(length)
	}
	return c, nil
}

// Len returns the section count.
func (c *Container) Len() int { return len(c.sections) }

// Kind returns section i's kind.
func (c *Container) Kind(i int) uint64 { return c.sections[i].Kind }

// SectionLen returns section i's payload size.
func (c *Container) SectionLen(i int) int { return len(c.sections[i].payload) }

// Open CRC-verifies section i and returns a decoder over its payload.
func (c *Container) Open(i int) (*Dec, error) {
	if i < 0 || i >= len(c.sections) {
		return nil, fmt.Errorf("ckpt: section %d out of range (have %d)", i, len(c.sections))
	}
	s := &c.sections[i]
	if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
		return nil, fmt.Errorf("ckpt: section %d (kind %d) CRC mismatch: stored %08x, computed %08x", i, s.Kind, s.crc, got)
	}
	return NewDec(s.payload), nil
}
