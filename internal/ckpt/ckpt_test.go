package ckpt

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestCodecRoundTrip drives every Enc primitive through its Dec inverse
// in one interleaved payload — the same shape component SaveState/
// LoadState pairs produce.
func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0)
	e.U64(1)
	e.U64(math.MaxUint64)
	e.I64(0)
	e.I64(-1)
	e.I64(math.MinInt64)
	e.I64(math.MaxInt64)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(0)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.F64(math.Pi)
	e.String("")
	e.String("warm state")
	e.U64s(nil)
	e.U64s([]uint64{7, 7, 9, 1 << 40, 3}) // non-monotonic: deltas go negative
	e.Bools(nil)
	e.Bools([]bool{true, false, true, true, false, false, true, true, true}) // 9 bits: ragged tail byte

	d := NewDec(e.Bytes())
	check := func(name string, got, want any) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
	check("u64 zero", d.U64(), uint64(0))
	check("u64 one", d.U64(), uint64(1))
	check("u64 max", d.U64(), uint64(math.MaxUint64))
	check("i64 zero", d.I64(), int64(0))
	check("i64 -1", d.I64(), int64(-1))
	check("i64 min", d.I64(), int64(math.MinInt64))
	check("i64 max", d.I64(), int64(math.MaxInt64))
	check("int", d.Int(), -42)
	check("bool true", d.Bool(), true)
	check("bool false", d.Bool(), false)
	check("f64 zero", d.F64(), 0.0)
	if f := d.F64(); !math.Signbit(f) || f != 0 {
		t.Errorf("negative zero not bit-exact: got %v (signbit %v)", f, math.Signbit(f))
	}
	check("f64 inf", d.F64(), math.Inf(1))
	check("f64 pi", d.F64(), math.Pi)
	check("string empty", d.String(), "")
	check("string", d.String(), "warm state")
	check("u64s nil", d.U64s(), []uint64(nil))
	check("u64s", d.U64s(), []uint64{7, 7, 9, 1 << 40, 3})
	if bs := d.Bools(); len(bs) != 0 {
		t.Errorf("bools nil: got %v, want empty", bs)
	}
	check("bools", d.Bools(), []bool{true, false, true, true, false, false, true, true, true})
	if err := d.Err(); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes after full decode", d.Remaining())
	}
}

// TestDecStickyError checks the decoder's central contract: the first
// failure sticks, later reads return zero values, and no read past the
// failure can panic.
func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{0x80}) // truncated varint
	if v := d.U64(); v != 0 {
		t.Fatalf("failed read returned %d, want 0", v)
	}
	first := d.Err()
	if first == nil {
		t.Fatal("truncated varint did not fail")
	}
	// Every primitive after the failure is a zero-value no-op.
	if d.I64() != 0 || d.Int() != 0 || d.Bool() || d.F64() != 0 ||
		d.String() != "" || d.U64s() != nil || d.Bools() != nil || d.Count() != 0 {
		t.Fatal("reads after a sticky error returned non-zero values")
	}
	if d.Err() != first {
		t.Fatalf("sticky error was replaced: %v -> %v", first, d.Err())
	}
	// Corrupt after a failure must not mask the original error either.
	d.Corrupt("late corruption")
	if d.Err() != first {
		t.Fatal("Corrupt replaced the first error")
	}
}

// TestDecHostileLengths feeds each length-prefixed decoder a count far
// larger than the remaining input: all must error before allocating.
func TestDecHostileLengths(t *testing.T) {
	huge := binary.AppendUvarint(nil, 1<<50)
	cases := map[string]func(*Dec){
		"string": func(d *Dec) { d.String() },
		"count":  func(d *Dec) { d.Count() },
		"u64s":   func(d *Dec) { d.U64s() },
		"bools":  func(d *Dec) { d.Bools() },
	}
	for name, read := range cases {
		d := NewDec(huge)
		read(d)
		if d.Err() == nil {
			t.Errorf("%s accepted a 2^50 length with %d input bytes", name, len(huge))
		}
	}
	// Bool rejects non-0/1 bytes outright.
	d := NewDec([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Error("Bool accepted byte 7")
	}
}

func TestCorruptReportsFirstFailure(t *testing.T) {
	d := NewDec(nil)
	d.Corrupt("bank %d occupancy impossible", 3)
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "bank 3") {
		t.Fatalf("Corrupt error = %v", d.Err())
	}
}

// buildContainer writes a well-formed two-section container for the
// reader tests and the fuzz seed corpus.
func buildContainer(t testing.TB) []byte {
	t.Helper()
	var e Enc
	e.U64(11)
	e.String("section one")
	var buf bytes.Buffer
	cw := NewWriter(&buf)
	cw.Section(4, e.Bytes())
	e.Reset()
	e.U64s([]uint64{1, 2, 3})
	cw.Section(9, e.Bytes())
	cw.Section(2, nil) // empty payloads are legal
	if err := cw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	data := buildContainer(t)
	c, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != Version {
		t.Fatalf("version %d, want %d", c.Version, Version)
	}
	if c.Len() != 3 {
		t.Fatalf("section count %d, want 3", c.Len())
	}
	wantKinds := []uint64{4, 9, 2}
	for i, k := range wantKinds {
		if c.Kind(i) != k {
			t.Fatalf("section %d kind %d, want %d", i, c.Kind(i), k)
		}
	}
	d, err := c.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U64(); v != 11 {
		t.Fatalf("section 0 first value %d, want 11", v)
	}
	if s := d.String(); s != "section one" {
		t.Fatalf("section 0 string %q", s)
	}
	d, err = c.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if vs := d.U64s(); !reflect.DeepEqual(vs, []uint64{1, 2, 3}) {
		t.Fatalf("section 1 array %v", vs)
	}
	if c.SectionLen(2) != 0 {
		t.Fatalf("empty section length %d", c.SectionLen(2))
	}
	if _, err := c.Open(3); err == nil {
		t.Fatal("out-of-range Open succeeded")
	}
	// Read must agree with Parse.
	c2, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("Read section count %d, Parse %d", c2.Len(), c.Len())
	}
}

// TestContainerRejectsCorruption flips, truncates, and inflates a valid
// container; every mutation must surface as an error, at parse time or
// when the damaged section is opened.
func TestContainerRejectsCorruption(t *testing.T) {
	valid := buildContainer(t)

	if _, err := Parse([]byte("not a checkpoint")); err != ErrNotCheckpoint {
		t.Fatalf("wrong magic: err = %v, want ErrNotCheckpoint", err)
	}
	if _, err := Parse(valid[:3]); err != ErrNotCheckpoint {
		t.Fatalf("short magic: err = %v, want ErrNotCheckpoint", err)
	}
	if _, err := Parse(valid[:4]); err == nil {
		t.Fatal("missing version accepted")
	}
	bad := append([]byte{}, valid...)
	bad[4] = 0x7F // version 127
	if _, err := Parse(bad); err == nil {
		t.Fatal("future version accepted")
	}
	for _, cut := range []int{6, 9, len(valid) - 1} {
		if _, err := Parse(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Parse(append(append([]byte{}, valid...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A payload bit flip parses (headers are intact) but fails Open.
	bad = append([]byte{}, valid...)
	bad[len(bad)-8] ^= 0x10
	c, err := Parse(bad)
	if err != nil {
		t.Fatalf("payload flip failed Parse: %v", err)
	}
	opened := 0
	for i := 0; i < c.Len(); i++ {
		if _, err := c.Open(i); err != nil {
			opened++
		}
	}
	if opened == 0 {
		t.Fatal("payload bit flip passed every section CRC")
	}
	// A section claiming more bytes than the input holds dies at Parse.
	hostile := append([]byte{}, magic[:]...)
	hostile = binary.AppendUvarint(hostile, Version)
	hostile = binary.AppendUvarint(hostile, 1)     // kind
	hostile = binary.AppendUvarint(hostile, 1<<40) // absurd length
	hostile = append(hostile, 0, 0, 0, 0)          // crc
	if _, err := Parse(hostile); err == nil {
		t.Fatal("2^40-byte section claim accepted")
	}
	if _, err := Parse(make([]byte, MaxCheckpointBytes+1)); err == nil {
		t.Fatal("over-cap input accepted")
	}
}

// FuzzReadCheckpoint holds the container reader and the section decoders
// to the no-panic, no-oversized-allocation contract on arbitrary bytes:
// corrupt headers, truncated sections, and hostile lengths must produce
// errors — never a panic, never an allocation beyond the input size.
func FuzzReadCheckpoint(f *testing.F) {
	valid := buildContainer(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                           // truncated mid-section
	f.Add(valid[:5])                                      // magic + version only
	f.Add([]byte("NOCK"))                                 // magic only
	f.Add([]byte("nope"))                                 // wrong magic
	f.Add(append(append([]byte{}, valid...), 0xBE, 0xEF)) // trailing garbage
	// Huge claimed section length.
	f.Add([]byte{'N', 'O', 'C', 'K', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must stay inside the input when opened and
		// decoded: walk every section with every primitive until its
		// sticky error fires or the payload is exhausted.
		for i := 0; i < c.Len(); i++ {
			if c.SectionLen(i) > len(data) {
				t.Fatalf("section %d claims %d bytes from a %d-byte input", i, c.SectionLen(i), len(data))
			}
			d, err := c.Open(i)
			if err != nil {
				continue // CRC mismatch on fuzzer-mangled payload
			}
			for d.Err() == nil && d.Remaining() > 0 {
				d.U64()
				d.Bool()
				d.String()
				d.U64s()
				d.Bools()
				d.F64()
			}
		}
	})
}
