package cpu

import (
	"testing"

	"nocout/internal/coherence"
	"nocout/internal/sim"
)

func TestROBFullStopsFetch(t *testing.T) {
	// Head load never fills: the window fills to ROB capacity and fetch
	// stops issuing L1 accesses.
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.DepChance = 0
	p.ROB = 8
	prog := &fixedStream{prog: []Instr{
		{Kind: KindLoad, IAddr: 0x1000, DAddr: 0x100000},
	}}
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 100; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.LoadsIssued > int64(p.ROB) {
		t.Fatalf("issued %d loads into an %d-entry window", c.Stats.LoadsIssued, p.ROB)
	}
}

func TestCommitCreditCapsAtWidth(t *testing.T) {
	// After a long stall, commit may not burst beyond Width per cycle.
	l1 := &fakeL1{}
	blocked := true
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load && blocked {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.DepChance = 0
	p.BaseCPI = 1.0 / 3.0
	prog := &fixedStream{prog: []Instr{
		{Kind: KindLoad, IAddr: 0x1000, DAddr: 0x200000},
		{Kind: KindALU, IAddr: 0x1000},
		{Kind: KindALU, IAddr: 0x1000},
		{Kind: KindALU, IAddr: 0x1000},
	}}
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 50; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs != 0 {
		t.Fatal("nothing should commit while the head load is outstanding")
	}
	// Release the miss.
	blocked = false
	l1.fill(51, 0x200000/64, false, false)
	before := c.Stats.Instrs
	c.Tick(51)
	burst := c.Stats.Instrs - before
	if burst > int64(p.Width) {
		t.Fatalf("committed %d in one cycle, width is %d", burst, p.Width)
	}
}

func TestStatsIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Fatal("IPC with zero cycles must be 0")
	}
}

func TestSerializingLoadBlocksDispatchSameCycle(t *testing.T) {
	// With DepChance=1, the serializing load must be the last dispatch of
	// its cycle (pointer chase: nothing useful behind it).
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.DepChance = 1
	prog := &fixedStream{prog: []Instr{
		{Kind: KindLoad, IAddr: 0x1000, DAddr: 0},
		{Kind: KindALU, IAddr: 0x1000},
	}}
	c := New(0, p, l1, prog)
	c.Tick(1)
	if c.Stats.LoadsIssued != 1 {
		t.Fatalf("first cycle issued %d loads, want exactly 1", c.Stats.LoadsIssued)
	}
}
