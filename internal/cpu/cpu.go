// Package cpu models the chip's cores: ARM Cortex-A15-like 3-way
// out-of-order parts (Table 1: 64-entry ROB, 16-entry LSQ) as interval
// cores. The model captures exactly the behaviour the paper's study turns
// on — how much LLC latency a core can hide:
//
//   - instruction-fetch misses stall fetch until the line returns (the
//     paper's key observation: "L1-I misses stall the processor"),
//   - load misses overlap up to the MSHR/ROB limits unless a dependent
//     consumer serializes them (per-workload DepChance models pointer
//     chasing and limits MLP),
//   - stores retire through a write buffer and never block commit unless
//     the miss file back-pressures,
//   - commit proceeds in order at up to Width per cycle, derated by the
//     workload's base CPI (its intrinsic ILP).
package cpu

import (
	"fmt"

	"nocout/internal/cache"
	"nocout/internal/coherence"
	"nocout/internal/sim"
)

// InstrKind classifies instructions by memory behaviour.
type InstrKind uint8

// Instruction kinds.
const (
	KindALU InstrKind = iota
	KindLoad
	KindStore
	// KindIdle is an open-system stream's "no work pending" answer: fetch
	// consumes nothing this cycle — no I-side access, no ROB entry, no
	// committed instruction — and polls the stream again next cycle. Closed
	// -loop streams never emit it, so their pipelines are untouched.
	KindIdle
)

// Instr is one dynamic instruction from a workload stream.
type Instr struct {
	Kind  InstrKind
	IAddr uint64 // instruction byte address
	DAddr uint64 // data byte address (loads/stores)
}

// Stream produces a core's dynamic instruction trace. Next has no error
// path by design — a simulation cannot continue without its next
// instruction — so implementations backed by external state decoded on
// demand (the workload package's block-streamed trace replay, for one)
// must validate that state up front when constructed and may panic only
// on genuine mid-run corruption of an already-validated source.
type Stream interface {
	Next() Instr
}

// TimedStream is a Stream that wants to know the current cycle when asked
// for work — the contract open-system sources use to release requests on
// their own arrival schedule (and answer KindIdle when none is due). A
// core fetches via NextAt when its stream implements this; NextAt is
// called at most once per pipeline slot and only on cycles fetch can make
// progress, so implementations see a non-decreasing clock.
type TimedStream interface {
	Stream
	NextAt(now sim.Cycle) Instr
}

// RetireObserver is a Stream that wants commit-time notification: the
// core reports every batch of retired instructions with the cycle it
// happened, which is how open-system sources timestamp request
// completions exactly. Closed-loop streams simply don't implement it.
type RetireObserver interface {
	OnRetire(now sim.Cycle, n int)
}

// Params configures a core's pipeline.
type Params struct {
	Width     int     // fetch/commit width (3)
	ROB       int     // reorder-buffer entries (64)
	BaseCPI   float64 // cycles per instruction absent memory stalls (>= 1/Width)
	DepChance float64 // probability a load miss serializes the instruction window
	Seed      uint64
}

// DefaultParams returns the Table 1 core configuration.
func DefaultParams() Params {
	return Params{Width: 3, ROB: 64, BaseCPI: 0.6, DepChance: 0.3}
}

// Stats aggregates a core's activity and stall breakdown.
type Stats struct {
	Instrs       int64
	Cycles       int64
	IfetchStall  int64 // cycles with fetch blocked on an L1-I miss fill
	DataStall    int64 // cycles with commit blocked on a load miss
	SerialStall  int64 // cycles with fetch blocked by a serializing load
	BackPressure int64 // cycles stalled on a full MSHR file
	LoadsIssued  int64
	StoresIssued int64
	IfetchMisses int64
	PeakOutstand int64 // max concurrent load misses observed (MLP witness)
}

// IPC returns committed instructions per cycle over the counted window.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	mem     bool
	line    uint64
	waiting bool // load miss outstanding
}

// L1Port is the slice of the L1 controller the core drives; satisfied by
// *coherence.L1 and by test fakes.
type L1Port interface {
	Access(now sim.Cycle, line uint64, kind coherence.AccessKind) coherence.Outcome
	SetFillListener(fn func(now sim.Cycle, line uint64, instr, write bool))
}

// Core is one interval-model core bound to an L1 controller.
type Core struct {
	ID     int
	params Params

	l1     L1Port
	stream Stream
	timed  TimedStream    // non-nil when stream wants the fetch-time clock
	retire RetireObserver // non-nil when stream wants commit notifications
	rng    *sim.RNG

	rob      []robEntry
	head     int
	count    int
	credit   float64
	fetchPC  uint64 // current fetch line (byte-address line id)
	haveLine bool

	fetchStall  bool
	fetchLine   uint64 // line being waited on (L1-I miss)
	serialize   bool
	serialLine  uint64
	retryInstr  Instr // instruction blocked on MSHR back-pressure
	haveRetry   bool  // retryInstr holds a deferred instruction
	outstanding int64 // load misses in flight

	enabled bool

	waker    sim.Waker
	lastSeen sim.Cycle // last cycle accounted (tick or lazy catch-up)

	Stats Stats
}

// New builds a core over its L1 and workload stream. The core registers
// itself as the L1's fill listener.
func New(id int, p Params, l1 L1Port, stream Stream) *Core {
	if p.Width < 1 || p.ROB < p.Width || p.BaseCPI < 1.0/float64(p.Width) {
		panic(fmt.Sprintf("cpu: invalid core parameters %+v", p))
	}
	c := &Core{
		ID:      id,
		params:  p,
		l1:      l1,
		stream:  stream,
		rng:     sim.NewRNG(p.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15),
		rob:     make([]robEntry, p.ROB),
		enabled: true,
	}
	if ts, ok := stream.(TimedStream); ok {
		c.timed = ts
	}
	if ro, ok := stream.(RetireObserver); ok {
		c.retire = ro
	}
	l1.SetFillListener(c.onFill)
	return c
}

// SetEnabled turns the core on or off (disabled cores model the unused
// tiles in 16-core workload runs).
func (c *Core) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether the core executes instructions.
func (c *Core) Enabled() bool { return c.enabled }

// ResetStats zeroes the measurement counters (end of warm-up).
func (c *Core) ResetStats() { c.Stats = Stats{} }

// BindWaker implements sim.WakeBinder; the L1 fill listener is the core's
// only wake source (a quiescent core is, by construction, waiting on a
// fill).
func (c *Core) BindWaker(w sim.Waker) { c.waker = w }

// NextWake implements sim.Sleeper. A core is quiescent exactly when no
// pipeline stage can make progress without an L1 fill: fetch is blocked
// (I-miss stall, a serializing load, or a full ROB) and commit is blocked
// (the window head waits on a miss, or the window is empty). Every such
// state has an outstanding MSHR, so the fill listener is guaranteed to
// re-arm the core.
func (c *Core) NextWake(now sim.Cycle) sim.Cycle {
	if !c.enabled {
		return sim.NeverWake
	}
	fetchBlocked := c.fetchStall || c.serialize || c.count == len(c.rob)
	commitBlocked := c.headBlocked() || c.count == 0
	if fetchBlocked && commitBlocked {
		return sim.NeverWake
	}
	return now + 1
}

// headBlocked reports whether in-order commit is stuck on the window head.
func (c *Core) headBlocked() bool {
	return c.count > 0 && c.rob[c.head].mem && c.rob[c.head].waiting
}

// syncTo accounts the idle cycles in (c.lastSeen, upto] that the scheduled
// kernel never ticked, replicating bit-for-bit what Tick would have done in
// each: a cycle count, the commit-credit accrual, and the stall
// attribution — all against the frozen blocked-on-fill state. It must run
// before any state mutation (a fill, or the body of a live Tick).
func (c *Core) syncTo(upto sim.Cycle) {
	if upto <= c.lastSeen {
		return
	}
	if !c.enabled {
		c.lastSeen = upto
		return
	}
	k := int64(upto - c.lastSeen)
	c.lastSeen = upto
	// Replay the per-cycle float credit accrual exactly until it saturates
	// (a handful of iterations), then close the remainder in one step —
	// once credit sits at the cap, further idle cycles leave it there.
	max := float64(c.params.Width)
	for k > 0 && c.credit != max {
		c.credit += 1.0 / c.params.BaseCPI
		if c.credit > max {
			c.credit = max
		}
		c.Stats.Cycles++
		c.accountStall()
		k--
	}
	if k > 0 {
		c.Stats.Cycles += k
		if ctr := c.stallCounter(); ctr != nil {
			*ctr += k
		}
	}
}

// Flush implements sim.Flusher: it brings the lazily-accounted cycle and
// stall counters up to date (measurement boundaries, state hashes).
func (c *Core) Flush(now sim.Cycle) { c.syncTo(now) }

// onFill is the L1 fill callback.
func (c *Core) onFill(now sim.Cycle, line uint64, instr, write bool) {
	// Settle the idle accounting against the pre-fill state, then re-arm:
	// the fill may unblock this very cycle's tick.
	c.syncTo(now - 1)
	if c.waker != nil {
		c.waker.Wake(now)
	}
	if instr {
		if c.fetchStall && line == c.fetchLine {
			c.fetchStall = false
		}
		return
	}
	// Store fills matter too: a load may have merged into the store's
	// outstanding miss, so matching window entries must wake regardless.
	if c.serialize && line == c.serialLine {
		c.serialize = false
	}
	for i := 0; i < c.count; i++ {
		e := &c.rob[(c.head+i)%len(c.rob)]
		if e.mem && e.waiting && e.line == line {
			e.waiting = false
		}
	}
	if c.outstanding > 0 {
		c.outstanding--
	}
}

// Tick advances the core one cycle: commit then fetch/dispatch.
func (c *Core) Tick(now sim.Cycle) {
	if !c.enabled {
		return
	}
	c.syncTo(now - 1)
	c.lastSeen = now
	c.Stats.Cycles++
	committed := c.commit(now)
	c.fetch(now)
	if committed == 0 {
		c.accountStall()
	}
}

// commit retires ready instructions in order, derated by BaseCPI.
func (c *Core) commit(now sim.Cycle) int {
	c.credit += 1.0 / c.params.BaseCPI
	max := float64(c.params.Width)
	if c.credit > max {
		c.credit = max
	}
	n := 0
	for c.credit >= 1 && c.count > 0 {
		e := &c.rob[c.head]
		if e.mem && e.waiting {
			break
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.credit--
		c.Stats.Instrs++
		n++
	}
	if n > 0 && c.retire != nil {
		c.retire.OnRetire(now, n)
	}
	return n
}

// fetch brings up to Width new instructions into the window, issuing their
// memory accesses immediately (out-of-order issue at dispatch).
func (c *Core) fetch(now sim.Cycle) {
	if c.fetchStall || c.serialize {
		return
	}
	for w := 0; w < c.params.Width; w++ {
		if c.count >= len(c.rob) {
			return
		}
		var in Instr
		if c.haveRetry {
			in = c.retryInstr
			c.haveRetry = false
		} else if c.timed != nil {
			in = c.timed.NextAt(now)
		} else {
			in = c.stream.Next()
		}
		if in.Kind == KindIdle {
			// No work pending: consume nothing, poll again next cycle.
			return
		}
		// Instruction-side access on line changes.
		iline := cache.LineAddr(in.IAddr)
		if !c.haveLine || iline != c.fetchPC {
			switch c.l1.Access(now, iline, coherence.Ifetch) {
			case coherence.Hit:
				c.fetchPC = iline
				c.haveLine = true
			case coherence.Miss, coherence.MissMerged:
				c.Stats.IfetchMisses++
				c.fetchStall = true
				c.fetchLine = iline
				c.fetchPC = iline
				c.haveLine = true
				c.retryInstr = in // re-dispatch this instruction after the fill
				c.haveRetry = true
				return
			case coherence.Blocked:
				c.Stats.BackPressure++
				c.retryInstr = in
				c.haveRetry = true
				return
			}
		}
		if !c.dispatch(now, in) {
			return
		}
	}
}

// dispatch issues one instruction into the ROB; false means the pipeline
// must retry it next cycle (MSHR back-pressure).
func (c *Core) dispatch(now sim.Cycle, in Instr) bool {
	e := robEntry{}
	switch in.Kind {
	case KindLoad:
		line := cache.LineAddr(in.DAddr)
		switch c.l1.Access(now, line, coherence.Load) {
		case coherence.Hit:
			e = robEntry{mem: true, line: line, waiting: false}
		case coherence.Miss, coherence.MissMerged:
			e = robEntry{mem: true, line: line, waiting: true}
			c.outstanding++
			if c.outstanding > c.Stats.PeakOutstand {
				c.Stats.PeakOutstand = c.outstanding
			}
			if c.rng.Bool(c.params.DepChance) {
				c.serialize = true
				c.serialLine = line
			}
		case coherence.Blocked:
			c.Stats.BackPressure++
			c.retryInstr = in
			c.haveRetry = true
			return false
		}
		c.Stats.LoadsIssued++
	case KindStore:
		line := cache.LineAddr(in.DAddr)
		switch c.l1.Access(now, line, coherence.Store) {
		case coherence.Blocked:
			c.Stats.BackPressure++
			c.retryInstr = in
			c.haveRetry = true
			return false
		}
		// Stores retire via the write buffer: never block commit.
		e = robEntry{mem: false}
		c.Stats.StoresIssued++
	default:
		e = robEntry{mem: false}
	}
	c.rob[(c.head+c.count)%len(c.rob)] = e
	c.count++
	if c.serialize {
		return false // pointer chase: stop dispatching behind the blocker
	}
	return true
}

// accountStall attributes a zero-commit cycle to its cause.
func (c *Core) accountStall() {
	if ctr := c.stallCounter(); ctr != nil {
		*ctr++
	}
}

// stallCounter picks the stat a stalled cycle is attributed to (nil when
// none applies); syncTo uses the same attribution for lazily-accounted
// sleep cycles so the two paths can never diverge.
func (c *Core) stallCounter() *int64 {
	switch {
	case c.fetchStall:
		return &c.Stats.IfetchStall
	case c.headBlocked():
		return &c.Stats.DataStall
	case c.serialize:
		return &c.Stats.SerialStall
	}
	return nil
}
