package cpu

import (
	"testing"

	"nocout/internal/coherence"
	"nocout/internal/sim"
)

// fakeL1 answers accesses from a scripted outcome function and lets tests
// trigger fills manually.
type fakeL1 struct {
	outcome func(line uint64, kind coherence.AccessKind) coherence.Outcome
	fill    func(now sim.Cycle, line uint64, instr, write bool)
	log     []coherence.AccessKind
}

func (f *fakeL1) Access(now sim.Cycle, line uint64, kind coherence.AccessKind) coherence.Outcome {
	f.log = append(f.log, kind)
	return f.outcome(line, kind)
}

func (f *fakeL1) SetFillListener(fn func(now sim.Cycle, line uint64, instr, write bool)) {
	f.fill = fn
}

// fixedStream yields a repeating program.
type fixedStream struct {
	prog []Instr
	i    int
}

func (s *fixedStream) Next() Instr {
	in := s.prog[s.i%len(s.prog)]
	s.i++
	return in
}

func aluProg() Stream {
	return &fixedStream{prog: []Instr{{Kind: KindALU, IAddr: 0x1000}}}
}

func alwaysHit(line uint64, kind coherence.AccessKind) coherence.Outcome { return coherence.Hit }

func TestALUThroughputMatchesBaseCPI(t *testing.T) {
	for _, cpi := range []float64{0.5, 1.0, 2.0} {
		l1 := &fakeL1{outcome: alwaysHit}
		p := DefaultParams()
		p.BaseCPI = cpi
		c := New(0, p, l1, aluProg())
		for cyc := sim.Cycle(1); cyc <= 10000; cyc++ {
			c.Tick(cyc)
		}
		got := c.Stats.IPC()
		want := 1.0 / cpi
		if want > float64(p.Width) {
			want = float64(p.Width)
		}
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("BaseCPI %v: IPC = %v, want ~%v", cpi, got, want)
		}
	}
}

func TestIfetchMissStallsUntilFill(t *testing.T) {
	missOnce := true
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Ifetch && missOnce {
			missOnce = false
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.BaseCPI = 1.0
	c := New(0, p, l1, aluProg())
	// First tick: fetch misses, no instructions in flight.
	for cyc := sim.Cycle(1); cyc <= 50; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs != 0 {
		t.Fatalf("committed %d instructions while fetch-stalled", c.Stats.Instrs)
	}
	if c.Stats.IfetchStall < 40 {
		t.Fatalf("ifetch stall cycles = %d, want ~49", c.Stats.IfetchStall)
	}
	// Fill arrives: execution resumes.
	l1.fill(51, 0x1000/64, true, false)
	for cyc := sim.Cycle(51); cyc <= 100; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs == 0 {
		t.Fatal("no commits after the fetch fill")
	}
}

func TestLoadMissBlocksCommitAtROBHead(t *testing.T) {
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.DepChance = 0 // no serialization: fetch continues
	prog := &fixedStream{prog: []Instr{
		{Kind: KindLoad, IAddr: 0x1000, DAddr: 0x200000},
		{Kind: KindALU, IAddr: 0x1000},
	}}
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 100; cyc++ {
		c.Tick(cyc)
	}
	// The first load never fills: nothing can commit, but the window keeps
	// filling until the ROB is full (MLP without commit).
	if c.Stats.Instrs != 0 {
		t.Fatalf("committed %d with the head load outstanding", c.Stats.Instrs)
	}
	if c.Stats.DataStall == 0 {
		t.Fatal("cycles should be attributed to data stall")
	}
	if c.Stats.PeakOutstand < 2 {
		t.Fatalf("expected overlapped misses, peak = %d", c.Stats.PeakOutstand)
	}
}

func TestDepChanceSerializesMisses(t *testing.T) {
	// With DepChance 1 every load miss serializes: outstanding misses never
	// exceed 1.
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.DepChance = 1
	next := uint64(0)
	prog := &fixedStream{prog: []Instr{{Kind: KindLoad, IAddr: 0x1000, DAddr: 0}}}
	_ = next
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 20; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.PeakOutstand != 1 {
		t.Fatalf("serializing workload peak MLP = %d, want 1", c.Stats.PeakOutstand)
	}
	if c.Stats.SerialStall == 0 && c.Stats.DataStall == 0 {
		t.Fatal("stall cycles should be attributed")
	}
}

func TestStoreMissDoesNotBlockCommit(t *testing.T) {
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Store {
			return coherence.Miss
		}
		return coherence.Hit
	}
	p := DefaultParams()
	p.BaseCPI = 1.0
	prog := &fixedStream{prog: []Instr{
		{Kind: KindStore, IAddr: 0x1000, DAddr: 0x400000},
		{Kind: KindALU, IAddr: 0x1000},
	}}
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 1000; cyc++ {
		c.Tick(cyc)
	}
	if got := c.Stats.IPC(); got < 0.9 {
		t.Fatalf("store misses must not throttle commit: IPC = %v", got)
	}
	if c.Stats.StoresIssued == 0 {
		t.Fatal("no stores issued")
	}
}

func TestMSHRBackPressureRetries(t *testing.T) {
	blocked := true
	l1 := &fakeL1{}
	l1.outcome = func(line uint64, kind coherence.AccessKind) coherence.Outcome {
		if kind == coherence.Load && blocked {
			return coherence.Blocked
		}
		return coherence.Hit
	}
	p := DefaultParams()
	prog := &fixedStream{prog: []Instr{{Kind: KindLoad, IAddr: 0x1000, DAddr: 0x99000}}}
	c := New(0, p, l1, prog)
	for cyc := sim.Cycle(1); cyc <= 10; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.BackPressure == 0 {
		t.Fatal("blocked accesses should be counted")
	}
	committedWhileBlocked := c.Stats.Instrs
	blocked = false
	for cyc := sim.Cycle(11); cyc <= 200; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs <= committedWhileBlocked {
		t.Fatal("execution must resume once the MSHR frees up")
	}
}

func TestDisabledCoreDoesNothing(t *testing.T) {
	l1 := &fakeL1{outcome: alwaysHit}
	c := New(0, DefaultParams(), l1, aluProg())
	c.SetEnabled(false)
	for cyc := sim.Cycle(1); cyc <= 100; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs != 0 || c.Stats.Cycles != 0 {
		t.Fatal("disabled core must not execute or count cycles")
	}
	if len(l1.log) != 0 {
		t.Fatal("disabled core must not touch the L1")
	}
	if c.Enabled() {
		t.Fatal("Enabled() should report false")
	}
}

func TestSequentialFetchOneIAccessPerLine(t *testing.T) {
	// 16 4-byte instructions per line: sequential code does one I-access
	// per 64B line, not per instruction.
	l1 := &fakeL1{outcome: alwaysHit}
	seq := &seqStream{}
	p := DefaultParams()
	p.BaseCPI = 1.0 / 3.0
	c := New(0, p, l1, seq)
	for cyc := sim.Cycle(1); cyc <= 1000; cyc++ {
		c.Tick(cyc)
	}
	iAccesses := 0
	for _, k := range l1.log {
		if k == coherence.Ifetch {
			iAccesses++
		}
	}
	perInstr := float64(iAccesses) / float64(c.Stats.Instrs)
	if perInstr > 0.12 { // ~1/16 with slack for window effects
		t.Fatalf("I-accesses per instruction = %v, want ~0.0625", perInstr)
	}
}

// seqStream models straight-line code: the PC advances 4 bytes per
// instruction.
type seqStream struct{ pc uint64 }

func (s *seqStream) Next() Instr {
	in := Instr{Kind: KindALU, IAddr: s.pc}
	s.pc += 4
	return in
}

func TestResetStats(t *testing.T) {
	l1 := &fakeL1{outcome: alwaysHit}
	c := New(0, DefaultParams(), l1, aluProg())
	for cyc := sim.Cycle(1); cyc <= 100; cyc++ {
		c.Tick(cyc)
	}
	if c.Stats.Instrs == 0 {
		t.Fatal("warm-up should commit")
	}
	c.ResetStats()
	if c.Stats.Instrs != 0 || c.Stats.Cycles != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l1 := &fakeL1{outcome: alwaysHit}
	New(0, Params{Width: 3, ROB: 64, BaseCPI: 0.1}, l1, aluProg())
}
