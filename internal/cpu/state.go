package cpu

import (
	"nocout/internal/ckpt"
	"nocout/internal/sim"
)

// Checkpoint serialization of the core's architectural state: the
// in-flight instruction window, the fractional commit credit, fetch and
// serialization blocks, the deferred retry slot, and the RNG position.
// Construction parameters (ID, Params, enabled) and the wiring (L1,
// stream, waker) are structural; measurement Stats are excluded — the
// restore path re-zeroes them exactly as the warmup boundary does.
// Callers must Flush the core before saving so lastSeen equals the
// snapshot cycle and no lazy accounting is pending.

// Stream returns the workload stream driving this core, so the chip can
// checkpoint its cursor alongside the core.
func (c *Core) Stream() Stream { return c.stream }

// SaveState implements ckpt.Saver. The ROB ring is serialized logically
// from its head, so the restored ring is head-normalized — invisible to
// execution, which only ever indexes relative to head.
func (c *Core) SaveState(e *ckpt.Enc) {
	e.U64(uint64(c.count))
	for i := 0; i < c.count; i++ {
		en := &c.rob[(c.head+i)%len(c.rob)]
		e.Bool(en.mem)
		e.U64(en.line)
		e.Bool(en.waiting)
	}
	e.F64(c.credit)
	e.U64(c.fetchPC)
	e.Bool(c.haveLine)
	e.Bool(c.fetchStall)
	e.U64(c.fetchLine)
	e.Bool(c.serialize)
	e.U64(c.serialLine)
	e.Bool(c.haveRetry)
	e.U64(uint64(c.retryInstr.Kind))
	e.U64(c.retryInstr.IAddr)
	e.U64(c.retryInstr.DAddr)
	e.I64(c.outstanding)
	e.I64(int64(c.lastSeen))
	e.U64(c.rng.State())
}

// LoadState implements ckpt.Loader.
func (c *Core) LoadState(d *ckpt.Dec) {
	count := d.Count()
	if d.Err() != nil {
		return
	}
	if count > len(c.rob) {
		d.Corrupt("core %d window occupancy %d exceeds ROB size %d", c.ID, count, len(c.rob))
		return
	}
	c.head = 0
	c.count = count
	for i := range c.rob {
		c.rob[i] = robEntry{}
	}
	for i := 0; i < count; i++ {
		c.rob[i] = robEntry{
			mem:     d.Bool(),
			line:    d.U64(),
			waiting: d.Bool(),
		}
	}
	c.credit = d.F64()
	c.fetchPC = d.U64()
	c.haveLine = d.Bool()
	c.fetchStall = d.Bool()
	c.fetchLine = d.U64()
	c.serialize = d.Bool()
	c.serialLine = d.U64()
	c.haveRetry = d.Bool()
	kind := d.U64()
	if kind > uint64(KindIdle) {
		d.Corrupt("core %d retry slot has invalid kind %d", c.ID, kind)
		return
	}
	c.retryInstr = Instr{Kind: InstrKind(kind), IAddr: d.U64(), DAddr: d.U64()}
	c.outstanding = d.I64()
	c.lastSeen = sim.Cycle(d.I64())
	c.rng.SetState(d.U64())
}
