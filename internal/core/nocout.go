// Package core implements the paper's primary contribution: the NOC-Out
// processor organization (§4). Cores and LLC tiles are segregated — LLC
// tiles sit in a central row of the die, cores fill the regions above and
// below — and connectivity is specialized for the bilateral core-to-cache
// traffic pattern:
//
//   - a reduction tree per half-column carries core requests down/up to the
//     column's LLC tile through buffered 2-input muxes (§4.1),
//   - a dispersion tree per half-column carries responses and snoops back
//     out through buffered demuxes (§4.2),
//   - the LLC tiles are linked by a richly connected flattened butterfly
//     (1-D for a single LLC row, 2-D when scaled) forming a NUCA cache
//     (§4.3),
//   - there are no core-to-core links at all; every message flows through
//     the LLC region (§4.4).
//
// The package also implements the scalability features of §7.1:
// concentration (multiple cores per tree port) and express links that let
// distant tree nodes bypass intermediate hops.
package core

import (
	"fmt"
	"math"

	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/tech"
)

// Config describes a NOC-Out chip organization.
type Config struct {
	Columns     int `json:"columns,omitempty"`       // LLC tiles / columns of cores (8 in the paper)
	RowsPerSide int `json:"rows_per_side,omitempty"` // core rows above and below the LLC row (4 in the paper)

	// Concentration is the number of cores sharing each tree port (§7.1);
	// 1 in the baseline. Core count = Columns * 2 * RowsPerSide * Concentration.
	Concentration int `json:"concentration,omitempty"`

	// LLCRows stacks the LLC region vertically (§7.1 "flattened butterfly
	// in LLC"); 1 in the baseline. LLC tiles = Columns * LLCRows.
	LLCRows int `json:"llc_rows,omitempty"`

	// ExpressFrom, when > 0, wires tree nodes at depth >= ExpressFrom
	// directly to the LLC router instead of chaining through intermediate
	// nodes (§7.1 express links). 0 disables express links.
	ExpressFrom int `json:"express_from,omitempty"`

	// MCCount attaches that many memory-controller endpoints through
	// dedicated ports on the LLC row's edge routers (§4.4: "off-die
	// interfaces ... accessed through dedicated ports in the edge routers
	// of the LLC network"). MC k gets NodeID NumNodes()+k.
	MCCount int `json:"mc_count,omitempty"`

	// BankPorts gives each LLC tile that many bank endpoints with
	// dedicated router ports (§5.1: "LLC tiles are internally banked to
	// maximize throughput"). 0 means banks share the tile's local port.
	BankPorts int `json:"bank_ports,omitempty"`

	TreeBufFlits  int       `json:"tree_buf_flits,omitempty"`  // per-VC buffering in tree nodes (default 4)
	LLCBufFlits   int       `json:"llc_buf_flits,omitempty"`   // per-VC buffering in LLC routers (default 8)
	LLCPipe       sim.Cycle `json:"llc_pipe,omitempty"`        // LLC router pipeline depth (default 3)
	TreeHop       sim.Cycle `json:"tree_hop,omitempty"`        // tree per-hop latency including link (default 1)
	TilesPerCycle int       `json:"tiles_per_cycle,omitempty"` // LLC fbfly link reach (default 2)
	EjectBuf      int       `json:"eject_buf,omitempty"`       // NI eject buffering (default 8)
}

// DefaultConfig returns the paper's 64-core configuration (Table 1):
// 8 columns, 4 core rows per side, one LLC row of 8 tiles.
func DefaultConfig() Config {
	return Config{
		Columns:       8,
		RowsPerSide:   4,
		Concentration: 1,
		LLCRows:       1,
		TreeBufFlits:  3,
		LLCBufFlits:   5,
		LLCPipe:       3,
		TreeHop:       1,
		TilesPerCycle: 2,
		EjectBuf:      8,
	}
}

// WithDefaults returns the configuration with zero fields replaced by the
// paper-baseline values.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.Columns == 0 {
		c.Columns = d.Columns
	}
	if c.RowsPerSide == 0 {
		c.RowsPerSide = d.RowsPerSide
	}
	if c.Concentration == 0 {
		c.Concentration = 1
	}
	if c.LLCRows == 0 {
		c.LLCRows = 1
	}
	if c.TreeBufFlits == 0 {
		c.TreeBufFlits = d.TreeBufFlits
	}
	if c.LLCBufFlits == 0 {
		c.LLCBufFlits = d.LLCBufFlits
	}
	if c.LLCPipe == 0 {
		c.LLCPipe = d.LLCPipe
	}
	if c.TreeHop == 0 {
		c.TreeHop = d.TreeHop
	}
	if c.TilesPerCycle == 0 {
		c.TilesPerCycle = d.TilesPerCycle
	}
	if c.EjectBuf == 0 {
		c.EjectBuf = d.EjectBuf
	}
	return c
}

// NumCoreNodes returns the number of core-side network endpoints. With
// concentration, several cores share one endpoint.
func (c Config) NumCoreNodes() int { return c.Columns * 2 * c.RowsPerSide }

// NumCores returns the total core count.
func (c Config) NumCores() int { return c.NumCoreNodes() * c.Concentration }

// NumLLCTiles returns the number of LLC tiles.
func (c Config) NumLLCTiles() int { return c.Columns * c.LLCRows }

// CoreNode returns the NodeID for the core endpoint at (col, side, row).
// side 0 is above the LLC row, side 1 below; row 0 is adjacent to the LLC.
func (c Config) CoreNode(col, side, row int) noc.NodeID {
	if col < 0 || col >= c.Columns || side < 0 || side > 1 || row < 0 || row >= c.RowsPerSide {
		panic(fmt.Sprintf("core: invalid core position (%d,%d,%d)", col, side, row))
	}
	return noc.NodeID((col*2+side)*c.RowsPerSide + row)
}

// CoreLoc is the inverse of CoreNode.
func (c Config) CoreLoc(n noc.NodeID) (col, side, row int) {
	i := int(n)
	if i < 0 || i >= c.NumCoreNodes() {
		panic(fmt.Sprintf("core: node %d is not a core endpoint", n))
	}
	row = i % c.RowsPerSide
	cs := i / c.RowsPerSide
	return cs / 2, cs % 2, row
}

// LLCNode returns the NodeID of the LLC tile at (col, llcRow).
func (c Config) LLCNode(col, llcRow int) noc.NodeID {
	if col < 0 || col >= c.Columns || llcRow < 0 || llcRow >= c.LLCRows {
		panic(fmt.Sprintf("core: invalid LLC position (%d,%d)", col, llcRow))
	}
	return noc.NodeID(c.NumCoreNodes() + llcRow*c.Columns + col)
}

// LLCLoc is the inverse of LLCNode.
func (c Config) LLCLoc(n noc.NodeID) (col, llcRow int) {
	i := int(n) - c.NumCoreNodes()
	if i < 0 || i >= c.NumLLCTiles() {
		panic(fmt.Sprintf("core: node %d is not an LLC tile", n))
	}
	return i % c.Columns, i / c.Columns
}

// IsLLCNode reports whether n addresses an LLC tile.
func (c Config) IsLLCNode(n noc.NodeID) bool {
	return int(n) >= c.NumCoreNodes() && int(n) < c.NumCoreNodes()+c.NumLLCTiles()
}

// NumNodes returns the count of core endpoints + LLC tiles (memory
// controllers are numbered after these).
func (c Config) NumNodes() int { return c.NumCoreNodes() + c.NumLLCTiles() }

// MCNode returns the NodeID of memory controller k.
func (c Config) MCNode(k int) noc.NodeID {
	if k < 0 || k >= c.MCCount {
		panic(fmt.Sprintf("core: invalid MC index %d", k))
	}
	return noc.NodeID(c.NumNodes() + k)
}

// MCAttach returns the LLC tile hosting memory controller k: alternating
// die edges, cycling through LLC rows.
func (c Config) MCAttach(k int) (col, llcRow int) {
	col = 0
	if k%2 == 1 {
		col = c.Columns - 1
	}
	return col, (k / 2) % c.LLCRows
}

// TotalNodes includes the memory-controller and bank endpoints.
func (c Config) TotalNodes() int {
	return c.NumNodes() + c.MCCount + c.NumLLCTiles()*c.BankPorts
}

// BankNode returns the NodeID of bank port k on LLC tile (col, llcRow).
func (c Config) BankNode(col, llcRow, k int) noc.NodeID {
	if k < 0 || k >= c.BankPorts {
		panic(fmt.Sprintf("core: invalid bank port %d (BankPorts=%d)", k, c.BankPorts))
	}
	tile := llcRow*c.Columns + col
	return noc.NodeID(c.NumNodes() + c.MCCount + tile*c.BankPorts + k)
}

// bankLoc decodes a bank endpoint node into (tileIdx, port).
func (c Config) bankLoc(n noc.NodeID) (tile, port int) {
	i := int(n) - c.NumNodes() - c.MCCount
	return i / c.BankPorts, i % c.BankPorts
}

// IsBankNode reports whether n addresses a bank endpoint.
func (c Config) IsBankNode(n noc.NodeID) bool {
	return int(n) >= c.NumNodes()+c.MCCount && int(n) < c.TotalNodes()
}

// Geometry ------------------------------------------------------------------

// CoreTileMM returns the side of a (square) core tile.
func CoreTileMM() float64 { return math.Sqrt(tech.CoreMM2) }

// LLCTileHeightMM returns the height of an LLC tile holding llcMB of cache,
// with its width matched to the core tile (§5.1: "the aspect ratio of the
// LLC tiles roughly matches that of the core tiles").
func LLCTileHeightMM(llcMBPerTile float64) float64 {
	return llcMBPerTile * tech.CacheMM2PerMB / CoreTileMM()
}

// treeHopLenMM is the physical span of one tree hop: one core tile.
func treeHopLenMM() float64 { return CoreTileMM() }
