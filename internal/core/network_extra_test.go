package core

import (
	"testing"
	"testing/quick"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

func TestTreeInventoryMatchesPaper(t *testing.T) {
	n := Build(DefaultConfig())
	// 8 columns x 2 sides x 4 rows: 64 reduction nodes and 64 dispersion
	// nodes; 8 LLC routers.
	if len(n.RedNodes) != 64 || len(n.DispNodes) != 64 {
		t.Fatalf("tree nodes = %d red, %d disp; want 64 each", len(n.RedNodes), len(n.DispNodes))
	}
	if len(n.LLCRouters) != 8 {
		t.Fatalf("LLC routers = %d, want 8", len(n.LLCRouters))
	}
	for _, r := range n.RedNodes {
		if r.NumIn() != 2 || r.NumOut() != 1 {
			t.Fatalf("reduction node %s has %d in / %d out; §4.1 says 2-input mux", r.Name, r.NumIn(), r.NumOut())
		}
		if r.VCCount() != 2 {
			t.Fatalf("reduction node VCs = %d, want 2 (Table 1)", r.VCCount())
		}
	}
	for _, r := range n.DispNodes {
		if r.NumIn() != 1 {
			t.Fatalf("dispersion node %s has %d inputs; §4.2 says demux", r.Name, r.NumIn())
		}
		if r.NumOut() > 2 {
			t.Fatalf("dispersion node %s has %d outputs", r.Name, r.NumOut())
		}
		if r.VCCount() != 2 {
			t.Fatalf("dispersion node VCs = %d, want 2", r.VCCount())
		}
	}
	for _, r := range n.LLCRouters {
		// 7 row ports + local + 2 reduction tree-ins = 10 inputs;
		// 7 row + local + 2 dispersion tree-outs = 10 outputs.
		if r.NumIn() != 10 || r.NumOut() != 10 {
			t.Fatalf("LLC router %s: %d in / %d out, want 10/10", r.Name, r.NumIn(), r.NumOut())
		}
	}
}

func TestMCEndpointsDedicatedPorts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MCCount = 4
	n := Build(cfg)
	c := n.Cfg
	// The MC ports add one input and one output to each hosting edge
	// router (2 MCs per edge router here).
	for i, r := range n.LLCRouters {
		col := i % c.Columns
		wantExtra := 0
		for k := 0; k < 4; k++ {
			mcol, _ := c.MCAttach(k)
			if mcol == col {
				wantExtra++
			}
		}
		if got := r.NumIn() - 10; got != wantExtra {
			t.Fatalf("router col %d: %d MC input ports, want %d", col, got, wantExtra)
		}
	}
	// Traffic to and from MCs flows.
	e := sim.NewEngine()
	e.Register(n)
	var got *noc.Packet
	n.SetDeliver(c.MCNode(3), func(now sim.Cycle, p *noc.Packet) { got = p })
	n.Send(e.Now(), &noc.Packet{ID: 1, Class: noc.ClassReq, Src: c.LLCNode(4, 0), Dst: c.MCNode(3), Size: 1})
	if !e.RunUntil(func() bool { return got != nil }, 1000) {
		t.Fatal("bank -> MC packet never delivered")
	}
	var back *noc.Packet
	n.SetDeliver(c.LLCNode(4, 0), func(now sim.Cycle, p *noc.Packet) { back = p })
	n.Send(e.Now(), &noc.Packet{ID: 2, Class: noc.ClassResp, Src: c.MCNode(3), Dst: c.LLCNode(4, 0), Size: 5})
	if !e.RunUntil(func() bool { return back != nil }, 1000) {
		t.Fatal("MC -> bank packet never delivered")
	}
}

func TestMCAccessorsValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MCCount = 2
	if cfg.MCNode(0) != noc.NodeID(cfg.NumNodes()) {
		t.Fatal("MC nodes must be numbered after cores and LLC tiles")
	}
	col0, _ := cfg.MCAttach(0)
	col1, _ := cfg.MCAttach(1)
	if col0 != 0 || col1 != cfg.Columns-1 {
		t.Fatalf("MCs should alternate die edges: %d, %d", col0, col1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg.MCNode(2)
}

func TestExpressConfigDeliversAllPairs(t *testing.T) {
	cfg := Config{Columns: 4, RowsPerSide: 8, ExpressFrom: 4}
	n := Build(cfg)
	c := n.Cfg
	e := sim.NewEngine()
	e.Register(n)
	delivered := 0
	for i := 0; i < c.NumCoreNodes(); i++ {
		n.SetDeliver(noc.NodeID(i), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	// Every bank responds to every core, exercising express dispersion.
	for tile := 0; tile < c.NumLLCTiles(); tile++ {
		for cn := 0; cn < c.NumCoreNodes(); cn++ {
			n.Send(e.Now(), &noc.Packet{
				ID: uint64(sent), Class: noc.ClassResp,
				Src: c.LLCNode(tile%c.Columns, tile/c.Columns), Dst: noc.NodeID(cn), Size: 5,
			})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 500000) {
		t.Fatalf("delivered %d/%d under express links", delivered, sent)
	}
}

func TestRandomPairsDeliverProperty(t *testing.T) {
	cfg := Config{Columns: 4, RowsPerSide: 2, LLCRows: 2}
	n := Build(cfg)
	c := n.Cfg
	e := sim.NewEngine()
	e.Register(n)
	inbox := map[noc.NodeID]int{}
	for i := 0; i < c.NumNodes(); i++ {
		id := noc.NodeID(i)
		n.SetDeliver(id, func(now sim.Cycle, p *noc.Packet) { inbox[p.Dst]++ })
	}
	sent := 0
	check := func(srcRaw, dstRaw uint8) bool {
		// Cores talk to LLC tiles and vice versa (the bilateral pattern);
		// core-to-core also legal (forwards).
		src := noc.NodeID(int(srcRaw) % c.NumNodes())
		dst := noc.NodeID(int(dstRaw) % c.NumNodes())
		if src == dst {
			return true
		}
		// LLC->LLC requests only travel between tiles.
		class := noc.ClassReq
		if c.IsLLCNode(src) {
			class = noc.ClassResp
		}
		n.Send(e.Now(), &noc.Packet{ID: uint64(sent), Class: class, Src: src, Dst: dst, Size: 1})
		sent++
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	total := 0
	if !e.RunUntil(func() bool {
		total = 0
		for _, v := range inbox {
			total += v
		}
		return total == sent
	}, 200000) {
		t.Fatalf("delivered %d/%d random packets", total, sent)
	}
}

func TestGeometryHelpers(t *testing.T) {
	if CoreTileMM() <= 0 {
		t.Fatal("core tile must have positive size")
	}
	if LLCTileHeightMM(1) <= 0 {
		t.Fatal("LLC tile must have positive height")
	}
	// 1MB of LLC at 3.2mm²/MB over a ~1.7mm-wide tile is ~1.9mm tall.
	h := LLCTileHeightMM(1)
	if h < 1.5 || h > 2.5 {
		t.Fatalf("LLC tile height = %v mm, expected ~1.9", h)
	}
}
