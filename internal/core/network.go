package core

import (
	"fmt"

	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/tech"
	"nocout/internal/topo"
)

// Network is the composite NOC-Out interconnect: per-half-column reduction
// and dispersion trees plus the flattened-butterfly LLC network. It
// implements noc.Network with core endpoints first (0..NumCoreNodes-1) and
// LLC tiles after (NumCoreNodes..NumNodes-1).
type Network struct {
	Cfg Config

	rn         *noc.RouterNetwork
	LLCRouters []*noc.Router
	RedNodes   []*noc.Router // all reduction-tree nodes
	DispNodes  []*noc.Router // all dispersion-tree nodes
}

// Tick implements noc.Network.
func (n *Network) Tick(now sim.Cycle) { n.rn.Tick(now) }

// Send implements noc.Network.
func (n *Network) Send(now sim.Cycle, p *noc.Packet) { n.rn.Send(now, p) }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(id noc.NodeID, fn func(now sim.Cycle, p *noc.Packet)) {
	n.rn.SetDeliver(id, fn)
}

// Stats implements noc.Network.
func (n *Network) Stats() *noc.Stats { return n.rn.Stats() }

// RN exposes the underlying router network for the shard planner.
func (n *Network) RN() *noc.RouterNetwork { return n.rn }

// RegisterInto implements sim.Registrar: the tree nodes, LLC routers and
// NIs register as independently quiescent components.
func (n *Network) RegisterInto(e *sim.Engine) { n.rn.RegisterInto(e) }

var _ noc.Network = (*Network)(nil)
var _ sim.Registrar = (*Network)(nil)

// llcPorts records the port layout of one LLC router.
type llcPorts struct {
	rowOut   []int    // by destination column; -1 for self
	colOut   []int    // by destination LLC row; -1 for self
	localOut int      // to the bank NI
	treeOut  [2][]int // [side][coreRow] -> output port carrying that row's traffic
}

// Build constructs the NOC-Out network for cfg.
func Build(cfg Config) *Network {
	cfg = cfg.WithDefaults()
	n := &Network{Cfg: cfg}
	rn := noc.NewRouterNetwork("nocout", cfg.TotalNodes())
	n.rn = rn
	stats := rn.StatsRef()

	coreTile := CoreTileMM()

	// --- LLC routers -----------------------------------------------------
	ports := make([]llcPorts, cfg.NumLLCTiles())
	llcRouters := make([]*noc.Router, cfg.NumLLCTiles())
	for col := 0; col < cfg.Columns; col++ {
		for lr := 0; lr < cfg.LLCRows; lr++ {
			idx := lr*cfg.Columns + col
			id := cfg.LLCNode(col, lr)
			r := noc.NewRouter(id, fmt.Sprintf("llc.r%d_%d", col, lr), cfg.LLCPipe, nil)
			p := llcPorts{rowOut: make([]int, cfg.Columns), colOut: make([]int, cfg.LLCRows)}
			for tx := 0; tx < cfg.Columns; tx++ {
				p.rowOut[tx] = -1
				if tx == col {
					continue
				}
				depth := int(topo.FBflyLinkDelay(absInt(tx-col), cfg.TilesPerCycle)) + cfg.LLCBufFlits
				r.AddIn(fmt.Sprintf("x%d", tx), depth)
				p.rowOut[tx] = r.AddOut(fmt.Sprintf("x%d", tx))
			}
			for ty := 0; ty < cfg.LLCRows; ty++ {
				p.colOut[ty] = -1
				if ty == lr {
					continue
				}
				r.AddIn(fmt.Sprintf("y%d", ty), cfg.LLCBufFlits+1)
				p.colOut[ty] = r.AddOut(fmt.Sprintf("y%d", ty))
			}
			r.AddIn("local", cfg.LLCBufFlits)
			p.localOut = r.AddOut("local")
			llcRouters[idx] = r
			ports[idx] = p
		}
	}
	n.LLCRouters = llcRouters

	// --- memory-controller endpoints (dedicated edge-router ports) ---------
	mcOut := make(map[int]map[int]int) // llc router idx -> mc k -> out port
	mcIn := make(map[int]map[int]int)
	for k := 0; k < cfg.MCCount; k++ {
		col, lr := cfg.MCAttach(k)
		idx := lr*cfg.Columns + col
		r := llcRouters[idx]
		if mcOut[idx] == nil {
			mcOut[idx] = map[int]int{}
			mcIn[idx] = map[int]int{}
		}
		mcIn[idx][k] = r.AddIn(fmt.Sprintf("mc%d", k), cfg.LLCBufFlits)
		mcOut[idx][k] = r.AddOut(fmt.Sprintf("mc%d", k))
	}

	// --- bank endpoints (dedicated per-bank ports, §5.1) -------------------
	bankOut := make([][]int, cfg.NumLLCTiles()) // [tile][port] -> out port
	bankIn := make([][]int, cfg.NumLLCTiles())
	for tile := 0; tile < cfg.NumLLCTiles(); tile++ {
		bankOut[tile] = make([]int, cfg.BankPorts)
		bankIn[tile] = make([]int, cfg.BankPorts)
		for k := 0; k < cfg.BankPorts; k++ {
			r := llcRouters[tile]
			bankIn[tile][k] = r.AddIn(fmt.Sprintf("bank%d", k), cfg.LLCBufFlits)
			bankOut[tile][k] = r.AddOut(fmt.Sprintf("bank%d", k))
		}
	}

	// --- routing at LLC routers -------------------------------------------
	// A core at (c, side, row) attaches to the LLC tile at column c in the
	// LLC row nearest its side: row 0 for side 0 (top), LLCRows-1 for
	// side 1 (bottom).
	attachRow := func(side int) int {
		if side == 0 {
			return 0
		}
		return cfg.LLCRows - 1
	}
	for col := 0; col < cfg.Columns; col++ {
		for lr := 0; lr < cfg.LLCRows; lr++ {
			col, lr := col, lr
			idx := lr*cfg.Columns + col
			p := &ports[idx]
			llcRouters[idx].SetRoute(func(pk *noc.Packet) int {
				if cfg.IsBankNode(pk.Dst) {
					tile, port := cfg.bankLoc(pk.Dst)
					if tile == idx {
						return bankOut[idx][port]
					}
					tcol, tlr := tile%cfg.Columns, tile/cfg.Columns
					if tcol != col {
						return p.rowOut[tcol]
					}
					return p.colOut[tlr]
				}
				if int(pk.Dst) >= cfg.NumNodes() {
					k := int(pk.Dst) - cfg.NumNodes()
					mcol, mlr := cfg.MCAttach(k)
					if mcol == col && mlr == lr {
						return mcOut[idx][k]
					}
					if mcol != col {
						return p.rowOut[mcol]
					}
					return p.colOut[mlr]
				}
				if cfg.IsLLCNode(pk.Dst) {
					tx, ty := cfg.LLCLoc(pk.Dst)
					switch {
					case tx == col && ty == lr:
						return p.localOut
					case tx != col:
						return p.rowOut[tx]
					default:
						return p.colOut[ty]
					}
				}
				c2, s2, r2 := cfg.CoreLoc(pk.Dst)
				ar := attachRow(s2)
				switch {
				case c2 != col:
					return p.rowOut[c2]
				case lr != ar:
					return p.colOut[ar]
				default:
					return p.treeOut[s2][r2]
				}
			})
		}
	}

	// --- LLC fbfly links ---------------------------------------------------
	inRowPort := func(idx, fromCol int) int {
		col := idx % cfg.Columns
		k := 0
		for t := 0; t < cfg.Columns; t++ {
			if t == col {
				continue
			}
			if t == fromCol {
				return k
			}
			k++
		}
		panic("core: llc row input not found")
	}
	inColPort := func(idx, fromRow int) int {
		lr := idx / cfg.Columns
		k := cfg.Columns - 1
		for t := 0; t < cfg.LLCRows; t++ {
			if t == lr {
				continue
			}
			if t == fromRow {
				return k
			}
			k++
		}
		panic("core: llc col input not found")
	}
	llcTileH := LLCTileHeightMM(1)
	for col := 0; col < cfg.Columns; col++ {
		for lr := 0; lr < cfg.LLCRows; lr++ {
			idx := lr*cfg.Columns + col
			for tx := col + 1; tx < cfg.Columns; tx++ {
				j := lr*cfg.Columns + tx
				dist := tx - col
				delay := topo.FBflyLinkDelay(dist, cfg.TilesPerCycle)
				lenMM := float64(dist) * coreTile
				noc.Connect(llcRouters[idx], ports[idx].rowOut[tx], llcRouters[j], inRowPort(j, col), delay, lenMM)
				noc.Connect(llcRouters[j], ports[j].rowOut[col], llcRouters[idx], inRowPort(idx, tx), delay, lenMM)
			}
			for ty := lr + 1; ty < cfg.LLCRows; ty++ {
				j := ty*cfg.Columns + col
				dist := ty - lr
				delay := topo.FBflyLinkDelay(dist, cfg.TilesPerCycle)
				lenMM := float64(dist) * llcTileH
				noc.Connect(llcRouters[idx], ports[idx].colOut[ty], llcRouters[j], inColPort(j, lr), delay, lenMM)
				noc.Connect(llcRouters[j], ports[j].colOut[lr], llcRouters[idx], inColPort(idx, ty), delay, lenMM)
			}
		}
	}

	// --- reduction and dispersion trees ------------------------------------
	redPrio := []noc.Cand{
		{Port: 0, VC: noc.ClassResp}, {Port: 1, VC: noc.ClassResp},
		{Port: 0, VC: noc.ClassReq}, {Port: 1, VC: noc.ClassReq},
		{Port: 0, VC: noc.ClassSnoop}, {Port: 1, VC: noc.ClassSnoop},
	}
	dispPrio := []noc.Cand{
		{Port: 0, VC: noc.ClassResp},
		{Port: 0, VC: noc.ClassSnoop},
		{Port: 0, VC: noc.ClassReq},
	}

	for col := 0; col < cfg.Columns; col++ {
		for side := 0; side < 2; side++ {
			llcIdx := attachRow(side)*cfg.Columns + col
			llc := llcRouters[llcIdx]
			lp := &ports[llcIdx]
			lp.treeOut[side] = make([]int, cfg.RowsPerSide)

			// Reduction chain: depth RowsPerSide-1 (farthest) .. 0.
			red := make([]*noc.Router, cfg.RowsPerSide)
			for d := 0; d < cfg.RowsPerSide; d++ {
				r := noc.NewRouter(-1, fmt.Sprintf("red.c%d_s%d_d%d", col, side, d), 0, nil)
				r.SetRoute(func(pk *noc.Packet) int { return 0 }) // single output: toward the LLC
				r.AddIn("net", cfg.TreeBufFlits)
				r.AddIn("local", cfg.TreeBufFlits)
				r.AddOut("down")
				r.SetPriority(redPrio)
				r.SetVCCount(2) // requests + responses only (§4.1)
				red[d] = r
				n.RedNodes = append(n.RedNodes, r)
			}
			express := func(d int) bool { return cfg.ExpressFrom > 0 && d >= cfg.ExpressFrom }
			for d := 0; d < cfg.RowsPerSide; d++ {
				if express(d) {
					// Direct long link to a dedicated LLC tree-in port.
					in := llc.AddIn(fmt.Sprintf("xred%d_%d", side, d), cfg.TreeBufFlits)
					delay := topo.FBflyLinkDelay(d+1, cfg.TilesPerCycle)
					noc.Connect(red[d], 0, llc, in, delay, float64(d+1)*coreTile)
					continue
				}
				if d == 0 {
					in := llc.AddIn(fmt.Sprintf("red%d", side), cfg.TreeBufFlits)
					noc.Connect(red[0], 0, llc, in, cfg.TreeHop, treeHopLenMM())
				} else {
					noc.Connect(red[d], 0, red[d-1], 0, cfg.TreeHop, treeHopLenMM())
				}
			}

			// Dispersion chain: depth 0 (adjacent) .. RowsPerSide-1.
			disp := make([]*noc.Router, cfg.RowsPerSide)
			for d := 0; d < cfg.RowsPerSide; d++ {
				d := d
				r := noc.NewRouter(-1, fmt.Sprintf("disp.c%d_s%d_d%d", col, side, d), 0, nil)
				r.AddIn("net", cfg.TreeBufFlits)
				local := r.AddOut("local")
				up := -1
				if d < cfg.RowsPerSide-1 && !express(d+1) {
					up = r.AddOut("up")
				}
				r.SetRoute(func(pk *noc.Packet) int {
					_, _, r2 := cfg.CoreLoc(pk.Dst)
					if r2 == d {
						return local
					}
					if up < 0 {
						panic(fmt.Sprintf("core: dispersion node %s cannot reach row %d", r.Name, r2))
					}
					return up
				})
				r.SetPriority(dispPrio)
				r.SetVCCount(2) // responses + snoops only (§4.2)
				disp[d] = r
				n.DispNodes = append(n.DispNodes, r)
			}
			for d := 0; d < cfg.RowsPerSide; d++ {
				var out int
				if express(d) {
					out = llc.AddOut(fmt.Sprintf("xdisp%d_%d", side, d))
					delay := topo.FBflyLinkDelay(d+1, cfg.TilesPerCycle)
					noc.Connect(llc, out, disp[d], 0, delay, float64(d+1)*coreTile)
				} else if d == 0 {
					out = llc.AddOut(fmt.Sprintf("disp%d", side))
					noc.Connect(llc, out, disp[0], 0, cfg.TreeHop, treeHopLenMM())
				} else {
					out = lp.treeOut[side][d-1] // traffic for deeper rows shares the chain
					noc.Connect(disp[d-1], 1, disp[d], 0, cfg.TreeHop, treeHopLenMM())
				}
				lp.treeOut[side][d] = out
			}
			// Rows reached through the chain all use the chain's first
			// output from the LLC router; express rows use their own.
			chainOut := lp.treeOut[side][0]
			for d := 1; d < cfg.RowsPerSide; d++ {
				if !express(d) {
					lp.treeOut[side][d] = chainOut
				}
			}

			// Core NIs: inject into the reduction node's local port, eject
			// from the dispersion node's local output.
			for d := 0; d < cfg.RowsPerSide; d++ {
				id := cfg.CoreNode(col, side, d)
				ni := noc.NewNI(id, stats)
				noc.ConnectNIInject(ni, red[d], 1, 1)
				noc.ConnectNIEject(ni, disp[d], 0, 1, cfg.EjectBuf)
				rn.NIs[id] = ni
			}
			rn.Routers = append(rn.Routers, red...)
			rn.Routers = append(rn.Routers, disp...)
		}
	}

	// Bank NIs on the LLC routers' local ports.
	for col := 0; col < cfg.Columns; col++ {
		for lr := 0; lr < cfg.LLCRows; lr++ {
			idx := lr*cfg.Columns + col
			id := cfg.LLCNode(col, lr)
			ni := noc.NewNI(id, stats)
			localIn := -1
			// The local input is the one added right before tree ports;
			// find it by name ordering: it was added after row/col ports.
			localIn = cfg.Columns - 1 + cfg.LLCRows - 1
			noc.ConnectNI(ni, llcRouters[idx], localIn, ports[idx].localOut, 1, 1, cfg.EjectBuf)
			rn.NIs[id] = ni
		}
	}
	for k := 0; k < cfg.MCCount; k++ {
		col, lr := cfg.MCAttach(k)
		idx := lr*cfg.Columns + col
		ni := noc.NewNI(cfg.MCNode(k), stats)
		noc.ConnectNI(ni, llcRouters[idx], mcIn[idx][k], mcOut[idx][k], 1, 1, cfg.EjectBuf)
		rn.NIs[cfg.MCNode(k)] = ni
	}
	for tile := 0; tile < cfg.NumLLCTiles(); tile++ {
		for k := 0; k < cfg.BankPorts; k++ {
			id := cfg.BankNode(tile%cfg.Columns, tile/cfg.Columns, k)
			ni := noc.NewNI(id, stats)
			noc.ConnectNI(ni, llcRouters[tile], bankIn[tile][k], bankOut[tile][k], 1, 1, cfg.EjectBuf)
			rn.NIs[id] = ni
		}
	}
	rn.Routers = append(rn.Routers, llcRouters...)
	return n
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WireDelay returns an idealized wire-only delay between two NOC-Out
// endpoints, used for idealized comparisons.
func (n *Network) WireDelay(a, b noc.NodeID) sim.Cycle {
	cfg := n.Cfg
	pos := func(id noc.NodeID) (x, y float64) {
		tile := CoreTileMM()
		if cfg.IsLLCNode(id) {
			c, lr := cfg.LLCLoc(id)
			return float64(c) * tile, float64(cfg.RowsPerSide) * tile * (0.5 + float64(lr))
		}
		c, s, r := cfg.CoreLoc(id)
		if s == 0 {
			return float64(c) * tile, float64(cfg.RowsPerSide-1-r) * tile
		}
		return float64(c) * tile, float64(cfg.RowsPerSide+cfg.LLCRows+r) * tile
	}
	ax, ay := pos(a)
	bx, by := pos(b)
	d := absF(ax-bx) + absF(ay-by)
	return sim.Cycle(tech.WireCycles(d))
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
