package core

import (
	"testing"
	"testing/quick"

	"nocout/internal/noc"
	"nocout/internal/sim"
)

func TestConfigDefaults(t *testing.T) {
	c := DefaultConfig()
	if c.NumCores() != 64 {
		t.Fatalf("default cores = %d, want 64", c.NumCores())
	}
	if c.NumLLCTiles() != 8 {
		t.Fatalf("LLC tiles = %d, want 8", c.NumLLCTiles())
	}
	if c.NumNodes() != 72 {
		t.Fatalf("nodes = %d, want 72", c.NumNodes())
	}
}

func TestNodeNumberingRoundTrip(t *testing.T) {
	c := DefaultConfig()
	seen := map[noc.NodeID]bool{}
	for col := 0; col < c.Columns; col++ {
		for side := 0; side < 2; side++ {
			for row := 0; row < c.RowsPerSide; row++ {
				n := c.CoreNode(col, side, row)
				if seen[n] {
					t.Fatalf("duplicate core node %d", n)
				}
				seen[n] = true
				c2, s2, r2 := c.CoreLoc(n)
				if c2 != col || s2 != side || r2 != row {
					t.Fatalf("CoreLoc(CoreNode(%d,%d,%d)) = (%d,%d,%d)", col, side, row, c2, s2, r2)
				}
				if c.IsLLCNode(n) {
					t.Fatalf("core node %d classified as LLC", n)
				}
			}
		}
	}
	for col := 0; col < c.Columns; col++ {
		n := c.LLCNode(col, 0)
		if seen[n] {
			t.Fatalf("LLC node %d collides with a core node", n)
		}
		if !c.IsLLCNode(n) {
			t.Fatalf("LLC node %d not classified as LLC", n)
		}
		c2, r2 := c.LLCLoc(n)
		if c2 != col || r2 != 0 {
			t.Fatalf("LLCLoc round trip failed for col %d", col)
		}
	}
}

func TestNodeNumberingProperty(t *testing.T) {
	cfg := Config{Columns: 4, RowsPerSide: 2, LLCRows: 2}.WithDefaults()
	err := quick.Check(func(a, b, c uint8) bool {
		col := int(a) % cfg.Columns
		side := int(b) % 2
		row := int(c) % cfg.RowsPerSide
		c2, s2, r2 := cfg.CoreLoc(cfg.CoreNode(col, side, row))
		return c2 == col && s2 == side && r2 == row
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// roundTrip sends one packet and returns it after delivery.
func roundTrip(t *testing.T, n *Network, src, dst noc.NodeID, class noc.Class, size int) *noc.Packet {
	t.Helper()
	e := sim.NewEngine()
	e.Register(n)
	var got *noc.Packet
	n.SetDeliver(dst, func(now sim.Cycle, p *noc.Packet) { got = p })
	p := &noc.Packet{ID: 1, Class: class, Src: src, Dst: dst, Size: size}
	n.Send(e.Now(), p)
	if !e.RunUntil(func() bool { return got != nil }, 10000) {
		t.Fatalf("packet %d -> %d never delivered", src, dst)
	}
	return got
}

func TestCoreToOwnColumnLLCLatency(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	// Adjacent core (row 0): inject 1 + NI wire 1 + red node (hop 1) +
	// LLC router (pipe 3 + eject 1) = 7.
	p := roundTrip(t, n, cfg.CoreNode(0, 0, 0), cfg.LLCNode(0, 0), noc.ClassReq, 1)
	if p.Latency() != 7 {
		t.Fatalf("adjacent core->LLC latency = %d, want 7", p.Latency())
	}
	if p.Hops() != 2 { // reduction node + LLC router
		t.Fatalf("hops = %d, want 2", p.Hops())
	}
	// Farthest core (row 3): three more tree hops.
	n2 := Build(cfg)
	p2 := roundTrip(t, n2, cfg.CoreNode(0, 0, 3), cfg.LLCNode(0, 0), noc.ClassReq, 1)
	if p2.Latency() != 10 {
		t.Fatalf("far core->LLC latency = %d, want 10", p2.Latency())
	}
}

func TestCoreToRemoteLLCCrossesButterfly(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	p := roundTrip(t, n, cfg.CoreNode(0, 0, 0), cfg.LLCNode(7, 0), noc.ClassReq, 1)
	// One extra LLC router + a 7-tile link (4 cycles at 2 tiles/cycle).
	if p.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (red node, column 0 LLC router, column 7 LLC router)", p.Hops())
	}
	local := roundTrip(t, Build(cfg), cfg.CoreNode(0, 0, 0), cfg.LLCNode(0, 0), noc.ClassReq, 1)
	if p.Latency() <= local.Latency() {
		t.Fatal("remote bank access must be slower than local")
	}
}

func TestLLCToCoreDispersion(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	// Response from LLC tile 3 to a bottom-side core in column 5, row 2.
	dst := cfg.CoreNode(5, 1, 2)
	p := roundTrip(t, n, cfg.LLCNode(3, 0), dst, noc.ClassResp, 5)
	// Path: LLC router 3 -> LLC router 5 -> 3 dispersion nodes.
	if p.Hops() != 5 {
		t.Fatalf("hops = %d, want 5", p.Hops())
	}
}

func TestSnoopDelivery(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	p := roundTrip(t, n, cfg.LLCNode(0, 0), cfg.CoreNode(0, 0, 3), noc.ClassSnoop, 1)
	if p.Latency() <= 0 {
		t.Fatal("snoop not delivered")
	}
}

func TestCoreToCoreFlowsThroughLLCRegion(t *testing.T) {
	// §4.4: no direct core-to-core links; L1-to-L1 forwards traverse the
	// LLC region (reduction tree -> LLC router(s) -> dispersion tree).
	cfg := DefaultConfig()
	n := Build(cfg)
	src := cfg.CoreNode(2, 0, 1)
	dst := cfg.CoreNode(2, 0, 2) // same column, one row apart
	p := roundTrip(t, n, src, dst, noc.ClassResp, 5)
	// Even for adjacent cores the path is: 2 reduction hops down, the LLC
	// router, and 3 dispersion hops back up = 6 router traversals.
	if p.Hops() != 6 {
		t.Fatalf("hops = %d, want 6 (must descend to the LLC region)", p.Hops())
	}
}

func TestAllCoresReachAllBanks(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	e := sim.NewEngine()
	e.Register(n)
	delivered := 0
	for i := 0; i < cfg.NumLLCTiles(); i++ {
		n.SetDeliver(cfg.LLCNode(i%cfg.Columns, i/cfg.Columns), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for cn := 0; cn < cfg.NumCoreNodes(); cn++ {
		for tl := 0; tl < cfg.NumLLCTiles(); tl++ {
			n.Send(e.Now(), &noc.Packet{
				ID: uint64(sent), Class: noc.ClassReq,
				Src: noc.NodeID(cn), Dst: cfg.LLCNode(tl%cfg.Columns, tl/cfg.Columns), Size: 1,
			})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 200000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}

func TestAllBanksReachAllCores(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	e := sim.NewEngine()
	e.Register(n)
	delivered := 0
	for cn := 0; cn < cfg.NumCoreNodes(); cn++ {
		n.SetDeliver(noc.NodeID(cn), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	sent := 0
	for tl := 0; tl < cfg.NumLLCTiles(); tl++ {
		for cn := 0; cn < cfg.NumCoreNodes(); cn++ {
			n.Send(e.Now(), &noc.Packet{
				ID: uint64(sent), Class: noc.ClassResp,
				Src: cfg.LLCNode(tl%cfg.Columns, tl/cfg.Columns), Dst: noc.NodeID(cn), Size: 5,
			})
			sent++
		}
	}
	if !e.RunUntil(func() bool { return delivered == sent }, 500000) {
		t.Fatalf("delivered %d/%d", delivered, sent)
	}
}

func TestExpressLinksReduceFarCoreLatency(t *testing.T) {
	base := Config{Columns: 4, RowsPerSide: 8}
	slow := Build(base)
	cfgFast := base
	cfgFast.ExpressFrom = 4
	fast := Build(cfgFast)
	src := slow.Cfg.CoreNode(1, 0, 7) // farthest row
	dst := slow.Cfg.LLCNode(1, 0)
	ps := roundTrip(t, slow, src, dst, noc.ClassReq, 1)
	pf := roundTrip(t, fast, src, dst, noc.ClassReq, 1)
	if pf.Latency() >= ps.Latency() {
		t.Fatalf("express link should cut far-core latency: express=%d chain=%d", pf.Latency(), ps.Latency())
	}
	// Near rows are unaffected.
	near := roundTrip(t, Build(cfgFast), slow.Cfg.CoreNode(1, 0, 0), dst, noc.ClassReq, 1)
	if near.Latency() != 7 {
		t.Fatalf("near-core latency changed under express links: %d", near.Latency())
	}
}

func TestConcentrationScalesCores(t *testing.T) {
	cfg := Config{Columns: 8, RowsPerSide: 4, Concentration: 2}
	c := cfg.WithDefaults()
	if c.NumCores() != 128 {
		t.Fatalf("128-core concentrated config reports %d cores", c.NumCores())
	}
	if c.NumCoreNodes() != 64 {
		t.Fatalf("concentration must not add network endpoints: %d", c.NumCoreNodes())
	}
	// The network still builds and delivers.
	n := Build(cfg)
	p := roundTrip(t, n, c.CoreNode(0, 0, 0), c.LLCNode(0, 0), noc.ClassReq, 1)
	if p.Latency() <= 0 {
		t.Fatal("concentrated network failed to deliver")
	}
}

func TestTwoLLCRowsBuildAndRoute(t *testing.T) {
	cfg := Config{Columns: 4, RowsPerSide: 2, LLCRows: 2}
	n := Build(cfg)
	c := n.Cfg
	// Top core to bottom-attached LLC row.
	p := roundTrip(t, n, c.CoreNode(0, 0, 0), c.LLCNode(0, 1), noc.ClassReq, 1)
	if p.Hops() < 3 {
		t.Fatalf("cross-LLC-row access should traverse both LLC routers; hops=%d", p.Hops())
	}
	// Response from top LLC row to a bottom core crosses rows too.
	p2 := roundTrip(t, Build(cfg), c.LLCNode(2, 0), c.CoreNode(2, 1, 1), noc.ClassResp, 5)
	if p2.Latency() <= 0 {
		t.Fatal("no delivery across LLC rows")
	}
}

func TestReductionTreePrioritizesNetworkOverLocal(t *testing.T) {
	// Saturate a column from the far core and the near core; the near
	// core's node must let network traffic (from the far core) through
	// first under the static priority, mitigating the distance penalty.
	cfg := DefaultConfig()
	n := Build(cfg)
	e := sim.NewEngine()
	e.Register(n)
	far := cfg.CoreNode(0, 0, 3)
	near := cfg.CoreNode(0, 0, 0)
	dst := cfg.LLCNode(0, 0)
	var farDone, nearDone int
	n.SetDeliver(dst, func(now sim.Cycle, p *noc.Packet) {
		if p.Src == far {
			farDone++
		} else {
			nearDone++
		}
	})
	const k = 50
	for i := 0; i < k; i++ {
		n.Send(e.Now(), &noc.Packet{ID: uint64(i), Class: noc.ClassReq, Src: far, Dst: dst, Size: 1})
		n.Send(e.Now(), &noc.Packet{ID: uint64(1000 + i), Class: noc.ClassReq, Src: near, Dst: dst, Size: 1})
	}
	e.RunUntil(func() bool { return farDone == k && nearDone == k }, 50000)
	if farDone != k || nearDone != k {
		t.Fatalf("far=%d near=%d, want %d each", farDone, nearDone, k)
	}
}

func TestWireDelaySymmetricPositive(t *testing.T) {
	cfg := DefaultConfig()
	n := Build(cfg)
	a := cfg.CoreNode(0, 0, 3)
	b := cfg.LLCNode(7, 0)
	if n.WireDelay(a, b) != n.WireDelay(b, a) {
		t.Fatal("wire delay must be symmetric")
	}
	if n.WireDelay(a, b) < 1 {
		t.Fatal("wire delay must be at least one cycle")
	}
}
