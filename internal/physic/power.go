package physic

import (
	"fmt"
	"math"

	"nocout/internal/noc"
	"nocout/internal/tech"
)

// Power is a NoC power report in watts, split by component. As in §6.4,
// link energy dominates all three organizations.
type Power struct {
	LinkW    float64 `json:"link_w"`    // wire + repeater switching
	RouterW  float64 `json:"router_w"`  // buffers, switch, arbitration
	LeakageW float64 `json:"leakage_w"` // static power of the NoC logic area
}

// Total returns the summed power.
func (p Power) Total() float64 { return p.LinkW + p.RouterW + p.LeakageW }

// String formats the report.
func (p Power) String() string {
	return fmt.Sprintf("links %.2f W + routers %.2f W + leakage %.2f W = %.2f W",
		p.LinkW, p.RouterW, p.LeakageW, p.Total())
}

// NetworkPower converts a measurement window's activity counters into
// average power at the 2 GHz operating point. routers enables per-router
// energy (a 2-port tree mux costs far less per flit than a 15-port
// crossbar); pass the network's router list.
func NetworkPower(st noc.Stats, routers []*noc.Router, cycles int64, linkBits int, area Breakdown) Power {
	return NetworkPowerKind(st, routers, cycles, linkBits, area, FlipFlop)
}

// NetworkPowerKind is NetworkPower with an explicit buffer circuit kind.
func NetworkPowerKind(st noc.Stats, routers []*noc.Router, cycles int64, linkBits int, area Breakdown, kind BufferKind) Power {
	if cycles <= 0 {
		return Power{LeakageW: tech.LeakageWPerMM2 * area.Total()}
	}
	seconds := float64(cycles) / (tech.ClockGHz * 1e9)
	bits := float64(linkBits)

	linkJ := st.FlitLinkMM * bits * tech.WireFJPerBitMM * 1e-15
	bufPJ := tech.BufferPJPerBit
	if kind == SRAM {
		bufPJ *= tech.SRAMPJFactor
	}
	routerJ := 0.0
	for _, r := range routers {
		ports := r.NumIn()
		if r.NumOut() > ports {
			ports = r.NumOut()
		}
		perFlitPJ := bits*bufPJ + bits*tech.XbarPJPerBit*math.Sqrt(float64(ports)/5) + tech.ArbiterPJ
		if ports <= 2 {
			// Mux node: no crossbar, trivial arbiter (§4.1).
			perFlitPJ = bits*bufPJ + 0.2
		}
		routerJ += float64(r.FlitsRouted()) * perFlitPJ * 1e-12
	}

	return Power{
		LinkW:    linkJ / seconds,
		RouterW:  routerJ / seconds,
		LeakageW: tech.LeakageWPerMM2 * area.Total(),
	}
}
