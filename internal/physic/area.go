// Package physic provides the physical models of the evaluation: NoC area
// (ORION-flavoured buffers and crossbars plus repeatered links, §5.2) and
// NoC energy (link-dominated, §6.4). The same area model drives Figure 8's
// breakdown and Figure 9's equal-area link-width solver, so the
// area-normalized comparison is self-consistent.
package physic

import (
	"fmt"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/tech"
	"nocout/internal/topo"
)

// BufferKind selects the buffer circuit: flip-flops for shallow queues
// (mesh, NOC-Out), SRAM for the flattened butterfly's deep buffers (§5.2).
type BufferKind uint8

// Buffer kinds.
const (
	FlipFlop BufferKind = iota
	SRAM
)

func (k BufferKind) cellMM2PerBit() float64 {
	if k == SRAM {
		return tech.SRAMMM2PerBit
	}
	return tech.FlipFlopMM2PerBit
}

// Breakdown is a NoC area report in mm², split the way Figure 8 splits it.
type Breakdown struct {
	Links    float64 `json:"links_mm2"`    // repeater area of all links
	Buffers  float64 `json:"buffers_mm2"`  // input buffering
	Crossbar float64 `json:"crossbar_mm2"` // switch fabric
}

// Total returns the summed area.
func (b Breakdown) Total() float64 { return b.Links + b.Buffers + b.Crossbar }

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Links:    b.Links + o.Links,
		Buffers:  b.Buffers + o.Buffers,
		Crossbar: b.Crossbar + o.Crossbar,
	}
}

// Scale returns the breakdown scaled by f (used by width scaling).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{Links: b.Links * f, Buffers: b.Buffers * f, Crossbar: b.Crossbar * f}
}

// String formats the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("links %.2f + buffers %.2f + crossbar %.2f = %.2f mm²",
		b.Links, b.Buffers, b.Crossbar, b.Total())
}

// RoutersArea computes the area of a set of routers and their outgoing
// links at the given flit width.
func RoutersArea(routers []*noc.Router, linkBits int, kind BufferKind) Breakdown {
	var b Breakdown
	w := float64(linkBits)
	for _, r := range routers {
		b.Buffers += float64(r.BufferFlits()) * w * kind.cellMM2PerBit()
		ports := r.NumIn()
		if r.NumOut() > ports {
			ports = r.NumOut()
		}
		b.Crossbar += tech.CrossbarAreaMM2(ports, linkBits)
		for _, l := range r.OutLinkLengthsMM() {
			b.Links += l * w * tech.RepeaterMM2PerBitMM
		}
	}
	return b
}

// MeshArea returns the NoC area of the Table 1 tiled mesh.
func MeshArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	p := topo.DefaultMeshParams(plan)
	n := topo.NewMesh(p)
	return RoutersArea(n.Routers, linkBits, FlipFlop)
}

// FBflyArea returns the NoC area of the Table 1 flattened butterfly.
func FBflyArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	p := topo.DefaultFBflyParams(plan)
	n := topo.NewFBfly(p)
	return RoutersArea(n.Routers, linkBits, SRAM)
}

// NOCOutArea returns the NOC-Out interconnect area split into its three
// networks (reduction trees, dispersion trees, LLC flattened butterfly),
// matching §6.2's accounting.
func NOCOutArea(cfg core.Config, linkBits int) (red, disp, llc Breakdown) {
	n := core.Build(cfg)
	red = RoutersArea(n.RedNodes, linkBits, FlipFlop)
	disp = RoutersArea(n.DispNodes, linkBits, FlipFlop)
	llc = RoutersArea(n.LLCRouters, linkBits, FlipFlop)
	return red, disp, llc
}

// NOCOutTotalArea returns the summed NOC-Out area.
func NOCOutTotalArea(cfg core.Config, linkBits int) Breakdown {
	r, d, l := NOCOutArea(cfg, linkBits)
	return r.Add(d).Add(l)
}

// DesignArea returns a design's total NoC area at a link width, using the
// Table 1 organizations.
func DesignArea(design string, linkBits int) Breakdown {
	switch design {
	case "mesh":
		return MeshArea(64, 8, linkBits)
	case "fbfly":
		return FBflyArea(64, 8, linkBits)
	case "nocout":
		return NOCOutTotalArea(core.DefaultConfig(), linkBits)
	}
	panic(fmt.Sprintf("physic: unknown design %q", design))
}

// SolveWidthForArea finds the widest power-of-two-ish link width (multiple
// of 8 bits, at least 8) whose area does not exceed budget mm² — Figure 9's
// equal-area normalization. It reports the width and the achieved area.
func SolveWidthForArea(design string, budgetMM2 float64) (linkBits int, area Breakdown) {
	best := 8
	bestArea := DesignArea(design, best)
	for w := 8; w <= 512; w += 8 {
		a := DesignArea(design, w)
		if a.Total() <= budgetMM2 {
			best, bestArea = w, a
		}
	}
	return best, bestArea
}
