// Package physic provides the physical models of the evaluation: NoC area
// (ORION-flavoured buffers and crossbars plus repeatered links, §5.2) and
// NoC energy (link-dominated, §6.4). The same area model drives Figure 8's
// breakdown and Figure 9's equal-area link-width solver, so the
// area-normalized comparison is self-consistent.
package physic

import (
	"fmt"

	"nocout/internal/core"
	"nocout/internal/noc"
	"nocout/internal/tech"
	"nocout/internal/topo"
)

// BufferKind selects the buffer circuit: flip-flops for shallow queues
// (mesh, NOC-Out), SRAM for the flattened butterfly's deep buffers (§5.2).
type BufferKind uint8

// Buffer kinds.
const (
	FlipFlop BufferKind = iota
	SRAM
)

func (k BufferKind) cellMM2PerBit() float64 {
	if k == SRAM {
		return tech.SRAMMM2PerBit
	}
	return tech.FlipFlopMM2PerBit
}

// Breakdown is a NoC area report in mm², split the way Figure 8 splits it.
type Breakdown struct {
	Links    float64 `json:"links_mm2"`    // repeater area of all links
	Buffers  float64 `json:"buffers_mm2"`  // input buffering
	Crossbar float64 `json:"crossbar_mm2"` // switch fabric
}

// Total returns the summed area.
func (b Breakdown) Total() float64 { return b.Links + b.Buffers + b.Crossbar }

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Links:    b.Links + o.Links,
		Buffers:  b.Buffers + o.Buffers,
		Crossbar: b.Crossbar + o.Crossbar,
	}
}

// Scale returns the breakdown scaled by f (used by width scaling).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{Links: b.Links * f, Buffers: b.Buffers * f, Crossbar: b.Crossbar * f}
}

// String formats the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("links %.2f + buffers %.2f + crossbar %.2f = %.2f mm²",
		b.Links, b.Buffers, b.Crossbar, b.Total())
}

// RoutersArea computes the area of a set of routers and their outgoing
// links at the given flit width.
func RoutersArea(routers []*noc.Router, linkBits int, kind BufferKind) Breakdown {
	var b Breakdown
	w := float64(linkBits)
	for _, r := range routers {
		b.Buffers += float64(r.BufferFlits()) * w * kind.cellMM2PerBit()
		ports := r.NumIn()
		if r.NumOut() > ports {
			ports = r.NumOut()
		}
		b.Crossbar += tech.CrossbarAreaMM2(ports, linkBits)
		for _, l := range r.OutLinkLengthsMM() {
			b.Links += l * w * tech.RepeaterMM2PerBitMM
		}
	}
	return b
}

// MeshArea returns the NoC area of the Table 1 tiled mesh.
func MeshArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	p := topo.DefaultMeshParams(plan)
	n := topo.NewMesh(p)
	return RoutersArea(n.Routers, linkBits, FlipFlop)
}

// FBflyArea returns the NoC area of the Table 1 flattened butterfly.
func FBflyArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	p := topo.DefaultFBflyParams(plan)
	n := topo.NewFBfly(p)
	return RoutersArea(n.Routers, linkBits, SRAM)
}

// NOCOutArea returns the NOC-Out interconnect area split into its three
// networks (reduction trees, dispersion trees, LLC flattened butterfly),
// matching §6.2's accounting.
func NOCOutArea(cfg core.Config, linkBits int) (red, disp, llc Breakdown) {
	n := core.Build(cfg)
	red = RoutersArea(n.RedNodes, linkBits, FlipFlop)
	disp = RoutersArea(n.DispNodes, linkBits, FlipFlop)
	llc = RoutersArea(n.LLCRouters, linkBits, FlipFlop)
	return red, disp, llc
}

// NOCOutTotalArea returns the summed NOC-Out area.
func NOCOutTotalArea(cfg core.Config, linkBits int) Breakdown {
	r, d, l := NOCOutArea(cfg, linkBits)
	return r.Add(d).Add(l)
}

// TorusArea returns the NoC area of the folded 2-D torus: mesh-class
// routers with deeper ring buffers (bubble flow control) and a link budget
// of two tile pitches per hop.
func TorusArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	p := topo.DefaultTorusParams(plan)
	p.MaxPktFlits = noc.FlitsFor(64, linkBits)
	n := topo.NewTorus(p)
	return RoutersArea(n.Routers, linkBits, FlipFlop)
}

// CMeshArea returns the NoC area of the 4:1 concentrated mesh: a quarter
// of the mesh's routers at higher radix, with links at twice the pitch.
func CMeshArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	n := topo.NewCMesh(topo.DefaultCMeshParams(plan))
	return RoutersArea(n.Routers, linkBits, FlipFlop)
}

// LLCPhysical models a memory hierarchy's on-die contribution: the LLC
// storage array, the directory state tracking it, and their standby
// leakage. Storage scales with capacity alone; directory area scales with
// the line count times the sharer-vector width (one bit per core plus tag
// and state overhead), so many-core chips pay for coherence in silicon
// even when the capacity is fixed. Each bank adds a small fixed control
// overhead, which is how bank-heavy hierarchies (private per-tile slices)
// show their cost.
func LLCPhysical(llcMB float64, banks, cores int) (storageMM2, dirMM2, leakageW float64) {
	if llcMB <= 0 {
		return 0, 0, 0
	}
	storageMM2 = llcMB * tech.CacheMM2PerMB
	lines := llcMB * (1 << 20) / 64
	dirBitsPerLine := float64(cores) + 16 // sharer vector + owner/state/tag overhead
	dirMM2 = lines * dirBitsPerLine * tech.SRAMMM2PerBit
	dirMM2 += float64(banks) * 0.02 // per-bank sequencer/pipeline control
	leakageW = tech.LeakageWPerMM2 * (storageMM2 + dirMM2)
	return storageMM2, dirMM2, leakageW
}

// CrossbarArea returns the NoC area of the central crossbar: one switch
// whose matrix grows quadratically with the tile count (§2.2), plus the
// die-spanning spokes to every tile.
func CrossbarArea(cores int, llcMB float64, linkBits int) Breakdown {
	plan := topo.TiledFloorplan(cores, llcMB)
	n := topo.NewCrossbar(topo.DefaultCrossbarParams(plan))
	return RoutersArea(n.Routers, linkBits, FlipFlop)
}
