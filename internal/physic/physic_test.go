package physic

import (
	"testing"

	"nocout/internal/core"
	"nocout/internal/noc"
)

func TestFigure8AreaAnchors(t *testing.T) {
	mesh := MeshArea(64, 8, 128)
	fbfly := FBflyArea(64, 8, 128)
	nocout := NOCOutTotalArea(core.DefaultConfig(), 128)

	within := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s area = %.2f mm², want within [%.1f, %.1f]", name, got, lo, hi)
		}
	}
	// §6.2 anchors with calibration tolerance.
	within("mesh", mesh.Total(), 3.0, 4.0)
	within("fbfly", fbfly.Total(), 19, 27)
	within("nocout", nocout.Total(), 2.3, 3.4)

	if !(nocout.Total() < mesh.Total() && mesh.Total() < fbfly.Total()) {
		t.Fatalf("ordering violated: nocout %.2f, mesh %.2f, fbfly %.2f",
			nocout.Total(), mesh.Total(), fbfly.Total())
	}
	if r := fbfly.Total() / nocout.Total(); r < 6 {
		t.Fatalf("fbfly/nocout area ratio = %.1f, want >= 6 (paper: ~9x)", r)
	}
	if r := fbfly.Total() / mesh.Total(); r < 5 {
		t.Fatalf("fbfly/mesh area ratio = %.1f, want >= 5 (paper: ~7x)", r)
	}
}

func TestNOCOutAreaComposition(t *testing.T) {
	red, disp, llc := NOCOutArea(core.DefaultConfig(), 128)
	total := red.Add(disp).Add(llc).Total()
	// §6.2: the LLC butterfly is the majority of NOC-Out's area while
	// linking a small fraction of tiles; each tree network is a modest
	// share.
	if llc.Total() < red.Total() || llc.Total() < disp.Total() {
		t.Fatalf("LLC network (%.2f) should dominate trees (%.2f, %.2f)",
			llc.Total(), red.Total(), disp.Total())
	}
	if frac := llc.Total() / total; frac < 0.45 || frac > 0.8 {
		t.Fatalf("LLC share = %.2f, want around 0.64", frac)
	}
	for _, tr := range []struct {
		name string
		b    Breakdown
	}{{"reduction", red}, {"dispersion", disp}} {
		if frac := tr.b.Total() / total; frac < 0.08 || frac > 0.3 {
			t.Errorf("%s share = %.2f, want around 0.18", tr.name, frac)
		}
	}
}

func TestFBflyBreakdownLinkDominated(t *testing.T) {
	f := FBflyArea(64, 8, 128)
	// The paper attributes fbfly's footprint to its link budget and
	// many-ported routers.
	if f.Links < f.Buffers {
		t.Fatalf("fbfly links (%.2f) should exceed buffers (%.2f)", f.Links, f.Buffers)
	}
	if f.Links < 0.4*f.Total() {
		t.Fatalf("fbfly links = %.2f of %.2f: links should dominate", f.Links, f.Total())
	}
}

func TestAreaScalesWithWidth(t *testing.T) {
	prev := 0.0
	for _, w := range []int{32, 64, 128, 256} {
		a := MeshArea(64, 8, w).Total()
		if a <= prev {
			t.Fatalf("area must grow with link width: %.2f at %d bits after %.2f", a, w, prev)
		}
		prev = a
	}
}

func TestSolveWidthForArea(t *testing.T) {
	budget := NOCOutTotalArea(core.DefaultConfig(), 128).Total()
	for _, d := range []string{"mesh", "fbfly"} {
		w, area := SolveWidthForArea(d, budget)
		if area.Total() > budget {
			t.Fatalf("%s: solved area %.2f exceeds budget %.2f", d, area.Total(), budget)
		}
		if over := DesignArea(d, w+8); over.Total() <= budget {
			t.Fatalf("%s: width %d is not maximal (w+8 still fits)", d, w)
		}
	}
	// Figure 9's headline: fbfly's equal-area width collapses (paper:
	// bandwidth shrinks ~7x); the mesh shrinks mildly.
	wm, _ := SolveWidthForArea("mesh", budget)
	wf, _ := SolveWidthForArea("fbfly", budget)
	if wf >= wm {
		t.Fatalf("fbfly equal-area width (%d) should be far below mesh's (%d)", wf, wm)
	}
	if ratio := 128 / wf; ratio < 4 {
		t.Fatalf("fbfly width shrink = %dx, want >= 4x (paper ~7x)", ratio)
	}
	if wm < 64 {
		t.Fatalf("mesh equal-area width = %d, should remain reasonably wide", wm)
	}
}

func TestPowerModel(t *testing.T) {
	area := MeshArea(64, 8, 128)
	idle := NetworkPower(noc.Stats{}, nil, 10000, 128, area)
	if idle.LinkW != 0 || idle.RouterW != 0 {
		t.Fatal("idle network should dissipate only leakage")
	}
	if idle.LeakageW <= 0 {
		t.Fatal("leakage must be positive")
	}
	busy := NetworkPower(noc.Stats{FlitLinkMM: 1e6}, nil, 10000, 128, area)
	if busy.LinkW <= 0 {
		t.Fatal("link activity must dissipate power")
	}
	// Twice the activity in the same window doubles dynamic power.
	busy2 := NetworkPower(noc.Stats{FlitLinkMM: 2e6}, nil, 10000, 128, area)
	if busy2.LinkW < busy.LinkW*1.99 || busy2.LinkW > busy.LinkW*2.01 {
		t.Fatalf("link power not linear in activity: %v vs %v", busy2.LinkW, busy.LinkW)
	}
	if zero := NetworkPower(noc.Stats{}, nil, 0, 128, area); zero.Total() != zero.LeakageW {
		t.Fatal("zero-cycle window must be leakage only")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Links: 1, Buffers: 2, Crossbar: 3}
	b := a.Add(a)
	if b.Total() != 12 {
		t.Fatalf("Add: %v", b)
	}
	if s := a.Scale(2); s.Total() != 12 || s.Links != 2 {
		t.Fatalf("Scale: %v", s)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDesignAreaUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DesignArea("torus", 128)
}
