package physic

import (
	"testing"

	"nocout/internal/core"
	"nocout/internal/noc"
)

func TestFigure8AreaAnchors(t *testing.T) {
	mesh := MeshArea(64, 8, 128)
	fbfly := FBflyArea(64, 8, 128)
	nocout := NOCOutTotalArea(core.DefaultConfig(), 128)

	within := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s area = %.2f mm², want within [%.1f, %.1f]", name, got, lo, hi)
		}
	}
	// §6.2 anchors with calibration tolerance.
	within("mesh", mesh.Total(), 3.0, 4.0)
	within("fbfly", fbfly.Total(), 19, 27)
	within("nocout", nocout.Total(), 2.3, 3.4)

	if !(nocout.Total() < mesh.Total() && mesh.Total() < fbfly.Total()) {
		t.Fatalf("ordering violated: nocout %.2f, mesh %.2f, fbfly %.2f",
			nocout.Total(), mesh.Total(), fbfly.Total())
	}
	if r := fbfly.Total() / nocout.Total(); r < 6 {
		t.Fatalf("fbfly/nocout area ratio = %.1f, want >= 6 (paper: ~9x)", r)
	}
	if r := fbfly.Total() / mesh.Total(); r < 5 {
		t.Fatalf("fbfly/mesh area ratio = %.1f, want >= 5 (paper: ~7x)", r)
	}
}

func TestNOCOutAreaComposition(t *testing.T) {
	red, disp, llc := NOCOutArea(core.DefaultConfig(), 128)
	total := red.Add(disp).Add(llc).Total()
	// §6.2: the LLC butterfly is the majority of NOC-Out's area while
	// linking a small fraction of tiles; each tree network is a modest
	// share.
	if llc.Total() < red.Total() || llc.Total() < disp.Total() {
		t.Fatalf("LLC network (%.2f) should dominate trees (%.2f, %.2f)",
			llc.Total(), red.Total(), disp.Total())
	}
	if frac := llc.Total() / total; frac < 0.45 || frac > 0.8 {
		t.Fatalf("LLC share = %.2f, want around 0.64", frac)
	}
	for _, tr := range []struct {
		name string
		b    Breakdown
	}{{"reduction", red}, {"dispersion", disp}} {
		if frac := tr.b.Total() / total; frac < 0.08 || frac > 0.3 {
			t.Errorf("%s share = %.2f, want around 0.18", tr.name, frac)
		}
	}
}

func TestFBflyBreakdownLinkDominated(t *testing.T) {
	f := FBflyArea(64, 8, 128)
	// The paper attributes fbfly's footprint to its link budget and
	// many-ported routers.
	if f.Links < f.Buffers {
		t.Fatalf("fbfly links (%.2f) should exceed buffers (%.2f)", f.Links, f.Buffers)
	}
	if f.Links < 0.4*f.Total() {
		t.Fatalf("fbfly links = %.2f of %.2f: links should dominate", f.Links, f.Total())
	}
}

func TestAreaScalesWithWidth(t *testing.T) {
	prev := 0.0
	for _, w := range []int{32, 64, 128, 256} {
		a := MeshArea(64, 8, w).Total()
		if a <= prev {
			t.Fatalf("area must grow with link width: %.2f at %d bits after %.2f", a, w, prev)
		}
		prev = a
	}
}

func TestExtendedDesignAreas(t *testing.T) {
	mesh := MeshArea(64, 8, 128)
	torus := TorusArea(64, 8, 128)
	cmesh := CMeshArea(64, 8, 128)
	xbar := CrossbarArea(64, 8, 128)
	for _, c := range []struct {
		name string
		b    Breakdown
	}{{"torus", torus}, {"cmesh", cmesh}, {"crossbar", xbar}} {
		if c.b.Total() <= 0 {
			t.Errorf("%s area = %v, want positive", c.name, c.b)
		}
	}
	// The torus buys its halved diameter with folded two-tile links and the
	// deep ring buffers bubble flow control needs: more area than the mesh.
	if torus.Total() <= mesh.Total() {
		t.Errorf("torus (%.2f) should out-cost the mesh (%.2f)", torus.Total(), mesh.Total())
	}
	if torus.Links <= mesh.Links {
		t.Errorf("folded torus links (%.2f) should exceed mesh links (%.2f)", torus.Links, mesh.Links)
	}
	// Concentration trades router count for radix: fewer, larger routers
	// with a smaller total buffer budget than the mesh.
	if cmesh.Buffers >= mesh.Buffers {
		t.Errorf("cmesh buffers (%.2f) should undercut mesh buffers (%.2f)", cmesh.Buffers, mesh.Buffers)
	}
	// §2.2: the central switch is what blows up at 64 tiles.
	if xbar.Crossbar < mesh.Crossbar {
		t.Errorf("64-port central switch (%.2f) should exceed the mesh's switch budget (%.2f)",
			xbar.Crossbar, mesh.Crossbar)
	}
}

func TestCrossbarAreaGrowsSuperlinearly(t *testing.T) {
	a16 := CrossbarArea(16, 8, 128)
	a64 := CrossbarArea(64, 8, 128)
	if ratio := a64.Crossbar / a16.Crossbar; ratio < 10 {
		t.Fatalf("central switch should grow quadratically with tiles: 64c/16c = %.1f", ratio)
	}
}

func TestPowerModel(t *testing.T) {
	area := MeshArea(64, 8, 128)
	idle := NetworkPower(noc.Stats{}, nil, 10000, 128, area)
	if idle.LinkW != 0 || idle.RouterW != 0 {
		t.Fatal("idle network should dissipate only leakage")
	}
	if idle.LeakageW <= 0 {
		t.Fatal("leakage must be positive")
	}
	busy := NetworkPower(noc.Stats{FlitLinkMM: 1e6}, nil, 10000, 128, area)
	if busy.LinkW <= 0 {
		t.Fatal("link activity must dissipate power")
	}
	// Twice the activity in the same window doubles dynamic power.
	busy2 := NetworkPower(noc.Stats{FlitLinkMM: 2e6}, nil, 10000, 128, area)
	if busy2.LinkW < busy.LinkW*1.99 || busy2.LinkW > busy.LinkW*2.01 {
		t.Fatalf("link power not linear in activity: %v vs %v", busy2.LinkW, busy.LinkW)
	}
	if zero := NetworkPower(noc.Stats{}, nil, 0, 128, area); zero.Total() != zero.LeakageW {
		t.Fatal("zero-cycle window must be leakage only")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Links: 1, Buffers: 2, Crossbar: 3}
	b := a.Add(a)
	if b.Total() != 12 {
		t.Fatalf("Add: %v", b)
	}
	if s := a.Scale(2); s.Total() != 12 || s.Links != 2 {
		t.Fatalf("Scale: %v", s)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}
