package sim

import (
	"reflect"
	"testing"
)

// delivery records one observed pop: which value arrived at which cycle.
type delivery struct {
	V  int
	At Cycle
}

// pipeConsumer drains a pipe whenever it ticks and sleeps on the pipe's
// in-flight schedule — the canonical Sleeper over a single wake source.
type pipeConsumer struct {
	p   *Pipe[int]
	got []delivery
}

func (c *pipeConsumer) BindWaker(w Waker) { c.p.SetWaker(w) }
func (c *pipeConsumer) Tick(now Cycle) {
	for {
		v, ok := c.p.Pop(now)
		if !ok {
			return
		}
		c.got = append(c.got, delivery{V: v, At: now})
	}
}
func (c *pipeConsumer) NextWake(now Cycle) Cycle {
	if at, ok := c.p.NextAt(); ok {
		return at
	}
	return NeverWake
}

// queueConsumer is the mailbox-pattern equivalent over a Queue.
type queueConsumer struct {
	q   *Queue[int]
	got []delivery
}

func (c *queueConsumer) BindWaker(w Waker) { c.q.SetWaker(w) }
func (c *queueConsumer) Tick(now Cycle) {
	for {
		v, ok := c.q.Pop()
		if !ok {
			return
		}
		c.got = append(c.got, delivery{V: v, At: now})
	}
}
func (c *queueConsumer) NextWake(now Cycle) Cycle {
	if c.q.Len() > 0 {
		return now + 1
	}
	return NeverWake
}

// TestPipeFIFOAcrossSleepWake is the kernel-equivalence property test: for
// randomized interleavings of Push/PushAfter (with randomized extra delays
// and long idle gaps that force the consumer through sleep/wake
// transitions), the scheduled kernel must deliver exactly the same values
// at exactly the same cycles as the naive kernel, in FIFO order.
func TestPipeFIFOAcrossSleepWake(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		run := func(scheduled bool) []delivery {
			e := NewEngine()
			e.SetScheduled(scheduled)
			p := NewPipe[int]("prop", 2)
			rng := NewRNG(seed)
			next := 0
			// The producer is a plain ticker (always awake) so both kernels
			// draw the identical random push schedule.
			producer := TickFunc(func(now Cycle) {
				switch rng.Intn(10) {
				case 0:
					p.Push(now, next)
					next++
				case 1:
					p.PushAfter(now, Cycle(rng.Intn(30)), next)
					next++
				case 2: // burst
					for k := 0; k < 3; k++ {
						p.PushAfter(now, Cycle(rng.Intn(5)), next)
						next++
					}
				}
			})
			cons := &pipeConsumer{p: p}
			e.Register(producer, cons)
			e.Step(500)
			return cons.got
		}
		naive, sched := run(false), run(true)
		if !reflect.DeepEqual(naive, sched) {
			t.Fatalf("seed %d: kernels disagree:\nnaive %v\nsched %v", seed, naive, sched)
		}
		for i := 1; i < len(sched); i++ {
			if sched[i].V != sched[i-1].V+1 {
				t.Fatalf("seed %d: FIFO order violated at %d: %v", seed, i, sched)
			}
			if sched[i].At < sched[i-1].At {
				t.Fatalf("seed %d: delivery cycles regressed: %v", seed, sched)
			}
		}
		if len(sched) == 0 {
			t.Fatalf("seed %d: no deliveries — property vacuous", seed)
		}
	}
}

// TestQueueWakeAcrossSleep pins the same-cycle visibility rule for queues:
// a push from a producer registered before the consumer is seen on the
// same cycle (also when the consumer was asleep), exactly as in the naive
// kernel.
func TestQueueWakeAcrossSleep(t *testing.T) {
	run := func(scheduled bool) []delivery {
		e := NewEngine()
		e.SetScheduled(scheduled)
		q := &Queue[int]{}
		next := 0
		producer := TickFunc(func(now Cycle) {
			if now%97 == 0 { // long idle gaps put the consumer to sleep
				q.Push(next)
				next++
			}
		})
		cons := &queueConsumer{q: q}
		e.Register(producer, cons)
		e.Step(1000)
		return cons.got
	}
	naive, sched := run(false), run(true)
	if !reflect.DeepEqual(naive, sched) {
		t.Fatalf("kernels disagree:\nnaive %v\nsched %v", naive, sched)
	}
	for _, d := range sched {
		if d.At%97 != 0 {
			t.Fatalf("same-cycle visibility broken: pushed at a %%97 boundary, got %v", d)
		}
	}
}

// TestScheduledSkipsIdleComponents verifies the quiescence accounting: a
// sleeping component is not ticked on idle cycles, while a plain ticker
// still runs every cycle, and results stay identical.
func TestScheduledSkipsIdleComponents(t *testing.T) {
	e := NewEngine()
	p := NewPipe[int]("idle", 5)
	cons := &pipeConsumer{p: p}
	ticks := 0
	counting := TickFunc(func(now Cycle) { ticks++ })
	idle := &countingSleeper{}
	e.Register(counting)
	e.Register(idle) // reactive sleeper with no wake sources
	e.Register(cons)
	p.Push(0, 42) // deliverable at cycle 5
	e.Step(100)
	if ticks != 100 {
		t.Fatalf("plain ticker ran %d times, want 100", ticks)
	}
	if idle.n != 1 {
		t.Fatalf("quiescent sleeper ticked %d times, want 1 (the registration probe)", idle.n)
	}
	if len(cons.got) != 1 || cons.got[0] != (delivery{V: 42, At: 5}) {
		t.Fatalf("consumer deliveries = %v", cons.got)
	}
}

type countingSleeper struct{ n int }

func (c *countingSleeper) Tick(now Cycle)           { c.n++ }
func (c *countingSleeper) NextWake(now Cycle) Cycle { return NeverWake }

// TestRunUntilEvaluatesCondOncePerState pins the check-then-step contract:
// cond sees the initial state once and each advanced state once — never
// the same state twice (the old kernel re-evaluated cond after the final
// cycle it had already checked).
func TestRunUntilEvaluatesCondOncePerState(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Register(TickFunc(func(Cycle) { n++ }))
	evals := 0
	ok := e.RunUntil(func() bool { evals++; return false }, 10)
	if ok {
		t.Fatal("cond is never true")
	}
	if n != 10 {
		t.Fatalf("stepped %d cycles, want 10", n)
	}
	if evals != 11 { // initial state + one per advanced cycle
		t.Fatalf("cond evaluated %d times for 10 cycles, want 11", evals)
	}
	// cond true on entry: no stepping at all.
	before := n
	if !e.RunUntil(func() bool { return true }, 10) {
		t.Fatal("cond true on entry must return true")
	}
	if n != before {
		t.Fatal("check-then-step: no cycle may run when cond holds on entry")
	}
}

// TestEngineModeSwitchRebuildsCalendar verifies naive -> scheduled
// mid-run: in-flight pipe work recorded while naive must still be
// delivered after the switch (NextWake accounts for in-flight input).
func TestEngineModeSwitchRebuildsCalendar(t *testing.T) {
	e := NewEngine()
	e.SetScheduled(false)
	p := NewPipe[int]("switch", 40)
	cons := &pipeConsumer{p: p}
	e.Register(cons)
	p.Push(0, 7) // deliverable at 40
	e.Step(10)   // naive prefix
	e.SetScheduled(true)
	e.Step(100)
	want := []delivery{{V: 7, At: 40}}
	if !reflect.DeepEqual(cons.got, want) {
		t.Fatalf("deliveries after mode switch = %v, want %v", cons.got, want)
	}
}

// TestPipeCompaction exercises the head-index reclamation paths.
func TestPipeCompaction(t *testing.T) {
	p := NewPipe[int]("compact", 1)
	const n = 10 * compactMin
	for i := 0; i < n; i++ {
		p.Push(Cycle(i), i)
	}
	for i := 0; i < n; i++ {
		v, ok := p.Pop(Cycle(n + 1))
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("leftover %d", p.Len())
	}
	// Interleaved push/pop must never lose order across compactions.
	var q Queue[int]
	in, out := 0, 0
	for round := 0; round < 200; round++ {
		for k := 0; k < 3; k++ {
			q.Push(in)
			in++
		}
		for k := 0; k < 2; k++ {
			v, ok := q.Pop()
			if !ok || v != out {
				t.Fatalf("queue pop = %d,%v want %d", v, ok, out)
			}
			out++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != out {
			t.Fatalf("drain got %d want %d", v, out)
		}
		out++
	}
	if out != in {
		t.Fatalf("popped %d of %d", out, in)
	}
}

// BenchmarkPipePushPop measures the steady-state cost of the head-indexed
// pipe (the satellite micro-benchmark: no regression vs the old
// copy-shift; in fact O(1) pops regardless of depth).
func BenchmarkPipePushPop(b *testing.B) {
	for _, depth := range []int{4, 64} {
		b.Run(map[int]string{4: "depth4", 64: "depth64"}[depth], func(b *testing.B) {
			p := NewPipe[int]("bench", 1)
			now := Cycle(0)
			for i := 0; i < depth; i++ {
				p.Push(now, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				p.Push(now, i)
				p.Pop(now)
			}
		})
	}
}

// BenchmarkQueuePushPop is the Queue equivalent.
func BenchmarkQueuePushPop(b *testing.B) {
	for _, depth := range []int{4, 64} {
		b.Run(map[int]string{4: "depth4", 64: "depth64"}[depth], func(b *testing.B) {
			var q Queue[int]
			for i := 0; i < depth; i++ {
				q.Push(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(i)
				q.Pop()
			}
		})
	}
}
