//go:build !race

package sim

// RaceEnabled reports whether the race detector is compiled in; alloc
// guard tests skip under it (instrumentation allocates).
const RaceEnabled = false
