package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineTickOrderAndClock(t *testing.T) {
	e := NewEngine()
	var order []int
	var seen []Cycle
	e.Register(TickFunc(func(now Cycle) { order = append(order, 1); seen = append(seen, now) }))
	e.Register(TickFunc(func(now Cycle) { order = append(order, 2) }))
	e.Step(3)
	if e.Now() != 3 {
		t.Fatalf("Now() = %d, want 3", e.Now())
	}
	want := []int{1, 2, 1, 2, 1, 2}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	for i, c := range seen {
		if c != Cycle(i+1) {
			t.Fatalf("cycle sequence %v", seen)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Register(TickFunc(func(Cycle) { n++ }))
	if !e.RunUntil(func() bool { return n >= 5 }, 100) {
		t.Fatal("RunUntil should have satisfied the condition")
	}
	if n != 5 {
		t.Fatalf("ticked %d times, want 5", n)
	}
	if e.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil should have timed out")
	}
}

func TestPipeDelay(t *testing.T) {
	p := NewPipe[int]("test", 3)
	p.Push(10, 42)
	for now := Cycle(10); now < 13; now++ {
		if _, ok := p.Pop(now); ok {
			t.Fatalf("value visible at cycle %d before delay elapsed", now)
		}
	}
	v, ok := p.Pop(13)
	if !ok || v != 42 {
		t.Fatalf("Pop(13) = %v,%v want 42,true", v, ok)
	}
	if _, ok := p.Pop(14); ok {
		t.Fatal("pipe should be empty")
	}
}

func TestPipeFIFONoOvertaking(t *testing.T) {
	p := NewPipe[int]("test", 1)
	p.PushAfter(0, 5, 1) // deliverable at 6
	p.PushAfter(1, 0, 2) // nominally deliverable at 2, but must not overtake
	if _, ok := p.Pop(2); ok {
		t.Fatal("second value overtook the first")
	}
	v, _ := p.Pop(6)
	if v != 1 {
		t.Fatalf("got %d want 1", v)
	}
	v, _ = p.Pop(6)
	if v != 2 {
		t.Fatalf("got %d want 2", v)
	}
}

func TestPipePanicsOnZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-delay pipe")
		}
	}()
	NewPipe[int]("bad", 0)
}

func TestPipePeekDoesNotConsume(t *testing.T) {
	p := NewPipe[string]("test", 1)
	p.Push(0, "a")
	if v, ok := p.Peek(1); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if p.Len() != 1 {
		t.Fatal("Peek consumed the value")
	}
	if v, ok := p.Pop(1); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v", v, ok)
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if head, ok := q.Peek(); !ok || head != 0 {
		t.Fatalf("Peek = %d,%v", head, ok)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestRNGDeterminismAndForkIndependence(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	// Forks with different ids differ from each other and from the parent.
	p := NewRNG(7)
	f1, f2 := p.Fork(1), p.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
	// Fork is deterministic.
	p2 := NewRNG(7)
	g1 := p2.Fork(1)
	h1 := NewRNG(7).Fork(1)
	if g1.Uint64() != h1.Uint64() {
		t.Fatal("Fork must be deterministic")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the all-zero fixed point")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(42)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(1)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(3)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 7.0 || mean > 9.0 {
		t.Fatalf("geometric mean = %v, want ~8", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Fatal("Geometric(<1) must return 1")
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}
