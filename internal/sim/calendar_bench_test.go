package sim

import "testing"

// periodicSleeper wakes every stride cycles — the steady-state shape of
// a quiescent router or a memory channel between bursts. Its traffic
// through the wake calendar (one heap pop and one re-arm per wake) must
// not allocate.
type periodicSleeper struct {
	stride Cycle
	ticks  int64
}

func (p *periodicSleeper) Tick(now Cycle)           { p.ticks++ }
func (p *periodicSleeper) NextWake(now Cycle) Cycle { return now + p.stride }

// BenchmarkWakeCalendar measures the scheduled kernel's per-cycle cost
// with 64 sleepers cycling through the wake calendar at co-prime
// strides, so heap order churns constantly. The headline number is
// allocs/op: steady state must be zero.
func BenchmarkWakeCalendar(b *testing.B) {
	e := NewEngine()
	strides := []Cycle{3, 5, 7, 11}
	for i := 0; i < 64; i++ {
		e.Register(&periodicSleeper{stride: strides[i%len(strides)]})
	}
	e.Step(1024) // settle heap and active-set capacities
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(1)
	}
}

// TestWakeCalendarZeroAlloc enforces what the benchmark reports: arming,
// popping, and re-arming sleepers through the calendar allocates nothing
// once capacities are warm.
func TestWakeCalendarZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	e := NewEngine()
	strides := []Cycle{3, 5, 7, 11}
	for i := 0; i < 64; i++ {
		e.Register(&periodicSleeper{stride: strides[i%len(strides)]})
	}
	e.Step(1024)
	if avg := testing.AllocsPerRun(200, func() { e.Step(7) }); avg != 0 {
		t.Fatalf("wake calendar steady state allocates %.1f allocs per 7 cycles, want 0", avg)
	}
}
