package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Each component that needs randomness owns its own stream so
// that adding a component never perturbs another component's draws.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Fork derives an independent stream from this one, keyed by id. Forking is
// deterministic: the same parent seed and id always yield the same child.
func (r *RNG) Fork(id uint64) *RNG {
	// SplitMix64 of (state ^ golden*id) gives well-separated streams.
	z := r.state ^ (0x9E3779B97F4A7C15 * (id + 1))
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(z)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of trials until first success with p = 1/m, clipped
// to at least 1. Used for run lengths (function bodies, bursts).
func (r *RNG) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	n := 1
	for !r.Bool(p) && n < int(64*m) {
		n++
	}
	return n
}
