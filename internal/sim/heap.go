package sim

// Lesser is the ordering constraint for MinHeap: a value that knows how to
// compare itself against another of the same type.
type Lesser[T any] interface {
	Less(T) bool
}

// MinHeap is a binary min-heap shared by the engine's wake calendar and
// any component that schedules its own future work (the Ideal fabric's
// delivery calendar). The zero value is an empty heap.
type MinHeap[T Lesser[T]] struct {
	s []T
}

// Len returns the number of queued values.
func (h *MinHeap[T]) Len() int { return len(h.s) }

// Min returns the smallest value without removing it.
func (h *MinHeap[T]) Min() T { return h.s[0] }

// Clear empties the heap, retaining its storage.
func (h *MinHeap[T]) Clear() { h.s = h.s[:0] }

// Push inserts v.
func (h *MinHeap[T]) Push(v T) {
	s := append(h.s, v)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].Less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	h.s = s
}

// Pop removes and returns the smallest value.
func (h *MinHeap[T]) Pop() T {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release for GC
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].Less(s[m]) {
			m = l
		}
		if r < n && s[r].Less(s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	h.s = s
	return top
}

// Less orders Cycle values for MinHeap[Cycle].
func (c Cycle) Less(o Cycle) bool { return c < o }
