package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the conservative parallel kernel: a chip partitioned
// into domains, each owning a private Engine, stepping concurrently on one
// goroutine per domain.
//
// # The horizon rule
//
// Domains exchange values only through staged Pipes (Pipe.Stage), whose
// delay is at least the plan's lookahead L. Execution proceeds in rounds:
//
//  1. Commit: each domain drains its incoming staged pipes (in a fixed
//     per-domain order) into the consumer-visible queues, arming local
//     consumers.
//  2. Each domain publishes its next armed cycle N_d; a barrier waits for
//     all of them. The last arriver computes minN = min over domains and
//     the window end W = min(target, minN+L-1) (W = target when nothing is
//     armed before it).
//  3. Each domain runs its engine to W independently. Any push a domain
//     performs happens during a tick, and ticks only occur at armed cycles
//     u >= N_d >= minN, so a cross-domain value's delivery cycle is
//     u + delay >= minN + L > W: nothing pushed during the window can be
//     consumable inside it. A second barrier ends the round.
//
// Both barriers transfer no data beyond the published horizons; the window
// W is a pure function of the N_d values, which are themselves pure
// functions of simulation state. Results are therefore bit-identical for
// any goroutine interleaving and — because staged commits replay pushes in
// push order — bit-identical to the single-goroutine scheduled kernel.
//
// Idle-heavy phases get windows as wide as the distance to the next armed
// cycle; saturated phases degrade to lookahead-sized windows, where the
// barrier cost is amortized by the per-cycle simulation work.

// CrossStage is the type-erased handle of a staged cross-domain Pipe; the
// coordinator only ever commits them.
type CrossStage interface {
	CommitStaged()
}

// maxLookahead caps the lookahead so window arithmetic cannot overflow;
// any value this large means "the domains are independent".
const maxLookahead Cycle = 1 << 40

// Sharded steps a set of domain engines under the conservative horizon
// protocol. All engines must start at the same cycle (0 for a freshly
// built chip) and every pipe crossing a domain boundary must be staged and
// listed in the consuming domain's in-edge list.
type Sharded struct {
	doms []*Engine
	in   [][]CrossStage // per consumer domain, fixed commit order
	look Cycle          // min delay over all staged pipes, >= 1
	now  Cycle

	bar       *barrier
	nextA     []Cycle
	windowEnd Cycle
}

// NewSharded returns a coordinator over the domain engines. inEdges[d]
// lists the staged pipes consumed by domain d; lookahead is the minimum
// delay over all staged pipes (clamped to at least 1).
func NewSharded(doms []*Engine, inEdges [][]CrossStage, lookahead Cycle) *Sharded {
	if len(doms) == 0 {
		panic("sim: NewSharded needs at least one domain")
	}
	if len(inEdges) != len(doms) {
		panic("sim: NewSharded in-edge lists must match domains")
	}
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead > maxLookahead {
		lookahead = maxLookahead
	}
	return &Sharded{
		doms:  doms,
		in:    inEdges,
		look:  lookahead,
		bar:   newBarrier(len(doms)),
		nextA: make([]Cycle, len(doms)),
	}
}

// Domains returns the number of domains.
func (s *Sharded) Domains() int { return len(s.doms) }

// Now returns the current cycle; all domains agree on it between Steps.
func (s *Sharded) Now() Cycle { return s.now }

// Lookahead returns the synchronization lookahead in cycles.
func (s *Sharded) Lookahead() Cycle { return s.look }

// Flush brings every domain's lazily-accounted components up to date. It
// must only be called between Steps (no workers are running then).
func (s *Sharded) Flush() {
	for _, e := range s.doms {
		e.Flush()
	}
}

// Step advances every domain by n cycles under the horizon protocol.
// Entries still staged when the target is reached stay staged — their
// delivery cycles are beyond the target — and are committed by the first
// round of the next Step.
func (s *Sharded) Step(n Cycle) {
	target := s.now + n
	if len(s.doms) == 1 {
		// Degenerate single-domain sharding: no barriers, but staged
		// self-edges (if any) still need committing.
		for s.now < target {
			for _, cp := range s.in[0] {
				cp.CommitStaged()
			}
			w := s.window(target, 0)
			s.doms[0].Step(w - s.now)
			s.now = w
		}
		return
	}
	var wg sync.WaitGroup
	for d := range s.doms {
		wg.Add(1)
		go s.runDomain(d, target, &wg)
	}
	wg.Wait()
	s.now = target
}

// window computes the round's window end from the published horizons.
// Called by exactly one goroutine per round (the barrier's last arriver).
func (s *Sharded) window(target Cycle, minN Cycle) Cycle {
	if minN == 0 { // single-domain fast path: read the engine directly
		var ok bool
		if minN, ok = s.doms[0].NextArmed(); !ok {
			minN = NeverWake
		}
	}
	if minN >= target {
		return target
	}
	if w := minN + s.look - 1; w < target {
		return w
	}
	return target
}

// runDomain is one domain's worker loop for a single Step call.
func (s *Sharded) runDomain(d int, target Cycle, wg *sync.WaitGroup) {
	defer wg.Done()
	e := s.doms[d]
	for {
		for _, cp := range s.in[d] {
			cp.CommitStaged()
		}
		na, ok := e.NextArmed()
		if !ok {
			na = NeverWake
		}
		s.nextA[d] = na
		s.bar.await(func() {
			minN := s.nextA[0]
			for _, v := range s.nextA[1:] {
				if v < minN {
					minN = v
				}
			}
			if minN == 0 {
				minN = 1 // never trip window's single-domain path
			}
			s.windowEnd = s.window(target, minN)
		})
		w := s.windowEnd
		e.Step(w - e.Now())
		s.bar.await(nil)
		if w == target {
			return
		}
	}
}

// barrier is a reusable sense-reversing barrier for the domain workers. It
// spins briefly (only when the runtime has more than one scheduling
// processor) before parking on a condition variable, so saturated rounds
// synchronize in nanoseconds while idle machines do not burn a core.
// Publication happens through the atomic generation counter: writes made
// before await are visible to every worker after it.
type barrier struct {
	n       int32
	spins   int
	arrived atomic.Int32
	gen     atomic.Uint32
	mu      sync.Mutex
	cond    *sync.Cond
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	if runtime.GOMAXPROCS(0) > 1 {
		b.spins = 4096
	}
	return b
}

// await blocks until all n workers have arrived. The last arriver runs
// last (when non-nil) before releasing the others; it is the only place a
// round computes shared decisions, so they are made exactly once.
func (b *barrier) await(last func()) {
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		if last != nil {
			last()
		}
		b.arrived.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < b.spins; i++ {
		if b.gen.Load() != gen {
			return
		}
		if i&255 == 255 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
