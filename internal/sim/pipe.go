package sim

// Pipe is a latched delay line carrying values of type T between two
// components. A value pushed at cycle t with delay d becomes visible to Pop
// at cycle t+d (d >= 1 preserves the determinism rules in the package doc).
//
// Pipe has unbounded capacity: back-pressure belongs to the protocol built
// on top (credits), not the wire.
//
// A pipe is a wake source: when its consumer's Waker is attached with
// SetWaker, every push re-arms the consumer for the delivery cycle, so a
// sleeping consumer can never miss a value.
//
// Storage is a head-indexed slice: Pop advances a head cursor in O(1) and
// the buffer compacts (or resets) once the dead prefix dominates, replacing
// the former O(n) copy-shift per Pop.
type Pipe[T any] struct {
	name  string
	delay Cycle
	q     []pipeEntry[T]
	head  int
	waker Waker

	// Cross-domain staging (see Sharded). While staging is on, pushes land
	// in staged — written only by the producer's domain — instead of q, and
	// do not wake the consumer; CommitStaged, called only from the
	// consumer's domain at a synchronization barrier, moves them into q in
	// push order and raises the deferred wakes. The two sides never touch
	// the buffers concurrently: producers push only inside a window,
	// consumers commit only between windows.
	staging bool
	staged  []pipeEntry[T]
}

type pipeEntry[T any] struct {
	at Cycle
	v  T
}

// compactMin is the dead-prefix length below which Pop never compacts;
// beyond it, compaction triggers once the prefix is at least half the
// buffer, keeping amortized cost O(1) per element.
const compactMin = 32

// compactPrefix reclaims the dead prefix [0:head) of a head-indexed FIFO
// buffer: a drained buffer resets in place, a dominating prefix is copied
// down (released slots zeroed for GC), and anything else is left alone.
// It returns the adjusted slice and head.
func compactPrefix[E any](q []E, head int) ([]E, int) {
	if head == len(q) {
		return q[:0], 0
	}
	if head >= compactMin && head*2 >= len(q) {
		var zero E
		n := copy(q, q[head:])
		for i := n; i < len(q); i++ {
			q[i] = zero
		}
		return q[:n], 0
	}
	return q, head
}

// NewPipe returns a pipe with the given fixed delay in cycles. Delay must be
// at least 1; a zero-delay wire would break tick-order independence.
func NewPipe[T any](name string, delay Cycle) *Pipe[T] {
	if delay < 1 {
		panic("sim: pipe delay must be >= 1 cycle: " + name)
	}
	return &Pipe[T]{name: name, delay: delay}
}

// Name returns the debugging name the pipe was created with.
func (p *Pipe[T]) Name() string { return p.name }

// Delay returns the pipe's fixed latency in cycles.
func (p *Pipe[T]) Delay() Cycle { return p.delay }

// SetWaker registers the consumer's wake handle; every subsequent push
// re-arms the consumer for the pushed value's delivery cycle.
func (p *Pipe[T]) SetWaker(w Waker) { p.waker = w }

// Push inserts v at cycle now; it becomes poppable at now+delay.
func (p *Pipe[T]) Push(now Cycle, v T) {
	at := now + p.delay
	if p.staging {
		p.staged = append(p.staged, pipeEntry[T]{at: at, v: v})
		return
	}
	p.q = append(p.q, pipeEntry[T]{at: at, v: v})
	if p.waker != nil {
		p.waker.Wake(at)
	}
}

// PushAfter inserts v with an additional extra cycles of latency on top of
// the pipe's base delay. Useful for modelling pipelines whose depth depends
// on the value (for example distance-proportional links).
func (p *Pipe[T]) PushAfter(now Cycle, extra Cycle, v T) {
	if extra < 0 {
		extra = 0
	}
	at := now + p.delay + extra
	if p.staging {
		p.staged = append(p.staged, pipeEntry[T]{at: at, v: v})
		return
	}
	p.q = append(p.q, pipeEntry[T]{at: at, v: v})
	if p.waker != nil {
		p.waker.Wake(at)
	}
}

// Stage switches the pipe into cross-domain staging mode. Only the Sharded
// coordinator's plan builder calls it, once, before the simulation starts.
func (p *Pipe[T]) Stage() { p.staging = true }

// CommitStaged implements CrossStage: it publishes every staged entry into
// the consumer-visible queue (in push order, so FIFO delivery is exactly
// what the single-domain kernel would produce) and raises the deferred
// consumer wakes. The staged buffer's capacity is retained, so a
// steady-state commit allocates nothing.
func (p *Pipe[T]) CommitStaged() {
	if len(p.staged) == 0 {
		return
	}
	for i := range p.staged {
		e := p.staged[i]
		p.q = append(p.q, e)
		if p.waker != nil {
			p.waker.Wake(e.at)
		}
		p.staged[i] = pipeEntry[T]{} // release the value for GC
	}
	p.staged = p.staged[:0]
}

// Pop removes and returns the oldest value whose delivery time has arrived.
// The second result is false when nothing is deliverable at cycle now.
//
// Values are delivered strictly in push order; a value with a shorter
// per-value extra delay never overtakes an earlier value (this models a
// FIFO wire, and keeps flit order within a packet intact).
func (p *Pipe[T]) Pop(now Cycle) (T, bool) {
	var zero T
	if p.head == len(p.q) || p.q[p.head].at > now {
		return zero, false
	}
	v := p.q[p.head].v
	p.q[p.head] = pipeEntry[T]{} // release the value for GC
	p.head++
	p.q, p.head = compactPrefix(p.q, p.head)
	return v, true
}

// Peek returns the oldest deliverable value without removing it.
func (p *Pipe[T]) Peek(now Cycle) (T, bool) {
	var zero T
	if p.head == len(p.q) || p.q[p.head].at > now {
		return zero, false
	}
	return p.q[p.head].v, true
}

// NextAt returns the delivery cycle of the oldest in-flight value (the
// earliest cycle at which Pop can succeed, since delivery is strictly
// FIFO). ok is false when the pipe is empty. Sleepers use it to account
// for in-flight input in their NextWake report.
func (p *Pipe[T]) NextAt() (Cycle, bool) {
	if p.head == len(p.q) {
		return 0, false
	}
	return p.q[p.head].at, true
}

// Len returns the number of values in flight.
func (p *Pipe[T]) Len() int { return len(p.q) - p.head }

// Queue is an unbounded FIFO with same-cycle visibility. It is safe to use
// between components only when the producer always ticks before the
// consumer, or when the consumer drains it at the start of its Tick and the
// producer pushes during its own Tick (classic mailbox pattern).
//
// Like Pipe, a Queue is a wake source once SetWaker attaches its consumer:
// every push re-arms the consumer as soon as the naive kernel would have
// let it see the value (this cycle if its turn has not passed, else next).
type Queue[T any] struct {
	q     []T
	head  int
	waker Waker
}

// SetWaker registers the consumer's wake handle.
func (q *Queue[T]) SetWaker(w Waker) { q.waker = w }

// Push appends v and re-arms the consumer.
func (q *Queue[T]) Push(v T) {
	q.q = append(q.q, v)
	if q.waker != nil {
		q.waker.Wake(0) // "as soon as consistent": clamped by the engine
	}
}

// Pop removes and returns the head.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.head == len(q.q) {
		return zero, false
	}
	v := q.q[q.head]
	q.q[q.head] = zero
	q.head++
	q.q, q.head = compactPrefix(q.q, q.head)
	return v, true
}

// Peek returns the head without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.head == len(q.q) {
		return zero, false
	}
	return q.q[q.head], true
}

// Len returns the queue depth.
func (q *Queue[T]) Len() int { return len(q.q) - q.head }
