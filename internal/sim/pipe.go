package sim

// Pipe is a latched delay line carrying values of type T between two
// components. A value pushed at cycle t with delay d becomes visible to Pop
// at cycle t+d (d >= 1 preserves the determinism rules in the package doc).
//
// Pipe has unbounded capacity: back-pressure belongs to the protocol built
// on top (credits), not the wire.
type Pipe[T any] struct {
	name  string
	delay Cycle
	q     []pipeEntry[T]
}

type pipeEntry[T any] struct {
	at Cycle
	v  T
}

// NewPipe returns a pipe with the given fixed delay in cycles. Delay must be
// at least 1; a zero-delay wire would break tick-order independence.
func NewPipe[T any](name string, delay Cycle) *Pipe[T] {
	if delay < 1 {
		panic("sim: pipe delay must be >= 1 cycle: " + name)
	}
	return &Pipe[T]{name: name, delay: delay}
}

// Name returns the debugging name the pipe was created with.
func (p *Pipe[T]) Name() string { return p.name }

// Delay returns the pipe's fixed latency in cycles.
func (p *Pipe[T]) Delay() Cycle { return p.delay }

// Push inserts v at cycle now; it becomes poppable at now+delay.
func (p *Pipe[T]) Push(now Cycle, v T) {
	p.q = append(p.q, pipeEntry[T]{at: now + p.delay, v: v})
}

// PushAfter inserts v with an additional extra cycles of latency on top of
// the pipe's base delay. Useful for modelling pipelines whose depth depends
// on the value (for example distance-proportional links).
func (p *Pipe[T]) PushAfter(now Cycle, extra Cycle, v T) {
	if extra < 0 {
		extra = 0
	}
	p.q = append(p.q, pipeEntry[T]{at: now + p.delay + extra, v: v})
}

// Pop removes and returns the oldest value whose delivery time has arrived.
// The second result is false when nothing is deliverable at cycle now.
//
// Values are delivered strictly in push order; a value with a shorter
// per-value extra delay never overtakes an earlier value (this models a
// FIFO wire, and keeps flit order within a packet intact).
func (p *Pipe[T]) Pop(now Cycle) (T, bool) {
	var zero T
	if len(p.q) == 0 || p.q[0].at > now {
		return zero, false
	}
	v := p.q[0].v
	// Shift rather than reslice forever; queues are short in steady state.
	copy(p.q, p.q[1:])
	p.q = p.q[:len(p.q)-1]
	return v, true
}

// Peek returns the oldest deliverable value without removing it.
func (p *Pipe[T]) Peek(now Cycle) (T, bool) {
	var zero T
	if len(p.q) == 0 || p.q[0].at > now {
		return zero, false
	}
	return p.q[0].v, true
}

// Len returns the number of values in flight.
func (p *Pipe[T]) Len() int { return len(p.q) }

// Queue is an unbounded FIFO with same-cycle visibility. It is safe to use
// between components only when the producer always ticks before the
// consumer, or when the consumer drains it at the start of its Tick and the
// producer pushes during its own Tick (classic mailbox pattern).
type Queue[T any] struct {
	q []T
}

// Push appends v.
func (q *Queue[T]) Push(v T) { q.q = append(q.q, v) }

// Pop removes and returns the head.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if len(q.q) == 0 {
		return zero, false
	}
	v := q.q[0]
	copy(q.q, q.q[1:])
	q.q = q.q[:len(q.q)-1]
	return v, true
}

// Peek returns the head without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.q) == 0 {
		return zero, false
	}
	return q.q[0], true
}

// Len returns the queue depth.
func (q *Queue[T]) Len() int { return len(q.q) }
