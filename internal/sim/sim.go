// Package sim provides the deterministic cycle-driven simulation substrate
// used by every timing model in this repository: a clocked engine, latched
// delay pipes for inter-component communication, and a seeded RNG.
//
// Determinism rules:
//   - Components communicate only through Pipe values (or through message
//     queues drained at the start of the receiver's Tick), never by calling
//     into each other mid-cycle.
//   - The Engine ticks components in registration order every cycle; a
//     correct component only consumes values that were pushed on an earlier
//     cycle, so registration order never changes results.
package sim

// Cycle is a simulation timestamp in clock cycles.
type Cycle int64

// Ticker is implemented by every simulated component.
type Ticker interface {
	// Tick advances the component by one cycle. now is the current cycle.
	Tick(now Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// Engine drives a set of Tickers with a shared clock.
type Engine struct {
	now     Cycle
	tickers []Ticker
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register appends components to the tick order.
func (e *Engine) Register(ts ...Ticker) { e.tickers = append(e.tickers, ts...) }

// Now returns the current cycle (the last cycle that was ticked).
func (e *Engine) Now() Cycle { return e.now }

// Step advances the simulation by n cycles.
func (e *Engine) Step(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.now++
		for _, t := range e.tickers {
			t.Tick(e.now)
		}
	}
}

// RunUntil advances the simulation until cond returns true or limit cycles
// have elapsed. It reports whether cond was satisfied.
func (e *Engine) RunUntil(cond func() bool, limit Cycle) bool {
	for i := Cycle(0); i < limit; i++ {
		if cond() {
			return true
		}
		e.Step(1)
	}
	return cond()
}
