// Package sim provides the deterministic simulation substrate used by every
// timing model in this repository: a clocked engine with a quiescence-aware
// event-scheduled kernel, latched delay pipes for inter-component
// communication, and a seeded RNG.
//
// # Determinism rules
//
//   - Components communicate only through Pipe values (or through message
//     queues drained at the start of the receiver's Tick), never by calling
//     into each other mid-cycle.
//   - Within a cycle the Engine ticks components in registration order; a
//     correct component only consumes values that were pushed on an earlier
//     cycle, so registration order never changes results.
//
// # The scheduled kernel
//
// By default the Engine does not tick every component every cycle. Each
// registered component is armed in a wake calendar (a min-heap keyed by
// cycle); Step advances the clock in jumps to the next armed cycle and,
// within a cycle, ticks only the armed components — still in registration
// order. Three contracts make the skipping invisible:
//
//   - A component implementing Sleeper reports, after each Tick, the next
//     cycle at which it can possibly do work. The report must account for
//     everything already in flight on its inputs (Pipe.NextAt, Queue.Len);
//     NeverWake means "purely reactive: my wake sources will re-arm me".
//     Components that do not implement Sleeper are ticked every cycle,
//     which is always safe.
//   - Every input path is a wake source: Pipe.Push, Pipe.PushAfter, and
//     Queue.Push re-arm the registered consumer (SetWaker / the engine's
//     WakeBinder hook), so a sleeping component can never miss input.
//   - A wake for the current cycle honors registration order: it lands this
//     cycle if the consumer's turn has not passed yet, else next cycle —
//     exactly when the naive kernel would have let the consumer see the
//     input.
//
// Under these contracts the scheduled kernel is cycle-for-cycle identical
// to the naive tick-everything kernel (SetScheduled(false)); the
// conformance suite asserts state-hash equality between the two.
package sim

import "math"

// Cycle is a simulation timestamp in clock cycles.
type Cycle int64

// NeverWake is the Sleeper report for "purely reactive": the component has
// no self-scheduled work and relies on its wake sources to re-arm it.
const NeverWake Cycle = math.MaxInt64

// Ticker is implemented by every simulated component.
type Ticker interface {
	// Tick advances the component by one cycle. now is the current cycle.
	Tick(now Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// Sleeper is the quiescence contract. After each Tick the engine asks the
// component for the next cycle at which it can possibly do work:
//
//   - a value <= now means "unknown / always": tick me next cycle (the safe
//     default, equivalent to not implementing Sleeper);
//   - a future cycle sleeps the component until then (or until a wake
//     source re-arms it earlier);
//   - NeverWake sleeps it until a wake source fires.
//
// The report must cover everything already in flight toward the component
// (buffered work, pipe deliveries); wake sources only cover pushes that
// happen after the report.
type Sleeper interface {
	Ticker
	NextWake(now Cycle) Cycle
}

// Waker re-arms one registered component in its engine's wake calendar.
// Wake sources hold the Waker of their consumer; sim.Pipe and sim.Queue
// call it on every push.
type Waker interface {
	// Wake arms the component to tick at cycle at. A value of at that is
	// not in the strict future means "as soon as consistent with the naive
	// kernel": the current cycle if the component's turn in registration
	// order has not passed yet, else the next cycle.
	Wake(at Cycle)
}

// WakeBinder is implemented by components that own wake sources (inbox
// queues, input pipes). The engine calls BindWaker once at registration so
// the component can attach its Waker to them; wiring must therefore be
// complete before the component is registered.
type WakeBinder interface {
	BindWaker(w Waker)
}

// Registrar is implemented by composite components (a router network) that
// prefer to register their internals individually so each can sleep on its
// own. Engine.Register delegates to RegisterInto instead of registering the
// composite as a single ticker.
type Registrar interface {
	RegisterInto(e *Engine)
}

// Flusher is implemented by components that defer per-cycle accounting
// (statistics sampling, stall attribution) while asleep. Flush brings the
// counters up to date at cycle now; Engine.Flush calls it on every
// registered component at measurement boundaries.
type Flusher interface {
	Flush(now Cycle)
}

// wakeEntry is one armed (cycle, component) pair in the calendar.
type wakeEntry struct {
	at  Cycle
	idx int
}

// activeMark is the wakeAt sentinel for components in the active set: they
// tick every cycle without touching the calendar heap, so the heap only
// pays for genuine sleep/wake transitions. Real arms are always >= 1, so
// the sentinel also invalidates any stale heap entries left from before
// the component went active.
const activeMark Cycle = 0

// Engine drives a set of Tickers with a shared clock.
type Engine struct {
	now     Cycle
	tickers []Ticker
	sleeper []Sleeper // parallel to tickers; nil for plain tickers

	naive  bool               // tick everything every cycle (conformance mode)
	wakeAt []Cycle            // earliest armed cycle per component (NeverWake = none)
	heap   MinHeap[wakeEntry] // calendar on (at, idx); may hold stale entries

	// The active set: components currently ticking every cycle, sorted by
	// registration index. Membership is wakeAt[idx] == activeMark (which
	// also serves as the live filter for lazy removal); nActive counts
	// live members.
	active  []int
	joins   []int // components that went active this cycle (ascending)
	scratch []int // double buffer for compacting active
	nActive int

	inCycle bool // a cycle is being processed
	cursor  int  // index currently being ticked within the cycle
}

// NewEngine returns an engine with the clock at cycle 0, running the
// scheduled kernel. SetScheduled(false) selects the naive kernel.
func NewEngine() *Engine { return &Engine{} }

// Register appends components to the tick order. A Registrar is expanded
// via RegisterInto; a WakeBinder receives its Waker here, so components
// must be fully wired before registration.
func (e *Engine) Register(ts ...Ticker) {
	for _, t := range ts {
		if r, ok := t.(Registrar); ok {
			r.RegisterInto(e)
			continue
		}
		e.add(t)
	}
}

func (e *Engine) add(t Ticker) {
	idx := len(e.tickers)
	e.tickers = append(e.tickers, t)
	s, _ := t.(Sleeper)
	e.sleeper = append(e.sleeper, s)
	e.wakeAt = append(e.wakeAt, NeverWake)
	if b, ok := t.(WakeBinder); ok {
		b.BindWaker(&engineWaker{e: e, idx: idx})
	}
	e.arm(idx, e.now+1)
}

// SetScheduled selects between the scheduled kernel (the default) and the
// naive tick-everything kernel. Switching back to scheduled re-arms every
// component for the next cycle, from which each Sleeper's report (which
// must cover all in-flight input) rebuilds the calendar.
func (e *Engine) SetScheduled(on bool) {
	if e.naive != on {
		return // already in the requested mode
	}
	e.naive = !on
	if on {
		e.heap.Clear()
		e.active = e.active[:0]
		e.joins = e.joins[:0]
		e.nActive = 0
		for i := range e.wakeAt {
			e.wakeAt[i] = NeverWake
		}
		for i := range e.tickers {
			e.arm(i, e.now+1)
		}
	}
}

// Scheduled reports whether the event-scheduled kernel is active.
func (e *Engine) Scheduled() bool { return !e.naive }

// Now returns the current cycle (the last cycle that was ticked).
func (e *Engine) Now() Cycle { return e.now }

// NextArmed returns the earliest cycle at which any component of this
// engine is armed to do work, and false when the calendar is empty (every
// component sleeps until an external wake). The Sharded coordinator uses
// it as the domain's published horizon: the domain provably performs no
// pushes before this cycle.
func (e *Engine) NextArmed() (Cycle, bool) { return e.nextArmed() }

// Flush brings every lazily-accounted component (sim.Flusher) up to date at
// the current cycle. Call it before reading statistics that are sampled per
// cycle (measurement boundaries, state hashes).
func (e *Engine) Flush() {
	for _, t := range e.tickers {
		if f, ok := t.(Flusher); ok {
			f.Flush(e.now)
		}
	}
}

// Step advances the simulation by n cycles. The scheduled kernel jumps the
// clock between armed cycles; cycles on which every component sleeps are
// skipped entirely (they are provably side-effect free).
func (e *Engine) Step(n Cycle) {
	target := e.now + n
	if e.naive {
		for e.now < target {
			e.now++
			e.tickAll()
		}
		return
	}
	for {
		at, ok := e.nextArmed()
		if !ok || at > target {
			e.now = target
			return
		}
		e.now = at
		e.runCycle()
	}
}

// RunUntil advances the simulation until cond returns true or limit cycles
// have elapsed, and reports whether cond was satisfied.
//
// Semantics are check-then-step: cond is evaluated once against the current
// state before any stepping, then exactly once after each subsequent cycle
// in which work ran — never twice against the same state. Under the
// scheduled kernel, cycles on which every component sleeps are skipped
// (component state cannot change on them) and cond is evaluated once more
// after any final idle jump to the limit; cond should therefore depend on
// simulation state, not on intermediate values of Now(), to behave
// identically on both kernels.
func (e *Engine) RunUntil(cond func() bool, limit Cycle) bool {
	if cond() {
		return true
	}
	target := e.now + limit
	for e.now < target {
		if e.naive {
			e.now++
			e.tickAll()
		} else {
			at, ok := e.nextArmed()
			if !ok || at > target {
				e.now = target
				return cond() // the clock moved; cond may read it
			}
			e.now = at
			e.runCycle()
		}
		if cond() {
			return true
		}
	}
	return false
}

// tickAll runs one naive cycle.
func (e *Engine) tickAll() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// nextArmed returns the earliest armed cycle, discarding stale heap
// entries. A non-empty active set always means work next cycle.
func (e *Engine) nextArmed() (Cycle, bool) {
	if e.nActive > 0 {
		return e.now + 1, true
	}
	for e.heap.Len() > 0 {
		top := e.heap.Min()
		if e.wakeAt[top.idx] != top.at {
			e.heap.Pop() // superseded by an earlier arm or already ticked
			continue
		}
		return top.at, true
	}
	return 0, false
}

// runCycle ticks every component due at e.now in registration order,
// merging the sorted active set with the calendar's due entries. Wakes
// raised during the cycle for components whose turn has not passed yet
// join the same cycle; all others land on a later cycle.
func (e *Engine) runCycle() {
	e.inCycle = true
	ai := 0
	for {
		// Next live heap candidate due this cycle.
		hIdx := -1
		for e.heap.Len() > 0 && e.heap.Min().at == e.now {
			if e.wakeAt[e.heap.Min().idx] != e.now {
				e.heap.Pop()
				continue
			}
			hIdx = e.heap.Min().idx
			break
		}
		// Next live active candidate.
		aIdx := -1
		for ai < len(e.active) {
			if e.wakeAt[e.active[ai]] != activeMark {
				ai++ // deactivated on an earlier cycle; lazily dropped
				continue
			}
			aIdx = e.active[ai]
			break
		}
		var idx int
		switch {
		case aIdx < 0 && hIdx < 0:
			e.compactActive()
			e.inCycle = false
			e.cursor = -1
			return
		case aIdx >= 0 && (hIdx < 0 || aIdx < hIdx):
			idx = aIdx
			ai++
		default:
			idx = hIdx
			e.heap.Pop()
			e.wakeAt[idx] = NeverWake // arms during the tick register
		}
		e.cursor = idx
		e.tickers[idx].Tick(e.now)
		rep := e.now + 1
		if s := e.sleeper[idx]; s != nil {
			rep = s.NextWake(e.now)
		}
		if rep <= e.now+1 {
			// Ticking every cycle: keep (or put) it in the active set.
			if e.wakeAt[idx] != activeMark {
				e.wakeAt[idx] = activeMark
				e.nActive++
				e.joins = append(e.joins, idx)
			}
		} else {
			if e.wakeAt[idx] == activeMark {
				e.nActive--
			}
			e.wakeAt[idx] = NeverWake
			e.arm(idx, rep)
		}
	}
}

// compactActive folds this cycle's joins into the active list and drops
// deactivated members, keeping it sorted by registration index. joins is
// already ascending because ticks run in index order.
func (e *Engine) compactActive() {
	if len(e.joins) == 0 {
		// Cheap path: drop stale members in place only if any exist.
		if e.nActive == len(e.active) {
			return
		}
		live := e.active[:0]
		for _, idx := range e.active {
			if e.wakeAt[idx] == activeMark {
				live = append(live, idx)
			}
		}
		e.active = live
		return
	}
	out := e.scratch[:0]
	ji := 0
	for _, idx := range e.active {
		if e.wakeAt[idx] != activeMark {
			continue
		}
		for ji < len(e.joins) && e.joins[ji] < idx {
			out = append(out, e.joins[ji])
			ji++
		}
		out = append(out, idx)
	}
	out = append(out, e.joins[ji:]...)
	e.scratch = e.active[:0]
	e.active = out
	e.joins = e.joins[:0]
}

// arm schedules component idx to tick at cycle at. Values not in the strict
// future are clamped to the earliest cycle consistent with the naive
// kernel's registration-order semantics (see Waker). Arms for active-set
// members are redundant (they tick every cycle) and ignored.
func (e *Engine) arm(idx int, at Cycle) {
	if e.naive || at == NeverWake || e.wakeAt[idx] == activeMark {
		return
	}
	if at <= e.now {
		if e.inCycle && idx > e.cursor {
			at = e.now
		} else {
			at = e.now + 1
		}
	}
	if at < e.wakeAt[idx] {
		e.wakeAt[idx] = at
		e.heap.Push(wakeEntry{at: at, idx: idx})
	}
}

// engineWaker is the Waker handed to a component's wake sources.
type engineWaker struct {
	e   *Engine
	idx int
}

// Wake implements Waker.
func (w *engineWaker) Wake(at Cycle) { w.e.arm(w.idx, at) }

// Less orders entries by (cycle, registration index) so same-cycle pops
// come out in deterministic registration order.
func (a wakeEntry) Less(b wakeEntry) bool {
	return a.at < b.at || (a.at == b.at && a.idx < b.idx)
}
