package sim

import "nocout/internal/ckpt"

// This file is the kernel's side of the warm-state checkpoint subsystem:
// pipes, queues, RNGs, and the engines themselves capture and restore
// their private state. Two properties make restore exact:
//
//   - Pipe/Queue state is serialized as the consumer-visible sequence
//     (live entries in delivery order, then any cross-domain staged
//     entries in push order — exactly what the next CommitStaged would
//     publish), so a restored chip may run under any domain count.
//   - RestoreAt re-arms every registered component for the cycle after
//     the snapshot instead of trying to reconstruct the wake calendar.
//     A spurious tick is identity-preserving by the naive-kernel
//     conformance contract ("ticking every cycle is always safe"), and
//     each component's first NextWake report rebuilds the calendar from
//     its restored inputs.

// Each calls fn for every in-flight entry in consumer-visible order:
// the live queue in delivery order, then staged entries in push order.
// The pipe is not disturbed.
func (p *Pipe[T]) Each(fn func(at Cycle, v T)) {
	for i := p.head; i < len(p.q); i++ {
		fn(p.q[i].at, p.q[i].v)
	}
	for i := range p.staged {
		fn(p.staged[i].at, p.staged[i].v)
	}
}

// InFlight returns the total entry count Each will visit.
func (p *Pipe[T]) InFlight() int { return p.Len() + len(p.staged) }

// SaveState serializes the pipe's in-flight entries; put encodes one
// value. Delivery cycles are delta-encoded from the predecessor (FIFO
// pipes deliver in near-sorted cycle order).
func (p *Pipe[T]) SaveState(e *ckpt.Enc, put func(e *ckpt.Enc, v T)) {
	e.U64(uint64(p.InFlight()))
	prev := Cycle(0)
	p.Each(func(at Cycle, v T) {
		e.I64(int64(at - prev))
		prev = at
		put(e, v)
	})
}

// LoadState replaces the pipe's contents with the serialized entries.
// No wakes are raised — Engine.RestoreAt re-arms consumers wholesale.
// The pipe's wiring (name, delay, waker, staging mode) is untouched.
func (p *Pipe[T]) LoadState(d *ckpt.Dec, get func(d *ckpt.Dec) T) {
	n := d.Count()
	p.q = p.q[:0]
	p.head = 0
	p.staged = p.staged[:0]
	prev := Cycle(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += Cycle(d.I64())
		p.q = append(p.q, pipeEntry[T]{at: prev, v: get(d)})
	}
}

// Each calls fn for every queued value in FIFO order without disturbing
// the queue.
func (q *Queue[T]) Each(fn func(v T)) {
	for i := q.head; i < len(q.q); i++ {
		fn(q.q[i])
	}
}

// SaveState serializes the queue's contents; put encodes one value.
func (q *Queue[T]) SaveState(e *ckpt.Enc, put func(e *ckpt.Enc, v T)) {
	e.U64(uint64(q.Len()))
	q.Each(func(v T) { put(e, v) })
}

// LoadState replaces the queue's contents with the serialized values.
func (q *Queue[T]) LoadState(d *ckpt.Dec, get func(d *ckpt.Dec) T) {
	n := d.Count()
	q.q = q.q[:0]
	q.head = 0
	for i := 0; i < n && d.Err() == nil; i++ {
		q.q = append(q.q, get(d))
	}
}

// State returns the RNG's position in its sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the generator. The zero guard mirrors NewRNG
// (xorshift's all-zero fixed point), though a live generator can never
// reach state zero.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// RestoreAt moves the engine's clock to the snapshot cycle and re-arms
// every registered component for the following cycle, mirroring the
// SetScheduled re-arm: each component's own NextWake report after its
// first (possibly spurious, always identity-preserving) tick rebuilds
// the wake calendar from its restored inputs. Components must be fully
// loaded before the call only in the sense that subsequent Steps see
// their restored state; the arming itself reads nothing from them.
func (e *Engine) RestoreAt(at Cycle) {
	e.now = at
	e.heap.Clear()
	e.active = e.active[:0]
	e.joins = e.joins[:0]
	e.nActive = 0
	e.inCycle = false
	e.cursor = 0
	for i := range e.wakeAt {
		e.wakeAt[i] = NeverWake
	}
	for i := range e.tickers {
		e.arm(i, at+1)
	}
}

// RestoreAt moves the coordinator and every domain engine to the
// snapshot cycle. Must only be called between Steps.
func (s *Sharded) RestoreAt(at Cycle) {
	s.now = at
	for _, e := range s.doms {
		e.RestoreAt(at)
	}
}
