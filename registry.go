package nocout

import (
	"fmt"
	"strings"

	"nocout/internal/chip"
	"nocout/internal/coherence"
	"nocout/internal/mem"
	"nocout/internal/physic"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// This file is the engine's name registry: every string a CLI flag or
// config file can carry (designs, quality levels, workloads, memory
// hierarchies) resolves here, so commands and examples never switch-case
// names themselves.

// Organization is a self-describing interconnect organization: its figure
// name and CLI aliases, Table 1-style default tuning, network construction
// (topology + floorplan + memory-channel endpoints), and area/power model.
// Implement it and RegisterDesign it to add a fabric to the design space;
// the Torus, CMesh, and Crossbar organizations in designs.go are worked
// examples registered through this exact path.
type Organization = chip.Organization

// Fabric is the built interconnect plus the endpoint layout an
// Organization's Build returns; chip.TiledFabric lays one out for
// conventional one-core-per-tile designs.
type Fabric = chip.Fabric

// BufferKind selects the buffer circuit an organization's AreaModel
// reports for the energy model.
type BufferKind = physic.BufferKind

// Buffer circuit kinds: flip-flops for shallow queues, SRAM for deep ones.
const (
	FlipFlop = physic.FlipFlop
	SRAM     = physic.SRAM
)

// RegisterDesign adds an organization to the design registry and returns
// its Design handle, after which the design works everywhere a builtin
// does: DefaultConfig, Run, WithDesigns sweeps, ParseDesign (CLI flags),
// Area/AreaModel, and JSON report round-trips. Names and aliases must be
// unique; safe for concurrent use.
func RegisterDesign(o Organization) (Design, error) { return chip.RegisterOrganization(o) }

// Designs returns every registered design in registration order: the
// paper's four first, then Torus, CMesh, Crossbar, then user registrations.
func Designs() []Design {
	n := len(chip.Organizations())
	out := make([]Design, n)
	for i := range out {
		out[i] = Design(i)
	}
	return out
}

// OrganizationOf resolves a design handle to its registered organization;
// unknown designs are a hard error.
func OrganizationOf(d Design) (Organization, error) { return chip.OrganizationOf(d) }

// ParseDesign resolves a design from its figure name or any registered CLI
// shorthand: mesh | fbfly | flattened-butterfly | nocout | noc-out | ideal
// | torus | cmesh | crossbar | xbar | ...
func ParseDesign(s string) (Design, error) { return chip.ParseDesign(s) }

// Hierarchy is a self-describing memory hierarchy: its display name and
// CLI aliases, preferred chip tuning, memory-system construction (bank
// count and placement, home and channel mappings, bank/L1/memory
// configs), and physical contribution. Implement it and RegisterHierarchy
// it to add a memory system to the design space; the XOR-placement,
// region-affine, PrivateLLC, and Clustered hierarchies in hierarchies.go
// are worked examples registered through this exact path.
type Hierarchy = chip.Hierarchy

// HierarchyID selects the memory hierarchy: a registry handle resolvable
// with ParseHierarchy and extensible with RegisterHierarchy. The zero
// value is the paper's SharedNUCA baseline.
type HierarchyID = chip.HierarchyID

// SharedNUCA is the paper's baseline hierarchy: a shared NUCA LLC with
// line-modulo bank striping and hash-interleaved memory channels.
const SharedNUCA = chip.SharedNUCA

// MemoryLayout is the built memory system a Hierarchy's Build returns:
// bank count and placement, per-agent configurations, and the home and
// channel mapping functions the chip wires the protocol agents with.
type MemoryLayout = chip.MemoryLayout

// HierPhysical is a hierarchy's silicon contribution: LLC storage and
// directory area plus standby leakage.
type HierPhysical = chip.HierPhysical

// BankConfig sizes one LLC bank (capacity, associativity, access
// pipeline, line compaction); MemoryLayout.BankConf returns one per bank.
type BankConfig = coherence.BankConfig

// L1Config sizes the per-core L1 controllers.
type L1Config = coherence.L1Config

// DefaultL1Config returns the Table 1 core cache configuration.
func DefaultL1Config() L1Config { return coherence.DefaultL1Config() }

// MemConfig is one memory channel's timing (AccessLat, LinePeriod,
// LinkBits); zero fields take DDR3-1667 defaults. It is chip.Config's
// Mem field and the target of the -mem-lat/-mem-bw CLI flags.
type MemConfig = mem.Config

// Cycle is the simulation time unit (Quality windows, cache and memory
// latencies are measured in it).
type Cycle = sim.Cycle

// DefaultMemConfig returns DDR3-1667 timing at the 2 GHz core clock.
func DefaultMemConfig() MemConfig { return mem.DefaultConfig() }

// RegisterHierarchy adds a memory hierarchy to the registry and returns
// its HierarchyID handle, after which the hierarchy works everywhere a
// builtin does: Run, WithHierarchies sweeps, ParseHierarchy (CLI flags),
// HierarchyPhysical, and JSON report round-trips. Names and aliases must
// be unique; safe for concurrent use.
func RegisterHierarchy(h Hierarchy) (HierarchyID, error) { return chip.RegisterHierarchy(h) }

// Hierarchies returns every registered hierarchy handle in registration
// order: SharedNUCA first, then XOR-placement, region-affine, PrivateLLC,
// Clustered, then user registrations.
func Hierarchies() []HierarchyID {
	n := len(chip.Hierarchies())
	out := make([]HierarchyID, n)
	for i := range out {
		out[i] = HierarchyID(i)
	}
	return out
}

// HierarchyOf resolves a hierarchy handle to its registered hierarchy;
// unknown hierarchies are a hard error.
func HierarchyOf(id HierarchyID) (Hierarchy, error) { return chip.HierarchyOf(id) }

// ParseHierarchy resolves a hierarchy from its display name or any
// registered CLI shorthand, case-insensitively: shared-nuca | xor |
// affine | private | clustered | ...
func ParseHierarchy(s string) (HierarchyID, error) { return chip.ParseHierarchy(s) }

// RegionOwner derives a line→owning-core classifier from a workload's
// address layout, the building block of region-affine hierarchies; see
// the affine and clustered hierarchies for worked uses.
func RegionOwner(cores int, lay WorkloadLayout) func(line uint64) (owner int, ok bool) {
	return chip.RegionOwner(cores, lay)
}

// ChannelHash is the builtin hierarchies' memory-channel interleave: a
// folded hash so no address region aliases onto a single channel.
func ChannelHash(line uint64, channels int) int { return chip.ChannelHash(line, channels) }

// FitWays shrinks a requested associativity until capacityBytes yields a
// power-of-two set count — the sizing rule every hierarchy applies to its
// LLC slices.
func FitWays(capacityBytes, ways int) (int, error) { return chip.FitWays(capacityBytes, ways) }

// WorkloadLayout describes a workload's address space (shared instruction
// and hot regions, per-core local regions); hierarchies receive one in
// Build for region-affine placement.
type WorkloadLayout = workload.Layout

// ParseQuality resolves a simulation effort level by name:
// quick | full.
func ParseQuality(s string) (Quality, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quality{}, fmt.Errorf("nocout: unknown quality %q (want quick | full)", s)
}

// Workload is the behavioral workload-source interface, mirroring
// Organization for the scenario space: a self-describing value that
// names itself (with CLI aliases), bounds its software scalability,
// derives each core's pipeline parameters, produces each core's
// instruction stream, and describes its prewarm address layout.
// Implement it (or build one with SynthWorkload/NewMix/NewPhased/
// RecordWorkload) and RegisterWorkload it; registered workloads work
// everywhere a builtin does — Run, WithWorkloads sweeps, CLI flags, and
// JSON reports.
type Workload = workload.Workload

// WorkloadParams is the synthetic calibration block behind the paper's
// six workloads (see internal/workload.Params for the knobs); wrap one
// with SynthWorkload to obtain a Workload.
type WorkloadParams = workload.Params

// Mix is a multiprogrammed workload: each core runs one member, and
// results carry a per-member IPC breakdown.
type Mix = workload.Mix

// Phased is a deterministic time-varying workload cycling through a
// schedule of Phase stages.
type Phased = workload.Phased

// Phase is one stage of a Phased schedule: a calibration run for a set
// number of dynamic instructions per core.
type Phase = workload.Phase

// Capture is a whole-chip workload recording; it replays as a Workload
// and loads through the "trace:<path>" name scheme.
type Capture = workload.Capture

// RegisterWorkload adds a workload to the registry, after which every
// name-based entry point (ParseWorkload, sweeps, CLI flags) resolves it.
// Names and aliases must be unique case-insensitively.
func RegisterWorkload(w Workload) error { return workload.Register(w) }

// RegisteredWorkloads returns every registered workload in registration
// order: the paper's six, the builtin Mix/Phased examples, then user
// registrations.
func RegisteredWorkloads() []Workload { return workload.All() }

// ParseWorkload resolves a workload from any registered spelling —
// names and aliases, case-insensitively (data-serving | websearch |
// mix | phased | ...) — or loads a recorded capture via "trace:<path>".
func ParseWorkload(s string) (Workload, error) { return workload.Parse(s) }

// SynthWorkload wraps a synthetic calibration as a Workload with
// optional extra CLI aliases.
func SynthWorkload(p WorkloadParams, aliases ...string) Workload {
	return workload.Synth(p, aliases...)
}

// BuiltinWorkloads returns the paper's six synthetic calibrations in
// figure order — the raw material for composing mixes and phased
// schedules.
func BuiltinWorkloads() []WorkloadParams { return workload.Builtin() }

// WorkloadParamsOf returns the synthetic calibration behind a
// registered workload name or alias, for composing mixes and phased
// schedules; non-synthetic workloads (mixes, captures) are an error.
func WorkloadParamsOf(name string) (WorkloadParams, error) {
	w, err := workload.Parse(name)
	if err != nil {
		return WorkloadParams{}, err
	}
	s, ok := w.(workload.Synthetic)
	if !ok {
		return WorkloadParams{}, fmt.Errorf("nocout: workload %q is not a synthetic calibration", name)
	}
	return s.P, nil
}

// NewMix builds a multiprogrammed workload with round-robin core
// assignment over the members; see Mix.WithAssignment for explicit maps.
func NewMix(name string, members ...WorkloadParams) *Mix { return workload.NewMix(name, members...) }

// NewPhased builds a deterministic time-varying workload cycling
// through the schedule.
func NewPhased(name string, phases ...Phase) *Phased { return workload.NewPhased(name, phases...) }

// UnlimitedWorkload lifts w's software scalability cap so a chip
// enables every core (§7.1's assumption); everything else delegates.
func UnlimitedWorkload(w Workload) Workload { return workload.Unlimited(w) }

// WorkloadFingerprinter is the optional interface a user Workload
// implements to make itself cacheable: the returned bytes are folded
// into Point.Key and must change whenever the workload's observable
// behaviour (streams, core parameters, layout, scalability) changes.
// The builtin families — synthetics, mixes, phased schedules, captures —
// fingerprint structurally without it.
type WorkloadFingerprinter = workload.Fingerprinter

// FingerprintWorkload returns w's behavioral fingerprint — the workload
// component of Point.Key, the canonical content hash the campaign result
// cache is addressed by. Unknown implementations without
// WorkloadFingerprinter are an error, not a silent name-only alias.
func FingerprintWorkload(w Workload) ([]byte, error) { return workload.Fingerprint(w) }

// RecordWorkload captures cores×perCore instructions from w at the
// given seed; save the Capture and replay it anywhere a workload name
// is accepted via "trace:<path>". For an exact reproduction of a run,
// record at least (warmup+window)×3 instructions per core (the fetch
// width bounds per-cycle consumption) at the run's seed.
func RecordWorkload(w Workload, cores, perCore int, seed uint64) (*Capture, error) {
	return workload.Record(w, cores, perCore, seed)
}

// LoadCapture reads a recorded workload capture from a NOC2 file; the
// whole recording is materialized in memory. Prefer LoadTrace, which
// also opens NOC3 containers with O(block) replay memory.
func LoadCapture(path string) (*Capture, error) { return workload.LoadCapture(path) }

// TraceFile is an opened NOC3 streaming trace container: a Workload
// whose replay decodes fixed-count blocks on demand, so memory stays
// O(cores × block) however long the recording is. Obtain one with
// LoadTrace (or the "trace:<path>" scheme) and Close it when done.
type TraceFile = workload.TraceFile

// TraceInfo summarizes a trace file on disk in either container format —
// header metadata, per-section byte accounting, block/predictor counts —
// as the `nocout -trace-info` subcommand reports.
type TraceInfo = workload.TraceInfo

// LoadTrace opens a trace file in either container format, as the
// "trace:<path>" scheme does: NOC3 files stream blocks lazily, NOC2
// files load whole through the compatibility reader.
func LoadTrace(path string) (Workload, error) { return workload.LoadTrace(path) }

// RecordTraceFile records cores×perCore instructions from w at the given
// seed straight into a NOC3 container at path — bounded-memory end to
// end: blocks are encoded and flushed as the streams produce them, never
// the whole capture at once.
func RecordTraceFile(path string, w Workload, cores, perCore int, seed uint64) error {
	return workload.RecordFile(path, w, cores, perCore, seed)
}

// ConvertTrace upgrades a NOC2 capture file to a NOC3 container offline:
// the converted trace replays bit-identically and keeps the recording's
// fingerprint, so content-addressed caches keyed on the old file remain
// valid for the new one.
func ConvertTrace(in, out string) error { return workload.ConvertFile(in, out) }

// InspectTrace reads a trace file's metadata in either format without
// replaying it.
func InspectTrace(path string) (*TraceInfo, error) { return workload.InspectTrace(path) }
