package nocout

import (
	"fmt"
	"strings"

	"nocout/internal/chip"
	"nocout/internal/workload"
)

// This file is the engine's name registry: every string a CLI flag or
// config file can carry (designs, quality levels, workloads) resolves
// here, so commands and examples never switch-case names themselves.

// ParseDesign resolves a design from its figure name or CLI shorthand:
// mesh | fbfly | flattened-butterfly | nocout | noc-out | ideal.
func ParseDesign(s string) (Design, error) { return chip.ParseDesign(s) }

// ParseQuality resolves a simulation effort level by name:
// quick | full.
func ParseQuality(s string) (Quality, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quality{}, fmt.Errorf("nocout: unknown quality %q (want quick | full)", s)
}

// Workload characterizes one scale-out workload; see the fields of
// internal/workload.Params. Custom workloads are added with
// RegisterWorkload and then usable anywhere a workload name is: Run,
// WithWorkloads, and the commands' -workload flags.
type Workload = workload.Params

// WorkloadByName resolves a workload, built-in or registered.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// RegisterWorkload adds a custom workload to the suite. The name must be
// non-empty and unique; MaxCores defaults to 64 when unset.
func RegisterWorkload(w Workload) error { return workload.Register(w) }
