package nocout

import (
	"fmt"
	"strings"

	"nocout/internal/chip"
	"nocout/internal/physic"
	"nocout/internal/workload"
)

// This file is the engine's name registry: every string a CLI flag or
// config file can carry (designs, quality levels, workloads) resolves
// here, so commands and examples never switch-case names themselves.

// Organization is a self-describing interconnect organization: its figure
// name and CLI aliases, Table 1-style default tuning, network construction
// (topology + floorplan + memory-channel endpoints), and area/power model.
// Implement it and RegisterDesign it to add a fabric to the design space;
// the Torus, CMesh, and Crossbar organizations in designs.go are worked
// examples registered through this exact path.
type Organization = chip.Organization

// Fabric is the built interconnect plus the endpoint layout an
// Organization's Build returns; chip.TiledFabric lays one out for
// conventional one-core-per-tile designs.
type Fabric = chip.Fabric

// BufferKind selects the buffer circuit an organization's AreaModel
// reports for the energy model.
type BufferKind = physic.BufferKind

// Buffer circuit kinds: flip-flops for shallow queues, SRAM for deep ones.
const (
	FlipFlop = physic.FlipFlop
	SRAM     = physic.SRAM
)

// RegisterDesign adds an organization to the design registry and returns
// its Design handle, after which the design works everywhere a builtin
// does: DefaultConfig, Run, WithDesigns sweeps, ParseDesign (CLI flags),
// Area/AreaModel, and JSON report round-trips. Names and aliases must be
// unique; safe for concurrent use.
func RegisterDesign(o Organization) (Design, error) { return chip.RegisterOrganization(o) }

// Designs returns every registered design in registration order: the
// paper's four first, then Torus, CMesh, Crossbar, then user registrations.
func Designs() []Design {
	n := len(chip.Organizations())
	out := make([]Design, n)
	for i := range out {
		out[i] = Design(i)
	}
	return out
}

// OrganizationOf resolves a design handle to its registered organization;
// unknown designs are a hard error.
func OrganizationOf(d Design) (Organization, error) { return chip.OrganizationOf(d) }

// ParseDesign resolves a design from its figure name or any registered CLI
// shorthand: mesh | fbfly | flattened-butterfly | nocout | noc-out | ideal
// | torus | cmesh | crossbar | xbar | ...
func ParseDesign(s string) (Design, error) { return chip.ParseDesign(s) }

// ParseQuality resolves a simulation effort level by name:
// quick | full.
func ParseQuality(s string) (Quality, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quality{}, fmt.Errorf("nocout: unknown quality %q (want quick | full)", s)
}

// Workload characterizes one scale-out workload; see the fields of
// internal/workload.Params. Custom workloads are added with
// RegisterWorkload and then usable anywhere a workload name is: Run,
// WithWorkloads, and the commands' -workload flags.
type Workload = workload.Params

// WorkloadByName resolves a workload, built-in or registered.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// RegisterWorkload adds a custom workload to the suite. The name must be
// non-empty and unique; MaxCores defaults to 64 when unset.
func RegisterWorkload(w Workload) error { return workload.Register(w) }
