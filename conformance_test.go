package nocout

import (
	"reflect"
	"testing"

	"nocout/internal/chip"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// confQ is the conformance suite's minimal deterministic measurement.
var confQ = Quality{Warmup: 3000, Window: 5000, Seeds: 1}

// TestDesignRegistryComplete pins the registered design space: the paper's
// four plus the extension organizations, in stable handle order.
func TestDesignRegistryComplete(t *testing.T) {
	ds := Designs()
	if len(ds) < 7 {
		t.Fatalf("registry has %d designs, want >= 7", len(ds))
	}
	want := []Design{Mesh, FBfly, NOCOut, Ideal, Torus, CMesh, Crossbar}
	names := []string{"Mesh", "Flattened Butterfly", "NOC-Out", "Ideal", "Torus", "CMesh", "Crossbar"}
	for i, d := range want {
		if ds[i] != d {
			t.Errorf("Designs()[%d] = %v, want %v", i, ds[i], d)
		}
		if d.String() != names[i] {
			t.Errorf("%v.String() = %q, want %q", d, d.String(), names[i])
		}
	}
}

// TestDesignConformance is the cross-design contract: every registered
// organization round-trips through the name registry, reports a coherent
// area model, builds at 16/32/64 cores, and measures deterministically.
func TestDesignConformance(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			org, err := OrganizationOf(d)
			if err != nil {
				t.Fatal(err)
			}

			// Name round-trips: figure name, aliases, MarshalText.
			if got, err := ParseDesign(d.String()); err != nil || got != d {
				t.Fatalf("ParseDesign(%q) = (%v, %v)", d.String(), got, err)
			}
			for _, a := range org.Aliases() {
				if got, err := ParseDesign(a); err != nil || got != d {
					t.Fatalf("alias %q = (%v, %v), want %v", a, got, err, d)
				}
			}
			txt, err := d.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			var back Design
			if err := back.UnmarshalText(txt); err != nil || back != d {
				t.Fatalf("text round-trip %q = (%v, %v)", txt, back, err)
			}

			// Area model: explicit everywhere, zero only for the wire-only
			// Ideal fabric.
			area, _, err := AreaModel(DefaultConfig(d))
			if err != nil {
				t.Fatal(err)
			}
			if d == Ideal {
				if area.Total() != 0 {
					t.Fatalf("Ideal must model zero NoC area, got %v", area)
				}
			} else if area.Total() <= 0 {
				t.Fatalf("area must be positive, got %v", area)
			}

			for _, n := range []int{16, 32, 64} {
				cfg := DefaultConfig(d)
				cfg.Cores = n

				// The built fabric exposes routers for energy accounting.
				fab := org.Build(cfg)
				if d == Ideal {
					if len(fab.Routers) != 0 {
						t.Fatalf("ideal fabric has %d routers", len(fab.Routers))
					}
				} else if len(fab.Routers) == 0 {
					t.Fatalf("%d-core fabric reports no routers", n)
				}

				res, err := Run(cfg, "MapReduce-C", confQ)
				if err != nil {
					t.Fatal(err)
				}
				if res.ActiveCores != n || res.AggIPC <= 0 || res.PerCoreIPC <= 0 {
					t.Fatalf("%d cores: implausible result %+v", n, res)
				}
				if res.AvgNetLatency <= 0 {
					t.Fatalf("%d cores: no network latency measured", n)
				}
				// Same seed, same Result — bit for bit.
				again, err := Run(cfg, "MapReduce-C", confQ)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("%d cores: nondeterministic:\n%+v\n%+v", n, res, again)
				}
			}
		})
	}
}

// TestKernelConformance is the event-scheduled kernel's contract: for
// every registered design, the scheduled (quiescence-aware) kernel and the
// naive tick-everything kernel produce identical cycle-by-cycle state
// hashes over the conformance suite's measurement, and identical final
// Metrics. Any missed wake, stale arbitration rotation, or lazily
// mis-accounted counter shows up here within a cycle or two.
func TestKernelConformance(t *testing.T) {
	w, err := workload.Parse("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d)
			cfg.Cores = 16

			build := func(scheduled bool) *chip.Chip {
				c := chip.New(cfg, w)
				c.Engine.SetScheduled(scheduled)
				c.PrewarmCaches()
				return c
			}
			sched, naive := build(true), build(false)
			if !sched.Engine.Scheduled() || naive.Engine.Scheduled() {
				t.Fatal("kernel mode not applied")
			}

			total := confQ.Warmup + confQ.Window
			for cy := sim.Cycle(1); cy <= total; cy++ {
				sched.Engine.Step(1)
				naive.Engine.Step(1)
				if hs, hn := sched.StateHash(), naive.StateHash(); hs != hn {
					t.Fatalf("state hash diverged at cycle %d: scheduled %#x naive %#x", cy, hs, hn)
				}
			}
			ms, mn := sched.Metrics(), naive.Metrics()
			if !reflect.DeepEqual(ms, mn) {
				t.Fatalf("final metrics diverged:\nscheduled %+v\nnaive     %+v", ms, mn)
			}
		})
	}
}

// TestKernelConformanceQuick runs one full Quick-quality measurement
// (warm-up reset included, via the Warmup/Run/Metrics path the experiment
// engine uses) on both kernels for the paper's primary organizations,
// comparing the complete Metrics bit-for-bit.
func TestKernelConformanceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level coverage in TestKernelConformance")
	}
	w, err := workload.Parse("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{Mesh, NOCOut} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d)
			measure := func(scheduled bool) chip.Metrics {
				c := chip.New(cfg, w)
				c.Engine.SetScheduled(scheduled)
				c.PrewarmCaches()
				c.Warmup(Quick.Warmup)
				c.Run(Quick.Window)
				return c.Metrics()
			}
			ms, mn := measure(true), measure(false)
			if !reflect.DeepEqual(ms, mn) {
				t.Fatalf("Quick metrics diverged:\nscheduled %+v\nnaive     %+v", ms, mn)
			}
		})
	}
}

// TestSolveWidthForArea pins Figure 9's equal-area solver on its
// registry-backed home: solved widths fit the budget, are maximal, and
// reproduce the paper's headline (fbfly's bandwidth collapses, the mesh's
// shrinks mildly).
func TestSolveWidthForArea(t *testing.T) {
	budget := Area(DefaultConfig(NOCOut)).Total()
	atWidth := func(d Design, w int) float64 {
		cfg := DefaultConfig(d)
		cfg.LinkBits = w
		return Area(cfg).Total()
	}
	for _, d := range []Design{Mesh, FBfly} {
		w, area := SolveWidthForArea(d, budget)
		if area.Total() > budget {
			t.Fatalf("%v: solved area %.2f exceeds budget %.2f", d, area.Total(), budget)
		}
		if over := atWidth(d, w+8); over <= budget {
			t.Fatalf("%v: width %d is not maximal (w+8 still fits)", d, w)
		}
	}
	wm, _ := SolveWidthForArea(Mesh, budget)
	wf, _ := SolveWidthForArea(FBfly, budget)
	if wf >= wm {
		t.Fatalf("fbfly equal-area width (%d) should be far below mesh's (%d)", wf, wm)
	}
	if ratio := 128 / wf; ratio < 4 {
		t.Fatalf("fbfly width shrink = %dx, want >= 4x (paper ~7x)", ratio)
	}
	if wm < 64 {
		t.Fatalf("mesh equal-area width = %d, should remain reasonably wide", wm)
	}
}

// TestUnknownDesignHardErrors pins the satellite fix: no silent zero-area
// fallback and no silently-building unknown design.
func TestUnknownDesignHardErrors(t *testing.T) {
	bad := Config{Design: Design(250), Cores: 16, LLCMB: 8, LLCWays: 16,
		LinkBits: 128, MemChannels: 4, BankLat: 4, Seed: 1}
	if _, _, err := AreaModel(bad); err == nil {
		t.Fatal("AreaModel must reject an unregistered design")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Area must panic on an unregistered design")
			}
		}()
		Area(bad)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("DefaultConfig must panic on an unregistered design")
			}
		}()
		DefaultConfig(Design(250))
	}()
}

// TestNewDesignsSweepThroughEngine drives the extension organizations
// through the same declarative sweep path the Figure* studies use.
func TestNewDesignsSweepThroughEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("covered design-by-design in TestDesignConformance")
	}
	rep, err := NewExperiment(
		WithTitle("extension designs"),
		WithDesigns(Mesh, Torus, CMesh, Crossbar),
		WithWorkloads("SAT Solver"),
		WithCoreCounts(16),
		WithQuality(confQ),
	).Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	mesh := rep.MustGet("Mesh", "SAT Solver", 16)
	for _, d := range []Design{Torus, CMesh, Crossbar} {
		res := rep.MustGet(d.String(), "SAT Solver", 16)
		if res.AggIPC <= 0 {
			t.Fatalf("%v never ran: %+v", d, res)
		}
		// All three are lower-diameter than the mesh at 16 cores; they
		// must not be slower where the paper's background says they win.
		if res.AvgNetLatency >= mesh.AvgNetLatency*1.2 {
			t.Errorf("%v latency %.1f cy should be near or below mesh's %.1f cy",
				d, res.AvgNetLatency, mesh.AvgNetLatency)
		}
	}
}
