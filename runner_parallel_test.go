package nocout

import (
	"context"
	"reflect"
	"testing"
)

// TestEffectiveWorkers pins the Runner's oversubscription arbitration:
// sweep workers × intra-simulation domains is budgeted to the machine
// instead of multiplying into workers × domains goroutines.
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		workers, domains, procs, want int
	}{
		{0, 0, 8, 8},  // defaults: full machine, single-goroutine kernel
		{0, 1, 8, 8},  // explicit single-domain changes nothing
		{3, 1, 8, 3},  // explicit workers honoured
		{0, 4, 8, 2},  // 4-domain sims: pool shrinks to 8/4
		{8, 4, 8, 2},  // explicit request capped by the same budget
		{1, 4, 8, 1},  // a smaller explicit request is honoured
		{0, 16, 8, 1}, // domains wider than the machine: one point at a time
		{0, 4, 1, 1},  // single-CPU host never goes below one worker
		{5, 2, 8, 4},  // budget 8/2 = 4 caps the request of 5
		{3, 2, 8, 3},  // request within budget passes through
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.workers, c.domains, c.procs); got != c.want {
			t.Errorf("effectiveWorkers(%d, %d, %d) = %d, want %d",
				c.workers, c.domains, c.procs, got, c.want)
		}
	}
}

// TestRunnerShardedSweep is the oversubscription regression test: a
// 4-point sweep where every point shards across 4 domains must complete
// (the weighted semaphore grants a sharded run atomically, even on a
// host with fewer CPUs than domains) and reproduce the sequential
// sweep's results bit for bit.
func TestRunnerShardedSweep(t *testing.T) {
	build := func(domains int) Sweep {
		sw, err := NewExperiment(
			WithDesigns(Mesh, FBfly),
			WithWorkloads("MapReduce-C", "Web Search"),
			WithCoreCounts(16),
			WithQuality(confQ),
			WithSimParallelism(domains),
		).Sweep()
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	seq := build(1)
	if seq.Len() != 4 {
		t.Fatalf("sweep has %d points, want 4", seq.Len())
	}
	par := build(4)
	if par.SimDomains != 4 {
		t.Fatalf("SimDomains = %d, want 4", par.SimDomains)
	}

	refRep, err := (&Runner{}).Run(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := (&Runner{}).Run(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refRep.Results {
		if !reflect.DeepEqual(refRep.Results[i].Result, gotRep.Results[i].Result) {
			t.Fatalf("point %d diverged under 4-domain sharding:\nsequential %+v\nsharded    %+v",
				i, refRep.Results[i].Result, gotRep.Results[i].Result)
		}
	}

	// Parallelism is an execution knob, not identity: the content key —
	// what campaign caches address results by — must not see it.
	k1, err := seq.Points[0].Key(seq.Quality)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := par.Points[0].Key(par.Quality)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k4 {
		t.Fatalf("point key depends on SimDomains: %q vs %q", k1, k4)
	}
}
