package nocout

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrefixKeyGolden pins the checkpoint key schema: warm-state caches
// are addressed by these strings, so any change to what PrefixKey covers
// or how it canonicalizes MUST bump CheckpointKeyVersion (stale warm
// state must never alias fresh state) — and then update this golden.
func TestPrefixKeyGolden(t *testing.T) {
	const golden = "ck1-227bc6e1d4ac1652400f5450ed4364369451dd763ae0df5cd57ba89359c0e626"
	key, err := goldenPoint().PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if key != golden {
		t.Fatalf("golden prefix key drifted:\n got  %s\n want %s\nif the key schema changed deliberately, bump CheckpointKeyVersion and update this golden", key, golden)
	}
}

// TestPrefixKeySensitivity checks the key's coverage boundary both ways:
// everything the warmup executes flips the key; pure measurement knobs —
// the window length and the seed count — do not, so points differing
// only there share one warm state. (Sim-parallelism is structurally
// outside the key too: it is a Sweep execution knob, not part of the
// Point or Quality, and checkpoints are domain-count-agnostic.)
func TestPrefixKeySensitivity(t *testing.T) {
	base := goldenPoint()
	baseKey, err := base.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(baseKey, CheckpointKeyVersion+"-") || len(baseKey) != len(CheckpointKeyVersion)+1+64 {
		t.Fatalf("key shape: %q", baseKey)
	}

	mutations := map[string]func(*Point){
		"seed":      func(p *Point) { p.Seed = 2; p.Config.Seed = 2 },
		"cores":     func(p *Point) { p.Config.Cores = 16 },
		"design":    func(p *Point) { p.Config.Design = Torus },
		"linkbits":  func(p *Point) { p.Config.LinkBits *= 2 },
		"hierarchy": func(p *Point) { p.Hierarchy = 1; p.Config.Hierarchy = 1 },
		"workload":  func(p *Point) { p.Workload = "Data Serving" },
		"mem":       func(p *Point) { p.Config.Mem.AccessLat += 30 },
	}
	for name, mutate := range mutations {
		p := base
		mutate(&p)
		key, err := p.PrefixKey(tiny, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the prefix key", name)
		}
	}

	// Warmup length shapes the warm state: it flips the key.
	q := tiny
	q.Warmup *= 2
	if key, err := base.PrefixKey(q, 0); err != nil || key == baseKey {
		t.Errorf("changing warmup did not change the prefix key (err %v)", err)
	}
	// Each derived seed is its own prefix.
	if key, err := base.PrefixKey(tiny, 1); err != nil || key == baseKey {
		t.Errorf("changing seed index did not change the prefix key (err %v)", err)
	}

	// The measurement window and the seed count shape only what happens
	// *after* the boundary: same warm state, same key.
	q = tiny
	q.Window *= 4
	if key, err := base.PrefixKey(q, 0); err != nil || key != baseKey {
		t.Errorf("changing window changed the prefix key (err %v)", err)
	}
	q = tiny
	q.Seeds = 5
	if key, err := base.PrefixKey(q, 0); err != nil || key != baseKey {
		t.Errorf("changing seed count changed the prefix key (err %v)", err)
	}

	// No hidden nondeterminism: identical points key identically.
	again, err := goldenPoint().PrefixKey(tiny, 0)
	if err != nil || again != baseKey {
		t.Fatalf("identical points key differently: %s vs %s (err %v)", again, baseKey, err)
	}
}

// TestPrefixKeyOfferedLoad: an open-system workload's offered load drives
// the cores during warmup, so it is part of the warm state and MUST flip
// the key — two load points restore from different checkpoints, and each
// restore stays bit-identical to its own uninterrupted run.
func TestPrefixKeyOfferedLoad(t *testing.T) {
	p := goldenPoint()
	p.Workload = "opensys:arrival=poisson,base=web-search,rate=2,size=256,queue=64"
	p.WorkloadSpec = p.Workload
	k2, err := p.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.wl = nil
	p.Workload = "opensys:arrival=poisson,base=web-search,rate=8,size=256,queue=64"
	p.WorkloadSpec = p.Workload
	k8, err := p.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k8 {
		t.Fatal("offered load did not change the prefix key: restores would alias across loads")
	}
}

// TestPrefixKeySeedStride pins the seed-index derivation to runSeeds'
// arithmetic: PrefixKey(q, s) must name exactly the warm state seed s's
// measurement starts from.
func TestPrefixKeySeedStride(t *testing.T) {
	base := goldenPoint()
	indexed, err := base.PrefixKey(tiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	shifted := base
	shifted.Config.Seed += 3 * seedStride
	direct, err := shifted.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if indexed != direct {
		t.Fatalf("seed index 3 keys differently from an explicitly shifted seed:\n %s\n %s", indexed, direct)
	}
}

// TestPrefixKeyRoundTrip: a Point decoded from a report or campaign
// manifest must produce the same prefix key as the original — campaign
// workers share the checkpoint cache through exactly that round trip.
func TestPrefixKeyRoundTrip(t *testing.T) {
	p := goldenPoint()
	p.Seed = 1<<63 + 3 // would corrupt through a float64 round trip
	p.Config.Seed = p.Seed
	orig, err := p.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.PrefixKey(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("prefix key not JSON-round-trip stable:\n before %s\n after  %s", orig, got)
	}
}

// TestPrefixKeyErrors: a point whose workload this process cannot resolve
// must refuse to key rather than alias by name alone.
func TestPrefixKeyErrors(t *testing.T) {
	p := goldenPoint()
	p.Workload = "No Such Workload"
	if _, err := p.PrefixKey(tiny, 0); err == nil {
		t.Fatal("unknown workload must not produce a prefix key")
	}
}
