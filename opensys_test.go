package nocout

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// This file is the root-level acceptance suite for the open-system
// subsystem: ReqLatency through Run and the sweep engine, the
// WithOfferedLoads dimension, report encoders growing latency columns
// only for open rows, StudySaturation's knee, and determinism.

// TestOpenRunReqLatency: an open-system Run produces a consistent
// request-latency block; a closed-loop Run stays ReqLatency-free.
func TestOpenRunReqLatency(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	res, err := Run(cfg, "open-poisson", confQ)
	if err != nil {
		t.Fatal(err)
	}
	rl := res.ReqLatency
	if rl == nil {
		t.Fatal("open-system run has no ReqLatency")
	}
	if rl.Arrivals <= 0 || rl.Completed <= 0 {
		t.Fatalf("no request flow: %+v", rl)
	}
	if !(rl.P50 <= rl.P95 && rl.P95 <= rl.P99) {
		t.Fatalf("quantiles out of order: %+v", rl)
	}
	if rl.MeanCy <= 0 || rl.Hist == nil || rl.Hist.Count() != rl.Completed {
		t.Fatalf("histogram inconsistent with counts: %+v", rl)
	}
	if !strings.Contains(res.String(), "req p50/p95/p99") {
		t.Fatalf("String() must surface tail latency: %s", res)
	}

	closed, err := Run(cfg, "Web Search", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if closed.ReqLatency != nil {
		t.Fatalf("closed-loop run grew a ReqLatency: %+v", closed.ReqLatency)
	}
	if strings.Contains(closed.String(), "req p50") {
		t.Fatalf("closed-loop String() must not mention request latency: %s", closed)
	}
}

// TestOpenDeterminism: same-seed open-system runs are bit-identical,
// histogram included.
func TestOpenDeterminism(t *testing.T) {
	cfg := DefaultConfig(NOCOut)
	cfg.Cores = 16
	a, err := Run(cfg, "open-mmpp", confQ)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "open-mmpp", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("open-system run is not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestOpenMultiSeedMerge: a multi-seed run merges per-seed histograms
// (counts sum) instead of averaging quantiles.
func TestOpenMultiSeedMerge(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8
	q1 := confQ
	single, err := Run(cfg, "open-poisson", q1)
	if err != nil {
		t.Fatal(err)
	}
	q2 := confQ
	q2.Seeds = 2
	double, err := Run(cfg, "open-poisson", q2)
	if err != nil {
		t.Fatal(err)
	}
	if double.ReqLatency.Arrivals <= single.ReqLatency.Arrivals {
		t.Fatalf("two seeds must offer more requests than one: %d vs %d",
			double.ReqLatency.Arrivals, single.ReqLatency.Arrivals)
	}
	if double.ReqLatency.Hist.Count() != double.ReqLatency.Completed {
		t.Fatalf("merged histogram inconsistent: %+v", double.ReqLatency)
	}
}

// TestOfferedLoadsSweep: the load dimension expands to distinct
// spec-named points, and the encoders grow latency columns for them.
func TestOfferedLoadsSweep(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	rep, err := NewExperiment(
		WithTitle("load sweep"),
		WithVariant("Mesh", cfg),
		WithWorkloads("open-poisson"),
		WithOfferedLoads(0.5, 4),
		WithQuality(confQ),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("load sweep expanded to %d points, want 2", len(rep.Results))
	}
	for _, pr := range rep.Results {
		if !strings.HasPrefix(pr.Point.Workload, "opensys:") {
			t.Fatalf("derived point not spec-named: %q", pr.Point.Workload)
		}
		if pr.Result.ReqLatency == nil {
			t.Fatalf("point %s has no latency block", pr.Point)
		}
	}

	// JSON carries the block and round-trips exactly.
	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"p99_cy"`) || !strings.Contains(js.String(), `"req_latency"`) {
		t.Fatalf("JSON lacks request-latency fields:\n%s", js.String())
	}
	var back Report
	if err := json.Unmarshal([]byte(js.String()), &back); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if !reflect.DeepEqual(rep.Results[i].Result, back.Results[i].Result) {
			t.Fatalf("open result %d did not survive JSON", i)
		}
	}

	// CSV and table grow the latency columns for open rows...
	var cs strings.Builder
	if err := rep.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if !strings.Contains(lines[0], "req_p50_cy,req_p95_cy,req_p99_cy") {
		t.Fatalf("open CSV header lacks latency columns: %q", lines[0])
	}
	if !strings.Contains(rep.Table().String(), "req p99") {
		t.Fatalf("open table lacks latency columns:\n%s", rep.Table())
	}

	// ...and closed-loop reports keep the original schema bit for bit.
	closed, err := NewExperiment(
		WithVariant("Mesh", cfg),
		WithWorkloads("SAT Solver"),
		WithQuality(confQ),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var ccs strings.Builder
	if err := closed.WriteCSV(&ccs); err != nil {
		t.Fatal(err)
	}
	chead := strings.Split(strings.TrimSpace(ccs.String()), "\n")[0]
	if strings.Contains(chead, "req_") || !strings.HasSuffix(chead, ",error") {
		t.Fatalf("closed-loop CSV header changed: %q", chead)
	}
	if strings.Contains(closed.Table().String(), "req p99") {
		t.Fatalf("closed-loop table grew latency columns:\n%s", closed.Table())
	}
}

// TestOfferedLoadsRejectsClosedLoop: sweeping load over a workload that
// cannot scale its rate is a hard expansion error.
func TestOfferedLoadsRejectsClosedLoop(t *testing.T) {
	_, err := NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("Web Search"),
		WithOfferedLoads(1, 2),
	).Sweep()
	if err == nil || !strings.Contains(err.Error(), "closed-loop") {
		t.Fatalf("closed-loop workload must fail load expansion, got %v", err)
	}
	_, err = NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("open-poisson"),
		WithOfferedLoads(-1),
	).Sweep()
	if err == nil {
		t.Fatal("negative offered load must fail expansion")
	}
}

// TestStudySaturation: the headline entry point — p99 rises
// monotonically toward saturation on every design, and the knee is one
// of the swept loads.
func TestStudySaturation(t *testing.T) {
	loads := []float64{0.5, 2, 8}
	sat, err := StudySaturation(context.Background(), "", loads,
		Quality{Warmup: 6000, Window: 10000, Seeds: 1}, Mesh, NOCOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(sat.Variants) != 2 {
		t.Fatalf("variants = %v", sat.Variants)
	}
	for _, v := range sat.Variants {
		curve := sat.P99[v]
		if len(curve) != len(loads) {
			t.Fatalf("%s: curve %v", v, curve)
		}
		for i := range curve {
			if curve[i] <= 0 {
				t.Fatalf("%s: empty p99 at load %v", v, loads[i])
			}
			if i > 0 && curve[i] < curve[i-1] {
				t.Fatalf("%s: p99 not monotone toward saturation: %v", v, curve)
			}
		}
		knee, ok := sat.Knee[v]
		if !ok {
			t.Fatalf("%s: no knee", v)
		}
		found := false
		for _, l := range loads {
			found = found || l == knee
		}
		if !found {
			t.Fatalf("%s: knee %v not a swept load", v, knee)
		}
	}
	tab := sat.Table().String()
	if !strings.Contains(tab, "knee") || !strings.Contains(tab, "NOC-Out") {
		t.Fatalf("saturation table:\n%s", tab)
	}
}
