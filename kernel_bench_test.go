package nocout

import (
	"fmt"
	"testing"
	"time"

	"nocout/internal/chip"
	"nocout/internal/noc"
	"nocout/internal/sim"
	"nocout/internal/topo"
	"nocout/internal/workload"
)

// This file benchmarks the event-scheduled kernel against the naive
// tick-everything kernel. The headline case is the one the tentpole
// targets: low-injection traffic where idle cycles dominate, so the
// scheduled kernel advances the clock in jumps between wake events instead
// of ticking 100+ quiescent routers and NIs every cycle.
//
// Run with:
//
//	go test -bench Kernel -benchtime 1x -run '^$' .
//
// and compare the ns/simcycle metric between the naive/ and scheduled/
// sub-benchmarks (the acceptance target is >= 1.5x on the low-injection
// configuration; in practice the win is far larger).

// pacedInjector injects one 5-flit packet between a rotating deterministic
// pair of mesh endpoints every period cycles. It is a Sleeper, so on the
// scheduled kernel the whole simulation quiesces between injections.
type pacedInjector struct {
	net    noc.Network
	nodes  uint64
	period sim.Cycle
	id     uint64
}

func (pi *pacedInjector) Tick(now sim.Cycle) {
	if now%pi.period != 0 {
		return
	}
	pi.id++
	src := noc.NodeID(pi.id % pi.nodes)
	dst := noc.NodeID((pi.id*7 + 13) % pi.nodes)
	if dst == src {
		dst = noc.NodeID((uint64(dst) + 1) % pi.nodes)
	}
	pi.net.Send(now, &noc.Packet{ID: pi.id, Class: noc.ClassReq, Src: src, Dst: dst, Size: 5})
}

func (pi *pacedInjector) NextWake(now sim.Cycle) sim.Cycle {
	return now - now%pi.period + pi.period
}

// runLowInjection simulates cycles of a 64-tile mesh with one packet in
// flight every period cycles and returns the delivered-packet count.
func runLowInjection(scheduled bool, cycles, period sim.Cycle) int64 {
	plan := topo.TiledFloorplan(64, 8)
	rn := topo.NewMesh(topo.DefaultMeshParams(plan))
	delivered := int64(0)
	for n := 0; n < plan.NumTiles(); n++ {
		rn.SetDeliver(noc.NodeID(n), func(now sim.Cycle, p *noc.Packet) { delivered++ })
	}
	e := sim.NewEngine()
	e.SetScheduled(scheduled)
	e.Register(rn)
	e.Register(&pacedInjector{net: rn, nodes: uint64(plan.NumTiles()), period: period})
	e.Step(cycles)
	return delivered
}

// TestKernelLowInjectionEquivalence pins that the benchmark workload
// behaves identically on both kernels (so the benchmark compares equal
// work).
func TestKernelLowInjectionEquivalence(t *testing.T) {
	const cycles, period = 100_000, 200
	ds, dn := runLowInjection(true, cycles, period), runLowInjection(false, cycles, period)
	if ds != dn || ds == 0 {
		t.Fatalf("delivered: scheduled %d, naive %d (want equal, nonzero)", ds, dn)
	}
}

// BenchmarkKernelLowInjection is the tentpole's headline: a 64-tile mesh
// at one packet per 200 cycles (idle cycles dominate — the regime of the
// paper's measured workloads, whose networks run far below saturation,
// §6.1).
func BenchmarkKernelLowInjection(b *testing.B) {
	const cycles, period = 200_000, 200
	for _, m := range []struct {
		name      string
		scheduled bool
	}{{"naive", false}, {"scheduled", true}} {
		b.Run(m.name, func(b *testing.B) {
			var delivered int64
			for i := 0; i < b.N; i++ {
				delivered = runLowInjection(m.scheduled, cycles, period)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(cycles)*int64(b.N)), "ns/simcycle")
			b.ReportMetric(float64(delivered), "pkts")
		})
	}
}

// BenchmarkKernelChip measures a full 64-core chip (NOC-Out, Web Search)
// on both kernels at bench quality: cores sleep through fetch stalls,
// routers and banks sleep between bursts, so the scheduled kernel wins
// even though the chip never fully quiesces.
func BenchmarkKernelChip(b *testing.B) {
	w, err := workload.Parse("Web Search")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(NOCOut)
	for _, m := range []struct {
		name      string
		scheduled bool
	}{{"naive", false}, {"scheduled", true}} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := chip.New(cfg, w)
				c.Engine.SetScheduled(m.scheduled)
				c.PrewarmCaches()
				c.Warmup(benchQ.Warmup)
				c.Run(benchQ.Window)
				if mt := c.Metrics(); mt.AggIPC <= 0 {
					b.Fatalf("implausible run: %+v", mt)
				}
			}
			simCycles := int64(benchQ.Warmup+benchQ.Window) * int64(b.N)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles), "ns/simcycle")
		})
	}
}

// BenchmarkKernelSharded measures the conservative parallel kernel's
// steady state on the full 64-core NOC-Out chip (Web Search) at 1, 2, 4,
// and 8 domains. Construction and warm-up are excluded (ResetTimer), so
// ns/simcycle is the marginal cost of a simulated cycle and allocs/op is
// the steady-state allocation per 2000-cycle chunk — the two numbers
// BENCH_kernel.json tracks PR over PR. 1dom is the scheduled kernel
// baseline (NewSharded at one domain takes the single-engine path); the
// speedup at 4+ domains materializes on multi-core hosts, while a
// single-CPU host shows the synchronization overhead instead — which is
// why the comparison is archived from CI rather than asserted here.
func BenchmarkKernelSharded(b *testing.B) {
	w, err := workload.Parse("Web Search")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(NOCOut)
	for _, dom := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%ddom", dom), func(b *testing.B) {
			const chunk = 2000
			c := chip.NewSharded(cfg, w, dom)
			if dom > 1 && c.NumDomains() != dom {
				b.Fatalf("chip runs %d domains, want %d", c.NumDomains(), dom)
			}
			c.PrewarmCaches()
			c.Warmup(benchQ.Warmup)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(chunk)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(chunk)*int64(b.N)), "ns/simcycle")
		})
	}
}

// BenchmarkKernelSpeedup reports the naive/scheduled wall-clock ratio on
// the low-injection configuration in one number (the acceptance metric).
func BenchmarkKernelSpeedup(b *testing.B) {
	const cycles, period = 200_000, 200
	runLowInjection(true, cycles, period) // warm code paths once
	for i := 0; i < b.N; i++ {
		nv := timed(func() { runLowInjection(false, cycles, period) })
		sc := timed(func() { runLowInjection(true, cycles, period) })
		ratio := float64(nv) / float64(sc)
		b.ReportMetric(ratio, "naive/scheduled")
		if i == 0 {
			b.Logf("low-injection mesh: naive %v, scheduled %v, speedup %.1fx",
				time.Duration(nv), time.Duration(sc), ratio)
		}
	}
}

func timed(f func()) int64 {
	start := time.Now()
	f()
	return time.Since(start).Nanoseconds()
}
