package nocout

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"nocout/internal/cpu"
)

func TestSweepExpansion(t *testing.T) {
	e := NewExperiment(
		WithDesigns(Ideal, Mesh),
		WithWorkloads("Data Serving", "MapReduce-W"),
		WithCoreCounts(16, 32, 64),
	)
	sw, err := e.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 2*2*3 {
		t.Fatalf("cartesian product = %d points, want 12", sw.Len())
	}
	// Expansion order: variants outer, then workloads, then core counts.
	first := sw.Points[0]
	if first.Variant != "Ideal" || first.Workload != "Data Serving" || first.Cores != 16 {
		t.Fatalf("first point = %+v", first)
	}
	last := sw.Points[sw.Len()-1]
	if last.Variant != "Mesh" || last.Workload != "MapReduce-W" || last.Config.Cores != 64 {
		t.Fatalf("last point = %+v", last)
	}
}

func TestSweepDedup(t *testing.T) {
	// The same design twice collapses to one set of points.
	sw, err := NewExperiment(
		WithDesigns(Mesh),
		WithDesigns(Mesh),
		WithWorkloads("SAT Solver"),
		WithCoreCounts(16, 16, 32),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 2 {
		t.Fatalf("dedup failed: %d points, want 2", sw.Len())
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := NewExperiment().Sweep(); err == nil {
		t.Fatal("experiment without variants must not expand")
	}
	_, err := NewExperiment(WithDesigns(Mesh), WithWorkloads("Quake")).Sweep()
	if err == nil || !strings.Contains(err.Error(), "Quake") {
		t.Fatalf("unknown workload error = %v", err)
	}
}

func TestSweepWorkloadNameCollision(t *testing.T) {
	// Two spellings of the same workload dedup to one set of points...
	sw, err := NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("Web Search", "websearch"),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 1 {
		t.Fatalf("alias dedup failed: %d points, want 1", sw.Len())
	}

	// A freshly wrapped copy of the same calibration also dedups:
	// aliases are metadata, not identity.
	p, err := WorkloadParamsOf("websearch")
	if err != nil {
		t.Fatal(err)
	}
	sw, err = NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("websearch"),
		WithWorkloadValues(SynthWorkload(p)),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 1 {
		t.Fatalf("same-calibration dedup failed: %d points, want 1", sw.Len())
	}

	// ...but a *different* workload under a taken name (a capture
	// replays under its source's name) must not silently vanish.
	ws, err := ParseWorkload("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := RecordWorkload(ws, 2, 50, 1) // short: looping, not equivalent
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("Web Search"),
		WithWorkloadValues(cap),
	).Sweep()
	if err == nil || !strings.Contains(err.Error(), "Web Search") {
		t.Fatalf("name collision must be a hard error, got %v", err)
	}
}

func TestSweepConfigureAndUnlimited(t *testing.T) {
	sw, err := NewExperiment(
		WithDesigns(Mesh),
		WithWorkloads("Web Search"), // MaxCores 16 in the suite
		WithCoreCounts(64),
		WithSeed(42),
		WithUnlimitedCores(),
		WithConfigure(func(cfg *Config, p Point) { cfg.MemChannels = 4 * p.Cores / 64 }),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	p := sw.Points[0]
	if p.Config.MemChannels != 4 {
		t.Fatalf("configure hook not applied: %+v", p.Config)
	}
	if p.Seed != 42 || p.Config.Seed != 42 {
		t.Fatalf("seed override not applied: %+v", p)
	}
	if p.wl.MaxCores() < 64 {
		t.Fatalf("WithUnlimitedCores must lift the cap past the chip size, got %d", p.wl.MaxCores())
	}

	// Seed 0 is a valid override, not "unset".
	sw, err = NewExperiment(WithDesigns(Mesh), WithWorkloads("SAT Solver"), WithSeed(0)).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if s := sw.Points[0].Config.Seed; s != 0 {
		t.Fatalf("WithSeed(0) ignored: config seed %d", s)
	}
}

// TestRunnerDeterminism checks the engine's core contract: identical
// results regardless of worker count.
func TestRunnerDeterminism(t *testing.T) {
	e := NewExperiment(
		WithDesigns(Ideal, Mesh),
		WithWorkloads("Web Search"),
		WithCoreCounts(8),
		WithQuality(tiny),
	)
	sw, err := e.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	serial, err := (&Runner{Workers: 1, Progress: func(done, total int, p Point, r Result) {
		calls++
		if total != sw.Len() || done < 1 || done > total {
			t.Errorf("progress(%d, %d)", done, total)
		}
	}}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if calls != sw.Len() {
		t.Fatalf("progress called %d times, want %d", calls, sw.Len())
	}
	wide, err := (&Runner{Workers: 8}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Results, wide.Results) {
		t.Fatalf("results differ across worker counts:\n1: %+v\n8: %+v", serial.Results, wide.Results)
	}
	if serial.Results[0].Result.AggIPC <= 0 {
		t.Fatalf("no throughput: %+v", serial.Results[0])
	}
}

func TestRunnerCancellation(t *testing.T) {
	e := NewExperiment(WithDesigns(Mesh, Ideal), WithCoreCounts(8), WithQuality(tiny))
	sw, err := e.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	if rep, err := (&Runner{}).Run(ctx, sw); err != context.Canceled || rep != nil {
		t.Fatalf("pre-cancelled run = (%v, %v), want (nil, context.Canceled)", rep, err)
	}

	// Cancel mid-sweep, from the progress callback after the first point.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	rn := &Runner{Workers: 1, Progress: func(done, total int, p Point, r Result) {
		if done == 1 {
			cancel()
		}
	}}
	if rep, err := rn.Run(ctx, sw); err != context.Canceled || rep != nil {
		t.Fatalf("mid-sweep cancel = (%v, %v), want (nil, context.Canceled)", rep, err)
	}
}

// brokenSweep returns a two-point sweep whose second point cannot build:
// PrivateLLC needs a tiled organization and NOC-Out is not one, so
// chip.New raises a deterministic configuration error.
func brokenSweep(t *testing.T) Sweep {
	t.Helper()
	bad := DefaultConfig(NOCOut)
	bad.Cores = 8
	bad.Hierarchy = PrivateLLC
	good := DefaultConfig(Mesh)
	good.Cores = 8
	sw, err := NewExperiment(
		WithVariant("Good", good),
		WithVariant("Bad", bad),
		WithWorkloads("SAT Solver"),
		WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 2 || sw.Points[1].Variant != "Bad" {
		t.Fatalf("unexpected sweep: %+v", sw.Points)
	}
	return sw
}

// TestRunnerFailFastNamesPoint: the default contract — the first broken
// point aborts the sweep, and the error (a chip.New panic recovered by
// runPoint) names the point that raised it.
func TestRunnerFailFastNamesPoint(t *testing.T) {
	sw := brokenSweep(t)
	rep, err := (&Runner{Workers: 1}).Run(context.Background(), sw)
	if err == nil || rep != nil {
		t.Fatalf("broken point must abort: (%v, %v)", rep, err)
	}
	if !strings.Contains(err.Error(), "Bad / SAT Solver") {
		t.Fatalf("error must name the point: %v", err)
	}
	if !strings.Contains(err.Error(), "tiled organization") {
		t.Fatalf("error must keep the cause: %v", err)
	}
}

// TestRunnerKeepGoing: with KeepGoing the broken point lands in its
// report row (PointResult.Err, surfaced in the CSV error column) and the
// healthy point still measures.
func TestRunnerKeepGoing(t *testing.T) {
	sw := brokenSweep(t)
	rep, err := (&Runner{Workers: 2, KeepGoing: true}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := rep.Results[0], rep.Results[1]
	if good.Err != "" || good.Result.AggIPC <= 0 {
		t.Fatalf("healthy point: %+v", good)
	}
	if bad.Err == "" || !strings.Contains(bad.Err, "tiled organization") {
		t.Fatalf("broken point must carry its error: %+v", bad)
	}
	if bad.Result.AggIPC != 0 {
		t.Fatalf("failed point must not carry a result: %+v", bad)
	}

	var cs strings.Builder
	if err := rep.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if !strings.HasSuffix(lines[0], ",error") {
		t.Fatalf("CSV header must end with the error column: %q", lines[0])
	}
	if !strings.Contains(lines[2], "tiled organization") {
		t.Fatalf("CSV row must carry the point error: %q", lines[2])
	}
}

// recordingCache is a Cache fake that records Store calls.
type recordingCache struct {
	mu     sync.Mutex
	stored []PointResult
}

func (c *recordingCache) Lookup(Point, Quality) (PointResult, bool, error) {
	return PointResult{}, false, nil
}

func (c *recordingCache) Store(pr PointResult, _ Quality) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stored = append(c.stored, pr)
	return nil
}

// cancelOnBuild fires cancel once from inside chip construction — after
// runSeeds' last pre-simulation context check, so the simulation runs to
// completion under an already-cancelled context.
type cancelOnBuild struct {
	Workload
	once   *sync.Once
	cancel context.CancelFunc
}

func (c cancelOnBuild) CoreParams(coreID int, seed uint64) cpu.Params {
	c.once.Do(c.cancel)
	return c.Workload.CoreParams(coreID, seed)
}

// TestRunnerCancelAfterComplete pins the silent-result-loss fix: a point
// whose simulation completes after cancellation landed is still stored,
// counted, and paid for — the run as a whole still reports ctx.Err().
func TestRunnerCancelAfterComplete(t *testing.T) {
	w, err := ParseWorkload("SAT Solver")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := Sweep{Title: "cancel-after-complete", Quality: tiny, Points: []Point{{
		Variant: "Mesh", Design: Mesh, Workload: w.Name(), Seed: cfg.Seed, Config: cfg,
		wl: cancelOnBuild{Workload: w, once: &sync.Once{}, cancel: cancel},
	}}}

	cache := &recordingCache{}
	progressed := 0
	rep, err := (&Runner{Workers: 1, Cache: cache, Progress: func(done, total int, p Point, r Result) {
		progressed++
	}}).Run(ctx, sw)
	if err != context.Canceled || rep != nil {
		t.Fatalf("cancelled run = (%v, %v), want (nil, context.Canceled)", rep, err)
	}
	if len(cache.stored) != 1 {
		t.Fatalf("completed simulation must be stored despite cancellation; stored %d", len(cache.stored))
	}
	if pr := cache.stored[0]; pr.Err != "" || pr.Result.AggIPC <= 0 {
		t.Fatalf("stored result must be the real measurement: %+v", pr)
	}
	if progressed != 1 {
		t.Fatalf("completed simulation must be counted; progress calls = %d", progressed)
	}
}

// TestRunnerProgressMonotonic: under a wide pool the done counter is
// strictly 1..N with no gaps or repeats (run with -race to check the
// callback serialization too).
func TestRunnerProgressMonotonic(t *testing.T) {
	sw, err := NewExperiment(
		WithDesigns(Ideal),
		WithWorkloads("SAT Solver", "Data Serving", "MapReduce-C", "MapReduce-W"),
		WithCoreCounts(8, 16),
		WithQuality(tiny),
	).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	var seq []int
	rep, err := (&Runner{Workers: 8, Progress: func(done, total int, p Point, r Result) {
		if total != sw.Len() {
			t.Errorf("total = %d, want %d", total, sw.Len())
		}
		seq = append(seq, done) // Progress calls are serialized; -race verifies
	}}).Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != sw.Len() {
		t.Fatalf("progress calls = %d, want %d", len(seq), sw.Len())
	}
	for i, d := range seq {
		if d != i+1 {
			t.Fatalf("done sequence not strictly monotonic: %v", seq)
		}
	}
	for _, pr := range rep.Results {
		if pr.Result.AggIPC <= 0 {
			t.Fatalf("missing result: %+v", pr.Point)
		}
	}
}

// TestSeedDerivation pins the runSeeds seed schedule: seed s runs at
// base+s*7919 (the historical bug compounded the offsets), so a 2-seed
// run averages exactly the two single-seed runs.
func TestSeedDerivation(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8

	q2 := tiny
	q2.Seeds = 2
	avg, err := Run(cfg, "SAT Solver", q2)
	if err != nil {
		t.Fatal(err)
	}

	var single [2]Result
	for s := range single {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*7919
		single[s], err = Run(c, "SAT Solver", tiny)
		if err != nil {
			t.Fatal(err)
		}
	}
	want := (single[0].AggIPC + single[1].AggIPC) / 2
	if diff := avg.AggIPC - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("2-seed AggIPC %.9f != mean of per-seed runs %.9f", avg.AggIPC, want)
	}
	if single[0].AggIPC == single[1].AggIPC {
		t.Fatal("distinct seeds should not measure identically")
	}
}

func TestReportEncoders(t *testing.T) {
	rep := &Report{
		Title:   "enc",
		Quality: tiny,
		Results: []PointResult{{
			Point: Point{Variant: "NOC-Out", Design: NOCOut, Workload: "Web Search",
				Cores: 64, Seed: 1, Config: DefaultConfig(NOCOut)},
			Result: Result{Design: NOCOut, Workload: "Web Search", ActiveCores: 16,
				AggIPC: 12.5, PerCoreIPC: 12.5 / 16},
		}},
	}

	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"design": "NOC-Out"`) {
		t.Fatalf("design should marshal by name:\n%s", js.String())
	}
	var back Report
	if err := json.Unmarshal([]byte(js.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Result.Design != NOCOut || back.Results[0].Result.AggIPC != 12.5 {
		t.Fatalf("JSON round trip lost data: %+v", back.Results[0])
	}

	var cs strings.Builder
	if err := rep.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV = %d lines, want header + 1 row:\n%s", len(lines), cs.String())
	}
	if !strings.HasPrefix(lines[0], "variant,design,hierarchy,workload,cores") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "NOC-Out,SharedNUCA,Web Search,64") {
		t.Fatalf("CSV row = %q", lines[1])
	}

	if s := rep.Table().String(); !strings.Contains(s, "NOC-Out") {
		t.Fatalf("table renderer:\n%s", s)
	}
}

func TestReportGet(t *testing.T) {
	rep := &Report{Results: []PointResult{{
		Point:  Point{Variant: "Mesh", Workload: "SAT Solver", Cores: 32},
		Result: Result{AggIPC: 7},
	}}}
	if r, ok := rep.Get("Mesh", "SAT Solver", 32); !ok || r.AggIPC != 7 {
		t.Fatalf("Get = (%+v, %v)", r, ok)
	}
	if _, ok := rep.Get("Mesh", "SAT Solver", 64); ok {
		t.Fatal("Get must miss on a different core count")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on a missing cell must panic")
		}
	}()
	rep.MustGet("Ideal", "SAT Solver", 32)
}

func TestParseDesign(t *testing.T) {
	cases := map[string]Design{
		"mesh": Mesh, "Mesh": Mesh,
		"fbfly": FBfly, "flattened-butterfly": FBfly, "Flattened Butterfly": FBfly,
		"nocout": NOCOut, "NOC-Out": NOCOut,
		"ideal": Ideal,
		"torus": Torus, "Torus": Torus,
		"cmesh": CMesh, "concentrated-mesh": CMesh,
		"crossbar": Crossbar, "xbar": Crossbar,
	}
	for s, want := range cases {
		d, err := ParseDesign(s)
		if err != nil || d != want {
			t.Errorf("ParseDesign(%q) = (%v, %v), want %v", s, d, err, want)
		}
	}
	if _, err := ParseDesign("hypercube"); err == nil {
		t.Fatal("unknown design must error")
	}
}

func TestParseQuality(t *testing.T) {
	if q, err := ParseQuality("quick"); err != nil || q != Quick {
		t.Fatalf("quick = (%+v, %v)", q, err)
	}
	if q, err := ParseQuality("Full"); err != nil || q != Full {
		t.Fatalf("full = (%+v, %v)", q, err)
	}
	if _, err := ParseQuality("heroic"); err == nil {
		t.Fatal("unknown quality must error")
	}
}
