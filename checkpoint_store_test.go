package nocout

import (
	"bytes"
	"context"
	"os"
	"testing"
)

// writeCorrupt replaces a stored checkpoint with bytes that parse as no
// container at all.
func writeCorrupt(path string) error {
	return os.WriteFile(path, []byte("NOCKnonsense"), 0o644)
}

// storeSweep builds the small two-design sweep the store tests measure,
// at quality q. Each (variant, seed) pair is one warm-state prefix.
func storeSweep(t *testing.T, q Quality) Sweep {
	t.Helper()
	mesh := DefaultConfig(Mesh)
	mesh.Cores = 16
	mesh.Seed = 1
	noco := DefaultConfig(NOCOut)
	noco.Cores = 16
	noco.Seed = 1
	exp := NewExperiment(
		WithTitle("checkpointed sweep"),
		WithWorkloads("MapReduce-C"),
		WithQuality(q),
		WithVariant("Mesh", mesh),
		WithVariant("NOC-Out", noco),
	)
	sw, err := exp.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointedSweepByteIdentical is the subsystem's end-to-end
// acceptance check: a sweep run through the checkpoint store produces a
// Report byte-identical to the same sweep without it — first on a cold
// cache (every prefix warmed and stored), then on a warm cache (every
// prefix restored), then across a window change (the multi-window sweep:
// same warm states, longer measurement, all hits).
func TestCheckpointedSweepByteIdentical(t *testing.T) {
	q := Quality{Warmup: 2500, Window: 3000, Seeds: 1}
	ctx := context.Background()

	plain, err := (&Runner{}).Run(ctx, storeSweep(t, q))
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, plain)

	st, err := NewCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := (&Runner{Checkpoints: st}).Run(ctx, storeSweep(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, cold); !bytes.Equal(got, want) {
		t.Fatalf("cold checkpointed report differs from plain report:\n%s\nvs\n%s", got, want)
	}
	hits, misses, unkeyed := st.Stats()
	if hits != 0 || misses != 2 || unkeyed != 0 {
		t.Fatalf("cold pass stats: hits %d, misses %d, unkeyed %d; want 0, 2, 0", hits, misses, unkeyed)
	}
	if infos, err := st.List(); err != nil || len(infos) != 2 {
		t.Fatalf("store holds %d checkpoints (err %v), want 2", len(infos), err)
	}

	warm, err := (&Runner{Checkpoints: st}).Run(ctx, storeSweep(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, warm); !bytes.Equal(got, want) {
		t.Fatalf("warm checkpointed report differs from plain report")
	}
	if hits, _, _ := st.Stats(); hits != 2 {
		t.Fatalf("warm pass restored %d prefixes, want 2", hits)
	}

	// The multi-window sweep: a longer window shares the same prefixes,
	// so every point restores — warmup cycles are paid exactly once for
	// any number of windows.
	wide := q
	wide.Window *= 2
	plainWide, err := (&Runner{}).Run(ctx, storeSweep(t, wide))
	if err != nil {
		t.Fatal(err)
	}
	ckWide, err := (&Runner{Checkpoints: st}).Run(ctx, storeSweep(t, wide))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, ckWide), reportJSON(t, plainWide)) {
		t.Fatalf("wide-window checkpointed report differs from plain report")
	}
	hits, misses, _ = st.Stats()
	if hits != 4 || misses != 2 {
		t.Fatalf("after the wide window: hits %d, misses %d; want 4, 2", hits, misses)
	}
}

// TestCheckpointStoreRecompute: the override policy re-warms and
// overwrites even when an entry exists.
func TestCheckpointStoreRecompute(t *testing.T) {
	q := Quality{Warmup: 1500, Window: 1000, Seeds: 1}
	ctx := context.Background()
	st, err := NewCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := storeSweep(t, q)
	sw.Points = sw.Points[:1]
	if _, err := (&Runner{Checkpoints: st}).Run(ctx, sw); err != nil {
		t.Fatal(err)
	}
	st.Recompute = true
	if _, err := (&Runner{Checkpoints: st}).Run(ctx, sw); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := st.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("recompute stats: hits %d, misses %d; want 0, 2", hits, misses)
	}
}

// TestCheckpointStoreSelfHeals: a corrupt cache entry is a miss — the
// point re-warms, overwrites the entry, and the next pass hits it.
func TestCheckpointStoreSelfHeals(t *testing.T) {
	q := Quality{Warmup: 1500, Window: 1000, Seeds: 1}
	ctx := context.Background()
	st, err := NewCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := storeSweep(t, q)
	sw.Points = sw.Points[:1]
	plain, err := (&Runner{}).Run(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Checkpoints: st}).Run(ctx, sw); err != nil {
		t.Fatal(err)
	}
	infos, err := st.List()
	if err != nil || len(infos) != 1 {
		t.Fatalf("stored %d checkpoints (err %v)", len(infos), err)
	}
	// Scribble over the entry: restore must fail cleanly, the run must
	// still produce the exact report, and the store must heal.
	if err := writeCorrupt(st.path(infos[0].Key)); err != nil {
		t.Fatal(err)
	}
	rep, err := (&Runner{Checkpoints: st}).Run(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, rep), reportJSON(t, plain)) {
		t.Fatal("report differs after healing a corrupt checkpoint")
	}
	healed, err := (&Runner{Checkpoints: st}).Run(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, healed), reportJSON(t, plain)) {
		t.Fatal("report differs after restoring the healed checkpoint")
	}
	hits, misses, _ := st.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("self-heal stats: hits %d, misses %d; want 1, 2", hits, misses)
	}
}
