package nocout

import (
	"os"
	"path/filepath"
	"testing"

	"nocout/internal/workload"
)

// This file benchmarks the workload layer: raw per-stream generation
// cost for every registered workload, and a full Quick-quality chip
// measurement driven by a recorded capture vs the live synthetic
// generator. CI archives the results as BENCH_workload.json so the
// workload layer's perf trajectory is tracked PR over PR alongside the
// kernel's.

// BenchmarkWorkloadStream measures stream generation for every
// registered workload plus a capture replay of the first; ns/op is
// ns per generated instruction.
func BenchmarkWorkloadStream(b *testing.B) {
	for _, w := range RegisteredWorkloads() {
		b.Run(w.Name(), func(b *testing.B) {
			st := w.StreamFor(0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Next()
			}
		})
	}
	b.Run("Capture-Replay", func(b *testing.B) {
		cap, err := workload.Record(workload.Synth(workload.DataServing), 1, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		st := cap.StreamFor(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Next()
		}
	})
}

// BenchmarkTraceFormat compares the two trace container formats on the
// same 16-core Quick-length recording: decode cost (ns/op is ns per
// replayed instruction) and on-disk compression ratio (in-memory stream
// bytes over file bytes, reported as compress-x). NOC2 decodes once up
// front and replays from memory; NOC3 decodes blocks as replay reaches
// them, so its ns/op includes steady-state block decode.
func BenchmarkTraceFormat(b *testing.B) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	perCore := int(Quick.Warmup+Quick.Window) * 3
	src, err := ParseWorkload("MapReduce-C")
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	noc2 := filepath.Join(dir, "bench2.noctrace")
	noc3 := filepath.Join(dir, "bench3.noctrace")
	cap, err := RecordWorkload(src, cfg.Cores, perCore, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	if err := cap.Save(noc2); err != nil {
		b.Fatal(err)
	}
	if err := RecordTraceFile(noc3, src, cfg.Cores, perCore, cfg.Seed); err != nil {
		b.Fatal(err)
	}
	rawBytes := float64(cfg.Cores) * float64(perCore) * 24 // in-memory cpu.Instr size
	compressX := func(b *testing.B, path string) {
		st, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rawBytes/float64(st.Size()), "compress-x")
	}

	b.Run("noc2-decode", func(b *testing.B) {
		total := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := LoadCapture(noc2)
			if err != nil {
				b.Fatal(err)
			}
			st := c.StreamFor(0, 1)
			for k := 0; k < perCore; k++ {
				st.Next()
			}
			total += int64(perCore)
		}
		b.StopTimer()
		compressX(b, noc2)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/instr")
	})
	b.Run("noc3-decode", func(b *testing.B) {
		total := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tf, err := workload.OpenTraceFile(noc3)
			if err != nil {
				b.Fatal(err)
			}
			st := tf.StreamFor(0, 1)
			for k := 0; k < perCore; k++ {
				st.Next()
			}
			total += int64(perCore)
			tf.Close()
		}
		b.StopTimer()
		compressX(b, noc3)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/instr")
	})
}

// BenchmarkWorkloadQuick compares a Quick-quality 16-core mesh
// measurement driven synthetically against the same measurement driven
// by a non-wrapping recorded capture (the ns/simcycle gap is the cost
// — or saving — of replay on the full simulation path).
func BenchmarkWorkloadQuick(b *testing.B) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	simCycles := int64(Quick.Warmup + Quick.Window)
	report := func(b *testing.B, res Result) {
		b.ReportMetric(res.AggIPC, "agg-ipc")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles*int64(b.N)), "ns/simcycle")
	}

	b.Run("synthetic", func(b *testing.B) {
		var res Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = Run(cfg, "MapReduce-C", Quick)
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, res)
	})
	b.Run("trace-replay", func(b *testing.B) {
		src, err := ParseWorkload("MapReduce-C")
		if err != nil {
			b.Fatal(err)
		}
		cap, err := RecordWorkload(src, cfg.Cores, int(Quick.Warmup+Quick.Window)*3, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var res Result
		for i := 0; i < b.N; i++ {
			res = RunWorkload(cfg, cap, Quick)
		}
		report(b, res)
	})
}
