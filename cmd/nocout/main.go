// Command nocout runs one CMP configuration — or a sweep of interconnect
// designs crossed with workloads and memory hierarchies — and prints the
// measured metrics, as text or as a machine-readable Report (-json). It
// can also record a workload capture for later "trace:<path>" replay.
//
// Usage:
//
//	nocout -design nocout -workload "Web Search" -quality full
//	nocout -design mesh -cores 64 -linkbits 64 -workload data-serving
//	nocout -designs mesh,torus,cmesh,crossbar -workload "MapReduce-C"
//	nocout -design mesh -workloads websearch,mix,phased
//	nocout -design mesh -hierarchies shared-nuca,xor,affine,private,clustered
//	nocout -design mesh -hierarchy private -workload "Data Serving"
//	nocout -design mesh -mem-lat 120 -mem-bw 6.4 -workload websearch
//	nocout -workload websearch -cores 16 -record-trace ws.noctrace
//	nocout -design mesh -cores 16 -workload trace:ws.noctrace
//	nocout -trace-info ws.noctrace
//	nocout -trace-convert old-noc2.noctrace new-noc3.noctrace
//	nocout -design mesh -workload open-poisson -offered-loads 0.5,2,8
//	nocout -designs mesh,nocout -workload websearch -arrival mmpp -offered-loads 0.5,2,8 -csv
//	nocout -design nocout -workload "opensys:arrival=burst,hurst=0.9,base=data-serving,rate=4"
//	nocout -cpuprofile cpu.pprof -quality full -workload "Data Serving"
//	nocout -designs mesh,nocout -workloads websearch,mix -campaign camp/
//	nocout -campaign camp/                    # resume / join as another worker
//	nocout -campaign-merge camp/ -json        # assemble the final report
//	nocout -designs mesh,nocout -workload websearch -checkpoint-dir warm/
//	nocout -checkpoint-dir warm/ -list-checkpoints
//	nocout -list
//
// A -campaign run is resumable: every completed point is stored in the
// campaign directory under its content key, so interrupting and
// restarting (or pointing more worker processes at the same directory)
// never recomputes finished work. See EXPERIMENTS.md, "Running a
// resumable campaign".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"nocout"
	"nocout/campaign"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout: ")
	// All work happens inside run so its defers — profile flushing in
	// particular — execute on every exit path, including errors and
	// interrupted runs (log.Fatal/os.Exit would skip them).
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	design := flag.String("design", "nocout", "interconnect organization (see -list)")
	designs := flag.String("designs", "", "comma-separated design sweep, overrides -design (see -list)")
	wl := flag.String("workload", "Web Search", "workload name, alias, or trace:<path> (see -list)")
	workloads := flag.String("workloads", "", "comma-separated workload sweep, overrides -workload (see -list)")
	hier := flag.String("hierarchy", "", "memory hierarchy; empty keeps the SharedNUCA baseline (see -list)")
	hiers := flag.String("hierarchies", "", "comma-separated hierarchy sweep, overrides -hierarchy (see -list)")
	list := flag.Bool("list", false, "list registered designs, hierarchies, and workloads, then exit")
	listWLs := flag.Bool("list-workloads", false, "list registered workloads with aliases, then exit")
	listHiers := flag.Bool("list-hierarchies", false, "list registered memory hierarchies with aliases, then exit")
	cores := flag.Int("cores", 64, "core count (power of two)")
	linkBits := flag.Int("linkbits", 128, "NoC link width in bits")
	memLat := flag.Int("mem-lat", 0, "memory device access latency in cycles (0 = DDR3-1667 default, 90)")
	memBW := flag.Float64("mem-bw", 0, "per-channel memory bandwidth in GB/s (0 = DDR3-1667 default, 12.8)")
	quality := flag.String("quality", "quick", "quick | full")
	seed := flag.Uint64("seed", 1, "simulation seed")
	arrival := flag.String("arrival", "", "wrap each workload as an open-system one: poisson | mmpp | burst, or opensys k=v params (e.g. \"arrival=mmpp,rate=4\")")
	offeredLoads := flag.String("offered-loads", "", "comma-separated open-system arrival rates (requests per 1000 cycles per core) to sweep, e.g. 0.5,2,8")
	jsonOut := flag.Bool("json", false, "emit the structured Report as JSON")
	csvOut := flag.Bool("csv", false, "emit the structured Report as CSV")
	recordTrace := flag.String("record-trace", "", "record the workload to this capture file and exit (replay with -workload trace:<path>)")
	recordInstrs := flag.Int("record-instrs", 96000, "instructions per core to record with -record-trace (96k covers a quick-quality run)")
	recordFormat := flag.String("record-format", "noc3", "container format for -record-trace: noc3 (streaming, bounded-memory) | noc2 (legacy monolithic)")
	traceInfo := flag.String("trace-info", "", "print a trace file's header, section, and compression metadata (NOC2 or NOC3), then exit")
	traceConvert := flag.String("trace-convert", "", "upgrade this NOC2 capture to a NOC3 container at the positional output path, then exit (replay is bit-identical)")
	campaignDir := flag.String("campaign", "", "run as a resumable campaign worker over this shared directory (created from the sweep flags; an existing campaign is resumed/joined as-is)")
	campaignMerge := flag.String("campaign-merge", "", "assemble a campaign directory's stored results into the final report and exit")
	campaignWorker := flag.String("campaign-worker", "", "lease owner identity for -campaign (default hostname-pid; must be unique per worker)")
	leaseTTL := flag.Duration("lease-ttl", 0, "campaign lease lifetime before a crashed worker's points are stolen (default 10m)")
	recompute := flag.Bool("recompute", false, "with -campaign, ignore cached results once and recompute them")
	checkpointDir := flag.String("checkpoint-dir", "", "cache warm state in this directory: points sharing a measurement prefix warm up once and restore bit-identically (see EXPERIMENTS.md)")
	recomputeCkpts := flag.Bool("recompute-checkpoints", false, "with -checkpoint-dir, ignore stored warm states and re-produce them")
	listCkpts := flag.Bool("list-checkpoints", false, "with -checkpoint-dir, list the stored checkpoints and exit")
	keepGoing := flag.Bool("keep-going", false, "record per-point errors in the report instead of aborting the sweep on the first failure")
	simParallel := flag.Int("sim-parallel", 1, "shard each simulation across N concurrently stepping tile-group domains; results are bit-identical for any N (see EXPERIMENTS.md)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof evidence for perf PRs)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	if *list || *listWLs || *listHiers {
		// All three namespaces come from the registries, so user
		// registrations show up here with no CLI changes.
		if *list {
			fmt.Println("designs:")
			for _, d := range nocout.Designs() {
				org, err := nocout.OrganizationOf(d)
				if err != nil {
					return err
				}
				aliases := append([]string{strings.ToLower(org.Name())}, org.Aliases()...)
				fmt.Printf("  %-22s aliases: %s\n", org.Name(), strings.Join(aliases, ", "))
			}
		}
		if *list || *listHiers {
			fmt.Println("hierarchies:")
			for _, id := range nocout.Hierarchies() {
				h, err := nocout.HierarchyOf(id)
				if err != nil {
					return err
				}
				aliases := append([]string{strings.ToLower(h.Name())}, h.Aliases()...)
				fmt.Printf("  %-22s aliases: %s\n", h.Name(), strings.Join(aliases, ", "))
			}
		}
		if *list || *listWLs {
			fmt.Println("workloads:")
			for _, w := range nocout.RegisteredWorkloads() {
				aliases := append([]string{strings.ToLower(w.Name())}, w.Aliases()...)
				fmt.Printf("  %-22s max cores: %-3d  aliases: %s\n", w.Name(), w.MaxCores(), strings.Join(aliases, ", "))
			}
			fmt.Println("plus trace:<path> to replay a capture recorded with -record-trace")
			fmt.Println("plus opensys:<k=v,...> for open-system traffic over any base workload")
			fmt.Println("  keys: arrival=poisson|mmpp|burst, base, rate (req/kcycle/core), size (instrs),")
			fmt.Println("        queue, ratio, dwell-hi, dwell-lo (mmpp), hurst, peak (burst),")
			fmt.Println("        phases=MULTxCYCLES;..., skew=uniform|hotspot|transpose, grid, hot, hotfrac")
		}
		return nil
	}

	// Merging needs no simulation capability at all — only the campaign
	// directory — so it runs before any workload or design resolution.
	if *campaignMerge != "" {
		c, err := campaign.Open(*campaignMerge)
		if err != nil {
			return err
		}
		rep, err := c.Merge()
		if err != nil {
			return err
		}
		if *jsonOut {
			return rep.WriteJSON(os.Stdout)
		}
		if *csvOut {
			return rep.WriteCSV(os.Stdout)
		}
		fmt.Println(rep.Table())
		return nil
	}

	// Listing checkpoints inspects container metadata only — no workload
	// or design resolution either.
	if *listCkpts {
		if *checkpointDir == "" {
			return fmt.Errorf("-list-checkpoints requires -checkpoint-dir")
		}
		st, err := nocout.NewCheckpointStore(*checkpointDir)
		if err != nil {
			return err
		}
		infos, err := st.List()
		if err != nil {
			return err
		}
		for _, ci := range infos {
			d, derr := nocout.OrganizationOf(ci.Info.Design)
			dname := "?"
			if derr == nil {
				dname = d.Name()
			}
			fmt.Printf("%s  %8d bytes  %-14s %-12v %3d cores (%d active)  seed %-6d cycle %d\n",
				ci.Key, ci.Bytes, dname, ci.Info.Hierarchy, ci.Info.Cores, ci.Info.Active, ci.Info.Seed, ci.Info.Cycle)
		}
		fmt.Printf("%d checkpoints in %s\n", len(infos), *checkpointDir)
		return nil
	}

	// Trace inspection and conversion operate on files alone — no workload
	// or design resolution, like -campaign-merge above.
	if *traceInfo != "" {
		ti, err := nocout.InspectTrace(*traceInfo)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(ti)
		}
		ti.WriteText(os.Stdout)
		return nil
	}
	if *traceConvert != "" {
		if flag.NArg() != 1 {
			return fmt.Errorf("-trace-convert needs an output path: nocout -trace-convert in.noctrace out.noctrace")
		}
		out := flag.Arg(0)
		if err := nocout.ConvertTrace(*traceConvert, out); err != nil {
			return err
		}
		ti, err := nocout.InspectTrace(out)
		if err != nil {
			return err
		}
		fmt.Printf("converted %s (NOC2) -> %s (NOC3): %d cores, %d instructions, %d bytes (%.3f bytes/instr)\n",
			*traceConvert, out, ti.Cores, ti.Instrs, ti.FileBytes, ti.BytesPerInstr())
		return nil
	}

	wnames := []string{*wl}
	if *workloads != "" {
		wnames = strings.Split(*workloads, ",")
	}
	if *arrival != "" {
		// -arrival wraps each named workload into an opensys: spec with
		// that workload as the serving base. A bare process name becomes
		// "arrival=<name>"; anything with '=' passes through as raw
		// opensys parameters. Already-open specs are left alone.
		params := *arrival
		if !strings.Contains(params, "=") {
			params = "arrival=" + params
		}
		for i, name := range wnames {
			if strings.HasPrefix(strings.ToLower(strings.TrimSpace(name)), "opensys:") {
				continue
			}
			wnames[i] = "opensys:" + params + ",base=" + strings.TrimSpace(name)
		}
	}
	var ws []nocout.Workload
	for _, name := range wnames {
		w, err := nocout.ParseWorkload(name)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}

	if *recordTrace != "" {
		if len(ws) != 1 {
			return fmt.Errorf("-record-trace captures exactly one workload, got %d", len(ws))
		}
		format := strings.ToUpper(*recordFormat)
		switch strings.ToLower(*recordFormat) {
		case "noc3":
			// The streaming recorder: blocks are encoded and flushed as the
			// source produces them, so recording memory is O(cores × block)
			// however long the trace is.
			if err := nocout.RecordTraceFile(*recordTrace, ws[0], *cores, *recordInstrs, *seed); err != nil {
				return err
			}
		case "noc2":
			cap, err := nocout.RecordWorkload(ws[0], *cores, *recordInstrs, *seed)
			if err != nil {
				return err
			}
			if err := cap.Save(*recordTrace); err != nil {
				return err
			}
		default:
			return fmt.Errorf("-record-format %q: want noc3 or noc2", *recordFormat)
		}
		fmt.Printf("recorded %s: %d cores x %d instructions (seed %d) -> %s (%s)\n",
			ws[0].Name(), *cores, *recordInstrs, *seed, *recordTrace, format)
		fmt.Printf("replay with: -workload trace:%s\n", *recordTrace)
		return nil
	}

	dnames := []string{*design}
	if *designs != "" {
		dnames = strings.Split(*designs, ",")
	}
	var ds []nocout.Design
	for _, name := range dnames {
		d, err := nocout.ParseDesign(name)
		if err != nil {
			return err
		}
		ds = append(ds, d)
	}
	// Unknown hierarchy names hard-error here, exactly like unknown
	// designs; an empty -hierarchy keeps each variant's own default.
	var hnames []string
	if *hiers != "" {
		hnames = strings.Split(*hiers, ",")
	} else if *hier != "" {
		hnames = []string{*hier}
	}
	var hs []nocout.HierarchyID
	for _, name := range hnames {
		h, err := nocout.ParseHierarchy(name)
		if err != nil {
			return err
		}
		hs = append(hs, h)
	}
	q, err := nocout.ParseQuality(*quality)
	if err != nil {
		return err
	}
	var loads []float64
	if *offeredLoads != "" {
		for _, s := range strings.Split(*offeredLoads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("-offered-loads: %w", err)
			}
			loads = append(loads, v)
		}
	}

	wdisplay := make([]string, len(ws))
	for i, w := range ws {
		wdisplay[i] = w.Name()
	}
	opts := []nocout.Option{
		nocout.WithTitle(fmt.Sprintf("%s / %s", strings.Join(dnames, ","), strings.Join(wdisplay, ","))),
		// By name/spec, not by value: the sweep records trace:<path> specs
		// on its points, so campaign workers in other processes rehydrate
		// the same workload instead of a same-named registry entry.
		nocout.WithWorkloads(wnames...),
		nocout.WithQuality(q),
	}
	if len(hs) > 0 {
		opts = append(opts, nocout.WithHierarchies(hs...))
	}
	if len(loads) > 0 {
		opts = append(opts, nocout.WithOfferedLoads(loads...))
	}
	cfgs := make([]nocout.Config, len(ds))
	for i, d := range ds {
		cfg := nocout.DefaultConfig(d)
		cfg.Cores = *cores
		cfg.LinkBits = *linkBits
		cfg.Seed = *seed
		if *memLat > 0 {
			cfg.Mem.AccessLat = nocout.Cycle(*memLat)
		}
		if *memBW > 0 {
			// 64B per line at the 2 GHz core clock: cycles = 128 / (GB/s).
			period := int(math.Round(128 / *memBW))
			if period < 1 {
				period = 1
			}
			cfg.Mem.LinePeriod = nocout.Cycle(period)
		}
		cfgs[i] = cfg
		opts = append(opts, nocout.WithVariant(d.String(), cfg))
	}

	if *simParallel > 1 {
		opts = append(opts, nocout.WithSimParallelism(*simParallel))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	exp := nocout.NewExperiment(opts...)

	if *campaignDir != "" {
		return runCampaign(ctx, *campaignDir, exp, campaign.Options{
			Owner:                *campaignWorker,
			LeaseTTL:             *leaseTTL,
			Recompute:            *recompute,
			SimParallelism:       *simParallel,
			CheckpointDir:        *checkpointDir,
			RecomputeCheckpoints: *recomputeCkpts,
		}, *jsonOut, *csvOut)
	}

	var ckpts *nocout.CheckpointStore
	if *checkpointDir != "" {
		st, err := nocout.NewCheckpointStore(*checkpointDir)
		if err != nil {
			return err
		}
		st.Recompute = *recomputeCkpts
		ckpts = st
	}

	var rep *nocout.Report
	if *keepGoing {
		// KeepGoing records a broken point's error in its report row and
		// finishes the rest of the sweep instead of aborting.
		sw, err := exp.Sweep()
		if err != nil {
			return err
		}
		rep, err = (&nocout.Runner{KeepGoing: true, Checkpoints: ckpts}).Run(ctx, sw)
		if err != nil {
			return err
		}
	} else {
		sw, err := exp.Sweep()
		if err != nil {
			return err
		}
		rep, err = (&nocout.Runner{Checkpoints: ckpts}).Run(ctx, sw)
		if err != nil {
			return err
		}
	}

	if *jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	if *csvOut {
		return rep.WriteCSV(os.Stdout)
	}

	cells := len(ds) * len(ws)
	if len(hs) > 1 {
		cells *= len(hs)
	}
	if len(loads) > 0 {
		// A load sweep renames its cells by derived spec; the table is the
		// only sensible text rendering.
		cells *= len(loads)
	}
	if cells > 1 {
		fmt.Println(rep.Table())
	} else {
		res := rep.MustGet(ds[0].String(), ws[0].Name(), 0)
		fmt.Println(res)
		fmt.Printf("  LLC miss rate: %.1f%%   L1-I MPKI: %.1f   L1-D MPKI: %.1f\n",
			res.LLCMissRate*100, res.L1IMPKI, res.L1DMPKI)
	}
	for i, d := range ds {
		if area := nocout.Area(cfgs[i]); area.Total() > 0 {
			fmt.Printf("  %s NoC area: %v\n", d, area)
			// The per-workload power lines address report cells by plain
			// design name; a hierarchy sweep renames its variants
			// "design/hierarchy" and a load sweep renames workloads by
			// derived spec, so those breakdowns live in the table instead.
			if len(hs) <= 1 && len(loads) == 0 {
				for _, w := range ws {
					res := rep.MustGet(d.String(), w.Name(), 0)
					fmt.Printf("  %s NoC power (%s): %v\n", d, w.Name(), res.NoCPower)
				}
			}
		}
	}
	hlist := hs
	if len(hlist) == 0 {
		hlist = []nocout.HierarchyID{cfgs[0].Hierarchy}
	}
	for _, h := range hlist {
		cfg := cfgs[0]
		cfg.Hierarchy = h
		hp, err := nocout.HierarchyPhysical(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %s LLC: %v\n", h, hp)
	}
	return nil
}

// runCampaign runs one campaign worker over dir and, once every point of
// the manifest has a stored result, prints the merged report. A fresh
// directory is created from the sweep the flags describe; an existing one
// is resumed exactly as its manifest pins it (the sweep flags are
// ignored), so joining as a second worker is just `nocout -campaign dir`.
func runCampaign(ctx context.Context, dir string, exp *nocout.Experiment, opts campaign.Options, jsonOut, csvOut bool) error {
	c, err := campaign.Open(dir)
	if errors.Is(err, fs.ErrNotExist) {
		sw, serr := exp.Sweep()
		if serr != nil {
			return serr
		}
		c, err = campaign.Create(dir, sw)
	}
	if err != nil {
		return err
	}
	// Progress and the worker summary go to stderr so -json keeps stdout
	// as one clean Report document.
	opts.Progress = func(done, total int, p nocout.Point, _ nocout.Result) {
		fmt.Fprintf(os.Stderr, "nocout: campaign [%d/%d] %s\n", done, total, p)
	}
	stats, werr := c.Work(ctx, opts)
	fmt.Fprintf(os.Stderr, "nocout: campaign %s: %d points: %d computed, %d cached, %d failed (%d passes)\n",
		dir, stats.Points, stats.Computed, stats.Cached, stats.Failed, stats.Passes)
	if werr != nil {
		return fmt.Errorf("campaign interrupted (completed points are stored; resume with nocout -campaign %s): %w", dir, werr)
	}
	rep, err := c.Merge()
	if err != nil {
		return err
	}
	if jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	if csvOut {
		return rep.WriteCSV(os.Stdout)
	}
	fmt.Println(rep.Table())
	return nil
}
