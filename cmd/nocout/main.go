// Command nocout runs one CMP configuration under one scale-out workload
// and prints the measured metrics, as text or as a machine-readable
// Report (-json).
//
// Usage:
//
//	nocout -design nocout -workload "Web Search" -quality full
//	nocout -design mesh -cores 64 -linkbits 64 -workload "Data Serving"
//	nocout -design nocout -workload "Web Search" -json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"nocout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout: ")

	design := flag.String("design", "nocout", "interconnect: mesh | fbfly | nocout | ideal")
	wl := flag.String("workload", "Web Search", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	cores := flag.Int("cores", 64, "core count (power of two)")
	linkBits := flag.Int("linkbits", 128, "NoC link width in bits")
	quality := flag.String("quality", "quick", "quick | full")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit the structured Report as JSON")
	flag.Parse()

	if *list {
		for _, w := range nocout.Workloads() {
			fmt.Println(w)
		}
		return
	}

	d, err := nocout.ParseDesign(*design)
	if err != nil {
		log.Fatal(err)
	}
	q, err := nocout.ParseQuality(*quality)
	if err != nil {
		log.Fatal(err)
	}

	cfg := nocout.DefaultConfig(d)
	cfg.Cores = *cores
	cfg.LinkBits = *linkBits
	cfg.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := nocout.NewExperiment(
		nocout.WithTitle(fmt.Sprintf("%v / %s", d, *wl)),
		nocout.WithVariant(d.String(), cfg),
		nocout.WithWorkloads(*wl),
		nocout.WithQuality(q),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	res := rep.Results[0].Result
	fmt.Println(res)
	fmt.Printf("  LLC miss rate: %.1f%%   L1-I MPKI: %.1f   L1-D MPKI: %.1f\n",
		res.LLCMissRate*100, res.L1IMPKI, res.L1DMPKI)
	if d != nocout.Ideal {
		fmt.Printf("  NoC area: %v\n", nocout.Area(cfg))
		fmt.Printf("  NoC power: %v\n", res.NoCPower)
	}
}
