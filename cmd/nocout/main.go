// Command nocout runs one CMP configuration — or a sweep of interconnect
// designs — under one scale-out workload and prints the measured metrics,
// as text or as a machine-readable Report (-json).
//
// Usage:
//
//	nocout -design nocout -workload "Web Search" -quality full
//	nocout -design mesh -cores 64 -linkbits 64 -workload "Data Serving"
//	nocout -designs mesh,torus,cmesh,crossbar -workload "MapReduce-C"
//	nocout -cpuprofile cpu.pprof -quality full -workload "Data Serving"
//	nocout -list
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"nocout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout: ")
	// All work happens inside run so its defers — profile flushing in
	// particular — execute on every exit path, including errors and
	// interrupted runs (log.Fatal/os.Exit would skip them).
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	design := flag.String("design", "nocout", "interconnect organization (see -list)")
	designs := flag.String("designs", "", "comma-separated design sweep, overrides -design (see -list)")
	wl := flag.String("workload", "Web Search", "workload name (see -list)")
	list := flag.Bool("list", false, "list registered designs and workloads, then exit")
	cores := flag.Int("cores", 64, "core count (power of two)")
	linkBits := flag.Int("linkbits", 128, "NoC link width in bits")
	quality := flag.String("quality", "quick", "quick | full")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit the structured Report as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof evidence for perf PRs)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	if *list {
		// Both namespaces come from the registries, so user registrations
		// show up here with no CLI changes.
		fmt.Println("designs:")
		for _, d := range nocout.Designs() {
			org, err := nocout.OrganizationOf(d)
			if err != nil {
				return err
			}
			aliases := append([]string{strings.ToLower(org.Name())}, org.Aliases()...)
			fmt.Printf("  %-22s aliases: %s\n", org.Name(), strings.Join(aliases, ", "))
		}
		fmt.Println("workloads:")
		for _, w := range nocout.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		return nil
	}

	names := []string{*design}
	if *designs != "" {
		names = strings.Split(*designs, ",")
	}
	var ds []nocout.Design
	for _, name := range names {
		d, err := nocout.ParseDesign(name)
		if err != nil {
			return err
		}
		ds = append(ds, d)
	}
	q, err := nocout.ParseQuality(*quality)
	if err != nil {
		return err
	}

	opts := []nocout.Option{
		nocout.WithTitle(fmt.Sprintf("%s / %s", strings.Join(names, ","), *wl)),
		nocout.WithWorkloads(*wl),
		nocout.WithQuality(q),
	}
	cfgs := make([]nocout.Config, len(ds))
	for i, d := range ds {
		cfg := nocout.DefaultConfig(d)
		cfg.Cores = *cores
		cfg.LinkBits = *linkBits
		cfg.Seed = *seed
		cfgs[i] = cfg
		opts = append(opts, nocout.WithVariant(d.String(), cfg))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := nocout.NewExperiment(opts...).Run(ctx)
	if err != nil {
		return err
	}

	if *jsonOut {
		return rep.WriteJSON(os.Stdout)
	}

	if len(ds) > 1 {
		fmt.Println(rep.Table())
	}
	for i, d := range ds {
		res := rep.MustGet(d.String(), *wl, 0)
		if len(ds) == 1 {
			fmt.Println(res)
			fmt.Printf("  LLC miss rate: %.1f%%   L1-I MPKI: %.1f   L1-D MPKI: %.1f\n",
				res.LLCMissRate*100, res.L1IMPKI, res.L1DMPKI)
		}
		if area := nocout.Area(cfgs[i]); area.Total() > 0 {
			fmt.Printf("  %s NoC area: %v\n", d, area)
			fmt.Printf("  %s NoC power: %v\n", d, res.NoCPower)
		}
	}
	return nil
}
