// Command nocout runs one CMP configuration under one scale-out workload
// and prints the measured metrics.
//
// Usage:
//
//	nocout -design nocout -workload "Web Search" -quality full
//	nocout -design mesh -cores 64 -linkbits 64 -workload "Data Serving"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nocout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout: ")

	design := flag.String("design", "nocout", "interconnect: mesh | fbfly | nocout | ideal")
	wl := flag.String("workload", "Web Search", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	cores := flag.Int("cores", 64, "core count (power of two)")
	linkBits := flag.Int("linkbits", 128, "NoC link width in bits")
	quality := flag.String("quality", "quick", "quick | full")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if *list {
		for _, w := range nocout.Workloads() {
			fmt.Println(w)
		}
		return
	}

	var d nocout.Design
	switch strings.ToLower(*design) {
	case "mesh":
		d = nocout.Mesh
	case "fbfly", "flattened-butterfly":
		d = nocout.FBfly
	case "nocout", "noc-out":
		d = nocout.NOCOut
	case "ideal":
		d = nocout.Ideal
	default:
		log.Fatalf("unknown design %q", *design)
	}

	q := nocout.Quick
	if *quality == "full" {
		q = nocout.Full
	}

	cfg := nocout.DefaultConfig(d)
	cfg.Cores = *cores
	cfg.LinkBits = *linkBits
	cfg.Seed = *seed

	res, err := nocout.Run(cfg, *wl, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("  LLC miss rate: %.1f%%   L1-I MPKI: %.1f   L1-D MPKI: %.1f\n",
		res.LLCMissRate*100, res.L1IMPKI, res.L1DMPKI)
	if d != nocout.Ideal {
		fmt.Printf("  NoC area: %v\n", nocout.Area(cfg))
		fmt.Printf("  NoC power: %v\n", res.NoCPower)
	}
}
