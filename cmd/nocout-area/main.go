// Command nocout-area prints the NoC area model's view of the three
// organizations (Figure 8) and the equal-area link widths behind Figure 9.
package main

import (
	"flag"
	"fmt"

	"nocout"
	"nocout/internal/core"
	"nocout/internal/physic"
)

func main() {
	linkBits := flag.Int("linkbits", 128, "link width in bits")
	flag.Parse()

	fmt.Println(nocout.Figure8().Table())

	budget := physic.NOCOutTotalArea(core.DefaultConfig(), *linkBits).Total()
	fmt.Printf("Equal-area link widths at NOC-Out's %.2f mm² budget:\n", budget)
	for _, d := range []string{"mesh", "fbfly"} {
		w, a := physic.SolveWidthForArea(d, budget)
		fmt.Printf("  %-6s %3d bits  (%v)\n", d, w, a)
	}

	fmt.Println("\nNOC-Out composition (§6.2):")
	red, disp, llc := physic.NOCOutArea(core.DefaultConfig(), *linkBits)
	total := red.Add(disp).Add(llc).Total()
	fmt.Printf("  reduction trees:  %5.2f mm² (%2.0f%%)\n", red.Total(), red.Total()/total*100)
	fmt.Printf("  dispersion trees: %5.2f mm² (%2.0f%%)\n", disp.Total(), disp.Total()/total*100)
	fmt.Printf("  LLC butterfly:    %5.2f mm² (%2.0f%%)\n", llc.Total(), llc.Total()/total*100)
}
