// Command nocout-area prints the NoC area model's view of the registered
// interconnect organizations: the paper's Figure 8 breakdown, the
// equal-area link widths behind Figure 9, and the extended designs' areas,
// as text or JSON (-json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nocout"
	"nocout/internal/core"
	"nocout/internal/physic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout-area: ")

	linkBits := flag.Int("linkbits", 128, "link width in bits")
	jsonOut := flag.Bool("json", false, "emit the area model as JSON")
	flag.Parse()

	fig8 := nocout.Figure8()
	budget := physic.NOCOutTotalArea(core.DefaultConfig(), *linkBits).Total()
	red, disp, llc := physic.NOCOutArea(core.DefaultConfig(), *linkBits)

	type designArea struct {
		Design string           `json:"design"`
		Bits   int              `json:"bits"`
		Area   physic.Breakdown `json:"area"`
	}
	var equal []designArea
	for _, d := range []nocout.Design{nocout.Mesh, nocout.FBfly} {
		w, a := nocout.SolveWidthForArea(d, budget)
		equal = append(equal, designArea{Design: d.String(), Bits: w, Area: a})
	}

	// Every registered organization's area at the flag's link width; the
	// Ideal fabric reports its explicit zero-area wire-only model.
	var all []designArea
	for _, d := range nocout.Designs() {
		cfg := nocout.DefaultConfig(d)
		cfg.LinkBits = *linkBits
		all = append(all, designArea{Design: d.String(), Bits: *linkBits, Area: nocout.Area(cfg)})
	}

	if *jsonOut {
		doc := struct {
			Figure8    nocout.Figure8Result `json:"figure8"`
			BudgetMM2  float64              `json:"budget_mm2"`
			EqualArea  []designArea         `json:"equal_area_links"`
			Reduction  physic.Breakdown     `json:"nocout_reduction"`
			Dispersion physic.Breakdown     `json:"nocout_dispersion"`
			LLC        physic.Breakdown     `json:"nocout_llc"`
			AllDesigns []designArea         `json:"all_designs"`
		}{Figure8: fig8, BudgetMM2: budget, EqualArea: equal,
			Reduction: red, Dispersion: disp, LLC: llc, AllDesigns: all}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println(fig8.Table())

	fmt.Printf("Equal-area link widths at NOC-Out's %.2f mm² budget:\n", budget)
	for _, e := range equal {
		fmt.Printf("  %-20s %3d bits  (%v)\n", e.Design, e.Bits, e.Area)
	}

	fmt.Println("\nNOC-Out composition (§6.2):")
	total := red.Add(disp).Add(llc).Total()
	fmt.Printf("  reduction trees:  %5.2f mm² (%2.0f%%)\n", red.Total(), red.Total()/total*100)
	fmt.Printf("  dispersion trees: %5.2f mm² (%2.0f%%)\n", disp.Total(), disp.Total()/total*100)
	fmt.Printf("  LLC butterfly:    %5.2f mm² (%2.0f%%)\n", llc.Total(), llc.Total()/total*100)

	fmt.Printf("\nAll registered designs at %d-bit links:\n", *linkBits)
	for _, e := range all {
		fmt.Printf("  %-20s %v\n", e.Design, e.Area)
	}
}
