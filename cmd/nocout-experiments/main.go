// Command nocout-experiments regenerates the paper's evaluation figures and
// tables as text reports.
//
// Usage:
//
//	nocout-experiments                 # everything, quick quality
//	nocout-experiments -fig 7 -quality full
//	nocout-experiments -fig 1,8,9
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"nocout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout-experiments: ")

	figs := flag.String("fig", "all", "comma-separated: 1,4,7,8,9,power,banking,scaling,table1 or all")
	quality := flag.String("quality", "quick", "quick | full")
	flag.Parse()

	q := nocout.Quick
	if *quality == "full" {
		q = nocout.Full
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"table1", "1", "4", "7", "8", "9", "power", "banking", "scaling"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	run := func(name string, fn func() fmt.Stringer) {
		if !want[name] {
			return
		}
		start := time.Now()
		fmt.Println(fn().String())
		fmt.Printf("  [%s: %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() fmt.Stringer { return nocout.Table1() })
	run("1", func() fmt.Stringer { return nocout.Figure1(q).Table() })
	run("4", func() fmt.Stringer { return nocout.Figure4(q).Table() })
	run("7", func() fmt.Stringer { return nocout.Figure7(q).Table() })
	run("8", func() fmt.Stringer { return nocout.Figure8().Table() })
	run("9", func() fmt.Stringer { return nocout.Figure9(q).Table() })
	run("power", func() fmt.Stringer { return nocout.PowerStudy(q).Table() })
	run("banking", func() fmt.Stringer { return nocout.BankingAblation(q).Table() })
	run("scaling", func() fmt.Stringer { return nocout.ScalingAblation(q).Table() })
}
