// Command nocout-experiments regenerates the paper's evaluation figures and
// tables, as text reports or one JSON document (-json).
//
// Usage:
//
//	nocout-experiments                 # everything, quick quality
//	nocout-experiments -fig 7 -quality full
//	nocout-experiments -fig 1,8,9 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"nocout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocout-experiments: ")

	figs := flag.String("fig", "all", "comma-separated: 1,4,7,8,9,power,banking,scaling,table1 or all")
	quality := flag.String("quality", "quick", "quick | full")
	jsonOut := flag.Bool("json", false, "emit the structured results as one JSON object")
	flag.Parse()

	q, err := nocout.ParseQuality(*quality)
	if err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"table1", "1", "4", "7", "8", "9", "power", "banking", "scaling"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	// Each figure is a declarative sweep spec over the experiment engine;
	// run returns the structured result for -json and a Table for text.
	out := map[string]any{}
	run := func(name string, fn func() (any, fmt.Stringer)) {
		if !want[name] {
			return
		}
		start := time.Now()
		v, table := fn()
		if *jsonOut {
			out[name] = v
			fmt.Fprintf(os.Stderr, "  [%s: %.1fs]\n", name, time.Since(start).Seconds())
			return
		}
		fmt.Println(table.String())
		fmt.Printf("  [%s: %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() (any, fmt.Stringer) { t := nocout.Table1(); return t, t })
	run("1", func() (any, fmt.Stringer) { r := nocout.Figure1(q); return r, r.Table() })
	run("4", func() (any, fmt.Stringer) { r := nocout.Figure4(q); return r, r.Table() })
	run("7", func() (any, fmt.Stringer) { r := nocout.Figure7(q); return r, r.Table() })
	run("8", func() (any, fmt.Stringer) { r := nocout.Figure8(); return r, r.Table() })
	run("9", func() (any, fmt.Stringer) { r := nocout.Figure9(q); return r, r.Table() })
	run("power", func() (any, fmt.Stringer) { r := nocout.PowerStudy(q); return r, r.Table() })
	run("banking", func() (any, fmt.Stringer) { r := nocout.BankingAblation(q); return r, r.Table() })
	run("scaling", func() (any, fmt.Stringer) { r := nocout.ScalingAblation(q); return r, r.Table() })

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
}
