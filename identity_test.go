package nocout

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenPoint is a fixed, fully resolved point; the golden key below pins
// its Key bytes across releases.
func goldenPoint() Point {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8
	cfg.Seed = 1
	return Point{
		Variant:  "Mesh",
		Design:   Mesh,
		Workload: "Web Search",
		Cores:    8,
		Seed:     1,
		Config:   cfg,
	}
}

// TestPointKeyGolden pins the key schema: campaign caches are addressed
// by these strings, so any change to what Key covers or how it
// canonicalizes MUST bump KeyVersion (never silently remap old caches) —
// and then update this golden.
func TestPointKeyGolden(t *testing.T) {
	const golden = "pt1-97d73d43d2a9e220b183a284a259cf2f007050dbf15090687da1793a827221b0"
	key, err := goldenPoint().Key(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if key != golden {
		t.Fatalf("golden point key drifted:\n got  %s\n want %s\nif the key schema changed deliberately, bump KeyVersion and update this golden", key, golden)
	}
}

// TestPointKeyRoundTrip checks the canonicalization guarantee: a Point
// decoded from a report or campaign manifest keys identically to the
// original, including uint64 seeds beyond float64 precision and
// trace-backed workloads.
func TestPointKeyRoundTrip(t *testing.T) {
	p := goldenPoint()
	p.Seed = 1<<63 + 3 // would corrupt through a float64 round trip
	p.Config.Seed = p.Seed
	orig, err := p.Key(tiny)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.wl != nil {
		t.Fatal("a decoded point must rehydrate through the registry")
	}
	got, err := back.Key(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("key not JSON-round-trip stable:\n before %s\n after  %s", orig, got)
	}
}

// TestPointKeySensitivity checks that every ingredient of a point's
// identity changes the key — a cache hit must never alias a different
// measurement.
func TestPointKeySensitivity(t *testing.T) {
	base := goldenPoint()
	baseKey, err := base.Key(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(baseKey, KeyVersion+"-") || len(baseKey) != len(KeyVersion)+1+64 {
		t.Fatalf("key shape: %q", baseKey)
	}

	mutations := map[string]func(*Point){
		"seed":      func(p *Point) { p.Seed = 2; p.Config.Seed = 2 },
		"cores":     func(p *Point) { p.Config.Cores = 16 },
		"linkbits":  func(p *Point) { p.Config.LinkBits *= 2 },
		"hierarchy": func(p *Point) { p.Hierarchy = 1; p.Config.Hierarchy = 1 },
		"unlimited": func(p *Point) { p.Unlimited = true },
		"workload":  func(p *Point) { p.Workload = "Data Serving" },
		"mem":       func(p *Point) { p.Config.Mem.AccessLat += 30 },
	}
	for name, mutate := range mutations {
		p := base
		mutate(&p)
		key, err := p.Key(tiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	q := tiny
	q.Window *= 2
	if key, err := base.Key(q); err != nil || key == baseKey {
		t.Errorf("changing quality did not change the key (err %v)", err)
	}

	// The variant label is part of identity too (it names the report
	// cell), but an identical point must key identically — no hidden
	// nondeterminism.
	again, err := goldenPoint().Key(tiny)
	if err != nil || again != baseKey {
		t.Fatalf("identical points key differently: %s vs %s (err %v)", again, baseKey, err)
	}
}

// TestPointKeyErrors: a point whose workload this process cannot resolve
// must refuse to produce a key rather than alias by name alone.
func TestPointKeyErrors(t *testing.T) {
	p := goldenPoint()
	p.Workload = "No Such Workload"
	if _, err := p.Key(tiny); err == nil {
		t.Fatal("unknown workload must not key")
	}
	p = goldenPoint()
	p.WorkloadSpec = "trace:/no/such/file.noctrace"
	if _, err := p.Key(tiny); err == nil {
		t.Fatal("unreadable trace spec must not key")
	}
}
