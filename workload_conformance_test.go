package nocout

import (
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// This file is the cross-workload conformance suite: every registered
// workload — builtin synthetic, the Mix/Phased examples, and anything
// added through RegisterWorkload — is held to the same behavioral
// contract, and the trace facility is proven end to end (a capture of a
// builtin reproduces the builtin's Result exactly through Run, a sweep,
// and the "trace:<path>" scheme).

// TestWorkloadRegistryComplete pins the registered workload space: the
// paper's six in figure order, then the example families.
func TestWorkloadRegistryComplete(t *testing.T) {
	want := []string{"Data Serving", "MapReduce-C", "MapReduce-W", "SAT Solver",
		"Web Frontend", "Web Search", "Consolidated", "MapReduce-Phased",
		"Open Poisson", "Open MMPP", "Open Burst"}
	ws := RegisteredWorkloads()
	if len(ws) < len(want) {
		t.Fatalf("registry has %d workloads, want >= %d", len(ws), len(want))
	}
	for i, name := range want {
		if ws[i].Name() != name {
			t.Errorf("RegisteredWorkloads()[%d] = %q, want %q", i, ws[i].Name(), name)
		}
	}
	// The satellite aliases the issue names explicitly.
	for alias, name := range map[string]string{
		"data-serving": "Data Serving",
		"websearch":    "Web Search",
		"mix":          "Consolidated",
		"phased":       "MapReduce-Phased",
		"open-poisson": "Open Poisson",
		"open-mmpp":    "Open MMPP",
		"open-burst":   "Open Burst",
	} {
		w, err := ParseWorkload(alias)
		if err != nil || w.Name() != name {
			t.Errorf("ParseWorkload(%q) = (%v, %v), want %q", alias, w, err, name)
		}
	}
}

// TestWorkloadConformance is the cross-workload contract: deterministic
// streams, a sane scalability limit, valid core parameters with the
// seed threaded through, a prewarmable layout, and name round-trips
// through the registry.
func TestWorkloadConformance(t *testing.T) {
	for _, w := range RegisteredWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()

			// Name and alias round-trips, case-insensitively.
			for _, spelling := range append([]string{w.Name(), strings.ToUpper(w.Name())}, w.Aliases()...) {
				got, err := ParseWorkload(spelling)
				if err != nil || got.Name() != w.Name() {
					t.Fatalf("ParseWorkload(%q) = (%v, %v), want %q", spelling, got, err, w.Name())
				}
			}

			if mc := w.MaxCores(); mc < 1 {
				t.Fatalf("MaxCores = %d", mc)
			}

			// CoreParams: valid for the cpu model, seed threaded through,
			// deterministic.
			for _, core := range []int{0, 1, 63} {
				cp := w.CoreParams(core, 7)
				if cp.Seed != 7 {
					t.Fatalf("core %d: seed not threaded: %+v", core, cp)
				}
				if cp.Width < 1 || cp.ROB < cp.Width || cp.BaseCPI < 1.0/float64(cp.Width) ||
					math.IsNaN(cp.BaseCPI) || cp.DepChance < 0 || cp.DepChance > 1 {
					t.Fatalf("core %d: invalid params %+v", core, cp)
				}
				if cp != w.CoreParams(core, 7) {
					t.Fatalf("core %d: CoreParams not deterministic", core)
				}
			}

			// Streams: same (core, seed) => identical instruction sequence.
			// KindIdle (3) is the open-system "no work pending" answer and is
			// as valid as the ALU/load/store kinds.
			a, b := w.StreamFor(1, 42), w.StreamFor(1, 42)
			for i := 0; i < 2000; i++ {
				x, y := a.Next(), b.Next()
				if x != y {
					t.Fatalf("stream diverged at %d: %+v vs %+v", i, x, y)
				}
				if x.Kind > 3 {
					t.Fatalf("instruction %d has invalid kind %d", i, x.Kind)
				}
			}

			// Layout: prewarmable shared regions and per-core locals.
			lay := w.Layout()
			if lay.Instr.Size == 0 {
				t.Fatal("layout has no instruction footprint")
			}
			if lay.Local == nil {
				t.Fatal("layout has no local-region function")
			}
			for _, core := range []int{0, 1, w.MaxCores() - 1} {
				if r := lay.Local(core); r.Size == 0 {
					t.Fatalf("core %d has an empty local region", core)
				}
			}
		})
	}
}

// TestWorkloadsThroughEngineAndJSON measures every registered workload
// through the sweep engine on a small mesh and round-trips the Report
// through JSON: results (per-member breakdowns included) must survive
// encoding, and repeated runs must be bit-identical.
func TestWorkloadsThroughEngineAndJSON(t *testing.T) {
	spec := func() *Experiment {
		return NewExperiment(
			WithTitle("workload conformance"),
			WithVariant("Mesh", func() Config {
				cfg := DefaultConfig(Mesh)
				cfg.Cores = 8
				return cfg
			}()),
			WithQuality(confQ), // all registered workloads: the default set
		)
	}
	rep, err := spec().Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range RegisteredWorkloads() {
		res, ok := rep.Get("Mesh", w.Name(), 0)
		if !ok || res.AggIPC <= 0 {
			t.Fatalf("%s: no measurement (%v, %v)", w.Name(), res, ok)
		}
	}

	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if !reflect.DeepEqual(rep.Results[i].Result, back.Results[i].Result) {
			t.Fatalf("result %d did not survive JSON:\n%+v\n%+v", i, rep.Results[i].Result, back.Results[i].Result)
		}
	}

	again, err := spec().Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Results, again.Results) {
		t.Fatal("workload sweep is not deterministic")
	}
}

// TestMixPerMemberBreakdown checks the heterogeneous accounting: the
// Consolidated example reports one IPC per member and they sum to the
// aggregate.
func TestMixPerMemberBreakdown(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	res, err := Run(cfg, "mix", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkloadIPC) != 3 {
		t.Fatalf("breakdown = %v, want the three Consolidated members", res.PerWorkloadIPC)
	}
	sum := 0.0
	for name, ipc := range res.PerWorkloadIPC {
		if ipc <= 0 {
			t.Fatalf("member %s has no throughput", name)
		}
		sum += ipc
	}
	if math.Abs(sum-res.AggIPC) > 1e-9 {
		t.Fatalf("member IPCs sum to %.6f, aggregate is %.6f", sum, res.AggIPC)
	}
	if !strings.Contains(res.String(), "Data Serving") {
		t.Fatalf("String() should surface the breakdown: %s", res)
	}

	// Homogeneous runs must stay breakdown-free.
	homog, err := Run(cfg, "MapReduce-C", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if homog.PerWorkloadIPC != nil {
		t.Fatalf("homogeneous run grew a breakdown: %v", homog.PerWorkloadIPC)
	}
}

// TestTraceReplayReproducesBuiltin is the trace acceptance contract: a
// capture recorded from a builtin workload, saved to disk, and resolved
// through the "trace:<path>" scheme reproduces the builtin's
// Quick-quality Result bit for bit — through Run and through a
// NewExperiment sweep (the CLI resolves through the same ParseWorkload
// path).
func TestTraceReplayReproducesBuiltin(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16

	// A quick-quality run steps Warmup+Window cycles and fetch consumes
	// at most 3 instructions per cycle, so this recording never wraps.
	perCore := int(Quick.Warmup+Quick.Window) * 3
	src, err := ParseWorkload("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := RecordWorkload(src, cfg.Cores, perCore, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mrc.noctrace")
	if err := cap.Save(path); err != nil {
		t.Fatal(err)
	}

	want, err := Run(cfg, "MapReduce-C", Quick)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, "trace:"+path, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("trace replay diverged from the builtin:\nbuiltin %+v\nreplay  %+v", want, got)
	}

	rep, err := NewExperiment(
		WithTitle("trace replay"),
		WithVariant("Mesh", cfg),
		WithWorkloads("trace:"+path),
		WithQuality(Quick),
	).Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// The replay reports the recorded source's name.
	swept := rep.MustGet("Mesh", "MapReduce-C", 0)
	if !reflect.DeepEqual(want, swept) {
		t.Fatalf("sweep replay diverged from the builtin:\nbuiltin %+v\nreplay  %+v", want, swept)
	}
}

// TestNOC3TraceReplayReproducesBuiltin is the NOC3 acceptance contract:
// a workload recorded straight to the streaming container, a NOC2
// capture converted to NOC3, and the original NOC2 file all resolve
// through "trace:<path>" and reproduce the builtin's Quick-quality
// Result bit for bit — O(block) replay changes memory behaviour, never
// measurements.
func TestNOC3TraceReplayReproducesBuiltin(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	perCore := int(Quick.Warmup+Quick.Window) * 3
	src, err := ParseWorkload("MapReduce-C")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	noc2 := filepath.Join(dir, "mrc2.noctrace")
	cap, err := RecordWorkload(src, cfg.Cores, perCore, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := cap.Save(noc2); err != nil {
		t.Fatal(err)
	}
	noc3 := filepath.Join(dir, "mrc3.noctrace")
	if err := RecordTraceFile(noc3, src, cfg.Cores, perCore, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	conv := filepath.Join(dir, "mrc3conv.noctrace")
	if err := ConvertTrace(noc2, conv); err != nil {
		t.Fatal(err)
	}

	want, err := Run(cfg, "MapReduce-C", Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{noc2, noc3, conv} {
		got, err := Run(cfg, "trace:"+path, Quick)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("replay of %s diverged from the builtin:\nbuiltin %+v\nreplay  %+v", path, want, got)
		}
	}

	// The formats fingerprint identically, so a Point's content key — and
	// with it every campaign/checkpoint cache entry — survives a NOC2 ->
	// NOC3 migration.
	w2, err := LoadTrace(noc2)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := LoadTrace(noc3)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := FingerprintWorkload(w2)
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := FingerprintWorkload(w3)
	if err != nil {
		t.Fatal(err)
	}
	if string(fp2) != string(fp3) {
		t.Fatalf("fingerprints diverge across formats:\n%s\n%s", fp2, fp3)
	}
}

// TestNOC3TraceReplayPreservesMixBreakdown: a NOC3 recording of a
// heterogeneous workload replays with the recorded member attribution.
func TestNOC3TraceReplayPreservesMixBreakdown(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8
	mix, err := ParseWorkload("Consolidated")
	if err != nil {
		t.Fatal(err)
	}
	perCore := int(confQ.Warmup+confQ.Window) * 3
	path := filepath.Join(t.TempDir(), "mix3.noctrace")
	if err := RecordTraceFile(path, mix, cfg.Cores, perCore, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	tf, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	want := RunWorkload(cfg, mix, confQ)
	got := RunWorkload(cfg, tf, confQ)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("NOC3 mix replay diverged:\nlive   %+v\nreplay %+v", want, got)
	}
	if len(got.PerWorkloadIPC) != 3 {
		t.Fatalf("replayed breakdown = %v", got.PerWorkloadIPC)
	}
}

// TestTraceReplayPreservesMixBreakdown: a capture of a heterogeneous
// workload replays with the recorded member attribution.
func TestTraceReplayPreservesMixBreakdown(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 8
	mix, err := ParseWorkload("Consolidated")
	if err != nil {
		t.Fatal(err)
	}
	perCore := int(confQ.Warmup+confQ.Window) * 3
	cap, err := RecordWorkload(mix, cfg.Cores, perCore, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want := RunWorkload(cfg, mix, confQ)
	got := RunWorkload(cfg, cap, confQ)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mix capture replay diverged:\nlive   %+v\nreplay %+v", want, got)
	}
	if len(got.PerWorkloadIPC) != 3 {
		t.Fatalf("replayed breakdown = %v", got.PerWorkloadIPC)
	}
}

// TestUnlimitedWorkloadFacade pins the cap-lifting wrapper's public
// behaviour: RunUnlimited enables every core for a 16-core-limited
// workload without touching the underlying registration.
func TestUnlimitedWorkloadFacade(t *testing.T) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 32
	res, err := RunUnlimited(cfg, "Web Search", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveCores != 32 {
		t.Fatalf("unlimited run enabled %d cores, want 32", res.ActiveCores)
	}
	capped, err := Run(cfg, "Web Search", confQ)
	if err != nil {
		t.Fatal(err)
	}
	if capped.ActiveCores != 16 {
		t.Fatalf("the registered workload must stay capped at 16, got %d", capped.ActiveCores)
	}
}
