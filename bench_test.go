package nocout

import (
	"strings"
	"testing"
)

// benchQ trades statistical tightness for runtime; the cmd/nocout-experiments
// tool runs the same experiments at Full quality.
var benchQ = Quality{Warmup: 8000, Window: 14000, Seeds: 1}

// BenchmarkFigure1 regenerates Figure 1: per-core performance vs core count
// for ideal and mesh interconnects (Data Serving, MapReduce-W).
// Paper anchor: ~22% mesh-vs-ideal gap at 64 cores.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Figure1(benchQ)
		b.ReportMetric(r.GapAt64*100, "gap@64cores,%")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
	// 2 designs x 2 workloads x 7 core counts, one seed of warmup+window
	// cycles each; the per-simulated-cycle rate is the kernel's perf
	// trajectory metric (CI archives it as BENCH_kernel.json).
	simCycles := int64(2*2*7) * int64(benchQ.Warmup+benchQ.Window) * int64(benchQ.Seeds) * int64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles), "ns/simcycle")
}

// BenchmarkFigure4 regenerates Figure 4: % of LLC accesses triggering a
// snoop. Paper anchor: mean ~2%, all workloads below ~4.5%.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Figure4(benchQ)
		b.ReportMetric(r.MeanPct, "mean-snoop,%")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: system performance normalized to
// the mesh at fixed 128-bit links. Paper anchors: fbfly +17% gmean over
// mesh; NOC-Out matches fbfly.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Figure7(benchQ)
		b.ReportMetric(r.GMean["Flattened Butterfly"], "fbfly/mesh")
		b.ReportMetric(r.GMean["NOC-Out"], "nocout/mesh")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
	// 3 variants x 6 workloads, one seed of warmup+window cycles each (see
	// BenchmarkFigure1 for the role of this metric).
	simCycles := int64(3*6) * int64(benchQ.Warmup+benchQ.Window) * int64(benchQ.Seeds) * int64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles), "ns/simcycle")
}

// BenchmarkFigure8 regenerates Figure 8: NoC area breakdown. Paper anchors:
// mesh ~3.5 mm², fbfly ~23 mm², NOC-Out ~2.5 mm².
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Figure8()
		b.ReportMetric(r.Breakdowns[0].Total(), "mesh,mm2")
		b.ReportMetric(r.Breakdowns[1].Total(), "fbfly,mm2")
		b.ReportMetric(r.Breakdowns[2].Total(), "nocout,mm2")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: performance under NOC-Out's area
// budget. Paper anchors: NOC-Out +19% over mesh, +65% over fbfly.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Figure9(benchQ)
		b.ReportMetric(r.GMean["NOC-Out"], "nocout/mesh")
		b.ReportMetric(r.GMean["NOC-Out"]/r.GMean["Flattened Butterfly"], "nocout/fbfly")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}

// BenchmarkPowerStudy regenerates the §6.4 power analysis. Paper anchors:
// mesh 1.8 W, fbfly 1.6 W, NOC-Out 1.3 W.
func BenchmarkPowerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := PowerStudy(benchQ)
		for j, d := range r.Designs {
			unit := strings.ReplaceAll(d, " ", "-") + ",W"
			b.ReportMetric(r.Power[j].Total(), unit)
		}
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}

// BenchmarkBankingAblation regenerates the §4.3 banking study. Paper anchor:
// four cores per bank within ~2% of one bank per core.
func BenchmarkBankingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := BankingAblation(benchQ)
		worst := 1.0
		for _, v := range r.Normalized {
			if v < worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "worst-vs-most-banked")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}

// BenchmarkScalingAblation regenerates the §7.1 scalability discussion:
// 128-core NOC-Out via concentration and via express links.
func BenchmarkScalingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ScalingAblation(benchQ)
		b.ReportMetric(r.PerCoreIPC[1]/r.PerCoreIPC[0], "conc2-vs-base")
		if i == 0 {
			b.Log("\n" + r.Table().String())
		}
	}
}
