// Latency study: the paper's motivating observation (§2.1) is that
// scale-out workloads stall on instruction fetches served by the LLC, so
// per-core performance degrades as the interconnect adds latency. This
// example sweeps all four organizations on Data Serving — the most
// latency-sensitive workload — and reports where the cycles go.
package main

import (
	"context"
	"fmt"
	"log"

	"nocout"
)

func main() {
	designs := []nocout.Design{nocout.Ideal, nocout.NOCOut, nocout.FBfly, nocout.Mesh}

	rep, err := nocout.NewExperiment(
		nocout.WithTitle("Data Serving latency sensitivity"),
		nocout.WithDesigns(designs...),
		nocout.WithWorkloads("Data Serving"),
		nocout.WithQuality(nocout.Quick),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Data Serving, 64 cores: sensitivity to interconnect latency")
	fmt.Println("------------------------------------------------------------")
	fmt.Printf("%-20s %10s %12s %14s\n", "design", "agg IPC", "net latency", "LLC miss rate")

	for _, d := range designs {
		res := rep.MustGet(d.String(), "Data Serving", 0)
		fmt.Printf("%-20v %10.2f %9.1f cy %13.1f%%\n",
			d, res.AggIPC, res.AvgNetLatency, res.LLCMissRate*100)
	}

	fmt.Println()
	ideal := rep.MustGet(nocout.Ideal.String(), "Data Serving", 0).AggIPC
	for _, d := range []nocout.Design{nocout.NOCOut, nocout.Mesh} {
		res := rep.MustGet(d.String(), "Data Serving", 0)
		fmt.Printf("%v achieves %.0f%% of the ideal fabric's throughput\n",
			d, res.AggIPC/ideal*100)
	}
}
