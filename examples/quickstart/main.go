// Quickstart: declare a two-design sweep with the experiment engine, run
// it, and print the headline metrics plus NOC-Out's speedup over the
// tiled mesh.
package main

import (
	"context"
	"fmt"
	"log"

	"nocout"
)

func main() {
	rep, err := nocout.NewExperiment(
		nocout.WithTitle("NOC-Out quickstart (MapReduce-C)"),
		nocout.WithDesigns(nocout.NOCOut, nocout.Mesh),
		nocout.WithWorkloads("MapReduce-C"),
		nocout.WithQuality(nocout.Quick),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep.Table())

	res := rep.MustGet("NOC-Out", "MapReduce-C", 0)
	fmt.Printf("NoC area:  %v\n", nocout.Area(nocout.DefaultConfig(nocout.NOCOut)))
	fmt.Printf("NoC power: %v\n", res.NoCPower)

	mesh := rep.MustGet("Mesh", "MapReduce-C", 0)
	fmt.Printf("\nSpeedup over the tiled mesh: %.2fx (paper: NOC-Out ≈ +17%% gmean)\n",
		res.AggIPC/mesh.AggIPC)
}
