// Quickstart: build the paper's 64-core NOC-Out chip, run a scale-out
// workload, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"nocout"
)

func main() {
	cfg := nocout.DefaultConfig(nocout.NOCOut)

	res, err := nocout.Run(cfg, "MapReduce-C", nocout.Quick)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NOC-Out quickstart")
	fmt.Println("------------------")
	fmt.Println(res)
	fmt.Printf("NoC area:  %v\n", nocout.Area(cfg))
	fmt.Printf("NoC power: %v\n", res.NoCPower)

	// Compare against the mesh baseline on the same workload.
	mesh, err := nocout.Run(nocout.DefaultConfig(nocout.Mesh), "MapReduce-C", nocout.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSpeedup over the tiled mesh: %.2fx (paper: NOC-Out ≈ +17%% gmean)\n",
		res.AggIPC/mesh.AggIPC)
}
