// Scaling study (§7.1): grow NOC-Out from 64 to 128 cores two ways —
// concentration (two cores per tree port) and taller columns, with and
// without express links that let distant cores bypass intermediate tree
// nodes. Each variant is one WithVariant entry in a single sweep, with
// the workload's software scalability cap lifted (WithUnlimitedCores).
package main

import (
	"context"
	"fmt"
	"log"

	"nocout"
)

func main() {
	type variant struct {
		name string
		org  nocout.NOCOutOrg
	}
	variants := []variant{
		{"64-core baseline (8 cols x 4 rows/side)", nocout.NOCOutOrg{}},
		{"128-core via concentration 2", nocout.NOCOutOrg{Columns: 8, RowsPerSide: 4, Concentration: 2}},
		{"128-core via 8 rows/side", nocout.NOCOutOrg{Columns: 8, RowsPerSide: 8}},
		{"128-core, 8 rows/side + express links", nocout.NOCOutOrg{Columns: 8, RowsPerSide: 8, ExpressFrom: 4}},
	}

	opts := []nocout.Option{
		nocout.WithTitle("NOC-Out scalability (§7.1), SAT Solver"),
		nocout.WithWorkloads("SAT Solver"),
		nocout.WithUnlimitedCores(),
		nocout.WithQuality(nocout.Quick),
	}
	for _, v := range variants {
		cfg := nocout.DefaultConfig(nocout.NOCOut)
		org := v.org.WithDefaults()
		cfg.NOCOut = org
		cfg.Cores = org.NumCores()
		// Keep the chip balanced: off-die bandwidth scales with cores.
		cfg.MemChannels = 4 * cfg.Cores / 64
		opts = append(opts, nocout.WithVariant(v.name, cfg))
	}

	rep, err := nocout.NewExperiment(opts...).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NOC-Out scalability (§7.1), SAT Solver")
	fmt.Println("---------------------------------------")
	fmt.Printf("%-42s %8s %14s %12s\n", "variant", "cores", "per-core IPC", "net latency")

	for _, v := range variants {
		res := rep.MustGet(v.name, "SAT Solver", 0)
		fmt.Printf("%-42s %8d %14.3f %9.1f cy\n",
			v.name, res.ActiveCores, res.PerCoreIPC, res.AvgNetLatency)
	}
	fmt.Println("\nConcentration doubles the core count at nearly the same network cost;")
	fmt.Println("express links recover the tree latency of the taller columns.")
}
