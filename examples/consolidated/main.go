// Consolidated scenarios through the behavioral Workload API: a
// multiprogrammed mix with its per-member IPC breakdown, a custom
// phased (map→shuffle) schedule built from the calibration blocks, and
// a record-then-replay round trip through the "trace:<path>" scheme —
// the three workload families the registry serves beyond the paper's
// six synthetics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"nocout"
)

func main() {
	log.SetFlags(0)
	// All work happens in run so its defers — the temp-dir cleanup in
	// particular — execute on error paths too (log.Fatal would skip them).
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := nocout.DefaultConfig(nocout.NOCOut)
	cfg.Cores = 16

	// A phased schedule is just data: calibrations plus instruction
	// counts. This one stretches the builtin example's shuffle phase.
	mapPhase, err := nocout.WorkloadParamsOf("mapreduce-c")
	if err != nil {
		return err
	}
	shufflePhase, err := nocout.WorkloadParamsOf("mapreduce-w")
	if err != nil {
		return err
	}
	heavyShuffle := nocout.NewPhased("Shuffle-Heavy MapReduce",
		nocout.Phase{Params: mapPhase, Instrs: 20000},
		nocout.Phase{Params: shufflePhase, Instrs: 60000},
	)

	rep, err := nocout.NewExperiment(
		nocout.WithTitle("Workload families on 16-core NOC-Out"),
		nocout.WithVariant("NOC-Out", cfg),
		nocout.WithWorkloads("websearch", "mix", "phased"), // aliases resolve
		nocout.WithWorkloadValues(heavyShuffle),            // unregistered values sweep too
		nocout.WithQuality(nocout.Quick),
	).Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())

	// The mix result carries one IPC per member workload.
	mix := rep.MustGet("NOC-Out", "Consolidated", 0)
	fmt.Println("Consolidated per-member IPC:")
	members := make([]string, 0, len(mix.PerWorkloadIPC))
	for name := range mix.PerWorkloadIPC {
		members = append(members, name)
	}
	sort.Strings(members)
	for _, name := range members {
		fmt.Printf("  %-14s %.2f\n", name, mix.PerWorkloadIPC[name])
	}

	// Record Web Search once, replay it through the same Run path; a
	// recording that covers the run reproduces the live Result exactly.
	ws, err := nocout.ParseWorkload("Web Search")
	if err != nil {
		return err
	}
	capture, err := nocout.RecordWorkload(ws, cfg.Cores, int(nocout.Quick.Warmup+nocout.Quick.Window)*3, cfg.Seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "nocout-trace")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "websearch.noctrace")
	if err := capture.Save(path); err != nil {
		return err
	}

	live, err := nocout.Run(cfg, "Web Search", nocout.Quick)
	if err != nil {
		return err
	}
	replay, err := nocout.Run(cfg, "trace:"+path, nocout.Quick)
	if err != nil {
		return err
	}
	fmt.Printf("\nlive:   %v\nreplay: %v\nexact reproduction: %v\n",
		live, replay, reflect.DeepEqual(live, replay))
	return nil
}
