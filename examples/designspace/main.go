// Design-space exploration in the spirit of the Scale-Out Processor
// methodology the paper builds on (§2.2): sweep core count for a fixed
// 8MB LLC across five registered interconnect organizations and report
// throughput and throughput per unit of NoC area — the cost-benefit
// analysis that motivates NOC-Out's existence. The crossbar column shows
// the §2.2 story directly: delay-optimal at 16 cores, crushed by its
// quadratic switch area at 64.
//
// The whole study is one declarative sweep over the design registry; the
// NOC-Out organization auto-shapes its tree/LLC grid to each core count.
package main

import (
	"context"
	"fmt"
	"log"

	"nocout"
)

func main() {
	counts := []int{16, 32, 64}
	designs := []nocout.Design{nocout.Mesh, nocout.NOCOut, nocout.Torus, nocout.CMesh, nocout.Crossbar}
	rep, err := nocout.NewExperiment(
		nocout.WithTitle("Scale-out design space (MapReduce-W)"),
		nocout.WithDesigns(designs...),
		nocout.WithWorkloads("MapReduce-W"),
		nocout.WithCoreCounts(counts...),
		nocout.WithQuality(nocout.Quick),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scale-out design space: throughput vs interconnect cost (MapReduce-W)")
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-8s %-10s %10s %12s %16s\n", "cores", "design", "agg IPC", "NoC mm²", "IPC per NoC mm²")

	for _, n := range counts {
		for _, d := range designs {
			pr, ok := rep.GetPoint(d.String(), "MapReduce-W", n)
			if !ok {
				log.Fatalf("missing point %v/%d", d, n)
			}
			// The point carries its resolved config for the area model.
			area := nocout.Area(pr.Point.Config).Total()
			fmt.Printf("%-8d %-10v %10.2f %12.2f %16.2f\n",
				n, d, pr.Result.AggIPC, area, pr.Result.AggIPC/area)
		}
	}
}
