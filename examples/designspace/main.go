// Design-space exploration in the spirit of the Scale-Out Processor
// methodology the paper builds on (§2.2): sweep core count for a fixed
// 8MB LLC on the mesh and NOC-Out organizations and report throughput and
// throughput per unit of NoC area — the kind of cost-benefit analysis that
// motivates NOC-Out's existence.
//
// The whole study is one declarative sweep: the WithConfigure hook shapes
// the NOC-Out organization to each core count during expansion.
package main

import (
	"context"
	"fmt"
	"log"

	"nocout"
)

func main() {
	counts := []int{16, 32, 64}
	rep, err := nocout.NewExperiment(
		nocout.WithTitle("Scale-out design space (MapReduce-W)"),
		nocout.WithDesigns(nocout.Mesh, nocout.NOCOut),
		nocout.WithWorkloads("MapReduce-W"),
		nocout.WithCoreCounts(counts...),
		nocout.WithQuality(nocout.Quick),
		nocout.WithConfigure(func(cfg *nocout.Config, p nocout.Point) {
			if p.Design != nocout.NOCOut {
				return
			}
			// Shape the NOC-Out organization for the core count: keep
			// 8 columns where possible (64 cores is the paper baseline).
			switch p.Cores {
			case 16:
				cfg.NOCOut = nocout.NOCOutOrg{Columns: 4, RowsPerSide: 2}
			case 32:
				cfg.NOCOut = nocout.NOCOutOrg{Columns: 8, RowsPerSide: 2}
			}
		}),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scale-out design space: throughput vs interconnect cost (MapReduce-W)")
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-8s %-10s %10s %12s %16s\n", "cores", "design", "agg IPC", "NoC mm²", "IPC per NoC mm²")

	for _, n := range counts {
		for _, d := range []nocout.Design{nocout.Mesh, nocout.NOCOut} {
			pr, ok := rep.GetPoint(d.String(), "MapReduce-W", n)
			if !ok {
				log.Fatalf("missing point %v/%d", d, n)
			}
			// The point carries its resolved config for the area model.
			area := nocout.Area(pr.Point.Config).Total()
			fmt.Printf("%-8d %-10v %10.2f %12.2f %16.2f\n",
				n, d, pr.Result.AggIPC, area, pr.Result.AggIPC/area)
		}
	}
	fmt.Println("\nNOC-Out holds the mesh's cost while delivering the low-diameter latency.")
}
