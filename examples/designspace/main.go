// Design-space exploration in the spirit of the Scale-Out Processor
// methodology the paper builds on (§2.2): sweep core count for a fixed
// 8MB LLC on the mesh and NOC-Out organizations and report throughput and
// throughput per unit of NoC area — the kind of cost-benefit analysis that
// motivates NOC-Out's existence.
package main

import (
	"fmt"
	"log"

	"nocout"
)

func main() {
	counts := []int{16, 32, 64}
	fmt.Println("Scale-out design space: throughput vs interconnect cost (MapReduce-W)")
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-8s %-10s %10s %12s %16s\n", "cores", "design", "agg IPC", "NoC mm²", "IPC per NoC mm²")

	for _, n := range counts {
		for _, d := range []nocout.Design{nocout.Mesh, nocout.NOCOut} {
			cfg := nocout.DefaultConfig(d)
			cfg.Cores = n
			if d == nocout.NOCOut {
				// Shape the NOC-Out organization for the core count:
				// keep 8 columns where possible.
				switch n {
				case 16:
					cfg.NOCOut = nocout.NOCOutOrg{Columns: 4, RowsPerSide: 2}
				case 32:
					cfg.NOCOut = nocout.NOCOutOrg{Columns: 8, RowsPerSide: 2}
				case 64:
					// paper baseline
				}
			}
			res, err := nocout.Run(cfg, "MapReduce-W", nocout.Quick)
			if err != nil {
				log.Fatal(err)
			}
			area := nocout.Area(cfg).Total()
			fmt.Printf("%-8d %-10v %10.2f %12.2f %16.2f\n",
				n, d, res.AggIPC, area, res.AggIPC/area)
		}
	}
	fmt.Println("\nNOC-Out holds the mesh's cost while delivering the low-diameter latency.")
}
