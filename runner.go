package nocout

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Runner executes a Sweep across a bounded worker pool. The zero value is
// ready to use: all CPUs, no progress reporting, fail-fast, no cache or
// leasing. The Cache, Lease, and KeepGoing hooks are how the campaign
// subsystem (package campaign) turns the pool into one worker of a
// resumable, multi-process campaign.
type Runner struct {
	// Workers bounds the number of points measured concurrently;
	// <= 0 means runtime.NumCPU(). Results are identical for any
	// worker count — points are independent and deterministic.
	Workers int

	// Progress, when set, is called after each point reaches a terminal
	// disposition this runner owns — computed, served from Cache, or (in
	// KeepGoing mode) failed — with the running completion count. Calls
	// are serialized and done is strictly monotonic, but not ordered by
	// point index. Lease-denied points are not reported: another worker
	// owns them.
	Progress func(done, total int, p Point, r Result)

	// KeepGoing collects per-point failures into the Report
	// (PointResult.Err) instead of cancelling the sweep on the first
	// failing point. The default (false) preserves the fail-fast
	// contract: first error aborts and is returned.
	KeepGoing bool

	// Cache, when set, is consulted before each point runs and receives
	// each completed point: a content-addressed result store makes
	// re-runs skip already-computed points.
	Cache Cache

	// Lease, when set, claims each point before it runs so concurrent
	// runner processes sharing a Cache partition the sweep instead of
	// duplicating work. Denied points are marked PointResult.Skipped.
	Lease Lease

	// Checkpoints, when set, serves each point's warm state from a
	// content-addressed checkpoint cache: points sharing a measurement
	// prefix (PrefixKey — same system, seed, workload, warmup) warm up
	// once and restore everywhere else, bit-identically. The Report is
	// byte-identical with or without it; only wall-clock time changes.
	Checkpoints *CheckpointStore
}

// Cache is the Runner's pluggable result cache, keyed by the point's
// canonical content hash (Point.Key). Implementations must be safe for
// concurrent use by the worker pool.
type Cache interface {
	// Lookup returns the stored result for p at quality q; a miss is
	// (zero, false, nil). Implementations should treat unreadable or
	// corrupt entries as misses (self-healing recompute); a returned
	// error fails the point.
	Lookup(p Point, q Quality) (PointResult, bool, error)
	// Store persists a completed point — including, in KeepGoing mode, a
	// failed one (pr.Err non-empty), so a campaign terminates instead of
	// retrying a broken point forever. Deterministic points make Store
	// idempotent: concurrent writers store identical bytes.
	Store(pr PointResult, q Quality) error
}

// Lease is the Runner's pluggable work-partitioning hook for
// multi-process campaigns. Leasing is an optimization, not a correctness
// mechanism: points are deterministic, so two workers racing one point
// store the same result.
type Lease interface {
	// Acquire claims p for this runner. ok=false means another live
	// worker holds the point — the runner skips it and a later pass (or
	// the campaign merge) picks up its result. release must be called
	// once the point's result is stored (or the attempt abandoned).
	Acquire(p Point, q Quality) (release func(), ok bool, err error)
}

// Run measures every point of the sweep and returns the Report, with
// results in sweep order regardless of scheduling. It stops early and
// returns ctx.Err() when the context is cancelled mid-sweep — points
// whose simulations already completed are still stored in Cache and
// counted by Progress, so no finished work is lost. A point whose
// configuration cannot build (an unregistered design, a hierarchy that
// cannot inhabit the fabric) aborts the sweep with an error naming the
// point, or, in KeepGoing mode, is recorded in its PointResult.Err while
// the sweep continues.
func (rn *Runner) Run(ctx context.Context, sw Sweep) (*Report, error) {
	workers := effectiveWorkers(rn.Workers, sw.SimDomains, runtime.GOMAXPROCS(0))
	if workers > sw.Len() {
		workers = sw.Len()
	}

	// A failing point cancels the remaining work through runCtx; the
	// outer ctx stays authoritative for caller cancellation.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// slot is a point's terminal disposition.
	type slot struct {
		res     Result
		errMsg  string
		skipped bool
	}
	slots := make([]slot, sw.Len())

	var progressMu sync.Mutex
	done := 0
	// report counts and notifies under one lock so Progress sees a
	// strictly monotonically increasing done count.
	report := func(p Point, r Result) {
		progressMu.Lock()
		done++
		if rn.Progress != nil {
			rn.Progress(done, sw.Len(), p, r)
		}
		progressMu.Unlock()
	}

	var errMu sync.Mutex
	var runErr error
	abort := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
		cancel()
	}
	// pointErr resolves a failing point: collected into its slot (and the
	// Cache, so campaigns stop retrying it) in KeepGoing mode, sweep
	// abort otherwise. It reports whether the worker may continue.
	pointErr := func(i int, p Point, err error) bool {
		if !rn.KeepGoing {
			abort(err)
			return false
		}
		slots[i] = slot{errMsg: err.Error()}
		if rn.Cache != nil {
			if serr := rn.Cache.Store(PointResult{Point: p, Err: err.Error()}, sw.Quality); serr != nil {
				abort(fmt.Errorf("nocout: storing failure of point %s: %w", p, serr))
				return false
			}
		}
		report(p, Result{})
		return true
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := &sw.Points[i]
				if p.wl == nil {
					// A manifest-decoded point rehydrates its workload
					// once; each index is owned by exactly one worker,
					// so writing the cached value back is race-free.
					w, err := p.resolveWorkload()
					if err != nil {
						if !pointErr(i, *p, err) {
							return
						}
						continue
					}
					p.wl = w
				}

				if rn.Cache != nil {
					pr, hit, err := rn.Cache.Lookup(*p, sw.Quality)
					if err != nil {
						if !pointErr(i, *p, err) {
							return
						}
						continue
					}
					if hit {
						slots[i] = slot{res: pr.Result, errMsg: pr.Err}
						report(*p, pr.Result)
						continue
					}
				}

				release := func() {}
				if rn.Lease != nil {
					rel, ok, err := rn.Lease.Acquire(*p, sw.Quality)
					if err != nil {
						if !pointErr(i, *p, err) {
							return
						}
						continue
					}
					if !ok {
						slots[i] = slot{skipped: true}
						continue
					}
					release = rel
				}

				r, complete, err := runPoint(runCtx, *p, sw.Quality, sw.SimDomains, rn.Checkpoints)
				if err != nil {
					release()
					if !pointErr(i, *p, err) {
						return
					}
					continue
				}
				if complete {
					// Record, persist, and count the result *before*
					// honouring cancellation: a simulation that finished
					// after the cancel landed is still a valid, paid-for
					// result (the historical bug dropped it silently).
					slots[i] = slot{res: r}
					if rn.Cache != nil {
						if serr := rn.Cache.Store(PointResult{Point: *p, Result: r}, sw.Quality); serr != nil {
							release()
							if !pointErr(i, *p, fmt.Errorf("nocout: storing point %s: %w", p, serr)) {
								return
							}
							continue
						}
					}
					release()
					report(*p, r)
				} else {
					// The run was cut short by cancellation; the partial
					// average is meaningless and is discarded.
					release()
				}
				if runCtx.Err() != nil {
					return
				}
			}
		}()
	}

feed:
	for i := 0; i < sw.Len(); i++ {
		select {
		case next <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	errMu.Lock()
	err := runErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Title: sw.Title, Quality: sw.Quality, Results: make([]PointResult, sw.Len())}
	for i, p := range sw.Points {
		rep.Results[i] = PointResult{Point: p, Result: slots[i].res, Err: slots[i].errMsg, Skipped: slots[i].skipped}
	}
	return rep, nil
}

// effectiveWorkers budgets the Runner's pool against intra-simulation
// parallelism: a sweep at SimDomains = D runs D stepping goroutines per
// in-flight point, so the pool shrinks to procs/D (never below one
// worker) instead of multiplying into workers × D oversubscription.
// Explicit Workers requests are honoured up to that budget; <= 0 asks
// for the full machine.
func effectiveWorkers(workers, domains, procs int) int {
	if procs < 1 {
		procs = 1
	}
	if workers <= 0 {
		workers = procs
	}
	if domains > 1 {
		if budget := procs / domains; workers > budget {
			workers = budget
		}
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// runPoint measures one sweep point, converting a configuration panic
// (runSeeds re-raises the first worker panic on this goroutine) into an
// error that names the point. complete is false when cancellation cut
// the measurement short, in which case res must be discarded.
func runPoint(ctx context.Context, p Point, q Quality, domains int, ck *CheckpointStore) (res Result, complete bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nocout: point %s: %v", p, r)
		}
	}()
	res, complete = runSeeds(ctx, p.Config, p.wl, q, domains, ck)
	return res, complete, nil
}
